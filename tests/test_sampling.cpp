#include "sample/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>

namespace ppat::sample {
namespace {

TEST(LatinHypercube, PointsInUnitCube) {
  common::Rng rng(1);
  const auto pts = latin_hypercube(50, 4, rng);
  ASSERT_EQ(pts.size(), 50u);
  for (const auto& p : pts) {
    ASSERT_EQ(p.size(), 4u);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(LatinHypercube, OnePointPerStratumPerDimension) {
  common::Rng rng(2);
  const std::size_t n = 40;
  const auto pts = latin_hypercube(n, 3, rng);
  for (std::size_t dim = 0; dim < 3; ++dim) {
    std::set<std::size_t> strata;
    for (const auto& p : pts) {
      strata.insert(static_cast<std::size_t>(p[dim] * static_cast<double>(n)));
    }
    EXPECT_EQ(strata.size(), n) << "dimension " << dim;
  }
}

TEST(LatinHypercube, MaxGapBound) {
  common::Rng rng(3);
  const std::size_t n = 100;
  const auto pts = latin_hypercube(n, 5, rng);
  // LHS guarantees at most one empty stratum between consecutive points:
  // the largest coordinate gap is < 2/n (plus boundary gaps < 1/n each).
  EXPECT_LE(max_coordinate_gap(pts), 2.0 / static_cast<double>(n) + 1e-12);
}

TEST(LatinHypercube, DeterministicGivenSeed) {
  common::Rng a(7), b(7);
  const auto pa = latin_hypercube(10, 2, a);
  const auto pb = latin_hypercube(10, 2, b);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(UniformRandom, RangeAndCount) {
  common::Rng rng(4);
  const auto pts = uniform_random(200, 3, rng);
  ASSERT_EQ(pts.size(), 200u);
  double mean = 0.0;
  for (const auto& p : pts) {
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
      mean += x;
    }
  }
  EXPECT_NEAR(mean / (200.0 * 3.0), 0.5, 0.05);
}

TEST(FullGrid, SizeAndCenters) {
  const auto pts = full_grid(3, 2);
  ASSERT_EQ(pts.size(), 9u);
  // Levels at stratum centers 1/6, 3/6, 5/6.
  std::set<double> levels;
  for (const auto& p : pts) levels.insert(p[0]);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_NEAR(*levels.begin(), 1.0 / 6.0, 1e-12);
}

TEST(FullGrid, TooLargeThrows) {
  EXPECT_THROW(full_grid(100, 8), std::invalid_argument);
}

TEST(Sobol, PointsInUnitInterval) {
  const auto pts = SobolSequence::generate(64, 6, 11);
  for (const auto& p : pts) {
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Sobol, BalancedInHalves) {
  // A power-of-two prefix of a (scrambled) Sobol sequence puts exactly half
  // the points in each half-interval, per dimension.
  const auto pts = SobolSequence::generate(64, 4, 5);
  for (std::size_t dim = 0; dim < 4; ++dim) {
    std::size_t low = 0;
    for (const auto& p : pts) {
      if (p[dim] < 0.5) ++low;
    }
    EXPECT_EQ(low, 32u) << "dimension " << dim;
  }
}

TEST(Sobol, DeterministicAndSeedSensitive) {
  const auto a = SobolSequence::generate(16, 3, 1);
  const auto b = SobolSequence::generate(16, 3, 1);
  const auto c = SobolSequence::generate(16, 3, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Sobol, RejectsBadDimensions) {
  EXPECT_THROW(SobolSequence(0, 1), std::invalid_argument);
  EXPECT_THROW(SobolSequence(17, 1), std::invalid_argument);
}

// Property sweep: LHS stratification must hold for every seed and shape,
// not just the single seed above (the constraint-aware sampler builds
// whole benchmarks out of repeated LHS batches).
TEST(LatinHypercube, StratificationPropertyOverSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    common::Rng rng(seed);
    const std::size_t n = 8 + (seed % 5) * 7;
    const std::size_t d = 1 + seed % 6;
    const auto pts = latin_hypercube(n, d, rng);
    for (std::size_t dim = 0; dim < d; ++dim) {
      std::set<std::size_t> strata;
      for (const auto& p : pts) {
        strata.insert(
            static_cast<std::size_t>(p[dim] * static_cast<double>(n)));
      }
      EXPECT_EQ(strata.size(), n) << "seed " << seed << " dim " << dim;
    }
  }
}

TEST(LatinHypercube, DistinctSeedsGiveDistinctDesigns) {
  common::Rng a(101), b(102);
  EXPECT_NE(latin_hypercube(16, 3, a), latin_hypercube(16, 3, b));
}

// A Sobol power-of-two prefix is balanced at every dyadic resolution it
// covers; check quarters across several scrambling seeds.
TEST(Sobol, BalancedInQuartersOverSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = SobolSequence::generate(64, 3, seed);
    for (std::size_t dim = 0; dim < 3; ++dim) {
      std::size_t count[4] = {0, 0, 0, 0};
      for (const auto& p : pts) {
        ++count[std::min<std::size_t>(3,
                                      static_cast<std::size_t>(p[dim] * 4.0))];
      }
      for (int q = 0; q < 4; ++q) {
        EXPECT_EQ(count[q], 16u)
            << "seed " << seed << " dim " << dim << " quarter " << q;
      }
    }
  }
}

// Streaming property: generate(n) is a prefix of generate(2n) for the same
// seed (the constrained sampler relies on this to "top up" a short draw).
TEST(Sobol, PrefixStable) {
  const auto small = SobolSequence::generate(32, 4, 9);
  const auto big = SobolSequence::generate(64, 4, 9);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], big[i]) << "index " << i;
  }
}

TEST(MaxCoordinateGap, KnownConfiguration) {
  // Two points at 0.25 and 0.75: gaps are 0.25 (to 0), 0.5 (between),
  // 0.25 (to 1) -> max 0.5.
  std::vector<linalg::Vector> pts = {{0.25}, {0.75}};
  EXPECT_NEAR(max_coordinate_gap(pts), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(max_coordinate_gap({}), 1.0);
}

}  // namespace
}  // namespace ppat::sample
