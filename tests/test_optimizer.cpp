#include "sta/optimizer.hpp"

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"

namespace ppat::sta {
namespace {

using netlist::CellFunction;
using netlist::CellLibrary;
using netlist::InstanceId;
using netlist::Netlist;
using netlist::NetId;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : lib_(CellLibrary::make_default()), nl_(&lib_) {}

  /// A driver fanning out to `sinks` inverters; everything placed at given
  /// coordinates (driver at origin, sinks spread on a line of `length` um).
  NetId build_star(std::size_t sinks, double length) {
    const NetId a = nl_.add_primary_input();
    const InstanceId drv =
        nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
    const NetId net = nl_.instance(drv).fanout;
    for (std::size_t i = 0; i < sinks; ++i) {
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {net});
    }
    x_.assign(nl_.num_instances(), 0.0);
    y_.assign(nl_.num_instances(), 0.0);
    for (std::size_t i = 0; i < sinks; ++i) {
      x_[drv + 1 + i] =
          length * static_cast<double>(i + 1) / static_cast<double>(sinks);
    }
    hpwl_.assign(nl_.num_nets(), 0.0);
    hpwl_[net] = length;
    return net;
  }

  CellLibrary lib_;
  Netlist nl_;
  std::vector<double> x_, y_, hpwl_;
};

TEST_F(OptimizerTest, FanoutViolationFixedByBuffering) {
  const NetId net = build_star(40, 10.0);
  OptimizerOptions opt;
  opt.limits.max_fanout = 16;
  opt.limits.max_transition_ns = 10.0;   // only fanout binds
  opt.limits.max_capacitance_ff = 1e9;
  opt.limits.max_length_um = 1e9;
  opt.max_repair_passes = 4;
  opt.sizing_passes = 0;
  const auto result = optimize(nl_, x_, y_, hpwl_, TimingOptions{}, opt);
  EXPECT_GT(result.buffers_inserted, 0u);
  EXPECT_LE(nl_.net(net).sinks.size(), 16u);
  // Every net respects the limit after repair.
  for (NetId n = 0; n < nl_.num_nets(); ++n) {
    EXPECT_LE(nl_.net(n).sinks.size(), 16u) << "net " << n;
  }
  nl_.validate();
  EXPECT_EQ(x_.size(), nl_.num_instances());
  EXPECT_EQ(hpwl_.size(), nl_.num_nets());
}

TEST_F(OptimizerTest, CapViolationFixedByLoadSplitting) {
  build_star(30, 50.0);
  OptimizerOptions opt;
  opt.limits.max_fanout = 1000;
  opt.limits.max_transition_ns = 10.0;
  opt.limits.max_capacitance_ff = 15.0;  // well below 30 pins + wire
  opt.limits.max_length_um = 1e9;
  opt.max_repair_passes = 6;
  opt.sizing_passes = 0;
  const auto result = optimize(nl_, x_, y_, hpwl_, TimingOptions{}, opt);
  EXPECT_GT(result.buffers_inserted, 0u);
  EXPECT_GT(result.initial_drv_violations, 0u);
  nl_.validate();
}

TEST_F(OptimizerTest, SlewViolationFixedByUpsizing) {
  // Single sink (no splitting possible), heavy wire -> slew violation that
  // only upsizing can mitigate.
  build_star(1, 200.0);
  OptimizerOptions opt;
  opt.limits.max_fanout = 1000;
  opt.limits.max_transition_ns = 0.05;
  opt.limits.max_capacitance_ff = 1e9;
  opt.limits.max_length_um = 1e9;
  opt.max_repair_passes = 3;
  opt.sizing_passes = 0;
  const auto result = optimize(nl_, x_, y_, hpwl_, TimingOptions{}, opt);
  EXPECT_GT(result.cells_upsized, 0u);
}

TEST_F(OptimizerTest, LongNetGetsRepeater) {
  build_star(4, 500.0);
  OptimizerOptions opt;
  opt.limits.max_fanout = 1000;
  opt.limits.max_transition_ns = 10.0;
  opt.limits.max_capacitance_ff = 1e9;
  opt.limits.max_length_um = 100.0;
  opt.max_repair_passes = 2;
  opt.sizing_passes = 0;
  const auto result = optimize(nl_, x_, y_, hpwl_, TimingOptions{}, opt);
  EXPECT_GT(result.buffers_inserted, 0u);
}

TEST_F(OptimizerTest, CleanDesignUntouched) {
  build_star(3, 5.0);
  OptimizerOptions opt;  // default generous limits
  opt.limits.max_fanout = 100;
  opt.limits.max_transition_ns = 5.0;
  opt.limits.max_capacitance_ff = 1e6;
  opt.limits.max_length_um = 1e6;
  opt.sizing_passes = 0;
  const std::size_t before = nl_.num_instances();
  const auto result = optimize(nl_, x_, y_, hpwl_, TimingOptions{}, opt);
  EXPECT_EQ(result.buffers_inserted, 0u);
  EXPECT_EQ(result.initial_drv_violations, 0u);
  EXPECT_EQ(nl_.num_instances(), before);
}

TEST_F(OptimizerTest, SizingImprovesCriticalDelay) {
  // Chain with loads: sizing should reduce the endpoint delay.
  NetId net = nl_.add_primary_input();
  for (int i = 0; i < 12; ++i) {
    const InstanceId g =
        nl_.add_instance(lib_.find(CellFunction::kInv, 0), {net});
    net = nl_.instance(g).fanout;
    // Side loads make upsizing worthwhile.
    nl_.add_instance(lib_.find(CellFunction::kInv, 0), {net});
    nl_.add_instance(lib_.find(CellFunction::kInv, 0), {net});
  }
  nl_.mark_primary_output(net);
  x_.assign(nl_.num_instances(), 0.0);
  y_.assign(nl_.num_instances(), 0.0);
  hpwl_.assign(nl_.num_nets(), 5.0);

  TimingOptions topt;
  topt.clock_period_ns = 0.05;  // heavy pressure
  OptimizerOptions no_sizing;
  no_sizing.limits.max_fanout = 1000;
  no_sizing.limits.max_transition_ns = 10.0;
  no_sizing.limits.max_capacitance_ff = 1e9;
  no_sizing.limits.max_length_um = 1e9;
  no_sizing.sizing_passes = 0;
  OptimizerOptions sizing = no_sizing;
  sizing.sizing_passes = 4;

  Netlist nl_copy = nl_;
  auto x2 = x_;
  auto y2 = y_;
  auto h2 = hpwl_;
  const auto r_no = optimize(nl_copy, x2, y2, h2, topt, no_sizing);
  const auto r_yes = optimize(nl_, x_, y_, hpwl_, topt, sizing);
  EXPECT_GT(r_yes.cells_upsized, 0u);
  EXPECT_LT(r_yes.final_timing.critical_delay_ns,
            r_no.final_timing.critical_delay_ns);
}

TEST_F(OptimizerTest, AllowedDelayStopsSizing) {
  NetId net = nl_.add_primary_input();
  for (int i = 0; i < 6; ++i) {
    net = nl_.instance(nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                        {net}))
              .fanout;
  }
  nl_.mark_primary_output(net);
  x_.assign(nl_.num_instances(), 0.0);
  y_.assign(nl_.num_instances(), 0.0);
  hpwl_.assign(nl_.num_nets(), 1.0);
  TimingOptions topt;
  topt.clock_period_ns = 1.0;  // easily met... except:
  OptimizerOptions opt;
  opt.limits.max_fanout = 1000;
  opt.limits.max_transition_ns = 10.0;
  opt.limits.max_capacitance_ff = 1e9;
  opt.limits.max_length_um = 1e9;
  opt.sizing_passes = 5;
  opt.max_allowed_delay_ns = 10.0;  // any violation tolerated
  const auto result = optimize(nl_, x_, y_, hpwl_, topt, opt);
  EXPECT_EQ(result.cells_upsized, 0u);  // sizer never engaged
}

}  // namespace
}  // namespace ppat::sta
