#include "flow/parameter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace ppat::flow {
namespace {

ParameterSpace make_space() {
  return ParameterSpace({
      ParamSpec::real("freq", 1000, 1300),
      ParamSpec::integer("max_fanout", 25, 50),
      ParamSpec::enumeration("effort", {"standard", "high", "extreme"}),
      ParamSpec::boolean("uniform"),
  });
}

TEST(ParamSpec, FactoriesValidate) {
  EXPECT_THROW(ParamSpec::real("x", 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParamSpec::integer("x", 5, 4), std::invalid_argument);
  EXPECT_THROW(ParamSpec::enumeration("x", {}), std::invalid_argument);
  EXPECT_THROW(ParamSpec::integer_levels("x", {}), std::invalid_argument);
  EXPECT_THROW(ParamSpec::integer_levels("x", {4, 2}), std::invalid_argument);
  EXPECT_THROW(ParamSpec::factors("x", 0), std::invalid_argument);
}

TEST(ParamSpec, FactorsEnumeratesDivisorsAscending) {
  const ParamSpec s = ParamSpec::factors("tile", 12);
  const std::vector<double> expected = {1, 2, 3, 4, 6, 12};
  EXPECT_EQ(s.levels, expected);
  EXPECT_DOUBLE_EQ(s.min_value, 1.0);
  EXPECT_DOUBLE_EQ(s.max_value, 12.0);
  EXPECT_TRUE(s.constrained());
}

// Regression (issue 8 satellite): degenerate-but-legal specs — a pinned
// single-option enum and a min==max integer — must round-trip through
// encode/decode without a zero-width-range divide.
TEST(ParameterSpace, DegenerateSpecsEncodeDecodeIdempotent) {
  const ParameterSpace space({
      ParamSpec::enumeration("pinned", {"only"}),
      ParamSpec::integer("fixed", 7, 7),
      ParamSpec::integer_levels("single", {3}),
  });
  for (double u : {0.0, 0.25, 0.999, 1.0}) {
    const Config c1 = space.decode({u, u, u});
    EXPECT_DOUBLE_EQ(c1[0], 0.0);
    EXPECT_DOUBLE_EQ(c1[1], 7.0);
    EXPECT_DOUBLE_EQ(c1[2], 3.0);
    const linalg::Vector e = space.encode(c1);
    for (double v : e) {
      EXPECT_TRUE(std::isfinite(v)) << "encode produced non-finite value";
    }
    const Config c2 = space.decode(e);
    EXPECT_EQ(c1, c2);
  }
}

// The divide could previously only be reached through directly-constructed
// specs that bypassed the factories; construction now rejects those.
TEST(ParameterSpace, ConstructionRejectsMalformedSpecs) {
  ParamSpec zero_width;
  zero_width.name = "w";
  zero_width.type = ParamType::kFloat;
  zero_width.min_value = 1.0;
  zero_width.max_value = 1.0;
  EXPECT_THROW(ParameterSpace({zero_width}), std::invalid_argument);

  ParamSpec empty_enum;
  empty_enum.name = "e";
  empty_enum.type = ParamType::kEnum;
  EXPECT_THROW(ParameterSpace({empty_enum}), std::invalid_argument);

  ParamSpec unnamed;
  unnamed.type = ParamType::kBool;
  EXPECT_THROW(ParameterSpace({unnamed}), std::invalid_argument);

  ParamSpec non_integral;
  non_integral.name = "i";
  non_integral.type = ParamType::kInt;
  non_integral.min_value = 0.5;
  non_integral.max_value = 3.5;
  EXPECT_THROW(ParameterSpace({non_integral}), std::invalid_argument);
}

TEST(ParameterSpace, ConstraintWiringValidated) {
  // Parent must exist and come EARLIER.
  EXPECT_THROW(
      ParameterSpace({ParamSpec::factors("child", 8).divides("parent")}),
      std::invalid_argument);
  EXPECT_THROW(
      ParameterSpace({ParamSpec::factors("child", 8).divides("parent"),
                      ParamSpec::factors("parent", 8)}),
      std::invalid_argument);
  // Divides parent must be an integer parameter.
  EXPECT_THROW(
      ParameterSpace({ParamSpec::boolean("flag"),
                      ParamSpec::factors("child", 8).divides("flag")}),
      std::invalid_argument);
  // A divisibility-constrained domain must contain 1 (rejection-free
  // sampling guarantee).
  EXPECT_THROW(
      ParameterSpace({ParamSpec::factors("parent", 8),
                      ParamSpec::integer_levels("child", {2, 4})
                          .divides("parent")}),
      std::invalid_argument);
  // Activation parent must be discrete.
  EXPECT_THROW(
      ParameterSpace({ParamSpec::real("r", 0.0, 1.0),
                      ParamSpec::boolean("b").active_when("r", 0.5)}),
      std::invalid_argument);
  // Well-formed wiring is accepted.
  const ParameterSpace ok({
      ParamSpec::factors("parent", 8),
      ParamSpec::boolean("toggle"),
      ParamSpec::factors("child", 8).divides("parent").active_when("toggle",
                                                                   1.0),
  });
  EXPECT_TRUE(ok.has_constraints());
}

TEST(ParameterSpace, LegacySpacesReportNoConstraints) {
  EXPECT_FALSE(make_space().has_constraints());
}

TEST(ParameterSpace, ActiveMaskAndCanonicalize) {
  const ParameterSpace space({
      ParamSpec::boolean("outer"),
      ParamSpec::boolean("mid").active_when("outer", 1.0),
      ParamSpec::integer_levels("leaf", {1, 2, 4}).active_when("mid", 1.0),
  });
  {
    const Config c = {1.0, 1.0, 4.0};
    const auto mask = space.active_mask(c);
    EXPECT_EQ(mask, (std::vector<std::uint8_t>{1, 1, 1}));
    EXPECT_EQ(space.canonicalize(c), c);
    EXPECT_TRUE(space.is_feasible(c));
  }
  {
    // Outer off: the whole chain deactivates, even though mid == 1.
    const Config c = {0.0, 1.0, 4.0};
    const auto mask = space.active_mask(c);
    EXPECT_EQ(mask, (std::vector<std::uint8_t>{1, 0, 0}));
    const Config canon = space.canonicalize(c);
    EXPECT_EQ(canon, (Config{0.0, 0.0, 1.0}));
    EXPECT_FALSE(space.is_feasible(c));  // not in canonical form
    EXPECT_TRUE(space.is_feasible(canon));
  }
}

TEST(ParameterSpace, FeasibilityChecksDivisibility) {
  const ParameterSpace space({
      ParamSpec::factors("parent", 12),
      ParamSpec::factors("child", 12).divides("parent"),
  });
  EXPECT_TRUE(space.is_feasible({12.0, 4.0}));
  EXPECT_TRUE(space.is_feasible({6.0, 3.0}));
  EXPECT_FALSE(space.is_feasible({6.0, 4.0}));   // 4 does not divide 6
  EXPECT_FALSE(space.is_feasible({12.0, 5.0}));  // 5 not in the level set
}

TEST(ParameterSpace, DecodeFeasibleIsAlwaysFeasibleAndSpansLevels) {
  const ParameterSpace space({
      ParamSpec::factors("parent", 24),
      ParamSpec::boolean("toggle"),
      ParamSpec::factors("child", 24).divides("parent").active_when("toggle",
                                                                    1.0),
  });
  std::size_t distinct_children = 0;
  std::vector<double> seen;
  for (int a = 0; a <= 10; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 10; ++c) {
        const linalg::Vector u = {a / 10.0, static_cast<double>(b), c / 10.0};
        const Config cfg = space.decode_feasible(u);
        ASSERT_TRUE(space.is_feasible(cfg))
            << "u = (" << u[0] << ", " << u[1] << ", " << u[2] << ")";
        if (std::find(seen.begin(), seen.end(), cfg[2]) == seen.end()) {
          seen.push_back(cfg[2]);
          ++distinct_children;
        }
      }
    }
  }
  // The child coordinate must actually range over divisors, not collapse.
  EXPECT_GT(distinct_children, 3u);
}

TEST(ParameterSpace, DecodeFeasibleMatchesDecodeOnLegacySpaces) {
  const auto space = make_space();
  const linalg::Vector u = {0.37, 0.61, 0.45, 0.9};
  EXPECT_EQ(space.decode(u), space.decode_feasible(u));
}

TEST(ParameterSpace, DuplicateNamesRejected) {
  EXPECT_THROW(ParameterSpace({ParamSpec::boolean("a"),
                               ParamSpec::boolean("a")}),
               std::invalid_argument);
}

TEST(ParameterSpace, IndexLookup) {
  const auto space = make_space();
  EXPECT_EQ(space.index_of("freq"), 0u);
  EXPECT_EQ(space.index_of("uniform"), 3u);
  EXPECT_EQ(space.index_of("missing"), ParameterSpace::npos);
  EXPECT_TRUE(space.has("effort"));
  EXPECT_FALSE(space.has("nope"));
}

TEST(ParameterSpace, Cardinality) {
  const auto space = make_space();
  EXPECT_EQ(space.cardinality(0), 0u);   // continuous
  EXPECT_EQ(space.cardinality(1), 26u);  // 25..50
  EXPECT_EQ(space.cardinality(2), 3u);
  EXPECT_EQ(space.cardinality(3), 2u);
}

TEST(ParameterSpace, DecodeBoundsAndQuantization) {
  const auto space = make_space();
  const Config lo = space.decode({0.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(lo[0], 1000.0);
  EXPECT_DOUBLE_EQ(lo[1], 25.0);
  EXPECT_DOUBLE_EQ(lo[2], 0.0);
  EXPECT_DOUBLE_EQ(lo[3], 0.0);
  const Config hi = space.decode({1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(hi[0], 1300.0);
  EXPECT_DOUBLE_EQ(hi[1], 50.0);
  EXPECT_DOUBLE_EQ(hi[2], 2.0);
  EXPECT_DOUBLE_EQ(hi[3], 1.0);
}

TEST(ParameterSpace, DecodeClampsOutOfRange) {
  const auto space = make_space();
  const Config c = space.decode({-0.5, 2.0, -1.0, 3.0});
  space.validate(c);  // must be in range
}

TEST(ParameterSpace, EncodeDecodeIsIdempotentOnCells) {
  const auto space = make_space();
  const linalg::Vector u = {0.37, 0.61, 0.45, 0.9};
  const Config c1 = space.decode(u);
  const linalg::Vector e = space.encode(c1);
  const Config c2 = space.decode(e);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-9) << "param " << i;
  }
}

TEST(ParameterSpace, EncodeMapsDiscreteToCellMidpoints) {
  const auto space = make_space();
  Config c = space.decode({0.0, 0.0, 0.0, 0.0});
  const auto u = space.encode(c);
  // Boolean FALSE should map to the middle of [0, 0.5).
  EXPECT_NEAR(u[3], 0.25, 1e-12);
  // Enum level 0 of 3 -> midpoint of [0, 1/3).
  EXPECT_NEAR(u[2], 1.0 / 6.0, 1e-12);
}

TEST(ParameterSpace, ValidateCatchesErrors) {
  const auto space = make_space();
  Config ok = space.decode({0.5, 0.5, 0.5, 0.5});
  space.validate(ok);
  Config bad_range = ok;
  bad_range[0] = 2000.0;
  EXPECT_THROW(space.validate(bad_range), std::invalid_argument);
  Config bad_integral = ok;
  bad_integral[1] = 30.5;
  EXPECT_THROW(space.validate(bad_integral), std::invalid_argument);
  Config bad_dim(3, 0.0);
  EXPECT_THROW(space.validate(bad_dim), std::invalid_argument);
}

TEST(ParameterSpace, ValueOrFallsBack) {
  const auto space = make_space();
  const Config c = space.decode({0.5, 0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(space.value_or(c, "freq", -1.0), c[0]);
  EXPECT_DOUBLE_EQ(space.value_or(c, "absent", -1.0), -1.0);
}

TEST(ParameterSpace, FormatValue) {
  const auto space = make_space();
  EXPECT_EQ(space.format_value(0, 1150.0), "1150.000");
  EXPECT_EQ(space.format_value(1, 30.0), "30");
  EXPECT_EQ(space.format_value(2, 2.0), "extreme");
  EXPECT_EQ(space.format_value(3, 1.0), "TRUE");
  EXPECT_EQ(space.format_value(3, 0.0), "FALSE");
}

}  // namespace
}  // namespace ppat::flow
