#include "flow/parameter.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ppat::flow {
namespace {

ParameterSpace make_space() {
  return ParameterSpace({
      ParamSpec::real("freq", 1000, 1300),
      ParamSpec::integer("max_fanout", 25, 50),
      ParamSpec::enumeration("effort", {"standard", "high", "extreme"}),
      ParamSpec::boolean("uniform"),
  });
}

TEST(ParamSpec, FactoriesValidate) {
  EXPECT_THROW(ParamSpec::real("x", 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParamSpec::integer("x", 5, 4), std::invalid_argument);
  EXPECT_THROW(ParamSpec::enumeration("x", {"only"}), std::invalid_argument);
}

TEST(ParameterSpace, DuplicateNamesRejected) {
  EXPECT_THROW(ParameterSpace({ParamSpec::boolean("a"),
                               ParamSpec::boolean("a")}),
               std::invalid_argument);
}

TEST(ParameterSpace, IndexLookup) {
  const auto space = make_space();
  EXPECT_EQ(space.index_of("freq"), 0u);
  EXPECT_EQ(space.index_of("uniform"), 3u);
  EXPECT_EQ(space.index_of("missing"), ParameterSpace::npos);
  EXPECT_TRUE(space.has("effort"));
  EXPECT_FALSE(space.has("nope"));
}

TEST(ParameterSpace, Cardinality) {
  const auto space = make_space();
  EXPECT_EQ(space.cardinality(0), 0u);   // continuous
  EXPECT_EQ(space.cardinality(1), 26u);  // 25..50
  EXPECT_EQ(space.cardinality(2), 3u);
  EXPECT_EQ(space.cardinality(3), 2u);
}

TEST(ParameterSpace, DecodeBoundsAndQuantization) {
  const auto space = make_space();
  const Config lo = space.decode({0.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(lo[0], 1000.0);
  EXPECT_DOUBLE_EQ(lo[1], 25.0);
  EXPECT_DOUBLE_EQ(lo[2], 0.0);
  EXPECT_DOUBLE_EQ(lo[3], 0.0);
  const Config hi = space.decode({1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(hi[0], 1300.0);
  EXPECT_DOUBLE_EQ(hi[1], 50.0);
  EXPECT_DOUBLE_EQ(hi[2], 2.0);
  EXPECT_DOUBLE_EQ(hi[3], 1.0);
}

TEST(ParameterSpace, DecodeClampsOutOfRange) {
  const auto space = make_space();
  const Config c = space.decode({-0.5, 2.0, -1.0, 3.0});
  space.validate(c);  // must be in range
}

TEST(ParameterSpace, EncodeDecodeIsIdempotentOnCells) {
  const auto space = make_space();
  const linalg::Vector u = {0.37, 0.61, 0.45, 0.9};
  const Config c1 = space.decode(u);
  const linalg::Vector e = space.encode(c1);
  const Config c2 = space.decode(e);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-9) << "param " << i;
  }
}

TEST(ParameterSpace, EncodeMapsDiscreteToCellMidpoints) {
  const auto space = make_space();
  Config c = space.decode({0.0, 0.0, 0.0, 0.0});
  const auto u = space.encode(c);
  // Boolean FALSE should map to the middle of [0, 0.5).
  EXPECT_NEAR(u[3], 0.25, 1e-12);
  // Enum level 0 of 3 -> midpoint of [0, 1/3).
  EXPECT_NEAR(u[2], 1.0 / 6.0, 1e-12);
}

TEST(ParameterSpace, ValidateCatchesErrors) {
  const auto space = make_space();
  Config ok = space.decode({0.5, 0.5, 0.5, 0.5});
  space.validate(ok);
  Config bad_range = ok;
  bad_range[0] = 2000.0;
  EXPECT_THROW(space.validate(bad_range), std::invalid_argument);
  Config bad_integral = ok;
  bad_integral[1] = 30.5;
  EXPECT_THROW(space.validate(bad_integral), std::invalid_argument);
  Config bad_dim(3, 0.0);
  EXPECT_THROW(space.validate(bad_dim), std::invalid_argument);
}

TEST(ParameterSpace, ValueOrFallsBack) {
  const auto space = make_space();
  const Config c = space.decode({0.5, 0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(space.value_or(c, "freq", -1.0), c[0]);
  EXPECT_DOUBLE_EQ(space.value_or(c, "absent", -1.0), -1.0);
}

TEST(ParameterSpace, FormatValue) {
  const auto space = make_space();
  EXPECT_EQ(space.format_value(0, 1150.0), "1150.000");
  EXPECT_EQ(space.format_value(1, 30.0), "30");
  EXPECT_EQ(space.format_value(2, 2.0), "extreme");
  EXPECT_EQ(space.format_value(3, 1.0), "TRUE");
  EXPECT_EQ(space.format_value(3, 0.0), "FALSE");
}

}  // namespace
}  // namespace ppat::flow
