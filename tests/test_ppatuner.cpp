#include "tuner/ppatuner.hpp"

#include <gtest/gtest.h>

#include "synthetic_benchmark.hpp"

namespace ppat::tuner {
namespace {

class PpaTunerTest : public ::testing::Test {
 protected:
  PpaTunerTest()
      : source_(testing::synthetic_benchmark("src", 150, 11, 0.15)),
        target_(testing::synthetic_benchmark("tgt", 200, 12, 0.0)) {}

  SourceData source_data(const std::vector<std::size_t>& objectives) {
    return SourceData::from_benchmark(source_, objectives, 100, 5);
  }

  flow::BenchmarkSet source_, target_;
};

TEST_F(PpaTunerTest, FindsNearOptimalFront) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  PPATunerOptions opt;
  opt.seed = 1;
  opt.max_runs = 60;
  PPATunerDiagnostics diag;
  const auto result = run_ppatuner(
      pool, make_transfer_gp_factory(source_data(kPowerDelay)), opt, &diag);
  ASSERT_FALSE(result.pareto_indices.empty());
  const auto q = evaluate_result(pool, result);
  EXPECT_LT(q.hv_error, 0.25);
  EXPECT_LT(q.adrs, 0.15);
  EXPECT_GT(diag.rounds, 0u);
}

TEST_F(PpaTunerTest, RespectsRunBudget) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  PPATunerOptions opt;
  opt.seed = 2;
  opt.max_runs = 25;
  const auto result = run_ppatuner(
      pool, make_transfer_gp_factory(source_data(kPowerDelay)), opt);
  EXPECT_LE(result.tool_runs, 25u);
  EXPECT_EQ(result.tool_runs, pool.runs());
}

TEST_F(PpaTunerTest, WorksWithPlainGp) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  PPATunerOptions opt;
  opt.seed = 3;
  opt.max_runs = 60;
  PPATunerDiagnostics diag;
  const auto result =
      run_ppatuner(pool, make_plain_gp_factory(), opt, &diag);
  ASSERT_FALSE(result.pareto_indices.empty());
  EXPECT_TRUE(diag.task_correlations.empty());  // no transfer models
  const auto q = evaluate_result(pool, result);
  EXPECT_LT(q.hv_error, 0.35);
}

TEST_F(PpaTunerTest, ThreeObjectiveSpace) {
  BenchmarkCandidatePool pool(&target_, kAreaPowerDelay);
  PPATunerOptions opt;
  opt.seed = 4;
  opt.max_runs = 70;
  const auto result = run_ppatuner(
      pool, make_transfer_gp_factory(source_data(kAreaPowerDelay)), opt);
  ASSERT_FALSE(result.pareto_indices.empty());
  const auto q = evaluate_result(pool, result);
  EXPECT_LT(q.hv_error, 0.35);
}

TEST_F(PpaTunerTest, DiagnosticsPartitionThePool) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  PPATunerOptions opt;
  opt.seed = 5;
  opt.max_runs = 50;
  PPATunerDiagnostics diag;
  run_ppatuner(pool, make_transfer_gp_factory(source_data(kPowerDelay)),
               opt, &diag);
  EXPECT_EQ(diag.dropped + diag.classified_pareto + diag.undecided,
            pool.size());
  EXPECT_EQ(diag.task_correlations.size(), 2u);
  for (double rho : diag.task_correlations) {
    EXPECT_GT(rho, -1.0);
    EXPECT_LT(rho, 1.0);
  }
}

TEST_F(PpaTunerTest, DeterministicGivenSeed) {
  PPATunerOptions opt;
  opt.seed = 6;
  opt.max_runs = 40;
  BenchmarkCandidatePool pool_a(&target_, kPowerDelay);
  BenchmarkCandidatePool pool_b(&target_, kPowerDelay);
  const auto ra = run_ppatuner(
      pool_a, make_transfer_gp_factory(source_data(kPowerDelay)), opt);
  const auto rb = run_ppatuner(
      pool_b, make_transfer_gp_factory(source_data(kPowerDelay)), opt);
  EXPECT_EQ(ra.pareto_indices, rb.pareto_indices);
  EXPECT_EQ(ra.tool_runs, rb.tool_runs);
}

TEST_F(PpaTunerTest, BatchSizeOneStillWorks) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  PPATunerOptions opt;
  opt.seed = 7;
  opt.max_runs = 30;
  opt.batch_size = 1;
  const auto result = run_ppatuner(
      pool, make_transfer_gp_factory(source_data(kPowerDelay)), opt);
  ASSERT_FALSE(result.pareto_indices.empty());
  EXPECT_LE(result.tool_runs, 30u);
}

TEST_F(PpaTunerTest, LooseDeltaConvergesFaster) {
  PPATunerOptions tight;
  tight.seed = 8;
  tight.max_runs = 200;
  tight.delta_rel = 0.002;
  PPATunerOptions loose = tight;
  loose.delta_rel = 0.10;
  BenchmarkCandidatePool pool_tight(&target_, kPowerDelay);
  BenchmarkCandidatePool pool_loose(&target_, kPowerDelay);
  const auto r_tight = run_ppatuner(
      pool_tight, make_transfer_gp_factory(source_data(kPowerDelay)), tight);
  const auto r_loose = run_ppatuner(
      pool_loose, make_transfer_gp_factory(source_data(kPowerDelay)), loose);
  // A looser precision target can only need fewer (or equal) tool runs.
  EXPECT_LE(r_loose.tool_runs, r_tight.tool_runs);
}

TEST_F(PpaTunerTest, ResultIndicesAreValidAndUnique) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  PPATunerOptions opt;
  opt.seed = 9;
  opt.max_runs = 40;
  const auto result = run_ppatuner(
      pool, make_transfer_gp_factory(source_data(kPowerDelay)), opt);
  std::set<std::size_t> unique(result.pareto_indices.begin(),
                               result.pareto_indices.end());
  EXPECT_EQ(unique.size(), result.pareto_indices.size());
  for (std::size_t i : result.pareto_indices) EXPECT_LT(i, pool.size());
}

}  // namespace
}  // namespace ppat::tuner
