#include "netlist/cell_library.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ppat::netlist {
namespace {

TEST(CellLibrary, DefaultLibraryIsPopulated) {
  const auto lib = CellLibrary::make_default();
  // 13 combinational functions x 3 drives + DFF x 2 drives.
  EXPECT_EQ(lib.size(), 13u * 3u + 2u);
}

TEST(CellLibrary, FindReturnsMatchingFunction) {
  const auto lib = CellLibrary::make_default();
  const CellId id = lib.find(CellFunction::kNand2, 1);
  const Cell& c = lib.cell(id);
  EXPECT_EQ(c.function, CellFunction::kNand2);
  EXPECT_EQ(c.name, "NAND2_X2");
  EXPECT_EQ(c.num_inputs, 2);
  EXPECT_FALSE(c.sequential);
}

TEST(CellLibrary, FindThrowsOnMissingDrive) {
  const auto lib = CellLibrary::make_default();
  EXPECT_THROW(lib.find(CellFunction::kDff, 2), std::out_of_range);
  EXPECT_THROW(lib.find(CellFunction::kInv, -1), std::out_of_range);
}

TEST(CellLibrary, DriveLevels) {
  const auto lib = CellLibrary::make_default();
  EXPECT_EQ(lib.drive_levels(CellFunction::kInv), 3);
  EXPECT_EQ(lib.drive_levels(CellFunction::kDff), 2);
}

TEST(CellLibrary, DriveLevelOfRoundTrips) {
  const auto lib = CellLibrary::make_default();
  for (int level = 0; level < 3; ++level) {
    const CellId id = lib.find(CellFunction::kXor2, level);
    EXPECT_EQ(lib.drive_level_of(id), level);
  }
}

TEST(CellLibrary, UpsizingTradeoffsAreMonotone) {
  const auto lib = CellLibrary::make_default();
  const Cell& x1 = lib.cell(lib.find(CellFunction::kBuf, 0));
  const Cell& x2 = lib.cell(lib.find(CellFunction::kBuf, 1));
  const Cell& x4 = lib.cell(lib.find(CellFunction::kBuf, 2));
  // Stronger drive: lower resistance...
  EXPECT_GT(x1.drive_res_kohm, x2.drive_res_kohm);
  EXPECT_GT(x2.drive_res_kohm, x4.drive_res_kohm);
  // ...but bigger, more capacitive, leakier.
  EXPECT_LT(x1.area_um2, x2.area_um2);
  EXPECT_LT(x2.area_um2, x4.area_um2);
  EXPECT_LT(x1.input_cap_ff, x2.input_cap_ff);
  EXPECT_LT(x1.leakage_nw, x2.leakage_nw);
  EXPECT_LT(x1.max_output_cap_ff, x2.max_output_cap_ff);
}

TEST(CellLibrary, SequentialCellsAreMarked) {
  const auto lib = CellLibrary::make_default();
  EXPECT_TRUE(lib.cell(lib.find(CellFunction::kDff, 0)).sequential);
  EXPECT_FALSE(lib.cell(lib.find(CellFunction::kMux2, 0)).sequential);
}

TEST(CellLibrary, AllCellsHavePhysicalValues) {
  const auto lib = CellLibrary::make_default();
  for (const Cell& c : lib.cells()) {
    EXPECT_GT(c.area_um2, 0.0) << c.name;
    EXPECT_GT(c.input_cap_ff, 0.0) << c.name;
    EXPECT_GT(c.drive_res_kohm, 0.0) << c.name;
    EXPECT_GT(c.leakage_nw, 0.0) << c.name;
    EXPECT_GT(c.intrinsic_delay_ns, 0.0) << c.name;
    EXPECT_GE(c.num_inputs, 1) << c.name;
  }
}

TEST(CellLibrary, FunctionNames) {
  EXPECT_EQ(to_string(CellFunction::kInv), "INV");
  EXPECT_EQ(to_string(CellFunction::kFullAdderSum), "FAS");
  EXPECT_EQ(to_string(CellFunction::kDff), "DFF");
}

}  // namespace
}  // namespace ppat::netlist
