// Kill-and-resume integration test (the journal subsystem's headline
// guarantee): a tuning run SIGKILLed mid-loop — between rounds AND mid-batch
// from inside the oracle — must resume from its journal and finish with the
// BITWISE-identical Pareto set, ADRS, and hypervolume error as an
// uninterrupted run. Also exercises corrupt-tail recovery: a flipped byte in
// the journal tail is truncated to the last valid record and the resume
// still converges to the same result.
//
// This is a standalone binary (NOT part of ppat_tests): it re-executes
// itself via /proc/self/exe as a --child process that self-SIGKILLs, which
// must not happen inside the shared gtest process.
//
//   test_crash_resume --data <dir with source2.csv/target2.csv>
//     [--seed S]   randomization seed for the kill rounds (default: time)
//     [--server 1] run the multi-session server scenario instead: a
//                  server::SessionManager hosting THREE concurrent journaled
//                  sessions is SIGKILLed mid-batch; on restart all three
//                  sessions resume from their own journals and finish
//                  bitwise-identical to isolated uninterrupted runs.
//     [--hls 1]    run the mixed-space scenario instead: a transfer-GP
//                  PPATuner over the constrained HLS systolic-array space
//                  (small_gemm source -> large_gemm target, mixed kernel)
//                  is SIGKILLed between rounds and mid-batch; resumes must
//                  reproduce the uninterrupted run bitwise. (--data is
//                  accepted but unused; the HLS benchmark is synthesized.)
//
// Scenario task: Source2 -> Target2 (paper Table 1; 1440/727 points),
// power+delay objectives, transfer-GP PPATuner over a LiveCandidatePool
// whose oracle serves golden QoR from the benchmark table — deterministic,
// so bitwise comparison is meaningful — under 1 and 4 licenses.
//
// On failure the scratch directory (PPAT_CRASH_SCRATCH or
// ./crash_resume_scratch) is kept for inspection, including the journals.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "flow/benchmark.hpp"
#include "flow/eval_service.hpp"
#include "hls/systolic.hpp"
#include "journal/journal.hpp"
#include "server/session_manager.hpp"
#include "tuner/live_pool.hpp"
#include "tuner/ppatuner.hpp"
#include "tuner/surrogate.hpp"

namespace {

namespace fs = std::filesystem;
using namespace ppat;

const std::vector<std::size_t> kObjectives = {1, 2};  // power, delay

tuner::PPATunerOptions task_options() {
  tuner::PPATunerOptions opt;
  opt.seed = 42;
  opt.batch_size = 4;
  opt.max_runs = 80;
  opt.max_rounds = 40;
  opt.refit_every = 5;
  return opt;
}

/// Deterministic stand-in for the PD tool: serves each configuration's
/// golden QoR from the loaded benchmark table. Can SIGKILL the whole
/// process after a set number of evaluations (mid-batch crash injection).
class BenchmarkLookupOracle final : public flow::QorOracle {
 public:
  explicit BenchmarkLookupOracle(const flow::BenchmarkSet& set,
                                 long kill_after_evals = -1)
      : set_(set), kill_after_evals_(kill_after_evals) {
    for (std::size_t i = 0; i < set.configs.size(); ++i) {
      table_[key(set.configs[i])] = set.qor[i];
    }
  }

  flow::QoR evaluate(const flow::ParameterSpace&,
                     const flow::Config& config) override {
    const long n = ++evals_;
    if (kill_after_evals_ >= 0 && n > kill_after_evals_) {
      ::raise(SIGKILL);
    }
    const auto it = table_.find(key(config));
    if (it == table_.end()) {
      throw flow::ToolRunError("configuration not in the benchmark table");
    }
    return it->second;
  }
  std::size_t run_count() const override {
    return static_cast<std::size_t>(evals_.load());
  }

 private:
  static std::string key(const flow::Config& config) {
    return std::string(reinterpret_cast<const char*>(config.data()),
                       config.size() * sizeof(double));
  }

  const flow::BenchmarkSet& set_;
  std::map<std::string, flow::QoR> table_;
  std::atomic<long> evals_{0};
  long kill_after_evals_;
};

struct Task {
  flow::BenchmarkSet source;
  flow::BenchmarkSet target;
};

Task load_task(const std::string& data_dir) {
  Task t;
  t.source = flow::load_benchmark_csv(data_dir + "/source2.csv", "source2",
                                      flow::source2_space());
  t.target = flow::load_benchmark_csv(data_dir + "/target2.csv", "target2",
                                      flow::target2_space());
  return t;
}

/// The bitwise comparison payload: Pareto indices verbatim, tool runs, and
/// ADRS / hypervolume error printed as %a hex floats (every bit visible).
std::string fingerprint(const Task& task, const tuner::TuningResult& result) {
  tuner::BenchmarkCandidatePool scoring(&task.target, kObjectives);
  const auto q = tuner::evaluate_result(scoring, result);
  std::ostringstream out;
  out << "pareto:";
  for (std::size_t i : result.pareto_indices) out << " " << i;
  char buf[64];
  std::snprintf(buf, sizeof buf, "\nadrs: %a\nhv_error: %a\n", q.adrs,
                q.hv_error);
  out << "\ntool_runs: " << result.tool_runs << buf;
  return out.str();
}

/// Runs the Source2->Target2 tuning once in THIS process. `journal_dir`
/// empty = no journal (baseline). kill_round > 0: SIGKILL between rounds
/// when the loop reaches that round. kill_evals >= 0: SIGKILL mid-batch
/// after that many oracle evaluations. `lowrank` runs the surrogates on the
/// approximate (DTC) tier with warm-started refits: the joint system (200
/// source + target points) sits far above the 48-point switchover, so every
/// fit/refit goes through gp::SparsePosterior — resume must rebuild the
/// same low-rank state (landmarks consume no RNG; warm-start seeds are
/// regrown by replaying the refit sequence in order).
std::string run_task(const Task& task, const std::string& journal_dir,
                     std::size_t licenses, long kill_round, long kill_evals,
                     std::size_t* rounds_out = nullptr, bool lowrank = false) {
  BenchmarkLookupOracle oracle(task.target, kill_evals);
  flow::EvalServiceOptions svc;
  svc.licenses = licenses;
  flow::EvalService service(oracle, flow::target2_space(), svc);
  tuner::LiveCandidatePool pool(task.target.configs, kObjectives, service);

  std::unique_ptr<journal::RunJournal> jnl;
  if (!journal_dir.empty()) {
    bool has_journal = false;
    if (fs::exists(journal_dir)) {
      for (const auto& e : fs::directory_iterator(journal_dir)) {
        const auto ext = e.path().extension();
        if (ext == ".seg" || ext == ".open") has_journal = true;
      }
    }
    jnl = has_journal ? journal::RunJournal::open_resume(journal_dir)
                      : journal::RunJournal::create(journal_dir);
    pool.set_journal(jnl.get());
  }

  auto opt = task_options();
  opt.journal = jnl.get();
  if (kill_round > 0) {
    opt.on_round = [kill_round](const tuner::PPATunerProgress& p) {
      if (p.round >= static_cast<std::size_t>(kill_round)) ::raise(SIGKILL);
    };
  }
  const auto source_data = tuner::SourceData::from_benchmark(
      task.source, kObjectives, 200, task_options().seed + 1);
  tuner::SurrogateFactory factory;
  if (lowrank) {
    gp::TransferFitOptions fit_opt;
    fit_opt.warm_start = true;
    gp::LowRankOptions lr;
    lr.enabled = true;
    lr.switchover = 48;
    lr.num_inducing = 32;
    factory = tuner::make_transfer_gp_factory(
        source_data, tuner::KernelKind::kSquaredExponential, fit_opt, lr);
  } else {
    factory = tuner::make_transfer_gp_factory(source_data);
  }
  tuner::PPATunerDiagnostics diag;
  const auto result = tuner::run_ppatuner(pool, factory, opt, &diag);
  if (rounds_out != nullptr) *rounds_out = diag.rounds;
  return fingerprint(task, result);
}

// ---- Child mode -----------------------------------------------------------

int child_main(const std::map<std::string, std::string>& args) {
  const Task task = load_task(args.at("--data"));
  const long kill_round =
      args.count("--kill-round") ? std::stol(args.at("--kill-round")) : 0;
  const long kill_evals =
      args.count("--kill-evals") ? std::stol(args.at("--kill-evals")) : -1;
  const auto licenses =
      static_cast<std::size_t>(std::stoul(args.at("--licenses")));
  const bool lowrank = args.count("--lowrank") != 0;
  const std::string fp = run_task(task, args.at("--journal"), licenses,
                                  kill_round, kill_evals, nullptr, lowrank);
  std::ofstream out(args.at("--out"), std::ios::binary | std::ios::trunc);
  out << fp;
  return out.good() ? 0 : 1;
}

// ---- Multi-session server scenario ----------------------------------------
//
// Three tenants with different tuner seeds/batch sizes share one
// SessionManager (and its LicenseBroker). The crash is injected through a
// PROCESS-WIDE evaluation counter — whichever session's eval thread crosses
// the threshold takes the whole server down, mid-batch for everyone.

/// Benchmark-lookup oracle whose kill trigger counts evaluations across ALL
/// sessions in the process, not just its own.
class SharedKillOracle final : public flow::QorOracle {
 public:
  SharedKillOracle(const flow::BenchmarkSet& set, std::atomic<long>& shared,
                   long kill_after_evals)
      : inner_(set), shared_(shared), kill_after_evals_(kill_after_evals) {}

  flow::QoR evaluate(const flow::ParameterSpace& space,
                     const flow::Config& config) override {
    const long n = ++shared_;
    if (kill_after_evals_ >= 0 && n > kill_after_evals_) {
      ::raise(SIGKILL);
    }
    return inner_.evaluate(space, config);
  }
  std::size_t run_count() const override { return inner_.run_count(); }

 private:
  BenchmarkLookupOracle inner_;
  std::atomic<long>& shared_;
  long kill_after_evals_;
};

constexpr int kTenants = 3;

tuner::PPATunerOptions tenant_options(int tenant) {
  tuner::PPATunerOptions opt;
  opt.seed = 100 + 7 * static_cast<std::uint64_t>(tenant);
  opt.batch_size = 3 + static_cast<std::size_t>(tenant);
  opt.max_runs = 40;
  opt.max_rounds = 25;
  opt.refit_every = 5;
  opt.num_threads = 1;
  return opt;
}

/// Uninterrupted single-tenant run in THIS process, no journal, no broker —
/// the reference each resumed server session must reproduce bitwise.
std::string run_tenant_isolated(const Task& task, int tenant) {
  BenchmarkLookupOracle oracle(task.target);
  flow::EvalServiceOptions svc;
  svc.licenses = 2;
  flow::EvalService service(oracle, flow::target2_space(), svc);
  tuner::LiveCandidatePool pool(task.target.configs, kObjectives, service);
  const auto result = tuner::run_ppatuner(
      pool, tuner::make_plain_gp_factory(), tenant_options(tenant));
  return fingerprint(task, result);
}

/// Child mode: host all three tenants concurrently in one SessionManager.
/// kill_evals >= 0 arms the shared crash trigger; -1 runs (or resumes) to
/// completion and writes each tenant's fingerprint to <out>.s<tenant>.
int server_child_main(const std::map<std::string, std::string>& args) {
  const Task task = load_task(args.at("--data"));
  const long kill_evals =
      args.count("--kill-evals") ? std::stol(args.at("--kill-evals")) : -1;
  const std::string journal_root = args.at("--journal");
  const std::string out = args.at("--out");

  std::atomic<long> process_evals{0};

  server::SessionManagerOptions mopt;
  mopt.max_sessions = kTenants;
  mopt.total_licenses = 2;  // fewer licenses than sessions: real contention
  mopt.handle_signals = false;
  server::SessionManager manager(mopt);

  std::vector<std::uint64_t> ids;
  for (int t = 0; t < kTenants; ++t) {
    server::SessionConfig cfg;
    cfg.name = "tenant" + std::to_string(t);
    cfg.space = flow::target2_space();
    cfg.candidates = task.target.configs;
    cfg.objectives = kObjectives;
    cfg.make_oracle = [&task, &process_evals, kill_evals] {
      return std::make_unique<SharedKillOracle>(task.target, process_evals,
                                                kill_evals);
    };
    cfg.tuner = tenant_options(t);
    cfg.eval.licenses = 2;
    cfg.journal_dir = journal_root + "/s" + std::to_string(t);
    cfg.worker_threads = 1;
    ids.push_back(manager.open(cfg));
  }

  bool ok = true;
  for (int t = 0; t < kTenants; ++t) {
    const auto result = manager.wait(ids[t]);
    std::ofstream file(out + ".s" + std::to_string(t),
                       std::ios::binary | std::ios::trunc);
    file << fingerprint(task, result);
    ok = ok && file.good();
  }
  return ok ? 0 : 1;
}

// ---- Mixed-space (HLS) scenario -------------------------------------------
//
// Same kill-and-resume contract, but over the constrained systolic-array
// space: conditional/divisibility parameters, the mixed categorical kernel
// (direct-NLL fit path), and a transfer-GP seeded from the small-array
// task. The benchmark is synthesized deterministically, so the lookup
// oracle stays bitwise-reproducible without CSV data.

struct HlsTask {
  flow::BenchmarkSet source;
  flow::BenchmarkSet target;
};

HlsTask load_hls_task() {
  HlsTask t;
  t.source =
      hls::build_systolic_benchmark("hls_src", hls::small_gemm(), 300, 33);
  t.target =
      hls::build_systolic_benchmark("hls_tgt", hls::large_gemm(), 250, 34);
  return t;
}

tuner::PPATunerOptions hls_options() {
  tuner::PPATunerOptions opt;
  opt.seed = 17;
  opt.batch_size = 4;
  opt.max_runs = 48;
  opt.max_rounds = 30;
  opt.refit_every = 5;
  return opt;
}

std::string hls_fingerprint(const HlsTask& task,
                            const tuner::TuningResult& result) {
  tuner::BenchmarkCandidatePool scoring(&task.target, tuner::kAreaPowerDelay);
  const auto q = tuner::evaluate_result(scoring, result);
  std::ostringstream out;
  out << "pareto:";
  for (std::size_t i : result.pareto_indices) out << " " << i;
  char buf[64];
  std::snprintf(buf, sizeof buf, "\nadrs: %a\nhv_error: %a\n", q.adrs,
                q.hv_error);
  out << "\ntool_runs: " << result.tool_runs << buf;
  return out.str();
}

std::string hls_run_task(const HlsTask& task, const std::string& journal_dir,
                         std::size_t licenses, long kill_round,
                         long kill_evals, std::size_t* rounds_out = nullptr) {
  const auto space = hls::systolic_space(hls::large_gemm());
  BenchmarkLookupOracle oracle(task.target, kill_evals);
  flow::EvalServiceOptions svc;
  svc.licenses = licenses;
  flow::EvalService service(oracle, space, svc);
  tuner::LiveCandidatePool pool(task.target.configs, tuner::kAreaPowerDelay,
                                service);

  std::unique_ptr<journal::RunJournal> jnl;
  if (!journal_dir.empty()) {
    bool has_journal = false;
    if (fs::exists(journal_dir)) {
      for (const auto& e : fs::directory_iterator(journal_dir)) {
        const auto ext = e.path().extension();
        if (ext == ".seg" || ext == ".open") has_journal = true;
      }
    }
    jnl = has_journal ? journal::RunJournal::open_resume(journal_dir)
                      : journal::RunJournal::create(journal_dir);
    pool.set_journal(jnl.get());
  }

  auto opt = hls_options();
  opt.journal = jnl.get();
  if (kill_round > 0) {
    opt.on_round = [kill_round](const tuner::PPATunerProgress& p) {
      if (p.round >= static_cast<std::size_t>(kill_round)) ::raise(SIGKILL);
    };
  }
  const auto source_data = tuner::SourceData::from_benchmark(
      task.source, tuner::kAreaPowerDelay, 200, 7);
  const auto factory =
      tuner::default_transfer_gp_factory_for(space, source_data);
  tuner::PPATunerDiagnostics diag;
  const auto result = tuner::run_ppatuner(pool, factory, opt, &diag);
  if (rounds_out != nullptr) *rounds_out = diag.rounds;
  return hls_fingerprint(task, result);
}

int hls_child_main(const std::map<std::string, std::string>& args) {
  const HlsTask task = load_hls_task();
  const long kill_round =
      args.count("--kill-round") ? std::stol(args.at("--kill-round")) : 0;
  const long kill_evals =
      args.count("--kill-evals") ? std::stol(args.at("--kill-evals")) : -1;
  const auto licenses =
      static_cast<std::size_t>(std::stoul(args.at("--licenses")));
  const std::string fp = hls_run_task(task, args.at("--journal"), licenses,
                                      kill_round, kill_evals);
  std::ofstream out(args.at("--out"), std::ios::binary | std::ios::trunc);
  out << fp;
  return out.good() ? 0 : 1;
}

struct ChildExit {
  bool signalled = false;
  int code = 0;  // exit status, or the signal number when signalled
};

ChildExit spawn_child(const std::vector<std::string>& argv_strings) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(3);
  }
  if (pid == 0) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("/proc/self/exe"));
    for (const auto& s : argv_strings) argv.push_back(const_cast<char*>(s.c_str()));
    argv.push_back(nullptr);
    ::execv("/proc/self/exe", argv.data());
    std::perror("execv");
    std::_Exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    std::perror("waitpid");
    std::exit(3);
  }
  ChildExit e;
  if (WIFSIGNALED(status)) {
    e.signalled = true;
    e.code = WTERMSIG(status);
  } else {
    e.code = WEXITSTATUS(status);
  }
  return e;
}

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  ok: %s\n", what.c_str());
  } else {
    std::printf("  FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream data;
  data << in.rdbuf();
  return data.str();
}

/// Flips one byte near the end of the journal's highest-sequence segment.
void corrupt_tail(const std::string& journal_dir) {
  fs::path last;
  for (const auto& e : fs::directory_iterator(journal_dir)) {
    if (last.empty() || e.path().filename() > last.filename()) last = e.path();
  }
  const auto size = fs::file_size(last);
  const std::uint64_t victim = size - std::min<std::uint64_t>(size / 8 + 1, 64);
  std::fstream f(last, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(victim));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(victim));
  f.write(&byte, 1);
  std::printf("  corrupted byte %llu of %s (size %llu)\n",
              static_cast<unsigned long long>(victim), last.c_str(),
              static_cast<unsigned long long>(size));
}

/// One full scenario: spawn a child that crashes, optionally corrupt the
/// journal tail, then resume (possibly through several crashes) and compare
/// against the baseline fingerprint.
void run_scenario(const std::string& name, const std::string& scratch,
                  const std::string& data_dir, const std::string& baseline,
                  std::size_t licenses, long kill_round, long kill_evals,
                  bool corrupt, bool lowrank = false,
                  const char* child_flag = "--child") {
  std::printf("scenario %s (licenses=%zu kill_round=%ld kill_evals=%ld%s%s)\n",
              name.c_str(), licenses, kill_round, kill_evals,
              corrupt ? " corrupt-tail" : "", lowrank ? " lowrank" : "");
  const std::string dir = scratch + "/" + name + ".journal";
  const std::string out = scratch + "/" + name + ".result";
  fs::remove_all(dir);
  fs::remove(out);

  std::vector<std::string> base_args = {
      child_flag,   "1",   "--data", data_dir, "--journal", dir,
      "--licenses", std::to_string(licenses),  "--out",     out};
  if (lowrank) {
    base_args.push_back("--lowrank");
    base_args.push_back("1");
  }

  auto kill_args = base_args;
  if (kill_round > 0) {
    kill_args.push_back("--kill-round");
    kill_args.push_back(std::to_string(kill_round));
  }
  if (kill_evals >= 0) {
    kill_args.push_back("--kill-evals");
    kill_args.push_back(std::to_string(kill_evals));
  }
  const ChildExit crashed = spawn_child(kill_args);
  check(crashed.signalled && crashed.code == SIGKILL,
        "child was SIGKILLed mid-run");
  check(fs::exists(dir), "journal directory survives the kill");

  if (corrupt) corrupt_tail(dir);

  const ChildExit resumed = spawn_child(base_args);
  check(!resumed.signalled && resumed.code == 0, "resumed child completed");
  const std::string fp = read_file(out);
  check(!fp.empty(), "resumed child wrote its result");
  check(fp == baseline, "resumed result is bitwise-identical to baseline");
  if (fp != baseline) {
    std::printf("--- baseline ---\n%s--- resumed ---\n%s---\n",
                baseline.c_str(), fp.c_str());
  }
}

/// `--hls 1` entry: baseline the mixed-space transfer run uninterrupted,
/// then kill it between rounds and mid-batch; every resume must land on the
/// baseline fingerprint bitwise (acceptance gate for journal-resumable
/// mixed-space runs).
int hls_orchestrate(const std::map<std::string, std::string>& args) {
  const std::string data_dir = args.at("--data");
  const char* scratch_env = std::getenv("PPAT_CRASH_SCRATCH");
  const std::string scratch =
      std::string(scratch_env != nullptr ? scratch_env
                                         : "crash_resume_scratch") +
      "_hls";
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  const std::uint64_t seed =
      args.count("--seed")
          ? std::stoull(args.at("--seed"))
          : static_cast<std::uint64_t>(std::time(nullptr));
  std::printf("randomization seed: %llu (rerun with --seed to reproduce)\n",
              static_cast<unsigned long long>(seed));
  common::Rng rng(seed);

  const HlsTask task = load_hls_task();
  std::printf("HLS baseline run (uninterrupted, licenses=1)...\n");
  std::size_t baseline_rounds = 0;
  const std::string baseline =
      hls_run_task(task, "", 1, 0, -1, &baseline_rounds);
  std::printf("rounds: %zu\n%s", baseline_rounds, baseline.c_str());
  if (baseline_rounds < 3) {
    std::printf("FAIL: baseline finished in %zu rounds; nothing to kill\n",
                baseline_rounds);
    return 1;
  }
  std::printf("HLS baseline run (uninterrupted, licenses=4)...\n");
  const std::string baseline4 = hls_run_task(task, "", 4, 0, -1);
  check(baseline4 == baseline, "licenses=4 baseline matches licenses=1");

  const auto max_kill = static_cast<std::uint64_t>(
      std::min<std::size_t>(baseline_rounds - 1, 12));
  // Between-round kills at both license counts.
  const long kill_a = 1 + static_cast<long>(rng.next_below(max_kill));
  long kill_b = 1 + static_cast<long>(rng.next_below(max_kill));
  if (kill_b == kill_a) kill_b = kill_a == 1 ? 2 : kill_a - 1;
  run_scenario("hls_kill_round_" + std::to_string(kill_a) + "_lic1", scratch,
               data_dir, baseline, 1, kill_a, -1, false, false, "--hls-child");
  run_scenario("hls_kill_round_" + std::to_string(kill_b) + "_lic4", scratch,
               data_dir, baseline, 4, kill_b, -1, false, false, "--hls-child");
  // Mid-batch kill from inside the oracle (torn batch in the journal).
  const long kill_evals =
      11 + static_cast<long>(rng.next_below(4 * (baseline_rounds - 1)));
  run_scenario("hls_kill_midbatch", scratch, data_dir, baseline, 4, 0,
               kill_evals, false, false, "--hls-child");

  if (g_failures == 0) {
    fs::remove_all(scratch);
    std::printf("PASS: all HLS mixed-space resumes bitwise-identical\n");
    return 0;
  }
  std::printf("FAIL: %d check(s) failed; scratch kept at %s\n", g_failures,
              scratch.c_str());
  return 1;
}

/// `--server 1` entry: baseline each tenant in isolation, SIGKILL a
/// three-session server mid-batch, restart it, and demand every session's
/// resumed result be bitwise-identical to its isolated baseline.
int server_orchestrate(const std::map<std::string, std::string>& args) {
  const std::string data_dir = args.at("--data");
  const char* scratch_env = std::getenv("PPAT_CRASH_SCRATCH");
  const std::string scratch =
      std::string(scratch_env != nullptr ? scratch_env
                                         : "crash_resume_scratch") +
      "_server";
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  const std::uint64_t seed =
      args.count("--seed")
          ? std::stoull(args.at("--seed"))
          : static_cast<std::uint64_t>(std::time(nullptr));
  std::printf("randomization seed: %llu (rerun with --seed to reproduce)\n",
              static_cast<unsigned long long>(seed));
  common::Rng rng(seed);

  const Task task = load_task(data_dir);
  std::vector<std::string> baselines;
  for (int t = 0; t < kTenants; ++t) {
    std::printf("tenant %d baseline (isolated, uninterrupted)...\n", t);
    baselines.push_back(run_tenant_isolated(task, t));
  }

  const std::string dir = scratch + "/server.journals";
  const std::string out = scratch + "/server.result";

  // Kill threshold: past the point where every session has journaled work
  // (3 sessions x ~10 init evals) but well inside the tuning loops, so the
  // SIGKILL lands mid-batch with all three journals mid-flight.
  const long kill_evals = 35 + static_cast<long>(rng.next_below(30));
  std::printf("server scenario (3 sessions, kill after %ld total evals)\n",
              kill_evals);
  const ChildExit crashed = spawn_child(
      {"--server-child", "1", "--data", data_dir, "--journal", dir, "--out",
       out, "--kill-evals", std::to_string(kill_evals)});
  check(crashed.signalled && crashed.code == SIGKILL,
        "server process was SIGKILLed mid-batch");
  for (int t = 0; t < kTenants; ++t) {
    check(fs::exists(dir + "/s" + std::to_string(t)),
          "session " + std::to_string(t) + " journal survives the kill");
  }

  const ChildExit resumed = spawn_child(
      {"--server-child", "1", "--data", data_dir, "--journal", dir, "--out",
       out});
  check(!resumed.signalled && resumed.code == 0,
        "restarted server drained all three sessions");
  for (int t = 0; t < kTenants; ++t) {
    const std::string fp = read_file(out + ".s" + std::to_string(t));
    check(!fp.empty(),
          "session " + std::to_string(t) + " wrote its resumed result");
    check(fp == baselines[static_cast<std::size_t>(t)],
          "session " + std::to_string(t) +
              " resumed bitwise-identical to its isolated baseline");
    if (fp != baselines[static_cast<std::size_t>(t)]) {
      std::printf("--- baseline %d ---\n%s--- resumed %d ---\n%s---\n", t,
                  baselines[static_cast<std::size_t>(t)].c_str(), t,
                  fp.c_str());
    }
  }

  if (g_failures == 0) {
    fs::remove_all(scratch);
    std::printf("PASS: all server sessions resumed bitwise-identical\n");
    return 0;
  }
  std::printf("FAIL: %d check(s) failed; scratch kept at %s\n", g_failures,
              scratch.c_str());
  return 1;
}

int orchestrate(const std::map<std::string, std::string>& args) {
  const std::string data_dir = args.at("--data");
  const char* scratch_env = std::getenv("PPAT_CRASH_SCRATCH");
  const std::string scratch =
      scratch_env != nullptr ? scratch_env : "crash_resume_scratch";
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  const std::uint64_t seed =
      args.count("--seed")
          ? std::stoull(args.at("--seed"))
          : static_cast<std::uint64_t>(std::time(nullptr));
  std::printf("randomization seed: %llu (rerun with --seed to reproduce)\n",
              static_cast<unsigned long long>(seed));
  common::Rng rng(seed);

  const Task task = load_task(data_dir);
  std::printf("baseline run (uninterrupted, licenses=1)...\n");
  std::size_t baseline_rounds = 0;
  const std::string baseline = run_task(task, "", 1, 0, -1, &baseline_rounds);
  std::printf("rounds: %zu\n%s", baseline_rounds, baseline.c_str());
  if (baseline_rounds < 3) {
    std::printf("FAIL: baseline finished in %zu rounds; nothing to kill\n",
                baseline_rounds);
    return 1;
  }

  // The bitwise guarantee must be license-independent: the same baseline
  // serves both license counts (verified directly here).
  std::printf("baseline run (uninterrupted, licenses=4)...\n");
  const std::string baseline4 = run_task(task, "", 4, 0, -1);
  check(baseline4 == baseline, "licenses=4 baseline matches licenses=1");

  // >= 3 randomized kill rounds strictly inside the run, split across both
  // license counts. (A kill round past the loop's natural end would let the
  // "crash" child complete normally.)
  const auto max_kill =
      static_cast<std::uint64_t>(std::min<std::size_t>(baseline_rounds - 1, 12));
  std::vector<long> kill_rounds;
  while (kill_rounds.size() < std::min<std::size_t>(3, max_kill)) {
    const long r = 1 + static_cast<long>(rng.next_below(max_kill));
    bool dup = false;
    for (long k : kill_rounds) dup = dup || k == r;
    if (!dup) kill_rounds.push_back(r);
  }
  for (std::size_t i = 0; i < kill_rounds.size(); ++i) {
    const std::size_t licenses = i % 2 == 0 ? 1 : 4;
    run_scenario("kill_round_" + std::to_string(kill_rounds[i]) + "_lic" +
                     std::to_string(licenses),
                 scratch, data_dir, baseline, licenses, kill_rounds[i], -1,
                 false);
  }

  // Mid-batch crash: SIGKILL from inside the oracle while a 4-license batch
  // is in flight — the per-completion journal hook has already persisted
  // part of the batch, so resume recovers a torn batch.
  // Init takes ~10 evaluations and each round up to 4 more; landing the
  // kill between those bounds guarantees it happens inside a round's batch.
  const long kill_evals =
      11 + static_cast<long>(rng.next_below(4 * (baseline_rounds - 1)));
  run_scenario("kill_midbatch", scratch, data_dir, baseline, 4, 0, kill_evals,
               false);

  // Corrupt-tail: crash, then flip a byte near the journal tail. Resume
  // must truncate to the last valid record and still converge bitwise.
  run_scenario("corrupt_tail", scratch, data_dir, baseline, 1,
               1 + static_cast<long>(rng.next_below(max_kill)), -1, true);

  // Approximate (low-rank) tier with warm-started refits: the crash-resume
  // guarantee must hold on the scalable surrogate path too. Its baseline is
  // its own — the DTC posterior is not bit-identical to the exact tier —
  // but kill + resume must reproduce it bitwise.
  std::printf("baseline run (uninterrupted, low-rank tier)...\n");
  const std::string baseline_lr =
      run_task(task, "", 1, 0, -1, nullptr, /*lowrank=*/true);
  run_scenario("kill_lowrank", scratch, data_dir, baseline_lr, 1,
               1 + static_cast<long>(rng.next_below(max_kill)), -1, false,
               /*lowrank=*/true);

  if (g_failures == 0) {
    fs::remove_all(scratch);
    std::printf("PASS: all crash-resume scenarios bitwise-identical\n");
    return 0;
  }
  std::printf("FAIL: %d check(s) failed; scratch kept at %s\n", g_failures,
              scratch.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-' && i + 1 < argc) {
      const std::string key = argv[i];
      args[key] = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s --data <dir> [--seed S]\n", argv[0]);
      return 2;
    }
  }
  if (args.count("--data") == 0) {
    std::fprintf(stderr, "missing --data <dir with source2/target2 csvs>\n");
    return 2;
  }
  try {
    if (args.count("--server-child")) return server_child_main(args);
    if (args.count("--hls-child")) return hls_child_main(args);
    if (args.count("--child")) return child_main(args);
    if (args.count("--server")) return server_orchestrate(args);
    if (args.count("--hls")) return hls_orchestrate(args);
    return orchestrate(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
