#include "hls/systolic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "baselines/tcad19.hpp"
#include "sample/constrained.hpp"
#include "tuner/ppatuner.hpp"
#include "tuner/problem.hpp"
#include "tuner/surrogate.hpp"

namespace ppat::hls {
namespace {

TEST(SystolicSpace, MixedConditionalStructure) {
  const auto small = systolic_space(small_gemm());
  const auto large = systolic_space(large_gemm());
  EXPECT_TRUE(small.has_constraints());
  EXPECT_TRUE(large.has_constraints());
  // The transfer pair keeps parameter names/types aligned (equal encoded
  // dimension), mirroring the paper's Target1 -> Target2 setup.
  ASSERT_EQ(small.size(), large.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small.spec(i).name, large.spec(i).name);
    EXPECT_EQ(static_cast<int>(small.spec(i).type),
              static_cast<int>(large.spec(i).type));
  }
  // But over different domains (64 has 7 divisors, 256 has 9).
  EXPECT_LT(small.cardinality(0), large.cardinality(0));
}

TEST(SystolicOracle, DeterministicAndCountsRuns) {
  const auto w = small_gemm();
  const auto space = systolic_space(w);
  SystolicOracle a(w, 3), b(w, 3), other_seed(w, 4);
  const flow::Config c = space.decode_feasible(
      linalg::Vector(space.size(), 0.6));
  const flow::QoR qa = a.evaluate(space, c);
  const flow::QoR qb = b.evaluate(space, c);
  EXPECT_EQ(qa.area_um2, qb.area_um2);
  EXPECT_EQ(qa.power_mw, qb.power_mw);
  EXPECT_EQ(qa.delay_ns, qb.delay_ns);
  EXPECT_EQ(a.run_count(), 1u);
  // The jitter decorrelates seeds without changing resource counts.
  const flow::QoR qc = other_seed.evaluate(space, c);
  EXPECT_EQ(qc.area_um2, qa.area_um2);
  EXPECT_NE(qc.delay_ns, qa.delay_ns);
}

TEST(SystolicOracle, RejectsInfeasibleConfigs) {
  const auto w = small_gemm();
  const auto space = systolic_space(w);
  SystolicOracle oracle(w, 1);
  flow::Config c = space.decode_feasible(linalg::Vector(space.size(), 0.9));
  // Break divisibility: simd = 8 with lat_hide forced to a non-multiple.
  c[space.index_of("lat_hide")] = 1.0;
  c[space.index_of("simd")] = 8.0;
  EXPECT_THROW(oracle.evaluate(space, c), std::invalid_argument);
  EXPECT_EQ(oracle.run_count(), 0u);
}

TEST(SystolicOracle, CostModelTradeoffs) {
  const auto w = small_gemm();
  const auto space = systolic_space(w);
  SystolicOracle oracle(w, 1);
  auto config_with = [&](double pe, double simd, double lat) {
    flow::Config c(space.size());
    c[space.index_of("pe_rows")] = pe;
    c[space.index_of("pe_cols")] = pe;
    c[space.index_of("array_part")] = 0.0;
    c[space.index_of("l2_rows")] = 1.0;
    c[space.index_of("l2_cols")] = 1.0;
    c[space.index_of("lat_hide")] = lat;
    c[space.index_of("simd")] = simd;
    c[space.index_of("data_pack")] = 0.0;
    EXPECT_TRUE(space.is_feasible(c));
    return c;
  };
  // More PEs: more DSPs, less latency (within budget).
  const auto small_arr = oracle.cost(space, config_with(4.0, 1.0, 8.0));
  const auto big_arr = oracle.cost(space, config_with(8.0, 1.0, 8.0));
  EXPECT_GT(big_arr.dsp, small_arr.dsp);
  EXPECT_LT(big_arr.latency_us, small_arr.latency_us);
  // Latency hiding: covering the accumulation latency lowers II.
  const auto no_hide = oracle.cost(space, config_with(4.0, 1.0, 1.0));
  EXPECT_GT(no_hide.latency_us, small_arr.latency_us);
}

TEST(SystolicBenchmark, DeterministicFeasibleAndDistinct) {
  const auto w = small_gemm();
  const auto a = build_systolic_benchmark("hls_a", w, 100, 9);
  const auto b = build_systolic_benchmark("hls_b", w, 100, 9);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GE(a.size(), 80u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.configs[i], b.configs[i]);
    EXPECT_EQ(a.qor[i].delay_ns, b.qor[i].delay_ns);
    ASSERT_TRUE(a.space.is_feasible(a.configs[i]));
  }
}

// End-to-end: PPATuner and a baseline both drive the mixed-space pool
// through the standard plumbing and land near the golden front.
TEST(HlsEndToEnd, PPATunerAndBaselineRun) {
  const auto bench = build_systolic_benchmark("hls_e2e", small_gemm(), 250, 21);
  {
    tuner::BenchmarkCandidatePool pool(&bench, tuner::kAreaPowerDelay);
    tuner::PPATunerOptions opt;
    opt.max_runs = 60;
    opt.batch_size = 5;
    opt.seed = 5;
    const auto result = tuner::run_ppatuner(
        pool, tuner::default_gp_factory_for(bench.space), opt);
    ASSERT_FALSE(result.pareto_indices.empty());
    const auto quality = tuner::evaluate_result(pool, result);
    EXPECT_LT(quality.adrs, 0.5);
    EXPECT_LE(result.tool_runs, 60u);
  }
  {
    tuner::BenchmarkCandidatePool pool(&bench, tuner::kAreaPowerDelay);
    baselines::Tcad19Options opt;
    opt.max_runs = 60;
    opt.seed = 5;
    const auto result = baselines::run_tcad19(pool, opt);
    ASSERT_FALSE(result.pareto_indices.empty());
    const auto quality = tuner::evaluate_result(pool, result);
    EXPECT_LT(quality.adrs, 1.0);
  }
}

// The transfer scenario: small-array source data must help on the large
// array (mean ADRS over seeds strictly better than the no-transfer GP at
// the same run budget). This is the tier-1 gate for acceptance criterion 4;
// EXPERIMENTS.md tabulates the same sweep at more budgets.
TEST(HlsTransfer, SmallToLargeBeatsNoTransferOnAdrs) {
  const auto source_bench =
      build_systolic_benchmark("hls_src", small_gemm(), 300, 33);
  const auto target_bench =
      build_systolic_benchmark("hls_tgt", large_gemm(), 250, 34);
  const auto source = tuner::SourceData::from_benchmark(
      source_bench, tuner::kAreaPowerDelay, 200, 7);

  double transfer_sum = 0.0;
  double plain_sum = 0.0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    tuner::PPATunerOptions opt;
    opt.max_runs = 40;
    opt.batch_size = 5;
    opt.seed = seed;
    {
      tuner::BenchmarkCandidatePool pool(&target_bench,
                                         tuner::kAreaPowerDelay);
      const auto result = tuner::run_ppatuner(
          pool,
          tuner::default_transfer_gp_factory_for(target_bench.space, source),
          opt);
      transfer_sum += tuner::evaluate_result(pool, result).adrs;
    }
    {
      tuner::BenchmarkCandidatePool pool(&target_bench,
                                         tuner::kAreaPowerDelay);
      const auto result = tuner::run_ppatuner(
          pool, tuner::default_gp_factory_for(target_bench.space), opt);
      plain_sum += tuner::evaluate_result(pool, result).adrs;
    }
  }
  EXPECT_LT(transfer_sum / 3.0, plain_sum / 3.0)
      << "transfer ADRS " << transfer_sum / 3.0 << " vs no-transfer "
      << plain_sum / 3.0;
}

}  // namespace
}  // namespace ppat::hls
