#include "tuner/problem.hpp"

#include <gtest/gtest.h>

#include "synthetic_benchmark.hpp"

namespace ppat::tuner {
namespace {

TEST(ObjectiveSpaces, Names) {
  EXPECT_STREQ(objective_space_name(kAreaDelay), "Area-Delay");
  EXPECT_STREQ(objective_space_name(kPowerDelay), "Power-Delay");
  EXPECT_STREQ(objective_space_name(kAreaPowerDelay), "Area-Power-Delay");
  EXPECT_STREQ(objective_space_name({0}), "custom");
}

class PoolTest : public ::testing::Test {
 protected:
  PoolTest() : bench_(testing::synthetic_benchmark("t", 100, 1)) {}
  flow::BenchmarkSet bench_;
};

TEST_F(PoolTest, RevealCountsFirstTimeOnly) {
  BenchmarkCandidatePool pool(&bench_, kPowerDelay);
  EXPECT_EQ(pool.runs(), 0u);
  EXPECT_FALSE(pool.is_revealed(5));
  const auto y1 = pool.reveal(5);
  EXPECT_EQ(pool.runs(), 1u);
  EXPECT_TRUE(pool.is_revealed(5));
  const auto y2 = pool.reveal(5);
  EXPECT_EQ(pool.runs(), 1u);  // repeat is free
  EXPECT_EQ(y1, y2);
}

TEST_F(PoolTest, GoldenProjectsObjectives) {
  BenchmarkCandidatePool pool(&bench_, kPowerDelay);
  const auto p = pool.golden(7);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], bench_.qor[7].power_mw);
  EXPECT_DOUBLE_EQ(p[1], bench_.qor[7].delay_ns);

  BenchmarkCandidatePool pool3(&bench_, kAreaPowerDelay);
  EXPECT_EQ(pool3.golden(7).size(), 3u);
  EXPECT_EQ(pool3.num_objectives(), 3u);
}

TEST_F(PoolTest, GoldenFrontIsNonDominated) {
  BenchmarkCandidatePool pool(&bench_, kPowerDelay);
  const auto front = pool.golden_front();
  ASSERT_FALSE(front.empty());
  for (const auto& a : front) {
    for (const auto& b : front) {
      EXPECT_FALSE(pareto::dominates(a, b));
    }
  }
}

TEST_F(PoolTest, ConstructorValidates) {
  EXPECT_THROW(BenchmarkCandidatePool(nullptr, kPowerDelay), std::invalid_argument);
  EXPECT_THROW(BenchmarkCandidatePool(&bench_, {}), std::invalid_argument);
}

TEST_F(PoolTest, EvaluatePerfectResultScoresZero) {
  BenchmarkCandidatePool pool(&bench_, kPowerDelay);
  // The indices of the true front form a perfect answer.
  std::vector<pareto::Point> all;
  for (std::size_t i = 0; i < pool.size(); ++i) all.push_back(pool.golden(i));
  TuningResult result;
  result.pareto_indices = pareto::pareto_front_indices(all);
  result.tool_runs = 42;
  const auto q = evaluate_result(pool, result);
  EXPECT_NEAR(q.hv_error, 0.0, 1e-12);
  EXPECT_NEAR(q.adrs, 0.0, 1e-12);
  EXPECT_EQ(q.runs, 42u);
}

TEST_F(PoolTest, EvaluateWorseResultScoresPositive) {
  BenchmarkCandidatePool pool(&bench_, kPowerDelay);
  // Deliberately pick a dominated point as the whole answer.
  std::vector<pareto::Point> all;
  for (std::size_t i = 0; i < pool.size(); ++i) all.push_back(pool.golden(i));
  const auto front = pareto::pareto_front_indices(all);
  std::size_t dominated = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (std::find(front.begin(), front.end(), i) == front.end()) {
      dominated = i;
      break;
    }
  }
  TuningResult result;
  result.pareto_indices = {dominated};
  const auto q = evaluate_result(pool, result);
  EXPECT_GT(q.hv_error, 0.0);
  EXPECT_GT(q.adrs, 0.0);
}

TEST_F(PoolTest, EvaluateRejectsEmptyAnswer) {
  BenchmarkCandidatePool pool(&bench_, kPowerDelay);
  EXPECT_THROW(evaluate_result(pool, TuningResult{}), std::invalid_argument);
}

TEST(SourceDataTest, SubsamplesToCap) {
  const auto bench = testing::synthetic_benchmark("s", 300, 2);
  const auto data = SourceData::from_benchmark(bench, kAreaPowerDelay, 100, 7);
  EXPECT_EQ(data.size(), 100u);
  ASSERT_EQ(data.ys.size(), 3u);
  EXPECT_EQ(data.ys[0].size(), 100u);
  // Encoded configs live in the unit cube.
  for (const auto& x : data.xs) {
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(SourceDataTest, SmallSourceTakenWhole) {
  const auto bench = testing::synthetic_benchmark("s", 30, 3);
  const auto data = SourceData::from_benchmark(bench, kPowerDelay, 100, 7);
  EXPECT_EQ(data.size(), 30u);
  ASSERT_EQ(data.ys.size(), 2u);
  // Column order follows the objective list (power first).
  EXPECT_DOUBLE_EQ(data.ys[0][0], bench.qor[0].power_mw);
}

}  // namespace
}  // namespace ppat::tuner
