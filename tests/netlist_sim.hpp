// Test-only gate-level logic simulator: evaluates a Netlist cycle by cycle
// so structural generators (the MAC builder) can be verified functionally,
// not just structurally.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "netlist/netlist.hpp"

namespace ppat::netlist::testing {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl)
      : nl_(nl),
        net_value_(nl.num_nets(), false),
        ff_state_(nl.num_instances(), false),
        topo_(nl.topological_order()) {}

  void set_input(NetId pi, bool value) { net_value_[pi] = value; }

  /// Evaluates combinational logic from primary inputs + current FF states.
  void eval() {
    for (InstanceId i = 0; i < nl_.num_instances(); ++i) {
      if (nl_.is_sequential(i)) {
        net_value_[nl_.instance(i).fanout] = ff_state_[i];
      }
    }
    for (InstanceId i : topo_) {
      const auto& inst = nl_.instance(i);
      net_value_[inst.fanout] = eval_cell(i);
    }
  }

  /// One clock edge: all FFs capture their D input simultaneously.
  void clock() {
    eval();
    std::vector<bool> next(ff_state_.size());
    for (InstanceId i = 0; i < nl_.num_instances(); ++i) {
      if (nl_.is_sequential(i)) {
        next[i] = net_value_[nl_.instance(i).fanins[0]];
      }
    }
    ff_state_ = std::move(next);
    eval();
  }

  bool value(NetId net) const { return net_value_[net]; }

  /// Interprets a bit vector of nets (LSB first) as an unsigned integer.
  std::uint64_t read_bus(const std::vector<NetId>& bits) const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (net_value_[bits[i]]) v |= (1ull << i);
    }
    return v;
  }

 private:
  bool eval_cell(InstanceId i) const {
    const auto& inst = nl_.instance(i);
    auto in = [&](std::size_t pin) {
      return net_value_[inst.fanins[pin]];
    };
    switch (nl_.library().cell(inst.cell).function) {
      case CellFunction::kInv:
        return !in(0);
      case CellFunction::kBuf:
        return in(0);
      case CellFunction::kNand2:
        return !(in(0) && in(1));
      case CellFunction::kNor2:
        return !(in(0) || in(1));
      case CellFunction::kAnd2:
        return in(0) && in(1);
      case CellFunction::kOr2:
        return in(0) || in(1);
      case CellFunction::kXor2:
        return in(0) != in(1);
      case CellFunction::kXnor2:
        return in(0) == in(1);
      case CellFunction::kAoi21:
        return !((in(0) && in(1)) || in(2));
      case CellFunction::kMux2:
        return in(2) ? in(1) : in(0);
      case CellFunction::kHalfAdder:
        return in(0) != in(1);  // sum output convention
      case CellFunction::kFullAdderSum:
        return (in(0) != in(1)) != in(2);
      case CellFunction::kFullAdderCarry:
        return (in(0) && in(1)) || (in(2) && (in(0) != in(1)));
      case CellFunction::kDff:
        throw std::logic_error("DFF evaluated combinationally");
    }
    return false;
  }

  const Netlist& nl_;
  std::vector<bool> net_value_;
  std::vector<bool> ff_state_;
  std::vector<InstanceId> topo_;
};

}  // namespace ppat::netlist::testing
