#include "place/placer.hpp"

#include <gtest/gtest.h>

#include "netlist/mac_generator.hpp"

namespace ppat::place {
namespace {

class PlacerTest : public ::testing::Test {
 protected:
  PlacerTest() : lib_(netlist::CellLibrary::make_default()) {
    netlist::MacConfig cfg;
    cfg.operand_bits = 6;
    cfg.lanes = 3;
    nl_ = std::make_unique<netlist::Netlist>(
        netlist::generate_mac(lib_, cfg));
  }
  netlist::CellLibrary lib_;
  std::unique_ptr<netlist::Netlist> nl_;
};

TEST_F(PlacerTest, AllCellsInsideDie) {
  PlacerOptions opt;
  const Placement p = place(*nl_, opt);
  ASSERT_EQ(p.x.size(), nl_->num_instances());
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    EXPECT_GE(p.x[i], 0.0);
    EXPECT_LE(p.x[i], p.die_width_um);
    EXPECT_GE(p.y[i], 0.0);
    EXPECT_LE(p.y[i], p.die_height_um);
  }
}

TEST_F(PlacerTest, DieSizedFromUtilization) {
  PlacerOptions opt;
  opt.target_utilization = 0.5;
  const Placement p = place(*nl_, opt);
  const double die_area = p.die_width_um * p.die_height_um;
  EXPECT_NEAR(die_area, nl_->total_cell_area() / 0.5, 1e-6);
}

TEST_F(PlacerTest, DeterministicForSameSeed) {
  PlacerOptions opt;
  opt.seed = 99;
  const Placement a = place(*nl_, opt);
  const Placement b = place(*nl_, opt);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.net_hpwl_um, b.net_hpwl_um);
}

TEST_F(PlacerTest, SeedChangesPlacement) {
  PlacerOptions opt;
  opt.seed = 1;
  const Placement a = place(*nl_, opt);
  opt.seed = 2;
  const Placement b = place(*nl_, opt);
  EXPECT_NE(a.x, b.x);
}

TEST_F(PlacerTest, HpwlSizedAndNonNegative) {
  const Placement p = place(*nl_, PlacerOptions{});
  ASSERT_EQ(p.net_hpwl_um.size(), nl_->num_nets());
  double total = 0.0;
  for (double h : p.net_hpwl_um) {
    EXPECT_GE(h, 0.0);
    total += h;
  }
  EXPECT_GT(total, 0.0);
  EXPECT_NEAR(p.total_hpwl_um(), total, 1e-9);
}

TEST_F(PlacerTest, RelaxationReducesWirelength) {
  PlacerOptions few;
  few.effort_iterations = 2;
  PlacerOptions many = few;
  many.effort_iterations = 20;
  const double hpwl_few = place(*nl_, few).total_hpwl_um();
  const double hpwl_many = place(*nl_, many).total_hpwl_um();
  EXPECT_LT(hpwl_many, hpwl_few);
}

TEST_F(PlacerTest, DensityCapLimitsBinFill) {
  PlacerOptions tight;
  tight.max_density = 0.70;
  tight.effort_iterations = 16;
  const Placement p = place(*nl_, tight);
  // Spreading is iterative, not exact legalization: allow headroom, but the
  // peak must come down toward the cap (random start peaks are much higher).
  EXPECT_LT(p.max_bin_density(), 3.0 * tight.max_density);
}

TEST_F(PlacerTest, UniformDensitySpreadsMore) {
  PlacerOptions base;
  base.uniform_density = false;
  PlacerOptions uniform = base;
  uniform.uniform_density = true;
  const double peak_base = place(*nl_, base).max_bin_density();
  const double peak_uniform = place(*nl_, uniform).max_bin_density();
  EXPECT_LE(peak_uniform, peak_base + 1e-9);
}

TEST_F(PlacerTest, CongestionMapShapeAndRange) {
  const Placement p = place(*nl_, PlacerOptions{});
  EXPECT_EQ(p.bin_congestion.size(), p.grid_nx * p.grid_ny);
  for (double c : p.bin_congestion) EXPECT_GE(c, 0.0);
  EXPECT_GE(p.hot_congestion(), 0.0);
  EXPECT_GE(p.congestion_overflow(0.0), 0.0);
  EXPECT_LE(p.congestion_overflow(0.0), 1.0);
  // Threshold monotonicity.
  EXPECT_GE(p.congestion_overflow(0.5), p.congestion_overflow(1.5));
}

TEST_F(PlacerTest, HighCongestionEffortReducesHotspots) {
  PlacerOptions autoeffort;
  autoeffort.congestion_effort = CongestionEffort::kAuto;
  PlacerOptions high = autoeffort;
  high.congestion_effort = CongestionEffort::kHigh;
  const double hot_auto = place(*nl_, autoeffort).hot_congestion();
  const double hot_high = place(*nl_, high).hot_congestion();
  EXPECT_LE(hot_high, hot_auto * 1.05);  // at least not worse
}

}  // namespace
}  // namespace ppat::place
