#include "common/table.hpp"

#include <gtest/gtest.h>

namespace ppat::common {
namespace {

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t("Title");
  t.set_header({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  // Each data line should be as wide as the widest cell per column.
  EXPECT_NE(out.find("a      | 1"), std::string::npos);
  EXPECT_NE(out.find("longer | 22"), std::string::npos);
}

TEST(AsciiTable, SeparatorProducesRule) {
  AsciiTable t;
  t.set_header({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Two rules: one under the header, one inserted.
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("-\n", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_GE(rules, 2u);
}

TEST(AsciiTable, RowCount) {
  AsciiTable t;
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"a"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 3), "2.000");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
}

TEST(Format, General) {
  EXPECT_EQ(fmt_general(12345.678), "1.23e+04");
  EXPECT_EQ(fmt_general(0.25), "0.25");
}

}  // namespace
}  // namespace ppat::common
