// Test-only analytic benchmark sets: cheap, deterministic QoR surfaces with
// a genuine Pareto trade-off, plus a correlated "source task" variant, so
// tuner tests run in milliseconds instead of invoking the PD flow.
#pragma once

#include <atomic>
#include <cmath>

#include "common/rng.hpp"
#include "flow/benchmark.hpp"
#include "sample/sampling.hpp"

namespace ppat::testing {

inline flow::ParameterSpace synthetic_space() {
  return flow::ParameterSpace({
      flow::ParamSpec::real("p0", 0.0, 1.0),
      flow::ParamSpec::real("p1", 0.0, 1.0),
      flow::ParamSpec::real("p2", 0.0, 1.0),
  });
}

/// Analytic QoR with conflicting objectives:
///   area  falls with u0, power rises with u0 and falls with u1,
///   delay rises with u1 — so (area,power), (power,delay) and the
///   3-objective space all have non-trivial fronts. `shift` perturbs the
///   surface to emulate a related-but-different task.
inline flow::QoR synthetic_qor(const linalg::Vector& u, double shift = 0.0) {
  flow::QoR q;
  const double u0 = u[0], u1 = u[1], u2 = u[2];
  q.area_um2 = 100.0 * (1.5 - u0 + 0.2 * std::sin(3.0 * u1) + shift * u2);
  q.power_mw = 10.0 * (1.0 + 0.8 * u0 - 0.6 * u1 + 0.1 * u2 +
                       shift * 0.3 * std::cos(2.0 * u0));
  q.delay_ns = 1.0 + u1 + 0.15 * std::sin(4.0 * u0) + shift * 0.1 * u2;
  return q;
}

/// Live-oracle counterpart of synthetic_qor: what a BenchmarkSet built from
/// the same space/shift would contain, but computed on demand — so live-pool
/// runs can be compared point-for-point against benchmark replay.
/// Thread-safe (EvalService may call it from several licenses at once).
class SyntheticOracle final : public flow::QorOracle {
 public:
  explicit SyntheticOracle(double shift = 0.0) : shift_(shift) {}

  flow::QoR evaluate(const flow::ParameterSpace& space,
                     const flow::Config& config) override {
    ++runs_;
    return synthetic_qor(space.encode(config), shift_);
  }
  std::size_t run_count() const override { return runs_; }

 private:
  double shift_;
  std::atomic<std::size_t> runs_{0};
};

inline flow::BenchmarkSet synthetic_benchmark(const std::string& name,
                                              std::size_t n,
                                              std::uint64_t seed,
                                              double shift = 0.0) {
  flow::BenchmarkSet set;
  set.name = name;
  set.space = synthetic_space();
  common::Rng rng(seed);
  const auto points = sample::latin_hypercube(n, set.space.size(), rng);
  for (const auto& u : points) {
    set.configs.push_back(set.space.decode(u));
    set.qor.push_back(synthetic_qor(set.space.encode(set.configs.back()),
                                    shift));
  }
  return set;
}

}  // namespace ppat::testing
