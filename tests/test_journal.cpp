// Tests for the durable run journal: record framing, segment rotation,
// corrupt-tail truncation, meta verification, and replay-based bit-identical
// resume through run_ppatuner.
#include "journal/journal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "synthetic_benchmark.hpp"
#include "tuner/ppatuner.hpp"

namespace ppat::journal {
namespace {

namespace fs = std::filesystem;

/// Fresh (non-existent) journal directory path under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ppat_journal_" + name);
  fs::remove_all(dir);
  return dir.string();
}

RunMeta small_meta() {
  RunMeta meta;
  meta.seed = 42;
  meta.tau = 4.0;
  meta.delta_rel = 0.005;
  meta.init_fraction = 0.01;
  meta.batch_size = 5;
  meta.min_init = 10;
  meta.refit_every = 3;
  meta.max_runs = 100;
  meta.max_rounds = 50;
  meta.pool_size = 200;
  meta.num_objectives = 2;
  meta.objectives = {1, 2};
  meta.pool_fingerprint = 0xDEADBEEFCAFEF00Dull;
  return meta;
}

RevealRecord ok_reveal(std::uint64_t id, double a, double b) {
  RevealRecord rec;
  rec.id = id;
  rec.status = RevealStatus::kOk;
  rec.attempts = 1;
  rec.elapsed_ms = 12.5;
  rec.objectives = {a, b};
  return rec;
}

/// Writes one complete single-batch run and returns the directory.
std::string write_small_run(const std::string& name, JournalOptions options = {}) {
  const std::string dir = fresh_dir(name);
  auto jnl = RunJournal::create(dir, options);
  jnl->begin_run(small_meta());
  const std::vector<std::size_t> ids = {3, 7, 11};
  jnl->begin_batch(Phase::kInit, 0, ids);
  jnl->append_reveal(ok_reveal(3, 1.0, 2.0));
  jnl->append_reveal(ok_reveal(7, 3.0, 4.0));
  RevealRecord failed;
  failed.id = 11;
  failed.status = RevealStatus::kTimedOut;
  failed.attempts = 2;
  failed.error = "tool run exceeded deadline";
  jnl->append_reveal(failed);
  jnl->commit_batch(Phase::kInit, 0, 2, {1, 2, 3, 4});
  jnl->record_regions(1, 150, 0xABCDull);
  jnl->record_shutdown(ShutdownReason::kCompleted, 1);
  return dir;
}

TEST(Journal, FramingRoundTrip) {
  const std::string dir = write_small_run("roundtrip");
  const JournalContents contents = read_journal(dir);
  EXPECT_FALSE(contents.truncated);
  EXPECT_EQ(contents.segments, 1u);
  ASSERT_EQ(contents.entries.size(), 8u);

  const auto& header = contents.entries[0];
  EXPECT_EQ(header.kind, JournalEntry::Kind::kRunHeader);
  EXPECT_EQ(header.meta, small_meta());

  const auto& sel = contents.entries[1];
  EXPECT_EQ(sel.kind, JournalEntry::Kind::kSelection);
  EXPECT_EQ(sel.phase, Phase::kInit);
  EXPECT_EQ(sel.ids, (std::vector<std::uint64_t>{3, 7, 11}));

  const auto& rev = contents.entries[2];
  EXPECT_EQ(rev.kind, JournalEntry::Kind::kReveal);
  EXPECT_EQ(rev.reveal.id, 3u);
  EXPECT_TRUE(rev.reveal.ok());
  EXPECT_EQ(rev.reveal.objectives, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(rev.reveal.elapsed_ms, 12.5);

  const auto& bad = contents.entries[4];
  EXPECT_EQ(bad.reveal.status, RevealStatus::kTimedOut);
  EXPECT_EQ(bad.reveal.attempts, 2u);
  EXPECT_EQ(bad.reveal.error, "tool run exceeded deadline");
  EXPECT_TRUE(bad.reveal.objectives.empty());

  const auto& commit = contents.entries[5];
  EXPECT_EQ(commit.kind, JournalEntry::Kind::kBatchCommit);
  EXPECT_EQ(commit.runs_after, 2u);
  EXPECT_EQ(commit.rng_state, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));

  const auto& regions = contents.entries[6];
  EXPECT_EQ(regions.kind, JournalEntry::Kind::kRegions);
  EXPECT_EQ(regions.round, 1u);
  EXPECT_EQ(regions.alive_count, 150u);
  EXPECT_EQ(regions.region_digest, 0xABCDull);
  EXPECT_TRUE(regions.snapshot.empty());

  const auto& stop = contents.entries[7];
  EXPECT_EQ(stop.kind, JournalEntry::Kind::kShutdown);
  EXPECT_EQ(stop.reason, ShutdownReason::kCompleted);
}

TEST(Journal, RotationSealsSegmentsAtomically) {
  JournalOptions options;
  options.segment_bytes = 128;  // force a rotation every record or two
  options.fsync_each_commit = false;
  const std::string dir = fresh_dir("rotation");
  {
    auto jnl = RunJournal::create(dir, options);
    jnl->begin_run(small_meta());
    for (std::uint64_t round = 0; round < 8; ++round) {
      const std::vector<std::size_t> ids = {round};
      jnl->begin_batch(Phase::kRound, round, ids);
      jnl->append_reveal(ok_reveal(round, 1.0 * round, 2.0 * round));
      jnl->commit_batch(Phase::kRound, round, round + 1,
                        {round, round + 1, round + 2, round + 3});
    }
    jnl->record_shutdown(ShutdownReason::kCompleted, 8);
  }
  std::size_t sealed = 0, open = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".seg") ++sealed;
    if (e.path().extension() == ".open") ++open;
  }
  EXPECT_GT(sealed, 1u);
  EXPECT_EQ(open, 1u);

  const JournalContents contents = read_journal(dir);
  EXPECT_FALSE(contents.truncated);
  EXPECT_EQ(contents.segments, sealed + open);
  // 1 header + 8 x (selection + reveal + commit) + shutdown.
  ASSERT_EQ(contents.entries.size(), 1u + 8u * 3u + 1u);
  for (std::uint64_t round = 0; round < 8; ++round) {
    const auto& commit = contents.entries[1 + round * 3 + 2];
    ASSERT_EQ(commit.kind, JournalEntry::Kind::kBatchCommit);
    EXPECT_EQ(commit.round, round);
    EXPECT_EQ(commit.runs_after, round + 1);
  }
}

TEST(Journal, RegionSnapshotsWrittenOnCadence) {
  JournalOptions options;
  options.region_snapshot_every = 2;
  const std::string dir = fresh_dir("snapshots");
  {
    auto jnl = RunJournal::create(dir, options);
    jnl->begin_run(small_meta());
    for (std::uint64_t round = 1; round <= 4; ++round) {
      jnl->record_regions(round, 10, 0x1000 + round, [round] {
        std::vector<RegionSnapshotEntry> snap(1);
        snap[0].id = round;
        snap[0].lo = {0.0, -1.0};
        snap[0].hi = {1.0, 2.0};
        return snap;
      });
    }
    jnl->record_shutdown(ShutdownReason::kCompleted, 4);
  }
  const JournalContents contents = read_journal(dir);
  std::size_t with_snapshot = 0;
  for (const auto& entry : contents.entries) {
    if (entry.kind != JournalEntry::Kind::kRegions) continue;
    if (!entry.snapshot.empty()) {
      ++with_snapshot;
      ASSERT_EQ(entry.snapshot.size(), 1u);
      EXPECT_EQ(entry.snapshot[0].id, entry.round);
      EXPECT_EQ(entry.snapshot[0].lo, (std::vector<double>{0.0, -1.0}));
      EXPECT_EQ(entry.snapshot[0].hi, (std::vector<double>{1.0, 2.0}));
    }
  }
  EXPECT_EQ(with_snapshot, 2u);  // rounds 2 and 4
}

TEST(Journal, CorruptTailIsDetectedTruncatedAndRepaired) {
  const std::string dir = write_small_run("corrupt");
  // Locate the single segment file and flip one byte well past the header,
  // corrupting some record's CRC (or its framing — both must be caught).
  fs::path segment;
  for (const auto& e : fs::directory_iterator(dir)) segment = e.path();
  const auto size = fs::file_size(segment);
  ASSERT_GT(size, 64u);
  const std::uint64_t victim = size - size / 4;  // inside the tail records
  {
    std::fstream f(segment, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(victim));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(victim));
    f.write(&byte, 1);
  }

  const JournalContents before = read_journal(dir);
  EXPECT_TRUE(before.truncated);
  EXPECT_FALSE(before.truncation_note.empty());
  ASSERT_GE(before.entries.size(), 1u);  // the header must survive
  EXPECT_LT(before.entries.size(), 8u);
  EXPECT_EQ(before.entries[0].kind, JournalEntry::Kind::kRunHeader);

  // open_resume physically truncates the torn tail: a re-read is clean and
  // holds exactly the surviving prefix.
  {
    auto jnl = RunJournal::open_resume(dir);
    EXPECT_TRUE(jnl->replaying());
    jnl->begin_run(small_meta());  // header survived -> verifies, no throw
  }
  const JournalContents after = read_journal(dir);
  EXPECT_FALSE(after.truncated);
  EXPECT_EQ(after.entries.size(), before.entries.size());
}

TEST(Journal, RevealsAreDurableBeforeCommit) {
  // Per-completion records must reach the segment file the moment
  // append_reveal returns — a SIGKILL mid-batch loses only runs still in
  // flight, not completed ones. Read the directory with an independent
  // reader while the writer's batch is still open.
  const std::string dir = fresh_dir("durable");
  auto jnl = RunJournal::create(dir);
  jnl->begin_run(small_meta());
  jnl->begin_batch(Phase::kInit, 0, std::vector<std::size_t>{3, 7});
  jnl->append_reveal(ok_reveal(3, 1.0, 2.0));
  jnl->append_reveal(ok_reveal(7, 3.0, 4.0));

  const JournalContents mid = read_journal(dir);
  EXPECT_FALSE(mid.truncated);
  ASSERT_EQ(mid.entries.size(), 4u);  // header, selection, two reveals
  EXPECT_EQ(mid.entries[1].kind, JournalEntry::Kind::kSelection);
  EXPECT_EQ(mid.entries[2].kind, JournalEntry::Kind::kReveal);
  EXPECT_EQ(mid.entries[2].reveal.id, 3u);
  EXPECT_EQ(mid.entries[3].reveal.id, 7u);

  jnl->commit_batch(Phase::kInit, 0, 2, {1, 2, 3, 4});
  jnl->record_shutdown(ShutdownReason::kCompleted, 1);
}

TEST(Journal, PureReplayAccruesNoWriteTime) {
  const std::string dir = fresh_dir("replaytime");
  {
    auto jnl = RunJournal::create(dir);
    jnl->begin_run(small_meta());
    jnl->begin_batch(Phase::kInit, 0, std::vector<std::size_t>{3});
    jnl->append_reveal(ok_reveal(3, 1.0, 2.0));
    jnl->commit_batch(Phase::kInit, 0, 1, {1, 2, 3, 4});
    jnl->record_regions(1, 10, 0xABCDull);
    jnl->record_shutdown(ShutdownReason::kCompleted, 1);
    EXPECT_GT(jnl->write_seconds(), 0.0);
  }
  // write_seconds() covers recording only; replay verification on resume
  // must not be misattributed as write cost.
  auto jnl = RunJournal::open_resume(dir);
  jnl->begin_run(small_meta());
  jnl->begin_batch(Phase::kInit, 0, std::vector<std::size_t>{3});
  jnl->commit_batch(Phase::kInit, 0, 1, {1, 2, 3, 4});
  jnl->record_regions(1, 10, 0xABCDull);
  jnl->record_shutdown(ShutdownReason::kCompleted, 1);
  EXPECT_EQ(jnl->write_seconds(), 0.0);
}

TEST(Journal, OverflowingSegmentNameIsAJournalError) {
  const std::string dir = write_small_run("hugestem");
  // An all-digit stem too large for any integer type must surface as the
  // documented JournalError, not escape as std::out_of_range.
  std::ofstream(fs::path(dir) / "99999999999999999999.seg").put('\0');
  EXPECT_THROW(read_journal(dir), JournalError);
  EXPECT_THROW(RunJournal::open_resume(dir), JournalError);
}

TEST(Journal, MetaMismatchIsFatal) {
  const std::string dir = write_small_run("mismatch");
  auto jnl = RunJournal::open_resume(dir);
  RunMeta other = small_meta();
  other.seed = 43;
  EXPECT_THROW(jnl->begin_run(other), JournalMismatchError);
}

TEST(Journal, CreateRefusesExistingJournal) {
  const std::string dir = write_small_run("recreate");
  EXPECT_THROW(RunJournal::create(dir), JournalError);
}

TEST(Journal, OpenResumeRequiresAJournal) {
  EXPECT_THROW(RunJournal::open_resume(fresh_dir("absent")), JournalError);
}

TEST(Journal, ReplayServesRecordedOutcomesThenSwitchesToRecording) {
  const std::string dir = write_small_run("replay");
  auto jnl = RunJournal::open_resume(dir);
  EXPECT_TRUE(jnl->replaying());
  jnl->begin_run(small_meta());

  const std::vector<std::size_t> ids = {3, 7, 11};
  auto replay = jnl->begin_batch(Phase::kInit, 0, ids);
  EXPECT_TRUE(replay.committed);
  ASSERT_EQ(replay.outcomes.size(), 3u);
  EXPECT_TRUE(replay.outcomes.at(3).ok());
  EXPECT_EQ(replay.outcomes.at(3).objectives, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(replay.outcomes.at(11).status, RevealStatus::kTimedOut);
  jnl->commit_batch(Phase::kInit, 0, 2, {1, 2, 3, 4});
  EXPECT_EQ(jnl->replayed_reveals(), 3u);

  jnl->record_regions(1, 150, 0xABCDull);
  // The recorded run ended here; a new batch transparently records.
  const std::vector<std::size_t> fresh_ids = {20};
  auto fresh = jnl->begin_batch(Phase::kRound, 1, fresh_ids);
  EXPECT_TRUE(fresh.outcomes.empty());
  EXPECT_FALSE(fresh.committed);
  jnl->append_reveal(ok_reveal(20, 5.0, 6.0));
  jnl->commit_batch(Phase::kRound, 1, 3, {5, 6, 7, 8});
  EXPECT_FALSE(jnl->replaying());
  jnl->record_shutdown(ShutdownReason::kCompleted, 1);
}

TEST(Journal, ReplayRejectsDivergentSelection) {
  const std::string dir = write_small_run("divergent");
  auto jnl = RunJournal::open_resume(dir);
  jnl->begin_run(small_meta());
  const std::vector<std::size_t> wrong = {3, 7, 12};
  EXPECT_THROW(jnl->begin_batch(Phase::kInit, 0, wrong), JournalMismatchError);
}

TEST(Journal, ReplayRejectsDivergentRngState) {
  const std::string dir = write_small_run("rngdiverge");
  auto jnl = RunJournal::open_resume(dir);
  jnl->begin_run(small_meta());
  const std::vector<std::size_t> ids = {3, 7, 11};
  jnl->begin_batch(Phase::kInit, 0, ids);
  EXPECT_THROW(jnl->commit_batch(Phase::kInit, 0, 2, {9, 9, 9, 9}),
               JournalMismatchError);
}

TEST(Journal, ReplayRejectsDivergentRegionDigest) {
  const std::string dir = write_small_run("regiondiverge");
  auto jnl = RunJournal::open_resume(dir);
  jnl->begin_run(small_meta());
  const std::vector<std::size_t> ids = {3, 7, 11};
  jnl->begin_batch(Phase::kInit, 0, ids);
  jnl->commit_batch(Phase::kInit, 0, 2, {1, 2, 3, 4});
  EXPECT_THROW(jnl->record_regions(1, 150, 0x9999ull), JournalMismatchError);
}

// ---- Tuner integration: journaled runs and bit-identical resume -----------

class JournalTunerTest : public ::testing::Test {
 protected:
  JournalTunerTest()
      : source_(testing::synthetic_benchmark("src", 150, 11, 0.15)),
        target_(testing::synthetic_benchmark("tgt", 200, 12, 0.0)) {}

  tuner::SourceData source_data() {
    return tuner::SourceData::from_benchmark(source_, tuner::kPowerDelay, 100,
                                             5);
  }

  tuner::PPATunerOptions base_options() {
    tuner::PPATunerOptions opt;
    opt.seed = 7;
    opt.max_runs = 40;
    return opt;
  }

  tuner::TuningResult run(tuner::PPATunerOptions opt,
                          tuner::PPATunerDiagnostics* diag = nullptr) {
    tuner::BenchmarkCandidatePool pool(&target_, tuner::kPowerDelay);
    return tuner::run_ppatuner(
        pool, tuner::make_transfer_gp_factory(source_data()), opt, diag);
  }

  flow::BenchmarkSet source_, target_;
};

TEST_F(JournalTunerTest, JournalingDoesNotChangeTheResult) {
  const auto baseline = run(base_options());

  const std::string dir = fresh_dir("parity");
  auto jnl = RunJournal::create(dir);
  auto opt = base_options();
  opt.journal = jnl.get();
  const auto journaled = run(opt);

  EXPECT_EQ(journaled.pareto_indices, baseline.pareto_indices);
  EXPECT_EQ(journaled.tool_runs, baseline.tool_runs);
}

TEST_F(JournalTunerTest, FullReplayReconstructsBitIdenticallyWithZeroRuns) {
  const std::string dir = fresh_dir("fullreplay");
  tuner::PPATunerDiagnostics base_diag;
  tuner::TuningResult baseline;
  {
    auto jnl = RunJournal::create(dir);
    auto opt = base_options();
    opt.journal = jnl.get();
    baseline = run(opt, &base_diag);
  }

  auto jnl = RunJournal::open_resume(dir);
  auto opt = base_options();
  opt.journal = jnl.get();
  tuner::PPATunerDiagnostics diag;
  tuner::BenchmarkCandidatePool pool(&target_, tuner::kPowerDelay);
  const auto resumed = tuner::run_ppatuner(
      pool, tuner::make_transfer_gp_factory(source_data()), opt, &diag);

  // Every reveal was served from the journal: the pool was never touched.
  EXPECT_EQ(pool.runs(), 0u);
  EXPECT_GT(diag.replayed_reveals, 0u);
  EXPECT_EQ(diag.replayed_reveals, baseline.tool_runs);
  // Bit-identical reconstruction.
  EXPECT_EQ(resumed.pareto_indices, baseline.pareto_indices);
  EXPECT_EQ(resumed.tool_runs, baseline.tool_runs);
  EXPECT_EQ(diag.rounds, base_diag.rounds);
  EXPECT_EQ(diag.dropped, base_diag.dropped);
  EXPECT_EQ(diag.classified_pareto, base_diag.classified_pareto);
  EXPECT_EQ(diag.undecided, base_diag.undecided);
  ASSERT_EQ(diag.task_correlations.size(), base_diag.task_correlations.size());
  for (std::size_t i = 0; i < diag.task_correlations.size(); ++i) {
    EXPECT_EQ(diag.task_correlations[i], base_diag.task_correlations[i]);
  }
}

TEST_F(JournalTunerTest, ResumeMismatchedSeedIsRejected) {
  const std::string dir = fresh_dir("wrongseed");
  {
    auto jnl = RunJournal::create(dir);
    auto opt = base_options();
    opt.journal = jnl.get();
    run(opt);
  }
  auto jnl = RunJournal::open_resume(dir);
  auto opt = base_options();
  opt.seed = 8;  // not the journaled run
  opt.journal = jnl.get();
  tuner::BenchmarkCandidatePool pool(&target_, tuner::kPowerDelay);
  EXPECT_THROW(tuner::run_ppatuner(
                   pool, tuner::make_transfer_gp_factory(source_data()), opt),
               JournalMismatchError);
}

TEST_F(JournalTunerTest, ChoppedTailResumesToTheSameResult) {
  const auto baseline = run(base_options());

  const std::string dir = fresh_dir("choppedtail");
  {
    auto jnl = RunJournal::create(dir);
    auto opt = base_options();
    opt.journal = jnl.get();
    run(opt);
  }
  // Chop the last segment mid-record at several offsets: every cut must
  // truncate cleanly and resume to the bitwise-identical result. Snapshot
  // the pristine journal first — resuming reseals/renames segments, so each
  // cut starts from a full directory restore.
  std::map<std::string, std::string> pristine;
  for (const auto& e : fs::directory_iterator(dir)) {
    std::ifstream in(e.path(), std::ios::binary);
    std::ostringstream data;
    data << in.rdbuf();
    pristine[e.path().filename().string()] = data.str();
  }
  const std::string& last = pristine.rbegin()->first;  // highest-seq segment
  const std::size_t full = pristine.at(last).size();
  for (const double frac : {0.85, 0.6, 0.35}) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (const auto& [name, bytes] : pristine) {
      std::ofstream out(fs::path(dir) / name, std::ios::binary);
      const std::size_t n =
          name == last ? static_cast<std::size_t>(full * frac) : bytes.size();
      out.write(bytes.data(), static_cast<std::streamoff>(n));
    }
    auto jnl = RunJournal::open_resume(dir);
    auto opt = base_options();
    opt.journal = jnl.get();
    tuner::PPATunerDiagnostics diag;
    tuner::BenchmarkCandidatePool pool(&target_, tuner::kPowerDelay);
    const auto resumed = tuner::run_ppatuner(
        pool, tuner::make_transfer_gp_factory(source_data()), opt, &diag);
    EXPECT_EQ(resumed.pareto_indices, baseline.pareto_indices)
        << "cut at fraction " << frac;
    EXPECT_EQ(resumed.tool_runs, baseline.tool_runs);
    // Reveals past the cut were re-run live, the rest replayed.
    EXPECT_EQ(diag.replayed_reveals + pool.runs(), baseline.tool_runs);
  }
}

TEST_F(JournalTunerTest, GracefulStopJournalsAndResumesBitIdentically) {
  const auto baseline = run(base_options());

  const std::string dir = fresh_dir("gracefulstop");
  {
    auto jnl = RunJournal::create(dir);
    auto opt = base_options();
    opt.journal = jnl.get();
    std::size_t rounds_seen = 0;
    opt.on_round = [&rounds_seen](const tuner::PPATunerProgress&) {
      ++rounds_seen;
    };
    opt.should_stop = [&rounds_seen] { return rounds_seen >= 2; };
    tuner::PPATunerDiagnostics diag;
    const auto partial = run(opt, &diag);
    EXPECT_TRUE(diag.stopped_early);
    EXPECT_LT(partial.tool_runs, baseline.tool_runs);
  }
  {
    const JournalContents contents = read_journal(dir);
    ASSERT_FALSE(contents.entries.empty());
    EXPECT_EQ(contents.entries.back().kind, JournalEntry::Kind::kShutdown);
    EXPECT_EQ(contents.entries.back().reason, ShutdownReason::kStopRequested);
  }

  auto jnl = RunJournal::open_resume(dir);
  auto opt = base_options();
  opt.journal = jnl.get();
  tuner::PPATunerDiagnostics diag;
  tuner::BenchmarkCandidatePool pool(&target_, tuner::kPowerDelay);
  const auto resumed = tuner::run_ppatuner(
      pool, tuner::make_transfer_gp_factory(source_data()), opt, &diag);
  EXPECT_FALSE(diag.stopped_early);
  EXPECT_GT(diag.replayed_reveals, 0u);
  EXPECT_EQ(resumed.pareto_indices, baseline.pareto_indices);
  EXPECT_EQ(resumed.tool_runs, baseline.tool_runs);
}

TEST(JournalShutdown, FlagRoundTrip) {
  reset_shutdown_flag();
  EXPECT_FALSE(shutdown_requested());
  install_graceful_shutdown_handlers();
  EXPECT_FALSE(shutdown_requested());
  ::raise(SIGTERM);
  EXPECT_TRUE(shutdown_requested());
  reset_shutdown_flag();
  EXPECT_FALSE(shutdown_requested());
  // Restore default dispositions so a later real signal kills the test
  // binary instead of silently setting the flag.
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
}

// The satellite regression for the handler-clobbering bug: registration is
// a fan-out dispatcher now, so EVERY registered run sees the signal — the
// old behavior (last install wins) delivered it to one run only.
TEST(JournalShutdown, SignalFansOutToAllRegisteredStops) {
  reset_shutdown_flag();
  ScopedSignalStop first;
  ScopedSignalStop second;
  EXPECT_FALSE(first.stop_requested());
  EXPECT_FALSE(second.stop_requested());
  ::raise(SIGTERM);
  EXPECT_TRUE(first.stop_requested());
  EXPECT_TRUE(second.stop_requested());
  // The process-wide legacy flag fires too (legacy pollers keep working).
  EXPECT_TRUE(shutdown_requested());
  reset_shutdown_flag();
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
}

TEST(JournalShutdown, StopSlotsAreIndependentAndRecycled) {
  reset_shutdown_flag();
  {
    ScopedSignalStop a;
    ScopedSignalStop b;
    a.request_stop();  // manual stop targets ONE session, not the process
    EXPECT_TRUE(a.stop_requested());
    EXPECT_FALSE(b.stop_requested());
    EXPECT_FALSE(shutdown_requested());
  }
  // Slots released above are reclaimed fresh: no stale fired state leaks
  // into a new registration that happens to reuse the storage.
  ScopedSignalStop c;
  EXPECT_FALSE(c.stop_requested());
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
}

// SIGTERM gracefully drains two concurrent in-process tuning runs: both
// loops observe their own stop token, finish their in-flight round, and
// finalize — neither is killed and neither misses the signal.
TEST(JournalShutdown, SigtermDrainsTwoConcurrentRuns) {
  reset_shutdown_flag();
  const auto bench_a = ppat::testing::synthetic_benchmark("drain_a", 150, 31);
  const auto bench_b = ppat::testing::synthetic_benchmark("drain_b", 150, 32);

  std::atomic<int> rounds_seen{0};
  std::atomic<bool> signal_sent{false};
  auto run_one = [&](const flow::BenchmarkSet& bench, std::uint64_t seed,
                     tuner::PPATunerDiagnostics* diag) {
    ScopedSignalStop stop;
    common::ThreadPool workers(1);
    tuner::BenchmarkCandidatePool pool(&bench, tuner::kPowerDelay);
    tuner::PPATunerOptions opt;
    opt.seed = seed;
    opt.max_runs = 140;  // big budget: only the signal can end this quickly
    opt.batch_size = 2;
    opt.thread_pool = &workers;
    opt.should_stop = [&stop] { return stop.stop_requested(); };
    opt.on_round = [&](const tuner::PPATunerProgress&) {
      rounds_seen.fetch_add(1);
      // Both runs spin until the signal has actually been raised, so the
      // stop is guaranteed to arrive mid-run in each of them.
      while (!signal_sent.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    tuner::run_ppatuner(pool, tuner::make_plain_gp_factory(), opt, diag);
  };

  tuner::PPATunerDiagnostics diag_a, diag_b;
  std::thread ta([&] { run_one(bench_a, 41, &diag_a); });
  std::thread tb([&] { run_one(bench_b, 42, &diag_b); });
  while (rounds_seen.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::raise(SIGTERM);  // one process-level signal...
  signal_sent.store(true);
  ta.join();
  tb.join();
  // ...drained BOTH runs.
  EXPECT_TRUE(diag_a.stopped_early);
  EXPECT_TRUE(diag_b.stopped_early);
  reset_shutdown_flag();
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
}

}  // namespace
}  // namespace ppat::journal
