// flow::LicenseBroker: shared fair license pool for multi-session tuning.
// The load-bearing properties: leases are RAII (NO outcome of an eval can
// leak a license — the satellite bugfix this PR pins down), accounting is
// exact, and grants are deterministically fair (fewest-outstanding-first),
// not wakeup-order lottery.
#include "flow/license_broker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "flow/eval_service.hpp"
#include "sample/sampling.hpp"
#include "synthetic_benchmark.hpp"

namespace ppat::flow {
namespace {

TEST(LicenseBroker, AccountingRoundTrip) {
  LicenseBroker broker(3);
  EXPECT_EQ(broker.total(), 3u);
  EXPECT_EQ(broker.available(), 3u);
  {
    auto a = broker.acquire(1);
    auto b = broker.acquire(1);
    auto c = broker.acquire(2);
    EXPECT_EQ(broker.available(), 0u);
    EXPECT_EQ(broker.outstanding(), 3u);
    EXPECT_EQ(broker.outstanding_for(1), 2u);
    EXPECT_EQ(broker.outstanding_for(2), 1u);
    c.release();
    EXPECT_EQ(broker.available(), 1u);
    c.release();  // idempotent: double release must not double-credit
    EXPECT_EQ(broker.available(), 1u);
  }
  // Leases released by scope exit.
  EXPECT_EQ(broker.available(), 3u);
  EXPECT_EQ(broker.outstanding(), 0u);
  EXPECT_EQ(broker.outstanding_for(1), 0u);
}

TEST(LicenseBroker, MoveTransfersOwnershipWithoutDoubleRelease) {
  LicenseBroker broker(1);
  {
    LicenseBroker::Lease outer;
    {
      auto inner = broker.acquire(9);
      outer = std::move(inner);
      // The moved-from lease dying here must not release anything.
    }
    EXPECT_EQ(broker.available(), 0u);
  }
  EXPECT_EQ(broker.available(), 1u);
}

TEST(LicenseBroker, GrantsPreferTheSessionWithFewestOutstanding) {
  LicenseBroker broker(4);
  auto h1 = broker.acquire(1);
  auto h2 = broker.acquire(1);
  auto h3 = broker.acquire(1);  // session 1 hogs three licenses
  auto l1 = broker.acquire(2);  // session 2 holds one

  // Both sessions queue one waiter each while the pool is empty.
  std::atomic<bool> hog_granted{false}, light_granted{false};
  std::thread hog([&] {
    auto lease = broker.acquire(1);
    hog_granted.store(true);
    lease.release();
  });
  std::thread light([&] {
    auto lease = broker.acquire(2);
    light_granted.store(true);
    // Hold it until the hog got its grant, so the outstanding counts keep
    // favoring the hog for the SECOND freed license.
    while (!hog_granted.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(hog_granted.load());
  EXPECT_FALSE(light_granted.load());

  // One license frees: fairness says session 2 (1 outstanding) beats
  // session 1 (3 outstanding), regardless of which thread wakes first.
  h1.release();
  while (!light_granted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(hog_granted.load());  // still waiting: 2 vs 2 after grant,
                                     // but session 1 holds 2 more
  h2.release();  // second freed license reaches the remaining waiter
  hog.join();
  light.join();
  EXPECT_TRUE(hog_granted.load());
  h3.release();
  l1.release();
  EXPECT_EQ(broker.available(), broker.total());
}

/// Oracle that fails (throws) on a deterministic schedule and sleeps a hair
/// so watchdog/deadline machinery has something to time.
class FaultyOracle final : public QorOracle {
 public:
  QoR evaluate(const ParameterSpace& space, const Config& config) override {
    const std::size_t n = calls_.fetch_add(1);
    if (n % 3 != 2) {  // two of every three attempts fail
      throw ToolRunError("injected tool crash #" + std::to_string(n));
    }
    ++runs_;
    return ppat::testing::synthetic_qor(space.encode(config));
  }
  std::size_t run_count() const override { return runs_; }

 private:
  std::atomic<std::size_t> calls_{0};
  std::atomic<std::size_t> runs_{0};
};

// The satellite leak test: ~1k faulty evaluations — crashes, retries,
// deadline timeouts, successes — through two concurrent sessions sharing
// one broker. Every path must hand its lease back: afterwards the broker
// reads exactly max licenses available and zero outstanding.
TEST(LicenseBroker, NoLeakAcrossAThousandFaultyEvals) {
  const auto space = ppat::testing::synthetic_space();
  auto broker = std::make_shared<LicenseBroker>(3);

  auto run_session = [&](std::uint64_t tag, std::uint64_t seed,
                         bool with_deadline) {
    common::Rng rng(seed);
    const auto unit = sample::latin_hypercube(500, space.size(), rng);
    std::vector<Config> configs;
    configs.reserve(unit.size());
    for (const auto& u : unit) configs.push_back(space.decode(u));

    FaultyOracle oracle;
    EvalServiceOptions opt;
    opt.licenses = 4;
    opt.max_attempts = 2;
    opt.license_broker = broker;
    opt.session_tag = tag;
    if (with_deadline) {
      // A deadline this tight expires runs while they queue for a license,
      // exercising the timed-out-while-waiting release path.
      opt.run_deadline = std::chrono::milliseconds(40);
    }
    EvalService service(oracle, space, opt);
    // 500 configs x up to 2 attempts each per session.
    const auto records = service.evaluate_batch(configs);
    ASSERT_EQ(records.size(), configs.size());
  };

  std::thread s1([&] { run_session(1, 101, false); });
  std::thread s2([&] { run_session(2, 102, true); });
  s1.join();
  s2.join();

  EXPECT_EQ(broker->available(), broker->total());
  EXPECT_EQ(broker->outstanding(), 0u);
  EXPECT_EQ(broker->outstanding_for(1), 0u);
  EXPECT_EQ(broker->outstanding_for(2), 0u);
  // Per-session accounting is reclaimed on idle (grants_for reads 0 again),
  // but the lifetime counter proves the broker really served the storm.
  EXPECT_EQ(broker->grants_for(1), 0u);
  EXPECT_GT(broker->total_grants(), 500u);
}

// try_acquire is the coordinator's non-blocking path: it must grant when a
// license is genuinely free, refuse at exhaustion, and refuse whenever any
// OTHER session is blocked in acquire() — a poller never starves a waiter.
TEST(LicenseBroker, TryAcquireGrantsRefusesAndYieldsToWaiters) {
  LicenseBroker broker(2);

  auto a = broker.try_acquire(1);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(broker.available(), 1u);
  auto b = broker.try_acquire(1);
  EXPECT_TRUE(b.valid());

  // Exhausted: a poll comes back empty instead of sleeping.
  auto c = broker.try_acquire(1);
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(broker.available(), 0u);

  // Session 2 blocks in acquire(); once it is waiting, a freed license must
  // go to it, not to a concurrently polling session 1.
  std::atomic<bool> waiter_got_lease{false};
  std::thread waiter([&] {
    auto lease = broker.acquire(2);
    waiter_got_lease.store(true);
    lease.release();
  });
  while (broker.waiting_for(2) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  a.release();  // one license free, but session 2 is queued for it
  auto d = broker.try_acquire(1);
  EXPECT_FALSE(d.valid());
  waiter.join();
  EXPECT_TRUE(waiter_got_lease.load());

  // With no waiters left, polling works again.
  auto e = broker.try_acquire(1);
  EXPECT_TRUE(e.valid());
  e.release();
  b.release();
  EXPECT_EQ(broker.available(), broker.total());
}

// Broker-governed evaluation must not change WHAT is computed — only when.
// Same batch with and without a broker: identical records.
TEST(LicenseBroker, BrokeredResultsMatchUnbrokeredBitwise) {
  const auto space = ppat::testing::synthetic_space();
  common::Rng rng(7);
  const auto unit = sample::latin_hypercube(40, space.size(), rng);
  std::vector<Config> configs;
  for (const auto& u : unit) configs.push_back(space.decode(u));

  ppat::testing::SyntheticOracle plain_oracle;
  EvalServiceOptions plain_opt;
  plain_opt.licenses = 3;
  EvalService plain(plain_oracle, space, plain_opt);
  const auto want = plain.evaluate_batch(configs);

  ppat::testing::SyntheticOracle brokered_oracle;
  EvalServiceOptions brokered_opt;
  brokered_opt.licenses = 3;
  brokered_opt.license_broker = std::make_shared<LicenseBroker>(2);
  brokered_opt.session_tag = 5;
  EvalService brokered(brokered_oracle, space, brokered_opt);
  const auto got = brokered.evaluate_batch(configs);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].ok(), want[i].ok()) << "record " << i;
    EXPECT_EQ(got[i].qor.area_um2, want[i].qor.area_um2);
    EXPECT_EQ(got[i].qor.power_mw, want[i].qor.power_mw);
    EXPECT_EQ(got[i].qor.delay_ns, want[i].qor.delay_ns);
  }
}

}  // namespace
}  // namespace ppat::flow
