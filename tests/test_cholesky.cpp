#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ppat::linalg {
namespace {

Matrix random_spd(std::size_t n, common::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  }
  Matrix spd = a * a.transposed();
  spd.add_to_diagonal(static_cast<double>(n));  // well-conditioned
  return spd;
}

TEST(Cholesky, ReconstructsMatrix) {
  common::Rng rng(1);
  const Matrix a = random_spd(8, rng);
  const auto f = CholeskyFactor::compute(a);
  ASSERT_TRUE(f.has_value());
  const Matrix l = f->lower();
  EXPECT_LT(Matrix::max_abs_diff(l * l.transposed(), a), 1e-9);
}

TEST(Cholesky, SolveMatchesLu) {
  common::Rng rng(2);
  const Matrix a = random_spd(10, rng);
  Vector b(10);
  for (auto& x : b) x = rng.normal();
  const auto f = CholeskyFactor::compute(a);
  ASSERT_TRUE(f.has_value());
  const Vector x_chol = f->solve(b);
  const auto x_lu = solve_lu(a, b);
  ASSERT_TRUE(x_lu.has_value());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(x_chol[i], (*x_lu)[i], 1e-8);
  }
}

TEST(Cholesky, SolveResidualIsSmall) {
  common::Rng rng(3);
  const Matrix a = random_spd(20, rng);
  Vector b(20);
  for (auto& x : b) x = rng.normal();
  const auto f = CholeskyFactor::compute(a);
  ASSERT_TRUE(f.has_value());
  const Vector x = f->solve(b);
  const Vector r = a * x;
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(r[i], b[i], 1e-8);
}

TEST(Cholesky, LogDetMatchesKnown) {
  // diag(4, 9): det = 36, log det = log 36.
  const Matrix a = {{4.0, 0.0}, {0.0, 9.0}};
  const auto f = CholeskyFactor::compute(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, RejectsNonPositiveDefinite) {
  const Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor::compute(a).has_value());
}

TEST(Cholesky, JitterRescuesSemidefinite) {
  // Rank-1 matrix: [1 1; 1 1] is PSD but not PD.
  const Matrix a = {{1.0, 1.0}, {1.0, 1.0}};
  const auto f = CholeskyFactor::compute_with_jitter(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_GT(f->jitter_used(), 0.0);
}

TEST(Cholesky, JitterNotUsedWhenUnneeded) {
  common::Rng rng(4);
  const Matrix a = random_spd(6, rng);
  const auto f = CholeskyFactor::compute_with_jitter(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->jitter_used(), 0.0);
}

TEST(Cholesky, JitterGivesUpOnIndefinite) {
  const Matrix a = {{1.0, 5.0}, {5.0, 1.0}};  // strongly indefinite
  EXPECT_FALSE(CholeskyFactor::compute_with_jitter(a, 0.0, 1e-4).has_value());
}

TEST(Cholesky, SolveLowerAndUpperAreInverses) {
  common::Rng rng(5);
  const Matrix a = random_spd(7, rng);
  const auto f = CholeskyFactor::compute(a);
  ASSERT_TRUE(f.has_value());
  Vector b(7);
  for (auto& x : b) x = rng.normal();
  // L (L^-1 b) == b
  const Vector y = f->solve_lower(b);
  const Vector back = f->lower() * y;
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(Cholesky, SolveLowerMultiMatchesSingle) {
  common::Rng rng(6);
  const Matrix a = random_spd(9, rng);
  const auto f = CholeskyFactor::compute(a);
  ASSERT_TRUE(f.has_value());
  Matrix b(9, 4);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 4; ++j) b(i, j) = rng.normal();
  }
  const Matrix v = f->solve_lower_multi(b);
  for (std::size_t j = 0; j < 4; ++j) {
    Vector col(9);
    for (std::size_t i = 0; i < 9; ++i) col[i] = b(i, j);
    const Vector single = f->solve_lower(col);
    for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(v(i, j), single[i], 1e-10);
  }
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  common::Rng rng(7);
  const Matrix a = random_spd(5, rng);
  const auto f = CholeskyFactor::compute(a);
  ASSERT_TRUE(f.has_value());
  const Matrix inv = f->inverse();
  EXPECT_LT(Matrix::max_abs_diff(a * inv, Matrix::identity(5)), 1e-8);
}

TEST(Cholesky, UnrolledComputeMatchesReferenceBitwise) {
  // The unroll-and-jam elimination must be a pure scheduling change: same
  // per-element operation sequence, so bit-identical factors at every size
  // (covering all remainder cases of the 4-row unroll).
  common::Rng rng(12);
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 13u, 32u, 65u}) {
    const Matrix a = random_spd(n, rng);
    const auto fast = CholeskyFactor::compute(a);
    const auto ref = CholeskyFactor::compute_reference(a);
    ASSERT_TRUE(fast.has_value());
    ASSERT_TRUE(ref.has_value());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        EXPECT_EQ(fast->lower()(i, j), ref->lower()(i, j))
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Cholesky, UnrolledComputeRejectsSameMatrices) {
  const Matrix indefinite = {{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_FALSE(CholeskyFactor::compute(indefinite).has_value());
  EXPECT_FALSE(CholeskyFactor::compute_reference(indefinite).has_value());
}

TEST(CholeskyAppend, MatchesFullFactorizationBitwise) {
  common::Rng rng(8);
  const std::size_t n = 12;
  // Leading principal submatrices of an SPD matrix are SPD, so factoring the
  // leading (n-1) block and appending the last row must land exactly where a
  // full factorization of the whole matrix does.
  const Matrix full = random_spd(n, rng);
  Matrix lead(n - 1, n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = 0; j + 1 < n; ++j) lead(i, j) = full(i, j);
  }
  auto f = CholeskyFactor::compute(lead);
  ASSERT_TRUE(f.has_value());
  Vector k_new(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) k_new[i] = full(i, n - 1);
  ASSERT_TRUE(f->append_row(k_new, full(n - 1, n - 1)));
  EXPECT_DOUBLE_EQ(f->jitter_used(), 0.0);

  const auto g = CholeskyFactor::compute(full);
  ASSERT_TRUE(g.has_value());
  ASSERT_EQ(f->size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      // Bit-identical, not merely close: append_row replicates compute()'s
      // exact floating-point operation order.
      EXPECT_EQ(f->lower()(i, j), g->lower()(i, j)) << i << "," << j;
    }
  }
}

TEST(CholeskyAppend, RepeatedAppendsStayBitIdentical) {
  common::Rng rng(9);
  const std::size_t n = 10;
  const Matrix full = random_spd(n, rng);
  Matrix lead(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) lead(i, j) = full(i, j);
  }
  auto f = CholeskyFactor::compute(lead);
  ASSERT_TRUE(f.has_value());
  for (std::size_t m = 4; m < n; ++m) {
    Vector k_new(m);
    for (std::size_t i = 0; i < m; ++i) k_new[i] = full(i, m);
    ASSERT_TRUE(f->append_row(k_new, full(m, m))) << "append " << m;
  }
  const auto g = CholeskyFactor::compute(full);
  ASSERT_TRUE(g.has_value());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_EQ(f->lower()(i, j), g->lower()(i, j)) << i << "," << j;
    }
  }
}

TEST(CholeskyAppend, RejectsNonPositiveBorderAndLeavesFactorIntact) {
  common::Rng rng(10);
  const Matrix a = random_spd(6, rng);
  auto f = CholeskyFactor::compute(a);
  ASSERT_TRUE(f.has_value());
  const Matrix before = f->lower();
  // Duplicating an existing column makes the bordered matrix singular: the
  // Schur complement is exactly zero, so the new pivot is not positive.
  Vector dup(6);
  for (std::size_t i = 0; i < 6; ++i) dup[i] = a(i, 2);
  EXPECT_FALSE(f->append_row(dup, a(2, 2)));
  ASSERT_EQ(f->size(), 6u);
  EXPECT_EQ(Matrix::max_abs_diff(f->lower(), before), 0.0);
}

TEST(CholeskyAppend, FailedAppendFallsBackToJitteredRefactorization) {
  // The GP fallback path: when append_row refuses the border, re-factorize
  // the full bordered matrix with jitter escalation.
  common::Rng rng(11);
  const Matrix a = random_spd(5, rng);
  auto f = CholeskyFactor::compute(a);
  ASSERT_TRUE(f.has_value());
  // Duplicate column 0 but shave the diagonal: the new pivot is -1e-9 up to
  // rounding noise (~1e-14), so the append must refuse deterministically,
  // while a ~1e-9 jitter restores definiteness.
  Vector dup(5);
  for (std::size_t i = 0; i < 5; ++i) dup[i] = a(i, 0);
  const double k_self = a(0, 0) - 1e-9;
  ASSERT_FALSE(f->append_row(dup, k_self));

  Matrix bordered(6, 6);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) bordered(i, j) = a(i, j);
    bordered(i, 5) = dup[i];
    bordered(5, i) = dup[i];
  }
  bordered(5, 5) = k_self;
  const auto g = CholeskyFactor::compute_with_jitter(bordered);
  ASSERT_TRUE(g.has_value());
  EXPECT_GT(g->jitter_used(), 0.0);
  // Appending onto a jittered factor is the caller's responsibility to avoid;
  // the contract is documented, and GP code re-factorizes instead.
}

TEST(Cholesky, AdaptiveJitterIsBitIdenticalWhenNoJitterIsNeeded) {
  common::Rng rng(9);
  const Matrix a = random_spd(10, rng);
  const auto plain = CholeskyFactor::compute(a);
  const auto adaptive = CholeskyFactor::compute_with_adaptive_jitter(a);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(adaptive.has_value());
  EXPECT_EQ(adaptive->jitter_used(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_EQ(adaptive->lower()(i, j), plain->lower()(i, j))
          << "entry (" << i << "," << j << ")";
    }
  }
}

TEST(Cholesky, AdaptiveJitterScalesTheCapWithTheDiagonal) {
  // A large-magnitude Gram matrix made slightly indefinite (near-duplicate
  // rows whose rounding error exceeds the fixed cap): its most-negative
  // eigenvalue is about -0.5, so no jitter within the fixed 1e-2 absolute
  // cap can fix it. The adaptive ceiling (rel_cap * max|diag|) must.
  const double scale = 1e8;
  Matrix a(3, 3);
  a(0, 0) = scale;
  a(1, 1) = scale - 1.0;
  a(0, 1) = a(1, 0) = scale;
  a(2, 2) = scale;
  EXPECT_FALSE(CholeskyFactor::compute_with_jitter(a).has_value());
  const auto f = CholeskyFactor::compute_with_adaptive_jitter(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_GT(f->jitter_used(), 1e-2);
  EXPECT_LE(f->jitter_used(), 1e-4 * scale);
}

TEST(SolveLu, SingularReturnsNullopt) {
  const Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(solve_lu(a, {1.0, 1.0}).has_value());
}

TEST(SolveLu, PivotingHandlesZeroDiagonal) {
  const Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  const auto x = solve_lu(a, {2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ((*x)[0], 3.0);
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
}

}  // namespace
}  // namespace ppat::linalg
