#include "netlist/verilog.hpp"

#include <gtest/gtest.h>

#include "netlist/mac_generator.hpp"
#include "netlist_sim.hpp"

namespace ppat::netlist {
namespace {

/// Structural equivalence: same instance sequence (cell + where each pin's
/// signal comes from: a PI index, a driver instance, or nothing).
void expect_isomorphic(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.num_instances(), b.num_instances());
  ASSERT_EQ(a.primary_inputs().size(), b.primary_inputs().size());

  auto signal_source = [](const Netlist& nl, NetId net) -> std::string {
    const auto& pis = nl.primary_inputs();
    for (std::size_t k = 0; k < pis.size(); ++k) {
      if (pis[k] == net) return "pi" + std::to_string(k);
    }
    const InstanceId drv = nl.net(net).driver;
    if (drv == kInvalidId) return "floating";
    return "u" + std::to_string(drv);
  };

  for (InstanceId i = 0; i < a.num_instances(); ++i) {
    const auto& ia = a.instance(i);
    const auto& ib = b.instance(i);
    EXPECT_EQ(a.library().cell(ia.cell).name, b.library().cell(ib.cell).name)
        << "instance " << i;
    ASSERT_EQ(ia.fanins.size(), ib.fanins.size()) << "instance " << i;
    for (std::size_t pin = 0; pin < ia.fanins.size(); ++pin) {
      EXPECT_EQ(signal_source(a, ia.fanins[pin]),
                signal_source(b, ib.fanins[pin]))
          << "instance " << i << " pin " << pin;
    }
    EXPECT_EQ(a.net(ia.fanout).is_primary_output,
              b.net(ib.fanout).is_primary_output)
        << "instance " << i;
  }
}

class VerilogTest : public ::testing::Test {
 protected:
  VerilogTest() : lib_(CellLibrary::make_default()) {}
  CellLibrary lib_;
};

TEST_F(VerilogTest, EmitsExpectedShape) {
  Netlist nl(&lib_);
  const NetId a = nl.add_primary_input();
  const NetId b = nl.add_primary_input();
  const InstanceId g =
      nl.add_instance(lib_.find(CellFunction::kNand2, 1), {a, b});
  const InstanceId ff = nl.add_instance(lib_.find(CellFunction::kDff, 0),
                                        {nl.instance(g).fanout});
  nl.mark_primary_output(nl.instance(ff).fanout);

  const std::string v = to_verilog(nl, "top");
  EXPECT_NE(v.find("module top (clk, pi0, pi1"), std::string::npos);
  EXPECT_NE(v.find("NAND2_X2 u0 (.A(pi0), .B(pi1)"), std::string::npos);
  EXPECT_NE(v.find(".CK(clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST_F(VerilogTest, RoundTripSmallNetlist) {
  Netlist nl(&lib_);
  const NetId a = nl.add_primary_input();
  const NetId b = nl.add_primary_input();
  const InstanceId x =
      nl.add_instance(lib_.find(CellFunction::kXor2, 0), {a, b});
  const InstanceId y = nl.add_instance(lib_.find(CellFunction::kAoi21, 0),
                                       {a, b, nl.instance(x).fanout});
  nl.mark_primary_output(nl.instance(y).fanout);

  const Netlist parsed = parse_verilog(lib_, to_verilog(nl, "t"));
  expect_isomorphic(nl, parsed);
}

TEST_F(VerilogTest, RoundTripMacWithFeedback) {
  MacConfig cfg;
  cfg.operand_bits = 4;
  cfg.lanes = 2;
  cfg.pipeline_stages = 1;
  const Netlist nl = generate_mac(lib_, cfg);
  const Netlist parsed = parse_verilog(lib_, to_verilog(nl, "mac"));
  expect_isomorphic(nl, parsed);
}

TEST_F(VerilogTest, RoundTripPreservesFunction) {
  MacConfig cfg;
  cfg.operand_bits = 3;
  cfg.lanes = 1;
  cfg.pipeline_stages = 0;
  const Netlist nl = generate_mac(lib_, cfg);
  const Netlist parsed = parse_verilog(lib_, to_verilog(nl, "mac"));

  // Simulate both and compare accumulator outputs.
  for (std::uint64_t a = 1; a < 8; a += 3) {
    testing::Simulator s1(nl), s2(parsed);
    const auto& pis1 = nl.primary_inputs();
    const auto& pis2 = parsed.primary_inputs();
    for (unsigned i = 0; i < 6; ++i) {
      const bool bit = (0b110101 >> i) & 1;
      s1.set_input(pis1[i], bit);
      s2.set_input(pis2[i], bit);
    }
    s1.clock();
    s1.clock();
    s2.clock();
    s2.clock();
    EXPECT_EQ(s1.read_bus(nl.primary_outputs()),
              s2.read_bus(parsed.primary_outputs()));
  }
}

TEST_F(VerilogTest, ParserRejectsUnknownCell) {
  const std::string v =
      "module t (clk, pi0, n1);\n"
      "  input clk;\n  input pi0;\n  output n1;\n"
      "  BOGUS_X9 u0 (.A(pi0), .Y(n1));\n"
      "endmodule\n";
  EXPECT_THROW(parse_verilog(lib_, v), std::runtime_error);
}

TEST_F(VerilogTest, ParserRejectsMultipleDrivers) {
  const std::string v =
      "module t (clk, pi0, n1);\n"
      "  input clk;\n  input pi0;\n  output n1;\n"
      "  INV_X1 u0 (.A(pi0), .Y(n1));\n"
      "  INV_X1 u1 (.A(pi0), .Y(n1));\n"
      "endmodule\n";
  EXPECT_THROW(parse_verilog(lib_, v), std::runtime_error);
}

TEST_F(VerilogTest, ParserRejectsMissingPin) {
  const std::string v =
      "module t (clk, pi0, n1);\n"
      "  input clk;\n  input pi0;\n  output n1;\n"
      "  NAND2_X1 u0 (.A(pi0), .Y(n1));\n"
      "endmodule\n";
  EXPECT_THROW(parse_verilog(lib_, v), std::runtime_error);
}

TEST_F(VerilogTest, ParserRejectsMissingSemicolon) {
  const std::string v =
      "module t (clk, pi0);\n"
      "  input clk\n"
      "endmodule\n";
  EXPECT_THROW(parse_verilog(lib_, v), std::runtime_error);
}

TEST_F(VerilogTest, ForwardReferencesResolve) {
  // u0 reads n2 before u1 (its driver) is declared.
  const std::string v =
      "module t (clk, pi0, n1);\n"
      "  input clk;\n  input pi0;\n  output n1;\n"
      "  wire n2;\n"
      "  INV_X1 u0 (.A(n2), .Y(n1));\n"
      "  INV_X1 u1 (.A(pi0), .Y(n2));\n"
      "endmodule\n";
  const Netlist parsed = parse_verilog(lib_, v);
  EXPECT_EQ(parsed.num_instances(), 2u);
  // u0's fanin must be driven by u1.
  EXPECT_EQ(parsed.net(parsed.instance(0).fanins[0]).driver, 1u);
}

}  // namespace
}  // namespace ppat::netlist
