#include "gp/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "linalg/cholesky.hpp"

namespace ppat::gp {
namespace {

TEST(SquaredExponential, ValueAtZeroDistanceIsSignalVariance) {
  SquaredExponentialKernel k(0.5, 2.0);
  const linalg::Vector x = {0.3, 0.7};
  EXPECT_DOUBLE_EQ(k(x, x), 2.0);
}

TEST(SquaredExponential, DecaysWithDistance) {
  SquaredExponentialKernel k(0.5, 1.0);
  const linalg::Vector a = {0.0}, b = {0.5}, c = {1.0};
  EXPECT_GT(k(a, a), k(a, b));
  EXPECT_GT(k(a, b), k(a, c));
  // Known value: exp(-0.5 * (0.5/0.5)^2) = exp(-0.5).
  EXPECT_NEAR(k(a, b), std::exp(-0.5), 1e-12);
}

TEST(SquaredExponential, Symmetric) {
  SquaredExponentialKernel k(0.3, 1.5);
  const linalg::Vector a = {0.1, 0.9}, b = {0.6, 0.2};
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
}

TEST(SquaredExponential, HyperparameterRoundTrip) {
  SquaredExponentialKernel k(0.25, 3.0);
  const auto h = k.hyperparameters();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_NEAR(std::exp(h[0]), 0.25, 1e-12);
  EXPECT_NEAR(std::exp(h[1]), 3.0, 1e-12);
  SquaredExponentialKernel k2(1.0, 1.0);
  k2.set_hyperparameters(h);
  EXPECT_DOUBLE_EQ(k2.lengthscale(), k.lengthscale());
  EXPECT_DOUBLE_EQ(k2.signal_variance(), k.signal_variance());
}

TEST(SquaredExponential, CloneIsIndependent) {
  SquaredExponentialKernel k(0.5, 1.0);
  auto c = k.clone();
  c->set_hyperparameters({std::log(0.1), std::log(5.0)});
  EXPECT_DOUBLE_EQ(k.lengthscale(), 0.5);
  const linalg::Vector x = {0.0};
  EXPECT_NE((*c)(x, x), k(x, x));
}

TEST(ArdKernel, PerDimensionLengthscales) {
  ArdSquaredExponentialKernel k(2, 1.0, 1.0);
  // Shrink the first dimension's lengthscale: distance along dim 0 matters
  // much more.
  k.set_hyperparameters({std::log(0.1), std::log(10.0), std::log(1.0)});
  const linalg::Vector base = {0.0, 0.0};
  const linalg::Vector d0 = {0.3, 0.0};
  const linalg::Vector d1 = {0.0, 0.3};
  EXPECT_LT(k(base, d0), k(base, d1));
}

TEST(ArdKernel, HyperparameterCountAndRoundTrip) {
  ArdSquaredExponentialKernel k(4, 0.3, 2.0);
  EXPECT_EQ(k.num_hyperparameters(), 5u);
  const auto h = k.hyperparameters();
  auto c = k.clone();
  c->set_hyperparameters(h);
  const linalg::Vector a = {0.1, 0.2, 0.3, 0.4}, b = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ((*c)(a, b), k(a, b));
}

TEST(Matern52, BasicShape) {
  Matern52Kernel k(0.5, 1.0);
  const linalg::Vector a = {0.0}, b = {0.4};
  EXPECT_DOUBLE_EQ(k(a, a), 1.0);
  EXPECT_GT(k(a, b), 0.0);
  EXPECT_LT(k(a, b), 1.0);
  // Matern 5/2 has heavier tails than SE at the same lengthscale.
  SquaredExponentialKernel se(0.5, 1.0);
  const linalg::Vector far = {2.0};
  EXPECT_GT(k(a, far), se(a, far));
}

TEST(Matern52, HyperparameterRoundTrip) {
  Matern52Kernel k(0.7, 1.3);
  auto c = k.clone();
  c->set_hyperparameters(k.hyperparameters());
  const linalg::Vector a = {0.2}, b = {0.9};
  EXPECT_DOUBLE_EQ((*c)(a, b), k(a, b));
}

// Property: Gram matrices of all kernels are PSD (factorizable with jitter)
// across random inputs and hyper-parameters.
class KernelPsd : public ::testing::TestWithParam<int> {};

TEST_P(KernelPsd, GramIsPositiveSemidefinite) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<linalg::Vector> xs;
  for (int i = 0; i < 15; ++i) {
    xs.push_back({rng.uniform01(), rng.uniform01(), rng.uniform01()});
  }
  const double l = std::exp(rng.uniform(-2.0, 1.0));
  const double s2 = std::exp(rng.uniform(-1.0, 1.0));
  std::vector<std::unique_ptr<Kernel>> kernels;
  kernels.push_back(std::make_unique<SquaredExponentialKernel>(l, s2));
  kernels.push_back(std::make_unique<Matern52Kernel>(l, s2));
  kernels.push_back(std::make_unique<ArdSquaredExponentialKernel>(3, l, s2));
  for (const auto& k : kernels) {
    const auto gram = k->gram(xs);
    // Symmetry.
    for (std::size_t i = 0; i < xs.size(); ++i) {
      for (std::size_t j = 0; j < xs.size(); ++j) {
        EXPECT_NEAR(gram(i, j), gram(j, i), 1e-12);
      }
    }
    EXPECT_TRUE(
        linalg::CholeskyFactor::compute_with_jitter(gram).has_value())
        << k->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPsd, ::testing::Range(1, 7));

TEST(MixedSpaceKernel, HammingOverCategoricalSeOverContinuous) {
  // dims: [continuous, categorical, categorical]
  MixedSpaceKernel k({0, 1, 1}, 0.5, 2.0, 1.5);
  const linalg::Vector a = {0.2, 0.25, 0.75};
  // Identical points: k = s2.
  EXPECT_DOUBLE_EQ(k(a, a), 1.5);
  // One categorical mismatch: s2 * exp(-1 / l_cat); the numeric gap size
  // (0.25 vs 0.9) must NOT matter for a categorical dim.
  const linalg::Vector b1 = {0.2, 0.9, 0.75};
  const linalg::Vector b2 = {0.2, 0.3, 0.75};
  EXPECT_DOUBLE_EQ(k(a, b1), 1.5 * std::exp(-1.0 / 2.0));
  EXPECT_DOUBLE_EQ(k(a, b2), k(a, b1));
  // Two mismatches: exp(-2 / l_cat).
  const linalg::Vector c = {0.2, 0.9, 0.1};
  EXPECT_DOUBLE_EQ(k(a, c), 1.5 * std::exp(-2.0 / 2.0));
  // Continuous dim uses squared-exponential distance.
  const linalg::Vector d = {0.6, 0.25, 0.75};
  EXPECT_DOUBLE_EQ(k(a, d), 1.5 * std::exp(-0.5 * 0.16 / 0.25));
}

TEST(MixedSpaceKernel, HyperparametersRoundTripAndClone) {
  MixedSpaceKernel k({1, 0}, 0.3, 1.0, 1.0);
  EXPECT_EQ(k.num_hyperparameters(), 3u);
  EXPECT_FALSE(k.supports_sqdist());
  EXPECT_EQ(k.name(), "mixed");
  const linalg::Vector logp = {std::log(0.7), std::log(3.0), std::log(2.0)};
  k.set_hyperparameters(logp);
  const auto got = k.hyperparameters();
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(got[i], logp[i], 1e-12);
  const auto cl = k.clone();
  const linalg::Vector a = {0.25, 0.4};
  const linalg::Vector b = {0.75, 0.1};
  EXPECT_DOUBLE_EQ((*cl)(a, b), k(a, b));
}

TEST(MixedSpaceKernel, GramIsPsd) {
  MixedSpaceKernel k({0, 1, 1, 0});
  common::Rng rng(3);
  std::vector<linalg::Vector> xs;
  for (int i = 0; i < 24; ++i) {
    linalg::Vector x(4);
    x[0] = rng.uniform01();
    x[1] = (rng.uniform01() < 0.5) ? 0.25 : 0.75;     // bool midpoints
    x[2] = (1.0 + std::floor(rng.uniform01() * 3.0)) / 3.0 - 1.0 / 6.0;
    x[3] = rng.uniform01();
    xs.push_back(std::move(x));
  }
  const auto gram = k.gram(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      EXPECT_NEAR(gram(i, j), gram(j, i), 1e-12);
    }
  }
  EXPECT_TRUE(linalg::CholeskyFactor::compute_with_jitter(gram).has_value());
}

TEST(MixedSpaceKernel, RejectsEmptyMask) {
  EXPECT_THROW(MixedSpaceKernel({}), std::invalid_argument);
}

/// Mixed points over a {cont, bool, enum, cont} mask, with enough
/// categorical collisions to exercise both matched and mismatched levels.
std::vector<linalg::Vector> mixed_points(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<linalg::Vector> xs;
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Vector x(4);
    x[0] = rng.uniform01();
    x[1] = (rng.uniform01() < 0.5) ? 0.25 : 0.75;
    x[2] = (1.0 + std::floor(rng.uniform01() * 3.0)) / 3.0 - 1.0 / 6.0;
    x[3] = rng.uniform01();
    xs.push_back(std::move(x));
  }
  return xs;
}

TEST(MixedSpaceKernel, PairwiseCacheIsBitIdenticalToDirect) {
  MixedSpaceKernel k({0, 1, 1, 0}, 0.4, 1.7, 2.3);
  ASSERT_TRUE(k.supports_pairwise_cache());
  ASSERT_FALSE(k.supports_sqdist());
  const auto xs = mixed_points(24, 11);
  const auto stats = k.pairwise_stats(xs);
  ASSERT_EQ(stats.sqdist.rows(), xs.size());
  ASSERT_EQ(stats.mismatch.rows(), xs.size());

  // Scalar map parity (exact equality, not tolerance: the cached chain must
  // replay the same floating-point operations in the same order).
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      EXPECT_EQ(k.eval_from_pairwise(stats.sqdist(i, j), stats.mismatch(i, j)),
                k(xs[i], xs[j]))
          << i << "," << j;
    }
  }
  // Gram parity on the populated (upper) triangle.
  const auto direct = k.gram(xs);
  const auto cached = k.gram_from_pairwise(stats);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = i; j < xs.size(); ++j) {
      EXPECT_EQ(cached(i, j), direct(i, j)) << i << "," << j;
    }
  }
}

TEST(MixedSpaceKernel, PairwiseCacheSurvivesHyperparameterChange) {
  // The whole point of the cache: stats are hyper-parameter independent, so
  // one pairwise_stats() serves every candidate point of the refit search.
  MixedSpaceKernel k({1, 0, 0});
  const auto xs = mixed_points(12, 5);
  // mixed_points' mask differs; rebuild dim-3 points for this mask.
  std::vector<linalg::Vector> pts;
  for (const auto& x : xs) pts.push_back({x[1], x[0], x[3]});
  const auto stats = k.pairwise_stats(pts);
  auto probe = k.clone();
  probe->set_hyperparameters({std::log(0.17), std::log(3.0), std::log(0.6)});
  const auto direct = probe->gram(pts);
  const auto cached = probe->gram_from_pairwise(stats);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i; j < pts.size(); ++j) {
      EXPECT_EQ(cached(i, j), direct(i, j)) << i << "," << j;
    }
  }
}

TEST(IsotropicKernels, PairwiseCacheDelegatesToSqdistPath) {
  SquaredExponentialKernel se(0.4, 1.3);
  ASSERT_TRUE(se.supports_pairwise_cache());
  std::vector<linalg::Vector> xs = {{0.1, 0.9}, {0.5, 0.2}, {0.8, 0.4}};
  const auto stats = se.pairwise_stats(xs);
  EXPECT_EQ(stats.mismatch.rows(), 0u);
  const auto from_sq = se.gram_from_sqdist(stats.sqdist);
  const auto from_pw = se.gram_from_pairwise(stats);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = i; j < xs.size(); ++j) {
      EXPECT_EQ(from_pw(i, j), from_sq(i, j));
    }
  }
  EXPECT_EQ(se.eval_from_pairwise(0.33, 0.0), se.eval_from_sqdist(0.33));
}

TEST(KernelGram, CrossMatchesElementwise) {
  SquaredExponentialKernel k(0.4, 1.0);
  std::vector<linalg::Vector> xs = {{0.1}, {0.5}};
  std::vector<linalg::Vector> zs = {{0.2}, {0.8}, {0.9}};
  const auto cross = k.cross(xs, zs);
  ASSERT_EQ(cross.rows(), 2u);
  ASSERT_EQ(cross.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(cross(i, j), k(xs[i], zs[j]));
    }
  }
}

}  // namespace
}  // namespace ppat::gp
