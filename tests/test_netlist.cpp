#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace ppat::netlist {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : lib_(CellLibrary::make_default()), nl_(&lib_) {}
  CellLibrary lib_;
  Netlist nl_;
};

TEST_F(NetlistTest, PrimaryInputCreatesDriverlessNet) {
  const NetId pi = nl_.add_primary_input();
  EXPECT_EQ(nl_.net(pi).driver, kInvalidId);
  ASSERT_EQ(nl_.primary_inputs().size(), 1u);
  EXPECT_EQ(nl_.primary_inputs()[0], pi);
}

TEST_F(NetlistTest, AddInstanceWiresPinsBothWays) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const InstanceId g =
      nl_.add_instance(lib_.find(CellFunction::kNand2, 0), {a, b});
  const Instance& inst = nl_.instance(g);
  EXPECT_EQ(inst.fanins.size(), 2u);
  EXPECT_EQ(nl_.net(inst.fanout).driver, g);
  ASSERT_EQ(nl_.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl_.net(a).sinks[0].instance, g);
  EXPECT_EQ(nl_.net(a).sinks[0].pin, 0);
  nl_.validate();
}

TEST_F(NetlistTest, AddInstanceRejectsWrongPinCount) {
  const NetId a = nl_.add_primary_input();
  EXPECT_THROW(nl_.add_instance(lib_.find(CellFunction::kNand2, 0), {a}),
               std::runtime_error);
}

TEST_F(NetlistTest, ReconnectInputMovesSink) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const InstanceId g =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  nl_.reconnect_input(g, 0, b);
  EXPECT_TRUE(nl_.net(a).sinks.empty());
  ASSERT_EQ(nl_.net(b).sinks.size(), 1u);
  EXPECT_EQ(nl_.instance(g).fanins[0], b);
  nl_.validate();
}

TEST_F(NetlistTest, ResizeKeepsFunctionArity) {
  const NetId a = nl_.add_primary_input();
  const InstanceId g =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  nl_.resize_instance(g, lib_.find(CellFunction::kInv, 2));
  EXPECT_EQ(nl_.library().cell(nl_.instance(g).cell).name, "INV_X4");
  // BUF has the same arity; allowed. DFF is sequential; rejected.
  nl_.resize_instance(g, lib_.find(CellFunction::kBuf, 0));
  EXPECT_THROW(nl_.resize_instance(g, lib_.find(CellFunction::kDff, 0)),
               std::runtime_error);
}

TEST_F(NetlistTest, TopologicalOrderRespectsDependencies) {
  const NetId a = nl_.add_primary_input();
  const InstanceId g1 = nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  const InstanceId g2 = nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                         {nl_.instance(g1).fanout});
  const InstanceId g3 = nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                         {nl_.instance(g2).fanout});
  const auto order = nl_.topological_order();
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&order](InstanceId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(g1), pos(g2));
  EXPECT_LT(pos(g2), pos(g3));
}

TEST_F(NetlistTest, SequentialLoopIsLegal) {
  // DFF whose D is a function of its own Q: legal (registered feedback).
  const NetId placeholder = nl_.add_floating_net();
  const InstanceId ff =
      nl_.add_instance(lib_.find(CellFunction::kDff, 0), {placeholder});
  const InstanceId inv = nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                          {nl_.instance(ff).fanout});
  nl_.reconnect_input(ff, 0, nl_.instance(inv).fanout);
  nl_.validate();  // must not throw
}

TEST_F(NetlistTest, CombinationalCycleDetected) {
  const NetId a = nl_.add_primary_input();
  const InstanceId g1 =
      nl_.add_instance(lib_.find(CellFunction::kNand2, 0),
                       {a, a});  // temp self-feed via a
  const InstanceId g2 = nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                         {nl_.instance(g1).fanout});
  // Close a combinational loop: g1's second pin <- g2's output.
  nl_.reconnect_input(g1, 1, nl_.instance(g2).fanout);
  EXPECT_THROW(nl_.topological_order(), std::runtime_error);
  EXPECT_THROW(nl_.validate(), std::runtime_error);
}

TEST_F(NetlistTest, StatsAreConsistent) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const InstanceId g =
      nl_.add_instance(lib_.find(CellFunction::kAnd2, 0), {a, b});
  const InstanceId ff = nl_.add_instance(lib_.find(CellFunction::kDff, 0),
                                         {nl_.instance(g).fanout});
  nl_.mark_primary_output(nl_.instance(ff).fanout);

  const auto stats = compute_stats(nl_);
  EXPECT_EQ(stats.instances, 2u);
  EXPECT_EQ(stats.sequential, 1u);
  EXPECT_EQ(stats.primary_inputs, 2u);
  EXPECT_EQ(stats.primary_outputs, 1u);
  EXPECT_EQ(stats.max_logic_depth, 1u);
  EXPECT_GT(stats.total_area_um2, 0.0);
}

TEST_F(NetlistTest, TotalAreaSumsCellAreas) {
  const NetId a = nl_.add_primary_input();
  nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  nl_.add_instance(lib_.find(CellFunction::kInv, 1), {a});
  const double expected =
      lib_.cell(lib_.find(CellFunction::kInv, 0)).area_um2 +
      lib_.cell(lib_.find(CellFunction::kInv, 1)).area_um2;
  EXPECT_NEAR(nl_.total_cell_area(), expected, 1e-12);
}

}  // namespace
}  // namespace ppat::netlist
