// tuner::LiveCandidatePool: run_ppatuner over a live EvalService must be
// observationally identical to benchmark replay when the oracle is
// fault-free (for any license count), and must degrade gracefully — not
// crash, not leak budget, not return quarantined candidates — when runs
// fail.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flow/eval_service.hpp"
#include "flow/oracle_decorators.hpp"
#include "pareto/pareto.hpp"
#include "synthetic_benchmark.hpp"
#include "tuner/live_pool.hpp"
#include "tuner/ppatuner.hpp"

namespace ppat {
namespace {

tuner::PPATunerOptions fast_options() {
  tuner::PPATunerOptions opt;
  opt.min_init = 6;
  opt.batch_size = 4;
  opt.max_runs = 18;
  opt.max_rounds = 10;
  opt.refit_every = 2;
  opt.num_threads = 1;
  opt.seed = 3;
  return opt;
}

TEST(LiveCandidatePool, RevealMatchesBenchmarkGolden) {
  const auto set = testing::synthetic_benchmark("live_parity", 20, 5);
  tuner::BenchmarkCandidatePool bench(&set, tuner::kAreaPowerDelay);
  testing::SyntheticOracle oracle;
  flow::EvalService service(oracle, set.space);
  tuner::LiveCandidatePool live(set.configs, tuner::kAreaPowerDelay, service);

  ASSERT_EQ(live.size(), bench.size());
  ASSERT_EQ(live.encoded(), bench.encoded());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live.reveal(i), bench.reveal(i)) << "candidate " << i;
  }
  EXPECT_EQ(live.runs(), bench.runs());
  // Repeat reveals are memoized: no further tool runs.
  const std::size_t runs_before = oracle.run_count();
  live.reveal(0);
  live.reveal_batch({0, 1, 2});
  EXPECT_EQ(oracle.run_count(), runs_before);
  EXPECT_EQ(live.runs(), bench.runs());
}

TEST(LiveCandidatePool, TunerIdenticalToBenchmarkReplayForAnyLicenseCount) {
  const auto set = testing::synthetic_benchmark("live_tuner", 48, 7);
  const auto opt = fast_options();
  const auto factory = tuner::make_plain_gp_factory();

  tuner::BenchmarkCandidatePool bench(&set, tuner::kAreaDelay);
  const auto expected = run_ppatuner(bench, factory, opt);
  ASSERT_FALSE(expected.pareto_indices.empty());

  for (std::size_t licenses : {std::size_t{1}, std::size_t{4},
                               std::size_t{16}}) {
    testing::SyntheticOracle oracle;
    flow::EvalServiceOptions eopt;
    eopt.licenses = licenses;
    flow::EvalService service(oracle, set.space, eopt);
    tuner::LiveCandidatePool live(set.configs, tuner::kAreaDelay, service);

    const auto got = run_ppatuner(live, factory, opt);
    EXPECT_EQ(got.pareto_indices, expected.pareto_indices)
        << "licenses=" << licenses;
    EXPECT_EQ(got.tool_runs, expected.tool_runs) << "licenses=" << licenses;
    EXPECT_EQ(got.failed_runs, 0u);
    EXPECT_EQ(live.failed_evaluations(), 0u);
    EXPECT_EQ(oracle.run_count(), got.tool_runs);
  }
}

TEST(LiveCandidatePool, PermanentFailureQuarantinesWithoutRedispatch) {
  const auto set = testing::synthetic_benchmark("live_fail", 16, 9);
  testing::SyntheticOracle inner;
  flow::FaultInjectionOptions fopt;
  fopt.permanent_failure_rate = 0.25;
  fopt.seed = 0x90u;
  flow::FaultInjectingOracle fault(inner, fopt);
  flow::EvalServiceOptions eopt;
  eopt.max_attempts = 2;
  flow::EvalService service(fault, set.space, eopt);
  tuner::LiveCandidatePool live(set.configs, tuner::kPowerDelay, service);

  // Find a candidate destined to fail under this seed.
  std::size_t doomed = set.configs.size();
  for (std::size_t i = 0; i < set.configs.size(); ++i) {
    if (fault.is_permanently_failing(set.configs[i])) {
      doomed = i;
      break;
    }
  }
  ASSERT_LT(doomed, set.configs.size())
      << "seed produced no permanently failing candidate";

  EXPECT_THROW(live.reveal(doomed), tuner::PoolEvaluationError);
  EXPECT_TRUE(live.is_failed(doomed));
  EXPECT_FALSE(live.is_revealed(doomed));
  EXPECT_EQ(live.runs(), 0u);
  EXPECT_EQ(live.failed_evaluations(), 1u);
  ASSERT_NE(live.record(doomed), nullptr);
  EXPECT_EQ(live.record(doomed)->status, flow::RunStatus::kFailed);
  EXPECT_EQ(live.record(doomed)->attempts, eopt.max_attempts);

  // A known-failed candidate is never re-dispatched: the failure is
  // remembered, the tool is not re-run.
  const std::size_t calls_before = fault.run_count();
  EXPECT_THROW(live.reveal(doomed), tuner::PoolEvaluationError);
  const auto outcomes = live.reveal_batch({doomed});
  EXPECT_FALSE(outcomes.front().ok);
  EXPECT_FALSE(outcomes.front().error.empty());
  // The outcome carries the true run accounting (journaling callers
  // persist these): a crash is not a timeout, attempts are the real count.
  EXPECT_FALSE(outcomes.front().timed_out);
  EXPECT_EQ(outcomes.front().attempts, eopt.max_attempts);
  EXPECT_EQ(fault.run_count(), calls_before);
  EXPECT_EQ(live.failed_evaluations(), 1u);
}

TEST(LiveCandidatePool, TunerSurvivesInjectedFaultsAndQuarantines) {
  const auto set = testing::synthetic_benchmark("live_faulty_tuner", 60, 11);
  const auto opt = fast_options();
  const auto factory = tuner::make_plain_gp_factory();

  // Fault-free reference at the same successful-run budget.
  tuner::TuningResult clean;
  {
    testing::SyntheticOracle oracle;
    flow::EvalServiceOptions eopt;
    eopt.licenses = 4;
    flow::EvalService service(oracle, set.space, eopt);
    tuner::LiveCandidatePool live(set.configs, tuner::kAreaDelay, service);
    clean = run_ppatuner(live, factory, opt);
  }

  // ISSUE acceptance scenario: 20% transient + 5% permanent failures.
  testing::SyntheticOracle inner;
  flow::FaultInjectionOptions fopt;
  fopt.transient_failure_rate = 0.20;
  fopt.permanent_failure_rate = 0.05;
  fopt.seed = 0x5eedu;
  flow::FaultInjectingOracle fault(inner, fopt);
  flow::CachingOracle cache(fault);
  flow::EvalServiceOptions eopt;
  eopt.licenses = 4;
  eopt.max_attempts = 4;
  flow::EvalService service(cache, set.space, eopt);
  tuner::LiveCandidatePool live(set.configs, tuner::kAreaDelay, service);

  tuner::PPATunerDiagnostics diag;
  const auto result = run_ppatuner(live, factory, opt, &diag);

  // Failures never consume run budget; successful runs stay within it.
  EXPECT_LE(result.tool_runs, opt.max_runs);
  EXPECT_EQ(result.failed_runs, live.failed_evaluations());
  EXPECT_EQ(diag.failed_evaluations, live.failed_evaluations());
  EXPECT_FALSE(result.pareto_indices.empty());

  // Quarantined candidates are never part of the answer.
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live.is_failed(i)) {
      EXPECT_EQ(std::count(result.pareto_indices.begin(),
                           result.pareto_indices.end(), i),
                0)
          << "quarantined candidate " << i << " returned as Pareto";
    }
  }

  // Quality under faults stays within 2x of the fault-free ADRS at equal
  // successful-run budget (scored offline against the full golden front).
  tuner::BenchmarkCandidatePool scorer(&set, tuner::kAreaDelay);
  const auto q_clean = evaluate_result(scorer, clean);
  const auto q_fault = evaluate_result(scorer, result);
  EXPECT_LE(q_fault.adrs, std::max(2.0 * q_clean.adrs, 0.05))
      << "clean adrs=" << q_clean.adrs << " faulty adrs=" << q_fault.adrs;
}

}  // namespace
}  // namespace ppat
