// Multi-tenant tuning server: SessionManager admission/stop/failure
// semantics, the acceptance property that concurrent sessions are bitwise
// identical to sequential isolated runs, the versioned C ABI, and a full
// socket round trip.
#include "server/session_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/rng.hpp"
#include "sample/sampling.hpp"
#include "server/ppatuner_abi.h"
#include "server/socket_server.hpp"
#include "server/wire.hpp"
#include "synthetic_benchmark.hpp"
#include "tuner/live_pool.hpp"

namespace ppat::server {
namespace {

namespace fs = std::filesystem;

std::vector<flow::Config> make_candidates(const flow::ParameterSpace& space,
                                          std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  const auto unit = sample::latin_hypercube(n, space.size(), rng);
  std::vector<flow::Config> configs;
  configs.reserve(n);
  for (const auto& u : unit) configs.push_back(space.decode(u));
  return configs;
}

/// One tenant's task for the parity test.
struct Tenant {
  double shift = 0.0;
  std::vector<flow::Config> candidates;
  std::vector<std::size_t> objectives;
  tuner::PPATunerOptions tuner;
  std::size_t worker_threads = 1;
};

Tenant make_tenant(std::size_t i) {
  const auto space = ppat::testing::synthetic_space();
  Tenant t;
  t.shift = 0.05 * static_cast<double>(i % 3);
  t.candidates = make_candidates(space, 90 + 10 * (i % 4), 1000 + i);
  t.objectives = (i % 2 == 0) ? tuner::kAreaDelay : tuner::kPowerDelay;
  t.tuner.seed = 100 + i;
  t.tuner.max_runs = 30;
  t.tuner.batch_size = 3;
  t.worker_threads = 1 + i % 3;  // pool size must be invisible in results
  return t;
}

SessionConfig tenant_config(const Tenant& t) {
  SessionConfig cfg;
  cfg.space = ppat::testing::synthetic_space();
  cfg.candidates = t.candidates;
  cfg.objectives = t.objectives;
  cfg.tuner = t.tuner;
  cfg.worker_threads = t.worker_threads;
  cfg.make_oracle = [shift = t.shift]() -> std::unique_ptr<flow::QorOracle> {
    return std::make_unique<ppat::testing::SyntheticOracle>(shift);
  };
  return cfg;
}

/// The tenant's task run the old way: alone in the process, no broker, no
/// session plumbing — the reference behavior concurrency must reproduce.
tuner::TuningResult run_isolated(const Tenant& t) {
  const auto space = ppat::testing::synthetic_space();
  ppat::testing::SyntheticOracle oracle(t.shift);
  flow::EvalServiceOptions eval_opts;
  flow::EvalService service(oracle, space, eval_opts);
  tuner::LiveCandidatePool pool(t.candidates, t.objectives, service);
  tuner::PPATunerOptions opt = t.tuner;
  opt.num_threads = 1;
  return tuner::run_ppatuner(pool, tuner::make_plain_gp_factory(), opt);
}

/// Hex-exact (%a) digest of the front's objective values — index equality
/// could mask a divergence in WHICH values those indices map to.
std::string front_fingerprint(const Tenant& t,
                              const std::vector<std::size_t>& front) {
  const auto space = ppat::testing::synthetic_space();
  std::string out;
  char buf[96];
  for (std::size_t idx : front) {
    const auto q = ppat::testing::synthetic_qor(
        space.encode(t.candidates[idx]), t.shift);
    std::snprintf(buf, sizeof(buf), "%zu:%a,%a,%a;", idx, q.area_um2,
                  q.power_mw, q.delay_ns);
    out += buf;
  }
  return out;
}

// The acceptance criterion: 8 concurrent sessions in one server process,
// sharing 3 licenses and distinct per-session thread pools, produce
// per-session results bitwise identical to sequential isolated runs.
TEST(SessionManager, EightConcurrentSessionsMatchSequentialBitwise) {
  std::vector<Tenant> tenants;
  for (std::size_t i = 0; i < 8; ++i) tenants.push_back(make_tenant(i));

  std::vector<tuner::TuningResult> expected;
  for (const auto& t : tenants) expected.push_back(run_isolated(t));

  SessionManagerOptions opts;
  opts.max_sessions = 8;
  opts.total_licenses = 3;
  opts.handle_signals = false;
  SessionManager manager(opts);
  std::vector<std::uint64_t> ids;
  for (const auto& t : tenants) ids.push_back(manager.open(tenant_config(t)));
  // A fast session may already have drained; never MORE than admitted.
  EXPECT_LE(manager.active(), 8u);

  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const auto result = manager.wait(ids[i]);
    EXPECT_EQ(result.pareto_indices, expected[i].pareto_indices)
        << "session " << i;
    EXPECT_EQ(result.tool_runs, expected[i].tool_runs) << "session " << i;
    EXPECT_EQ(front_fingerprint(tenants[i], result.pareto_indices),
              front_fingerprint(tenants[i], expected[i].pareto_indices))
        << "session " << i;
    const auto status = manager.status(ids[i]);
    EXPECT_EQ(status.state, SessionState::kCompleted);
    EXPECT_TRUE(status.error.empty());
  }
  // All licenses returned once the fleet drained.
  EXPECT_EQ(manager.broker()->available(), manager.broker()->total());
  EXPECT_EQ(manager.active(), 0u);
}

TEST(SessionManager, AdmissionControlRejectsBeyondMaxSessions) {
  SessionManagerOptions opts;
  opts.max_sessions = 2;
  opts.handle_signals = false;
  SessionManager manager(opts);

  // Sessions that cannot finish until released (oracle blocks).
  auto blocking_gate = std::make_shared<std::atomic<bool>>(false);
  class GatedOracle final : public flow::QorOracle {
   public:
    explicit GatedOracle(std::shared_ptr<std::atomic<bool>> gate)
        : gate_(std::move(gate)) {}
    flow::QoR evaluate(const flow::ParameterSpace& space,
                       const flow::Config& config) override {
      while (!gate_->load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ++runs_;
      return ppat::testing::synthetic_qor(space.encode(config));
    }
    std::size_t run_count() const override { return runs_; }

   private:
    std::shared_ptr<std::atomic<bool>> gate_;
    std::atomic<std::size_t> runs_{0};
  };

  auto make_cfg = [&](std::uint64_t seed) {
    Tenant t = make_tenant(0);
    t.tuner.seed = seed;
    SessionConfig cfg = tenant_config(t);
    cfg.make_oracle = [blocking_gate]() -> std::unique_ptr<flow::QorOracle> {
      return std::make_unique<GatedOracle>(blocking_gate);
    };
    return cfg;
  };

  const auto id1 = manager.open(make_cfg(1));
  const auto id2 = manager.open(make_cfg(2));
  EXPECT_THROW(manager.open(make_cfg(3)), AdmissionError);
  // Config validation is also admission's job.
  SessionConfig broken;
  EXPECT_THROW(manager.open(std::move(broken)), std::invalid_argument);

  blocking_gate->store(true);
  manager.wait(id1);
  manager.wait(id2);
  // Capacity freed: a new tenant is admitted again.
  const auto id3 = manager.open(make_cfg(3));
  manager.wait(id3);
}

TEST(SessionManager, GracefulStopDrainsAndFinalizes) {
  SessionManagerOptions opts;
  opts.handle_signals = false;
  SessionManager manager(opts);

  Tenant t = make_tenant(1);
  t.tuner.max_runs = 200;  // budget far beyond what a stop should use
  t.tuner.max_rounds = 500;
  SessionConfig cfg = tenant_config(t);
  // The session parks in on_round after round 1 until the stop has been
  // requested, so the stop is guaranteed to land mid-run.
  std::atomic<std::size_t> rounds{0};
  std::atomic<bool> release{false};
  cfg.tuner.on_round = [&](const tuner::PPATunerProgress&) {
    rounds.fetch_add(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  const auto id = manager.open(std::move(cfg));
  while (rounds.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  manager.request_stop(id);
  release.store(true);
  const auto result = manager.wait(id);
  const auto status = manager.status(id);
  EXPECT_EQ(status.state, SessionState::kStopped);
  // A stopped session still finalizes a usable (classification-so-far)
  // result and its run count stays below the untouched budget.
  EXPECT_LT(result.tool_runs, 200u);
}

TEST(SessionManager, FailedSessionSurfacesItsError) {
  SessionManagerOptions opts;
  opts.handle_signals = false;
  SessionManager manager(opts);

  class DoomedOracle final : public flow::QorOracle {
   public:
    flow::QoR evaluate(const flow::ParameterSpace&,
                       const flow::Config&) override {
      throw flow::ToolRunError("tool binary not found");
    }
    std::size_t run_count() const override { return 0; }
  };

  Tenant t = make_tenant(2);
  SessionConfig cfg = tenant_config(t);
  cfg.eval.max_attempts = 1;
  cfg.make_oracle = []() -> std::unique_ptr<flow::QorOracle> {
    return std::make_unique<DoomedOracle>();
  };
  const auto id = manager.open(std::move(cfg));
  EXPECT_THROW(manager.wait(id), std::runtime_error);
  const auto status = manager.status(id);
  EXPECT_EQ(status.state, SessionState::kFailed);
  EXPECT_FALSE(status.error.empty());
}

// Per-session journals: a session stopped mid-run resumes in a NEW manager
// from its own journal directory and finishes bit-identically to a session
// that was never interrupted.
TEST(SessionManager, StoppedSessionResumesFromItsJournal) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "ppat_server_session_journal";
  fs::remove_all(dir);
  fs::create_directories(dir);

  Tenant t = make_tenant(3);
  t.tuner.max_runs = 40;

  // Uninterrupted reference (no journal).
  const auto expected = run_isolated(t);

  {
    SessionManagerOptions opts;
    opts.handle_signals = false;
    SessionManager manager(opts);
    SessionConfig cfg = tenant_config(t);
    cfg.journal_dir = (dir / "s1").string();
    // Deterministic mid-run stop through the user-supplied should_stop
    // (chained with the manager's own stop sources).
    auto rounds = std::make_shared<std::atomic<std::size_t>>(0);
    cfg.tuner.on_round = [rounds](const tuner::PPATunerProgress&) {
      rounds->fetch_add(1);
    };
    cfg.tuner.should_stop = [rounds] { return rounds->load() >= 2; };
    const auto id = manager.open(std::move(cfg));
    const auto partial = manager.wait(id);
    ASSERT_EQ(manager.status(id).state, SessionState::kStopped);
    ASSERT_LT(partial.tool_runs, expected.tool_runs);
  }
  {
    SessionManagerOptions opts;
    opts.handle_signals = false;
    SessionManager manager(opts);
    SessionConfig cfg = tenant_config(t);
    cfg.journal_dir = (dir / "s1").string();
    const auto id = manager.open(std::move(cfg));
    const auto result = manager.wait(id);
    const auto status = manager.status(id);
    EXPECT_EQ(status.state, SessionState::kCompleted);
    EXPECT_TRUE(status.resumed);
    EXPECT_EQ(result.pareto_indices, expected.pareto_indices);
    EXPECT_EQ(result.tool_runs, expected.tool_runs);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Versioned C ABI.

TEST(Abi, RejectsIncompatibleCallers) {
  EXPECT_EQ(ppat_abi_version() >> 16, PPAT_ABI_VERSION_MAJOR);
  const double candidates[4] = {0.1, 0.2, 0.3, 0.4};
  ppat_session* session = nullptr;

  ppat_options_v1 opt = PPAT_OPTIONS_V1_INIT;
  opt.abi_version = PPAT_ABI_VERSION_MAJOR + 1;
  EXPECT_EQ(ppat_init(&opt, candidates, 2, 2, 1, &session),
            PPAT_ERROR_VERSION);
  EXPECT_EQ(session, nullptr);

  opt = PPAT_OPTIONS_V1_INIT;
  opt.struct_size = 8;  // truncated struct from a mis-built caller
  EXPECT_EQ(ppat_init(&opt, candidates, 2, 2, 1, &session),
            PPAT_ERROR_VERSION);

  opt = PPAT_OPTIONS_V1_INIT;
  EXPECT_EQ(ppat_init(&opt, candidates, 2, 2, 0, &session),
            PPAT_ERROR_INVALID);
  EXPECT_EQ(ppat_init(&opt, candidates, 2, 2, PPAT_MAX_OBJECTIVES + 1,
                      &session),
            PPAT_ERROR_INVALID);
  EXPECT_EQ(ppat_init(&opt, nullptr, 2, 2, 1, &session), PPAT_ERROR_INVALID);
  EXPECT_STREQ(ppat_status_name(PPAT_ERROR_VERSION), "PPAT_ERROR_VERSION");
}

TEST(Abi, EmbedderDrivenLoopRunsToCompletion) {
  // 60 candidates on a 2-D grid; the embedder computes two objectives with
  // a genuine trade-off (min x vs min 1-x).
  const std::size_t kN = 60, kDim = 2;
  std::vector<double> flat(kN * kDim);
  common::Rng rng(9);
  const auto unit = sample::latin_hypercube(kN, kDim, rng);
  for (std::size_t i = 0; i < kN; ++i) {
    flat[i * 2] = unit[i][0];
    flat[i * 2 + 1] = unit[i][1];
  }
  auto objective = [&](std::uint64_t idx, double* out) {
    const double x = flat[idx * 2], y = flat[idx * 2 + 1];
    out[0] = x + 0.1 * y;
    out[1] = (1.0 - x) + 0.1 * y * y;
  };

  ppat_options_v1 opt = PPAT_OPTIONS_V1_INIT;
  opt.seed = 5;
  opt.max_runs = 30;
  opt.batch_size = 4;
  ppat_session* session = nullptr;
  ASSERT_EQ(ppat_init(&opt, flat.data(), kN, kDim, 2, &session), PPAT_OK);
  ASSERT_NE(session, nullptr);

  std::uint64_t want[8], got = 0;
  ppat_status status;
  std::size_t answered = 0;
  while ((status = ppat_get_candidates(session, want, 8, &got)) == PPAT_OK) {
    ASSERT_GE(got, 1u);
    for (std::uint64_t k = 0; k < got; ++k) {
      ASSERT_LT(want[k], kN);
      double y[2];
      objective(want[k], y);
      ASSERT_EQ(ppat_set_result(session, want[k], y, 1), PPAT_OK);
      ++answered;
    }
    ASSERT_LT(answered, 500u) << "loop did not converge";
  }
  EXPECT_EQ(status, PPAT_DONE) << ppat_last_error(session);
  EXPECT_EQ(got, 0u);

  std::uint64_t runs = 0;
  ASSERT_EQ(ppat_runs(session, &runs), PPAT_OK);
  EXPECT_GT(runs, 0u);
  EXPECT_LE(runs, 30u);

  // Capacity contract: too-small buffer reports required size.
  std::uint64_t count = 0;
  std::uint64_t one[1];
  const auto front_status = ppat_front(session, one, 1, &count);
  std::vector<std::uint64_t> front(count == 0 ? 1 : count);
  if (front_status == PPAT_ERROR_CAPACITY) {
    ASSERT_GT(count, 1u);
    ASSERT_EQ(ppat_front(session, front.data(), count, &count), PPAT_OK);
  }
  EXPECT_GE(count, 1u);
  for (std::uint64_t k = 0; k < count; ++k) EXPECT_LT(front[k], kN);

  // Answering out of range, or a candidate with no pending request, is an
  // error, not a crash.
  double junk[2] = {0.0, 0.0};
  EXPECT_EQ(ppat_set_result(session, kN + 5, junk, 1), PPAT_ERROR_INVALID);

  EXPECT_EQ(ppat_shutdown(session), PPAT_OK);
}

TEST(Abi, ShutdownMidRunDoesNotHang) {
  const std::size_t kN = 40, kDim = 2;
  std::vector<double> flat(kN * kDim, 0.5);
  for (std::size_t i = 0; i < kN; ++i) {
    flat[i * 2] = static_cast<double>(i) / kN;
  }
  ppat_options_v1 opt = PPAT_OPTIONS_V1_INIT;
  opt.max_runs = 30;
  ppat_session* session = nullptr;
  ASSERT_EQ(ppat_init(&opt, flat.data(), kN, kDim, 2, &session), PPAT_OK);
  // Fetch one batch and abandon it: shutdown must fail the pending reveals
  // and join the tuner thread instead of deadlocking.
  std::uint64_t want[4], got = 0;
  ASSERT_EQ(ppat_get_candidates(session, want, 4, &got), PPAT_OK);
  ASSERT_GE(got, 1u);
  EXPECT_EQ(ppat_shutdown(session), PPAT_OK);
}

// ---------------------------------------------------------------------------
// Socket round trip against an in-process SocketServer.

TEST(SocketServer, ClientSessionStreamsUpdatesAndFinishes) {
  const std::string sock =
      (fs::path(::testing::TempDir()) / "ppat_test.sock").string();

  SocketServerOptions opts;
  opts.socket_path = sock;
  opts.sessions.handle_signals = false;
  opts.sessions.max_sessions = 2;
  opts.sessions.total_licenses = 2;
  opts.resolve_oracle = [](const std::string& name, std::uint64_t seed,
                           std::size_t dim) -> std::optional<OracleSpec> {
    if (name != "synthetic" || dim != 3) return std::nullopt;
    OracleSpec spec;
    spec.space = ppat::testing::synthetic_space();
    spec.make = [seed] {
      return std::make_unique<ppat::testing::SyntheticOracle>(
          0.05 * static_cast<double>(seed % 7));
    };
    return spec;
  };

  SocketServer server(std::move(opts));
  server.bind();
  std::thread serve_thread([&] { server.serve(); });

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", sock.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  {
    wire::Writer w;
    w.u32(wire::kProtocolVersion);
    wire::write_frame(fd, wire::MsgType::kHello, w.take());
  }
  auto ack = wire::read_frame(fd);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, wire::MsgType::kHelloAck);

  common::Rng rng(21);
  const auto unit = sample::latin_hypercube(100, 3, rng);
  {
    wire::Writer w;
    w.str("synthetic");
    w.u64(1);   // oracle seed
    w.u64(7);   // tuner seed
    w.f64(0.0);
    w.f64(0.0);
    w.u64(0);
    w.u64(25);  // max_runs
    w.u64(0);
    w.u64_vec({0, 2});
    w.u64(100);
    w.u64(3);
    for (const auto& u : unit) {
      for (double x : u) w.f64(x);
    }
    wire::write_frame(fd, wire::MsgType::kOpenSession, w.take());
  }

  bool opened = false, done = false;
  std::size_t updates = 0;
  std::uint64_t final_runs = 0;
  while (auto frame = wire::read_frame(fd)) {
    wire::Reader r(frame->payload);
    if (frame->type == wire::MsgType::kSessionOpened) {
      EXPECT_GT(r.u64(), 0u);
      opened = true;
    } else if (frame->type == wire::MsgType::kRoundUpdate) {
      ++updates;
    } else if (frame->type == wire::MsgType::kDone) {
      r.u64();  // session id
      EXPECT_EQ(static_cast<SessionState>(r.u8()), SessionState::kCompleted);
      final_runs = r.u64();
      done = true;
      break;
    } else if (frame->type == wire::MsgType::kError) {
      FAIL() << "server error: " << r.str();
    }
  }
  ::close(fd);
  EXPECT_TRUE(opened);
  EXPECT_TRUE(done);
  EXPECT_GE(updates, 1u);  // at least one streamed Pareto update arrived
  EXPECT_GT(final_runs, 0u);
  EXPECT_LE(final_runs, 25u);

  server.stop();
  serve_thread.join();
}

}  // namespace
}  // namespace ppat::server
