#include "netlist/mac_generator.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "netlist_sim.hpp"

namespace ppat::netlist {
namespace {

class MacTest : public ::testing::Test {
 protected:
  MacTest() : lib_(CellLibrary::make_default()) {}
  CellLibrary lib_;
};

TEST_F(MacTest, GeneratedNetlistValidates) {
  MacConfig cfg;
  cfg.operand_bits = 6;
  cfg.lanes = 2;
  cfg.pipeline_stages = 1;
  const Netlist nl = generate_mac(lib_, cfg);
  nl.validate();
  const auto stats = compute_stats(nl);
  EXPECT_GT(stats.instances, 100u);
  EXPECT_GT(stats.sequential, 0u);
  EXPECT_GT(stats.primary_outputs, 0u);
}

TEST_F(MacTest, CellCountScalesWithLanes) {
  MacConfig one;
  one.operand_bits = 8;
  one.lanes = 1;
  MacConfig four = one;
  four.lanes = 4;
  const auto n1 = generate_mac(lib_, one).num_instances();
  const auto n4 = generate_mac(lib_, four).num_instances();
  // B-register bank is shared, so scaling is slightly sub-linear.
  EXPECT_GT(n4, 3 * n1);
  EXPECT_LT(n4, 4 * n1);
}

TEST_F(MacTest, PresetsMatchPaperScale) {
  const auto small = generate_mac(lib_, small_mac_config());
  const auto large = generate_mac(lib_, large_mac_config());
  // Paper: ~20k and ~67k cells.
  EXPECT_GT(small.num_instances(), 15000u);
  EXPECT_LT(small.num_instances(), 25000u);
  EXPECT_GT(large.num_instances(), 55000u);
  EXPECT_LT(large.num_instances(), 80000u);
}

TEST_F(MacTest, SharedCoefficientHasHighFanout) {
  MacConfig cfg;
  cfg.operand_bits = 8;
  cfg.lanes = 6;
  const Netlist nl = generate_mac(lib_, cfg);
  const auto stats = compute_stats(nl);
  // Each shared-B register bit drives one AND per lane per A-bit.
  EXPECT_GE(stats.max_fanout, static_cast<std::size_t>(cfg.lanes) *
                                  cfg.operand_bits);
}

TEST_F(MacTest, RejectsDegenerateConfigs) {
  MacConfig cfg;
  cfg.operand_bits = 1;
  EXPECT_THROW(generate_mac(lib_, cfg), std::invalid_argument);
  cfg.operand_bits = 4;
  cfg.lanes = 0;
  EXPECT_THROW(generate_mac(lib_, cfg), std::invalid_argument);
}

// Functional check: simulate the netlist and verify it multiplies and
// accumulates. PI order is the generator's contract: the shared B bits
// first, then each lane's A bits.
TEST_F(MacTest, MacComputesMultiplyAccumulate) {
  MacConfig cfg;
  cfg.operand_bits = 4;
  cfg.lanes = 1;
  cfg.pipeline_stages = 1;
  cfg.accumulator_guard_bits = 4;
  const Netlist nl = generate_mac(lib_, cfg);
  testing::Simulator sim(nl);

  const auto& pis = nl.primary_inputs();
  ASSERT_EQ(pis.size(), 8u);  // 4 B bits + 4 A bits
  const std::uint64_t b_val = 13, a_val = 11;
  for (unsigned i = 0; i < 4; ++i) {
    sim.set_input(pis[i], (b_val >> i) & 1);
    sim.set_input(pis[4 + i], (a_val >> i) & 1);
  }

  const auto pos = nl.primary_outputs();
  ASSERT_EQ(pos.size(), 12u);  // 2*4 product bits + 4 guard bits

  // Latency: 1 cycle operand registers + 1 pipeline stage; the accumulator
  // captures the first product on the cycle after the pipeline register.
  sim.clock();  // operands registered
  sim.clock();  // product in pipeline register
  sim.clock();  // acc = a*b
  EXPECT_EQ(sim.read_bus(pos), a_val * b_val);
  sim.clock();  // acc = 2*a*b
  EXPECT_EQ(sim.read_bus(pos), 2 * a_val * b_val);
  sim.clock();
  EXPECT_EQ(sim.read_bus(pos), 3 * a_val * b_val);
}

TEST_F(MacTest, MultiplierCorrectAcrossOperands) {
  MacConfig cfg;
  cfg.operand_bits = 3;
  cfg.lanes = 1;
  cfg.pipeline_stages = 0;
  cfg.accumulator_guard_bits = 3;
  const Netlist nl = generate_mac(lib_, cfg);
  const auto& pis = nl.primary_inputs();
  const auto pos = nl.primary_outputs();

  // Exhaustive over 3-bit x 3-bit operands; with no pipeline stage the
  // first product lands in the accumulator two clocks after the inputs.
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      testing::Simulator sim(nl);
      for (unsigned i = 0; i < 3; ++i) {
        sim.set_input(pis[i], (b >> i) & 1);
        sim.set_input(pis[3 + i], (a >> i) & 1);
      }
      sim.clock();
      sim.clock();
      EXPECT_EQ(sim.read_bus(pos), a * b) << "a=" << a << " b=" << b;
    }
  }
}

TEST_F(MacTest, MultiLaneAccumulatesIndependently) {
  MacConfig cfg;
  cfg.operand_bits = 3;
  cfg.lanes = 2;
  cfg.pipeline_stages = 0;
  cfg.accumulator_guard_bits = 2;
  const Netlist nl = generate_mac(lib_, cfg);
  const auto& pis = nl.primary_inputs();
  ASSERT_EQ(pis.size(), 3u + 2u * 3u);  // shared B + two A lanes
  const auto pos = nl.primary_outputs();
  ASSERT_EQ(pos.size(), 2u * 8u);

  testing::Simulator sim(nl);
  const std::uint64_t b = 5, a0 = 3, a1 = 6;
  for (unsigned i = 0; i < 3; ++i) {
    sim.set_input(pis[i], (b >> i) & 1);
    sim.set_input(pis[3 + i], (a0 >> i) & 1);
    sim.set_input(pis[6 + i], (a1 >> i) & 1);
  }
  sim.clock();
  sim.clock();
  const std::vector<NetId> lane0(pos.begin(), pos.begin() + 8);
  const std::vector<NetId> lane1(pos.begin() + 8, pos.end());
  EXPECT_EQ(sim.read_bus(lane0), a0 * b);
  EXPECT_EQ(sim.read_bus(lane1), a1 * b);
}

}  // namespace
}  // namespace ppat::netlist
