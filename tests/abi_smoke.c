/* Pure C11 smoke test for the plugin ABI: proves an embedding tool can
 * drive a full tuning session against ppatuner_abi.h with NO C++ headers,
 * C++ compiler, or knowledge of the implementation — the acceptance
 * criterion for the versioned ABI.
 *
 * Compiled with a C compiler (-std=c11) and linked against the C++ static
 * libraries; a C++ symbol leaking into the header would break this build.
 */
#include "server/ppatuner_abi.h"

#include <math.h>
#include <stdio.h>
#include <stdlib.h>

#define N_CANDIDATES 50u
#define DIM 2u
#define N_OBJECTIVES 2u

static void fail(const char *what, ppat_status status) {
  fprintf(stderr, "abi_smoke: %s failed: %s\n", what,
          ppat_status_name(status));
  exit(1);
}

/* The embedder's "tool": two conflicting objectives on the unit square. */
static void run_tool(const double *x, double *objectives) {
  objectives[0] = x[0] + 0.1 * x[1];
  objectives[1] = (1.0 - x[0]) + 0.1 * x[1] * x[1];
}

int main(void) {
  if ((ppat_abi_version() >> 16) != PPAT_ABI_VERSION_MAJOR) {
    fprintf(stderr, "abi_smoke: library ABI major %u != header %u\n",
            ppat_abi_version() >> 16, PPAT_ABI_VERSION_MAJOR);
    return 1;
  }

  /* A deterministic low-discrepancy-ish grid; no RNG dependency. */
  double candidates[N_CANDIDATES * DIM];
  for (unsigned i = 0; i < N_CANDIDATES; ++i) {
    candidates[i * DIM] = (i + 0.5) / N_CANDIDATES;
    candidates[i * DIM + 1] = fmod(0.618033988749895 * (i + 1), 1.0);
  }

  ppat_options_v1 opt = PPAT_OPTIONS_V1_INIT;
  opt.seed = 11;
  opt.max_runs = 25;
  opt.batch_size = 4;

  ppat_session *session = NULL;
  ppat_status status =
      ppat_init(&opt, candidates, N_CANDIDATES, DIM, N_OBJECTIVES, &session);
  if (status != PPAT_OK) fail("ppat_init", status);

  /* The embedder owns the evaluation loop. */
  uint64_t want[8], got = 0;
  unsigned answered = 0;
  while ((status = ppat_get_candidates(session, want, 8, &got)) == PPAT_OK) {
    for (uint64_t k = 0; k < got; ++k) {
      if (want[k] >= N_CANDIDATES) {
        fprintf(stderr, "abi_smoke: index %llu out of range\n",
                (unsigned long long)want[k]);
        return 1;
      }
      double y[N_OBJECTIVES];
      run_tool(&candidates[want[k] * DIM], y);
      status = ppat_set_result(session, want[k], y, 1);
      if (status != PPAT_OK) fail("ppat_set_result", status);
      ++answered;
    }
    if (answered > 1000) {
      fprintf(stderr, "abi_smoke: loop did not terminate\n");
      return 1;
    }
  }
  if (status != PPAT_DONE) {
    fprintf(stderr, "abi_smoke: loop ended with %s (%s)\n",
            ppat_status_name(status), ppat_last_error(session));
    return 1;
  }

  uint64_t runs = 0;
  status = ppat_runs(session, &runs);
  if (status != PPAT_OK) fail("ppat_runs", status);
  if (runs == 0 || runs > opt.max_runs) {
    fprintf(stderr, "abi_smoke: implausible run count %llu\n",
            (unsigned long long)runs);
    return 1;
  }

  uint64_t front[N_CANDIDATES], front_n = 0;
  status = ppat_front(session, front, N_CANDIDATES, &front_n);
  if (status != PPAT_OK) fail("ppat_front", status);
  if (front_n == 0) {
    fprintf(stderr, "abi_smoke: empty predicted Pareto set\n");
    return 1;
  }

  status = ppat_shutdown(session);
  if (status != PPAT_OK) fail("ppat_shutdown", status);

  printf("abi_smoke: OK (%llu tool runs, %llu Pareto candidates)\n",
         (unsigned long long)runs, (unsigned long long)front_n);
  return 0;
}
