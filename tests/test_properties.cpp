// Cross-module property tests over randomized structures: STA monotonicity
// on random DAGs, optimizer structural invariants on random designs, GP
// posterior contraction, and 4-D hypervolume consistency (exercising the
// recursive slicing path beyond the 3-D cases used elsewhere).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gp/gp.hpp"
#include "pareto/pareto.hpp"
#include "sta/optimizer.hpp"

namespace ppat {
namespace {

/// Random combinational DAG over the default library: each new gate reads
/// from earlier nets, with a final DFF layer so FF endpoints exist.
netlist::Netlist random_design(const netlist::CellLibrary& lib,
                               std::size_t gates, common::Rng& rng) {
  netlist::Netlist nl(&lib);
  std::vector<netlist::NetId> nets;
  for (int i = 0; i < 4; ++i) nets.push_back(nl.add_primary_input());
  const netlist::CellFunction funcs[] = {
      netlist::CellFunction::kInv,  netlist::CellFunction::kNand2,
      netlist::CellFunction::kNor2, netlist::CellFunction::kXor2,
      netlist::CellFunction::kAoi21};
  for (std::size_t g = 0; g < gates; ++g) {
    const auto f = funcs[rng.next_below(5)];
    const auto cell =
        lib.find(f, static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(lib.drive_levels(f)))));
    const std::size_t arity = lib.cell(cell).num_inputs;
    std::vector<netlist::NetId> fanins;
    for (std::size_t p = 0; p < arity; ++p) {
      fanins.push_back(nets[rng.next_below(nets.size())]);
    }
    nets.push_back(nl.instance(nl.add_instance(cell, fanins)).fanout);
  }
  // Register the last few nets.
  const auto dff = lib.find(netlist::CellFunction::kDff, 0);
  for (int i = 0; i < 3; ++i) {
    nl.add_instance(dff, {nets[nets.size() - 1 - i]});
  }
  nl.mark_primary_output(nets.back());
  return nl;
}

class RandomDesign : public ::testing::TestWithParam<int> {};

TEST_P(RandomDesign, StaArrivalsAreCausal) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto lib = netlist::CellLibrary::make_default();
  const auto nl = random_design(lib, 60, rng);
  nl.validate();

  sta::WireParasitics wires;
  wires.res_kohm.assign(nl.num_nets(), 0.02);
  wires.cap_ff.assign(nl.num_nets(), 1.0);
  const auto report = sta::run_sta(nl, wires, sta::TimingOptions{});

  // Causality: every combinational gate's output arrives strictly after
  // each of its inputs.
  for (netlist::InstanceId i = 0; i < nl.num_instances(); ++i) {
    if (nl.is_sequential(i)) continue;
    for (netlist::NetId fanin : nl.instance(i).fanins) {
      EXPECT_GT(report.arrival_ns[nl.instance(i).fanout],
                report.arrival_ns[fanin]);
    }
  }
  // Critical delay is the max over all arrivals at endpoints, hence at
  // least the max net arrival feeding any FF.
  EXPECT_GT(report.critical_delay_ns, 0.0);
}

TEST_P(RandomDesign, OptimizerPreservesInvariants) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto lib = netlist::CellLibrary::make_default();
  auto nl = random_design(lib, 80, rng);

  std::vector<double> x(nl.num_instances()), y(nl.num_instances());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(0.0, 120.0);
    y[i] = rng.uniform(0.0, 120.0);
  }
  std::vector<double> hpwl(nl.num_nets());
  for (auto& h : hpwl) h = rng.uniform(0.0, 80.0);

  sta::OptimizerOptions opt;
  opt.limits.max_fanout = 4;
  opt.limits.max_transition_ns = 0.08;
  opt.limits.max_capacitance_ff = 12.0;
  opt.limits.max_length_um = 50.0;
  opt.max_repair_passes = 4;
  opt.sizing_passes = 2;
  const auto result =
      sta::optimize(nl, x, y, hpwl, sta::TimingOptions{}, opt);

  // Structural invariants hold regardless of what was repaired.
  nl.validate();
  EXPECT_EQ(x.size(), nl.num_instances());
  EXPECT_EQ(y.size(), nl.num_instances());
  EXPECT_EQ(hpwl.size(), nl.num_nets());
  // Fanout caps are hard guarantees after enough passes.
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    EXPECT_LE(nl.net(n).sinks.size(), 2 * opt.limits.max_fanout);
  }
  EXPECT_TRUE(std::isfinite(result.final_timing.critical_delay_ns));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDesign, ::testing::Range(1, 7));

TEST(GpPosterior, VarianceContractsWithData) {
  common::Rng rng(42);
  gp::GaussianProcess model(
      std::make_unique<gp::SquaredExponentialKernel>(0.3, 1.0), 1e-4);
  model.fit({{0.0}, {1.0}}, {0.0, 1.0});
  const linalg::Vector probe = {0.5};
  double prev = model.predict(probe).variance;
  for (int i = 0; i < 6; ++i) {
    const double x = rng.uniform01();
    model.add_observation({x}, x);
    const double now = model.predict(probe).variance;
    EXPECT_LE(now, prev + 1e-9) << "observation " << i;
    prev = now;
  }
}

TEST(Hypervolume4D, MatchesProductStructure) {
  // Points differing only in the first two coordinates, constant in the
  // last two: HV factorizes into (2-D staircase) x (slab) x (slab).
  const std::vector<pareto::Point> p2 = {{1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}};
  std::vector<pareto::Point> p4;
  for (const auto& p : p2) p4.push_back({p[0], p[1], 2.0, 1.0});
  const double hv2 = pareto::hypervolume(p2, {4.0, 4.0});
  const double hv4 = pareto::hypervolume(p4, {4.0, 4.0, 5.0, 4.0});
  EXPECT_NEAR(hv4, hv2 * 3.0 * 3.0, 1e-9);
}

TEST(Hypervolume4D, RandomMonotonicity) {
  common::Rng rng(7);
  std::vector<pareto::Point> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({rng.uniform01(), rng.uniform01(), rng.uniform01(),
                   rng.uniform01()});
  }
  const pareto::Point ref(4, 1.2);
  const double base = pareto::hypervolume(pts, ref);
  EXPECT_GT(base, 0.0);
  // Improving any single point (componentwise) cannot reduce HV.
  auto improved = pts;
  for (double& v : improved[3]) v *= 0.5;
  EXPECT_GE(pareto::hypervolume(improved, ref) + 1e-12, base);
  // Order invariance.
  rng.shuffle(pts);
  EXPECT_NEAR(pareto::hypervolume(pts, ref), base, 1e-9);
}

}  // namespace
}  // namespace ppat
