#include "place/def_io.hpp"

#include <gtest/gtest.h>

#include "netlist/mac_generator.hpp"

namespace ppat::place {
namespace {

class DefIoTest : public ::testing::Test {
 protected:
  DefIoTest() : lib_(netlist::CellLibrary::make_default()) {
    netlist::MacConfig cfg;
    cfg.operand_bits = 4;
    cfg.lanes = 2;
    nl_ = std::make_unique<netlist::Netlist>(netlist::generate_mac(lib_, cfg));
    placement_ = place(*nl_, PlacerOptions{});
  }
  netlist::CellLibrary lib_;
  std::unique_ptr<netlist::Netlist> nl_;
  Placement placement_;
};

TEST_F(DefIoTest, EmitsExpectedStructure) {
  const std::string def = to_def(*nl_, placement_, "mac");
  EXPECT_NE(def.find("VERSION 5.8 ;"), std::string::npos);
  EXPECT_NE(def.find("DESIGN mac ;"), std::string::npos);
  EXPECT_NE(def.find("UNITS DISTANCE MICRONS 1000 ;"), std::string::npos);
  EXPECT_NE(def.find("COMPONENTS " + std::to_string(nl_->num_instances())),
            std::string::npos);
  EXPECT_NE(def.find("END COMPONENTS"), std::string::npos);
}

TEST_F(DefIoTest, RoundTripPreservesCoordinates) {
  const auto parsed = parse_def(to_def(*nl_, placement_, "mac"));
  ASSERT_EQ(parsed.x.size(), nl_->num_instances());
  EXPECT_NEAR(parsed.die_width_um, placement_.die_width_um, 1e-3);
  EXPECT_NEAR(parsed.die_height_um, placement_.die_height_um, 1e-3);
  for (std::size_t i = 0; i < parsed.x.size(); ++i) {
    // DBU quantization: 1/1000 um.
    EXPECT_NEAR(parsed.x[i], placement_.x[i], 5e-4) << "component " << i;
    EXPECT_NEAR(parsed.y[i], placement_.y[i], 5e-4) << "component " << i;
  }
}

TEST_F(DefIoTest, SizeMismatchRejected) {
  Placement truncated = placement_;
  truncated.x.pop_back();
  EXPECT_THROW(to_def(*nl_, truncated, "bad"), std::invalid_argument);
}

TEST_F(DefIoTest, ParserRejectsMalformedComponent) {
  const std::string def =
      "VERSION 5.8 ;\nDESIGN t ;\nUNITS DISTANCE MICRONS 1000 ;\n"
      "DIEAREA ( 0 0 ) ( 1000 1000 ) ;\n"
      "COMPONENTS 1 ;\n"
      "  - u0 INV_X1 + PLACED ( oops\n"
      "END COMPONENTS\n";
  EXPECT_THROW(parse_def(def), std::runtime_error);
}

TEST_F(DefIoTest, ParserRejectsOutOfRangeIndex) {
  const std::string def =
      "VERSION 5.8 ;\nDESIGN t ;\nUNITS DISTANCE MICRONS 1000 ;\n"
      "DIEAREA ( 0 0 ) ( 1000 1000 ) ;\n"
      "COMPONENTS 1 ;\n"
      "  - u7 INV_X1 + PLACED ( 10 10 ) N ;\n"
      "END COMPONENTS\n";
  EXPECT_THROW(parse_def(def), std::runtime_error);
}

TEST_F(DefIoTest, ParserRejectsUnterminatedComponents) {
  const std::string def =
      "COMPONENTS 1 ;\n"
      "  - u0 INV_X1 + PLACED ( 10 10 ) N ;\n";
  EXPECT_THROW(parse_def(def), std::runtime_error);
}

}  // namespace
}  // namespace ppat::place
