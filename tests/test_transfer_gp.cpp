#include "gp/transfer_gp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ppat::gp {
namespace {

TransferGaussianProcess make_tgp(double lengthscale = 0.3) {
  return TransferGaussianProcess(
      std::make_unique<SquaredExponentialKernel>(lengthscale, 1.0));
}

/// Source function and a closely related target function.
double f_source(double x) { return std::sin(5.0 * x); }
double f_target(double x) { return std::sin(5.0 * x) + 0.1 * x; }

struct Task {
  std::vector<linalg::Vector> xs;
  linalg::Vector ys;
};

Task sample_task(double (*f)(double), std::size_t n, std::uint64_t seed,
                 double scale = 1.0, double offset = 0.0) {
  common::Rng rng(seed);
  Task t;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform01();
    t.xs.push_back({x});
    t.ys.push_back(offset + scale * f(x));
  }
  return t;
}

TEST(TransferGp, RhoClosedFormMatchesDefinition) {
  // rho = 2 (1/(1+a))^b - 1 must lie in (-1, 1) and hit known values.
  auto tgp = make_tgp();
  const auto src = sample_task(f_source, 10, 1);
  const auto tgt = sample_task(f_target, 5, 2);
  tgp.fit(src.xs, src.ys, tgt.xs, tgt.ys);
  const double rho = tgp.task_correlation();
  EXPECT_GT(rho, -1.0);
  EXPECT_LT(rho, 1.0);
}

TEST(TransferGp, CorrelatedSourceImprovesPrediction) {
  // 40 source points, only 4 target points: the transfer GP should predict
  // the target function far better than a target-only GP.
  const auto src = sample_task(f_source, 40, 11);
  const auto tgt = sample_task(f_target, 4, 12);

  auto tgp = make_tgp();
  tgp.fit(src.xs, src.ys, tgt.xs, tgt.ys);
  common::Rng rng(13);
  tgp.optimize_hyperparameters(rng);

  GaussianProcess plain(std::make_unique<SquaredExponentialKernel>(0.3, 1.0),
                        1e-4);
  plain.fit(tgt.xs, tgt.ys);
  common::Rng rng2(13);
  plain.optimize_hyperparameters(rng2);

  double err_transfer = 0.0, err_plain = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i) / 49.0;
    const double truth = f_target(x);
    err_transfer += std::fabs(tgp.predict({x}).mean - truth);
    err_plain += std::fabs(plain.predict({x}).mean - truth);
  }
  EXPECT_LT(err_transfer, err_plain);
  // And the learned correlation should be strongly positive.
  EXPECT_GT(tgp.task_correlation(), 0.3);
}

TEST(TransferGp, HandlesCrossTaskScaleMismatch) {
  // Target values are 100x the source scale with an offset (the paper's
  // Scenario Two: same shape, different design size). Per-task
  // standardization must absorb this.
  const auto src = sample_task(f_source, 40, 21);
  const auto tgt = sample_task(f_source, 6, 22, 100.0, 5000.0);

  auto tgp = make_tgp();
  tgp.fit(src.xs, src.ys, tgt.xs, tgt.ys);
  common::Rng rng(23);
  tgp.optimize_hyperparameters(rng);

  double err = 0.0;
  for (int i = 0; i < 25; ++i) {
    const double x = static_cast<double>(i) / 24.0;
    err += std::fabs(tgp.predict({x}).mean - (5000.0 + 100.0 * f_source(x)));
  }
  // Mean absolute error well under the target's own std (~70).
  EXPECT_LT(err / 25.0, 40.0);
}

TEST(TransferGp, AntiCorrelatedTasksLearnNegativeRho) {
  auto neg = [](double x) { return -std::sin(5.0 * x); };
  common::Rng rng(31);
  Task src;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform01();
    src.xs.push_back({x});
    src.ys.push_back(neg(x));
  }
  const auto tgt = sample_task(f_source, 10, 32);
  auto tgp = make_tgp();
  tgp.fit(src.xs, src.ys, tgt.xs, tgt.ys);
  common::Rng rng2(33);
  tgp.optimize_hyperparameters(rng2);
  EXPECT_LT(tgp.task_correlation(), 0.0);
}

TEST(TransferGp, EmptySourceDegradesToPlainGp) {
  const auto tgt = sample_task(f_target, 10, 41);
  auto tgp = make_tgp();
  tgp.fit({}, {}, tgt.xs, tgt.ys);
  for (std::size_t i = 0; i < tgt.xs.size(); ++i) {
    EXPECT_NEAR(tgp.predict(tgt.xs[i]).mean, tgt.ys[i], 0.15);
  }
}

TEST(TransferGp, AddTargetObservationRefines) {
  const auto src = sample_task(f_source, 20, 51);
  const auto tgt = sample_task(f_target, 3, 52);
  auto tgp = make_tgp();
  tgp.fit(src.xs, src.ys, tgt.xs, tgt.ys);
  const auto before = tgp.predict({0.5});
  tgp.add_target_observation({0.5}, f_target(0.5));
  const auto after = tgp.predict({0.5});
  EXPECT_LT(after.variance, before.variance + 1e-12);
  EXPECT_NEAR(after.mean, f_target(0.5), 0.1);
  EXPECT_EQ(tgp.num_target_points(), 4u);
}

TEST(TransferGp, PredictBatchMatchesSingle) {
  const auto src = sample_task(f_source, 15, 61);
  const auto tgt = sample_task(f_target, 5, 62);
  auto tgp = make_tgp();
  tgp.fit(src.xs, src.ys, tgt.xs, tgt.ys);
  const std::vector<linalg::Vector> queries = {{0.11}, {0.42}, {0.83}};
  linalg::Vector means, vars;
  tgp.predict_batch(queries, means, vars);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto p = tgp.predict(queries[i]);
    EXPECT_NEAR(means[i], p.mean, 1e-10);
    EXPECT_NEAR(vars[i], p.variance, 1e-10);
  }
}

TEST(TransferGp, RequiresTargetData) {
  auto tgp = make_tgp();
  const auto src = sample_task(f_source, 5, 71);
  EXPECT_THROW(tgp.fit(src.xs, src.ys, {}, {}), std::invalid_argument);
  EXPECT_THROW(tgp.predict({0.5}), std::runtime_error);
}

TEST(TransferGp, JointLikelihoodFiniteAndImproves) {
  const auto src = sample_task(f_source, 20, 81);
  const auto tgt = sample_task(f_target, 8, 82);
  auto tgp = make_tgp(3.0);  // mis-specified start
  tgp.fit(src.xs, src.ys, tgt.xs, tgt.ys);
  const double before = tgp.log_marginal_likelihood();
  EXPECT_TRUE(std::isfinite(before));
  common::Rng rng(83);
  tgp.optimize_hyperparameters(rng);
  EXPECT_GE(tgp.log_marginal_likelihood(), before - 1e-9);
}

TEST(TransferGp, MixedKernelJointRefitCacheParityBitwise) {
  // Joint-likelihood refit with the mixed kernel through the pairwise-stats
  // cache vs the direct path: fitted hyper-parameters and the task
  // correlation must be bit-identical (same RNG, same subsets).
  auto make = [] {
    return TransferGaussianProcess(std::make_unique<MixedSpaceKernel>(
        std::vector<std::uint8_t>{0, 1}));
  };
  common::Rng data(31);
  std::vector<linalg::Vector> sxs, txs;
  linalg::Vector sys, tys;
  for (int i = 0; i < 24; ++i) {
    linalg::Vector x(2);
    x[0] = data.uniform01();
    x[1] = (data.uniform01() < 0.5) ? 0.25 : 0.75;
    const double y = std::sin(5.0 * x[0]) + (x[1] < 0.5 ? 0.2 : -0.2);
    if (i < 16) {
      sxs.push_back(x);
      sys.push_back(y);
    } else {
      txs.push_back(x);
      tys.push_back(y + 0.1 * x[0]);
    }
  }
  TransferFitOptions cached;
  cached.use_distance_cache = true;
  TransferFitOptions direct;
  direct.use_distance_cache = false;

  auto a = make();
  a.fit(sxs, sys, txs, tys);
  {
    common::Rng rng(7);
    a.optimize_hyperparameters(rng, cached);
  }
  auto b = make();
  b.fit(sxs, sys, txs, tys);
  {
    common::Rng rng(7);
    b.optimize_hyperparameters(rng, direct);
  }
  const auto ha = a.kernel().hyperparameters();
  const auto hb = b.kernel().hyperparameters();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i], hb[i]) << i;
  EXPECT_EQ(a.task_correlation(), b.task_correlation());
}

}  // namespace
}  // namespace ppat::gp
