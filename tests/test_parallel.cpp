#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "synthetic_benchmark.hpp"
#include "tuner/ppatuner.hpp"

namespace ppat::common {
namespace {

// Tests share one process-wide pool; always hand it back single-threaded so
// unrelated tests are not affected by a resize.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_global_thread_count(1); }
};

TEST_F(ParallelTest, ParallelForCoversEveryIndexExactlyOnce) {
  set_global_thread_count(4);
  ASSERT_EQ(global_thread_count(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, ParallelForBlocksPartitionIsExact) {
  set_global_thread_count(3);
  std::atomic<long> total{0};
  parallel_for_blocks(
      5, 105,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        long s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += static_cast<long>(i);
        total.fetch_add(s);
      },
      8);
  long expect = 0;
  for (long i = 5; i < 105; ++i) expect += i;
  EXPECT_EQ(total.load(), expect);
}

TEST_F(ParallelTest, ParallelForPropagatesExceptions) {
  set_global_thread_count(4);
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must remain usable after a throwing run.
  std::atomic<int> ok{0};
  parallel_for(0, 10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST_F(ParallelTest, TaskGroupPropagatesFirstException) {
  set_global_thread_count(4);
  TaskGroup group;
  std::atomic<int> done{0};
  group.run([&] { done.fetch_add(1); });
  group.run([] { throw std::logic_error("task failed"); });
  group.run([&] { done.fetch_add(1); });
  EXPECT_THROW(group.wait(), std::logic_error);
  EXPECT_EQ(done.load(), 2);
}

TEST_F(ParallelTest, NestedParallelWorkRunsInlineWithoutDeadlock) {
  set_global_thread_count(4);
  std::atomic<int> total{0};
  TaskGroup group;
  for (int t = 0; t < 4; ++t) {
    group.run([&total] {
      // A pool task issuing its own parallel_for must not re-enter the
      // queue (deadlock risk with all workers busy); it runs inline.
      parallel_for(0, 100, [&total](std::size_t) { total.fetch_add(1); });
    });
  }
  group.wait();
  EXPECT_EQ(total.load(), 400);
}

TEST_F(ParallelTest, SingleThreadRunsInlineInOrder) {
  set_global_thread_count(1);
  std::vector<std::size_t> order;
  // No pool threads exist, so unsynchronized appends are safe iff the work
  // really runs inline — and in ascending order.
  parallel_for(0, 50, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);

  std::vector<int> sequence;
  TaskGroup group;
  for (int t = 0; t < 5; ++t) {
    group.run([&sequence, t] { sequence.push_back(t); });
  }
  group.wait();
  EXPECT_EQ(sequence, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(ParallelTest, EmptyRangeAndEmptyGroupAreNoOps) {
  set_global_thread_count(4);
  parallel_for(10, 10, [](std::size_t) { FAIL() << "must not run"; });
  TaskGroup group;
  group.wait();  // nothing scheduled
}

TEST_F(ParallelTest, ScopedPoolRedirectsParallelWorkOnThisThread) {
  set_global_thread_count(1);
  ASSERT_EQ(&current_thread_pool(), &global_thread_pool());
  ThreadPool session_pool(3);
  {
    ScopedPool scope(&session_pool);
    EXPECT_EQ(&current_thread_pool(), &session_pool);
    // Work routed through the override must still cover the range exactly.
    std::vector<std::atomic<int>> hits(500);
    parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
    {
      ScopedPool inner(nullptr);  // nested scope: back to the singleton
      EXPECT_EQ(&current_thread_pool(), &global_thread_pool());
    }
    EXPECT_EQ(&current_thread_pool(), &session_pool);
  }
  EXPECT_EQ(&current_thread_pool(), &global_thread_pool());
}

TEST_F(ParallelTest, ScopedPoolIsThreadLocalAcrossConcurrentSessions) {
  set_global_thread_count(1);
  ThreadPool pool_a(2);
  ThreadPool pool_b(2);
  // Two "session threads" install different pools concurrently; neither
  // must observe the other's override.
  std::atomic<bool> a_ok{false}, b_ok{false};
  std::thread ta([&] {
    ScopedPool scope(&pool_a);
    a_ok = &current_thread_pool() == &pool_a;
  });
  std::thread tb([&] {
    ScopedPool scope(&pool_b);
    b_ok = &current_thread_pool() == &pool_b;
  });
  ta.join();
  tb.join();
  EXPECT_TRUE(a_ok.load());
  EXPECT_TRUE(b_ok.load());
  EXPECT_EQ(&current_thread_pool(), &global_thread_pool());
}

TEST_F(ParallelTest, CrossPoolNestedWorkRunsInlineUnderSaturation) {
  // Satellite regression (reentrancy fix): a worker of pool A reaching a
  // parallel_for while pool B is saturated — or targeting its own saturated
  // pool — must fall back to inline execution (ThreadPool::in_worker), not
  // block on a queue that can never drain. Before the fix this deadlocked
  // under multi-session contention; with it, the test completes.
  set_global_thread_count(2);
  ThreadPool session_pool(2);
  std::atomic<int> total{0};
  TaskGroup outer(&session_pool);
  for (int t = 0; t < 8; ++t) {  // 4x oversubscribed: the pool IS saturated
    outer.run([&total] {
      EXPECT_TRUE(ThreadPool::in_worker());
      // Nested constructs from a worker: both the element-wise and the
      // grouped form, targeting the global pool (a DIFFERENT pool than the
      // one this worker belongs to).
      parallel_for(0, 50, [&total](std::size_t) { total.fetch_add(1); });
      TaskGroup inner;
      for (int k = 0; k < 3; ++k) {
        inner.run([&total] { total.fetch_add(1); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(total.load(), 8 * (50 + 3));
}

}  // namespace
}  // namespace ppat::common

namespace ppat::tuner {
namespace {

// The acceptance property for the threaded tuner: thread count is invisible
// in the results. Randomness is drawn serially in prepare_refit and all
// parallel partitions are bit-stable, so any num_threads must reproduce the
// single-threaded run exactly.
TEST(PpaTunerThreading, ThreadCountDoesNotChangeResults) {
  const flow::BenchmarkSet source =
      testing::synthetic_benchmark("src", 150, 11, 0.15);
  const flow::BenchmarkSet target =
      testing::synthetic_benchmark("tgt", 200, 12, 0.0);
  const SourceData source_data =
      SourceData::from_benchmark(source, kPowerDelay, 100, 5);

  PPATunerOptions serial;
  serial.seed = 21;
  serial.max_runs = 40;
  serial.num_threads = 1;
  PPATunerOptions threaded = serial;
  threaded.num_threads = 4;

  BenchmarkCandidatePool pool_serial(&target, kPowerDelay);
  BenchmarkCandidatePool pool_threaded(&target, kPowerDelay);
  const auto rs = run_ppatuner(
      pool_serial, make_transfer_gp_factory(source_data), serial);
  const auto rt = run_ppatuner(
      pool_threaded, make_transfer_gp_factory(source_data), threaded);
  common::set_global_thread_count(1);

  EXPECT_EQ(rs.pareto_indices, rt.pareto_indices);
  EXPECT_EQ(rs.tool_runs, rt.tool_runs);
}

TEST(PpaTunerThreading, PlainGpThreadCountDoesNotChangeResults) {
  const flow::BenchmarkSet target =
      testing::synthetic_benchmark("tgt", 160, 13, 0.0);

  PPATunerOptions serial;
  serial.seed = 22;
  serial.max_runs = 30;
  serial.num_threads = 1;
  PPATunerOptions threaded = serial;
  threaded.num_threads = 3;

  BenchmarkCandidatePool pool_serial(&target, kPowerDelay);
  BenchmarkCandidatePool pool_threaded(&target, kPowerDelay);
  const auto rs = run_ppatuner(pool_serial, make_plain_gp_factory(), serial);
  const auto rt = run_ppatuner(pool_threaded, make_plain_gp_factory(),
                               threaded);
  common::set_global_thread_count(1);

  EXPECT_EQ(rs.pareto_indices, rt.pareto_indices);
  EXPECT_EQ(rs.tool_runs, rt.tool_runs);
}

}  // namespace
}  // namespace ppat::tuner
