#include "gp/gp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ppat::gp {
namespace {

GaussianProcess make_gp(double lengthscale = 0.3, double noise = 1e-6) {
  return GaussianProcess(
      std::make_unique<SquaredExponentialKernel>(lengthscale, 1.0), noise);
}

std::vector<linalg::Vector> grid_1d(std::size_t n) {
  std::vector<linalg::Vector> xs;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back({static_cast<double>(i) / static_cast<double>(n - 1)});
  }
  return xs;
}

TEST(GaussianProcess, InterpolatesNoiselessData) {
  auto gp = make_gp();
  const auto xs = grid_1d(8);
  linalg::Vector ys;
  for (const auto& x : xs) ys.push_back(std::sin(6.0 * x[0]));
  gp.fit(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto p = gp.predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 1e-3);
    EXPECT_LT(p.variance, 1e-3);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  auto gp = make_gp(0.2);
  gp.fit({{0.0}, {0.2}}, {1.0, 2.0});
  const auto near = gp.predict({0.1});
  const auto far = gp.predict({0.9});
  EXPECT_LT(near.variance, far.variance);
}

TEST(GaussianProcess, PredictionBetweenPointsIsReasonable) {
  auto gp = make_gp(0.5);
  gp.fit({{0.0}, {1.0}}, {0.0, 10.0});
  const auto mid = gp.predict({0.5});
  EXPECT_GT(mid.mean, 2.0);
  EXPECT_LT(mid.mean, 8.0);
}

TEST(GaussianProcess, StandardizationHandlesLargeScales) {
  // Same shape, QoR-like magnitudes (areas in 1e5 um^2).
  auto gp = make_gp();
  const auto xs = grid_1d(6);
  linalg::Vector ys;
  for (const auto& x : xs) ys.push_back(3.0e5 + 2.0e4 * std::sin(4.0 * x[0]));
  gp.fit(xs, ys);
  const auto p = gp.predict(xs[2]);
  EXPECT_NEAR(p.mean, ys[2], 1e3);
}

TEST(GaussianProcess, AddObservationRefinesPrediction) {
  auto gp = make_gp(0.3);
  gp.fit({{0.0}, {1.0}}, {0.0, 0.0});
  const auto before = gp.predict({0.5});
  gp.add_observation({0.5}, 5.0);
  const auto after = gp.predict({0.5});
  EXPECT_NEAR(after.mean, 5.0, 0.5);
  EXPECT_LT(after.variance, before.variance);
  EXPECT_EQ(gp.num_points(), 3u);
}

TEST(GaussianProcess, PredictBatchMatchesSingle) {
  auto gp = make_gp();
  const auto xs = grid_1d(7);
  linalg::Vector ys;
  for (const auto& x : xs) ys.push_back(x[0] * x[0]);
  gp.fit(xs, ys);
  const std::vector<linalg::Vector> queries = {{0.05}, {0.33}, {0.77}};
  linalg::Vector means, vars;
  gp.predict_batch(queries, means, vars);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto p = gp.predict(queries[i]);
    EXPECT_NEAR(means[i], p.mean, 1e-10);
    EXPECT_NEAR(vars[i], p.variance, 1e-10);
  }
}

TEST(GaussianProcess, PredictBatchNoiseOption) {
  auto gp = make_gp(0.3, 1e-2);
  gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
  linalg::Vector m1, v1, m2, v2;
  gp.predict_batch({{0.5}}, m1, v1, false);
  gp.predict_batch({{0.5}}, m2, v2, true);
  EXPECT_GT(v2[0], v1[0]);
}

TEST(GaussianProcess, HyperparameterFitImprovesLikelihood) {
  common::Rng rng(5);
  // Data from a known smooth function, deliberately mis-specified initial
  // lengthscale.
  auto gp = make_gp(5.0, 1e-2);
  std::vector<linalg::Vector> xs;
  linalg::Vector ys;
  for (int i = 0; i < 25; ++i) {
    const double x = rng.uniform01();
    xs.push_back({x});
    ys.push_back(std::sin(8.0 * x));
  }
  gp.fit(xs, ys);
  const double before = gp.log_marginal_likelihood();
  gp.optimize_hyperparameters(rng);
  const double after = gp.log_marginal_likelihood();
  EXPECT_GE(after, before - 1e-9);
}

TEST(GaussianProcess, MixedKernelRefitCacheParityBitwise) {
  // The mixed kernel now rides the pairwise-stats cache on the refit hot
  // path; cache on vs off must produce bit-identical fitted
  // hyper-parameters (same RNG seed, same subset, same winner scan).
  auto make = [] {
    return GaussianProcess(
        std::make_unique<MixedSpaceKernel>(std::vector<std::uint8_t>{0, 1, 0}),
        1e-4);
  };
  common::Rng data(17);
  std::vector<linalg::Vector> xs;
  linalg::Vector ys;
  for (int i = 0; i < 40; ++i) {
    linalg::Vector x(3);
    x[0] = data.uniform01();
    x[1] = (data.uniform01() < 0.5) ? 0.25 : 0.75;
    x[2] = data.uniform01();
    xs.push_back(x);
    ys.push_back(std::sin(4.0 * x[0]) + (x[1] < 0.5 ? 0.3 : -0.3) +
                 0.2 * x[2]);
  }
  FitOptions cached;
  cached.use_distance_cache = true;
  FitOptions direct;
  direct.use_distance_cache = false;

  auto a = make();
  a.fit(xs, ys);
  {
    common::Rng rng(9);
    a.optimize_hyperparameters(rng, cached);
  }
  auto b = make();
  b.fit(xs, ys);
  {
    common::Rng rng(9);
    b.optimize_hyperparameters(rng, direct);
  }
  const auto ha = a.kernel().hyperparameters();
  const auto hb = b.kernel().hyperparameters();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i], hb[i]) << i;
  EXPECT_EQ(a.noise_variance(), b.noise_variance());
}

TEST(GaussianProcess, SerialRestartFallbackIsBitIdentical) {
  // parallel_restart_min_points only changes scheduling: forcing the
  // parallel path on a small subset must match the (default) serial
  // fallback bit for bit.
  common::Rng data(23);
  std::vector<linalg::Vector> xs;
  linalg::Vector ys;
  for (int i = 0; i < 30; ++i) {
    const double x = data.uniform01();
    xs.push_back({x});
    ys.push_back(std::sin(8.0 * x));
  }
  FitOptions always_parallel;
  always_parallel.parallel_restart_min_points = 0;
  FitOptions gated;  // default threshold: 30 points -> serial

  auto a = make_gp(5.0, 1e-2);
  a.fit(xs, ys);
  {
    common::Rng rng(3);
    a.optimize_hyperparameters(rng, always_parallel);
  }
  auto b = make_gp(5.0, 1e-2);
  b.fit(xs, ys);
  {
    common::Rng rng(3);
    b.optimize_hyperparameters(rng, gated);
  }
  const auto ha = a.kernel().hyperparameters();
  const auto hb = b.kernel().hyperparameters();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i], hb[i]) << i;
  EXPECT_EQ(a.noise_variance(), b.noise_variance());
}

TEST(GaussianProcess, FitRejectsBadInput) {
  auto gp = make_gp();
  EXPECT_THROW(gp.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(gp.fit({{0.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(gp.predict({0.0}), std::runtime_error);
}

TEST(GaussianProcess, ConstructorValidates) {
  EXPECT_THROW(GaussianProcess(nullptr), std::invalid_argument);
  EXPECT_THROW(
      GaussianProcess(std::make_unique<SquaredExponentialKernel>(), 0.0),
      std::invalid_argument);
}

TEST(GaussianProcess, DuplicateInputsHandledByJitter) {
  auto gp = make_gp(0.3, 1e-8);
  // Exactly coincident inputs make the kernel matrix singular; jitter must
  // rescue the factorization.
  gp.fit({{0.5}, {0.5}, {0.5}}, {1.0, 1.0, 1.0});
  const auto p = gp.predict({0.5});
  EXPECT_NEAR(p.mean, 1.0, 1e-2);
}

}  // namespace
}  // namespace ppat::gp
