#include "sta/sta.hpp"

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"

namespace ppat::sta {
namespace {

using netlist::CellFunction;
using netlist::CellLibrary;
using netlist::InstanceId;
using netlist::Netlist;
using netlist::NetId;

class StaTest : public ::testing::Test {
 protected:
  StaTest() : lib_(CellLibrary::make_default()), nl_(&lib_) {}

  /// Chain of `n` inverters from a fresh PI; returns the final net.
  NetId build_inverter_chain(std::size_t n) {
    NetId net = nl_.add_primary_input();
    for (std::size_t i = 0; i < n; ++i) {
      net = nl_.instance(nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                          {net}))
                .fanout;
    }
    nl_.mark_primary_output(net);
    return net;
  }

  WireParasitics zero_wires() {
    WireParasitics p;
    p.res_kohm.assign(nl_.num_nets(), 0.0);
    p.cap_ff.assign(nl_.num_nets(), 0.0);
    return p;
  }

  CellLibrary lib_;
  Netlist nl_;
};

TEST_F(StaTest, ExtractParasiticsScalesWithLengthAndRcFactor) {
  Netlist nl(&lib_);
  nl.add_primary_input();
  std::vector<double> hpwl = {100.0};
  const auto p1 = extract_parasitics(nl, hpwl, 1.0);
  const auto p2 = extract_parasitics(nl, hpwl, 1.3);
  EXPECT_NEAR(p1.res_kohm[0], kWireResKohmPerUm * 100.0, 1e-12);
  EXPECT_NEAR(p1.cap_ff[0], kWireCapFfPerUm * 100.0, 1e-12);
  EXPECT_NEAR(p2.res_kohm[0], p1.res_kohm[0] * 1.3, 1e-12);
  EXPECT_NEAR(p2.cap_ff[0], p1.cap_ff[0] * 1.3, 1e-12);
}

TEST_F(StaTest, ArrivalGrowsAlongChain) {
  const NetId out = build_inverter_chain(10);
  const auto par = zero_wires();
  TimingOptions opt;
  const auto report = run_sta(nl_, par, opt);
  // Arrival at the output exceeds input delay by at least 10 intrinsic
  // delays.
  const double intrinsic =
      lib_.cell(lib_.find(CellFunction::kInv, 0)).intrinsic_delay_ns;
  EXPECT_GT(report.arrival_ns[out], opt.input_delay_ns + 10 * intrinsic);
  EXPECT_EQ(report.critical_delay_ns, report.arrival_ns[out]);
}

TEST_F(StaTest, LongerChainIsSlower) {
  const NetId short_out = build_inverter_chain(5);
  const NetId long_out = build_inverter_chain(20);
  const auto report = run_sta(nl_, zero_wires(), TimingOptions{});
  EXPECT_GT(report.arrival_ns[long_out], report.arrival_ns[short_out]);
}

TEST_F(StaTest, LoadIncreasesDelayAndSlew) {
  // One inverter driving 1 sink vs an identical one driving 8 sinks.
  const NetId a = nl_.add_primary_input();
  const InstanceId light =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  const InstanceId heavy =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                   {nl_.instance(light).fanout});
  for (int i = 0; i < 8; ++i) {
    nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                     {nl_.instance(heavy).fanout});
  }
  const auto report = run_sta(nl_, zero_wires(), TimingOptions{});
  EXPECT_GT(report.arrival_ns[nl_.instance(heavy).fanout],
            report.arrival_ns[nl_.instance(light).fanout]);
  EXPECT_GT(report.slew_ns[nl_.instance(heavy).fanout],
            report.slew_ns[nl_.instance(light).fanout]);
}

TEST_F(StaTest, StrongerDriverIsFaster) {
  const NetId a = nl_.add_primary_input();
  const InstanceId weak =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  const InstanceId strong =
      nl_.add_instance(lib_.find(CellFunction::kInv, 2), {a});
  for (int i = 0; i < 6; ++i) {
    nl_.add_instance(lib_.find(CellFunction::kBuf, 0),
                     {nl_.instance(weak).fanout});
    nl_.add_instance(lib_.find(CellFunction::kBuf, 0),
                     {nl_.instance(strong).fanout});
  }
  const auto report = run_sta(nl_, zero_wires(), TimingOptions{});
  EXPECT_LT(report.arrival_ns[nl_.instance(strong).fanout],
            report.arrival_ns[nl_.instance(weak).fanout]);
}

TEST_F(StaTest, WnsReflectsClockPeriod) {
  build_inverter_chain(10);
  TimingOptions fast;
  fast.clock_period_ns = 0.05;  // impossible
  TimingOptions slow;
  slow.clock_period_ns = 100.0;  // trivially met
  const auto r_fast = run_sta(nl_, zero_wires(), fast);
  const auto r_slow = run_sta(nl_, zero_wires(), slow);
  EXPECT_LT(r_fast.wns_ns, 0.0);
  EXPECT_GT(r_fast.violating_endpoints, 0u);
  EXPECT_GT(r_slow.wns_ns, 0.0);
  EXPECT_EQ(r_slow.violating_endpoints, 0u);
  EXPECT_LE(r_fast.tns_ns, 0.0);
  EXPECT_DOUBLE_EQ(r_slow.tns_ns, 0.0);
}

TEST_F(StaTest, UncertaintyTightensRequiredTime) {
  // Endpoint at a flip-flop: required = period - setup - uncertainty.
  const NetId a = nl_.add_primary_input();
  const InstanceId inv =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  nl_.add_instance(lib_.find(CellFunction::kDff, 0),
                   {nl_.instance(inv).fanout});
  TimingOptions small_u;
  small_u.clock_uncertainty_ns = 0.0;
  TimingOptions big_u;
  big_u.clock_uncertainty_ns = 0.2;
  const auto r_small = run_sta(nl_, zero_wires(), small_u);
  const auto r_big = run_sta(nl_, zero_wires(), big_u);
  EXPECT_NEAR(r_small.wns_ns - r_big.wns_ns, 0.2, 1e-9);
}

TEST_F(StaTest, FlipFlopsLaunchFreshPaths) {
  // PI -> 10 inv -> DFF -> 2 inv -> PO: the post-FF path is short, so its
  // endpoint arrival is clk_to_q + 2 gate delays, independent of the long
  // pre-FF cone.
  NetId net = nl_.add_primary_input();
  for (int i = 0; i < 10; ++i) {
    net = nl_.instance(nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                        {net}))
              .fanout;
  }
  const InstanceId ff =
      nl_.add_instance(lib_.find(CellFunction::kDff, 0), {net});
  NetId post = nl_.instance(ff).fanout;
  for (int i = 0; i < 2; ++i) {
    post = nl_.instance(nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                         {post}))
               .fanout;
  }
  nl_.mark_primary_output(post);
  TimingOptions opt;
  const auto report = run_sta(nl_, zero_wires(), opt);
  EXPECT_LT(report.arrival_ns[post], report.arrival_ns[net]);
  EXPECT_GT(report.arrival_ns[post], opt.clk_to_q_ns);
}

TEST_F(StaTest, WireRcAddsDelay) {
  const NetId out = build_inverter_chain(5);
  WireParasitics wires = zero_wires();
  const auto base = run_sta(nl_, wires, TimingOptions{});
  for (auto& r : wires.res_kohm) r = 0.5;
  for (auto& c : wires.cap_ff) c = 20.0;
  const auto loaded = run_sta(nl_, wires, TimingOptions{});
  EXPECT_GT(loaded.arrival_ns[out], base.arrival_ns[out]);
}

TEST_F(StaTest, NetLoadSumsWireAndPins) {
  const NetId a = nl_.add_primary_input();
  const InstanceId inv =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  nl_.add_instance(lib_.find(CellFunction::kInv, 1),
                   {nl_.instance(inv).fanout});
  WireParasitics wires = zero_wires();
  wires.cap_ff[nl_.instance(inv).fanout] = 7.0;
  const double expected =
      7.0 + lib_.cell(lib_.find(CellFunction::kInv, 1)).input_cap_ff;
  EXPECT_NEAR(net_load_ff(nl_, wires, nl_.instance(inv).fanout), expected,
              1e-12);
}

}  // namespace
}  // namespace ppat::sta
