// Distributed oracle fleet: coordinator/worker semantics.
//
// Workers here are in-process THREADS running the real run_worker_loop
// against the coordinator's Unix socket — the same code path as the
// ppatuner_worker binary, minus the process boundary — so these tests pin
// the protocol, the work-stealing dispatch, retry behavior, license
// leasing, the exactly-once ledger, and bitwise fingerprint parity with the
// in-process EvalService. Process-kill scenarios live in test_dist_crash.
// Suite names contain "Distributed" on purpose: the TSan CI job selects on
// it.
//
// Lifetime rule used throughout: the coordinator is held in a unique_ptr
// and reset() BEFORE the test scope unwinds, so worker loops see EOF and
// exit before the WorkerThread destructors join them.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <thread>

#include "dist/coordinator.hpp"
#include "dist/oracles.hpp"
#include "dist/worker.hpp"
#include "flow/eval_service.hpp"
#include "journal/reveal_ledger.hpp"
#include "server/wire.hpp"
#include "tuner/live_pool.hpp"

using namespace ppat;

namespace {

using Coord = std::unique_ptr<dist::DistributedEvalService>;

Coord make_coord(const flow::ParameterSpace& space,
                 dist::DistributedOptions dopt) {
  return std::make_unique<dist::DistributedEvalService>(space,
                                                        std::move(dopt));
}

std::string tmp_socket(const std::string& tag) {
  static std::atomic<int> counter{0};
  return std::string(::testing::TempDir()) + "dist_" + tag + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Batch of distinct unit-cube candidates for a dim-3 space.
std::vector<flow::Config> make_batch(const flow::ParameterSpace& space,
                                     std::size_t n, std::uint64_t seed) {
  std::vector<flow::Config> configs;
  configs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Vector u(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      // Deterministic, distinct fill; the exact values are irrelevant.
      u[d] = std::fmod(0.37 + 0.61 * static_cast<double>(i * 3 + d) +
                           1e-3 * static_cast<double>(seed % 97),
                       1.0);
    }
    configs.push_back(space.decode(u));
  }
  return configs;
}

/// In-process worker thread: connect, serve, record the loop's exit code.
class WorkerThread {
 public:
  WorkerThread(const std::string& socket, std::uint64_t seed,
               dist::WorkerLoopOptions opts = {})
      : oracle_(seed),
        space_(dist::unit_cube_space(3)),
        thread_([this, socket, opts] {
          const int fd = dist::connect_worker(socket);
          rc_ = fd < 0 ? -1 : dist::run_worker_loop(fd, oracle_, space_, opts);
        }) {}
  ~WorkerThread() { join(); }

  void join() {
    if (thread_.joinable()) thread_.join();
  }
  int rc() const { return rc_; }

 private:
  dist::SyntheticOracle oracle_;
  flow::ParameterSpace space_;
  int rc_ = -100;
  std::thread thread_;
};

/// Fingerprint over the determinism-relevant record fields (status,
/// attempts, QoR bit patterns; elapsed_ms is wall clock and excluded, as
/// everywhere else in this codebase).
std::uint64_t fingerprint(const std::vector<flow::RunRecord>& records) {
  std::uint64_t h = 0x46505249ull;
  for (const flow::RunRecord& r : records) {
    h = journal::mix_hash(h, static_cast<std::uint64_t>(r.status));
    h = journal::mix_hash(h, r.attempts);
    if (r.ok()) {
      const double qor[3] = {r.qor.area_um2, r.qor.power_mw, r.qor.delay_ns};
      h = journal::hash_doubles(h, qor);
    }
  }
  return h;
}

}  // namespace

TEST(Distributed, SingleWorkerMatchesEvalServiceBitwise) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 12, 7);

  dist::SyntheticOracle reference(7);
  flow::EvalService local(reference, space);
  const auto expect = local.evaluate_batch(configs);

  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("parity1");
  Coord coord = make_coord(space, dopt);
  WorkerThread worker(dopt.socket_path, 7);
  ASSERT_TRUE(coord->wait_for_workers(1, std::chrono::seconds(5)));
  const auto got = coord->evaluate_batch(configs);
  const auto stats = coord->stats();
  coord.reset();

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status, expect[i].status) << i;
    EXPECT_EQ(got[i].attempts, expect[i].attempts) << i;
    // Bitwise: the QoR doubles crossed the wire as raw bit patterns.
    EXPECT_EQ(got[i].qor.area_um2, expect[i].qor.area_um2) << i;
    EXPECT_EQ(got[i].qor.power_mw, expect[i].qor.power_mw) << i;
    EXPECT_EQ(got[i].qor.delay_ns, expect[i].qor.delay_ns) << i;
  }
  EXPECT_EQ(fingerprint(got), fingerprint(expect));
  EXPECT_EQ(stats.runs_ok, configs.size());
}

TEST(Distributed, FingerprintIdenticalAcrossWorkerCounts) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 16, 3);

  dist::SyntheticOracle reference(3);
  flow::EvalService local(reference, space);
  const std::uint64_t expect = fingerprint(local.evaluate_batch(configs));

  for (std::size_t workers : {1u, 2u, 4u}) {
    dist::DistributedOptions dopt;
    dopt.socket_path = tmp_socket("scale" + std::to_string(workers));
    Coord coord = make_coord(space, dopt);
    std::vector<std::unique_ptr<WorkerThread>> fleet;
    for (std::size_t w = 0; w < workers; ++w) {
      fleet.push_back(std::make_unique<WorkerThread>(dopt.socket_path, 3));
    }
    ASSERT_TRUE(coord->wait_for_workers(workers, std::chrono::seconds(5)));
    const auto got = coord->evaluate_batch(configs);
    coord.reset();
    EXPECT_EQ(fingerprint(got), expect) << workers << " workers";
  }
}

TEST(Distributed, StaleEpochWorkerIsRejectedThenGoodWorkerServes) {
  const auto space = dist::unit_cube_space(3);
  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("epoch");
  dopt.session_epoch = 5;
  Coord coord = make_coord(space, dopt);

  dist::WorkerLoopOptions stale;
  stale.session_epoch = 4;  // a previous coordinator incarnation
  WorkerThread old_worker(dopt.socket_path, 1, stale);
  // The rejection happens at the handshake; wait_for_workers pumps the
  // accept loop without the count ever reaching 1.
  EXPECT_FALSE(coord->wait_for_workers(1, std::chrono::milliseconds(400)));
  old_worker.join();
  EXPECT_EQ(old_worker.rc(), 2);
  EXPECT_EQ(coord->stats().workers_rejected, 1u);
  EXPECT_EQ(coord->worker_count(), 0u);

  dist::WorkerLoopOptions fresh;
  fresh.session_epoch = 5;
  WorkerThread good_worker(dopt.socket_path, 1, fresh);
  ASSERT_TRUE(coord->wait_for_workers(1, std::chrono::seconds(5)));
  const auto records = coord->evaluate_batch(make_batch(space, 4, 1));
  coord.reset();
  for (const auto& r : records) EXPECT_TRUE(r.ok());
}

TEST(Distributed, DimensionMismatchIsRejected) {
  const auto space = dist::unit_cube_space(5);  // coordinator expects dim 5
  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("dim");
  Coord coord = make_coord(space, dopt);
  WorkerThread worker(dopt.socket_path, 1);  // serves dim 3
  EXPECT_FALSE(coord->wait_for_workers(1, std::chrono::milliseconds(400)));
  worker.join();
  EXPECT_EQ(worker.rc(), 2);
  EXPECT_EQ(coord->stats().workers_rejected, 1u);
}

TEST(Distributed, FailedResultIsRetriedAndSucceeds) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 6, 9);

  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("flaky");
  Coord coord = make_coord(space, dopt);

  // A flaky tool: the very first evaluation fails, everything after
  // succeeds — the classic transient license/filesystem hiccup.
  dist::WorkerLoopOptions flaky;
  std::atomic<int> calls{0};
  flaky.on_eval = [&calls](std::uint64_t, std::uint32_t,
                           const flow::Config&) {
    if (calls.fetch_add(1) == 0) {
      throw flow::ToolRunError("transient tool hiccup");
    }
  };
  WorkerThread worker(dopt.socket_path, 9, flaky);
  ASSERT_TRUE(coord->wait_for_workers(1, std::chrono::seconds(5)));
  const auto records = coord->evaluate_batch(configs);
  const auto stats = coord->stats();
  coord.reset();

  std::size_t retried = 0;
  for (const auto& r : records) {
    EXPECT_TRUE(r.ok());
    if (r.attempts == 2) ++retried;
  }
  EXPECT_EQ(retried, 1u);
  EXPECT_EQ(stats.retries, 1u);

  // QoR parity holds regardless of which attempt produced the value: the
  // oracle is deterministic in the configuration.
  dist::SyntheticOracle reference(9);
  flow::EvalService local(reference, space);
  const auto expect = local.evaluate_batch(configs);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].qor.area_um2, expect[i].qor.area_um2) << i;
    EXPECT_EQ(records[i].qor.power_mw, expect[i].qor.power_mw) << i;
    EXPECT_EQ(records[i].qor.delay_ns, expect[i].qor.delay_ns) << i;
  }
}

TEST(Distributed, WorkerDeathCostsExactlyOneRetry) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 6, 9);

  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("death");
  Coord coord = make_coord(space, dopt);

  // A raw-socket worker that handshakes, accepts exactly ONE job, and
  // vanishes without ever replying — a true worker death mid-run, not a
  // failed result.
  std::thread doomed([&] {
    namespace wire = server::wire;
    const int fd = dist::connect_worker(dopt.socket_path);
    if (fd < 0) return;
    try {
      wire::Writer hello;
      hello.u32(wire::kProtocolVersion);
      hello.u64(1);  // default session epoch
      hello.str("synthetic");
      hello.u64(space.size());
      wire::write_frame(fd, wire::MsgType::kWorkerHello, hello.take());
      (void)wire::read_frame(fd);  // ack
      (void)wire::read_frame(fd);  // first kEvalRequest: take it and die
    } catch (const server::wire::WireError&) {
    }
    ::close(fd);
  });

  WorkerThread healthy(dopt.socket_path, 9);
  ASSERT_TRUE(coord->wait_for_workers(2, std::chrono::seconds(5)));
  const auto records = coord->evaluate_batch(configs);
  const auto stats = coord->stats();
  const auto survivors = coord->worker_count();
  coord.reset();
  doomed.join();

  // The batch completed on the survivor; the killed job cost one retry.
  std::size_t retried = 0;
  for (const auto& r : records) {
    EXPECT_TRUE(r.ok());
    EXPECT_GE(r.attempts, 1u);
    if (r.attempts == 2) ++retried;
  }
  EXPECT_EQ(retried, 1u);
  EXPECT_EQ(stats.worker_deaths, 1u);
  EXPECT_EQ(survivors, 1u);

  dist::SyntheticOracle reference(9);
  flow::EvalService local(reference, space);
  const auto expect = local.evaluate_batch(configs);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].qor.area_um2, expect[i].qor.area_um2) << i;
    EXPECT_EQ(records[i].qor.power_mw, expect[i].qor.power_mw) << i;
    EXPECT_EQ(records[i].qor.delay_ns, expect[i].qor.delay_ns) << i;
  }
}

TEST(Distributed, PermanentFailureAfterMaxAttempts) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 3, 2);

  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("permfail");
  dopt.max_attempts = 2;
  Coord coord = make_coord(space, dopt);

  dist::WorkerLoopOptions always_fail;
  always_fail.on_eval = [](std::uint64_t, std::uint32_t,
                           const flow::Config&) {
    throw flow::ToolRunError("injected tool crash");
  };
  WorkerThread worker(dopt.socket_path, 2, always_fail);
  ASSERT_TRUE(coord->wait_for_workers(1, std::chrono::seconds(5)));
  const auto records = coord->evaluate_batch(configs);
  const auto stats = coord->stats();
  coord.reset();

  for (const auto& r : records) {
    EXPECT_EQ(r.status, flow::RunStatus::kFailed);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.error, "injected tool crash");
  }
  EXPECT_EQ(stats.runs_failed, configs.size());
  EXPECT_EQ(stats.retries, configs.size());
}

TEST(Distributed, LicenseBrokerBoundsInFlightRuns) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 10, 4);

  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("lease");
  dopt.license_broker = std::make_shared<flow::LicenseBroker>(2);
  dopt.session_tag = 11;
  Coord coord = make_coord(space, dopt);
  std::vector<std::unique_ptr<WorkerThread>> fleet;
  for (int w = 0; w < 4; ++w) {
    fleet.push_back(std::make_unique<WorkerThread>(dopt.socket_path, 4));
  }
  ASSERT_TRUE(coord->wait_for_workers(4, std::chrono::seconds(5)));
  const auto records = coord->evaluate_batch(configs);
  coord.reset();

  for (const auto& r : records) EXPECT_TRUE(r.ok());
  // Every lease came back, and the broker was exercised once per attempt.
  EXPECT_EQ(dopt.license_broker->available(), 2u);
  EXPECT_EQ(dopt.license_broker->total_grants(), configs.size());
}

TEST(Distributed, DeadlineExpiredWhileQueuedHasZeroAttempts) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 4, 5);

  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("deadline");
  dopt.run_deadline = std::chrono::milliseconds(60);
  dopt.poll_interval = std::chrono::milliseconds(10);
  Coord coord = make_coord(space, dopt);
  // No workers at all: the deadline (measured from batch submission) fires
  // long before the no-worker grace (left at its 10 s default).
  const auto records = coord->evaluate_batch(configs);
  for (const auto& r : records) {
    EXPECT_EQ(r.status, flow::RunStatus::kTimedOut);
    EXPECT_EQ(r.attempts, 0u);
    EXPECT_EQ(r.error, "deadline expired while queued");
  }
}

TEST(Distributed, NoWorkersGraceFailsTheBatch) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 2, 6);

  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("nogrfirst");
  dopt.no_worker_grace = std::chrono::milliseconds(100);
  dopt.poll_interval = std::chrono::milliseconds(10);
  Coord coord = make_coord(space, dopt);
  const auto records = coord->evaluate_batch(configs);
  for (const auto& r : records) {
    EXPECT_EQ(r.status, flow::RunStatus::kFailed);
    EXPECT_EQ(r.error, "no workers available");
  }
}

TEST(Distributed, LedgerResumeServesRecordedRevealsWithNoWorkers) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 8, 8);
  const std::string ledger = std::string(::testing::TempDir()) +
                             "ledger_resume_" + std::to_string(::getpid()) +
                             ".bin";
  std::filesystem::remove(ledger);

  std::uint64_t first_fp = 0;
  {
    dist::DistributedOptions dopt;
    dopt.socket_path = tmp_socket("ledger1");
    dopt.ledger_path = ledger;
    Coord coord = make_coord(space, dopt);
    WorkerThread worker(dopt.socket_path, 8);
    ASSERT_TRUE(coord->wait_for_workers(1, std::chrono::seconds(5)));
    first_fp = fingerprint(coord->evaluate_batch(configs));
    coord.reset();
  }

  // Second incarnation: same ledger, ZERO workers. Every outcome must come
  // from the ledger (exactly-once: nothing is re-dispatched), bitwise
  // equal to the first run.
  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("ledger2");
  dopt.ledger_path = ledger;
  dopt.no_worker_grace = std::chrono::milliseconds(200);
  Coord coord = make_coord(space, dopt);
  const auto replayed = coord->evaluate_batch(configs);
  EXPECT_EQ(fingerprint(replayed), first_fp);
  EXPECT_EQ(coord->stats().reveals_replayed, configs.size());
  EXPECT_EQ(coord->stats().attempts, 0u);
  std::filesystem::remove(ledger);
}

TEST(Distributed, LiveCandidatePoolRunsOverTheCoordinator) {
  const auto space = dist::unit_cube_space(3);
  const auto configs = make_batch(space, 10, 12);

  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("pool");
  Coord coord = make_coord(space, dopt);
  WorkerThread worker(dopt.socket_path, 12);
  ASSERT_TRUE(coord->wait_for_workers(1, std::chrono::seconds(5)));

  // The pool neither knows nor cares that reveals cross a process-style
  // boundary: BatchEvaluator is the whole contract.
  tuner::LiveCandidatePool pool(configs, {0, 1, 2}, *coord);
  const auto outcomes = pool.reveal_batch({0, 3, 7});
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok);
  EXPECT_EQ(pool.runs(), 3u);
  coord.reset();

  dist::SyntheticOracle reference(12);
  flow::EvalService local(reference, space);
  tuner::LiveCandidatePool ref_pool(configs, {0, 1, 2}, local);
  const auto ref = ref_pool.reveal_batch({0, 3, 7});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_EQ(outcomes[i].value.size(), ref[i].value.size());
    for (std::size_t k = 0; k < ref[i].value.size(); ++k) {
      EXPECT_EQ(outcomes[i].value[k], ref[i].value[k]);
    }
  }
}

TEST(Distributed, HeartbeatsKeepIdleWorkersAliveAcrossBatches) {
  const auto space = dist::unit_cube_space(3);
  dist::DistributedOptions dopt;
  dopt.socket_path = tmp_socket("hb");
  Coord coord = make_coord(space, dopt);
  dist::WorkerLoopOptions opts;
  opts.heartbeat_interval = std::chrono::milliseconds(20);
  WorkerThread worker(dopt.socket_path, 5, opts);
  ASSERT_TRUE(coord->wait_for_workers(1, std::chrono::seconds(5)));

  const auto first = coord->evaluate_batch(make_batch(space, 3, 5));
  for (const auto& r : first) EXPECT_TRUE(r.ok());
  // Idle gap long enough for several heartbeats; the pump processes them.
  ASSERT_FALSE(coord->wait_for_workers(2, std::chrono::milliseconds(150)));
  const auto second = coord->evaluate_batch(make_batch(space, 3, 50));
  for (const auto& r : second) EXPECT_TRUE(r.ok());
  EXPECT_GE(coord->stats().heartbeats, 1u);
  EXPECT_EQ(coord->worker_count(), 1u);
  coord.reset();
}

// ---- RevealLedger unit behavior -------------------------------------------

TEST(DistributedLedger, RoundTripAndReopen) {
  const std::string path = std::string(::testing::TempDir()) +
                           "ledger_unit_" + std::to_string(::getpid()) +
                           ".bin";
  std::filesystem::remove(path);
  {
    auto ledger = journal::RevealLedger::open(path);
    EXPECT_EQ(ledger->size(), 0u);
    journal::LedgerRecord rec;
    rec.digest = 42;
    rec.attempt = 1;
    rec.status = journal::RevealStatus::kOk;
    rec.attempts = 1;
    rec.elapsed_ms = 12.5;
    rec.values = {1.0, 2.0, 3.0};
    ledger->append(rec);
    rec.digest = 43;
    rec.status = journal::RevealStatus::kFailed;
    rec.values.clear();
    rec.error = "boom";
    ledger->append(rec);
  }
  auto ledger = journal::RevealLedger::open(path);
  EXPECT_FALSE(ledger->truncated());
  EXPECT_EQ(ledger->size(), 2u);
  EXPECT_EQ(ledger->loaded(), 2u);
  const auto* ok = ledger->find(42);
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->ok());
  ASSERT_EQ(ok->values.size(), 3u);
  EXPECT_EQ(ok->values[1], 2.0);
  EXPECT_EQ(ok->elapsed_ms, 12.5);
  const auto* failed = ledger->find(43);
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->error, "boom");
  EXPECT_EQ(ledger->find(44), nullptr);
  std::filesystem::remove(path);
}

TEST(DistributedLedger, TornTailIsTruncatedNotTrusted) {
  const std::string path = std::string(::testing::TempDir()) +
                           "ledger_torn_" + std::to_string(::getpid()) +
                           ".bin";
  std::filesystem::remove(path);
  {
    auto ledger = journal::RevealLedger::open(path);
    journal::LedgerRecord rec;
    rec.digest = 1;
    rec.status = journal::RevealStatus::kOk;
    rec.attempts = 1;
    rec.values = {9.0, 8.0, 7.0};
    ledger->append(rec);
    rec.digest = 2;
    ledger->append(rec);
  }
  // Tear the tail mid-record (drop the last 5 bytes), as a crash would.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 5);

  auto ledger = journal::RevealLedger::open(path);
  EXPECT_TRUE(ledger->truncated());
  EXPECT_EQ(ledger->size(), 1u);
  EXPECT_NE(ledger->find(1), nullptr);
  EXPECT_EQ(ledger->find(2), nullptr);

  // The torn bytes were physically removed: appending after the truncation
  // point and reopening yields a clean ledger.
  journal::LedgerRecord rec;
  rec.digest = 3;
  rec.status = journal::RevealStatus::kOk;
  rec.attempts = 1;
  rec.values = {1.0, 1.0, 1.0};
  ledger->append(rec);
  ledger.reset();
  auto reopened = journal::RevealLedger::open(path);
  EXPECT_FALSE(reopened->truncated());
  EXPECT_EQ(reopened->size(), 2u);
  EXPECT_NE(reopened->find(3), nullptr);
  std::filesystem::remove(path);
}

TEST(DistributedLedger, ConfigDigestIsContentKeyed) {
  const flow::Config a = {1.0, 2.0, 3.0};
  const flow::Config b = {1.0, 2.0, 3.0};
  const flow::Config c = {1.0, 2.0, 3.0000000001};
  EXPECT_EQ(dist::config_digest(a), dist::config_digest(b));
  EXPECT_NE(dist::config_digest(a), dist::config_digest(c));
  EXPECT_NE(dist::config_digest({1.0}), dist::config_digest({1.0, 0.0}));
}
