#include "flow/benchmark.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace ppat::flow {
namespace {

/// Cheap analytic oracle for benchmark-builder tests.
class StubOracle final : public QorOracle {
 public:
  QoR evaluate(const ParameterSpace& space, const Config& config) override {
    ++runs_;
    const auto u = space.encode(config);
    QoR q;
    q.area_um2 = 100.0 + 50.0 * u[0];
    q.power_mw = 10.0 + 5.0 * (1.0 - u[0]) + 2.0 * u[1];
    q.delay_ns = 1.0 + u[1];
    return q;
  }
  std::size_t run_count() const override { return runs_; }

 private:
  std::size_t runs_ = 0;
};

ParameterSpace stub_space() {
  return ParameterSpace({
      ParamSpec::real("alpha", 0.0, 10.0),
      ParamSpec::integer("beta", 1, 4),
  });
}

TEST(BenchmarkSpaces, MatchPaperTable1) {
  EXPECT_EQ(source1_space().size(), 12u);
  EXPECT_EQ(target1_space().size(), 12u);
  EXPECT_EQ(source2_space().size(), 9u);
  EXPECT_EQ(target2_space().size(), 9u);

  const auto t1 = target1_space();
  const auto freq = t1.spec(t1.index_of("freq"));
  EXPECT_DOUBLE_EQ(freq.min_value, 1000.0);
  EXPECT_DOUBLE_EQ(freq.max_value, 1300.0);
  const auto s1 = source1_space();
  const auto s1_freq = s1.spec(s1.index_of("freq"));
  EXPECT_DOUBLE_EQ(s1_freq.min_value, 950.0);
  EXPECT_DOUBLE_EQ(s1_freq.max_value, 1050.0);

  // Scenario-2 spaces have no freq but do have place_rcfactor.
  EXPECT_FALSE(source2_space().has("freq"));
  EXPECT_TRUE(source2_space().has("place_rcfactor"));
  const auto t2 = target2_space();
  const auto fanout = t2.spec(t2.index_of("max_fanout"));
  EXPECT_DOUBLE_EQ(fanout.min_value, 25.0);
  EXPECT_DOUBLE_EQ(fanout.max_value, 39.0);
}

TEST(BenchmarkBuilder, BuildsRequestedPoints) {
  StubOracle oracle;
  const auto space = stub_space();
  const auto set = build_benchmark("stub", space, 50, oracle, 123);
  EXPECT_EQ(set.size(), 50u);
  EXPECT_EQ(oracle.run_count(), 50u);
  for (const auto& c : set.configs) space.validate(c);
  for (const auto& q : set.qor) {
    EXPECT_GT(q.area_um2, 0.0);
  }
}

TEST(BenchmarkBuilder, DeterministicInSeed) {
  StubOracle o1, o2;
  const auto space = stub_space();
  const auto a = build_benchmark("a", space, 20, o1, 5);
  const auto b = build_benchmark("b", space, 20, o2, 5);
  EXPECT_EQ(a.configs, b.configs);
}

TEST(BenchmarkBuilder, EncodedConfigsAndColumns) {
  StubOracle oracle;
  const auto set = build_benchmark("stub", stub_space(), 10, oracle, 9);
  const auto enc = set.encoded_configs();
  ASSERT_EQ(enc.size(), 10u);
  for (const auto& u : enc) {
    for (double v : u) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
  const auto delays = set.metric_column(2);
  ASSERT_EQ(delays.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(delays[i], set.qor[i].delay_ns);
  }
}

TEST(BenchmarkCsv, RoundTripPreservesEverything) {
  StubOracle oracle;
  const auto space = stub_space();
  const auto set = build_benchmark("rt", space, 25, oracle, 77);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ppat_bench_rt.csv").string();
  save_benchmark_csv(path, set);
  const auto loaded = load_benchmark_csv(path, "rt", space);
  ASSERT_EQ(loaded.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = 0; j < space.size(); ++j) {
      EXPECT_NEAR(loaded.configs[i][j], set.configs[i][j], 1e-9);
    }
    EXPECT_NEAR(loaded.qor[i].area_um2, set.qor[i].area_um2, 1e-6);
    EXPECT_NEAR(loaded.qor[i].power_mw, set.qor[i].power_mw, 1e-9);
    EXPECT_NEAR(loaded.qor[i].delay_ns, set.qor[i].delay_ns, 1e-9);
  }
  std::filesystem::remove(path);
}

TEST(BenchmarkCsv, HeaderMismatchRejected) {
  StubOracle oracle;
  const auto set = build_benchmark("hm", stub_space(), 5, oracle, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ppat_bench_hm.csv").string();
  save_benchmark_csv(path, set);
  const ParameterSpace other({ParamSpec::real("different", 0, 1),
                              ParamSpec::integer("beta", 1, 4)});
  EXPECT_THROW(load_benchmark_csv(path, "hm", other), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(BenchmarkCache, BuildOrLoadUsesCache) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "ppat_cache_test").string();
  std::filesystem::remove_all(dir);
  std::size_t factory_calls = 0;
  auto factory = [&factory_calls]() -> std::unique_ptr<QorOracle> {
    ++factory_calls;
    return std::make_unique<StubOracle>();
  };
  const auto space = stub_space();
  const auto first = build_or_load(dir, "cached", space, 15, factory, 11);
  EXPECT_EQ(factory_calls, 1u);
  const auto second = build_or_load(dir, "cached", space, 15, factory, 11);
  EXPECT_EQ(factory_calls, 1u);  // served from cache
  EXPECT_EQ(second.size(), first.size());
  EXPECT_EQ(second.configs, first.configs);
  std::filesystem::remove_all(dir);
}

TEST(BenchmarkCache, WrongSizeCacheRebuilds) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "ppat_cache_test2").string();
  std::filesystem::remove_all(dir);
  std::size_t factory_calls = 0;
  auto factory = [&factory_calls]() -> std::unique_ptr<QorOracle> {
    ++factory_calls;
    return std::make_unique<StubOracle>();
  };
  const auto space = stub_space();
  build_or_load(dir, "c2", space, 10, factory, 1);
  const auto bigger = build_or_load(dir, "c2", space, 20, factory, 1);
  EXPECT_EQ(factory_calls, 2u);
  EXPECT_EQ(bigger.size(), 20u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ppat::flow
