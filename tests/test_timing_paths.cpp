#include <gtest/gtest.h>

#include "netlist/mac_generator.hpp"
#include "sta/sta.hpp"

namespace ppat::sta {
namespace {

using netlist::CellFunction;
using netlist::CellLibrary;
using netlist::InstanceId;
using netlist::Netlist;
using netlist::NetId;

class TimingPathsTest : public ::testing::Test {
 protected:
  TimingPathsTest() : lib_(CellLibrary::make_default()), nl_(&lib_) {}

  WireParasitics zero_wires() {
    WireParasitics p;
    p.res_kohm.assign(nl_.num_nets(), 0.0);
    p.cap_ff.assign(nl_.num_nets(), 0.0);
    return p;
  }

  CellLibrary lib_;
  Netlist nl_;
};

TEST_F(TimingPathsTest, TracesChainToLaunchPoint) {
  // PI -> 4 inverters -> PO: the worst (only) path lists all five nets.
  NetId net = nl_.add_primary_input();
  const NetId launch = net;
  for (int i = 0; i < 4; ++i) {
    net = nl_.instance(nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                        {net}))
              .fanout;
  }
  nl_.mark_primary_output(net);

  const auto wires = zero_wires();
  TimingOptions opt;
  const auto report = run_sta(nl_, wires, opt);
  const auto paths = worst_paths(nl_, wires, opt, report, 3);
  ASSERT_EQ(paths.size(), 1u);  // single endpoint
  const auto& p = paths[0];
  EXPECT_EQ(p.nets.size(), 5u);
  EXPECT_EQ(p.nets.front(), launch);
  EXPECT_EQ(p.nets.back(), net);
  EXPECT_FALSE(p.ends_at_flop);
  EXPECT_NEAR(p.arrival_ns, report.critical_delay_ns, 1e-12);
  // Arrivals are monotone along the reported path.
  for (std::size_t i = 1; i < p.nets.size(); ++i) {
    EXPECT_GE(report.arrival_ns[p.nets[i]], report.arrival_ns[p.nets[i - 1]]);
  }
}

TEST_F(TimingPathsTest, WorstPathComesFirst) {
  // Two cones of different depth ending at two POs.
  NetId a = nl_.add_primary_input();
  NetId deep = a;
  for (int i = 0; i < 8; ++i) {
    deep = nl_.instance(nl_.add_instance(lib_.find(CellFunction::kInv, 0),
                                         {deep}))
               .fanout;
  }
  NetId shallow = nl_.instance(nl_.add_instance(
                                   lib_.find(CellFunction::kInv, 0), {a}))
                      .fanout;
  nl_.mark_primary_output(deep);
  nl_.mark_primary_output(shallow);

  const auto wires = zero_wires();
  TimingOptions opt;
  const auto report = run_sta(nl_, wires, opt);
  const auto paths = worst_paths(nl_, wires, opt, report, 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_LE(paths[0].slack_ns, paths[1].slack_ns);
  EXPECT_EQ(paths[0].nets.back(), deep);
}

TEST_F(TimingPathsTest, PathsStopAtFlipFlops) {
  // PI -> inv -> DFF -> inv -> PO: the PO path launches at the FF, not the
  // PI.
  const NetId a = nl_.add_primary_input();
  const InstanceId g1 =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  const InstanceId ff = nl_.add_instance(lib_.find(CellFunction::kDff, 0),
                                         {nl_.instance(g1).fanout});
  const NetId q = nl_.instance(ff).fanout;
  const InstanceId g2 =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {q});
  const NetId out = nl_.instance(g2).fanout;
  nl_.mark_primary_output(out);

  const auto wires = zero_wires();
  TimingOptions opt;
  const auto report = run_sta(nl_, wires, opt);
  const auto paths = worst_paths(nl_, wires, opt, report, 10);
  // Endpoints: the FF's D pin and the PO.
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    if (p.ends_at_flop) {
      EXPECT_EQ(p.nets.front(), a);
    } else {
      EXPECT_EQ(p.nets.front(), q);  // launched at the flop output
      EXPECT_EQ(p.nets.back(), out);
    }
  }
}

TEST_F(TimingPathsTest, WorksOnFullMac) {
  netlist::MacConfig cfg;
  cfg.operand_bits = 6;
  cfg.lanes = 2;
  Netlist mac = netlist::generate_mac(lib_, cfg);
  WireParasitics wires;
  wires.res_kohm.assign(mac.num_nets(), 0.05);
  wires.cap_ff.assign(mac.num_nets(), 2.0);
  TimingOptions opt;
  const auto report = run_sta(mac, wires, opt);
  const auto paths = worst_paths(mac, wires, opt, report, 5);
  ASSERT_EQ(paths.size(), 5u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].slack_ns, paths[i].slack_ns);
  }
  // The worst path's arrival matches the report's critical delay.
  EXPECT_NEAR(paths[0].arrival_ns, report.critical_delay_ns, 1e-9);
}

}  // namespace
}  // namespace ppat::sta
