#include "common/log.hpp"

#include <gtest/gtest.h>

namespace ppat::common {
namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelRoundTrip) {
  LevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, ThresholdOrdering) {
  // The enum must be ordered so that comparisons implement thresholds.
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kOff));
}

TEST(Log, StreamMacroDoesNotCrashAtAnyLevel) {
  LevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kWarn, LogLevel::kOff}) {
    set_log_level(level);
    PPAT_DEBUG << "debug " << 1;
    PPAT_INFO << "info " << 2.5;
    PPAT_WARN << "warn " << "text";
    PPAT_ERROR << "error " << 'c';
  }
  SUCCEED();
}

TEST(Log, OffSuppressesEverything) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Nothing to assert on stderr portably; this documents the contract and
  // exercises the early-return path.
  log_line(LogLevel::kError, "should be suppressed");
  SUCCEED();
}

}  // namespace
}  // namespace ppat::common
