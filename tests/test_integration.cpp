// End-to-end integration: real PD flow -> benchmark tables -> every tuning
// method -> paper metrics. Uses small MAC designs so the whole suite stays
// fast, but exercises the exact code path the paper-reproduction benches
// run.
#include <gtest/gtest.h>

#include "baselines/aspdac20.hpp"
#include "baselines/dac19.hpp"
#include "baselines/mlcad19.hpp"
#include "baselines/tcad19.hpp"
#include "tuner/ppatuner.hpp"

namespace ppat {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new netlist::CellLibrary(netlist::CellLibrary::make_default());
    netlist::MacConfig src_cfg;
    src_cfg.operand_bits = 6;
    src_cfg.lanes = 3;
    netlist::MacConfig tgt_cfg;
    tgt_cfg.operand_bits = 10;
    tgt_cfg.lanes = 6;
    flow::PDTool src_tool(lib_, src_cfg, 42);
    flow::PDTool tgt_tool(lib_, tgt_cfg, 43);
    source_ = new flow::BenchmarkSet(flow::build_benchmark(
        "int_src", flow::source2_space(), 150, src_tool, 201));
    target_ = new flow::BenchmarkSet(flow::build_benchmark(
        "int_tgt", flow::target2_space(), 200, tgt_tool, 202));
  }
  static void TearDownTestSuite() {
    delete source_;
    delete target_;
    delete lib_;
    source_ = nullptr;
    target_ = nullptr;
    lib_ = nullptr;
  }

  static netlist::CellLibrary* lib_;
  static flow::BenchmarkSet* source_;
  static flow::BenchmarkSet* target_;
};

netlist::CellLibrary* IntegrationTest::lib_ = nullptr;
flow::BenchmarkSet* IntegrationTest::source_ = nullptr;
flow::BenchmarkSet* IntegrationTest::target_ = nullptr;

TEST_F(IntegrationTest, BenchmarkTablesAreSane) {
  ASSERT_EQ(source_->size(), 150u);
  ASSERT_EQ(target_->size(), 200u);
  for (const auto& q : target_->qor) {
    EXPECT_GT(q.area_um2, 0.0);
    EXPECT_GT(q.power_mw, 0.0);
    EXPECT_GT(q.delay_ns, 0.0);
  }
  // The golden front must contain more than one trade-off point in the
  // power-delay plane for the tuning problem to be meaningful.
  tuner::BenchmarkCandidatePool pool(target_, tuner::kPowerDelay);
  EXPECT_GE(pool.golden_front().size(), 3u);
}

TEST_F(IntegrationTest, PpatunerBeatsRandomSubset) {
  tuner::BenchmarkCandidatePool pool(target_, tuner::kPowerDelay);
  const auto source_data =
      tuner::SourceData::from_benchmark(*source_, tuner::kPowerDelay, 100, 7);
  tuner::PPATunerOptions opt;
  opt.seed = 3;
  opt.max_runs = 60;
  const auto result = tuner::run_ppatuner(
      pool, tuner::make_transfer_gp_factory(source_data), opt);
  const auto q = tuner::evaluate_result(pool, result);

  // Reference: the front of a random subset of the same size as the number
  // of tool runs the tuner used.
  common::Rng rng(99);
  tuner::BenchmarkCandidatePool rand_pool(target_, tuner::kPowerDelay);
  std::vector<std::size_t> rand_idx =
      rng.sample_without_replacement(rand_pool.size(), result.tool_runs);
  std::vector<pareto::Point> rand_pts;
  for (std::size_t i : rand_idx) rand_pts.push_back(rand_pool.reveal(i));
  tuner::TuningResult rand_result;
  for (std::size_t f : pareto::pareto_front_indices(rand_pts)) {
    rand_result.pareto_indices.push_back(rand_idx[f]);
  }
  rand_result.tool_runs = result.tool_runs;
  const auto q_rand = tuner::evaluate_result(rand_pool, rand_result);

  EXPECT_LT(q.hv_error, q_rand.hv_error + 0.05);
  EXPECT_LT(q.hv_error, 0.4);
}

TEST_F(IntegrationTest, AllMethodsProduceValidResultsOnRealFlow) {
  const auto source_data =
      tuner::SourceData::from_benchmark(*source_, tuner::kPowerDelay, 100, 7);
  struct Row {
    const char* name;
    tuner::ResultQuality quality;
  };
  std::vector<Row> rows;

  {
    tuner::BenchmarkCandidatePool pool(target_, tuner::kPowerDelay);
    tuner::PPATunerOptions o;
    o.seed = 1;
    o.max_runs = 50;
    rows.push_back({"ppatuner",
                    evaluate_result(pool,
                                    run_ppatuner(pool,
                                                 tuner::make_transfer_gp_factory(
                                                     source_data),
                                                 o))});
  }
  {
    tuner::BenchmarkCandidatePool pool(target_, tuner::kPowerDelay);
    baselines::Tcad19Options o;
    o.seed = 1;
    o.max_runs = 60;
    rows.push_back({"tcad19", evaluate_result(pool, run_tcad19(pool, o))});
  }
  {
    tuner::BenchmarkCandidatePool pool(target_, tuner::kPowerDelay);
    baselines::Mlcad19Options o;
    o.seed = 1;
    o.budget = 50;
    rows.push_back({"mlcad19", evaluate_result(pool, run_mlcad19(pool, o))});
  }
  {
    tuner::BenchmarkCandidatePool pool(target_, tuner::kPowerDelay);
    baselines::Dac19Options o;
    o.seed = 1;
    o.budget = 60;
    rows.push_back(
        {"dac19", evaluate_result(pool, run_dac19(pool, &source_data, o))});
  }
  {
    tuner::BenchmarkCandidatePool pool(target_, tuner::kPowerDelay);
    baselines::Aspdac20Options o;
    o.seed = 1;
    o.budget = 50;
    rows.push_back({"aspdac20",
                    evaluate_result(pool, run_aspdac20(pool, &source_data,
                                                       o))});
  }

  for (const auto& row : rows) {
    EXPECT_GE(row.quality.hv_error, 0.0) << row.name;
    EXPECT_LT(row.quality.hv_error, 0.9) << row.name;
    EXPECT_GE(row.quality.adrs, 0.0) << row.name;
    EXPECT_GT(row.quality.runs, 0u) << row.name;
  }
}

}  // namespace
}  // namespace ppat
