#include "pareto/pareto.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ppat::pareto {
namespace {

TEST(Dominance, StrictAndWeakCases) {
  EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 3.0}));
  EXPECT_TRUE(dominates({1.0, 3.0}, {2.0, 3.0}));  // equal in one dim
  EXPECT_FALSE(dominates({1.0, 2.0}, {1.0, 2.0}));  // equal: not strict
  EXPECT_FALSE(dominates({1.0, 4.0}, {2.0, 3.0}));  // incomparable
}

TEST(Dominance, WithSlack) {
  const std::vector<double> delta = {0.5, 0.5};
  EXPECT_TRUE(dominates_with_slack({2.4, 3.4}, {2.0, 3.0}, delta));
  EXPECT_FALSE(dominates_with_slack({2.6, 3.0}, {2.0, 3.0}, delta));
}

TEST(ParetoFront, ExtractsNonDominated) {
  const std::vector<Point> pts = {
      {1.0, 5.0}, {2.0, 4.0}, {3.0, 3.0}, {2.5, 4.5}, {5.0, 5.0}};
  const auto idx = pareto_front_indices(pts);
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFront, DuplicatesKeepFirst) {
  const std::vector<Point> pts = {{1.0, 1.0}, {1.0, 1.0}};
  const auto idx = pareto_front_indices(pts);
  EXPECT_EQ(idx, (std::vector<std::size_t>{0}));
}

TEST(ParetoFront, SinglePointIsFront) {
  const std::vector<Point> pts = {{3.0, 3.0, 3.0}};
  EXPECT_EQ(pareto_front(pts).size(), 1u);
}

TEST(ReferencePoint, MaxWithMargin) {
  const std::vector<Point> pts = {{1.0, 4.0}, {3.0, 2.0}};
  const Point ref = reference_point(pts, 1.1);
  EXPECT_NEAR(ref[0], 3.3, 1e-9);
  EXPECT_NEAR(ref[1], 4.4, 1e-9);
  EXPECT_THROW(reference_point({}, 1.1), std::invalid_argument);
}

TEST(ReferencePoint, ZeroMaximumUsesRangeScale) {
  // Dimension 0 has maximum 0 (e.g. a zero-WNS metric): the pad must come
  // from the set's spread, not from |max| (which would collapse the
  // hypervolume along that dimension).
  const std::vector<Point> pts = {{0.0, 1.0}, {-2.0, 3.0}};
  const Point ref = reference_point(pts, 1.1);
  EXPECT_NEAR(ref[0], 0.2, 1e-9);  // 0 + 0.1 * range(2.0)
  EXPECT_NEAR(ref[1], 3.3, 1e-9);
  // The hypervolume along dimension 0 is no longer degenerate.
  EXPECT_GT(hypervolume(pts, ref), 0.1);
}

TEST(ReferencePoint, FullyDegenerateDimensionFallsBackToUnitScale) {
  const std::vector<Point> pts = {{0.0, 1.0}, {0.0, 2.0}};
  const Point ref = reference_point(pts, 1.1);
  EXPECT_NEAR(ref[0], 0.1, 1e-9);  // 0 + 0.1 * fallback scale 1.0
  EXPECT_GT(hypervolume(pts, ref), 0.0);
}

TEST(Hypervolume, OneDimensional) {
  EXPECT_DOUBLE_EQ(hypervolume({{2.0}, {4.0}}, {10.0}), 8.0);
  EXPECT_DOUBLE_EQ(hypervolume({{12.0}}, {10.0}), 0.0);
}

TEST(Hypervolume, TwoDimensionalKnown) {
  // Classic staircase.
  const std::vector<Point> pts = {{1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}};
  // ref (4,4): union area = 3*1 + 2*1 + 1*... compute: boxes
  // [1,4]x[3,4]=3, [2,4]x[2,4]=4 (adds 2), [3,4]x[1,4]=3 (adds 1) -> 3+2+1=6.
  EXPECT_DOUBLE_EQ(hypervolume(pts, {4.0, 4.0}), 6.0);
}

TEST(Hypervolume, DominatedPointsDoNotAdd) {
  const std::vector<Point> front = {{1.0, 3.0}, {3.0, 1.0}};
  const double base = hypervolume(front, {4.0, 4.0});
  std::vector<Point> with_dominated = front;
  with_dominated.push_back({3.5, 3.5});  // dominated by both
  EXPECT_DOUBLE_EQ(hypervolume(with_dominated, {4.0, 4.0}), base);
}

TEST(Hypervolume, ThreeDimensionalKnown) {
  // Single point: box volume.
  EXPECT_DOUBLE_EQ(hypervolume({{1.0, 1.0, 1.0}}, {2.0, 3.0, 4.0}), 6.0);
  // Two disjoint-ish points.
  const std::vector<Point> pts = {{1.0, 2.0, 2.0}, {2.0, 1.0, 2.0}};
  // Union: vol(A)+vol(B)-vol(A∩B); A=[1,3]x[2,3]x[2,3]=2, B=2,
  // A∩B=[2,3]x[2,3]x[2,3]=1 with ref (3,3,3): 2+2-1=3.
  EXPECT_DOUBLE_EQ(hypervolume(pts, {3.0, 3.0, 3.0}), 3.0);
}

TEST(Hypervolume, AgreesAcrossDimensionsOnProducts) {
  // A 3-D problem whose third coordinate is constant reduces to 2-D x slab.
  const std::vector<Point> p2 = {{1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}};
  std::vector<Point> p3;
  for (const auto& p : p2) p3.push_back({p[0], p[1], 5.0});
  const double hv2 = hypervolume(p2, {4.0, 4.0});
  const double hv3 = hypervolume(p3, {4.0, 4.0, 7.0});
  EXPECT_NEAR(hv3, hv2 * 2.0, 1e-9);
}

TEST(Hypervolume, PointsOutsideReferenceClipped) {
  const std::vector<Point> pts = {{5.0, 1.0}, {1.0, 5.0}, {2.0, 2.0}};
  // Only (2,2) is inside ref (4,4) -> 4. Points with one coordinate beyond
  // the reference are dropped entirely (their region does not intersect the
  // reference box in this minimization convention).
  EXPECT_DOUBLE_EQ(hypervolume(pts, {4.0, 4.0}), 4.0);
}

TEST(Hypervolume, MonotoneUnderImprovement) {
  const std::vector<Point> worse = {{2.0, 2.0}};
  const std::vector<Point> better = {{1.0, 1.5}};
  const Point ref = {4.0, 4.0};
  EXPECT_GT(hypervolume(better, ref), hypervolume(worse, ref));
}

TEST(HypervolumeError, ZeroForGoldenItself) {
  const std::vector<Point> golden = {{1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}};
  EXPECT_NEAR(hypervolume_error(golden, golden), 0.0, 1e-12);
}

TEST(HypervolumeError, PositiveForWorseApproximation) {
  const std::vector<Point> golden = {{1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}};
  const std::vector<Point> approx = {{2.0, 2.0}};
  const double e = hypervolume_error(golden, approx);
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, 1.0);
}

TEST(HypervolumeError, EmptyApproxIsTotalError) {
  const std::vector<Point> golden = {{1.0, 1.0}};
  EXPECT_NEAR(hypervolume_error(golden, {}), 1.0, 1e-12);
}

TEST(Adrs, ZeroWhenApproxCoversGolden) {
  const std::vector<Point> golden = {{1.0, 3.0}, {3.0, 1.0}};
  EXPECT_DOUBLE_EQ(adrs(golden, golden), 0.0);
}

TEST(Adrs, KnownValue) {
  const std::vector<Point> golden = {{1.0, 1.0}};
  const std::vector<Point> approx = {{1.1, 1.2}};
  // delta = max(|1-1.1|/1, |1-1.2|/1) = 0.2
  EXPECT_NEAR(adrs(golden, approx), 0.2, 1e-12);
}

TEST(Adrs, TakesBestApproximationPerGoldenPoint) {
  const std::vector<Point> golden = {{1.0, 1.0}, {2.0, 1.0}};
  const std::vector<Point> approx = {{1.0, 1.0}, {10.0, 10.0}};
  // First golden point matched exactly; the second is dominated by (1,1)
  // (one-sided distance 0), while (10,10) would cost max(8/2, 9/1) = 9.
  EXPECT_NEAR(adrs(golden, approx), 0.0, 1e-12);
  // A genuinely worse-only approximation still pays the full deviation.
  const std::vector<Point> worse = {{2.5, 1.5}};
  // vs (1,1): max(1.5/1, 0.5/1) = 1.5; vs (2,1): max(0.5/2, 0.5/1) = 0.5.
  EXPECT_NEAR(adrs(golden, worse), (1.5 + 0.5) / 2.0, 1e-12);
}

TEST(Adrs, ZeroWhenApproxDominatesGolden) {
  // Regression: an approximate front that strictly DOMINATES the reference
  // front is at least as good everywhere, so ADRS must be exactly 0 (the old
  // symmetric |a-p| distance wrongly penalized it as if it were worse).
  const std::vector<Point> golden = {{1.0, 3.0}, {3.0, 1.0}};
  const std::vector<Point> approx = {{0.5, 2.5}, {2.0, 0.5}};
  EXPECT_DOUBLE_EQ(adrs(golden, approx), 0.0);
}

TEST(Adrs, EmptyInputsThrow) {
  EXPECT_THROW(adrs({}, {{1.0}}), std::invalid_argument);
  EXPECT_THROW(adrs({{1.0}}, {}), std::invalid_argument);
}

// Property sweep: hypervolume of random fronts is invariant to point order
// and never decreases when a point is added.
class HvProperty : public ::testing::TestWithParam<int> {};

TEST_P(HvProperty, OrderInvarianceAndMonotonicity) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Point> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                   rng.uniform(0.0, 1.0)});
  }
  const Point ref = {1.2, 1.2, 1.2};
  const double hv = hypervolume(pts, ref);
  auto shuffled = pts;
  rng.shuffle(shuffled);
  EXPECT_NEAR(hypervolume(shuffled, ref), hv, 1e-9);
  shuffled.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                      rng.uniform(0.0, 1.0)});
  EXPECT_GE(hypervolume(shuffled, ref) + 1e-12, hv);
  // Against the 2-D reduction: dropping one coordinate can only grow the
  // dominated area of the projection (sanity cross-check <= product bound).
  EXPECT_LE(hv, 1.2 * 1.2 * 1.2 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HvProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace ppat::pareto
