#include "cts/cts.hpp"

#include <gtest/gtest.h>

#include <set>

#include "netlist/mac_generator.hpp"
#include "power/power.hpp"

namespace ppat::cts {
namespace {

class CtsTest : public ::testing::Test {
 protected:
  CtsTest() : lib_(netlist::CellLibrary::make_default()) {
    netlist::MacConfig cfg;
    cfg.operand_bits = 8;
    cfg.lanes = 4;
    nl_ = std::make_unique<netlist::Netlist>(netlist::generate_mac(lib_, cfg));
    placement_ = place::place(*nl_, place::PlacerOptions{});
  }
  netlist::CellLibrary lib_;
  std::unique_ptr<netlist::Netlist> nl_;
  place::Placement placement_;
};

TEST_F(CtsTest, EveryFlopConnectedExactlyOnce) {
  const auto tree = synthesize_clock_tree(*nl_, placement_);
  std::multiset<netlist::InstanceId> connected;
  for (const auto& node : tree.nodes) {
    for (auto ff : node.sink_flops) connected.insert(ff);
  }
  std::size_t expected = 0;
  for (netlist::InstanceId i = 0; i < nl_->num_instances(); ++i) {
    if (nl_->is_sequential(i)) {
      ++expected;
      EXPECT_EQ(connected.count(i), 1u) << "flop " << i;
    }
  }
  EXPECT_EQ(connected.size(), expected);
}

TEST_F(CtsTest, FanoutBoundHolds) {
  CtsOptions opt;
  opt.max_fanout = 8;
  const auto tree = synthesize_clock_tree(*nl_, placement_, opt);
  for (const auto& node : tree.nodes) {
    EXPECT_LE(node.child_buffers.size() + node.sink_flops.size(), 8u);
  }
}

TEST_F(CtsTest, TreeIsConnectedFromRoot) {
  const auto tree = synthesize_clock_tree(*nl_, placement_);
  std::vector<bool> seen(tree.nodes.size(), false);
  std::vector<std::uint32_t> stack = {0};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    ASSERT_LT(n, tree.nodes.size());
    EXPECT_FALSE(seen[n]) << "node visited twice (cycle?)";
    seen[n] = true;
    for (auto c : tree.nodes[n].child_buffers) stack.push_back(c);
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "orphan node " << i;
  }
}

TEST_F(CtsTest, PhysicalQuantitiesPositive) {
  const auto tree = synthesize_clock_tree(*nl_, placement_);
  EXPECT_GT(tree.num_buffers, 0u);
  EXPECT_GT(tree.total_wire_um, 0.0);
  EXPECT_GT(tree.total_cap_ff, 0.0);
  EXPECT_GT(tree.insertion_delay_ns, 0.0);
  EXPECT_GE(tree.skew_ns, 0.0);
  EXPECT_LE(tree.skew_ns, tree.insertion_delay_ns);
}

TEST_F(CtsTest, SmallerFanoutMeansMoreBuffers) {
  CtsOptions small;
  small.max_fanout = 4;
  CtsOptions large;
  large.max_fanout = 24;
  const auto t_small = synthesize_clock_tree(*nl_, placement_, small);
  const auto t_large = synthesize_clock_tree(*nl_, placement_, large);
  EXPECT_GT(t_small.num_buffers, t_large.num_buffers);
}

TEST_F(CtsTest, PowerDrivenCtsNeverCostsCapacitance) {
  CtsOptions base;
  CtsOptions pd = base;
  pd.power_driven = true;
  const auto t_base = synthesize_clock_tree(*nl_, placement_, base);
  const auto t_pd = synthesize_clock_tree(*nl_, placement_, pd);
  // The power-driven search includes the nominal fanout among its
  // candidates, so its result can only match or improve the capacitance.
  EXPECT_LE(t_pd.total_cap_ff, t_base.total_cap_ff);
  // Every flop is still connected exactly once.
  std::size_t connected = 0;
  for (const auto& node : t_pd.nodes) connected += node.sink_flops.size();
  EXPECT_EQ(connected, nl_->num_sequential());
}

TEST_F(CtsTest, PowerScalesWithVoltageAndFrequency) {
  const auto tree = synthesize_clock_tree(*nl_, placement_);
  const double p1 = tree.power_mw(0.7, 1.0);
  EXPECT_NEAR(tree.power_mw(0.7, 2.0), 2.0 * p1, 1e-9);
  EXPECT_NEAR(tree.power_mw(1.4, 1.0), 4.0 * p1, 1e-9);
}

TEST_F(CtsTest, AnalyticClockModelTracksStructuralTree) {
  // The flow's closed-form clock power (power::clock_tree_power_mw) is a
  // calibrated stand-in for this structural tree; they must agree within a
  // small factor at matched conditions, including the power_driven effect's
  // direction.
  const auto tree = synthesize_clock_tree(*nl_, placement_);
  power::PowerOptions popt;
  popt.clock_freq_ghz = 1.0;
  const double analytic =
      power::clock_tree_power_mw(nl_->num_sequential(),
                                 placement_.die_width_um, popt);
  const double structural = tree.power_mw(popt.voltage_v, 1.0);
  EXPECT_GT(structural, 0.4 * analytic);
  EXPECT_LT(structural, 2.5 * analytic);
}

TEST_F(CtsTest, ThrowsWithoutFlops) {
  netlist::Netlist comb(&lib_);
  const auto a = comb.add_primary_input();
  comb.add_instance(lib_.find(netlist::CellFunction::kInv, 0), {a});
  place::Placement p;
  p.x = {0.0};
  p.y = {0.0};
  EXPECT_THROW(synthesize_clock_tree(comb, p), std::invalid_argument);
}

TEST_F(CtsTest, SingleFlopDegenerateTree) {
  netlist::Netlist one(&lib_);
  const auto a = one.add_primary_input();
  one.add_instance(lib_.find(netlist::CellFunction::kDff, 0), {a});
  place::Placement p;
  p.x = {10.0};
  p.y = {20.0};
  const auto tree = synthesize_clock_tree(one, p);
  ASSERT_EQ(tree.nodes.size(), 1u);
  EXPECT_EQ(tree.nodes[0].sink_flops.size(), 1u);
  EXPECT_DOUBLE_EQ(tree.nodes[0].x, 10.0);
}

}  // namespace
}  // namespace ppat::cts
