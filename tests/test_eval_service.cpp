// flow::EvalService: license-bounded batch dispatch, bounded retry,
// cooperative deadlines, and the oracle decorators (fault injection,
// caching). The load-bearing property is determinism: record i always
// describes configs[i], and outcomes never depend on the license count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "flow/eval_service.hpp"
#include "flow/oracle_decorators.hpp"
#include "sample/sampling.hpp"
#include "synthetic_benchmark.hpp"

namespace ppat {
namespace {

std::vector<flow::Config> make_configs(const flow::ParameterSpace& space,
                                       std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  const auto unit = sample::latin_hypercube(n, space.size(), rng);
  std::vector<flow::Config> configs;
  configs.reserve(n);
  for (const auto& u : unit) configs.push_back(space.decode(u));
  return configs;
}

/// Fails the first `failures` attempts of every configuration, then
/// delegates to the inner oracle.
class FlakyOracle final : public flow::QorOracle {
 public:
  FlakyOracle(flow::QorOracle& inner, std::size_t failures)
      : inner_(inner), failures_(failures) {}

  flow::QoR evaluate(const flow::ParameterSpace& space,
                     const flow::Config& config) override {
    std::size_t attempt;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      attempt = ++attempts_[config];
    }
    if (attempt <= failures_) {
      throw flow::ToolRunError("flaky: injected attempt failure");
    }
    return inner_.evaluate(space, config);
  }
  std::size_t run_count() const override { return inner_.run_count(); }

  std::size_t attempts_seen(const flow::Config& config) {
    std::lock_guard<std::mutex> lock(mutex_);
    return attempts_[config];
  }

 private:
  flow::QorOracle& inner_;
  std::size_t failures_;
  std::mutex mutex_;
  std::map<flow::Config, std::size_t> attempts_;
};

/// Sleeps before every evaluation (deadline tests).
class SlowOracle final : public flow::QorOracle {
 public:
  SlowOracle(flow::QorOracle& inner, std::chrono::milliseconds delay)
      : inner_(inner), delay_(delay) {}

  flow::QoR evaluate(const flow::ParameterSpace& space,
                     const flow::Config& config) override {
    std::this_thread::sleep_for(delay_);
    return inner_.evaluate(space, config);
  }
  std::size_t run_count() const override { return inner_.run_count(); }

 private:
  flow::QorOracle& inner_;
  std::chrono::milliseconds delay_;
};

TEST(EvalService, RecordsIndexedByBatchPosition) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 12, 42);
  testing::SyntheticOracle oracle;
  flow::EvalServiceOptions opt;
  opt.licenses = 4;
  flow::EvalService service(oracle, space, opt);

  const auto records = service.evaluate_batch(configs);
  ASSERT_EQ(records.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_TRUE(records[i].ok()) << records[i].error;
    EXPECT_EQ(records[i].attempts, 1u);
    const flow::QoR want = testing::synthetic_qor(space.encode(configs[i]));
    EXPECT_EQ(records[i].qor.area_um2, want.area_um2);
    EXPECT_EQ(records[i].qor.power_mw, want.power_mw);
    EXPECT_EQ(records[i].qor.delay_ns, want.delay_ns);
  }
  EXPECT_EQ(oracle.run_count(), configs.size());
  const auto stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.runs_ok, configs.size());
  EXPECT_EQ(stats.runs_failed, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(EvalService, RetriesTransientFailuresUpToMaxAttempts) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 1, 1);
  testing::SyntheticOracle inner;
  FlakyOracle flaky(inner, 2);  // attempts 1 and 2 fail, attempt 3 succeeds
  flow::EvalServiceOptions opt;
  opt.max_attempts = 3;
  flow::EvalService service(flaky, space, opt);

  const auto record = service.evaluate(configs[0]);
  EXPECT_TRUE(record.ok()) << record.error;
  EXPECT_EQ(record.attempts, 3u);
  EXPECT_EQ(record.retries(), 2u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.runs_ok, 1u);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
}

TEST(EvalService, ExhaustedRetriesRecordPermanentFailure) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 1, 2);
  testing::SyntheticOracle inner;
  FlakyOracle flaky(inner, 1000);  // never succeeds
  flow::EvalServiceOptions opt;
  opt.max_attempts = 3;
  flow::EvalService service(flaky, space, opt);

  const auto record = service.evaluate(configs[0]);
  EXPECT_FALSE(record.ok());
  EXPECT_EQ(record.status, flow::RunStatus::kFailed);
  EXPECT_EQ(record.attempts, 3u);
  EXPECT_FALSE(record.error.empty());
  EXPECT_EQ(inner.run_count(), 0u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.runs_failed, 1u);
  EXPECT_EQ(stats.runs_ok, 0u);
}

TEST(EvalService, SingleAttemptDisablesRetry) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 1, 3);
  testing::SyntheticOracle inner;
  FlakyOracle flaky(inner, 1);
  flow::EvalServiceOptions opt;
  opt.max_attempts = 1;
  flow::EvalService service(flaky, space, opt);

  const auto record = service.evaluate(configs[0]);
  EXPECT_EQ(record.status, flow::RunStatus::kFailed);
  EXPECT_EQ(record.attempts, 1u);
  EXPECT_EQ(flaky.attempts_seen(configs[0]), 1u);
}

TEST(EvalService, DeadlineClassifiesSlowRunsAsTimedOut) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 1, 4);
  testing::SyntheticOracle inner;
  SlowOracle slow(inner, std::chrono::milliseconds(25));
  flow::EvalServiceOptions opt;
  opt.max_attempts = 2;
  opt.run_deadline = std::chrono::milliseconds(1);
  flow::EvalService service(slow, space, opt);

  const auto record = service.evaluate(configs[0]);
  EXPECT_EQ(record.status, flow::RunStatus::kTimedOut);
  // A run past its deadline is NOT retried: a retry could only finish even
  // further past the deadline, so the one slow attempt is final.
  EXPECT_EQ(record.attempts, 1u);
  EXPECT_GT(record.elapsed_ms, 0.0);
  const auto stats = service.stats();
  EXPECT_EQ(stats.runs_timed_out, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(EvalService, DeterministicAcrossLicenseCounts) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 24, 99);
  flow::FaultInjectionOptions fopt;
  fopt.transient_failure_rate = 0.3;
  fopt.permanent_failure_rate = 0.1;
  fopt.seed = 0xfeedu;

  std::vector<std::vector<flow::RunRecord>> per_license;
  for (std::size_t licenses : {std::size_t{1}, std::size_t{4},
                               std::size_t{16}}) {
    testing::SyntheticOracle inner;
    flow::FaultInjectingOracle fault(inner, fopt);
    flow::EvalServiceOptions opt;
    opt.licenses = licenses;
    opt.max_attempts = 4;
    flow::EvalService service(fault, space, opt);
    per_license.push_back(service.evaluate_batch(configs));
  }
  for (std::size_t l = 1; l < per_license.size(); ++l) {
    ASSERT_EQ(per_license[l].size(), per_license[0].size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const auto& a = per_license[0][i];
      const auto& b = per_license[l][i];
      EXPECT_EQ(a.status, b.status) << "config " << i;
      EXPECT_EQ(a.attempts, b.attempts) << "config " << i;
      EXPECT_EQ(a.qor.area_um2, b.qor.area_um2) << "config " << i;
      EXPECT_EQ(a.qor.power_mw, b.qor.power_mw) << "config " << i;
      EXPECT_EQ(a.qor.delay_ns, b.qor.delay_ns) << "config " << i;
    }
  }
}

TEST(FaultInjectingOracle, PermanentDecisionMatchesOutcome) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 30, 17);
  testing::SyntheticOracle inner;
  flow::FaultInjectionOptions fopt;
  fopt.permanent_failure_rate = 0.2;
  fopt.seed = 0xabcu;
  flow::FaultInjectingOracle fault(inner, fopt);
  flow::EvalServiceOptions opt;
  opt.max_attempts = 3;
  flow::EvalService service(fault, space, opt);

  const auto records = service.evaluate_batch(configs);
  std::size_t doomed = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (fault.is_permanently_failing(configs[i])) {
      ++doomed;
      EXPECT_EQ(records[i].status, flow::RunStatus::kFailed);
      EXPECT_EQ(records[i].attempts, opt.max_attempts);
    } else {
      EXPECT_TRUE(records[i].ok()) << records[i].error;
    }
  }
  // With rate 0.2 over 30 configs a seed producing zero (or all) permanent
  // failures would make the test vacuous.
  EXPECT_GT(doomed, 0u);
  EXPECT_LT(doomed, configs.size());
  EXPECT_EQ(fault.injected_permanent_failures(), doomed * opt.max_attempts);
}

TEST(CachingOracle, DeduplicatesRepeatRuns) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 1, 5);
  testing::SyntheticOracle inner;
  flow::CachingOracle cache(inner);

  const flow::QoR first = cache.evaluate(space, configs[0]);
  const flow::QoR second = cache.evaluate(space, configs[0]);
  EXPECT_EQ(inner.run_count(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.area_um2, second.area_um2);
  EXPECT_EQ(first.power_mw, second.power_mw);
  EXPECT_EQ(first.delay_ns, second.delay_ns);
}

TEST(CachingOracle, FailuresAreNotCached) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 1, 6);
  testing::SyntheticOracle inner;
  FlakyOracle flaky(inner, 1);  // first attempt fails, second succeeds
  flow::CachingOracle cache(flaky);

  EXPECT_THROW(cache.evaluate(space, configs[0]), flow::ToolRunError);
  const flow::QoR qor = cache.evaluate(space, configs[0]);
  EXPECT_EQ(flaky.attempts_seen(configs[0]), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  const flow::QoR want = testing::synthetic_qor(space.encode(configs[0]));
  EXPECT_EQ(qor.area_um2, want.area_um2);
}

TEST(CachingOracle, InFlightRunsDeduplicateAcrossThreads) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 1, 8);
  constexpr std::size_t kThreads = 8;

  // Holds its (single) caller inside evaluate until released, so every
  // worker thread piles onto the same in-flight cache entry instead of
  // finding a completed line.
  class HoldingOracle final : public flow::QorOracle {
   public:
    flow::QoR evaluate(const flow::ParameterSpace& space,
                       const flow::Config& config) override {
      ++calls_;
      release.wait();
      return testing::synthetic_qor(space.encode(config));
    }
    std::size_t run_count() const override { return calls_; }
    std::latch release{1};

   private:
    std::atomic<std::size_t> calls_{0};
  };
  HoldingOracle inner;
  flow::CachingOracle cache(inner);

  std::latch started(static_cast<std::ptrdiff_t>(kThreads));
  std::vector<flow::QoR> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      started.count_down();
      started.wait();  // all threads race the same entry together
      results[t] = cache.evaluate(space, configs[0]);
    });
  }
  started.wait();
  // Give the losers time to reach the cache while the run is in flight,
  // then let the single inner call finish. (Correctness does not depend on
  // this timing — a late arrival is an ordinary cache hit.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  inner.release.count_down();
  for (auto& w : workers) w.join();

  EXPECT_EQ(inner.run_count(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), kThreads - 1);
  const flow::QoR want = testing::synthetic_qor(space.encode(configs[0]));
  for (const auto& qor : results) {
    EXPECT_EQ(qor.area_um2, want.area_um2);
    EXPECT_EQ(qor.power_mw, want.power_mw);
    EXPECT_EQ(qor.delay_ns, want.delay_ns);
  }
}

TEST(CachingOracle, ConcurrentFailureDoesNotPoisonCache) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 1, 9);
  constexpr std::size_t kThreads = 6;

  class SwitchableOracle final : public flow::QorOracle {
   public:
    flow::QoR evaluate(const flow::ParameterSpace& space,
                       const flow::Config& config) override {
      ++calls_;
      // Widen the in-flight window so concurrent callers share the flight.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (failing.load()) throw flow::ToolRunError("injected failure");
      return testing::synthetic_qor(space.encode(config));
    }
    std::size_t run_count() const override { return calls_; }
    std::atomic<bool> failing{true};

   private:
    std::atomic<std::size_t> calls_{0};
  };
  SwitchableOracle inner;
  flow::CachingOracle cache(inner);

  // Phase 1: every attempt fails. Whether a thread owns a flight or waits
  // on another's, the failure must propagate to it — and must NOT be
  // memoized.
  std::atomic<std::size_t> throws{0};
  std::latch started(static_cast<std::ptrdiff_t>(kThreads));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      started.count_down();
      started.wait();
      try {
        (void)cache.evaluate(space, configs[0]);
      } catch (const flow::ToolRunError&) {
        ++throws;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(throws, kThreads);

  // Phase 2: the tool recovers. The failed flights must not have been
  // cached: the next evaluate re-attempts the tool and succeeds...
  inner.failing = false;
  const std::size_t calls_before = inner.run_count();
  const flow::QoR qor = cache.evaluate(space, configs[0]);
  EXPECT_EQ(inner.run_count(), calls_before + 1);
  const flow::QoR want = testing::synthetic_qor(space.encode(configs[0]));
  EXPECT_EQ(qor.area_um2, want.area_um2);
  // ...and THAT success is memoized.
  (void)cache.evaluate(space, configs[0]);
  EXPECT_EQ(inner.run_count(), calls_before + 1);
}

TEST(EvalService, DeadlineExpiredWhileQueuedReportsZeroAttempts) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 4, 11);
  testing::SyntheticOracle inner;
  SlowOracle slow(inner, std::chrono::milliseconds(30));
  flow::EvalServiceOptions opt;
  opt.licenses = 1;  // sequential: later configs wait behind the first
  opt.max_attempts = 3;
  opt.run_deadline = std::chrono::milliseconds(20);
  flow::EvalService service(slow, space, opt);

  const auto records = service.evaluate_batch(configs);
  ASSERT_EQ(records.size(), configs.size());
  // The first config dispatched immediately and blew the deadline in
  // flight: one attempt, classified post-hoc.
  EXPECT_EQ(records[0].status, flow::RunStatus::kTimedOut);
  EXPECT_EQ(records[0].attempts, 1u);
  // Every later config's deadline expired while it was still queued behind
  // the first: kTimedOut with ZERO attempts — not a retryable failure, and
  // no tool time was wasted on it.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].status, flow::RunStatus::kTimedOut) << i;
    EXPECT_EQ(records[i].attempts, 0u) << i;
    EXPECT_EQ(records[i].error, "deadline expired while queued") << i;
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.runs_timed_out, configs.size());
  EXPECT_EQ(stats.runs_failed, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

/// Cancellable oracle that can be switched into a hung state: a hung run
/// spins until the watchdog's CancelToken fires (or a 10 s safety bound).
class HangingOracle final : public flow::QorOracle,
                            public flow::CancellableOracle {
 public:
  explicit HangingOracle(flow::QorOracle& inner) : inner_(inner) {}

  flow::QoR evaluate(const flow::ParameterSpace& space,
                     const flow::Config& config) override {
    return inner_.evaluate(space, config);
  }
  flow::QoR evaluate_with_cancel(const flow::ParameterSpace& space,
                                 const flow::Config& config,
                                 const flow::CancelToken& cancel) override {
    if (hang.load()) {
      const auto t0 = std::chrono::steady_clock::now();
      while (!cancel.cancelled() &&
             std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      saw_cancel.store(cancel.cancelled());
      throw flow::ToolRunError("hung run aborted by tool wrapper");
    }
    return inner_.evaluate(space, config);
  }
  std::size_t run_count() const override { return inner_.run_count(); }

  std::atomic<bool> hang{false};
  std::atomic<bool> saw_cancel{false};

 private:
  flow::QorOracle& inner_;
};

TEST(EvalService, WatchdogCancelsHungRunPermanently) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 7, 23);
  testing::SyntheticOracle inner;
  HangingOracle oracle(inner);
  flow::EvalServiceOptions opt;
  opt.max_attempts = 3;
  opt.watchdog_multiple = 2.0;
  opt.watchdog_floor = std::chrono::milliseconds(30);
  opt.watchdog_min_samples = 4;
  opt.watchdog_poll = std::chrono::milliseconds(10);
  flow::EvalService service(oracle, space, opt);

  // Establish the rolling median with fast, successful runs.
  const auto warmup = service.evaluate_batch(
      {configs.begin(), configs.begin() + 6});
  for (const auto& rec : warmup) ASSERT_TRUE(rec.ok());

  // Now hang: the watchdog must cancel the run via the token, and the
  // cancellation must be PERMANENT (one attempt, no retry into another
  // hang).
  oracle.hang.store(true);
  const auto record = service.evaluate(configs[6]);
  EXPECT_TRUE(oracle.saw_cancel.load());
  EXPECT_EQ(record.status, flow::RunStatus::kTimedOut);
  EXPECT_EQ(record.attempts, 1u);
  EXPECT_NE(record.error.find("watchdog"), std::string::npos);
  const auto stats = service.stats();
  EXPECT_EQ(stats.runs_watchdog_cancelled, 1u);
  EXPECT_EQ(stats.runs_timed_out, 1u);
}

TEST(EvalService, ObserverSeesEveryCompletionOnce) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 12, 5);
  testing::SyntheticOracle inner;
  FlakyOracle flaky(inner, 1);  // first attempt of each config fails
  flow::EvalServiceOptions opt;
  opt.licenses = 4;
  opt.max_attempts = 2;
  flow::EvalService service(flaky, space, opt);

  std::mutex mutex;
  std::map<std::size_t, flow::RunRecord> seen;
  const auto records = service.evaluate_batch(
      configs, [&](std::size_t i, const flow::RunRecord& rec) {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_FALSE(seen.contains(i)) << "index " << i << " observed twice";
        seen[i] = rec;
      });

  ASSERT_EQ(seen.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_TRUE(seen.contains(i));
    EXPECT_EQ(seen[i].status, records[i].status);
    EXPECT_EQ(seen[i].attempts, records[i].attempts);
    EXPECT_EQ(seen[i].qor.area_um2, records[i].qor.area_um2);
  }
}

TEST(CachingOracle, MakesRepeatBatchesFree) {
  const auto space = testing::synthetic_space();
  const auto configs = make_configs(space, 8, 7);
  testing::SyntheticOracle inner;
  flow::CachingOracle cache(inner);
  flow::EvalServiceOptions opt;
  opt.licenses = 4;
  flow::EvalService service(cache, space, opt);

  const auto first = service.evaluate_batch(configs);
  const auto second = service.evaluate_batch(configs);
  EXPECT_EQ(inner.run_count(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_TRUE(first[i].ok());
    ASSERT_TRUE(second[i].ok());
    EXPECT_EQ(first[i].qor.area_um2, second[i].qor.area_um2);
  }
}

}  // namespace
}  // namespace ppat
