// Property sweeps over the four paper parameter spaces (Table 1): encoding
// round-trips, LHS-decoded configurations validate, and the shared-name
// parameters align across source/target spaces — the structural property
// the transfer GP's unit-cube alignment relies on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flow/benchmark.hpp"
#include "sample/sampling.hpp"

namespace ppat::flow {
namespace {

struct SpaceCase {
  const char* name;
  ParameterSpace (*make)();
  std::size_t expected_params;
};

class PaperSpaces : public ::testing::TestWithParam<SpaceCase> {};

TEST_P(PaperSpaces, ParameterCountMatchesTable1) {
  const auto space = GetParam().make();
  EXPECT_EQ(space.size(), GetParam().expected_params);
}

TEST_P(PaperSpaces, LhsDecodedConfigsValidate) {
  const auto space = GetParam().make();
  common::Rng rng(7);
  for (const auto& u : sample::latin_hypercube(100, space.size(), rng)) {
    const Config c = space.decode(u);
    space.validate(c);  // must not throw
  }
}

TEST_P(PaperSpaces, EncodeDecodeStableOnRandomPoints) {
  const auto space = GetParam().make();
  common::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    linalg::Vector u(space.size());
    for (auto& v : u) v = rng.uniform01();
    const Config c1 = space.decode(u);
    const Config c2 = space.decode(space.encode(c1));
    for (std::size_t p = 0; p < c1.size(); ++p) {
      EXPECT_NEAR(c1[p], c2[p], 1e-9)
          << GetParam().name << " parameter " << space.spec(p).name;
    }
  }
}

TEST_P(PaperSpaces, FormatValueNeverThrows) {
  const auto space = GetParam().make();
  common::Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    linalg::Vector u(space.size());
    for (auto& v : u) v = rng.uniform01();
    const Config c = space.decode(u);
    for (std::size_t p = 0; p < space.size(); ++p) {
      EXPECT_FALSE(space.format_value(p, c[p]).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, PaperSpaces,
    ::testing::Values(SpaceCase{"source1", source1_space, 12},
                      SpaceCase{"target1", target1_space, 12},
                      SpaceCase{"source2", source2_space, 9},
                      SpaceCase{"target2", target2_space, 9}),
    [](const ::testing::TestParamInfo<SpaceCase>& info) {
      return info.param.name;
    });

TEST(PaperSpacePairs, SharedParametersHaveSameTypeAndOrder) {
  // Scenario pairs tune the same named parameters (over different ranges);
  // unit-cube dimension i must mean the same knob in source and target.
  const auto pairs = {std::pair{source1_space(), target1_space()},
                      std::pair{source2_space(), target2_space()}};
  for (const auto& [src, tgt] : pairs) {
    ASSERT_EQ(src.size(), tgt.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(src.spec(i).name, tgt.spec(i).name);
      EXPECT_EQ(static_cast<int>(src.spec(i).type),
                static_cast<int>(tgt.spec(i).type));
    }
  }
}

TEST(PaperSpacePairs, RangesDifferAsInTable1) {
  const auto s1 = source1_space();
  const auto t1 = target1_space();
  // freq: 950-1050 vs 1000-1300; place_uncertainty: 50-200 vs 20-100.
  EXPECT_NE(s1.spec(s1.index_of("freq")).max_value,
            t1.spec(t1.index_of("freq")).max_value);
  EXPECT_NE(s1.spec(s1.index_of("place_uncertainty")).min_value,
            t1.spec(t1.index_of("place_uncertainty")).min_value);
  const auto s2 = source2_space();
  const auto t2 = target2_space();
  // max_AllowedDelay: 0.06-0.12 vs 0.00-0.12; max_fanout: 25-40 vs 25-39.
  EXPECT_NE(s2.spec(s2.index_of("max_AllowedDelay")).min_value,
            t2.spec(t2.index_of("max_AllowedDelay")).min_value);
  EXPECT_NE(s2.spec(s2.index_of("max_fanout")).max_value,
            t2.spec(t2.index_of("max_fanout")).max_value);
}

}  // namespace
}  // namespace ppat::flow
