#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace ppat::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(55);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(55);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.08);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(Rng, GammaMomentsMatch) {
  Rng rng(23);
  // Gamma(shape k, scale s): mean k*s, variance k*s^2.
  for (double shape : {0.5, 1.0, 3.0}) {
    const double scale = 2.0;
    double sum = 0.0, sum_sq = 0.0;
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
      const double x = rng.gamma(shape, scale);
      EXPECT_GT(x, 0.0);
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, shape * scale, 0.15 * shape * scale + 0.05);
    EXPECT_NEAR(var, shape * scale * scale,
                0.25 * shape * scale * scale + 0.1);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(31);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(37);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 20u);
  for (std::size_t v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(43);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(47);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StateRoundTripResumesTheStream) {
  Rng rng(77);
  // Burn an arbitrary prefix mixing every draw type.
  for (int i = 0; i < 13; ++i) {
    rng.next_u64();
    rng.uniform01();
    rng.normal();
  }
  const auto snapshot = rng.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(rng.next_u64());

  Rng restored(1);  // unrelated seed; set_state must fully overwrite it
  restored.set_state(snapshot);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(restored.next_u64(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, SetStateClearsTheSpareNormal) {
  Rng a(5);
  a.normal();  // may cache a spare for the next call
  const auto snapshot = a.state();
  Rng b(99);
  b.normal();  // b also holds a (different) pending spare
  b.set_state(snapshot);
  Rng c(5);
  c.normal();
  c.set_state(snapshot);
  // Both restored streams must agree on normals from the snapshot on: the
  // cached spare never leaks across set_state().
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b.normal(), c.normal());
}

TEST(Rng, SetStateRejectsAllZero) {
  Rng rng(3);
  EXPECT_THROW(rng.set_state({0, 0, 0, 0}), std::invalid_argument);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace ppat::common
