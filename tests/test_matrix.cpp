#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace ppat::linalg {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, IdentityMultiplicationIsNoop) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a * i, a), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(i * a, a), 0.0);
}

TEST(Matrix, MultiplyKnownValues) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyNonSquareShapes) {
  const Matrix a(2, 3, 1.0);
  const Matrix b(3, 4, 2.0);
  const Matrix c = a * b;
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_DOUBLE_EQ(c(1, 3), 6.0);
}

TEST(Matrix, MatVec) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Vector v = {1.0, -1.0};
  const Vector r = a * v;
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], -1.0);
  EXPECT_DOUBLE_EQ(r[1], -1.0);
}

TEST(Matrix, Transpose) {
  const Matrix a = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(t.transposed(), a), 0.0);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a - b)(1, 1), 3.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
}

TEST(Matrix, AddToDiagonal) {
  Matrix a = Matrix::identity(3);
  a.add_to_diagonal(0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(Matrix, RowSpanIsMutable) {
  Matrix a(2, 2);
  auto r = a.row(1);
  r[0] = 9.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 9.0);
}

TEST(VectorOps, DotAndNorm) {
  const Vector a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(VectorOps, AddSubScale) {
  const Vector a = {1.0, 2.0}, b = {3.0, 5.0};
  EXPECT_DOUBLE_EQ((a + b)[1], 7.0);
  EXPECT_DOUBLE_EQ((b - a)[0], 2.0);
  EXPECT_DOUBLE_EQ((2.0 * a)[1], 4.0);
}

TEST(VectorOps, Axpy) {
  const Vector x = {1.0, 2.0};
  Vector y = {10.0, 20.0};
  axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

}  // namespace
}  // namespace ppat::linalg
