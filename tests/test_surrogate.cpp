#include "tuner/surrogate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ppat::tuner {
namespace {

struct Task {
  std::vector<linalg::Vector> xs;
  linalg::Vector ys;
};

Task sample(double (*f)(double), std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  Task t;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform01();
    t.xs.push_back({x});
    t.ys.push_back(f(x));
  }
  return t;
}

double f_src(double x) { return std::cos(4.0 * x); }
double f_tgt(double x) { return std::cos(4.0 * x) - 0.2 * x; }

TEST(PlainGpSurrogate, FitPredictRoundTrip) {
  PlainGpSurrogate s;
  const auto t = sample(f_tgt, 12, 1);
  s.fit(t.xs, t.ys);
  EXPECT_EQ(s.num_target_points(), 12u);
  linalg::Vector means, vars;
  s.predict_batch(t.xs, means, vars);
  for (std::size_t i = 0; i < t.xs.size(); ++i) {
    EXPECT_NEAR(means[i], t.ys[i], 0.05);
    EXPECT_GE(vars[i], 0.0);
  }
}

TEST(PlainGpSurrogate, AddObservationGrows) {
  PlainGpSurrogate s;
  const auto t = sample(f_tgt, 5, 2);
  s.fit(t.xs, t.ys);
  s.add_observation({0.5}, f_tgt(0.5));
  EXPECT_EQ(s.num_target_points(), 6u);
}

TEST(TransferGpSurrogate, CarriesSourceData) {
  const auto src = sample(f_src, 40, 3);
  TransferGpSurrogate s(src.xs, src.ys);
  const auto t = sample(f_tgt, 4, 4);
  s.fit(t.xs, t.ys);
  common::Rng rng(5);
  s.refit_hyperparameters(rng);
  // With a strongly correlated source, mid-domain prediction should track
  // the target function despite only 4 target points.
  linalg::Vector means, vars;
  std::vector<linalg::Vector> queries;
  for (int i = 0; i < 20; ++i) queries.push_back({i / 19.0});
  s.predict_batch(queries, means, vars);
  double err = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    err += std::fabs(means[i] - f_tgt(queries[i][0]));
  }
  EXPECT_LT(err / 20.0, 0.15);
  EXPECT_GT(s.task_correlation(), 0.2);
}

TEST(SurrogateFactories, ProduceIndependentModels) {
  const auto bench_src = sample(f_src, 30, 6);
  SourceData data;
  data.xs = bench_src.xs;
  data.ys = {bench_src.ys, bench_src.ys};  // two objectives, same values
  auto factory = make_transfer_gp_factory(data);
  auto m0 = factory(0);
  auto m1 = factory(1);
  const auto t = sample(f_tgt, 6, 7);
  m0->fit(t.xs, t.ys);
  m1->fit(t.xs, t.ys);
  m0->add_observation({0.3}, f_tgt(0.3));
  EXPECT_EQ(m0->num_target_points(), 7u);
  EXPECT_EQ(m1->num_target_points(), 6u);  // untouched

  auto plain_factory = make_plain_gp_factory();
  auto p0 = plain_factory(0);
  p0->fit(t.xs, t.ys);
  EXPECT_EQ(p0->num_target_points(), 6u);
}

TEST(SurrogateFactories, ObjectiveIndexSelectsColumn) {
  SourceData data;
  data.xs = {{0.1}, {0.9}};
  data.ys = {{1.0, 2.0}, {100.0, 200.0}};  // objective 1 has a huge scale
  auto factory = make_transfer_gp_factory(data);
  auto m0 = factory(0);
  auto m1 = factory(1);
  // Both fit with a trivial target; predictions should live near their own
  // objective's scale.
  m0->fit({{0.5}}, {1.5});
  m1->fit({{0.5}}, {150.0});
  linalg::Vector mean0, var0, mean1, var1;
  m0->predict_batch({{0.5}}, mean0, var0);
  m1->predict_batch({{0.5}}, mean1, var1);
  EXPECT_LT(std::fabs(mean0[0]), 50.0);
  EXPECT_GT(mean1[0], 50.0);
}

}  // namespace
}  // namespace ppat::tuner
