#include "sample/constrained.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "hls/systolic.hpp"

namespace ppat::sample {
namespace {

flow::ParameterSpace tiny_discrete_space() {
  return flow::ParameterSpace({
      flow::ParamSpec::boolean("a"),
      flow::ParamSpec::enumeration("b", {"x", "y", "z"}),
  });
}

std::set<std::string> keys(const std::vector<flow::Config>& configs) {
  std::set<std::string> out;
  for (const auto& c : configs) {
    std::string k;
    for (double v : c) k += std::to_string(v) + "|";
    out.insert(k);
  }
  return out;
}

TEST(DedupConfigs, CollapsesQuantizationCollisionsInOrder) {
  std::vector<flow::Config> in = {{1.0, 2.0}, {0.0, 1.0}, {1.0, 2.0},
                                  {0.0, 1.0}, {0.0, 0.0}};
  const auto out = dedup_configs(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (flow::Config{1.0, 2.0}));  // first occurrence wins
  EXPECT_EQ(out[1], (flow::Config{0.0, 1.0}));
  EXPECT_EQ(out[2], (flow::Config{0.0, 0.0}));
}

// Asking for more designs than a tiny discrete space holds must terminate
// and return exactly the feasible set (collision top-up cannot loop forever).
TEST(ConstrainedLhs, ExhaustsTinyDiscreteSpace) {
  const auto space = tiny_discrete_space();
  common::Rng rng(5);
  const auto configs = constrained_lhs(space, 50, rng);
  EXPECT_EQ(configs.size(), 6u);  // 2 bools x 3 enum levels
  EXPECT_EQ(keys(configs).size(), 6u);
}

TEST(ConstrainedLhs, DeterministicUnderSeedAndDistinct) {
  const auto space = hls::systolic_space(hls::small_gemm());
  common::Rng a(42), b(42), c(43);
  const auto pa = constrained_lhs(space, 64, a);
  const auto pb = constrained_lhs(space, 64, b);
  const auto pc = constrained_lhs(space, 64, c);
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
  EXPECT_EQ(keys(pa).size(), pa.size());  // all unique after dedup
}

TEST(ConstrainedLhs, EveryDesignIsFeasible) {
  const auto space = hls::systolic_space(hls::small_gemm());
  ASSERT_TRUE(space.has_constraints());
  common::Rng rng(7);
  const auto configs = constrained_lhs(space, 200, rng);
  EXPECT_GE(configs.size(), 150u);  // collisions exist but must not dominate
  for (const auto& c : configs) {
    ASSERT_TRUE(space.is_feasible(c));
  }
}

TEST(ConstrainedSobol, FeasibleDeterministicAndDistinct) {
  const auto space = hls::systolic_space(hls::large_gemm());
  const auto pa = constrained_sobol(space, 64, 11);
  const auto pb = constrained_sobol(space, 64, 11);
  EXPECT_EQ(pa, pb);
  EXPECT_EQ(keys(pa).size(), pa.size());
  for (const auto& c : pa) {
    ASSERT_TRUE(space.is_feasible(c));
  }
}

TEST(EnumerateFeasible, CountsMatchConstraintStructure) {
  // parent in factors(6) = {1,2,3,6}; child divides parent:
  //   parent 1 -> {1}; 2 -> {1,2}; 3 -> {1,3}; 6 -> {1,2,3,6}  => 9 configs.
  const flow::ParameterSpace space({
      flow::ParamSpec::factors("parent", 6),
      flow::ParamSpec::factors("child", 6).divides("parent"),
  });
  const auto all = enumerate_feasible(space, 100);
  EXPECT_EQ(all.size(), 9u);
  for (const auto& c : all) {
    ASSERT_TRUE(space.is_feasible(c));
  }
}

TEST(EnumerateFeasible, InactiveSubtreeCollapses) {
  // toggle=0 pins the child at its canonical value: 4 + 4*2 = ... toggle
  // off -> child fixed (4 parents x 1), toggle on -> child ranges over
  // divisors (9 as above) => 4 + 9 = 13.
  const flow::ParameterSpace space({
      flow::ParamSpec::factors("parent", 6),
      flow::ParamSpec::boolean("toggle"),
      flow::ParamSpec::factors("child", 6).divides("parent").active_when(
          "toggle", 1.0),
  });
  const auto all = enumerate_feasible(space, 100);
  EXPECT_EQ(all.size(), 13u);
}

TEST(EnumerateFeasible, RejectsContinuousAndOverflow) {
  const flow::ParameterSpace with_float({
      flow::ParamSpec::real("r", 0.0, 1.0),
  });
  EXPECT_THROW(enumerate_feasible(with_float, 10), std::invalid_argument);
  EXPECT_THROW(enumerate_feasible(tiny_discrete_space(), 3),
               std::runtime_error);
}

}  // namespace
}  // namespace ppat::sample
