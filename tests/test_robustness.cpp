// Failure injection and degenerate-input robustness across modules: the
// library must fail loudly (typed exceptions) on structurally bad input and
// behave sanely on pathological-but-legal input (constant objectives,
// duplicate configurations, single-candidate pools).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "flow/benchmark.hpp"
#include "gp/transfer_gp.hpp"
#include "sta/optimizer.hpp"
#include "synthetic_benchmark.hpp"
#include "tuner/ppatuner.hpp"

namespace ppat {
namespace {

TEST(Robustness, BenchmarkCsvCorruptionDetected) {
  const auto dir = std::filesystem::temp_directory_path() / "ppat_robust";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "bad.csv").string();

  // Truncated header.
  {
    std::ofstream out(path);
    out << "p0,p1\n0.5,0.5\n";
  }
  EXPECT_THROW(flow::load_benchmark_csv(path, "bad",
                                        ppat::testing::synthetic_space()),
               std::runtime_error);

  // Right column count, wrong names.
  {
    std::ofstream out(path);
    out << "x0,x1,x2,area_um2,power_mw,delay_ns\n"
        << "0.5,0.5,0.5,1,2,3\n";
  }
  EXPECT_THROW(flow::load_benchmark_csv(path, "bad",
                                        ppat::testing::synthetic_space()),
               std::runtime_error);

  // Out-of-range parameter value.
  {
    std::ofstream out(path);
    out << "p0,p1,p2,area_um2,power_mw,delay_ns\n"
        << "7.0,0.5,0.5,1,2,3\n";
  }
  EXPECT_THROW(flow::load_benchmark_csv(path, "bad",
                                        ppat::testing::synthetic_space()),
               std::invalid_argument);
  std::filesystem::remove_all(dir);
}

TEST(Robustness, GpSurvivesConstantTargets) {
  // Constant y: sd = 0 -> standardization must not divide by zero, and
  // predictions must return the constant.
  gp::GaussianProcess model(
      std::make_unique<gp::SquaredExponentialKernel>(0.3, 1.0), 1e-4);
  model.fit({{0.1}, {0.5}, {0.9}}, {5.0, 5.0, 5.0});
  const auto p = model.predict({0.3});
  EXPECT_NEAR(p.mean, 5.0, 1e-6);
  EXPECT_TRUE(std::isfinite(p.variance));
}

TEST(Robustness, TransferGpSurvivesConstantSource) {
  gp::TransferGaussianProcess model(
      std::make_unique<gp::SquaredExponentialKernel>(0.3, 1.0));
  model.fit({{0.2}, {0.8}}, {1.0, 1.0}, {{0.4}, {0.6}}, {2.0, 3.0});
  common::Rng rng(1);
  model.optimize_hyperparameters(rng);
  const auto p = model.predict({0.5});
  EXPECT_TRUE(std::isfinite(p.mean));
  EXPECT_TRUE(std::isfinite(p.variance));
}

TEST(Robustness, TunerHandlesConstantObjectivePool) {
  // Every candidate has identical QoR: the front is one point; the tuner
  // must terminate and return something valid.
  flow::BenchmarkSet bench;
  bench.name = "flat";
  bench.space = ppat::testing::synthetic_space();
  common::Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    linalg::Vector u = {rng.uniform01(), rng.uniform01(), rng.uniform01()};
    bench.configs.push_back(bench.space.decode(u));
    bench.qor.push_back({100.0, 10.0, 1.0});
  }
  tuner::BenchmarkCandidatePool pool(&bench, tuner::kPowerDelay);
  tuner::PPATunerOptions opt;
  opt.max_runs = 25;
  opt.seed = 4;
  const auto result =
      tuner::run_ppatuner(pool, tuner::make_plain_gp_factory(), opt);
  ASSERT_FALSE(result.pareto_indices.empty());
  // All candidates are equivalent: any non-empty answer is a perfect front.
  std::vector<pareto::Point> approx;
  for (std::size_t i : result.pareto_indices) approx.push_back(pool.golden(i));
  EXPECT_DOUBLE_EQ(pareto::adrs(pool.golden_front(), approx), 0.0);
}

TEST(Robustness, TunerHandlesDuplicateConfigurations) {
  // The pool contains many exact duplicates: kernel matrices become
  // singular without jitter; the run must still complete.
  flow::BenchmarkSet bench;
  bench.name = "dups";
  bench.space = ppat::testing::synthetic_space();
  common::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    linalg::Vector u = {0.25, 0.5, 0.75};  // identical configs
    bench.configs.push_back(bench.space.decode(u));
    bench.qor.push_back(ppat::testing::synthetic_qor(u));
  }
  for (int i = 0; i < 40; ++i) {
    linalg::Vector u = {rng.uniform01(), rng.uniform01(), rng.uniform01()};
    bench.configs.push_back(bench.space.decode(u));
    bench.qor.push_back(
        ppat::testing::synthetic_qor(bench.space.encode(bench.configs.back())));
  }
  tuner::BenchmarkCandidatePool pool(&bench, tuner::kPowerDelay);
  tuner::PPATunerOptions opt;
  opt.max_runs = 30;
  opt.seed = 6;
  const auto result =
      tuner::run_ppatuner(pool, tuner::make_plain_gp_factory(), opt);
  EXPECT_FALSE(result.pareto_indices.empty());
}

TEST(Robustness, TinyPoolTerminates) {
  const auto bench = ppat::testing::synthetic_benchmark("tiny", 3, 7);
  tuner::BenchmarkCandidatePool pool(&bench, tuner::kPowerDelay);
  tuner::PPATunerOptions opt;
  opt.min_init = 2;
  opt.max_runs = 3;
  opt.seed = 8;
  const auto result =
      tuner::run_ppatuner(pool, tuner::make_plain_gp_factory(), opt);
  EXPECT_FALSE(result.pareto_indices.empty());
  EXPECT_LE(result.tool_runs, 3u);
}

TEST(Robustness, HypervolumeDegenerateReference) {
  // Golden front collapsed onto the reference: zero hypervolume must be
  // reported as an error, not silently divided by.
  const std::vector<pareto::Point> golden = {{1.0, 1.0}};
  EXPECT_THROW(pareto::hypervolume_error(golden, golden, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(Robustness, OptimizerOnSingleGateDesign) {
  const auto lib = netlist::CellLibrary::make_default();
  netlist::Netlist nl(&lib);
  const auto a = nl.add_primary_input();
  nl.add_instance(lib.find(netlist::CellFunction::kInv, 0), {a});
  std::vector<double> x = {0.0}, y = {0.0};
  std::vector<double> hpwl(nl.num_nets(), 1.0);
  sta::OptimizerOptions opt;
  const auto result = sta::optimize(nl, x, y, hpwl, sta::TimingOptions{}, opt);
  EXPECT_EQ(result.buffers_inserted, 0u);
  nl.validate();
}

}  // namespace
}  // namespace ppat
