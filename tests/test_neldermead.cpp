#include "linalg/neldermead.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ppat::linalg {
namespace {

TEST(NelderMead, MinimizesQuadratic) {
  auto f = [](const Vector& x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  const auto r = nelder_mead(f, {0.0, 0.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-3);
  EXPECT_NEAR(r.x[1], -1.0, 1e-3);
  EXPECT_LT(r.f, 1e-5);
}

TEST(NelderMead, MinimizesRosenbrock) {
  auto f = [](const Vector& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_evals = 2000;
  const auto r = nelder_mead(f, {-1.2, 1.0}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 0.05);
  EXPECT_NEAR(r.x[1], 1.0, 0.1);
}

TEST(NelderMead, RespectsEvalBudget) {
  std::size_t evals = 0;
  auto f = [&evals](const Vector& x) {
    ++evals;
    return x[0] * x[0];
  };
  NelderMeadOptions opt;
  opt.max_evals = 25;
  const auto r = nelder_mead(f, {10.0}, opt);
  // A few extra evaluations can occur inside a shrink step; bound loosely.
  EXPECT_LE(evals, 30u);
  EXPECT_EQ(r.evals, evals);
}

TEST(NelderMead, AvoidsInfeasibleRegion) {
  // +inf outside x > 0: the simplex must stay on the feasible side.
  auto f = [](const Vector& x) {
    if (x[0] <= 0.0) return std::numeric_limits<double>::infinity();
    return (std::log(x[0]) - 1.0) * (std::log(x[0]) - 1.0);
  };
  const auto r = nelder_mead(f, {1.0});
  EXPECT_NEAR(r.x[0], std::exp(1.0), 0.05);
}

TEST(NelderMead, NanTreatedAsInfeasible) {
  auto f = [](const Vector& x) {
    if (x[0] < 0.0) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 0.5) * (x[0] - 0.5);
  };
  const auto r = nelder_mead(f, {1.0});
  EXPECT_NEAR(r.x[0], 0.5, 1e-2);
}

TEST(NelderMead, ConvergedFlagOnEasyProblem) {
  auto f = [](const Vector& x) { return x[0] * x[0] + x[1] * x[1]; };
  NelderMeadOptions opt;
  opt.max_evals = 5000;
  const auto r = nelder_mead(f, {3.0, -4.0}, opt);
  EXPECT_TRUE(r.converged);
}

TEST(NelderMead, HandlesZeroStartPoint) {
  auto f = [](const Vector& x) { return (x[0] - 1.0) * (x[0] - 1.0); };
  const auto r = nelder_mead(f, {0.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
}

}  // namespace
}  // namespace ppat::linalg
