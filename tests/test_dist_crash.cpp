// Kill-and-resume integration tests for the distributed oracle fleet — the
// two halves of its headline guarantee:
//
//   --scenario worker       a worker PROCESS is SIGKILLed mid-run (via
//                           ppatuner_worker --kill-after). The batch must
//                           complete on the survivors, the killed job costs
//                           exactly one retry, every QoR is bitwise equal to
//                           the in-process EvalService reference, and the
//                           ledger holds exactly one outcome per candidate.
//
//   --scenario coordinator  the COORDINATOR is SIGKILLed mid-batch (a
//                           --child re-execution of this binary raises
//                           SIGKILL from the run observer, i.e. after the
//                           ledger append). A resume against the same ledger
//                           must finish bitwise-identical to an
//                           uninterrupted run AND must not double-spend: no
//                           candidate recorded by run 1 may ever be started
//                           by a run-2 worker (audited via --eval-log, which
//                           is flushed before each evaluation begins).
//
// Standalone binary (NOT part of ppat_tests): it re-executes itself via
// /proc/self/exe as a child that self-SIGKILLs, which must not happen inside
// the shared gtest process.
//
//   test_dist_crash --scenario worker|coordinator --worker-bin PATH
//     [--seed S] [--scratch DIR] [--child 1]
//
// On failure the scratch directory (PPAT_CRASH_SCRATCH or
// ./dist_crash_scratch) is kept for inspection, ledger and eval logs
// included.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/oracles.hpp"
#include "flow/eval_service.hpp"
#include "journal/reveal_ledger.hpp"

namespace {

namespace fs = std::filesystem;
using namespace ppat;

constexpr std::size_t kDim = 3;
constexpr std::size_t kBatch = 16;
constexpr std::size_t kKillAfterRecords = 5;  // coordinator scenario

int g_failures = 0;

#define CHECK(cond, msg)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK FAILED (%s:%d): %s\n", __FILE__,          \
                   __LINE__, msg);                                          \
      ++g_failures;                                                         \
    }                                                                       \
  } while (0)

/// Deterministic candidate batch — must be reproduced identically by the
/// parent and the --child re-execution (same binary, same seed).
std::vector<flow::Config> make_batch(const flow::ParameterSpace& space,
                                     std::uint64_t seed) {
  std::vector<flow::Config> configs;
  configs.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    linalg::Vector u(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      u[d] = std::fmod(0.41 + 0.57 * static_cast<double>(i * 5 + d) +
                           1e-3 * static_cast<double>(seed % 89),
                       1.0);
    }
    configs.push_back(space.decode(u));
  }
  return configs;
}

/// Uninterrupted in-process reference over the SAME oracle translation
/// unit the workers link — bitwise comparison is meaningful.
std::vector<flow::RunRecord> reference_records(
    const flow::ParameterSpace& space,
    const std::vector<flow::Config>& configs, std::uint64_t seed) {
  dist::SyntheticOracle oracle(seed);
  flow::EvalService service(oracle, space);
  return service.evaluate_batch(configs);
}

void check_qor_parity(const std::vector<flow::RunRecord>& got,
                      const std::vector<flow::RunRecord>& want) {
  CHECK(got.size() == want.size(), "record count mismatch");
  for (std::size_t i = 0; i < got.size() && i < want.size(); ++i) {
    CHECK(got[i].status == want[i].status, "status mismatch");
    CHECK(got[i].qor.area_um2 == want[i].qor.area_um2, "area not bitwise");
    CHECK(got[i].qor.power_mw == want[i].qor.power_mw, "power not bitwise");
    CHECK(got[i].qor.delay_ns == want[i].qor.delay_ns, "delay not bitwise");
  }
}

/// Job indices (= batch indices) a worker's eval log says it ever started.
std::set<std::size_t> started_jobs(const std::string& log_path) {
  std::set<std::size_t> jobs;
  std::ifstream in(log_path);
  std::size_t job = 0;
  unsigned attempt = 0;
  while (in >> job >> attempt) jobs.insert(job);
  return jobs;
}

// ---- scenario: SIGKILLed worker -------------------------------------------

int run_worker_scenario(const fs::path& scratch,
                        const std::string& worker_bin, std::uint64_t seed) {
  const auto space = dist::unit_cube_space(kDim);
  const auto configs = make_batch(space, seed);
  const auto want = reference_records(space, configs, seed);

  const std::string ledger_path = (scratch / "worker_ledger.bin").string();
  std::vector<flow::RunRecord> got;
  dist::DistributedStats stats;
  {
    dist::DistributedOptions dopt;
    dopt.socket_path = (scratch / "worker.sock").string();
    dopt.ledger_path = ledger_path;
    dist::DistributedEvalService coord(space, dopt);
    // Three workers; the first SIGKILLs itself upon receiving its third
    // request, mid-batch. 10 ms per eval keeps all three genuinely busy so
    // the doomed one is guaranteed to reach request #3.
    coord.spawn_local_worker(
        worker_bin, {"--seed", std::to_string(seed), "--sleep-ms", "10",
                     "--kill-after", "3"});
    for (int w = 0; w < 2; ++w) {
      coord.spawn_local_worker(
          worker_bin, {"--seed", std::to_string(seed), "--sleep-ms", "10"});
    }
    if (!coord.wait_for_workers(3, std::chrono::seconds(15))) {
      std::fprintf(stderr, "workers failed to connect\n");
      return 1;
    }
    got = coord.evaluate_batch(configs);
    stats = coord.stats();
  }

  std::size_t retried = 0;
  for (const auto& r : got) {
    CHECK(r.ok(), "record not ok after worker death");
    if (r.attempts == 2) ++retried;
  }
  CHECK(retried == 1, "worker death must cost exactly one retry");
  CHECK(stats.worker_deaths >= 1, "worker death not observed");
  check_qor_parity(got, want);

  // Exactly one ledger outcome per candidate, matching what was returned.
  auto ledger = journal::RevealLedger::open(ledger_path);
  CHECK(ledger->size() == configs.size(), "ledger must hold every outcome");
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto* rec = ledger->find(dist::config_digest(configs[i]));
    CHECK(rec != nullptr, "candidate missing from ledger");
    if (rec != nullptr && rec->ok() && rec->values.size() == 3) {
      CHECK(rec->values[0] == got[i].qor.area_um2, "ledger area mismatch");
      CHECK(rec->values[1] == got[i].qor.power_mw, "ledger power mismatch");
      CHECK(rec->values[2] == got[i].qor.delay_ns, "ledger delay mismatch");
    }
  }
  return g_failures == 0 ? 0 : 1;
}

// ---- scenario: SIGKILLed coordinator --------------------------------------

/// The --child body: runs a coordinator against the shared ledger and
/// raises SIGKILL from the observer of the Nth finalized record — AFTER the
/// ledger append (finalize orders ledger-then-observer), so exactly N
/// outcomes are durable when the process dies.
int run_coordinator_child(const fs::path& scratch,
                          const std::string& worker_bin, std::uint64_t seed) {
  const auto space = dist::unit_cube_space(kDim);
  const auto configs = make_batch(space, seed);

  dist::DistributedOptions dopt;
  dopt.socket_path = (scratch / "coord1.sock").string();
  dopt.ledger_path = (scratch / "coord_ledger.bin").string();
  dist::DistributedEvalService coord(space, dopt);
  for (int w = 0; w < 2; ++w) {
    coord.spawn_local_worker(
        worker_bin,
        {"--seed", std::to_string(seed), "--sleep-ms", "20", "--eval-log",
         (scratch / ("run1-w" + std::to_string(w) + ".log")).string()});
  }
  if (!coord.wait_for_workers(2, std::chrono::seconds(15))) {
    std::fprintf(stderr, "child: workers failed to connect\n");
    return 1;
  }
  std::size_t finalized = 0;
  coord.evaluate_batch(configs,
                       [&finalized](std::size_t, const flow::RunRecord&) {
                         if (++finalized >= kKillAfterRecords) {
                           std::raise(SIGKILL);
                         }
                       });
  std::fprintf(stderr, "child: survived past the kill point\n");
  return 1;  // unreachable when the kill fires as intended
}

int run_coordinator_scenario(const fs::path& scratch,
                             const std::string& worker_bin,
                             std::uint64_t seed) {
  const auto space = dist::unit_cube_space(kDim);
  const auto configs = make_batch(space, seed);
  const auto want = reference_records(space, configs, seed);
  const std::string ledger_path = (scratch / "coord_ledger.bin").string();

  // Run 1: a child coordinator that self-SIGKILLs mid-batch.
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    ::execl("/proc/self/exe", "test_dist_crash", "--scenario", "coordinator",
            "--child", "1", "--worker-bin", worker_bin.c_str(), "--seed",
            std::to_string(seed).c_str(), "--scratch",
            scratch.string().c_str(), static_cast<char*>(nullptr));
    std::perror("execl");
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
        "child coordinator must die by SIGKILL");

  // What run 1 durably recorded: those candidates are SPENT.
  std::set<std::size_t> spent;
  {
    auto ledger = journal::RevealLedger::open(ledger_path);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (ledger->find(dist::config_digest(configs[i])) != nullptr) {
        spent.insert(i);
      }
    }
    CHECK(spent.size() >= kKillAfterRecords,
          "kill fired before the observer saw the Nth record");
    CHECK(spent.size() < configs.size(),
          "kill fired too late to leave unfinished work");
  }

  // Run 2: resume against the same ledger with a fresh fleet on a fresh
  // socket. Run-1's orphaned workers exit on their own when they see EOF
  // from the dead coordinator; they hold no state and cannot interfere.
  std::vector<flow::RunRecord> got;
  dist::DistributedStats stats;
  {
    dist::DistributedOptions dopt;
    dopt.socket_path = (scratch / "coord2.sock").string();
    dopt.ledger_path = ledger_path;
    dist::DistributedEvalService coord(space, dopt);
    for (int w = 0; w < 2; ++w) {
      coord.spawn_local_worker(
          worker_bin,
          {"--seed", std::to_string(seed), "--sleep-ms", "20", "--eval-log",
           (scratch / ("run2-w" + std::to_string(w) + ".log")).string()});
    }
    if (!coord.wait_for_workers(2, std::chrono::seconds(15))) {
      std::fprintf(stderr, "resume: workers failed to connect\n");
      return 1;
    }
    got = coord.evaluate_batch(configs);
    stats = coord.stats();
  }

  // Bitwise resume: the interrupted-then-resumed run equals the
  // uninterrupted reference, attempts included (fault-free workers).
  for (const auto& r : got) {
    CHECK(r.ok(), "resumed record not ok");
    CHECK(r.attempts == 1, "resumed record attempts != 1");
  }
  check_qor_parity(got, want);
  CHECK(stats.reveals_replayed == spent.size(),
        "every recorded outcome must be served from the ledger");

  // Exactly-once: no candidate recorded by run 1 was ever STARTED by a
  // run-2 worker. The eval logs are flushed before evaluation begins, so
  // they are a superset of run-2's tool runs.
  std::set<std::size_t> restarted;
  for (int w = 0; w < 2; ++w) {
    const auto jobs = started_jobs(
        (scratch / ("run2-w" + std::to_string(w) + ".log")).string());
    restarted.insert(jobs.begin(), jobs.end());
  }
  for (std::size_t idx : spent) {
    CHECK(restarted.count(idx) == 0,
          "double-spend: a ledger-recorded candidate was re-run");
  }
  // And run 2 did run everything that was NOT recorded.
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (spent.count(i) == 0) {
      CHECK(restarted.count(i) == 1, "unrecorded candidate never re-run");
    }
  }
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario;
  std::string worker_bin;
  std::string scratch_arg;
  std::uint64_t seed = 20260807;
  bool child = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario = value();
    } else if (arg == "--worker-bin") {
      worker_bin = value();
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--scratch") {
      scratch_arg = value();
    } else if (arg == "--child") {
      child = std::strtol(value(), nullptr, 10) != 0;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (worker_bin.empty() ||
      (scenario != "worker" && scenario != "coordinator")) {
    std::fprintf(stderr,
                 "usage: %s --scenario worker|coordinator --worker-bin PATH "
                 "[--seed S] [--scratch DIR]\n",
                 argv[0]);
    return 2;
  }

  fs::path scratch;
  if (!scratch_arg.empty()) {
    scratch = scratch_arg;
  } else if (const char* env = std::getenv("PPAT_CRASH_SCRATCH")) {
    scratch = fs::path(env) / ("dist_" + scenario);
  } else {
    scratch = fs::path("dist_crash_scratch") / scenario;
  }

  if (child) {
    // The child reuses the parent's scratch verbatim (shared ledger).
    return run_coordinator_child(scratch, worker_bin, seed);
  }

  std::error_code ec;
  fs::remove_all(scratch, ec);
  fs::create_directories(scratch);

  const int rc = scenario == "worker"
                     ? run_worker_scenario(scratch, worker_bin, seed)
                     : run_coordinator_scenario(scratch, worker_bin, seed);
  if (rc == 0) {
    fs::remove_all(scratch, ec);
    std::printf("test_dist_crash %s: OK\n", scenario.c_str());
  } else {
    std::fprintf(stderr, "test_dist_crash %s: FAILED (scratch kept at %s)\n",
                 scenario.c_str(), scratch.string().c_str());
  }
  return rc;
}
