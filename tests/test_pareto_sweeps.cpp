// Sweep-based Pareto machinery vs the pairwise/recursive references: the
// fronts and batched dominance queries must match the O(n^2) oracles
// EXACTLY (same indices, same order) including duplicate and tied inputs,
// and the 3-D hypervolume sweep must agree with the recursive slicer to
// rounding. These are the primitives the tuner's per-round decision passes
// are built on, so exactness here is what keeps the fast tuner paths
// bit-identical to the legacy loop.
#include "pareto/pareto.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace ppat::pareto {
namespace {

/// Random points with heavy coordinate collisions: rounding to a coarse
/// grid manufactures exact duplicates and per-coordinate ties, the inputs
/// where sweep/reference divergence would hide.
std::vector<Point> gridded_points(std::size_t n, std::size_t d,
                                  common::Rng& rng, double cells) {
  std::vector<Point> pts(n, Point(d));
  for (auto& p : pts) {
    for (double& v : p) v = std::round(rng.uniform01() * cells) / cells;
  }
  return pts;
}

TEST(ParetoSweeps, FrontMatchesReference2D3D) {
  common::Rng rng(17);
  for (std::size_t d : {2u, 3u}) {
    for (std::size_t n : {0u, 1u, 2u, 7u, 60u, 300u}) {
      for (double cells : {4.0, 1000.0}) {
        const auto pts = gridded_points(n, d, rng, cells);
        for (auto policy :
             {DuplicatePolicy::kKeepAll, DuplicatePolicy::kFirstOnly}) {
          EXPECT_EQ(nondominated_positions(pts, policy),
                    nondominated_positions_reference(pts, policy))
              << "d=" << d << " n=" << n << " cells=" << cells;
        }
        EXPECT_EQ(pareto_front_indices(pts),
                  pareto_front_indices_reference(pts));
      }
    }
  }
}

TEST(ParetoSweeps, DuplicatePolicies) {
  const std::vector<Point> pts = {{1, 1}, {1, 1}, {2, 0}, {0, 2}, {3, 3}};
  // (3,3) is dominated; both copies of (1,1) survive under kKeepAll.
  EXPECT_EQ(nondominated_positions(pts, DuplicatePolicy::kKeepAll),
            (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(nondominated_positions(pts, DuplicatePolicy::kFirstOnly),
            (std::vector<std::size_t>{0, 2, 3}));

  const std::vector<Point> dominated_dups = {{0, 0}, {1, 1}, {1, 1}};
  EXPECT_EQ(nondominated_positions(dominated_dups, DuplicatePolicy::kKeepAll),
            (std::vector<std::size_t>{0}));
}

TEST(ParetoSweeps, FourDimensionsUseReferencePath) {
  common::Rng rng(23);
  const auto pts = gridded_points(80, 4, rng, 6.0);
  for (auto policy :
       {DuplicatePolicy::kKeepAll, DuplicatePolicy::kFirstOnly}) {
    EXPECT_EQ(nondominated_positions(pts, policy),
              nondominated_positions_reference(pts, policy));
  }
}

TEST(ParetoSweeps, WeakDominanceQueriesMatchBruteForce) {
  common::Rng rng(31);
  for (std::size_t d : {2u, 3u, 4u}) {
    for (std::size_t ns : {0u, 1u, 40u, 200u}) {
      const auto set = gridded_points(ns, d, rng, 5.0);
      const auto queries = gridded_points(120, d, rng, 5.0);
      const auto fast = weakly_dominated_queries(set, queries);
      ASSERT_EQ(fast.size(), queries.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        char want = 0;
        for (const Point& s : set) {
          bool leq = true;
          for (std::size_t k = 0; k < d; ++k) leq = leq && s[k] <= queries[q][k];
          if (leq) {
            want = 1;
            break;
          }
        }
        EXPECT_EQ(fast[q], want) << "d=" << d << " ns=" << ns << " q=" << q;
      }
    }
  }
}

TEST(ParetoSweeps, QueryEqualsSetPointIsWeaklyDominated) {
  // Weak dominance: a set point equal to the query counts (the tuner
  // resolves self-hits separately via its front-membership fallback).
  const std::vector<Point> set = {{1, 2, 3}};
  const std::vector<Point> queries = {{1, 2, 3}, {1, 2, 2.9}};
  const auto hit = weakly_dominated_queries(set, queries);
  EXPECT_EQ(hit[0], 1);
  EXPECT_EQ(hit[1], 0);
}

TEST(HypervolumeSweep, ThreeDMatchesRecursiveSlicer) {
  common::Rng rng(41);
  for (std::size_t n : {1u, 2u, 10u, 80u, 250u}) {
    for (double cells : {3.0, 1000.0}) {  // coarse grid: ties and duplicates
      const auto pts = gridded_points(n, 3, rng, cells);
      const Point ref = reference_point(pts);
      const double sweep = hypervolume(pts, ref);
      const double slicer = hypervolume_reference(pts, ref);
      EXPECT_NEAR(sweep, slicer, 1e-9 * std::max(1.0, std::fabs(slicer)))
          << "n=" << n << " cells=" << cells;
    }
  }
}

TEST(HypervolumeSweep, KnownValues3D) {
  // Single corner box.
  EXPECT_DOUBLE_EQ(hypervolume({{0, 0, 0}}, {1, 1, 1}), 1.0);
  // Two overlapping boxes: 2x1x1 + 1x2x1 - 1x1x1 overlap = 3.
  EXPECT_DOUBLE_EQ(hypervolume({{0, 1, 1}, {1, 0, 1}}, {2, 2, 2}), 3.0);
  // Dominated point adds nothing.
  EXPECT_DOUBLE_EQ(hypervolume({{0, 0, 0}, {0.5, 0.5, 0.5}}, {1, 1, 1}), 1.0);
  // Duplicates add nothing.
  EXPECT_DOUBLE_EQ(hypervolume({{0, 0, 0}, {0, 0, 0}}, {1, 1, 1}), 1.0);
  // All points share one z level (degenerate staircase growth).
  EXPECT_DOUBLE_EQ(hypervolume({{0, 1, 0}, {1, 0, 0}}, {2, 2, 1}), 3.0);
  // Points at/beyond the reference are clipped away entirely.
  EXPECT_DOUBLE_EQ(hypervolume({{1, 0, 0}, {2, 2, 2}}, {1, 1, 1}), 0.0);
}

TEST(HypervolumeSweep, TwoAndFourDUnchangedBitwise) {
  common::Rng rng(47);
  {
    const auto pts = gridded_points(120, 2, rng, 7.0);
    const Point ref = reference_point(pts);
    EXPECT_EQ(hypervolume(pts, ref), hypervolume_reference(pts, ref));
  }
  {
    const auto pts = gridded_points(40, 4, rng, 5.0);
    const Point ref = reference_point(pts);
    EXPECT_EQ(hypervolume(pts, ref), hypervolume_reference(pts, ref));
  }
}

}  // namespace
}  // namespace ppat::pareto
