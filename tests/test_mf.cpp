#include "mf/matrix_factorization.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace ppat::mf {
namespace {

/// Synthetic low-rank matrix: r(u, i) = bias_u + bias_i + p_u . q_i.
struct Synthetic {
  std::size_t rows, cols;
  std::vector<Observation> train, test;
};

Synthetic make_synthetic(std::size_t rows, std::size_t cols,
                         double observed_fraction, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> bu(rows), bi(cols);
  std::vector<std::array<double, 2>> pu(rows), qi(cols);
  for (auto& b : bu) b = rng.normal(0.0, 1.0);
  for (auto& b : bi) b = rng.normal(0.0, 1.0);
  for (auto& p : pu) p = {rng.normal(), rng.normal()};
  for (auto& q : qi) q = {rng.normal(), rng.normal()};
  Synthetic s;
  s.rows = rows;
  s.cols = cols;
  for (std::size_t u = 0; u < rows; ++u) {
    for (std::size_t i = 0; i < cols; ++i) {
      const double v =
          10.0 + bu[u] + bi[i] + pu[u][0] * qi[i][0] + pu[u][1] * qi[i][1];
      Observation ob{u, i, v};
      (rng.uniform01() < observed_fraction ? s.train : s.test).push_back(ob);
    }
  }
  return s;
}

TEST(MatrixFactorization, FitsObservedEntries) {
  const auto s = make_synthetic(10, 40, 0.6, 1);
  MatrixFactorization mf;
  mf.fit(s.rows, s.cols, s.train);
  EXPECT_LT(mf.rmse(s.train), 0.25);
}

TEST(MatrixFactorization, GeneralizesToHeldOut) {
  const auto s = make_synthetic(10, 40, 0.6, 2);
  MatrixFactorization mf;
  MfOptions opt;
  opt.epochs = 300;
  mf.fit(s.rows, s.cols, s.train, opt);
  // Held-out entries predicted well below the data's own std (~2).
  EXPECT_LT(mf.rmse(s.test), 1.0);
}

TEST(MatrixFactorization, SparseTargetRowCompletedFromDenseSource) {
  // The DAC'19 usage pattern: row 0 fully observed, row 1 sparse.
  common::Rng rng(3);
  const std::size_t cols = 60;
  std::vector<Observation> train, test;
  for (std::size_t c = 0; c < cols; ++c) {
    const double base = rng.normal(0.0, 2.0);
    train.push_back({0, c, 5.0 + base});
    // Target row = source row shifted: perfectly correlated tasks.
    const Observation tgt{1, c, 8.0 + base};
    (c % 6 == 0 ? train : test).push_back(tgt);
  }
  MatrixFactorization mf;
  MfOptions opt;
  opt.epochs = 400;
  mf.fit(2, cols, train, opt);
  EXPECT_LT(mf.rmse(test), 1.2);
}

TEST(MatrixFactorization, DeterministicGivenSeed) {
  const auto s = make_synthetic(5, 20, 0.7, 4);
  MfOptions opt;
  opt.seed = 9;
  MatrixFactorization a, b;
  a.fit(s.rows, s.cols, s.train, opt);
  b.fit(s.rows, s.cols, s.train, opt);
  EXPECT_DOUBLE_EQ(a.predict(1, 3), b.predict(1, 3));
}

TEST(MatrixFactorization, InputValidation) {
  MatrixFactorization mf;
  EXPECT_THROW(mf.fit(2, 2, {}), std::invalid_argument);
  EXPECT_THROW(mf.fit(2, 2, {{5, 0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(mf.predict(0, 0), std::runtime_error);
}

TEST(MatrixFactorization, RmseOfEmptySetIsZero) {
  const auto s = make_synthetic(4, 10, 1.0, 5);
  MatrixFactorization mf;
  mf.fit(s.rows, s.cols, s.train);
  EXPECT_DOUBLE_EQ(mf.rmse({}), 0.0);
}

}  // namespace
}  // namespace ppat::mf
