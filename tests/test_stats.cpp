#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ppat::common {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceIsUnbiased) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known dataset: population variance 4, sample variance 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, VarianceDegenerateCases) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, RanksWithTies) {
  const std::vector<double> xs = {10.0, 30.0, 20.0, 20.0};
  const auto r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
  EXPECT_DOUBLE_EQ(r[2], 1.5);
  EXPECT_DOUBLE_EQ(r[3], 1.5);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(std::exp(x));  // monotone, nonlinear
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, RunningStatsEmptyAndSingle) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace ppat::common
