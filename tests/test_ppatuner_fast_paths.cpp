// End-to-end bit-parity of the tuner's perf ablation switches: every
// combination of {posterior cache, sweep fronts, tiled prediction} must
// produce the SAME TuningResult (identical pareto indices, run counts,
// diagnostics) as the all-off legacy path — across batch sizes, objective
// counts, surrogate families, and refit cadences. This is the acceptance
// gate that lets the fast paths ship default-on.
#include <gtest/gtest.h>

#include <vector>

#include "synthetic_benchmark.hpp"
#include "tuner/ppatuner.hpp"

namespace ppat::tuner {
namespace {

struct Flags {
  bool cache;
  bool fronts;
  bool tiled;
};

struct Observed {
  TuningResult result;
  PPATunerDiagnostics diag;
};

class FastPathParityTest : public ::testing::Test {
 protected:
  FastPathParityTest()
      : source_(testing::synthetic_benchmark("src", 300, 11, 0.3)),
        target_(testing::synthetic_benchmark("tgt", 400, 12, 0.0)) {}

  SourceData source_data(const std::vector<std::size_t>& objectives) {
    return SourceData::from_benchmark(source_, objectives, 150, 5);
  }

  static PPATunerOptions base_options(std::size_t batch) {
    PPATunerOptions opt;
    opt.seed = 42;
    opt.batch_size = batch;
    opt.min_init = 15;
    opt.init_fraction = 0.0;
    opt.refit_every = 4;  // several refits per run: epoch invalidation runs
    opt.max_runs = 60;
    opt.max_rounds = 20;
    return opt;
  }

  Observed run(const std::vector<std::size_t>& objectives,
               const SurrogateFactory& factory, PPATunerOptions opt,
               Flags flags) {
    opt.use_prediction_cache = flags.cache;
    opt.use_fast_fronts = flags.fronts;
    opt.tiled_prediction = flags.tiled;
    BenchmarkCandidatePool pool(&target_, objectives);
    Observed out;
    out.result = run_ppatuner(pool, factory, opt, &out.diag);
    return out;
  }

  static void expect_identical(const Observed& fast, const Observed& legacy) {
    EXPECT_EQ(fast.result.pareto_indices, legacy.result.pareto_indices);
    EXPECT_EQ(fast.result.tool_runs, legacy.result.tool_runs);
    EXPECT_EQ(fast.result.failed_runs, legacy.result.failed_runs);
    EXPECT_EQ(fast.diag.rounds, legacy.diag.rounds);
    EXPECT_EQ(fast.diag.dropped, legacy.diag.dropped);
    EXPECT_EQ(fast.diag.classified_pareto, legacy.diag.classified_pareto);
    EXPECT_EQ(fast.diag.undecided, legacy.diag.undecided);
    ASSERT_EQ(fast.diag.task_correlations.size(),
              legacy.diag.task_correlations.size());
    for (std::size_t k = 0; k < fast.diag.task_correlations.size(); ++k) {
      EXPECT_EQ(fast.diag.task_correlations[k],
                legacy.diag.task_correlations[k]);
    }
  }

  flow::BenchmarkSet source_, target_;
};

constexpr Flags kAllOn{true, true, true};
constexpr Flags kAllOff{false, false, false};

TEST_F(FastPathParityTest, TransferThreeObjectivesAcrossBatchSizes) {
  const auto factory = make_transfer_gp_factory(source_data(kAreaPowerDelay));
  for (std::size_t batch : {1u, 4u, 16u}) {
    const auto opt = base_options(batch);
    const auto fast = run(kAreaPowerDelay, factory, opt, kAllOn);
    const auto legacy = run(kAreaPowerDelay, factory, opt, kAllOff);
    SCOPED_TRACE(::testing::Message() << "batch=" << batch);
    expect_identical(fast, legacy);
    EXPECT_FALSE(fast.result.pareto_indices.empty());
  }
}

TEST_F(FastPathParityTest, TransferTwoObjectives) {
  // 2-objective fronts take the running-min sweep instead of the staircase.
  const auto factory = make_transfer_gp_factory(source_data(kAreaDelay));
  const auto opt = base_options(4);
  expect_identical(run(kAreaDelay, factory, opt, kAllOn),
                   run(kAreaDelay, factory, opt, kAllOff));
}

TEST_F(FastPathParityTest, PlainGpSurrogates) {
  const auto factory = make_plain_gp_factory();
  const auto opt = base_options(4);
  expect_identical(run(kPowerDelay, factory, opt, kAllOn),
                   run(kPowerDelay, factory, opt, kAllOff));
}

TEST_F(FastPathParityTest, EachFlagIndependently) {
  // Each switch alone must already be bit-neutral, not just the ensemble.
  const auto factory = make_transfer_gp_factory(source_data(kAreaPowerDelay));
  const auto opt = base_options(4);
  const auto legacy = run(kAreaPowerDelay, factory, opt, kAllOff);
  const Flags singles[] = {
      {true, false, false}, {false, true, false}, {false, false, true}};
  for (const Flags& f : singles) {
    SCOPED_TRACE(::testing::Message() << "cache=" << f.cache << " fronts="
                                      << f.fronts << " tiled=" << f.tiled);
    expect_identical(run(kAreaPowerDelay, factory, opt, f), legacy);
  }
}

}  // namespace
}  // namespace ppat::tuner
