#include "flow/pd_tool.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flow/benchmark.hpp"

namespace ppat::flow {
namespace {

class PdToolTest : public ::testing::Test {
 protected:
  PdToolTest() : lib_(netlist::CellLibrary::make_default()) {
    // Large enough that the DRV parameter ranges genuinely bind (broadcast
    // fanout 60, loads tens of fF), small enough that each flow run is
    // a few milliseconds.
    cfg_.operand_bits = 10;
    cfg_.lanes = 6;
    cfg_.pipeline_stages = 1;
  }
  netlist::CellLibrary lib_;
  netlist::MacConfig cfg_;
};

TEST_F(PdToolTest, QorAccessors) {
  QoR q{10.0, 2.0, 0.5};
  EXPECT_DOUBLE_EQ(q.metric(0), 10.0);
  EXPECT_DOUBLE_EQ(q.metric(1), 2.0);
  EXPECT_DOUBLE_EQ(q.metric(2), 0.5);
  EXPECT_STREQ(QoR::metric_name(0), "area");
  EXPECT_STREQ(QoR::metric_name(2), "delay");
  EXPECT_THROW(q.metric(3), std::out_of_range);
}

TEST_F(PdToolTest, DeterministicAcrossRuns) {
  PDTool tool(&lib_, cfg_, 7);
  const auto space = source1_space();
  const Config c = space.decode(linalg::Vector(space.size(), 0.5));
  const QoR q1 = tool.evaluate(space, c);
  const QoR q2 = tool.evaluate(space, c);
  EXPECT_DOUBLE_EQ(q1.area_um2, q2.area_um2);
  EXPECT_DOUBLE_EQ(q1.power_mw, q2.power_mw);
  EXPECT_DOUBLE_EQ(q1.delay_ns, q2.delay_ns);
}

TEST_F(PdToolTest, DeterministicAcrossInstances) {
  PDTool tool1(&lib_, cfg_, 7);
  PDTool tool2(&lib_, cfg_, 7);
  const auto space = target2_space();
  const Config c = space.decode(linalg::Vector(space.size(), 0.3));
  const QoR q1 = tool1.evaluate(space, c);
  const QoR q2 = tool2.evaluate(space, c);
  EXPECT_DOUBLE_EQ(q1.delay_ns, q2.delay_ns);
}

TEST_F(PdToolTest, RunCounterIncrements) {
  PDTool tool(&lib_, cfg_, 7);
  const auto space = source2_space();
  const Config c = space.decode(linalg::Vector(space.size(), 0.5));
  EXPECT_EQ(tool.run_count(), 0u);
  tool.evaluate(space, c);
  tool.evaluate(space, c);
  EXPECT_EQ(tool.run_count(), 2u);
}

TEST_F(PdToolTest, QorValuesArePhysical) {
  PDTool tool(&lib_, cfg_, 7);
  const auto space = target1_space();
  common::Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    linalg::Vector u(space.size());
    for (auto& v : u) v = rng.uniform01();
    const QoR q = tool.evaluate(space, space.decode(u));
    EXPECT_GT(q.area_um2, 0.0);
    EXPECT_GT(q.power_mw, 0.0);
    EXPECT_GT(q.delay_ns, 0.0);
    EXPECT_LT(q.delay_ns, 100.0);  // sanity: ns-scale paths
  }
}

TEST_F(PdToolTest, TightTransitionLimitTradesAreaForDelay) {
  PDTool tool(&lib_, cfg_, 7);
  const auto space = target1_space();
  linalg::Vector mid(space.size(), 0.5);
  const std::size_t idx = space.index_of("max_transition");
  ASSERT_NE(idx, ParameterSpace::npos);
  auto tight_u = mid;
  tight_u[idx] = 0.0;
  auto loose_u = mid;
  loose_u[idx] = 1.0;
  const QoR tight = tool.evaluate(space, space.decode(tight_u));
  const QoR loose = tool.evaluate(space, space.decode(loose_u));
  EXPECT_LT(tight.delay_ns, loose.delay_ns);
  EXPECT_GT(tight.area_um2, loose.area_um2);
}

TEST_F(PdToolTest, HigherUtilizationShrinksArea) {
  PDTool tool(&lib_, cfg_, 7);
  const auto space = target2_space();
  linalg::Vector mid(space.size(), 0.5);
  const std::size_t idx = space.index_of("max_Density");
  ASSERT_NE(idx, ParameterSpace::npos);
  auto low_u = mid;
  low_u[idx] = 0.05;
  auto high_u = mid;
  high_u[idx] = 0.95;
  const QoR low = tool.evaluate(space, space.decode(low_u));
  const QoR high = tool.evaluate(space, space.decode(high_u));
  EXPECT_GT(low.area_um2, high.area_um2);
}

TEST_F(PdToolTest, HigherFrequencyCostsPower) {
  PDTool tool(&lib_, cfg_, 7);
  const auto space = target1_space();
  linalg::Vector mid(space.size(), 0.5);
  const std::size_t idx = space.index_of("freq");
  ASSERT_NE(idx, ParameterSpace::npos);
  auto slow_u = mid;
  slow_u[idx] = 0.0;
  auto fast_u = mid;
  fast_u[idx] = 1.0;
  const QoR slow = tool.evaluate(space, space.decode(slow_u));
  const QoR fast = tool.evaluate(space, space.decode(fast_u));
  EXPECT_GT(fast.power_mw, slow.power_mw);
}

TEST_F(PdToolTest, DetailedReportPopulated) {
  PDTool tool(&lib_, cfg_, 7);
  const auto space = source1_space();
  const Config c = space.decode(linalg::Vector(space.size(), 0.2));
  FlowDetails det;
  tool.evaluate_detailed(space, c, &det);
  EXPECT_GT(det.total_hpwl_um, 0.0);
  EXPECT_GE(det.final_cell_count, tool.base_netlist().num_instances());
  EXPECT_GE(det.congestion_overflow, 0.0);
  EXPECT_LE(det.congestion_overflow, 1.0);
}

TEST_F(PdToolTest, InvalidConfigRejected) {
  PDTool tool(&lib_, cfg_, 7);
  const auto space = source1_space();
  Config c = space.decode(linalg::Vector(space.size(), 0.5));
  c[0] = 1e9;  // way out of range
  EXPECT_THROW(tool.evaluate(space, c), std::invalid_argument);
}

}  // namespace
}  // namespace ppat::flow
