#include "power/power.hpp"

#include <gtest/gtest.h>

#include "netlist/mac_generator.hpp"

namespace ppat::power {
namespace {

using netlist::CellFunction;
using netlist::CellLibrary;
using netlist::InstanceId;
using netlist::Netlist;
using netlist::NetId;

class PowerTest : public ::testing::Test {
 protected:
  PowerTest() : lib_(CellLibrary::make_default()), nl_(&lib_) {}

  sta::WireParasitics zero_wires() {
    sta::WireParasitics p;
    p.res_kohm.assign(nl_.num_nets(), 0.0);
    p.cap_ff.assign(nl_.num_nets(), 0.0);
    return p;
  }

  CellLibrary lib_;
  Netlist nl_;
};

TEST_F(PowerTest, ActivityBoundedAndAttenuatedByAnd) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const InstanceId g =
      nl_.add_instance(lib_.find(CellFunction::kAnd2, 0), {a, b});
  PowerOptions opt;
  const auto act = propagate_activity(nl_, opt);
  EXPECT_DOUBLE_EQ(act[a], opt.pi_activity);
  EXPECT_LT(act[nl_.instance(g).fanout], opt.pi_activity);
  for (double v : act) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(PowerTest, XorAmplifiesActivity) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const InstanceId x =
      nl_.add_instance(lib_.find(CellFunction::kXor2, 0), {a, b});
  PowerOptions opt;
  const auto act = propagate_activity(nl_, opt);
  EXPECT_GT(act[nl_.instance(x).fanout], opt.pi_activity);
}

TEST_F(PowerTest, FlipFlopOutputsUseFfActivity) {
  const NetId a = nl_.add_primary_input();
  const InstanceId ff =
      nl_.add_instance(lib_.find(CellFunction::kDff, 0), {a});
  PowerOptions opt;
  opt.ff_activity = 0.33;
  const auto act = propagate_activity(nl_, opt);
  EXPECT_DOUBLE_EQ(act[nl_.instance(ff).fanout], 0.33);
}

TEST_F(PowerTest, LeakageMatchesLibrarySum) {
  const NetId a = nl_.add_primary_input();
  nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  nl_.add_instance(lib_.find(CellFunction::kInv, 1), {a});
  const auto report = estimate_power(nl_, zero_wires(), 100.0, PowerOptions{});
  const double expected_nw =
      lib_.cell(lib_.find(CellFunction::kInv, 0)).leakage_nw +
      lib_.cell(lib_.find(CellFunction::kInv, 1)).leakage_nw;
  EXPECT_NEAR(report.leakage_mw, expected_nw * 1e-6, 1e-15);
}

TEST_F(PowerTest, DynamicPowerScalesWithFrequency) {
  const NetId a = nl_.add_primary_input();
  nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  PowerOptions slow;
  slow.clock_freq_ghz = 0.5;
  PowerOptions fast;
  fast.clock_freq_ghz = 2.0;
  const auto p_slow = estimate_power(nl_, zero_wires(), 100.0, slow);
  const auto p_fast = estimate_power(nl_, zero_wires(), 100.0, fast);
  EXPECT_NEAR(p_fast.dynamic_mw, 4.0 * p_slow.dynamic_mw, 1e-12);
  EXPECT_DOUBLE_EQ(p_fast.leakage_mw, p_slow.leakage_mw);
}

TEST_F(PowerTest, WireCapAddsDynamicPower) {
  const NetId a = nl_.add_primary_input();
  const InstanceId g =
      nl_.add_instance(lib_.find(CellFunction::kInv, 0), {a});
  auto wires = zero_wires();
  const auto base = estimate_power(nl_, wires, 100.0, PowerOptions{});
  wires.cap_ff[nl_.instance(g).fanout] = 50.0;
  const auto loaded = estimate_power(nl_, wires, 100.0, PowerOptions{});
  EXPECT_GT(loaded.dynamic_mw, base.dynamic_mw);
}

TEST_F(PowerTest, ClockTreePowerScalesWithFlops) {
  PowerOptions opt;
  const double p_small = clock_tree_power_mw(100, 200.0, opt);
  const double p_big = clock_tree_power_mw(1000, 200.0, opt);
  EXPECT_GT(p_big, p_small);
  EXPECT_DOUBLE_EQ(clock_tree_power_mw(0, 200.0, opt), 0.0);
}

TEST_F(PowerTest, ClockPowerDrivenCtsSavesPower) {
  PowerOptions base;
  PowerOptions opt_cts = base;
  opt_cts.clock_power_driven = true;
  const double p_base = clock_tree_power_mw(500, 300.0, base);
  const double p_opt = clock_tree_power_mw(500, 300.0, opt_cts);
  EXPECT_NEAR(p_opt, 0.80 * p_base, 1e-12);
}

TEST_F(PowerTest, FullMacReportIsConsistent) {
  netlist::MacConfig cfg;
  cfg.operand_bits = 6;
  cfg.lanes = 2;
  Netlist mac = netlist::generate_mac(lib_, cfg);
  sta::WireParasitics wires;
  wires.res_kohm.assign(mac.num_nets(), 0.1);
  wires.cap_ff.assign(mac.num_nets(), 5.0);
  const auto report = estimate_power(mac, wires, 150.0, PowerOptions{});
  EXPECT_GT(report.dynamic_mw, 0.0);
  EXPECT_GT(report.leakage_mw, 0.0);
  EXPECT_GT(report.clock_mw, 0.0);
  EXPECT_NEAR(report.total_mw,
              report.dynamic_mw + report.leakage_mw + report.clock_mw, 1e-12);
  EXPECT_EQ(report.net_activity.size(), mac.num_nets());
}

}  // namespace
}  // namespace ppat::power
