// Adversarial wire-protocol inputs: malformed, truncated, and oversized
// length-prefixed frames against wire::Reader / read_frame and against a
// live SocketServer. The contract under test: every bad input surfaces as
// a WireError (library level) or a kError frame / clean close (server
// level) — never a crash, hang, or over-allocation — and the server keeps
// serving well-formed clients afterwards.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dist/coordinator.hpp"
#include "dist/oracles.hpp"
#include "dist/worker.hpp"
#include "sample/sampling.hpp"
#include "server/socket_server.hpp"
#include "server/wire.hpp"
#include "synthetic_benchmark.hpp"

namespace ppat::server {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Reader: truncated payload fields.

TEST(WireReader, TruncatedScalarsThrow) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(wire::Reader(empty).u8(), wire::WireError);
  const std::vector<std::uint8_t> two = {0x01, 0x02};
  EXPECT_THROW(wire::Reader(two).u32(), wire::WireError);
  const std::vector<std::uint8_t> seven(7, 0xff);
  EXPECT_THROW(wire::Reader(seven).u64(), wire::WireError);
  EXPECT_THROW(wire::Reader(seven).f64(), wire::WireError);
}

TEST(WireReader, StringLengthBeyondPayloadThrows) {
  // str = u32 length + bytes; claim 100 bytes but provide 3.
  wire::Writer w;
  w.u32(100);
  w.u8('a');
  w.u8('b');
  w.u8('c');
  const auto buf = w.take();
  EXPECT_THROW(wire::Reader(buf).str(), wire::WireError);
}

TEST(WireReader, VectorCountBeyondPayloadThrows) {
  // A u64_vec whose element count implies terabytes must fail the bounds
  // check up front instead of attempting the allocation.
  wire::Writer w;
  w.u32(0xffffffffu);
  const auto buf = w.take();
  EXPECT_THROW(wire::Reader(buf).u64_vec(), wire::WireError);
}

TEST(WireReader, ReadPastEndOfWellFormedPayloadThrows) {
  wire::Writer w;
  w.u64(7);
  const auto buf = w.take();
  wire::Reader r(buf);
  EXPECT_EQ(r.u64(), 7u);
  EXPECT_THROW(r.u64(), wire::WireError);
}

// ---------------------------------------------------------------------------
// read_frame / write_frame over a socketpair.

struct FdPair {
  int a = -1;
  int b = -1;
  FdPair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      ADD_FAILURE() << "socketpair failed";
      return;
    }
    a = fds[0];
    b = fds[1];
  }
  ~FdPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

void write_raw(int fd, const void* data, std::size_t n) {
  ASSERT_EQ(::send(fd, data, n, MSG_NOSIGNAL),
            static_cast<ssize_t>(n));
}

TEST(WireFrame, RoundTrip) {
  FdPair p;
  wire::Writer w;
  w.str("hello");
  w.u64(42);
  wire::write_frame(p.a, wire::MsgType::kHello, w.take());
  const auto frame = wire::read_frame(p.b);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, wire::MsgType::kHello);
  wire::Reader r(frame->payload);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.u64(), 42u);
}

TEST(WireFrame, CleanEofAtBoundaryIsNullopt) {
  FdPair p;
  ::close(p.a);
  p.a = -1;
  EXPECT_EQ(wire::read_frame(p.b), std::nullopt);
}

TEST(WireFrame, OversizedLengthPrefixThrowsWithoutAllocating) {
  FdPair p;
  // Corrupt length prefix far above kMaxPayload: must be rejected from the
  // 4-byte header alone (no 4 GiB buffer, no wait for the bytes).
  const std::uint32_t len = 0xfffffff0u;
  std::uint8_t header[5];
  std::memcpy(header, &len, 4);
  header[4] = static_cast<std::uint8_t>(wire::MsgType::kHello);
  write_raw(p.a, header, sizeof(header));
  EXPECT_THROW(wire::read_frame(p.b), wire::WireError);
}

TEST(WireFrame, JustAboveMaxPayloadThrows) {
  FdPair p;
  const std::uint32_t len = wire::kMaxPayload + 1;
  std::uint8_t header[5];
  std::memcpy(header, &len, 4);
  header[4] = static_cast<std::uint8_t>(wire::MsgType::kOpenSession);
  write_raw(p.a, header, sizeof(header));
  EXPECT_THROW(wire::read_frame(p.b), wire::WireError);
}

TEST(WireFrame, TruncatedHeaderThrows) {
  FdPair p;
  const std::uint8_t partial[2] = {0x10, 0x00};
  write_raw(p.a, partial, sizeof(partial));
  ::close(p.a);
  p.a = -1;
  EXPECT_THROW(wire::read_frame(p.b), wire::WireError);
}

TEST(WireFrame, TruncatedPayloadThrows) {
  FdPair p;
  // Header promises 64 payload bytes; deliver 10, then close.
  const std::uint32_t len = 64;
  std::uint8_t header[5];
  std::memcpy(header, &len, 4);
  header[4] = static_cast<std::uint8_t>(wire::MsgType::kHello);
  write_raw(p.a, header, sizeof(header));
  const std::uint8_t some[10] = {};
  write_raw(p.a, some, sizeof(some));
  ::close(p.a);
  p.a = -1;
  EXPECT_THROW(wire::read_frame(p.b), wire::WireError);
}

TEST(WireFrame, WriteToClosedPeerThrowsInsteadOfSigpipe) {
  FdPair p;
  ::close(p.b);
  p.b = -1;
  // First write may land in the socket buffer; keep writing until the
  // EPIPE surfaces. Must throw WireError, never raise SIGPIPE.
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) {
          wire::write_frame(p.a, wire::MsgType::kHello,
                            std::vector<std::uint8_t>(1024, 0));
        }
      },
      wire::WireError);
}

// ---------------------------------------------------------------------------
// Live server: bad clients must not crash or wedge it.

class RobustServer {
 public:
  RobustServer() {
    sock_ = (fs::path(::testing::TempDir()) /
             ("ppat_robust_" + std::to_string(::getpid()) + ".sock"))
                .string();
    SocketServerOptions opts;
    opts.socket_path = sock_;
    opts.sessions.handle_signals = false;
    opts.sessions.max_sessions = 2;
    opts.sessions.total_licenses = 2;
    opts.resolve_oracle = [](const std::string& name, std::uint64_t seed,
                             std::size_t dim) -> std::optional<OracleSpec> {
      if (name != "synthetic" || dim != 3) return std::nullopt;
      OracleSpec spec;
      spec.space = ppat::testing::synthetic_space();
      spec.make = [seed] {
        return std::make_unique<ppat::testing::SyntheticOracle>(
            0.05 * static_cast<double>(seed % 7));
      };
      return spec;
    };
    server_ = std::make_unique<SocketServer>(std::move(opts));
    server_->bind();
    thread_ = std::thread([this] { server_->serve(); });
  }

  ~RobustServer() {
    server_->stop();
    thread_.join();
  }

  int connect() const {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", sock_.c_str());
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  /// Drains frames until EOF/error; returns the first kError message seen.
  static std::string drain_for_error(int fd) {
    std::string message;
    try {
      while (auto frame = wire::read_frame(fd)) {
        if (frame->type == wire::MsgType::kError) {
          wire::Reader r(frame->payload);
          message = r.str();
        }
      }
    } catch (const wire::WireError&) {
      // Server hung up mid-frame: also a clean rejection for our purposes.
    }
    return message;
  }

  /// Runs a complete well-formed session; proves the server still works.
  void run_good_session() const {
    const int fd = connect();
    {
      wire::Writer w;
      w.u32(wire::kProtocolVersion);
      wire::write_frame(fd, wire::MsgType::kHello, w.take());
    }
    const auto ack = wire::read_frame(fd);
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->type, wire::MsgType::kHelloAck);
    common::Rng rng(13);
    const auto unit = sample::latin_hypercube(60, 3, rng);
    {
      wire::Writer w;
      w.str("synthetic");
      w.u64(1);
      w.u64(7);
      w.f64(0.0);
      w.f64(0.0);
      w.u64(0);
      w.u64(15);  // max_runs
      w.u64(0);
      w.u64_vec({0, 2});
      w.u64(60);
      w.u64(3);
      for (const auto& u : unit) {
        for (double x : u) w.f64(x);
      }
      wire::write_frame(fd, wire::MsgType::kOpenSession, w.take());
    }
    bool done = false;
    while (auto frame = wire::read_frame(fd)) {
      if (frame->type == wire::MsgType::kDone) {
        done = true;
        break;
      }
      ASSERT_NE(frame->type, wire::MsgType::kError);
    }
    ::close(fd);
    EXPECT_TRUE(done);
  }

 private:
  std::string sock_;
  std::unique_ptr<SocketServer> server_;
  std::thread thread_;
};

TEST(SocketServerRobustness, SurvivesMalformedClientsThenServes) {
  RobustServer server;

  {
    // 1. Oversized length prefix straight at the accept loop.
    const int fd = server.connect();
    const std::uint32_t len = 0xffffffffu;
    std::uint8_t header[5];
    std::memcpy(header, &len, 4);
    header[4] = static_cast<std::uint8_t>(wire::MsgType::kHello);
    write_raw(fd, header, sizeof(header));
    RobustServer::drain_for_error(fd);  // server must hang up, not hang
    ::close(fd);
  }
  {
    // 2. Truncated frame: promise 32 bytes, send 4, vanish.
    const int fd = server.connect();
    const std::uint32_t len = 32;
    std::uint8_t bytes[9] = {};
    std::memcpy(bytes, &len, 4);
    bytes[4] = static_cast<std::uint8_t>(wire::MsgType::kHello);
    write_raw(fd, bytes, sizeof(bytes));
    ::close(fd);
  }
  {
    // 3. Wrong opening message type.
    const int fd = server.connect();
    wire::Writer w;
    w.u64(0);
    wire::write_frame(fd, wire::MsgType::kStopSession, w.take());
    const std::string err = RobustServer::drain_for_error(fd);
    EXPECT_NE(err.find("Hello"), std::string::npos) << err;
    ::close(fd);
  }
  {
    // 4. Unsupported protocol version.
    const int fd = server.connect();
    wire::Writer w;
    w.u32(wire::kProtocolVersion + 5);
    wire::write_frame(fd, wire::MsgType::kHello, w.take());
    const std::string err = RobustServer::drain_for_error(fd);
    EXPECT_NE(err.find("version"), std::string::npos) << err;
    ::close(fd);
  }
  {
    // 5. Garbage OpenSession payload: handshake is fine, then a payload
    // that truncates mid-field (string length points past the end).
    const int fd = server.connect();
    wire::Writer hello;
    hello.u32(wire::kProtocolVersion);
    wire::write_frame(fd, wire::MsgType::kHello, hello.take());
    const auto ack = wire::read_frame(fd);
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->type, wire::MsgType::kHelloAck);
    wire::Writer w;
    w.u32(10'000);  // oracle-name length far beyond the payload
    w.u8('x');
    wire::write_frame(fd, wire::MsgType::kOpenSession, w.take());
    RobustServer::drain_for_error(fd);
    ::close(fd);
  }
  {
    // 6. Well-formed OpenSession for an unknown oracle must get kError.
    const int fd = server.connect();
    wire::Writer hello;
    hello.u32(wire::kProtocolVersion);
    wire::write_frame(fd, wire::MsgType::kHello, hello.take());
    ASSERT_TRUE(wire::read_frame(fd).has_value());
    wire::Writer w;
    w.str("no_such_oracle");
    w.u64(1);
    w.u64(1);
    w.f64(0.0);
    w.f64(0.0);
    w.u64(0);
    w.u64(5);
    w.u64(0);
    w.u64_vec({0, 2});
    w.u64(1);
    w.u64(3);
    for (int i = 0; i < 3; ++i) w.f64(0.5);
    wire::write_frame(fd, wire::MsgType::kOpenSession, w.take());
    const std::string err = RobustServer::drain_for_error(fd);
    EXPECT_NE(err.find("unknown oracle"), std::string::npos) << err;
    ::close(fd);
  }
  {
    // 7. Empty candidate pool is rejected before touching the tuner.
    const int fd = server.connect();
    wire::Writer hello;
    hello.u32(wire::kProtocolVersion);
    wire::write_frame(fd, wire::MsgType::kHello, hello.take());
    ASSERT_TRUE(wire::read_frame(fd).has_value());
    wire::Writer w;
    w.str("synthetic");
    w.u64(1);
    w.u64(1);
    w.f64(0.0);
    w.f64(0.0);
    w.u64(0);
    w.u64(5);
    w.u64(0);
    w.u64_vec({0, 2});
    w.u64(0);  // n = 0
    w.u64(3);
    wire::write_frame(fd, wire::MsgType::kOpenSession, w.take());
    const std::string err = RobustServer::drain_for_error(fd);
    EXPECT_NE(err.find("empty"), std::string::npos) << err;
    ::close(fd);
  }

  // After the whole corpus: the server still completes a real session.
  server.run_good_session();
}

// ---------------------------------------------------------------------------
// Distributed frames: Reader truncation on the worker-protocol payloads.

TEST(WireReaderDistributed, TruncatedWorkerHelloThrows) {
  // A hello that ends after the oracle name — the dim field is missing.
  wire::Writer w;
  w.u32(wire::kProtocolVersion);
  w.u64(1);  // session epoch
  w.str("synthetic");
  const auto buf = w.take();
  wire::Reader r(buf);
  r.u32();
  r.u64();
  EXPECT_EQ(r.str(), "synthetic");
  EXPECT_THROW(r.u64(), wire::WireError);
}

TEST(WireReaderDistributed, TruncatedEvalResultThrows) {
  // The ok flag promises three QoR doubles; deliver two.
  wire::Writer w;
  w.u64(4);  // job id
  w.u32(1);  // attempt
  w.u8(1);   // ok
  w.f64(1.0);
  w.f64(2.0);
  const auto buf = w.take();
  wire::Reader r(buf);
  r.u64();
  r.u32();
  EXPECT_EQ(r.u8(), 1);
  r.f64();
  r.f64();
  EXPECT_THROW(r.f64(), wire::WireError);
}

TEST(WireReaderDistributed, EvalRequestDimBeyondPayloadThrows) {
  // The dim field promises six doubles; the payload carries one.
  wire::Writer w;
  w.u64(0);  // job id
  w.u32(1);  // attempt
  w.u64(6);  // declared dim
  w.f64(0.5);
  const auto buf = w.take();
  wire::Reader r(buf);
  r.u64();
  r.u32();
  const std::uint64_t dim = r.u64();
  EXPECT_THROW(
      {
        for (std::uint64_t i = 0; i < dim; ++i) r.f64();
      },
      wire::WireError);
}

// ---------------------------------------------------------------------------
// Live coordinator: hostile or stale workers must be rejected with kError
// (or a clean close), never crash or wedge the fleet — and an honest worker
// must still be served after the whole corpus.

TEST(CoordinatorRobustness, RejectsBadHandshakesThenServes) {
  const auto space = dist::unit_cube_space(3);
  dist::DistributedOptions dopt;
  dopt.socket_path = (fs::path(::testing::TempDir()) /
                      ("ppat_coord_robust_" + std::to_string(::getpid()) +
                       ".sock"))
                         .string();
  dopt.session_epoch = 7;
  // Short handshake timeout so a client that stalls mid-frame cannot wedge
  // the accept loop for the default five seconds.
  dopt.handshake_timeout = std::chrono::milliseconds(100);
  // Held by pointer so the coordinator can be destroyed (closing the
  // worker connection) BEFORE the worker thread is joined.
  auto coord =
      std::make_unique<dist::DistributedEvalService>(space, dopt);

  auto dial = [&]() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  dopt.socket_path.c_str());
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  };
  // The coordinator only services its socket while polled; wait_for_workers
  // is the pump. Every corpus client is rejected, so the count never hits 1.
  auto pump = [&] {
    EXPECT_FALSE(
        coord->wait_for_workers(1, std::chrono::milliseconds(300)));
  };
  auto rejection = [](int fd) {
    std::string message;
    try {
      while (auto frame = wire::read_frame(fd)) {
        if (frame->type == wire::MsgType::kError) {
          wire::Reader r(frame->payload);
          message = r.str();
        }
      }
    } catch (const wire::WireError&) {
      // Hung up mid-frame: also a clean rejection.
    }
    return message;
  };
  auto hello_frame = [&](std::uint32_t proto, std::uint64_t epoch,
                         std::uint64_t dim) {
    wire::Writer w;
    w.u32(proto);
    w.u64(epoch);
    w.str("synthetic");
    w.u64(dim);
    return w.take();
  };

  {
    // 1. Stale session epoch: a worker from a previous incarnation.
    const int fd = dial();
    wire::write_frame(fd, wire::MsgType::kWorkerHello,
                      hello_frame(wire::kProtocolVersion, 6, 3));
    pump();
    EXPECT_NE(rejection(fd).find("stale session epoch"), std::string::npos);
    ::close(fd);
  }
  {
    // 2. Protocol version mismatch.
    const int fd = dial();
    wire::write_frame(fd, wire::MsgType::kWorkerHello,
                      hello_frame(wire::kProtocolVersion + 3, 7, 3));
    pump();
    EXPECT_NE(rejection(fd).find("protocol version"), std::string::npos);
    ::close(fd);
  }
  {
    // 3. Parameter-space dimension mismatch.
    const int fd = dial();
    wire::write_frame(fd, wire::MsgType::kWorkerHello,
                      hello_frame(wire::kProtocolVersion, 7, 4));
    pump();
    EXPECT_NE(rejection(fd).find("dimension"), std::string::npos);
    ::close(fd);
  }
  {
    // 4. Wrong opening frame type (a client-protocol Hello).
    const int fd = dial();
    wire::Writer w;
    w.u32(wire::kProtocolVersion);
    wire::write_frame(fd, wire::MsgType::kHello, w.take());
    pump();
    EXPECT_NE(rejection(fd).find("WorkerHello"), std::string::npos);
    ::close(fd);
  }
  {
    // 5. Truncated hello: promise 64 payload bytes, send 8, stall. The
    // handshake recv timeout must cut the connection loose.
    const int fd = dial();
    const std::uint32_t len = 64;
    std::uint8_t bytes[13] = {};
    std::memcpy(bytes, &len, 4);
    bytes[4] = static_cast<std::uint8_t>(wire::MsgType::kWorkerHello);
    write_raw(fd, bytes, sizeof(bytes));
    pump();
    rejection(fd);  // clean close is acceptable; must not hang
    ::close(fd);
  }
  {
    // 6. Oversized length prefix straight at the handshake.
    const int fd = dial();
    const std::uint32_t len = 0xffffffffu;
    std::uint8_t header[5];
    std::memcpy(header, &len, 4);
    header[4] = static_cast<std::uint8_t>(wire::MsgType::kWorkerHello);
    write_raw(fd, header, sizeof(header));
    pump();
    rejection(fd);
    ::close(fd);
  }

  EXPECT_EQ(coord->stats().workers_rejected, 6u);
  EXPECT_EQ(coord->worker_count(), 0u);

  // After the whole corpus: an honest worker connects and the fleet serves
  // a real batch.
  dist::SyntheticOracle oracle(3);
  dist::WorkerLoopOptions wopts;
  wopts.session_epoch = 7;
  std::thread worker([&] {
    const int fd = dist::connect_worker(dopt.socket_path);
    ASSERT_GE(fd, 0);
    dist::run_worker_loop(fd, oracle, space, wopts);
  });
  ASSERT_TRUE(coord->wait_for_workers(1, std::chrono::seconds(5)));
  std::vector<flow::Config> configs;
  for (int i = 0; i < 4; ++i) {
    linalg::Vector u(3);
    for (int d = 0; d < 3; ++d) {
      u[d] = 0.1 + 0.2 * static_cast<double>(i) + 0.05 * d;
    }
    configs.push_back(space.decode(u));
  }
  const auto records = coord->evaluate_batch(configs);
  for (const auto& r : records) EXPECT_TRUE(r.ok());
  coord.reset();
  worker.join();
}

}  // namespace
}  // namespace ppat::server
