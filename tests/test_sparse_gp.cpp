// Low-rank (DTC) surrogate tier: landmark selection, approximation quality,
// parallel multi-start determinism, and warm-started refits (gp/sparse.hpp,
// gp/refit.hpp, linalg/lowrank.hpp).
#include "gp/sparse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "gp/gp.hpp"
#include "gp/kernel.hpp"
#include "gp/refit.hpp"
#include "gp/transfer_gp.hpp"
#include "linalg/lowrank.hpp"

namespace ppat::gp {
namespace {

/// Smooth anisotropic response over the unit square — the same character as
/// the encoded QoR surfaces the surrogates model.
double response2d(const linalg::Vector& x) {
  return std::sin(3.0 * x[0]) + 0.6 * std::cos(5.0 * x[1]) +
         0.4 * x[0] * x[1];
}

std::vector<linalg::Vector> draw2d(std::size_t n, common::Rng& rng) {
  std::vector<linalg::Vector> xs(n, linalg::Vector(2));
  for (auto& x : xs) {
    x[0] = rng.uniform01();
    x[1] = rng.uniform01();
  }
  return xs;
}

linalg::Vector responses(const std::vector<linalg::Vector>& xs) {
  linalg::Vector ys(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = response2d(xs[i]);
  return ys;
}

GaussianProcess make_gp(double noise = 1e-4) {
  return GaussianProcess(
      std::make_unique<SquaredExponentialKernel>(0.3, 1.0), noise);
}

/// Runs `fn` under a temporary global thread count, restoring the previous
/// value even on test failure.
template <typename Fn>
void with_threads(std::size_t n, Fn&& fn) {
  const std::size_t prev = common::global_thread_count();
  common::set_global_thread_count(n);
  fn();
  common::set_global_thread_count(prev);
}

// ---------------------------------------------------------------------------
// Landmark selection (farthest-point sampling)

TEST(SelectLandmarks, GreedyOrderAndTieBreakAreDeterministic) {
  // Start is always index 0; the farthest point goes next; equal distances
  // resolve toward the lowest index.
  const std::vector<linalg::Vector> xs = {{0.0}, {0.4}, {1.0}};
  const auto lm = select_landmarks(xs, 3);
  ASSERT_EQ(lm.indices.size(), 3u);
  EXPECT_EQ(lm.indices[0], 0u);
  EXPECT_EQ(lm.indices[1], 2u);  // 1.0 is farther from 0.0 than 0.4
  EXPECT_EQ(lm.indices[2], 1u);

  // Exact tie: both remaining points at distance 0.25 from the start.
  const std::vector<linalg::Vector> tie = {{0.5}, {0.0}, {1.0}};
  const auto lm_tie = select_landmarks(tie, 2);
  EXPECT_EQ(lm_tie.indices[1], 1u);  // lowest index wins the tie
}

TEST(SelectLandmarks, SqdistRowsMatchTheSharedPrimitive) {
  common::Rng rng(11);
  const auto xs = draw2d(20, rng);
  const auto lm = select_landmarks(xs, 6);
  ASSERT_EQ(lm.sqdist.rows(), 6u);
  ASSERT_EQ(lm.sqdist.cols(), 20u);
  for (std::size_t j = 0; j < lm.indices.size(); ++j) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(lm.sqdist(j, i),
                squared_distance(xs[lm.indices[j]], xs[i]));
    }
  }
}

TEST(SelectLandmarks, BitIdenticalAcrossThreadCounts) {
  common::Rng rng(12);
  const auto xs = draw2d(300, rng);
  Landmarks base;
  with_threads(1, [&] { base = select_landmarks(xs, 32); });
  for (std::size_t t : {4u, 16u}) {
    Landmarks other;
    with_threads(t, [&] { other = select_landmarks(xs, 32); });
    ASSERT_EQ(other.indices, base.indices);
    for (std::size_t j = 0; j < base.sqdist.rows(); ++j) {
      for (std::size_t i = 0; i < base.sqdist.cols(); ++i) {
        ASSERT_EQ(other.sqdist(j, i), base.sqdist(j, i));
      }
    }
  }
}

TEST(SelectLandmarks, ClampsToPointCount) {
  const std::vector<linalg::Vector> xs = {{0.0}, {1.0}};
  const auto lm = select_landmarks(xs, 10);
  EXPECT_EQ(lm.indices.size(), 2u);
}

// ---------------------------------------------------------------------------
// Approximation quality

TEST(SparsePosterior, ExactAtFullRank) {
  // With m = n the DTC approximation IS the exact GP (Q_nn = K_nn): the
  // low-rank posterior must agree with the exact model to solver precision.
  common::Rng rng(21);
  const std::size_t n = 60;
  const auto xs = draw2d(n, rng);
  const auto ys = responses(xs);

  auto exact = make_gp(1e-3);
  exact.fit(xs, ys);

  auto lowrank = make_gp(1e-3);
  lowrank.set_low_rank({/*enabled=*/true, /*switchover=*/16,
                        /*num_inducing=*/n});
  lowrank.fit(xs, ys);
  ASSERT_TRUE(lowrank.low_rank_active());
  ASSERT_FALSE(exact.low_rank_active());

  const auto queries = draw2d(25, rng);
  linalg::Vector em, ev, am, av;
  exact.predict_batch(queries, em, ev);
  lowrank.predict_batch(queries, am, av);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_NEAR(am[i], em[i], 1e-6);
    // Variances go through both triangular factors of the ill-conditioned
    // (noise-free, full-rank) K_mm, so they carry a little more of the
    // jitter's imprint than the means.
    EXPECT_NEAR(av[i], ev[i], 1e-4);
  }
  // The log-marginal is looser than the posterior: the noise-free landmark
  // Gram K_mm is ill-conditioned for a smooth kernel at full rank, and the
  // jitter that makes it factorizable perturbs the logdet slightly.
  EXPECT_NEAR(lowrank.log_marginal_likelihood(),
              exact.log_marginal_likelihood(), 0.1);
}

TEST(SparsePosterior, BoundedErrorAtLowRankOverRandomSeeds) {
  // Property: on smooth 2-D data, a 5x rank reduction (m = 60 for n = 300)
  // keeps the posterior mean close to exact. Standardized-unit responses are
  // O(1), so an absolute tolerance is a relative one too.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    common::Rng rng(seed);
    const auto xs = draw2d(300, rng);
    const auto ys = responses(xs);

    auto exact = make_gp(1e-3);
    exact.fit(xs, ys);
    auto lowrank = make_gp(1e-3);
    lowrank.set_low_rank({true, /*switchover=*/64, /*num_inducing=*/60});
    lowrank.fit(xs, ys);
    ASSERT_TRUE(lowrank.low_rank_active());

    const auto queries = draw2d(40, rng);
    linalg::Vector em, ev, am, av;
    exact.predict_batch(queries, em, ev);
    lowrank.predict_batch(queries, am, av);
    double max_err = 0.0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      max_err = std::max(max_err, std::abs(am[i] - em[i]));
      EXPECT_GE(av[i], 0.0);  // clamped, never negative
      // DTC variances approach the exact posterior from above as m grows
      // (modulo the jitter both factorizations may add); they must never
      // collapse meaningfully below the exact value — that would be
      // fabricated confidence.
      EXPECT_GE(av[i], 0.9 * ev[i] - 1e-6);
    }
    EXPECT_LT(max_err, 0.15) << "seed " << seed;
  }
}

TEST(SparsePosterior, AppendMatchesRebuildOnSameLandmarks) {
  // linalg-level check: factoring n+1 points from scratch and appending the
  // (n+1)-th to an n-point factor give the same system (same landmarks, so
  // the only difference is the update order).
  common::Rng rng(31);
  const std::size_t n = 40, m = 10;
  const auto xs = draw2d(n + 1, rng);
  const auto ys = responses(xs);
  SquaredExponentialKernel kernel(0.3, 1.0);

  const std::vector<linalg::Vector> head(xs.begin(), xs.end() - 1);
  const auto lm = select_landmarks(head, m);

  // U over all n+1 points, landmark gram, diagonal noise.
  linalg::Matrix u(m, n + 1);
  linalg::Matrix kmm(m, m);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i <= n; ++i) {
      u(j, i) = kernel(head[lm.indices[j]], xs[i]);
    }
    for (std::size_t k = 0; k < m; ++k) {
      kmm(j, k) = kernel(head[lm.indices[j]], head[lm.indices[k]]);
    }
  }
  const double noise = 1e-3;
  linalg::Vector diag_full(n + 1, noise), diag_head(n, noise);
  linalg::Vector y_full(ys.begin(), ys.end());
  linalg::Vector y_head(ys.begin(), ys.end() - 1);

  linalg::Matrix u_head(m, n);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) u_head(j, i) = u(j, i);
  }

  auto full = linalg::WoodburyFactor::compute(kmm, u, diag_full, y_full);
  auto inc = linalg::WoodburyFactor::compute(kmm, u_head, diag_head, y_head);
  ASSERT_TRUE(full && inc);
  linalg::Vector last_col(m);
  for (std::size_t j = 0; j < m; ++j) last_col[j] = u(j, n);
  ASSERT_TRUE(inc->append(last_col, noise, ys[n]));

  EXPECT_EQ(inc->points(), full->points());
  EXPECT_NEAR(inc->log_det(), full->log_det(), 1e-8);
  EXPECT_NEAR(inc->quad(), full->quad(), 1e-8);
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_NEAR(inc->weights()[j], full->weights()[j], 1e-8);
  }
}

// ---------------------------------------------------------------------------
// Tier switching on the models

TEST(GaussianProcessLowRank, ActivatesAboveSwitchoverAndStaysOnAppends) {
  common::Rng rng(41);
  const auto xs = draw2d(80, rng);
  const auto ys = responses(xs);

  auto gp = make_gp(1e-3);
  gp.set_low_rank({true, /*switchover=*/64, /*num_inducing=*/24});
  gp.fit(xs, ys);
  ASSERT_TRUE(gp.low_rank_active());
  EXPECT_THROW(gp.factor(), std::runtime_error);
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));

  // Appends stay on the tier (no silent fallback to O(n^3)).
  const auto extra = draw2d(5, rng);
  for (const auto& x : extra) gp.add_observation(x, response2d(x));
  EXPECT_TRUE(gp.low_rank_active());
  EXPECT_EQ(gp.num_points(), 85u);

  // Appended observations inform predictions on the tier.
  const auto p = gp.predict(extra[0]);
  EXPECT_NEAR(p.mean, response2d(extra[0]), 0.3);

  // A refit whose NLL subset stays above the switchover keeps the tier.
  FitOptions opt;
  opt.max_points = 80;
  opt.restarts = 1;
  opt.max_evals = 20;
  common::Rng refit_rng(42);
  gp.optimize_hyperparameters(refit_rng, opt);
  EXPECT_TRUE(gp.low_rank_active());
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
}

TEST(GaussianProcessLowRank, StaysExactAtOrBelowSwitchover) {
  common::Rng rng(43);
  const auto xs = draw2d(30, rng);
  auto gp = make_gp();
  gp.set_low_rank({true, /*switchover=*/64, /*num_inducing=*/16});
  gp.fit(xs, responses(xs));
  EXPECT_FALSE(gp.low_rank_active());
  EXPECT_NO_THROW(gp.factor());
}

TEST(GaussianProcessLowRank, DisabledByDefault) {
  auto gp = make_gp();
  EXPECT_FALSE(gp.low_rank_options().enabled);
}

TEST(GaussianProcessLowRank, PrepareRefitConsumesSameRngWordsAsExact) {
  // Journal-replay invariant: the tier changes no RNG consumption. Two
  // models over the same data, one exact and one low-rank, must leave a
  // shared RNG in the same state after prepare_refit.
  common::Rng rng(44);
  const auto xs = draw2d(100, rng);
  const auto ys = responses(xs);
  auto exact = make_gp();
  exact.fit(xs, ys);
  auto lowrank = make_gp();
  lowrank.set_low_rank({true, 32, 16});
  lowrank.fit(xs, ys);
  ASSERT_TRUE(lowrank.low_rank_active());

  FitOptions opt;
  opt.max_points = 48;
  common::Rng a(7), b(7);
  (void)exact.prepare_refit(a, opt);
  (void)lowrank.prepare_refit(b, opt);
  EXPECT_EQ(a.state(), b.state());
}

TEST(TransferGpLowRank, JointSystemActivatesAndServesTargetQueries) {
  common::Rng rng(51);
  const auto src = draw2d(70, rng);
  const auto tgt = draw2d(20, rng);
  linalg::Vector src_ys = responses(src);
  // Correlated but shifted/scaled source task, per-task standardization.
  for (double& y : src_ys) y = 3.0 * y + 10.0;

  TransferGaussianProcess model(
      std::make_unique<SquaredExponentialKernel>(0.3, 1.0));
  model.set_low_rank({true, /*switchover=*/64, /*num_inducing=*/24});
  model.fit(src, src_ys, tgt, responses(tgt));
  ASSERT_TRUE(model.low_rank_active());
  EXPECT_THROW(model.factor(), std::runtime_error);

  const auto queries = draw2d(10, rng);
  linalg::Vector means, vars;
  model.predict_batch(queries, means, vars);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(std::isfinite(means[i]));
    EXPECT_GE(vars[i], 0.0);
    // Transfer from 70 correlated source points should track the surface.
    EXPECT_NEAR(means[i], response2d(queries[i]), 1.0);
  }

  model.add_target_observation(queries[0], response2d(queries[0]));
  EXPECT_TRUE(model.low_rank_active());
  EXPECT_EQ(model.num_target_points(), 21u);

  TransferFitOptions opt;
  opt.max_source_points = 70;
  opt.max_target_points = 30;
  opt.restarts = 1;
  opt.max_evals = 15;
  common::Rng refit_rng(52);
  model.optimize_hyperparameters(refit_rng, opt);
  EXPECT_TRUE(model.low_rank_active());
  EXPECT_TRUE(std::isfinite(model.log_marginal_likelihood()));
}

// ---------------------------------------------------------------------------
// Parallel multi-restart determinism

TEST(ParallelRestarts, SameWinnerForAnyThreadCountAndSerial) {
  common::Rng data_rng(61);
  const auto xs = draw2d(48, data_rng);
  const auto ys = responses(xs);

  // One refit per (parallel, thread-count) configuration, all consuming an
  // identically-seeded RNG: every fitted value must be bit-identical.
  struct Config {
    bool parallel;
    std::size_t threads;
  };
  const Config configs[] = {{false, 1}, {true, 1}, {true, 4}, {true, 16}};
  linalg::Vector ref_means, ref_vars;
  double ref_lml = 0.0, ref_noise = 0.0;
  const auto queries = draw2d(10, data_rng);

  for (std::size_t c = 0; c < std::size(configs); ++c) {
    auto gp = make_gp();
    gp.fit(xs, ys);
    FitOptions opt;
    opt.restarts = 4;
    opt.max_evals = 40;
    opt.parallel_restarts = configs[c].parallel;
    opt.parallel_restart_min_points = 0;  // exercise the parallel path at small n
    common::Rng rng(62);
    with_threads(configs[c].threads,
                 [&] { gp.optimize_hyperparameters(rng, opt); });
    linalg::Vector means, vars;
    gp.predict_batch(queries, means, vars);
    if (c == 0) {
      ref_means = means;
      ref_vars = vars;
      ref_lml = gp.log_marginal_likelihood();
      ref_noise = gp.noise_variance();
    } else {
      EXPECT_EQ(gp.log_marginal_likelihood(), ref_lml);
      EXPECT_EQ(gp.noise_variance(), ref_noise);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(means[i], ref_means[i]);
        EXPECT_EQ(vars[i], ref_vars[i]);
      }
    }
  }
}

TEST(ParallelRestarts, TransferModelMatchesSerialBitwise) {
  common::Rng data_rng(63);
  const auto src = draw2d(40, data_rng);
  const auto tgt = draw2d(16, data_rng);
  const auto src_ys = responses(src);
  const auto tgt_ys = responses(tgt);
  const auto queries = draw2d(8, data_rng);

  linalg::Vector ref_means, ref_vars;
  for (int pass = 0; pass < 2; ++pass) {
    TransferGaussianProcess model(
        std::make_unique<SquaredExponentialKernel>(0.3, 1.0));
    model.fit(src, src_ys, tgt, tgt_ys);
    TransferFitOptions opt;
    opt.restarts = 3;
    opt.max_evals = 30;
    opt.parallel_restarts = pass == 1;
    opt.parallel_restart_min_points = 0;  // exercise the parallel path at small n
    common::Rng rng(64);
    with_threads(pass == 1 ? 8 : 1,
                 [&] { model.optimize_hyperparameters(rng, opt); });
    linalg::Vector means, vars;
    model.predict_batch(queries, means, vars);
    if (pass == 0) {
      ref_means = means;
      ref_vars = vars;
    } else {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(means[i], ref_means[i]);
        EXPECT_EQ(vars[i], ref_vars[i]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Warm starts and early stop

TEST(WarmStart, RngConsumptionIdenticalOnAndOff) {
  // Toggling warm_start must never shift the shared RNG stream: the draws of
  // prepare_refit depend only on (restarts, dimension, subset size).
  common::Rng data_rng(71);
  const auto xs = draw2d(50, data_rng);
  const auto ys = responses(xs);

  auto gp = make_gp();
  gp.fit(xs, ys);
  common::Rng warm_rng(72);
  FitOptions warm_opt;
  warm_opt.warm_start = true;
  warm_opt.restarts = 3;
  (void)gp.prepare_refit(warm_rng, warm_opt);

  common::Rng cold_rng(72);
  FitOptions cold_opt;
  cold_opt.warm_start = false;
  cold_opt.restarts = 3;
  (void)gp.prepare_refit(cold_rng, cold_opt);

  EXPECT_EQ(warm_rng.state(), cold_rng.state());
}

TEST(WarmStart, SeedsFirstStartFromPreviousOptimumAndSkipsRestandardize) {
  common::Rng data_rng(73);
  const auto xs = draw2d(40, data_rng);
  const auto ys = responses(xs);

  auto gp = make_gp();
  gp.fit(xs, ys);
  FitOptions opt;
  opt.warm_start = true;
  opt.restarts = 2;
  opt.max_evals = 40;
  common::Rng rng(74);
  gp.optimize_hyperparameters(rng, opt);
  const double lml1 = gp.log_marginal_likelihood();

  // Second warm refit on byte-identical data: the plan's first start is the
  // previous optimum, so re-optimizing cannot regress the likelihood.
  const auto plan = gp.prepare_refit(rng, opt);
  ASSERT_FALSE(plan.starts.empty());
  gp.execute_refit(plan);
  EXPECT_GE(gp.log_marginal_likelihood(), lml1 - 1e-9);

  // Predictions remain sane after the digest-gated standardization skip.
  const auto p = gp.predict(xs[0]);
  EXPECT_NEAR(p.mean, ys[0], 0.5);
}

TEST(WarmStart, DigestDetectsChangedTargets) {
  linalg::Vector a = {1.0, 2.0, 3.0};
  linalg::Vector b = {1.0, 2.0, 3.0000000001};
  EXPECT_EQ(data_digest(a), data_digest(a));
  EXPECT_NE(data_digest(a), data_digest(b));
  // Length participates: a prefix is not the same data.
  linalg::Vector c = {1.0, 2.0};
  EXPECT_NE(data_digest(a), data_digest(c));
}

TEST(EarlyStop, ToleranceZeroKeepsLegacyTrajectoryBitwise) {
  // nm_f_tolerance = 0 must be indistinguishable from a pre-feature refit;
  // compare against an explicit second model fitted the same way.
  common::Rng data_rng(81);
  const auto xs = draw2d(40, data_rng);
  const auto ys = responses(xs);
  double ref = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    auto gp = make_gp();
    gp.fit(xs, ys);
    FitOptions opt;
    opt.nm_f_tolerance = 0.0;
    opt.parallel_restarts = pass == 1;
    opt.parallel_restart_min_points = 0;  // exercise the parallel path at small n
    common::Rng rng(82);
    gp.optimize_hyperparameters(rng, opt);
    if (pass == 0) {
      ref = gp.log_marginal_likelihood();
    } else {
      EXPECT_EQ(gp.log_marginal_likelihood(), ref);
    }
  }
}

TEST(EarlyStop, LooseToleranceStillProducesUsableFit) {
  common::Rng data_rng(83);
  const auto xs = draw2d(40, data_rng);
  const auto ys = responses(xs);
  auto gp = make_gp();
  gp.fit(xs, ys);
  FitOptions opt;
  opt.nm_f_tolerance = 1e-2;  // aggressive early stop
  common::Rng rng(84);
  gp.optimize_hyperparameters(rng, opt);
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
  const auto p = gp.predict(xs[0]);
  EXPECT_NEAR(p.mean, ys[0], 0.5);
}

}  // namespace
}  // namespace ppat::gp
