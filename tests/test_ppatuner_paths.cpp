// Edge paths of run_ppatuner that benchmark-replay integration tests do not
// pin down: argument validation, init-count clamping, deterministic
// tie-breaking in batch selection, the vanished-intersection midpoint
// collapse, and budget-stop finalization. A scripted surrogate replaces the
// GP so each path is driven deliberately instead of hoping a real model
// wanders into it.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "pareto/pareto.hpp"
#include "synthetic_benchmark.hpp"
#include "tuner/ppatuner.hpp"

namespace ppat {
namespace {

/// Surrogate with scripted constant predictions. Epoch e (the number of
/// add_observation_batch calls so far, i.e. completed tuner rounds) predicts
/// mean epoch_means[min(e, last)] and variance sd^2 everywhere — so tests
/// control exactly how the uncertainty regions evolve round by round.
class ScriptedSurrogate final : public tuner::Surrogate {
 public:
  ScriptedSurrogate(std::vector<double> epoch_means, double sd)
      : means_(std::move(epoch_means)), sd_(sd) {}

  void fit(const std::vector<linalg::Vector>& xs,
           const linalg::Vector& ys) override {
    (void)xs;
    n_ = ys.size();
  }
  void add_observation(const linalg::Vector&, double) override {
    ++n_;
    ++epoch_;
  }
  void add_observation_batch(const std::vector<linalg::Vector>&,
                             const linalg::Vector& ys) override {
    n_ += ys.size();
    ++epoch_;
  }
  void prepare_refit(common::Rng&) override {}
  void execute_refit() override {}
  void predict_batch(const std::vector<linalg::Vector>& xs,
                     linalg::Vector& means,
                     linalg::Vector& variances) const override {
    const double m = means_[std::min(epoch_, means_.size() - 1)];
    means.assign(xs.size(), m);
    variances.assign(xs.size(), sd_ * sd_);
  }
  std::size_t num_target_points() const override { return n_; }

 private:
  std::vector<double> means_;
  double sd_;
  std::size_t epoch_ = 0;
  std::size_t n_ = 0;
};

tuner::SurrogateFactory scripted_factory(std::vector<double> epoch_means,
                                         double sd) {
  return [epoch_means, sd](std::size_t) {
    return std::make_unique<ScriptedSurrogate>(epoch_means, sd);
  };
}

/// Pass-through pool that records every reveal_batch call, so tests can
/// assert the exact selection order the tuner dispatched.
class RecordingPool final : public tuner::CandidatePool {
 public:
  explicit RecordingPool(tuner::CandidatePool& inner) : inner_(inner) {}

  std::size_t size() const override { return inner_.size(); }
  std::size_t num_objectives() const override {
    return inner_.num_objectives();
  }
  const std::vector<linalg::Vector>& encoded() const override {
    return inner_.encoded();
  }
  const std::vector<std::size_t>& objectives() const override {
    return inner_.objectives();
  }
  pareto::Point reveal(std::size_t i) override {
    batches_.push_back({i});
    return inner_.reveal(i);
  }
  std::vector<RevealOutcome> reveal_batch(
      const std::vector<std::size_t>& indices) override {
    batches_.push_back(indices);
    return inner_.reveal_batch(indices);
  }
  bool is_revealed(std::size_t i) const override {
    return inner_.is_revealed(i);
  }
  std::size_t runs() const override { return inner_.runs(); }
  std::size_t failed_evaluations() const override {
    return inner_.failed_evaluations();
  }

  const std::vector<std::vector<std::size_t>>& batches() const {
    return batches_;
  }

 private:
  tuner::CandidatePool& inner_;
  std::vector<std::vector<std::size_t>> batches_;
};

tuner::PPATunerOptions stub_options() {
  tuner::PPATunerOptions opt;
  opt.num_threads = 1;
  opt.seed = 5;
  opt.refit_every = 100;  // scripted surrogates have nothing to refit
  return opt;
}

/// Indices of the pool's revealed candidates whose golden points are
/// non-dominated among all revealed candidates.
std::vector<std::size_t> revealed_front(
    const tuner::BenchmarkCandidatePool& pool) {
  std::vector<std::size_t> idx;
  std::vector<pareto::Point> pts;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool.is_revealed(i)) {
      idx.push_back(i);
      pts.push_back(pool.golden(i));
    }
  }
  std::vector<std::size_t> front;
  for (std::size_t f : pareto::pareto_front_indices(pts)) {
    front.push_back(idx[f]);
  }
  std::sort(front.begin(), front.end());
  return front;
}

TEST(PPATunerPaths, MaxRunsZeroThrows) {
  const auto set = testing::synthetic_benchmark("paths_zero", 10, 1);
  tuner::BenchmarkCandidatePool pool(&set, tuner::kAreaDelay);
  auto opt = stub_options();
  opt.max_runs = 0;
  EXPECT_THROW(run_ppatuner(pool, scripted_factory({0.0}, 1.0), opt),
               std::invalid_argument);
}

TEST(PPATunerPaths, EmptyPoolThrows) {
  // A pool with zero candidates cannot be tuned: the surrogates would have
  // nothing to fit. The concrete pool already rejects it at construction...
  flow::BenchmarkSet empty;
  empty.space = testing::synthetic_space();
  EXPECT_THROW(tuner::BenchmarkCandidatePool(&empty, tuner::kAreaDelay),
               std::invalid_argument);

  // ...and run_ppatuner guards independently, for pool implementations that
  // do not.
  class EmptyPool final : public tuner::CandidatePool {
   public:
    std::size_t size() const override { return 0; }
    std::size_t num_objectives() const override { return 2; }
    const std::vector<linalg::Vector>& encoded() const override {
      return encoded_;
    }
    const std::vector<std::size_t>& objectives() const override {
      return objectives_;
    }
    pareto::Point reveal(std::size_t) override { return {}; }
    bool is_revealed(std::size_t) const override { return false; }
    std::size_t runs() const override { return 0; }

   private:
    std::vector<linalg::Vector> encoded_;
    std::vector<std::size_t> objectives_ = {0, 2};
  } pool;
  EXPECT_THROW(
      run_ppatuner(pool, scripted_factory({0.0}, 1.0), stub_options()),
      std::invalid_argument);
}

TEST(PPATunerPaths, InitCountClampedToAtLeastOneReveal) {
  const auto set = testing::synthetic_benchmark("paths_clamp", 12, 2);
  tuner::BenchmarkCandidatePool pool(&set, tuner::kAreaDelay);
  auto opt = stub_options();
  opt.min_init = 0;
  opt.init_fraction = 0.0;  // floor(0.0 * 12) = 0 — must clamp to 1
  opt.batch_size = 2;
  opt.max_runs = 5;
  const auto result =
      run_ppatuner(pool, scripted_factory({0.0}, 1.0), opt);
  EXPECT_GE(result.tool_runs, 1u);
  EXPECT_LE(result.tool_runs, opt.max_runs);
  EXPECT_FALSE(result.pareto_indices.empty());
}

TEST(PPATunerPaths, TiedDiametersSelectLowestCandidateIndices) {
  const auto set = testing::synthetic_benchmark("paths_ties", 20, 4);
  tuner::BenchmarkCandidatePool bench(&set, tuner::kAreaDelay);
  RecordingPool pool(bench);
  auto opt = stub_options();
  opt.min_init = 4;
  opt.batch_size = 3;
  opt.max_runs = 10;  // init 4 + two rounds of 3
  opt.max_rounds = 5;
  // Constant predictions: every unrevealed candidate has the identical
  // region [-2sd, 2sd] in every round, so all diameters tie exactly.
  run_ppatuner(pool, scripted_factory({0.0, 0.0}, 10.0), opt);

  ASSERT_GE(pool.batches().size(), 3u);
  std::set<std::size_t> revealed(pool.batches()[0].begin(),
                                 pool.batches()[0].end());
  ASSERT_EQ(revealed.size(), 4u);
  for (std::size_t round = 1; round <= 2; ++round) {
    // Expected: the batch_size smallest not-yet-revealed indices, ascending.
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < pool.size() && expected.size() < 3; ++i) {
      if (revealed.count(i) == 0) expected.push_back(i);
    }
    EXPECT_EQ(pool.batches()[round], expected) << "round " << round;
    revealed.insert(expected.begin(), expected.end());
  }
}

TEST(PPATunerPaths, VanishedIntersectionCollapsesToMidpoint) {
  const auto set = testing::synthetic_benchmark("paths_collapse", 24, 6);
  auto opt = stub_options();
  opt.tau = 4.0;  // half-width 2*sd
  opt.min_init = 4;
  opt.batch_size = 3;
  opt.max_runs = 20;
  opt.max_rounds = 10;

  // Round 1 predicts mean -100 (region [-102, -98]); after the first batch
  // fold the script jumps to mean -50 (region [-52, -48]), disjoint from the
  // intersected region — every unrevealed box must collapse to its midpoint
  // (zero diameter) instead of going inside-out, after which the tied
  // degenerate boxes eliminate each other and the run resolves to the
  // revealed candidates only.
  tuner::BenchmarkCandidatePool pool(&set, tuner::kAreaDelay);
  tuner::PPATunerDiagnostics diag;
  const auto result =
      run_ppatuner(pool, scripted_factory({-100.0, -50.0}, 1.0), opt, &diag);

  EXPECT_EQ(diag.undecided, 0u);
  EXPECT_LT(result.tool_runs, opt.max_runs);  // stopped by collapse, not budget
  for (std::size_t i : result.pareto_indices) {
    EXPECT_TRUE(pool.is_revealed(i)) << "unrevealed candidate " << i;
  }
  auto got = result.pareto_indices;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, revealed_front(pool));

  // Control: without the between-round model shift the regions stay wide and
  // the run spends its whole budget — the early stop above is specifically
  // the collapse path, not an artifact of the scripted surrogate.
  tuner::BenchmarkCandidatePool control_pool(&set, tuner::kAreaDelay);
  tuner::PPATunerDiagnostics control_diag;
  const auto control = run_ppatuner(
      control_pool, scripted_factory({-100.0, -100.0}, 1.0), opt,
      &control_diag);
  EXPECT_EQ(control.tool_runs, opt.max_runs);
  EXPECT_GT(control_diag.undecided, 0u);
}

TEST(PPATunerPaths, BudgetStopAlwaysKeepsRevealedParetoPoints) {
  const auto set = testing::synthetic_benchmark("paths_budget", 30, 8);
  tuner::BenchmarkCandidatePool pool(&set, tuner::kAreaDelay);
  auto opt = stub_options();
  opt.min_init = 5;
  opt.max_runs = 5;  // budget exhausted by initialization: zero rounds
  tuner::PPATunerDiagnostics diag;
  const auto result =
      run_ppatuner(pool, scripted_factory({0.0}, 1.0), opt, &diag);

  EXPECT_EQ(diag.rounds, 0u);
  EXPECT_EQ(result.tool_runs, 5u);
  // Every revealed non-dominated candidate is in the answer even though the
  // loop never ran a classification round.
  std::set<std::size_t> got(result.pareto_indices.begin(),
                            result.pareto_indices.end());
  for (std::size_t i : revealed_front(pool)) {
    EXPECT_TRUE(got.count(i)) << "revealed Pareto point " << i << " dropped";
  }
}

}  // namespace
}  // namespace ppat
