#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace ppat::common {
namespace {

TEST(Csv, SplitSimpleLine) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(Csv, SplitQuotedFields) {
  const auto f = split_csv_line(R"("a,b",c,"say ""hi""")");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
  EXPECT_EQ(f[2], "say \"hi\"");
}

TEST(Csv, SplitEmptyFields) {
  const auto f = split_csv_line(",x,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[2], "");
}

TEST(Csv, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(csv_escape(" lead"), "\" lead\"");
}

TEST(Csv, ParseHeaderAndRows) {
  const auto t = parse_csv("x,y\n1,2\n3,4\n");
  ASSERT_EQ(t.header.size(), 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
  EXPECT_EQ(t.column("y"), 1u);
  EXPECT_EQ(t.column("missing"), CsvTable::npos);
}

TEST(Csv, ParseSkipsBlankLinesAndCr) {
  const auto t = parse_csv("x,y\r\n\r\n1,2\r\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::runtime_error);
}

TEST(Csv, RoundTripThroughText) {
  CsvTable t;
  t.header = {"name", "value"};
  t.rows = {{"alpha, beta", "1"}, {"q\"q", "2"}};
  const auto parsed = parse_csv(to_csv(t));
  EXPECT_EQ(parsed.header, t.header);
  EXPECT_EQ(parsed.rows, t.rows);
}

TEST(Csv, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ppat_csv_test.csv").string();
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"1.5", "x y"}};
  write_csv_file(path, t);
  const auto loaded = read_csv_file(path);
  EXPECT_EQ(loaded.header, t.header);
  EXPECT_EQ(loaded.rows, t.rows);
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace ppat::common
