#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ppat::common {
namespace {

TEST(Csv, SplitSimpleLine) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(Csv, SplitQuotedFields) {
  const auto f = split_csv_line(R"("a,b",c,"say ""hi""")");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
  EXPECT_EQ(f[2], "say \"hi\"");
}

TEST(Csv, SplitEmptyFields) {
  const auto f = split_csv_line(",x,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[2], "");
}

TEST(Csv, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(csv_escape(" lead"), "\" lead\"");
}

TEST(Csv, ParseHeaderAndRows) {
  const auto t = parse_csv("x,y\n1,2\n3,4\n");
  ASSERT_EQ(t.header.size(), 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
  EXPECT_EQ(t.column("y"), 1u);
  EXPECT_EQ(t.column("missing"), CsvTable::npos);
}

TEST(Csv, ParseSkipsBlankLinesAndCr) {
  const auto t = parse_csv("x,y\r\n\r\n1,2\r\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::runtime_error);
}

TEST(Csv, RoundTripThroughText) {
  CsvTable t;
  t.header = {"name", "value"};
  t.rows = {{"alpha, beta", "1"}, {"q\"q", "2"}};
  const auto parsed = parse_csv(to_csv(t));
  EXPECT_EQ(parsed.header, t.header);
  EXPECT_EQ(parsed.rows, t.rows);
}

TEST(Csv, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ppat_csv_test.csv").string();
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"1.5", "x y"}};
  write_csv_file(path, t);
  const auto loaded = read_csv_file(path);
  EXPECT_EQ(loaded.header, t.header);
  EXPECT_EQ(loaded.rows, t.rows);
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"),
               std::runtime_error);
}

// ---- Malformed-input corpus: every entry must be REJECTED (never half-
// parsed) and must carry the right source location. Benchmark caches sit on
// disk between runs; a silently mis-parsed table corrupts every experiment
// built on it.

TEST(Csv, RaggedRowReportsItsLine) {
  try {
    parse_csv("a,b\n1,2\n3\n4,5\n");
    FAIL() << "ragged row accepted";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Csv, UnterminatedQuoteReportsItsLine) {
  try {
    parse_csv("a,b\n1,\"oops\n");
    FAIL() << "unterminated quote accepted";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Csv, EmbeddedNulByteRejected) {
  std::string text = "a,b\n1,2\n";
  text[6] = '\0';  // inside the data row
  try {
    parse_csv(text);
    FAIL() << "NUL byte accepted";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Csv, SplitLineRejectsNulAndUnterminatedQuote) {
  EXPECT_THROW(split_csv_line(std::string("a\0b", 3)), CsvError);
  EXPECT_THROW(split_csv_line("\"open"), CsvError);
}

TEST(Csv, CorpusOfMalformedInputsAllThrow) {
  const std::vector<std::string> corpus = {
      "a,b\n1\n",              // too few fields
      "a,b\n1,2,3\n",          // too many fields
      "a,b\n\"x,2\n",          // quote opened, never closed
      "a,b\n1,\"y\" z\"\n",    // garbage after closing quote reopens it
      std::string("a,b\n\x00,2\n", 8),  // NUL in first field
  };
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_THROW(parse_csv(corpus[i]), CsvError) << "corpus entry " << i;
  }
}

TEST(Csv, NumericParsesStrictlyAndReportsSourceLines) {
  // Blank lines are skipped, so row 1's SOURCE line is 4.
  const auto t = parse_csv("a,b\n1.5,2\n\n-3e2,nan\n");
  ASSERT_EQ(t.rows.size(), 2u);
  ASSERT_EQ(t.row_lines.size(), 2u);
  EXPECT_EQ(t.row_lines[0], 2u);
  EXPECT_EQ(t.row_lines[1], 4u);
  EXPECT_DOUBLE_EQ(t.numeric(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(t.numeric(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t.numeric(1, 0), -300.0);

  const auto bad = parse_csv("a,b\n1,2\n\n1.5x,2\n");
  try {
    bad.numeric(1, 0);
    FAIL() << "trailing garbage accepted";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 4u);  // original source line, not row index
    EXPECT_EQ(e.field(), 0u);
  }
  EXPECT_THROW(bad.numeric(5, 0), CsvError);  // out-of-range row
  EXPECT_THROW(bad.numeric(0, 9), CsvError);  // out-of-range column
  const auto empty_field = parse_csv("a,b\n,2\n");
  EXPECT_THROW(empty_field.numeric(0, 0), CsvError);
}

TEST(Csv, ReadFileAnnotatesErrorsWithThePath) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ppat_csv_bad.csv").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\n1,2\n3\n";
  }
  try {
    read_csv_file(path);
    FAIL() << "ragged file accepted";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 3u);  // structured location survives the rethrow
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    // The path annotation must not re-prefix the location.
    const std::string what = e.what();
    EXPECT_EQ(what.find("CSV line 3"), what.rfind("CSV line 3"));
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ppat::common
