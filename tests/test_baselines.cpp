#include <gtest/gtest.h>

#include <set>

#include "baselines/aspdac20.hpp"
#include "baselines/dac19.hpp"
#include "baselines/mlcad19.hpp"
#include "baselines/tcad19.hpp"
#include "synthetic_benchmark.hpp"

namespace ppat::baselines {
namespace {

using tuner::BenchmarkCandidatePool;
using tuner::evaluate_result;
using tuner::kPowerDelay;
using tuner::SourceData;

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : source_(ppat::testing::synthetic_benchmark("src", 150, 21, 0.15)),
        target_(ppat::testing::synthetic_benchmark("tgt", 200, 22, 0.0)),
        source_data_(SourceData::from_benchmark(source_, kPowerDelay, 100,
                                                5)) {}

  flow::BenchmarkSet source_, target_;
  SourceData source_data_;
};

TEST_F(BaselinesTest, Tcad19FindsReasonableFront) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  Tcad19Options opt;
  opt.seed = 1;
  opt.max_runs = 80;
  const auto result = run_tcad19(pool, opt);
  ASSERT_FALSE(result.pareto_indices.empty());
  EXPECT_LE(result.tool_runs, 80u);
  const auto q = evaluate_result(pool, result);
  EXPECT_LT(q.hv_error, 0.35);
}

TEST_F(BaselinesTest, Mlcad19RunsToBudget) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  Mlcad19Options opt;
  opt.seed = 2;
  opt.budget = 60;
  const auto result = run_mlcad19(pool, opt);
  EXPECT_EQ(result.tool_runs, 60u);
  const auto q = evaluate_result(pool, result);
  EXPECT_LT(q.hv_error, 0.35);
  EXPECT_LT(q.adrs, 0.2);
}

TEST_F(BaselinesTest, Mlcad19AnswerIsNonDominatedSubsetOfRevealed) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  Mlcad19Options opt;
  opt.seed = 3;
  opt.budget = 40;
  const auto result = run_mlcad19(pool, opt);
  for (std::size_t i : result.pareto_indices) {
    EXPECT_TRUE(pool.is_revealed(i));
  }
  // Non-dominated among themselves.
  for (std::size_t i : result.pareto_indices) {
    for (std::size_t j : result.pareto_indices) {
      if (i == j) continue;
      EXPECT_FALSE(pareto::dominates(pool.golden(j), pool.golden(i)));
    }
  }
}

TEST_F(BaselinesTest, Dac19UsesSourceAndImproves) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  Dac19Options opt;
  opt.seed = 4;
  opt.budget = 60;
  const auto result = run_dac19(pool, &source_data_, opt);
  EXPECT_LE(result.tool_runs, 60u);
  const auto q = evaluate_result(pool, result);
  EXPECT_LT(q.hv_error, 0.35);
}

TEST_F(BaselinesTest, Dac19WorksWithoutSource) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  Dac19Options opt;
  opt.seed = 5;
  opt.budget = 50;
  const auto result = run_dac19(pool, nullptr, opt);
  ASSERT_FALSE(result.pareto_indices.empty());
  EXPECT_LE(result.tool_runs, 50u);
}

TEST_F(BaselinesTest, Aspdac20RunsBothPhases) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  Aspdac20Options opt;
  opt.seed = 6;
  opt.budget = 60;
  const auto result = run_aspdac20(pool, &source_data_, opt);
  EXPECT_LE(result.tool_runs, 60u);
  ASSERT_FALSE(result.pareto_indices.empty());
  const auto q = evaluate_result(pool, result);
  EXPECT_LT(q.hv_error, 0.35);
}

TEST_F(BaselinesTest, Aspdac20WorksWithoutSource) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  Aspdac20Options opt;
  opt.seed = 7;
  opt.budget = 40;
  const auto result = run_aspdac20(pool, nullptr, opt);
  ASSERT_FALSE(result.pareto_indices.empty());
}

TEST_F(BaselinesTest, AllBaselinesDeterministicGivenSeed) {
  auto run_twice_and_compare = [this](auto&& runner) {
    BenchmarkCandidatePool pool_a(&target_, kPowerDelay);
    BenchmarkCandidatePool pool_b(&target_, kPowerDelay);
    const auto ra = runner(pool_a);
    const auto rb = runner(pool_b);
    EXPECT_EQ(ra.pareto_indices, rb.pareto_indices);
    EXPECT_EQ(ra.tool_runs, rb.tool_runs);
  };
  run_twice_and_compare([](BenchmarkCandidatePool& p) {
    Mlcad19Options o;
    o.seed = 8;
    o.budget = 30;
    return run_mlcad19(p, o);
  });
  run_twice_and_compare([this](BenchmarkCandidatePool& p) {
    Dac19Options o;
    o.seed = 8;
    o.budget = 30;
    return run_dac19(p, &source_data_, o);
  });
  run_twice_and_compare([this](BenchmarkCandidatePool& p) {
    Aspdac20Options o;
    o.seed = 8;
    o.budget = 30;
    return run_aspdac20(p, &source_data_, o);
  });
}

TEST_F(BaselinesTest, ResultIndicesValid) {
  BenchmarkCandidatePool pool(&target_, kPowerDelay);
  Aspdac20Options opt;
  opt.seed = 9;
  opt.budget = 35;
  const auto result = run_aspdac20(pool, &source_data_, opt);
  std::set<std::size_t> unique(result.pareto_indices.begin(),
                               result.pareto_indices.end());
  EXPECT_EQ(unique.size(), result.pareto_indices.size());
  for (std::size_t i : result.pareto_indices) EXPECT_LT(i, pool.size());
}

}  // namespace
}  // namespace ppat::baselines
