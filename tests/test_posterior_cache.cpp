// gp::PosteriorCache and the tiled predict_batch panels vs the monolithic
// legacy prediction path: both must be BIT-IDENTICAL to the reference
// (EXPECT_EQ on raw doubles, no tolerance) across the model's whole
// lifecycle — initial fit, rank-1 appends (cache extends cached solves),
// batched appends, and hyper-parameter refits (epoch bump discards the
// cache). This exactness is what lets the tuner enable the fast paths by
// default without perturbing any published number.
#include "gp/posterior_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "gp/gp.hpp"
#include "gp/kernel.hpp"
#include "gp/transfer_gp.hpp"

namespace ppat::gp {
namespace {

constexpr std::size_t kDims = 3;

double response(const linalg::Vector& x) {
  double y = 0.0;
  for (std::size_t d = 0; d < x.size(); ++d) {
    y += std::sin(2.5 * x[d] + static_cast<double>(d));
  }
  return y;
}

std::vector<linalg::Vector> draw_points(std::size_t n, common::Rng& rng) {
  std::vector<linalg::Vector> xs(n, linalg::Vector(kDims));
  for (auto& x : xs) {
    for (double& v : x) v = rng.uniform01();
  }
  return xs;
}

linalg::Vector responses(const std::vector<linalg::Vector>& xs) {
  linalg::Vector ys(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = response(xs[i]);
  return ys;
}

template <class Model>
void expect_bitwise_equal_prediction(const Model& model,
                                     const std::vector<linalg::Vector>& xs) {
  linalg::Vector m_ref, v_ref, m_tiled, v_tiled;
  Model& mut = const_cast<Model&>(model);
  mut.set_tiled_prediction(false);
  model.predict_batch(xs, m_ref, v_ref);
  mut.set_tiled_prediction(true);
  model.predict_batch(xs, m_tiled, v_tiled);
  ASSERT_EQ(m_tiled.size(), m_ref.size());
  for (std::size_t i = 0; i < m_ref.size(); ++i) {
    EXPECT_EQ(m_tiled[i], m_ref[i]) << "mean " << i;
    EXPECT_EQ(v_tiled[i], v_ref[i]) << "variance " << i;
  }
}

template <class Model>
void expect_cache_matches(PosteriorCache<Model>& cache, const Model& model,
                          const std::vector<std::size_t>& ids,
                          const std::vector<linalg::Vector>& xs) {
  linalg::Vector m_ref, v_ref, m_cache, v_cache;
  model.predict_batch(xs, m_ref, v_ref);
  cache.predict(model, ids, xs, m_cache, v_cache);
  ASSERT_EQ(m_cache.size(), m_ref.size());
  for (std::size_t i = 0; i < m_ref.size(); ++i) {
    EXPECT_EQ(m_cache[i], m_ref[i]) << "mean " << i;
    EXPECT_EQ(v_cache[i], v_ref[i]) << "variance " << i;
  }
}

TEST(TiledPrediction, BitIdenticalToLegacyPlainGp) {
  common::Rng rng(5);
  const auto train = draw_points(40, rng);
  GaussianProcess model(std::make_unique<SquaredExponentialKernel>(0.3, 1.0),
                        1e-4);
  model.fit(train, responses(train));
  // Below and above the parallel-dispatch threshold (2 tiles of 256).
  expect_bitwise_equal_prediction(model, draw_points(100, rng));
  expect_bitwise_equal_prediction(model, draw_points(600, rng));
}

TEST(TiledPrediction, BitIdenticalToLegacyTransferGp) {
  common::Rng rng(6);
  const auto src = draw_points(60, rng);
  const auto tgt = draw_points(25, rng);
  TransferGaussianProcess model(
      std::make_unique<SquaredExponentialKernel>(0.3, 1.0));
  model.fit(src, responses(src), tgt, responses(tgt));
  expect_bitwise_equal_prediction(model, draw_points(100, rng));
  expect_bitwise_equal_prediction(model, draw_points(600, rng));
}

TEST(PosteriorCacheTest, PlainGpLifecycleBitIdentical) {
  common::Rng rng(7);
  const auto train = draw_points(30, rng);
  // 550 candidates: exercises the cache's parallel fan-out (>= 512).
  const auto cands = draw_points(550, rng);
  std::vector<std::size_t> ids(cands.size());
  std::iota(ids.begin(), ids.end(), 0);

  GaussianProcess model(std::make_unique<SquaredExponentialKernel>(0.3, 1.0),
                        1e-4);
  model.fit(train, responses(train));
  PosteriorCache<GaussianProcess> cache;

  // Build.
  expect_cache_matches(cache, model, ids, cands);
  EXPECT_EQ(cache.cached_entries(), cands.size());
  const auto epoch_after_fit = model.posterior_epoch();

  // Rank-1 appends: cached solves extend instead of rebuilding.
  const auto extra = draw_points(3, rng);
  for (const auto& x : extra) model.add_observation(x, response(x));
  EXPECT_EQ(model.posterior_epoch(), epoch_after_fit);
  expect_cache_matches(cache, model, ids, cands);

  // Batched append.
  const auto batch = draw_points(4, rng);
  model.add_observation_batch(batch, responses(batch));
  expect_cache_matches(cache, model, ids, cands);

  // Refit: epoch bumps, cache must discard and rebuild.
  common::Rng fit_rng(3);
  model.optimize_hyperparameters(fit_rng);
  EXPECT_GT(model.posterior_epoch(), epoch_after_fit);
  expect_cache_matches(cache, model, ids, cands);

  // Shrinking the candidate set evicts the absent ids (the tuner's alive
  // set only ever shrinks).
  std::vector<std::size_t> subset_ids(ids.begin(), ids.begin() + 100);
  std::vector<linalg::Vector> subset_xs(cands.begin(), cands.begin() + 100);
  expect_cache_matches(cache, model, subset_ids, subset_xs);
  EXPECT_EQ(cache.cached_entries(), subset_ids.size());
}

TEST(PosteriorCacheTest, TransferGpLifecycleBitIdentical) {
  common::Rng rng(8);
  const auto src = draw_points(50, rng);
  const auto tgt = draw_points(20, rng);
  const auto cands = draw_points(300, rng);
  std::vector<std::size_t> ids(cands.size());
  std::iota(ids.begin(), ids.end(), 0);

  TransferGaussianProcess model(
      std::make_unique<SquaredExponentialKernel>(0.3, 1.0));
  model.fit(src, responses(src), tgt, responses(tgt));
  PosteriorCache<TransferGaussianProcess> cache;

  expect_cache_matches(cache, model, ids, cands);
  const auto epoch_after_fit = model.posterior_epoch();

  const auto extra = draw_points(3, rng);
  for (const auto& x : extra) model.add_target_observation(x, response(x));
  EXPECT_EQ(model.posterior_epoch(), epoch_after_fit);
  expect_cache_matches(cache, model, ids, cands);

  const auto batch = draw_points(4, rng);
  model.add_target_observation_batch(batch, responses(batch));
  expect_cache_matches(cache, model, ids, cands);

  common::Rng fit_rng(4);
  TransferFitOptions fit_opt;
  fit_opt.max_evals = 40;  // keep the refit cheap; any refit bumps the epoch
  model.optimize_hyperparameters(fit_rng, fit_opt);
  EXPECT_GT(model.posterior_epoch(), epoch_after_fit);
  expect_cache_matches(cache, model, ids, cands);
}

TEST(PosteriorCacheTest, ExtendSolveLowerMatchesFullSolve) {
  // The cholesky primitive the cache is built on: growing a solution row by
  // row across append_row calls lands on the same bits as one full
  // solve_lower_multi pass over the final system.
  common::Rng rng(9);
  const auto train = draw_points(24, rng);
  SquaredExponentialKernel kernel(0.3, 1.0);
  linalg::Matrix gram = kernel.gram(train);
  for (std::size_t i = 0; i < train.size(); ++i) gram(i, i) += 1e-4;
  auto factor = linalg::CholeskyFactor::compute(gram);
  ASSERT_TRUE(factor.has_value());

  const auto probe = draw_points(1, rng).front();
  linalg::Vector b(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) b[i] = kernel(train[i], probe);

  linalg::Matrix b_col(train.size(), 1);
  for (std::size_t i = 0; i < train.size(); ++i) b_col(i, 0) = b[i];
  const linalg::Matrix v_full = factor->solve_lower_multi(b_col);

  linalg::Vector v_grown;
  std::span<const double> all(b);
  factor->extend_solve_lower(v_grown, all.subspan(0, 10));
  factor->extend_solve_lower(v_grown, all.subspan(10, 1));
  factor->extend_solve_lower(v_grown, all.subspan(11));
  ASSERT_EQ(v_grown.size(), train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(v_grown[i], v_full(i, 0)) << "row " << i;
  }
}

}  // namespace
}  // namespace ppat::gp
