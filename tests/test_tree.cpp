#include "tree/regression_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ppat::tree {
namespace {

struct Data {
  std::vector<linalg::Vector> xs;
  linalg::Vector ys;
};

Data step_data(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  Data d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform01();
    const double x1 = rng.uniform01();
    d.xs.push_back({x0, x1});
    d.ys.push_back(x0 > 0.5 ? 10.0 : -10.0);  // depends only on feature 0
  }
  return d;
}

TEST(RegressionTree, LearnsStepFunction) {
  const auto d = step_data(200, 1);
  RegressionTree tree;
  tree.fit(d.xs, d.ys);
  EXPECT_NEAR(tree.predict({0.9, 0.5}), 10.0, 1e-9);
  EXPECT_NEAR(tree.predict({0.1, 0.5}), -10.0, 1e-9);
}

TEST(RegressionTree, CreditsInformativeFeature) {
  const auto d = step_data(200, 2);
  RegressionTree tree;
  tree.fit(d.xs, d.ys);
  const auto& gains = tree.feature_gains();
  ASSERT_EQ(gains.size(), 2u);
  EXPECT_GT(gains[0], gains[1] * 10.0);
}

TEST(RegressionTree, RespectsMaxDepth) {
  const auto d = step_data(100, 3);
  RegressionTree tree;
  TreeOptions opt;
  opt.max_depth = 0;  // leaf only
  tree.fit(d.xs, d.ys, opt);
  EXPECT_EQ(tree.num_nodes(), 1u);
  // Leaf predicts the mean.
  double mean = 0.0;
  for (double y : d.ys) mean += y;
  mean /= static_cast<double>(d.ys.size());
  EXPECT_NEAR(tree.predict({0.3, 0.3}), mean, 1e-9);
}

TEST(RegressionTree, MinLeafSizeHonored) {
  Data d;
  // Nine identical points and one outlier: min_samples_leaf=3 forbids
  // isolating the outlier alone.
  for (int i = 0; i < 9; ++i) {
    d.xs.push_back({0.1});
    d.ys.push_back(0.0);
  }
  d.xs.push_back({0.9});
  d.ys.push_back(100.0);
  RegressionTree tree;
  TreeOptions opt;
  opt.min_samples_leaf = 3;
  tree.fit(d.xs, d.ys, opt);
  // Prediction at the outlier cannot be the pure outlier value.
  EXPECT_LT(tree.predict({0.9}), 100.0);
}

TEST(RegressionTree, RejectsEmptyInput) {
  RegressionTree tree;
  EXPECT_THROW(tree.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(tree.predict({0.0}), std::runtime_error);
}

TEST(GradientBoosting, ReducesTrainingError) {
  common::Rng rng(4);
  Data d;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform01();
    d.xs.push_back({x});
    d.ys.push_back(std::sin(6.0 * x) + 0.5 * x);
  }
  auto rmse_of = [&d](std::size_t trees) {
    GradientBoosting model;
    BoostingOptions opt;
    opt.num_trees = trees;
    opt.row_subsample = 1.0;
    model.fit(d.xs, d.ys, opt);
    double sse = 0.0;
    for (std::size_t i = 0; i < d.xs.size(); ++i) {
      const double e = model.predict(d.xs[i]) - d.ys[i];
      sse += e * e;
    }
    return std::sqrt(sse / static_cast<double>(d.xs.size()));
  };
  const double rmse_few = rmse_of(5);
  const double rmse_many = rmse_of(150);
  EXPECT_LT(rmse_many, rmse_few * 0.5);
  EXPECT_LT(rmse_many, 0.1);
}

TEST(GradientBoosting, FeatureImportancesSumToOne) {
  const auto d = step_data(200, 5);
  GradientBoosting model;
  model.fit(d.xs, d.ys);
  const auto imp = model.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.9);  // feature 0 carries all the signal
}

TEST(GradientBoosting, DeterministicGivenSeed) {
  const auto d = step_data(150, 6);
  BoostingOptions opt;
  opt.seed = 42;
  GradientBoosting a, b;
  a.fit(d.xs, d.ys, opt);
  b.fit(d.xs, d.ys, opt);
  for (int i = 0; i < 10; ++i) {
    const linalg::Vector q = {0.1 * i, 0.5};
    EXPECT_DOUBLE_EQ(a.predict(q), b.predict(q));
  }
}

TEST(GradientBoosting, PredictBatchMatchesSingle) {
  const auto d = step_data(100, 7);
  GradientBoosting model;
  model.fit(d.xs, d.ys);
  const auto batch = model.predict_batch(d.xs);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.predict(d.xs[i]));
  }
}

TEST(GradientBoosting, ConstantTargetGivesUniformImportance) {
  Data d;
  for (int i = 0; i < 50; ++i) {
    d.xs.push_back({static_cast<double>(i) / 50.0, 0.5});
    d.ys.push_back(3.0);
  }
  GradientBoosting model;
  model.fit(d.xs, d.ys);
  EXPECT_NEAR(model.predict({0.5, 0.5}), 3.0, 1e-9);
  const auto imp = model.feature_importances();
  EXPECT_NEAR(imp[0], 0.5, 1e-9);
  EXPECT_NEAR(imp[1], 0.5, 1e-9);
}

}  // namespace
}  // namespace ppat::tree
