# Empty compiler generated dependencies file for scenario_same_design.
# This may be replaced when dependencies are built.
