file(REMOVE_RECURSE
  "CMakeFiles/scenario_same_design.dir/scenario_same_design.cpp.o"
  "CMakeFiles/scenario_same_design.dir/scenario_same_design.cpp.o.d"
  "scenario_same_design"
  "scenario_same_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_same_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
