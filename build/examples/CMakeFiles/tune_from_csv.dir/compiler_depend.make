# Empty compiler generated dependencies file for tune_from_csv.
# This may be replaced when dependencies are built.
