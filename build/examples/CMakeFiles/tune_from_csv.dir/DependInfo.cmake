
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tune_from_csv.cpp" "examples/CMakeFiles/tune_from_csv.dir/tune_from_csv.cpp.o" "gcc" "examples/CMakeFiles/tune_from_csv.dir/tune_from_csv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuner/CMakeFiles/ppat_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ppat_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ppat_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/ppat_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ppat_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/ppat_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/ppat_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ppat_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/ppat_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/ppat_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/mf/CMakeFiles/ppat_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/ppat_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppat_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
