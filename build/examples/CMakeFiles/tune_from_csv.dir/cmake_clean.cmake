file(REMOVE_RECURSE
  "CMakeFiles/tune_from_csv.dir/tune_from_csv.cpp.o"
  "CMakeFiles/tune_from_csv.dir/tune_from_csv.cpp.o.d"
  "tune_from_csv"
  "tune_from_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_from_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
