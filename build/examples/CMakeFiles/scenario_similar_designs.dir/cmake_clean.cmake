file(REMOVE_RECURSE
  "CMakeFiles/scenario_similar_designs.dir/scenario_similar_designs.cpp.o"
  "CMakeFiles/scenario_similar_designs.dir/scenario_similar_designs.cpp.o.d"
  "scenario_similar_designs"
  "scenario_similar_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_similar_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
