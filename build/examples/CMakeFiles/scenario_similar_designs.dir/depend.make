# Empty dependencies file for scenario_similar_designs.
# This may be replaced when dependencies are built.
