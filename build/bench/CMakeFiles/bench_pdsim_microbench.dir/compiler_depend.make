# Empty compiler generated dependencies file for bench_pdsim_microbench.
# This may be replaced when dependencies are built.
