file(REMOVE_RECURSE
  "CMakeFiles/bench_pdsim_microbench.dir/bench_pdsim_microbench.cpp.o"
  "CMakeFiles/bench_pdsim_microbench.dir/bench_pdsim_microbench.cpp.o.d"
  "bench_pdsim_microbench"
  "bench_pdsim_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdsim_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
