# Empty dependencies file for bench_ablation_source_size.
# This may be replaced when dependencies are built.
