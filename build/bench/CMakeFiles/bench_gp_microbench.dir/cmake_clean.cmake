file(REMOVE_RECURSE
  "CMakeFiles/bench_gp_microbench.dir/bench_gp_microbench.cpp.o"
  "CMakeFiles/bench_gp_microbench.dir/bench_gp_microbench.cpp.o.d"
  "bench_gp_microbench"
  "bench_gp_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gp_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
