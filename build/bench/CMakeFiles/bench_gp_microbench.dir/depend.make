# Empty dependencies file for bench_gp_microbench.
# This may be replaced when dependencies are built.
