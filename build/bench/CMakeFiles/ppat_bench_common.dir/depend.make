# Empty dependencies file for ppat_bench_common.
# This may be replaced when dependencies are built.
