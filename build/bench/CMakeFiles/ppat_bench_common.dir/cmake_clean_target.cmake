file(REMOVE_RECURSE
  "libppat_bench_common.a"
)
