file(REMOVE_RECURSE
  "CMakeFiles/ppat_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/ppat_bench_common.dir/bench_common.cpp.o.d"
  "libppat_bench_common.a"
  "libppat_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
