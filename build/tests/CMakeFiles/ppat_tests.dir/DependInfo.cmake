
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/ppat_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_benchmark.cpp" "tests/CMakeFiles/ppat_tests.dir/test_benchmark.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_benchmark.cpp.o.d"
  "/root/repo/tests/test_cell_library.cpp" "tests/CMakeFiles/ppat_tests.dir/test_cell_library.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_cell_library.cpp.o.d"
  "/root/repo/tests/test_cholesky.cpp" "tests/CMakeFiles/ppat_tests.dir/test_cholesky.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_cholesky.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/ppat_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_cts.cpp" "tests/CMakeFiles/ppat_tests.dir/test_cts.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_cts.cpp.o.d"
  "/root/repo/tests/test_def_io.cpp" "tests/CMakeFiles/ppat_tests.dir/test_def_io.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_def_io.cpp.o.d"
  "/root/repo/tests/test_gp.cpp" "tests/CMakeFiles/ppat_tests.dir/test_gp.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_gp.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/ppat_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/ppat_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/ppat_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_mac_generator.cpp" "tests/CMakeFiles/ppat_tests.dir/test_mac_generator.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_mac_generator.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/ppat_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_mf.cpp" "tests/CMakeFiles/ppat_tests.dir/test_mf.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_mf.cpp.o.d"
  "/root/repo/tests/test_neldermead.cpp" "tests/CMakeFiles/ppat_tests.dir/test_neldermead.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_neldermead.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/ppat_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/ppat_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_paper_spaces.cpp" "tests/CMakeFiles/ppat_tests.dir/test_paper_spaces.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_paper_spaces.cpp.o.d"
  "/root/repo/tests/test_parameter.cpp" "tests/CMakeFiles/ppat_tests.dir/test_parameter.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_parameter.cpp.o.d"
  "/root/repo/tests/test_pareto.cpp" "tests/CMakeFiles/ppat_tests.dir/test_pareto.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_pareto.cpp.o.d"
  "/root/repo/tests/test_pd_tool.cpp" "tests/CMakeFiles/ppat_tests.dir/test_pd_tool.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_pd_tool.cpp.o.d"
  "/root/repo/tests/test_placer.cpp" "tests/CMakeFiles/ppat_tests.dir/test_placer.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_placer.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/ppat_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_ppatuner.cpp" "tests/CMakeFiles/ppat_tests.dir/test_ppatuner.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_ppatuner.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ppat_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/ppat_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/ppat_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/ppat_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_sta.cpp" "tests/CMakeFiles/ppat_tests.dir/test_sta.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_sta.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/ppat_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_surrogate.cpp" "tests/CMakeFiles/ppat_tests.dir/test_surrogate.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_surrogate.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/ppat_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_timing_paths.cpp" "tests/CMakeFiles/ppat_tests.dir/test_timing_paths.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_timing_paths.cpp.o.d"
  "/root/repo/tests/test_transfer_gp.cpp" "tests/CMakeFiles/ppat_tests.dir/test_transfer_gp.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_transfer_gp.cpp.o.d"
  "/root/repo/tests/test_tree.cpp" "tests/CMakeFiles/ppat_tests.dir/test_tree.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_tree.cpp.o.d"
  "/root/repo/tests/test_tuner_problem.cpp" "tests/CMakeFiles/ppat_tests.dir/test_tuner_problem.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_tuner_problem.cpp.o.d"
  "/root/repo/tests/test_verilog.cpp" "tests/CMakeFiles/ppat_tests.dir/test_verilog.cpp.o" "gcc" "tests/CMakeFiles/ppat_tests.dir/test_verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/ppat_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/ppat_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ppat_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/ppat_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/ppat_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/ppat_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/mf/CMakeFiles/ppat_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/ppat_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ppat_power.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/ppat_place.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/ppat_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ppat_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/ppat_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppat_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
