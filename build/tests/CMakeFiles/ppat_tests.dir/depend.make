# Empty dependencies file for ppat_tests.
# This may be replaced when dependencies are built.
