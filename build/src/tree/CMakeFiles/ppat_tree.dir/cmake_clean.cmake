file(REMOVE_RECURSE
  "CMakeFiles/ppat_tree.dir/regression_tree.cpp.o"
  "CMakeFiles/ppat_tree.dir/regression_tree.cpp.o.d"
  "libppat_tree.a"
  "libppat_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
