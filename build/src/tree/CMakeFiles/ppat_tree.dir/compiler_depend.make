# Empty compiler generated dependencies file for ppat_tree.
# This may be replaced when dependencies are built.
