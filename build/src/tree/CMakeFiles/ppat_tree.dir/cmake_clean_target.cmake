file(REMOVE_RECURSE
  "libppat_tree.a"
)
