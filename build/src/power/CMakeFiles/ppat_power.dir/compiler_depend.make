# Empty compiler generated dependencies file for ppat_power.
# This may be replaced when dependencies are built.
