file(REMOVE_RECURSE
  "CMakeFiles/ppat_power.dir/power.cpp.o"
  "CMakeFiles/ppat_power.dir/power.cpp.o.d"
  "libppat_power.a"
  "libppat_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
