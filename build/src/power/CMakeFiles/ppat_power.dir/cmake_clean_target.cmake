file(REMOVE_RECURSE
  "libppat_power.a"
)
