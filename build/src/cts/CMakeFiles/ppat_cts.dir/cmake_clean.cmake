file(REMOVE_RECURSE
  "CMakeFiles/ppat_cts.dir/cts.cpp.o"
  "CMakeFiles/ppat_cts.dir/cts.cpp.o.d"
  "libppat_cts.a"
  "libppat_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
