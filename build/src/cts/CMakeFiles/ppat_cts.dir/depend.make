# Empty dependencies file for ppat_cts.
# This may be replaced when dependencies are built.
