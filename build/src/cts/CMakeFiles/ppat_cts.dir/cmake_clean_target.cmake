file(REMOVE_RECURSE
  "libppat_cts.a"
)
