file(REMOVE_RECURSE
  "CMakeFiles/ppat_mf.dir/matrix_factorization.cpp.o"
  "CMakeFiles/ppat_mf.dir/matrix_factorization.cpp.o.d"
  "libppat_mf.a"
  "libppat_mf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
