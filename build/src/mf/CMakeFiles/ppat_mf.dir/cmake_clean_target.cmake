file(REMOVE_RECURSE
  "libppat_mf.a"
)
