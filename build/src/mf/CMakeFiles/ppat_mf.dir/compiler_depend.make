# Empty compiler generated dependencies file for ppat_mf.
# This may be replaced when dependencies are built.
