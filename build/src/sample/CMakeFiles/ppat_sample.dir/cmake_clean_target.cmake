file(REMOVE_RECURSE
  "libppat_sample.a"
)
