# Empty dependencies file for ppat_sample.
# This may be replaced when dependencies are built.
