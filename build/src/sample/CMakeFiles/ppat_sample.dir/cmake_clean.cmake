file(REMOVE_RECURSE
  "CMakeFiles/ppat_sample.dir/sampling.cpp.o"
  "CMakeFiles/ppat_sample.dir/sampling.cpp.o.d"
  "libppat_sample.a"
  "libppat_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
