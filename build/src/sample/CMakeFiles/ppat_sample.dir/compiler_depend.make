# Empty compiler generated dependencies file for ppat_sample.
# This may be replaced when dependencies are built.
