
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sample/sampling.cpp" "src/sample/CMakeFiles/ppat_sample.dir/sampling.cpp.o" "gcc" "src/sample/CMakeFiles/ppat_sample.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppat_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppat_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
