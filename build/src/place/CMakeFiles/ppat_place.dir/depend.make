# Empty dependencies file for ppat_place.
# This may be replaced when dependencies are built.
