file(REMOVE_RECURSE
  "CMakeFiles/ppat_place.dir/def_io.cpp.o"
  "CMakeFiles/ppat_place.dir/def_io.cpp.o.d"
  "CMakeFiles/ppat_place.dir/placer.cpp.o"
  "CMakeFiles/ppat_place.dir/placer.cpp.o.d"
  "libppat_place.a"
  "libppat_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
