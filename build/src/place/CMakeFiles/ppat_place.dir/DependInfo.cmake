
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/def_io.cpp" "src/place/CMakeFiles/ppat_place.dir/def_io.cpp.o" "gcc" "src/place/CMakeFiles/ppat_place.dir/def_io.cpp.o.d"
  "/root/repo/src/place/placer.cpp" "src/place/CMakeFiles/ppat_place.dir/placer.cpp.o" "gcc" "src/place/CMakeFiles/ppat_place.dir/placer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppat_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ppat_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
