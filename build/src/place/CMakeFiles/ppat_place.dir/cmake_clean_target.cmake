file(REMOVE_RECURSE
  "libppat_place.a"
)
