file(REMOVE_RECURSE
  "libppat_gp.a"
)
