file(REMOVE_RECURSE
  "CMakeFiles/ppat_gp.dir/gp.cpp.o"
  "CMakeFiles/ppat_gp.dir/gp.cpp.o.d"
  "CMakeFiles/ppat_gp.dir/kernel.cpp.o"
  "CMakeFiles/ppat_gp.dir/kernel.cpp.o.d"
  "CMakeFiles/ppat_gp.dir/transfer_gp.cpp.o"
  "CMakeFiles/ppat_gp.dir/transfer_gp.cpp.o.d"
  "libppat_gp.a"
  "libppat_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
