# Empty compiler generated dependencies file for ppat_gp.
# This may be replaced when dependencies are built.
