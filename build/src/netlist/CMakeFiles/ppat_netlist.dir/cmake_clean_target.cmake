file(REMOVE_RECURSE
  "libppat_netlist.a"
)
