# Empty compiler generated dependencies file for ppat_netlist.
# This may be replaced when dependencies are built.
