
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/cell_library.cpp" "src/netlist/CMakeFiles/ppat_netlist.dir/cell_library.cpp.o" "gcc" "src/netlist/CMakeFiles/ppat_netlist.dir/cell_library.cpp.o.d"
  "/root/repo/src/netlist/mac_generator.cpp" "src/netlist/CMakeFiles/ppat_netlist.dir/mac_generator.cpp.o" "gcc" "src/netlist/CMakeFiles/ppat_netlist.dir/mac_generator.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/ppat_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/ppat_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/ppat_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/ppat_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
