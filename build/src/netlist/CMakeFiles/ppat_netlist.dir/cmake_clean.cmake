file(REMOVE_RECURSE
  "CMakeFiles/ppat_netlist.dir/cell_library.cpp.o"
  "CMakeFiles/ppat_netlist.dir/cell_library.cpp.o.d"
  "CMakeFiles/ppat_netlist.dir/mac_generator.cpp.o"
  "CMakeFiles/ppat_netlist.dir/mac_generator.cpp.o.d"
  "CMakeFiles/ppat_netlist.dir/netlist.cpp.o"
  "CMakeFiles/ppat_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/ppat_netlist.dir/verilog.cpp.o"
  "CMakeFiles/ppat_netlist.dir/verilog.cpp.o.d"
  "libppat_netlist.a"
  "libppat_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
