file(REMOVE_RECURSE
  "CMakeFiles/ppat_baselines.dir/aspdac20.cpp.o"
  "CMakeFiles/ppat_baselines.dir/aspdac20.cpp.o.d"
  "CMakeFiles/ppat_baselines.dir/dac19.cpp.o"
  "CMakeFiles/ppat_baselines.dir/dac19.cpp.o.d"
  "CMakeFiles/ppat_baselines.dir/mlcad19.cpp.o"
  "CMakeFiles/ppat_baselines.dir/mlcad19.cpp.o.d"
  "CMakeFiles/ppat_baselines.dir/tcad19.cpp.o"
  "CMakeFiles/ppat_baselines.dir/tcad19.cpp.o.d"
  "libppat_baselines.a"
  "libppat_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
