# Empty dependencies file for ppat_baselines.
# This may be replaced when dependencies are built.
