file(REMOVE_RECURSE
  "libppat_baselines.a"
)
