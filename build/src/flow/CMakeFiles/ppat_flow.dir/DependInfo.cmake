
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/benchmark.cpp" "src/flow/CMakeFiles/ppat_flow.dir/benchmark.cpp.o" "gcc" "src/flow/CMakeFiles/ppat_flow.dir/benchmark.cpp.o.d"
  "/root/repo/src/flow/parameter.cpp" "src/flow/CMakeFiles/ppat_flow.dir/parameter.cpp.o" "gcc" "src/flow/CMakeFiles/ppat_flow.dir/parameter.cpp.o.d"
  "/root/repo/src/flow/pd_tool.cpp" "src/flow/CMakeFiles/ppat_flow.dir/pd_tool.cpp.o" "gcc" "src/flow/CMakeFiles/ppat_flow.dir/pd_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppat_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppat_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/ppat_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ppat_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/ppat_place.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/ppat_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ppat_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
