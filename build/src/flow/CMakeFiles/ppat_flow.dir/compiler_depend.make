# Empty compiler generated dependencies file for ppat_flow.
# This may be replaced when dependencies are built.
