file(REMOVE_RECURSE
  "CMakeFiles/ppat_flow.dir/benchmark.cpp.o"
  "CMakeFiles/ppat_flow.dir/benchmark.cpp.o.d"
  "CMakeFiles/ppat_flow.dir/parameter.cpp.o"
  "CMakeFiles/ppat_flow.dir/parameter.cpp.o.d"
  "CMakeFiles/ppat_flow.dir/pd_tool.cpp.o"
  "CMakeFiles/ppat_flow.dir/pd_tool.cpp.o.d"
  "libppat_flow.a"
  "libppat_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
