file(REMOVE_RECURSE
  "libppat_flow.a"
)
