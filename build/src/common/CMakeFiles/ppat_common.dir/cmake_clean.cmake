file(REMOVE_RECURSE
  "CMakeFiles/ppat_common.dir/csv.cpp.o"
  "CMakeFiles/ppat_common.dir/csv.cpp.o.d"
  "CMakeFiles/ppat_common.dir/log.cpp.o"
  "CMakeFiles/ppat_common.dir/log.cpp.o.d"
  "CMakeFiles/ppat_common.dir/rng.cpp.o"
  "CMakeFiles/ppat_common.dir/rng.cpp.o.d"
  "CMakeFiles/ppat_common.dir/stats.cpp.o"
  "CMakeFiles/ppat_common.dir/stats.cpp.o.d"
  "CMakeFiles/ppat_common.dir/table.cpp.o"
  "CMakeFiles/ppat_common.dir/table.cpp.o.d"
  "libppat_common.a"
  "libppat_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
