file(REMOVE_RECURSE
  "libppat_common.a"
)
