file(REMOVE_RECURSE
  "CMakeFiles/ppat_pareto.dir/pareto.cpp.o"
  "CMakeFiles/ppat_pareto.dir/pareto.cpp.o.d"
  "libppat_pareto.a"
  "libppat_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
