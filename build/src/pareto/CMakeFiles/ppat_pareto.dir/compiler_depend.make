# Empty compiler generated dependencies file for ppat_pareto.
# This may be replaced when dependencies are built.
