file(REMOVE_RECURSE
  "libppat_pareto.a"
)
