# Empty dependencies file for ppat_linalg.
# This may be replaced when dependencies are built.
