file(REMOVE_RECURSE
  "libppat_linalg.a"
)
