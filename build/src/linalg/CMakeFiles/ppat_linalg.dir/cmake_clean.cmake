file(REMOVE_RECURSE
  "CMakeFiles/ppat_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/ppat_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/ppat_linalg.dir/matrix.cpp.o"
  "CMakeFiles/ppat_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/ppat_linalg.dir/neldermead.cpp.o"
  "CMakeFiles/ppat_linalg.dir/neldermead.cpp.o.d"
  "libppat_linalg.a"
  "libppat_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
