# Empty dependencies file for ppat_tuner.
# This may be replaced when dependencies are built.
