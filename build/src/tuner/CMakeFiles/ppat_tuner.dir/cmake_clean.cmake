file(REMOVE_RECURSE
  "CMakeFiles/ppat_tuner.dir/ppatuner.cpp.o"
  "CMakeFiles/ppat_tuner.dir/ppatuner.cpp.o.d"
  "CMakeFiles/ppat_tuner.dir/problem.cpp.o"
  "CMakeFiles/ppat_tuner.dir/problem.cpp.o.d"
  "CMakeFiles/ppat_tuner.dir/surrogate.cpp.o"
  "CMakeFiles/ppat_tuner.dir/surrogate.cpp.o.d"
  "libppat_tuner.a"
  "libppat_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
