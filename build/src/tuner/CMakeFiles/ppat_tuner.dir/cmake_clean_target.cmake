file(REMOVE_RECURSE
  "libppat_tuner.a"
)
