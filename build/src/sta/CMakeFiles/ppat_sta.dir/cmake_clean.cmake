file(REMOVE_RECURSE
  "CMakeFiles/ppat_sta.dir/optimizer.cpp.o"
  "CMakeFiles/ppat_sta.dir/optimizer.cpp.o.d"
  "CMakeFiles/ppat_sta.dir/sta.cpp.o"
  "CMakeFiles/ppat_sta.dir/sta.cpp.o.d"
  "libppat_sta.a"
  "libppat_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppat_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
