file(REMOVE_RECURSE
  "libppat_sta.a"
)
