# Empty compiler generated dependencies file for ppat_sta.
# This may be replaced when dependencies are built.
