// ppatuner_worker: one worker process of the distributed oracle fleet.
//
// Dials a coordinator's Unix socket (DistributedEvalService or
// ppatuner_serve --workers), announces its oracle and session epoch, and
// serves evaluation requests until the coordinator goes away. All retry,
// deadline, watchdog, and exactly-once bookkeeping is coordinator-side; a
// worker is stateless and disposable — SIGKILL it and the fleet completes
// the batch with one retry of whatever it was running.
//
//   ppatuner_worker --socket /tmp/ppat.sock.w1 [--epoch N]
//       [--oracle synthetic|pdsim|hls_small|hls_large] [--seed S]
//       [--dim D] [--sleep-ms MS]
//
// Test/diagnostic hooks:
//   --kill-after N   raise(SIGKILL) upon RECEIVING the N-th eval request,
//                    before evaluating (worker-death crash scenarios)
//   --eval-log FILE  append one "job attempt" line per request, flushed
//                    before evaluation (exactly-once audits: any tool run
//                    this worker ever started is on disk)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dist/oracles.hpp"
#include "dist/worker.hpp"

using namespace ppat;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--epoch N] [--oracle NAME]\n"
               "          [--seed S] [--dim D] [--sleep-ms MS]\n"
               "          [--kill-after N] [--eval-log FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string oracle_name = "synthetic";
  std::string eval_log_path;
  std::uint64_t epoch = 1;
  std::uint64_t seed = 0;
  std::size_t dim = 3;
  long sleep_ms = 0;
  long kill_after = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--epoch") {
      epoch = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--oracle") {
      oracle_name = value();
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--dim") {
      dim = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--sleep-ms") {
      sleep_ms = std::strtol(value(), nullptr, 10);
    } else if (arg == "--kill-after") {
      kill_after = std::strtol(value(), nullptr, 10);
    } else if (arg == "--eval-log") {
      eval_log_path = value();
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);

  auto named = dist::make_named_oracle(oracle_name, seed, dim,
                                       std::chrono::milliseconds(sleep_ms));
  if (!named.has_value()) {
    std::fprintf(stderr, "unknown oracle or bad dimension: %s (dim %zu)\n",
                 oracle_name.c_str(), dim);
    return 2;
  }

  std::FILE* eval_log = nullptr;
  if (!eval_log_path.empty()) {
    eval_log = std::fopen(eval_log_path.c_str(), "a");
    if (eval_log == nullptr) {
      std::fprintf(stderr, "cannot open eval log %s\n",
                   eval_log_path.c_str());
      return 2;
    }
  }

  dist::WorkerLoopOptions opts;
  opts.session_epoch = epoch;
  opts.oracle_name = oracle_name;
  opts.heartbeat_interval = std::chrono::milliseconds(1000);
  long requests = 0;
  opts.on_eval = [&](std::uint64_t job, std::uint32_t attempt,
                     const flow::Config&) {
    ++requests;
    if (eval_log != nullptr) {
      // Flushed BEFORE the evaluation starts: the log is a superset of the
      // tool runs this worker ever began, which is exactly what the
      // exactly-once audit needs.
      std::fprintf(eval_log, "%llu %u\n",
                   static_cast<unsigned long long>(job), attempt);
      std::fflush(eval_log);
    }
    if (kill_after > 0 && requests >= kill_after) {
      std::raise(SIGKILL);
    }
  };

  const int fd = dist::connect_worker(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to coordinator at %s\n",
                 socket_path.c_str());
    return 3;
  }
  const int rc = dist::run_worker_loop(fd, *named->oracle, named->space, opts);
  if (eval_log != nullptr) std::fclose(eval_log);
  return rc;
}
