// ppatuner_serve: the multi-tenant tuning server.
//
// Hosts N concurrent tuning sessions over a Unix-domain socket; each client
// connection opens one session (see src/server/wire.hpp for the protocol
// and examples/server_client.cpp for a client). The server owns the
// oracles, the shared license pool, and per-session crash-safe journals;
// SIGINT/SIGTERM drains every live session gracefully.
//
//   ppatuner_serve --socket /tmp/ppat.sock --max-sessions 8 --licenses 4
//       --journal-root /tmp/ppat-journals
//
// With --workers N each session's evaluations are sharded across N worker
// PROCESSES (ppatuner_worker) instead of in-process threads: the session
// gets a dist::DistributedEvalService listening on "<socket>.w<session-id>"
// with the session id as its epoch, and N workers hosting the session's
// oracle are spawned against it (--worker-bin overrides the binary path,
// default: ppatuner_worker next to this executable).
//
// Oracles a client can name in OpenSession:
//   synthetic    analytic QoR surface, any dimensionality (demos, smoke
//                tests; runs in microseconds)
//   pdsim        the bundled physical-design flow on a small MAC design,
//                over the paper's Target2 parameter space
//   hls_small    analytical systolic-array GEMM accelerator (64x64x128),
//                over the mixed/conditional AutoSA-style space
//   hls_large    the 256x256x512 sibling (the transfer scenario's target)
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "dist/coordinator.hpp"
#include "flow/benchmark.hpp"
#include "flow/pd_tool.hpp"
#include "hls/systolic.hpp"
#include "netlist/mac_generator.hpp"
#include "server/socket_server.hpp"

using namespace ppat;

namespace {

/// Cheap deterministic stand-in oracle with a genuine area/power/delay
/// trade-off, defined on the unit cube of any dimensionality.
class SyntheticOracle final : public flow::QorOracle {
 public:
  explicit SyntheticOracle(std::uint64_t seed)
      : shift_(0.05 * static_cast<double>(seed % 7)) {}

  flow::QoR evaluate(const flow::ParameterSpace& space,
                     const flow::Config& config) override {
    ++runs_;
    const linalg::Vector u = space.encode(config);
    const double u0 = u.empty() ? 0.0 : u[0];
    const double u1 = u.size() > 1 ? u[1] : 0.0;
    const double u2 = u.size() > 2 ? u[2] : 0.0;
    flow::QoR q;
    q.area_um2 = 100.0 * (1.5 - u0 + 0.2 * std::sin(3.0 * u1) + shift_ * u2);
    q.power_mw = 10.0 * (1.0 + 0.8 * u0 - 0.6 * u1 + 0.1 * u2 +
                         shift_ * 0.3 * std::cos(2.0 * u0));
    q.delay_ns = 1.0 + u1 + 0.15 * std::sin(4.0 * u0) + shift_ * 0.1 * u2;
    return q;
  }
  std::size_t run_count() const override { return runs_; }

 private:
  double shift_;
  std::atomic<std::size_t> runs_{0};
};

flow::ParameterSpace unit_cube_space(std::size_t dim) {
  std::vector<flow::ParamSpec> specs;
  specs.reserve(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    specs.push_back(flow::ParamSpec::real("u" + std::to_string(i), 0.0, 1.0));
  }
  return flow::ParameterSpace(std::move(specs));
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--max-sessions N] [--licenses N]\n"
               "          [--journal-root DIR] [--no-signals]\n"
               "          [--workers N] [--worker-bin PATH]\n",
               argv0);
  return 2;
}

/// Default worker binary: ppatuner_worker in this executable's directory.
std::string sibling_worker_binary(const char* argv0) {
  std::string path = argv0;
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return "ppatuner_worker";
  return path.substr(0, slash + 1) + "ppatuner_worker";
}

}  // namespace

int main(int argc, char** argv) {
  server::SocketServerOptions opts;
  std::size_t workers = 0;
  std::string worker_bin = sibling_worker_binary(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opts.socket_path = value();
    } else if (arg == "--max-sessions") {
      opts.sessions.max_sessions = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--licenses") {
      opts.sessions.total_licenses = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--journal-root") {
      opts.journal_root = value();
    } else if (arg == "--no-signals") {
      opts.sessions.handle_signals = false;
    } else if (arg == "--workers") {
      workers = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--worker-bin") {
      worker_bin = value();
    } else {
      return usage(argv[0]);
    }
  }
  if (opts.socket_path.empty()) return usage(argv[0]);

  // The PD-flow oracle's design/library are built once and shared read-only
  // between sessions; each session gets its own PDTool instance (its run
  // state is per-instance).
  static const auto library = ppat::netlist::CellLibrary::make_default();
  static const auto design = ppat::netlist::small_mac_config();
  static const auto pdsim_space = flow::target2_space();
  static const auto hls_small = hls::small_gemm();
  static const auto hls_large = hls::large_gemm();
  static const auto hls_small_space = hls::systolic_space(hls_small);
  static const auto hls_large_space = hls::systolic_space(hls_large);

  opts.resolve_oracle = [](const std::string& name, std::uint64_t seed,
                           std::size_t dim)
      -> std::optional<server::OracleSpec> {
    if (name == "synthetic") {
      server::OracleSpec spec;
      spec.space = unit_cube_space(dim);
      spec.make = [seed] { return std::make_unique<SyntheticOracle>(seed); };
      return spec;
    }
    if (name == "pdsim") {
      if (dim != pdsim_space.size()) return std::nullopt;
      server::OracleSpec spec;
      spec.space = pdsim_space;
      spec.make = [seed] {
        return std::make_unique<flow::PDTool>(&library, design, seed);
      };
      return spec;
    }
    // The HLS family: constrained spaces, so the socket server decodes the
    // client's unit points via decode_feasible and the session defaults to
    // the mixed-space kernel.
    if (name == "hls_small" || name == "hls_large") {
      const auto& space = name == "hls_small" ? hls_small_space
                                              : hls_large_space;
      const auto& workload = name == "hls_small" ? hls_small : hls_large;
      if (dim != space.size()) return std::nullopt;
      server::OracleSpec spec;
      spec.space = space;
      spec.make = [workload, seed] {
        return std::make_unique<hls::SystolicOracle>(workload, seed);
      };
      return spec;
    }
    return std::nullopt;
  };

  if (workers > 0) {
    // Distributed evaluation: each opened session gets its own coordinator
    // on a derived socket with the session id as epoch, plus `workers`
    // spawned ppatuner_worker processes hosting the session's oracle. The
    // worker fleet (and its spawned pids) lives exactly as long as the
    // coordinator, which the session owns.
    const std::string base_socket = opts.socket_path;
    opts.make_evaluator =
        [workers, worker_bin, base_socket](
            const std::string& oracle_name, std::uint64_t oracle_seed,
            std::uint64_t session_id, const flow::ParameterSpace& space,
            const flow::EvalServiceOptions& eval)
        -> std::unique_ptr<flow::BatchEvaluator> {
      dist::DistributedOptions dopt;
      dopt.socket_path = base_socket + ".w" + std::to_string(session_id);
      dopt.session_epoch = session_id;
      dopt.session_tag = eval.session_tag;
      dopt.license_broker = eval.license_broker;
      dopt.max_attempts = eval.max_attempts;
      dopt.retry_backoff = eval.retry_backoff;
      dopt.run_deadline = eval.run_deadline;
      dopt.watchdog_multiple = eval.watchdog_multiple;
      dopt.watchdog_floor = eval.watchdog_floor;
      dopt.watchdog_min_samples = eval.watchdog_min_samples;
      auto coord =
          std::make_unique<dist::DistributedEvalService>(space, dopt);
      for (std::size_t w = 0; w < workers; ++w) {
        coord->spawn_local_worker(
            worker_bin,
            {"--oracle", oracle_name, "--seed", std::to_string(oracle_seed),
             "--dim", std::to_string(space.size())});
      }
      if (!coord->wait_for_workers(workers, std::chrono::seconds(15))) {
        std::fprintf(stderr,
                     "session %llu: only %zu/%zu workers connected\n",
                     static_cast<unsigned long long>(session_id),
                     coord->worker_count(), workers);
      }
      return coord;
    };
  }

  try {
    server::SocketServer srv(std::move(opts));
    srv.bind();
    std::printf("ppatuner_serve: listening on %s (max %zu sessions, %zu licenses)\n",
                srv.socket_path().c_str(), srv.sessions().options().max_sessions,
                srv.sessions().options().total_licenses);
    std::fflush(stdout);
    srv.serve();
    std::puts("ppatuner_serve: drained all sessions, exiting");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ppatuner_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
