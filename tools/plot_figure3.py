#!/usr/bin/env python3
"""Plots the paper's Figure 3 from data/results_figure3.csv.

Usage: tools/plot_figure3.py [csv_path] [output.png]
Requires matplotlib (not needed by the C++ build or benches).
"""
import csv
import sys
from collections import defaultdict


def main() -> None:
    csv_path = sys.argv[1] if len(sys.argv) > 1 else "data/results_figure3.csv"
    out_path = sys.argv[2] if len(sys.argv) > 2 else "figure3.png"

    series = defaultdict(lambda: ([], []))
    with open(csv_path, newline="") as f:
        for row in csv.DictReader(f):
            xs, ys = series[row["series"]]
            xs.append(float(row["power_mw"]))
            ys.append(float(row["delay_ns"]))

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    markers = {
        "Golden": ("*", "red"),
        "PPATuner": ("o", "tab:green"),
        "TCAD'19": ("s", "tab:blue"),
        "MLCAD'19": ("^", "tab:orange"),
        "DAC'19": ("v", "tab:purple"),
        "ASPDAC'20": ("D", "tab:brown"),
    }
    plt.figure(figsize=(6, 4.5))
    for name, (xs, ys) in series.items():
        pts = sorted(zip(xs, ys))
        marker, color = markers.get(name, ("x", "gray"))
        plt.plot(
            [p[0] for p in pts],
            [p[1] for p in pts],
            marker=marker,
            color=color,
            linestyle="--" if name == "Golden" else ":",
            label=name,
            markersize=7 if name == "Golden" else 5,
        )
    plt.xlabel("power (mW)")
    plt.ylabel("delay (ns)")
    plt.title("Pareto fronts in power vs delay space on Target2")
    plt.legend(fontsize=8)
    plt.grid(alpha=0.3)
    plt.tight_layout()
    plt.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
