#!/usr/bin/env python3
"""Plots HV-error-vs-runs convergence curves from
data/results_convergence.csv.

Usage: tools/plot_convergence.py [csv_path] [output.png]
"""
import csv
import sys
from collections import defaultdict


def main() -> None:
    csv_path = (
        sys.argv[1] if len(sys.argv) > 1 else "data/results_convergence.csv"
    )
    out_path = sys.argv[2] if len(sys.argv) > 2 else "convergence.png"

    series = defaultdict(lambda: ([], []))
    with open(csv_path, newline="") as f:
        for row in csv.DictReader(f):
            xs, ys = series[row["method"]]
            xs.append(int(row["runs"]))
            ys.append(float(row["hv_error"]))

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    plt.figure(figsize=(6, 4.5))
    for name, (xs, ys) in sorted(series.items()):
        pts = sorted(zip(xs, ys))
        plt.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                 markersize=4, label=name)
    plt.xlabel("tool runs")
    plt.ylabel("hypervolume error of revealed front")
    plt.title("Convergence on Target2 (power-delay)")
    plt.legend(fontsize=8)
    plt.grid(alpha=0.3)
    plt.yscale("log")
    plt.tight_layout()
    plt.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
