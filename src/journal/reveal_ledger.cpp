#include "journal/reveal_ledger.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace ppat::journal {
namespace {

constexpr char kLedgerMagic[8] = {'P', 'P', 'A', 'T', 'L', 'G', 'R', '1'};
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kFrameBytes = 8;  // u32 len + u32 crc
constexpr std::uint32_t kMaxPayload = 16u << 20;
constexpr std::uint8_t kKindReveal = 1;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw JournalError("ledger record underflow (writer bug or skew)");
    }
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::string encode_record(const LedgerRecord& rec) {
  std::string payload;
  put_u64(payload, rec.digest);
  put_u32(payload, rec.attempt);
  put_u8(payload, static_cast<std::uint8_t>(rec.status));
  put_u32(payload, rec.attempts);
  put_f64(payload, rec.elapsed_ms);
  put_u64(payload, rec.values.size());
  for (double v : rec.values) put_f64(payload, v);
  put_u64(payload, rec.error.size());
  payload.append(rec.error);
  return payload;
}

LedgerRecord decode_record(const char* data, std::size_t size) {
  Reader r(data, size);
  LedgerRecord rec;
  rec.digest = r.u64();
  rec.attempt = r.u32();
  rec.status = static_cast<RevealStatus>(r.u8());
  rec.attempts = r.u32();
  rec.elapsed_ms = r.f64();
  const std::uint64_t nv = r.u64();
  rec.values.resize(nv);
  for (std::uint64_t i = 0; i < nv; ++i) rec.values[i] = r.f64();
  rec.error = r.str();
  return rec;
}

void write_through(int fd, const char* data, std::size_t n,
                   const std::string& path) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw JournalError("ledger write failed for " + path + ": " +
                         std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace

std::unique_ptr<RevealLedger> RevealLedger::open(const std::string& path) {
  auto ledger = std::unique_ptr<RevealLedger>(new RevealLedger());
  ledger->path_ = path;

  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      data = ss.str();
    }
  }

  std::size_t valid_bytes = 0;
  if (data.empty()) {
    // Fresh (or zero-byte after a crash between open and header write):
    // start over with a header.
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      throw JournalError("cannot create reveal ledger " + path + ": " +
                         std::strerror(errno));
    }
    write_through(fd, kLedgerMagic, sizeof(kLedgerMagic), path);
    ledger->fd_ = fd;
    return ledger;
  }

  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kLedgerMagic, sizeof(kLedgerMagic)) != 0) {
    throw JournalError("not a reveal ledger (bad magic): " + path);
  }
  valid_bytes = kHeaderBytes;
  std::size_t pos = kHeaderBytes;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameBytes) {
      ledger->truncated_ = true;
      break;
    }
    Reader fr(data.data() + pos, kFrameBytes);
    const std::uint32_t len = fr.u32();
    const std::uint32_t stored_crc = fr.u32();
    if (len > kMaxPayload || data.size() - pos - kFrameBytes < 1 + len) {
      ledger->truncated_ = true;
      break;
    }
    // CRC covers kind byte + payload, matching journal segment frames.
    const char* body = data.data() + pos + kFrameBytes;
    if (crc32(body, 1 + len) != stored_crc) {
      ledger->truncated_ = true;
      break;
    }
    if (static_cast<std::uint8_t>(body[0]) == kKindReveal) {
      LedgerRecord rec = decode_record(body + 1, len);
      ledger->by_digest_[rec.digest] = std::move(rec);
      ++ledger->loaded_;
    }
    pos += kFrameBytes + 1 + len;
    valid_bytes = pos;
  }
  if (ledger->truncated_) {
    PPAT_WARN << "reveal ledger " << path << ": torn tail truncated at byte "
              << valid_bytes << " (" << (data.size() - valid_bytes)
              << " bytes dropped)";
  }

  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    throw JournalError("cannot open reveal ledger " + path + ": " +
                       std::strerror(errno));
  }
  if (ledger->truncated_) {
    if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
      ::close(fd);
      throw JournalError("cannot truncate torn ledger tail in " + path + ": " +
                         std::strerror(errno));
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    throw JournalError("cannot seek reveal ledger " + path + ": " +
                       std::strerror(errno));
  }
  ledger->fd_ = fd;
  return ledger;
}

RevealLedger::~RevealLedger() {
  if (fd_ >= 0) ::close(fd_);
}

const LedgerRecord* RevealLedger::find(std::uint64_t digest) const {
  const auto it = by_digest_.find(digest);
  return it == by_digest_.end() ? nullptr : &it->second;
}

void RevealLedger::append(const LedgerRecord& record) {
  const std::string payload = encode_record(record);
  std::string frame;
  frame.reserve(kFrameBytes + 1 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  std::string body;
  body.reserve(1 + payload.size());
  put_u8(body, kKindReveal);
  body.append(payload);
  put_u32(frame, crc32(body.data(), body.size()));
  frame.append(body);
  write_through(fd_, frame.data(), frame.size(), path_);
  by_digest_[record.digest] = record;
}

void RevealLedger::sync() {
  if (fd_ >= 0) ::fsync(fd_);
}

}  // namespace ppat::journal
