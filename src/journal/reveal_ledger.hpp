// Exactly-once reveal ledger for the distributed coordinator.
//
// The coordinator's crash contract is stronger than "resume bit-identically":
// it must never DOUBLE-SPEND a tool run. Every finalized evaluation outcome
// is appended here — keyed by the candidate's content digest — the moment it
// exists, via a plain write() to an O_APPEND fd (page-cache durability: a
// SIGKILLed coordinator loses only runs still in flight, never completed
// ones). On resume the coordinator serves any candidate whose digest is
// already in the ledger straight from the recorded outcome instead of
// re-dispatching it, so a kill-and-restart cycle costs zero extra tool runs
// for completed work and at most one retry for work that was in flight.
//
// On-disk format: a single append-only file. 8-byte magic "PPATLGR1", then
// records framed exactly like journal segments:
//
//   u32 payload_len | u32 crc | u8 kind | payload
//
// with the CRC over kind + payload. A torn or corrupt tail is detected and
// physically truncated at the last valid record on open — the same
// never-trust-the-tail rule as RunJournal. Duplicate digests load last-wins
// (append is idempotent per outcome; re-appending after replay is harmless).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "journal/journal.hpp"

namespace ppat::journal {

/// One durably recorded evaluation outcome. The journal library must not
/// depend on flow, so this mirrors flow::RunRecord structurally: `values`
/// carries the QoR metric vector (area, power, delay) when ok.
struct LedgerRecord {
  std::uint64_t digest = 0;   ///< content digest of the candidate config
  std::uint32_t attempt = 0;  ///< attempt number that produced the outcome
  RevealStatus status = RevealStatus::kFailed;
  std::uint32_t attempts = 0;  ///< total attempts folded into the outcome
  double elapsed_ms = 0.0;
  std::vector<double> values;  ///< QoR metrics, valid iff status == kOk
  std::string error;           ///< failure reason iff status != kOk

  bool ok() const { return status == RevealStatus::kOk; }
};

/// Append-side + lookup handle on one coordinator's reveal ledger.
/// Not thread-safe — the coordinator is single-threaded by design.
class RevealLedger {
 public:
  /// Opens `path`, creating it (with header) when absent. An existing file
  /// is scanned, its torn/corrupt tail truncated, and its records indexed.
  /// Throws JournalError on bad magic or I/O failure.
  static std::unique_ptr<RevealLedger> open(const std::string& path);

  ~RevealLedger();
  RevealLedger(const RevealLedger&) = delete;
  RevealLedger& operator=(const RevealLedger&) = delete;

  /// Last recorded outcome for this candidate digest, or nullptr.
  const LedgerRecord* find(std::uint64_t digest) const;

  /// Appends one outcome and writes it through immediately (no buffering;
  /// survives SIGKILL the moment the call returns). Also updates the
  /// in-memory index, last-wins per digest.
  void append(const LedgerRecord& record);

  /// Forces the file contents to stable storage (kernel crash / power-loss
  /// durability; SIGKILL durability needs only the write-through above).
  void sync();

  /// Distinct digests currently indexed.
  std::size_t size() const { return by_digest_.size(); }
  /// Records read back when the ledger was opened (before any append).
  std::size_t loaded() const { return loaded_; }
  /// True when open() found and truncated a torn/corrupt tail.
  bool truncated() const { return truncated_; }
  const std::string& path() const { return path_; }

 private:
  RevealLedger() = default;

  std::string path_;
  int fd_ = -1;
  std::unordered_map<std::uint64_t, LedgerRecord> by_digest_;
  std::size_t loaded_ = 0;
  bool truncated_ = false;
};

}  // namespace ppat::journal
