// Durable run journal: a write-ahead log that makes multi-day tuning runs
// crash-safe.
//
// Every tool evaluation costs hours of wall-clock in the production setting
// this library targets (paper Alg. 1 assumes Innovus runs), so the revealed
// observations ARE the expensive asset. The journal records, per PAL
// iteration, the selected candidate ids, every completed reveal outcome
// (objective vector, status, attempt count), the RNG stream state, and a
// digest (plus optional full snapshots) of the per-point uncertainty-region
// intersections (paper Eqs. (9)-(10)). A crashed, OOM-killed, or SIGTERMed
// run resumes from the journal and continues BIT-IDENTICALLY to an
// uninterrupted run: the tuner deterministically replays the decision loop
// with reveals served from the journal instead of the tool, so the
// surrogates (rebuilt via fit/add_observation_batch replay), the alive and
// quarantined sets, the monotone uncertainty regions, and the RNG stream all
// reconstruct exactly; the journaled RNG snapshots and region digests are
// cross-checked at every round so a journal that does not match the run
// configuration fails fast instead of silently diverging.
//
// On-disk format (versioned; see DESIGN.md section 11): a journal is a
// DIRECTORY of segment files. The active segment is `NNNNNN.open`; when it
// grows past JournalOptions::segment_bytes it is fsynced and atomically
// renamed to `NNNNNN.seg` (rename-on-commit: a sealed segment is either
// fully present or absent). Records are length-prefixed and CRC32-guarded,
// so a torn or corrupted tail is DETECTED AND TRUNCATED at the last valid
// record on resume — never trusted. Every record is written through to the
// active segment the moment it is appended (the selection when a batch
// opens, each reveal as its run completes — flow::EvalService's
// per-completion hook via tuner::LiveCandidatePool — and the commit marker
// when the batch closes); a plain write() to the page cache survives
// SIGKILL/OOM-kill, so a killed process loses only runs still in flight,
// never completed ones. fsync happens once per batch commit
// (JournalOptions::fsync_each_commit), so only a kernel crash or power
// loss can drop the un-fsynced tail of one batch.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ppat::journal {

/// Base class for all journal failures (I/O, format, mismatch).
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The journal exists and is readable but does not describe the run being
/// resumed (different seed/options/pool, or replay diverged from the
/// recorded RNG states / region digests). Resuming would silently corrupt
/// the search, so this is fatal.
class JournalMismatchError : public JournalError {
 public:
  using JournalError::JournalError;
};

/// Outcome status of one journaled reveal. Values mirror flow::RunStatus
/// (kOk/kFailed/kTimedOut) but are redeclared here so the journal library
/// depends only on ppat_common.
enum class RevealStatus : unsigned char { kOk = 0, kFailed = 1, kTimedOut = 2 };
const char* reveal_status_name(RevealStatus status);

/// Which selection step a batch belongs to.
enum class Phase : unsigned char { kInit = 0, kTopUp = 1, kRound = 2 };

enum class ShutdownReason : unsigned char {
  kCompleted = 0,      ///< the loop terminated normally
  kStopRequested = 1,  ///< graceful stop (SIGINT/SIGTERM drain)
};

/// One journaled evaluation outcome.
struct RevealRecord {
  std::uint64_t id = 0;  ///< candidate index in the pool
  RevealStatus status = RevealStatus::kFailed;
  std::uint32_t attempts = 0;  ///< tool attempts (0 = never dispatched)
  double elapsed_ms = 0.0;
  std::vector<double> objectives;  ///< objective vector, valid iff kOk
  std::string error;               ///< failure reason iff status != kOk

  bool ok() const { return status == RevealStatus::kOk; }
};

/// Identity of a run: a journal only resumes the exact configuration it was
/// recorded under. `pool_fingerprint` hashes the encoded candidate matrix,
/// so even a reordered pool is rejected.
struct RunMeta {
  std::uint64_t seed = 0;
  double tau = 0.0;
  double delta_rel = 0.0;
  double init_fraction = 0.0;
  std::uint64_t batch_size = 0;
  std::uint64_t min_init = 0;
  std::uint64_t refit_every = 0;
  std::uint64_t max_runs = 0;
  std::uint64_t max_rounds = 0;
  std::uint64_t pool_size = 0;
  std::uint64_t num_objectives = 0;
  std::vector<std::uint64_t> objectives;
  std::uint64_t pool_fingerprint = 0;

  bool operator==(const RunMeta&) const = default;
};

/// Per-candidate uncertainty region in a full snapshot record.
struct RegionSnapshotEntry {
  std::uint64_t id = 0;
  std::vector<double> lo;
  std::vector<double> hi;
};

struct JournalOptions {
  /// Rotate (seal + atomically rename) the active segment above this size.
  std::size_t segment_bytes = std::size_t{4} << 20;
  /// fsync the active segment at every batch commit. A SIGKILL never loses
  /// page-cache data, so this only matters for kernel crashes / power loss;
  /// still cheap enough to default on (one fsync per selection batch).
  bool fsync_each_commit = true;
  /// Write a FULL per-point region snapshot every this-many rounds
  /// (0 = digests only; digests alone are sufficient for verified resume,
  /// snapshots serve offline inspection and defense-in-depth).
  std::size_t region_snapshot_every = 0;
};

/// Order-insensitive-free 64-bit mixing (boost::hash_combine style); used
/// for the pool fingerprint and region digests. Sequence-sensitive.
inline std::uint64_t mix_hash(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
}
std::uint64_t hash_doubles(std::uint64_t h, std::span<const double> values);

/// CRC32 (reflected, poly 0xEDB88320; zlib-compatible). Guards every journal
/// and ledger record frame against torn writes and bit rot.
std::uint32_t crc32(const void* data, std::size_t len);

// ---- Parsed journal contents (introspection / tests / tooling) -----------

struct JournalEntry {
  enum class Kind : unsigned char {
    kRunHeader = 1,
    kSelection = 2,
    kReveal = 3,
    kBatchCommit = 4,
    kRegions = 5,
    kShutdown = 6,
  };
  Kind kind = Kind::kRunHeader;
  // kRunHeader
  RunMeta meta;
  // kSelection / kBatchCommit
  Phase phase = Phase::kInit;
  std::uint64_t round = 0;
  std::vector<std::uint64_t> ids;
  // kReveal
  RevealRecord reveal;
  // kBatchCommit
  std::uint64_t runs_after = 0;
  std::array<std::uint64_t, 4> rng_state{};
  // kRegions
  std::uint64_t alive_count = 0;
  std::uint64_t region_digest = 0;
  std::vector<RegionSnapshotEntry> snapshot;  ///< empty when digest-only
  // kShutdown
  ShutdownReason reason = ShutdownReason::kCompleted;
};

/// Everything read back from a journal directory, with corruption metadata.
struct JournalContents {
  std::vector<JournalEntry> entries;
  /// True when a torn/corrupt tail was detected; entries past it were
  /// discarded (and physically truncated by RunJournal::open_resume).
  bool truncated = false;
  /// Human-readable description of the truncation point (empty when clean).
  std::string truncation_note;
  std::size_t segments = 0;  ///< segment files read
};

/// Reads a journal directory without opening it for appending. Torn or
/// CRC-corrupt tails are reported via `truncated`, not thrown; structural
/// impossibilities (bad magic, unknown version) throw JournalError.
JournalContents read_journal(const std::string& dir);

// ---- The write-ahead log --------------------------------------------------

/// Append-side (and resume-side) handle on one run's journal. The tuner
/// drives it through a strict per-batch protocol:
///
///   begin_run(meta)                      once, before any batch
///   for each selection batch:
///     begin_batch(phase, round, ids)  -> replayed outcomes, maybe partial
///     append_reveal(record)              for outcomes not already replayed
///                                        (thread-safe; EvalService workers
///                                        may call this mid-batch)
///     commit_batch(..., rng_state)       flush point; verifies RNG on replay
///   record_regions(round, digest, ...)   once per round, before selection
///   record_shutdown(reason, rounds)      on exit (graceful or completed)
///
/// Opened via create() the journal starts empty and records. Opened via
/// open_resume() it first REPLAYS: begin_batch serves recorded outcomes and
/// verifies the selection against the recorded one; commit_batch and
/// record_regions verify RNG words and region digests instead of writing.
/// When the recorded entries are exhausted (including mid-batch, after a
/// crash) the journal transparently switches to recording, so one code path
/// in the tuner covers fresh runs, resumed runs, and torn tails.
class RunJournal {
 public:
  /// Creates `dir` (must not already contain a journal) and opens segment 1.
  static std::unique_ptr<RunJournal> create(const std::string& dir,
                                            JournalOptions options = {});
  /// Opens an existing journal for resume: reads it back, physically
  /// truncates any torn/corrupt tail (logging what was dropped), and arms
  /// replay. Throws JournalError when `dir` holds no journal.
  static std::unique_ptr<RunJournal> open_resume(const std::string& dir,
                                                 JournalOptions options = {});

  ~RunJournal();
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// True while recorded entries remain to be replayed.
  bool replaying() const;
  /// Reveal outcomes served from the journal so far (diagnostics).
  std::size_t replayed_reveals() const { return replayed_reveals_; }
  /// True between begin_batch and commit_batch.
  bool batch_open() const { return batch_open_; }
  const std::string& directory() const { return dir_; }
  const JournalOptions& options() const { return options_; }
  /// Wall-clock seconds spent RECORDING (record encoding, writes, fsync)
  /// over the journal's lifetime; replay-verification work on resume is
  /// excluded, so the number means the same thing for fresh and resumed
  /// runs. The per-round cost is far smaller than run-to-run scheduling
  /// noise, so benchmarks report this directly instead of differencing two
  /// end-to-end timings.
  double write_seconds() const;

  /// Fresh: appends the run header. Resume: verifies `meta` against the
  /// recorded header, throwing JournalMismatchError on any difference.
  void begin_run(const RunMeta& meta);

  struct BatchReplay {
    /// Recorded outcomes for this batch's ids; a torn batch yields a strict
    /// subset (the caller evaluates the rest live).
    std::unordered_map<std::uint64_t, RevealRecord> outcomes;
    /// True when the recorded batch reached its commit marker.
    bool committed = false;
  };
  /// Opens a selection batch. Replay: verifies (phase, round, ids) against
  /// the recorded selection and returns the recorded outcomes. Recording:
  /// appends the selection record and returns an empty BatchReplay.
  BatchReplay begin_batch(Phase phase, std::uint64_t round,
                          std::span<const std::size_t> ids);
  /// Appends one reveal outcome for the open batch and writes it through to
  /// the segment file immediately, so the record survives a SIGKILL the
  /// moment the call returns. Ids already journaled for this batch
  /// (replayed, or appended concurrently by an evaluation worker) are
  /// skipped, so the tuner can blanket-append after the batch without
  /// double-writing. Thread-safe. No-op when no batch is open.
  void append_reveal(const RevealRecord& record);
  /// Closes the batch: recording appends the commit marker and flushes
  /// (+fsync per JournalOptions) — the fsync point against kernel crash /
  /// power loss; replay verifies `runs_after` and `rng_state` against the
  /// recorded commit.
  void commit_batch(Phase phase, std::uint64_t round, std::uint64_t runs_after,
                    const std::array<std::uint64_t, 4>& rng_state);

  /// Journals (or, on replay, verifies) the round's uncertainty-region
  /// digest. `snapshot` is invoked only when a full snapshot is due per
  /// JournalOptions::region_snapshot_every.
  void record_regions(
      std::uint64_t round, std::uint64_t alive_count, std::uint64_t digest,
      const std::function<std::vector<RegionSnapshotEntry>()>& snapshot = {});

  /// Journals the loop exit (informational; replay skips recorded ones).
  void record_shutdown(ShutdownReason reason, std::uint64_t rounds);

  /// Flushes buffered records to disk (fsync per options).
  void flush();

 private:
  RunJournal(std::string dir, JournalOptions options);

  void load_for_resume();
  void append_entry_bytes(std::uint8_t type, const std::string& payload);
  void flush_locked();
  void rotate_locked();
  void open_segment_locked(std::size_t seq);
  const JournalEntry* peek() const;
  void advance();

  std::string dir_;
  JournalOptions options_;

  mutable std::mutex mutex_;
  // Replay state.
  std::vector<JournalEntry> entries_;
  std::size_t cursor_ = 0;
  std::size_t replayed_reveals_ = 0;
  // Open-batch state.
  bool batch_open_ = false;
  Phase batch_phase_ = Phase::kInit;
  std::uint64_t batch_round_ = 0;
  std::unordered_set<std::uint64_t> batch_recorded_ids_;
  std::optional<JournalEntry> pending_commit_;  ///< replayed commit marker
  // Writer state.
  int fd_ = -1;
  std::size_t segment_seq_ = 0;
  std::size_t segment_size_ = 0;
  std::string buffer_;
  std::uint64_t rounds_snapshotted_ = 0;
  double write_seconds_ = 0.0;
};

// ---- Graceful shutdown ----------------------------------------------------
//
// One process-level SIGINT/SIGTERM dispatcher serves every run in the
// process: the (async-signal-safe) handler fans each signal out to all
// registered runs, so N concurrent in-process tuning sessions each observe
// the stop on their own token — no session's registration clobbers
// another's graceful-stop path. Single-run drivers can keep using the
// process-wide flag functions below; multi-session hosts register one
// ScopedSignalStop per run.

/// Installs the dispatcher's SIGINT/SIGTERM handlers (idempotent — the
/// dispatcher is process-level state, so repeated installation from many
/// runs is safe and changes nothing). Drivers poll shutdown_requested()
/// via PPATunerOptions::should_stop so the tuner drains the in-flight
/// batch, commits the journal, and returns cleanly.
void install_graceful_shutdown_handlers();
/// True once SIGINT or SIGTERM was received after installation
/// (process-wide; per-run visibility is ScopedSignalStop's job).
bool shutdown_requested();
/// Clears the process-wide flag (tests). Does not clear per-run tokens.
void reset_shutdown_flag();

/// One run's registration with the signal dispatcher, RAII. Construction
/// installs the handlers (idempotently) and claims a dispatcher slot;
/// destruction releases it. A SIGINT/SIGTERM arriving while registered
/// fires EVERY live token, so concurrent sessions all drain; a token
/// created after the signal starts unfired. request_stop() fires only this
/// token (per-session cancellation, server shutdown fan-in). Thread-safe;
/// stop_requested() is wait-free and safe to poll from should_stop.
class ScopedSignalStop {
 public:
  ScopedSignalStop();
  ~ScopedSignalStop();

  ScopedSignalStop(const ScopedSignalStop&) = delete;
  ScopedSignalStop& operator=(const ScopedSignalStop&) = delete;

  bool stop_requested() const;
  void request_stop();

 private:
  /// Dispatcher slot index; -1 when the slot table was exhausted and the
  /// token fell back to the process-wide flag.
  int slot_ = -1;
};

}  // namespace ppat::journal
