#include "journal/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/log.hpp"

namespace ppat::journal {
namespace fs = std::filesystem;

namespace {

// ---- CRC32 (reflected, poly 0xEDB88320; same as zlib's crc32) ------------

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

// ---- Little-endian serialization -----------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out.append(s);
}

/// Bounds-checked payload reader. An underflow inside a CRC-valid record
/// means a writer bug or format skew, not a torn tail, so it throws.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }
  std::vector<double> f64_vec() {
    const std::uint64_t n = u64();
    std::vector<double> v(n);
    for (std::uint64_t i = 0; i < n; ++i) v[i] = f64();
    return v;
  }
  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = u64();
    std::vector<std::uint64_t> v(n);
    for (std::uint64_t i = 0; i < n; ++i) v[i] = u64();
    return v;
  }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::uint64_t n) {
    if (n > size_ - pos_) {
      throw JournalError("journal record payload underflow");
    }
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- Segment framing ------------------------------------------------------

constexpr char kMagic[8] = {'P', 'P', 'A', 'T', 'J', 'N', 'L', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 8 + 4 + 4;  // magic, version, seq
constexpr std::size_t kFrameBytes = 4 + 4 + 1;          // len, crc, type
/// Sanity bound on a single record payload; anything larger is corruption.
constexpr std::uint32_t kMaxPayload = 256u << 20;

std::string segment_header(std::uint32_t seq) {
  std::string h(kMagic, sizeof(kMagic));
  put_u32(h, kVersion);
  put_u32(h, seq);
  return h;
}

std::string segment_name(std::size_t seq, bool sealed) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu.%s", seq, sealed ? "seg" : "open");
  return buf;
}

// ---- Entry payload encode/decode -----------------------------------------

std::string encode_meta(const RunMeta& m) {
  std::string p;
  put_u64(p, m.seed);
  put_f64(p, m.tau);
  put_f64(p, m.delta_rel);
  put_f64(p, m.init_fraction);
  put_u64(p, m.batch_size);
  put_u64(p, m.min_init);
  put_u64(p, m.refit_every);
  put_u64(p, m.max_runs);
  put_u64(p, m.max_rounds);
  put_u64(p, m.pool_size);
  put_u64(p, m.num_objectives);
  put_u64(p, m.objectives.size());
  for (std::uint64_t o : m.objectives) put_u64(p, o);
  put_u64(p, m.pool_fingerprint);
  return p;
}

RunMeta decode_meta(Reader& r) {
  RunMeta m;
  m.seed = r.u64();
  m.tau = r.f64();
  m.delta_rel = r.f64();
  m.init_fraction = r.f64();
  m.batch_size = r.u64();
  m.min_init = r.u64();
  m.refit_every = r.u64();
  m.max_runs = r.u64();
  m.max_rounds = r.u64();
  m.pool_size = r.u64();
  m.num_objectives = r.u64();
  m.objectives = r.u64_vec();
  m.pool_fingerprint = r.u64();
  return m;
}

std::string encode_reveal(const RevealRecord& rec) {
  std::string p;
  put_u64(p, rec.id);
  put_u8(p, static_cast<std::uint8_t>(rec.status));
  put_u32(p, rec.attempts);
  put_f64(p, rec.elapsed_ms);
  put_u64(p, rec.objectives.size());
  for (double v : rec.objectives) put_f64(p, v);
  put_string(p, rec.error);
  return p;
}

RevealRecord decode_reveal(Reader& r) {
  RevealRecord rec;
  rec.id = r.u64();
  rec.status = static_cast<RevealStatus>(r.u8());
  rec.attempts = r.u32();
  rec.elapsed_ms = r.f64();
  rec.objectives = r.f64_vec();
  rec.error = r.str();
  return rec;
}

JournalEntry decode_entry(std::uint8_t type, const char* payload,
                          std::size_t len) {
  Reader r(payload, len);
  JournalEntry e;
  e.kind = static_cast<JournalEntry::Kind>(type);
  switch (e.kind) {
    case JournalEntry::Kind::kRunHeader:
      e.meta = decode_meta(r);
      break;
    case JournalEntry::Kind::kSelection:
      e.phase = static_cast<Phase>(r.u8());
      e.round = r.u64();
      e.ids = r.u64_vec();
      break;
    case JournalEntry::Kind::kReveal:
      e.reveal = decode_reveal(r);
      break;
    case JournalEntry::Kind::kBatchCommit:
      e.phase = static_cast<Phase>(r.u8());
      e.round = r.u64();
      e.runs_after = r.u64();
      for (auto& w : e.rng_state) w = r.u64();
      break;
    case JournalEntry::Kind::kRegions: {
      e.round = r.u64();
      e.alive_count = r.u64();
      e.region_digest = r.u64();
      const std::uint8_t has_snapshot = r.u8();
      if (has_snapshot != 0) {
        const std::uint64_t count = r.u64();
        e.snapshot.resize(count);
        for (auto& entry : e.snapshot) {
          entry.id = r.u64();
          entry.lo = r.f64_vec();
          entry.hi = r.f64_vec();
        }
      }
      break;
    }
    case JournalEntry::Kind::kShutdown:
      e.reason = static_cast<ShutdownReason>(r.u8());
      e.round = r.u64();
      break;
    default:
      throw JournalError("journal record has unknown type " +
                         std::to_string(int(type)));
  }
  if (!r.done()) {
    throw JournalError("journal record has trailing payload bytes");
  }
  return e;
}

// ---- Directory scan + parse ----------------------------------------------

struct SegmentFile {
  std::size_t seq = 0;
  fs::path path;
  bool sealed = false;
  /// Bytes of this segment covered by valid records (header included);
  /// equal to the file size for clean segments, the truncation point for a
  /// torn one, and 0 for segments discarded after a corruption.
  std::size_t valid_bytes = 0;
};

std::vector<SegmentFile> scan_segments(const std::string& dir) {
  std::vector<SegmentFile> files;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (!de.is_regular_file()) continue;
    const std::string name = de.path().filename().string();
    const auto dot = name.find('.');
    if (dot == std::string::npos || dot == 0) continue;
    const std::string ext = name.substr(dot + 1);
    const bool sealed = ext == "seg";
    if (!sealed && ext != "open") continue;
    const std::string stem = name.substr(0, dot);
    if (stem.find_first_not_of("0123456789") != std::string::npos) continue;
    std::size_t seq = 0;
    try {
      seq = std::stoul(stem);
    } catch (const std::exception&) {
      // An all-digit stem too large for size_t is still a structural
      // problem, and those throw JournalError — never std::out_of_range.
      throw JournalError("journal segment sequence out of range: " + name);
    }
    files.push_back({seq, de.path(), sealed, 0});
  }
  if (ec) {
    throw JournalError("cannot read journal directory " + dir + ": " +
                       ec.message());
  }
  std::sort(files.begin(), files.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.seq < b.seq;
            });
  for (std::size_t i = 1; i < files.size(); ++i) {
    if (files[i].seq == files[i - 1].seq) {
      throw JournalError("journal has duplicate segment sequence " +
                         std::to_string(files[i].seq));
    }
  }
  return files;
}

struct ParseResult {
  JournalContents contents;
  std::vector<SegmentFile> files;  ///< with valid_bytes filled in
};

ParseResult parse_journal(const std::string& dir) {
  ParseResult result;
  result.files = scan_segments(dir);
  bool corrupt = false;
  for (std::size_t fi = 0; fi < result.files.size(); ++fi) {
    SegmentFile& seg = result.files[fi];
    if (corrupt) continue;  // discarded: everything after the torn point
    std::ifstream in(seg.path, std::ios::binary);
    if (!in) {
      throw JournalError("cannot open journal segment " + seg.path.string());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string data = ss.str();
    auto truncate_here = [&](std::size_t offset, const std::string& why) {
      corrupt = true;
      result.contents.truncated = true;
      result.contents.truncation_note = seg.path.filename().string() + " @" +
                                        std::to_string(offset) + ": " + why;
      seg.valid_bytes = offset;
    };
    if (data.size() < kSegmentHeaderBytes ||
        std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
      if (fi == 0) {
        throw JournalError("not a PPATuner journal: " + seg.path.string());
      }
      truncate_here(0, "bad segment header");
      continue;
    }
    {
      Reader hr(data.data() + sizeof(kMagic), 8);
      const std::uint32_t version = hr.u32();
      const std::uint32_t seq = hr.u32();
      if (version != kVersion) {
        throw JournalError("unsupported journal version " +
                           std::to_string(version));
      }
      if (seq != seg.seq) {
        if (fi == 0) {
          throw JournalError("journal segment sequence mismatch in " +
                             seg.path.string());
        }
        truncate_here(0, "segment sequence mismatch");
        continue;
      }
    }
    result.contents.segments += 1;
    std::size_t pos = kSegmentHeaderBytes;
    while (pos < data.size()) {
      if (data.size() - pos < kFrameBytes) {
        truncate_here(pos, "short record frame");
        break;
      }
      Reader fr(data.data() + pos, kFrameBytes);
      const std::uint32_t len = fr.u32();
      const std::uint32_t stored_crc = fr.u32();
      if (len > kMaxPayload || data.size() - pos - kFrameBytes < len) {
        truncate_here(pos, "short record payload");
        break;
      }
      // CRC covers type byte + payload, so a bit flip anywhere in the
      // record body (including its type) is caught.
      const char* body = data.data() + pos + 8;
      if (crc32(body, 1 + len) != stored_crc) {
        truncate_here(pos, "CRC mismatch");
        break;
      }
      result.contents.entries.push_back(
          decode_entry(static_cast<std::uint8_t>(body[0]), body + 1, len));
      pos += kFrameBytes + len;
    }
    if (!corrupt) seg.valid_bytes = data.size();
  }
  return result;
}

void fsync_path(const fs::path& p) {
  const int fd = ::open(p.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

// ---- Graceful shutdown dispatcher ----------------------------------------
//
// One process-level handler fans a SIGINT/SIGTERM out to every registered
// run. The handler may only touch lock-free atomics, so registrations live
// in a fixed static slot array: claiming a slot is a CAS on `active`,
// firing is a relaxed store to `fired`, and the handler never follows a
// pointer or takes a lock. Slots are recycled after release, so the table
// never grows and nothing is ever freed under the handler's feet.

volatile std::sig_atomic_t g_shutdown_flag = 0;

constexpr std::size_t kStopSlots = 256;

struct StopSlot {
  std::atomic<bool> active{false};
  std::atomic<bool> fired{false};
};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires lock-free atomic<bool>");

StopSlot g_stop_slots[kStopSlots];

extern "C" void ppat_journal_signal_handler(int) {
  g_shutdown_flag = 1;
  for (std::size_t i = 0; i < kStopSlots; ++i) {
    if (g_stop_slots[i].active.load(std::memory_order_relaxed)) {
      g_stop_slots[i].fired.store(true, std::memory_order_relaxed);
    }
  }
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* reveal_status_name(RevealStatus status) {
  switch (status) {
    case RevealStatus::kOk:
      return "ok";
    case RevealStatus::kFailed:
      return "failed";
    case RevealStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

std::uint64_t hash_doubles(std::uint64_t h, std::span<const double> values) {
  for (double v : values) h = mix_hash(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

JournalContents read_journal(const std::string& dir) {
  if (!fs::exists(dir)) {
    throw JournalError("journal directory does not exist: " + dir);
  }
  ParseResult parsed = parse_journal(dir);
  if (parsed.files.empty()) {
    throw JournalError("no journal segments in " + dir);
  }
  return std::move(parsed.contents);
}

// ---- RunJournal -----------------------------------------------------------

RunJournal::RunJournal(std::string dir, JournalOptions options)
    : dir_(std::move(dir)), options_(options) {}

RunJournal::~RunJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    flush_locked();
    if (options_.fsync_each_commit) ::fdatasync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<RunJournal> RunJournal::create(const std::string& dir,
                                               JournalOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw JournalError("cannot create journal directory " + dir + ": " +
                       ec.message());
  }
  if (!scan_segments(dir).empty()) {
    throw JournalError("journal directory already contains a journal: " + dir +
                       " (use open_resume to continue it)");
  }
  std::unique_ptr<RunJournal> j(new RunJournal(dir, options));
  std::lock_guard<std::mutex> lock(j->mutex_);
  j->open_segment_locked(1);
  return j;
}

std::unique_ptr<RunJournal> RunJournal::open_resume(const std::string& dir,
                                                    JournalOptions options) {
  std::unique_ptr<RunJournal> j(new RunJournal(dir, options));
  j->load_for_resume();
  return j;
}

void RunJournal::load_for_resume() {
  if (!fs::exists(dir_)) {
    throw JournalError("journal directory does not exist: " + dir_);
  }
  ParseResult parsed = parse_journal(dir_);
  if (parsed.files.empty()) {
    throw JournalError("no journal segments in " + dir_);
  }
  if (parsed.contents.truncated) {
    PPAT_WARN << "journal " << dir_ << " has a torn/corrupt tail ("
              << parsed.contents.truncation_note
              << "); truncating to the last valid record ("
              << parsed.contents.entries.size() << " entries survive)";
  }
  // Physically drop everything past the last valid record so a later resume
  // (or an external reader) never re-parses the corrupt tail.
  std::size_t last_seq = 0;
  for (const SegmentFile& seg : parsed.files) {
    if (seg.valid_bytes == 0 ||
        (seg.valid_bytes <= kSegmentHeaderBytes && parsed.contents.truncated)) {
      std::error_code ec;
      fs::remove(seg.path, ec);
      continue;
    }
    std::error_code ec;
    if (seg.valid_bytes < fs::file_size(seg.path, ec)) {
      const int fd = ::open(seg.path.c_str(), O_WRONLY);
      if (fd < 0 ||
          ::ftruncate(fd, static_cast<off_t>(seg.valid_bytes)) != 0) {
        if (fd >= 0) ::close(fd);
        throw JournalError("cannot truncate torn journal segment " +
                           seg.path.string());
      }
      ::fsync(fd);
      ::close(fd);
    }
    if (!seg.sealed) {
      // Seal the surviving tail: its content is now known-valid, and the
      // resumed run appends into a fresh segment.
      fs::path sealed = seg.path.parent_path() / segment_name(seg.seq, true);
      fs::rename(seg.path, sealed, ec);
      if (ec) {
        throw JournalError("cannot seal journal segment " + seg.path.string() +
                           ": " + ec.message());
      }
      fsync_path(seg.path.parent_path());
    }
    last_seq = std::max(last_seq, seg.seq);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  entries_ = std::move(parsed.contents.entries);
  cursor_ = 0;
  open_segment_locked(last_seq + 1);
}

void RunJournal::open_segment_locked(std::size_t seq) {
  segment_seq_ = seq;
  const fs::path path = fs::path(dir_) / segment_name(seq, false);
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    throw JournalError("cannot open journal segment " + path.string() + ": " +
                       std::strerror(errno));
  }
  buffer_ = segment_header(static_cast<std::uint32_t>(seq));
  segment_size_ = buffer_.size();
}

void RunJournal::flush_locked() {
  std::size_t off = 0;
  while (off < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + off, buffer_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw JournalError(std::string("journal write failed: ") +
                         std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  buffer_.clear();
}

void RunJournal::rotate_locked() {
  flush_locked();
  ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
  const fs::path open_path = fs::path(dir_) / segment_name(segment_seq_, false);
  const fs::path sealed_path =
      fs::path(dir_) / segment_name(segment_seq_, true);
  std::error_code ec;
  fs::rename(open_path, sealed_path, ec);
  if (ec) {
    throw JournalError("cannot seal journal segment " + open_path.string() +
                       ": " + ec.message());
  }
  fsync_path(fs::path(dir_));
  open_segment_locked(segment_seq_ + 1);
}

void RunJournal::append_entry_bytes(std::uint8_t type,
                                    const std::string& payload) {
  std::string body;
  body.reserve(1 + payload.size());
  put_u8(body, type);
  body.append(payload);
  std::string frame;
  frame.reserve(kFrameBytes + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(body.data(), body.size()));
  frame.append(body);
  buffer_.append(frame);
  segment_size_ += frame.size();
  if (segment_size_ >= options_.segment_bytes) {
    rotate_locked();
  }
}

const JournalEntry* RunJournal::peek() const {
  return cursor_ < entries_.size() ? &entries_[cursor_] : nullptr;
}

void RunJournal::advance() {
  ++cursor_;
  if (cursor_ >= entries_.size()) {
    // Replay finished: free the recorded entries eagerly (a long run's
    // region snapshots can be large).
    entries_.clear();
    entries_.shrink_to_fit();
    cursor_ = 0;
  }
}

bool RunJournal::replaying() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cursor_ < entries_.size();
}

double RunJournal::write_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_seconds_;
}

namespace {
/// Accumulates the enclosing scope's wall time into `acc`. Constructed after
/// the journal mutex is taken, so the addition is race-free.
class ScopedWriteTimer {
 public:
  explicit ScopedWriteTimer(double& acc)
      : acc_(acc), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedWriteTimer() {
    acc_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0_)
                .count();
  }

 private:
  double& acc_;
  std::chrono::steady_clock::time_point t0_;
};
}  // namespace

void RunJournal::begin_run(const RunMeta& meta) {
  std::lock_guard<std::mutex> lock(mutex_);
  const JournalEntry* e = peek();
  if (e != nullptr) {
    if (e->kind != JournalEntry::Kind::kRunHeader) {
      throw JournalMismatchError("journal does not start with a run header");
    }
    if (!(e->meta == meta)) {
      throw JournalMismatchError(
          "journal was recorded under a different run configuration "
          "(seed/options/objectives/pool mismatch); refusing to resume");
    }
    advance();
    return;
  }
  ScopedWriteTimer timer(write_seconds_);
  append_entry_bytes(static_cast<std::uint8_t>(JournalEntry::Kind::kRunHeader),
                     encode_meta(meta));
  flush_locked();
}

RunJournal::BatchReplay RunJournal::begin_batch(
    Phase phase, std::uint64_t round, std::span<const std::size_t> ids) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (batch_open_) {
    throw JournalError("begin_batch while a batch is already open");
  }
  batch_open_ = true;
  batch_phase_ = phase;
  batch_round_ = round;
  batch_recorded_ids_.clear();
  pending_commit_.reset();
  BatchReplay replay;

  const JournalEntry* e = peek();
  while (e != nullptr && e->kind == JournalEntry::Kind::kShutdown) {
    advance();
    e = peek();
  }
  if (e != nullptr) {
    if (e->kind != JournalEntry::Kind::kSelection || e->phase != phase ||
        e->round != round || e->ids.size() != ids.size() ||
        !std::equal(ids.begin(), ids.end(), e->ids.begin())) {
      throw JournalMismatchError(
          "replayed selection diverged from the journal at round " +
          std::to_string(round) + "; refusing to resume");
    }
    advance();
    // Consume this batch's recorded outcomes (possibly a strict subset when
    // the run died mid-batch) and, if present, its commit marker.
    while ((e = peek()) != nullptr &&
           e->kind == JournalEntry::Kind::kReveal) {
      replay.outcomes[e->reveal.id] = e->reveal;
      batch_recorded_ids_.insert(e->reveal.id);
      advance();
    }
    if (e != nullptr && e->kind == JournalEntry::Kind::kBatchCommit) {
      if (e->phase != phase || e->round != round) {
        throw JournalMismatchError(
            "journal batch commit does not match its selection");
      }
      pending_commit_ = *e;
      replay.committed = true;
      advance();
    }
    replayed_reveals_ += replay.outcomes.size();
    return replay;
  }
  // Recording: append the selection and write it through immediately —
  // resume needs the selection on disk before any of its reveals, or a
  // crash mid-batch would orphan the per-completion records that follow.
  ScopedWriteTimer timer(write_seconds_);
  std::string p;
  put_u8(p, static_cast<std::uint8_t>(phase));
  put_u64(p, round);
  put_u64(p, ids.size());
  for (std::size_t id : ids) put_u64(p, id);
  append_entry_bytes(static_cast<std::uint8_t>(JournalEntry::Kind::kSelection),
                     p);
  flush_locked();
  return replay;
}

void RunJournal::append_reveal(const RevealRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  ScopedWriteTimer timer(write_seconds_);
  if (!batch_open_) return;
  if (!batch_recorded_ids_.insert(record.id).second) return;  // already logged
  append_entry_bytes(static_cast<std::uint8_t>(JournalEntry::Kind::kReveal),
                     encode_reveal(record));
  // Write through immediately: the record must reach the fd (page cache is
  // enough to survive SIGKILL/OOM-kill) the moment the run completes, not
  // at the batch commit — each reveal is hours of tool time.
  flush_locked();
}

void RunJournal::commit_batch(Phase phase, std::uint64_t round,
                              std::uint64_t runs_after,
                              const std::array<std::uint64_t, 4>& rng_state) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!batch_open_ || batch_phase_ != phase || batch_round_ != round) {
    throw JournalError("commit_batch does not match the open batch");
  }
  batch_open_ = false;
  if (pending_commit_.has_value()) {
    // Replay verification: the resumed run must land on exactly the
    // recorded budget and RNG stream, or it is not bit-identical.
    if (pending_commit_->runs_after != runs_after ||
        pending_commit_->rng_state != rng_state) {
      throw JournalMismatchError(
          "replayed run diverged from the journal (runs/RNG state mismatch "
          "after batch at round " + std::to_string(round) + ")");
    }
    pending_commit_.reset();
    return;
  }
  ScopedWriteTimer timer(write_seconds_);
  std::string p;
  put_u8(p, static_cast<std::uint8_t>(phase));
  put_u64(p, round);
  put_u64(p, runs_after);
  for (std::uint64_t w : rng_state) put_u64(p, w);
  append_entry_bytes(
      static_cast<std::uint8_t>(JournalEntry::Kind::kBatchCommit), p);
  flush_locked();
  if (options_.fsync_each_commit) ::fdatasync(fd_);
}

void RunJournal::record_regions(
    std::uint64_t round, std::uint64_t alive_count, std::uint64_t digest,
    const std::function<std::vector<RegionSnapshotEntry>()>& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  const JournalEntry* e = peek();
  while (e != nullptr && e->kind == JournalEntry::Kind::kShutdown) {
    advance();
    e = peek();
  }
  if (e != nullptr) {
    if (e->kind != JournalEntry::Kind::kRegions || e->round != round) {
      throw JournalMismatchError(
          "journal is missing the uncertainty-region record for round " +
          std::to_string(round));
    }
    if (e->alive_count != alive_count || e->region_digest != digest) {
      throw JournalMismatchError(
          "replayed uncertainty regions diverged from the journal at round " +
          std::to_string(round) + "; refusing to resume");
    }
    advance();
    return;
  }
  ScopedWriteTimer timer(write_seconds_);
  const bool snapshot_due = options_.region_snapshot_every > 0 &&
                            round % options_.region_snapshot_every == 0 &&
                            snapshot;
  std::string p;
  put_u64(p, round);
  put_u64(p, alive_count);
  put_u64(p, digest);
  put_u8(p, snapshot_due ? 1 : 0);
  if (snapshot_due) {
    const std::vector<RegionSnapshotEntry> entries = snapshot();
    put_u64(p, entries.size());
    for (const RegionSnapshotEntry& entry : entries) {
      put_u64(p, entry.id);
      put_u64(p, entry.lo.size());
      for (double v : entry.lo) put_f64(p, v);
      put_u64(p, entry.hi.size());
      for (double v : entry.hi) put_f64(p, v);
    }
    rounds_snapshotted_ += 1;
  }
  append_entry_bytes(static_cast<std::uint8_t>(JournalEntry::Kind::kRegions),
                     p);
}

void RunJournal::record_shutdown(ShutdownReason reason, std::uint64_t rounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const JournalEntry* e = peek();
  if (e != nullptr && e->kind == JournalEntry::Kind::kShutdown) {
    advance();
    return;
  }
  if (cursor_ < entries_.size()) return;  // still replaying: nothing to write
  ScopedWriteTimer timer(write_seconds_);
  std::string p;
  put_u8(p, static_cast<std::uint8_t>(reason));
  put_u64(p, rounds);
  append_entry_bytes(static_cast<std::uint8_t>(JournalEntry::Kind::kShutdown),
                     p);
  flush_locked();
  if (options_.fsync_each_commit) ::fdatasync(fd_);
}

void RunJournal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  ScopedWriteTimer timer(write_seconds_);
  flush_locked();
  if (options_.fsync_each_commit && fd_ >= 0) ::fdatasync(fd_);
}

// ---- Graceful shutdown ----------------------------------------------------

void install_graceful_shutdown_handlers() {
  std::signal(SIGINT, ppat_journal_signal_handler);
  std::signal(SIGTERM, ppat_journal_signal_handler);
}

bool shutdown_requested() { return g_shutdown_flag != 0; }

void reset_shutdown_flag() { g_shutdown_flag = 0; }

ScopedSignalStop::ScopedSignalStop() {
  install_graceful_shutdown_handlers();
  for (std::size_t i = 0; i < kStopSlots; ++i) {
    bool expected = false;
    if (g_stop_slots[i].active.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      g_stop_slots[i].fired.store(false, std::memory_order_relaxed);
      slot_ = static_cast<int>(i);
      return;
    }
  }
  // Slot table exhausted (more than kStopSlots concurrent runs): fall back
  // to the process-wide flag, which the handler always sets. Such a token
  // over-reports stops (any signal stops it) but never misses one.
  slot_ = -1;
}

ScopedSignalStop::~ScopedSignalStop() {
  if (slot_ >= 0) {
    g_stop_slots[static_cast<std::size_t>(slot_)].active.store(
        false, std::memory_order_release);
  }
}

bool ScopedSignalStop::stop_requested() const {
  if (slot_ < 0) return g_shutdown_flag != 0;
  return g_stop_slots[static_cast<std::size_t>(slot_)].fired.load(
      std::memory_order_relaxed);
}

void ScopedSignalStop::request_stop() {
  if (slot_ >= 0) {
    g_stop_slots[static_cast<std::size_t>(slot_)].fired.store(
        true, std::memory_order_relaxed);
  } else {
    g_shutdown_flag = 1;
  }
}

}  // namespace ppat::journal
