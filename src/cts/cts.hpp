// Clock tree synthesis over a placed design.
//
// Builds a recursive-bipartition (H-tree-like) buffered clock distribution
// for the flip-flops of a placement: the sink set is split geometrically at
// the median of its wider spread axis until groups fit under one buffer,
// then buffers are merged bottom-up. Reports the structural quantities a
// clock network costs — buffer count, wire length, total switched
// capacitance, insertion delay, and a skew estimate.
//
// The pdsim flow itself prices the clock with the closed-form model in
// power::clock_tree_power_mw (cheap enough to call thousands of times when
// building benchmark tables); this module is the structural ground truth
// that model is calibrated against — the test suite asserts the two agree —
// and is what the clock_power_driven tool parameter physically means:
// power-driven CTS merges subtrees more aggressively (fewer, heavier
// buffers), cutting capacitance at a skew cost.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "place/placer.hpp"

namespace ppat::cts {

struct CtsOptions {
  /// Max sinks (FFs or child buffers) one buffer drives.
  unsigned max_fanout = 12;
  /// Power-driven CTS: merge harder (fewer buffers, less cap, more skew).
  bool power_driven = false;
  /// Wire constants default to the STA module's values.
  double wire_cap_ff_per_um = 0.35;
  double wire_res_kohm_per_um = 0.0040;
};

/// One node of the clock tree: a buffer (or the root driver) at a location.
struct ClockTreeNode {
  double x = 0.0, y = 0.0;
  std::vector<std::uint32_t> child_buffers;      ///< node indices
  std::vector<netlist::InstanceId> sink_flops;   ///< leaf connections
  int level = 0;                                 ///< root = 0
};

struct ClockTree {
  std::vector<ClockTreeNode> nodes;  ///< nodes[0] is the root
  std::size_t num_buffers = 0;       ///< excluding the root driver
  double total_wire_um = 0.0;
  double total_cap_ff = 0.0;     ///< wire + buffer + FF clock pins
  double insertion_delay_ns = 0.0;  ///< root-to-deepest-sink delay estimate
  double skew_ns = 0.0;             ///< max - min sink arrival estimate

  /// Power of this tree at the given voltage/frequency (alpha = 2 toggles
  /// per cycle with the 1/2 folded in).
  double power_mw(double voltage_v, double freq_ghz) const;
};

/// Synthesizes the tree. Requires at least one sequential instance.
/// Throws std::invalid_argument otherwise.
ClockTree synthesize_clock_tree(const netlist::Netlist& netlist,
                                const place::Placement& placement,
                                const CtsOptions& options = {});

}  // namespace ppat::cts
