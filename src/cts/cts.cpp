#include "cts/cts.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppat::cts {
namespace {

constexpr double kBufferInputCapFf = 1.0;   // CTS buffer input pin
constexpr double kBufferSelfCapFf = 1.2;    // internal + output self-load
constexpr double kBufferDelayNs = 0.010;    // intrinsic buffer delay
constexpr double kBufferDriveKohm = 1.2;    // strong clock buffer
constexpr double kFfClockPinCapFf = 0.45;

struct Sink {
  netlist::InstanceId id;
  double x, y;
};

/// Recursively partitions `sinks` (a mutable span range [begin, end)) and
/// emits tree nodes bottom-up; returns the node index created for the range.
std::uint32_t build(std::vector<Sink>& sinks, std::size_t begin,
                    std::size_t end, unsigned max_fanout, int level,
                    std::vector<ClockTreeNode>& nodes) {
  const std::size_t count = end - begin;
  if (count <= max_fanout) {
    ClockTreeNode node;
    node.level = level;
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      node.sink_flops.push_back(sinks[i].id);
      sx += sinks[i].x;
      sy += sinks[i].y;
    }
    node.x = sx / static_cast<double>(count);
    node.y = sy / static_cast<double>(count);
    nodes.push_back(std::move(node));
    return static_cast<std::uint32_t>(nodes.size() - 1);
  }

  // Split at the median of the axis with the wider spread.
  double min_x = 1e30, max_x = -1e30, min_y = 1e30, max_y = -1e30;
  for (std::size_t i = begin; i < end; ++i) {
    min_x = std::min(min_x, sinks[i].x);
    max_x = std::max(max_x, sinks[i].x);
    min_y = std::min(min_y, sinks[i].y);
    max_y = std::max(max_y, sinks[i].y);
  }
  const bool split_x = (max_x - min_x) >= (max_y - min_y);
  const std::size_t mid = begin + count / 2;
  std::nth_element(sinks.begin() + static_cast<std::ptrdiff_t>(begin),
                   sinks.begin() + static_cast<std::ptrdiff_t>(mid),
                   sinks.begin() + static_cast<std::ptrdiff_t>(end),
                   [split_x](const Sink& a, const Sink& b) {
                     return split_x ? a.x < b.x : a.y < b.y;
                   });

  const std::uint32_t left =
      build(sinks, begin, mid, max_fanout, level + 1, nodes);
  const std::uint32_t right =
      build(sinks, mid, end, max_fanout, level + 1, nodes);
  ClockTreeNode node;
  node.level = level;
  node.child_buffers = {left, right};
  node.x = 0.5 * (nodes[left].x + nodes[right].x);
  node.y = 0.5 * (nodes[right].y + nodes[left].y);
  nodes.push_back(std::move(node));
  return static_cast<std::uint32_t>(nodes.size() - 1);
}

double manhattan(double ax, double ay, double bx, double by) {
  return std::fabs(ax - bx) + std::fabs(ay - by);
}

}  // namespace

double ClockTree::power_mw(double voltage_v, double freq_ghz) const {
  const double v2 = voltage_v * voltage_v;
  return total_cap_ff * 1e-15 * v2 * freq_ghz * 1e9 * 1e3;
}

namespace {

ClockTree synthesize_with_fanout(const netlist::Netlist& nl,
                                 const place::Placement& placement,
                                 const CtsOptions& opt, unsigned fanout);

}  // namespace

ClockTree synthesize_clock_tree(const netlist::Netlist& nl,
                                const place::Placement& placement,
                                const CtsOptions& opt) {
  if (!opt.power_driven) {
    return synthesize_with_fanout(nl, placement, opt, opt.max_fanout);
  }
  // Power-driven CTS: search the fanout space (including the nominal value)
  // for the minimum-capacitance tree — trading buffer cap against leaf-wire
  // cap — and accept whatever skew that tree has.
  ClockTree best;
  bool have_best = false;
  for (const unsigned fanout :
       {opt.max_fanout, opt.max_fanout / 2, opt.max_fanout * 2,
        opt.max_fanout * 3}) {
    if (fanout < 2) continue;
    ClockTree tree = synthesize_with_fanout(nl, placement, opt, fanout);
    if (!have_best || tree.total_cap_ff < best.total_cap_ff) {
      best = std::move(tree);
      have_best = true;
    }
  }
  return best;
}

namespace {

ClockTree synthesize_with_fanout(const netlist::Netlist& nl,
                                 const place::Placement& placement,
                                 const CtsOptions& opt, unsigned fanout) {
  std::vector<Sink> sinks;
  for (netlist::InstanceId i = 0; i < nl.num_instances(); ++i) {
    if (nl.is_sequential(i)) {
      sinks.push_back({i, placement.x[i], placement.y[i]});
    }
  }
  if (sinks.empty()) {
    throw std::invalid_argument(
        "synthesize_clock_tree: design has no flip-flops");
  }

  ClockTree tree;
  const std::uint32_t root =
      build(sinks, 0, sinks.size(), std::max(2u, fanout), 0, tree.nodes);
  // Move the root to index 0 for the documented convention.
  if (root != 0) std::swap(tree.nodes[0], tree.nodes[root]);
  // Fix child indices after the swap.
  for (auto& node : tree.nodes) {
    for (auto& c : node.child_buffers) {
      if (c == 0) {
        c = root;
      } else if (c == root) {
        c = 0;
      }
    }
  }

  tree.num_buffers = tree.nodes.size() - 1;  // root driver not counted

  // Wire, capacitance, and per-sink arrival accounting (DFS from root).
  struct Frame {
    std::uint32_t node;
    double arrival_ns;
  };
  double min_arrival = 1e30, max_arrival = -1e30;
  std::vector<Frame> stack = {{0, 0.0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const ClockTreeNode& node = tree.nodes[f.node];

    // Load on this node's buffer: child buffer pins / FF clock pins plus
    // the wire to each child.
    double wire_um = 0.0;
    double pin_cap = 0.0;
    for (std::uint32_t c : node.child_buffers) {
      wire_um += manhattan(node.x, node.y, tree.nodes[c].x, tree.nodes[c].y);
      pin_cap += kBufferInputCapFf;
    }
    for (netlist::InstanceId ff : node.sink_flops) {
      wire_um += manhattan(node.x, node.y, placement.x[ff], placement.y[ff]);
      pin_cap += kFfClockPinCapFf;
    }
    const double wire_cap = wire_um * opt.wire_cap_ff_per_um;
    tree.total_wire_um += wire_um;
    tree.total_cap_ff += wire_cap + pin_cap + kBufferSelfCapFf;

    // Stage delay: buffer intrinsic + drive on (wire + pin) load, plus the
    // average wire RC of this stage.
    const double load = wire_cap + pin_cap;
    const double stage_delay =
        kBufferDelayNs + kBufferDriveKohm * load * 1e-3 +
        0.5 * (wire_um * opt.wire_res_kohm_per_um) * wire_cap * 1e-3;
    const double arrival = f.arrival_ns + stage_delay;

    if (node.child_buffers.empty()) {
      // Leaf level: sinks arrive here (plus their own small wire spread,
      // folded into the stage delay above).
      min_arrival = std::min(min_arrival, arrival);
      max_arrival = std::max(max_arrival, arrival);
    }
    for (std::uint32_t c : node.child_buffers) {
      stack.push_back({c, arrival});
    }
  }
  tree.insertion_delay_ns = max_arrival;
  tree.skew_ns = max_arrival - min_arrival;
  return tree;
}

}  // namespace

}  // namespace ppat::cts
