#include "flow/benchmark.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "sample/sampling.hpp"

namespace ppat::flow {

std::vector<linalg::Vector> BenchmarkSet::encoded_configs() const {
  std::vector<linalg::Vector> out;
  out.reserve(configs.size());
  for (const Config& c : configs) out.push_back(space.encode(c));
  return out;
}

std::vector<double> BenchmarkSet::metric_column(std::size_t metric) const {
  std::vector<double> out;
  out.reserve(qor.size());
  for (const QoR& q : qor) out.push_back(q.metric(metric));
  return out;
}

ParameterSpace source1_space() {
  return ParameterSpace({
      ParamSpec::real("freq", 950, 1050),
      ParamSpec::real("place_uncertainty", 50, 200),
      ParamSpec::enumeration("flowEffort", {"standard", "high", "extreme"}),
      ParamSpec::boolean("uniform_density"),
      ParamSpec::enumeration("cong_effort", {"AUTO", "HIGH"}),
      ParamSpec::real("max_density", 0.65, 0.90),
      ParamSpec::real("max_Length", 160, 310),
      ParamSpec::real("max_Density", 0.65, 0.90),
      ParamSpec::real("max_transition", 0.19, 0.34),
      ParamSpec::real("max_capacitance", 0.08, 0.13),
      ParamSpec::integer("max_fanout", 25, 50),
      ParamSpec::real("max_AllowedDelay", 0.00, 0.25),
  });
}

ParameterSpace target1_space() {
  return ParameterSpace({
      ParamSpec::real("freq", 1000, 1300),
      ParamSpec::real("place_uncertainty", 20, 100),
      ParamSpec::enumeration("flowEffort", {"standard", "high", "extreme"}),
      ParamSpec::boolean("uniform_density"),
      ParamSpec::enumeration("cong_effort", {"AUTO", "HIGH"}),
      ParamSpec::real("max_density", 0.65, 0.90),
      ParamSpec::real("max_Length", 160, 300),
      ParamSpec::real("max_Density", 0.65, 0.90),
      ParamSpec::real("max_transition", 0.10, 0.35),
      ParamSpec::real("max_capacitance", 0.08, 0.20),
      ParamSpec::integer("max_fanout", 25, 50),
      ParamSpec::real("max_AllowedDelay", 0.00, 0.25),
  });
}

ParameterSpace source2_space() {
  return ParameterSpace({
      ParamSpec::real("place_rcfactor", 1.00, 1.30),
      ParamSpec::enumeration("flowEffort", {"standard", "high", "extreme"}),
      ParamSpec::enumeration("timing_effort", {"medium", "high"}),
      ParamSpec::boolean("clock_power_driven"),
      ParamSpec::real("max_Length", 250, 350),
      ParamSpec::real("max_Density", 0.50, 1.00),
      ParamSpec::real("max_capacitance", 0.07, 0.12),
      ParamSpec::integer("max_fanout", 25, 40),
      ParamSpec::real("max_AllowedDelay", 0.06, 0.12),
  });
}

ParameterSpace target2_space() {
  return ParameterSpace({
      ParamSpec::real("place_rcfactor", 1.00, 1.30),
      ParamSpec::enumeration("flowEffort", {"standard", "high", "extreme"}),
      ParamSpec::enumeration("timing_effort", {"medium", "high"}),
      ParamSpec::boolean("clock_power_driven"),
      ParamSpec::real("max_Length", 250, 350),
      ParamSpec::real("max_Density", 0.50, 1.00),
      ParamSpec::real("max_capacitance", 0.05, 0.15),
      ParamSpec::integer("max_fanout", 25, 39),
      ParamSpec::real("max_AllowedDelay", 0.00, 0.12),
  });
}

BenchmarkSet build_benchmark(const std::string& name,
                             const ParameterSpace& space, std::size_t n,
                             QorOracle& oracle, std::uint64_t seed) {
  BenchmarkSet set;
  set.name = name;
  set.space = space;
  common::Rng rng(seed);
  const auto unit_points = sample::latin_hypercube(n, space.size(), rng);
  set.configs.reserve(n);
  set.qor.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    set.configs.push_back(space.decode(unit_points[i]));
    set.qor.push_back(oracle.evaluate(space, set.configs.back()));
    if ((i + 1) % 250 == 0) {
      PPAT_INFO << "benchmark " << name << ": " << (i + 1) << "/" << n
                << " golden points evaluated";
    }
  }
  return set;
}

void save_benchmark_csv(const std::string& path, const BenchmarkSet& set) {
  common::CsvTable table;
  for (const auto& spec : set.space.specs()) table.header.push_back(spec.name);
  table.header.insert(table.header.end(),
                      {"area_um2", "power_mw", "delay_ns"});
  char buf[64];
  for (std::size_t i = 0; i < set.size(); ++i) {
    std::vector<std::string> row;
    row.reserve(table.header.size());
    for (double v : set.configs[i]) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      row.emplace_back(buf);
    }
    for (std::size_t m = 0; m < QoR::kNumMetrics; ++m) {
      std::snprintf(buf, sizeof(buf), "%.17g", set.qor[i].metric(m));
      row.emplace_back(buf);
    }
    table.rows.push_back(std::move(row));
  }
  common::write_csv_file(path, table);
}

BenchmarkSet load_benchmark_csv(const std::string& path,
                                const std::string& name,
                                const ParameterSpace& space) {
  const common::CsvTable table = common::read_csv_file(path);
  const std::size_t d = space.size();
  if (table.header.size() != d + QoR::kNumMetrics) {
    throw std::runtime_error("benchmark CSV column count mismatch: " + path);
  }
  for (std::size_t i = 0; i < d; ++i) {
    if (table.header[i] != space.spec(i).name) {
      throw std::runtime_error("benchmark CSV header mismatch at column " +
                               std::to_string(i) + ": " + path);
    }
  }
  BenchmarkSet set;
  set.name = name;
  set.space = space;
  set.configs.reserve(table.rows.size());
  set.qor.reserve(table.rows.size());
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    // CsvTable::numeric is strict (whole field must parse) and reports the
    // original file line on malformed cells, so a damaged cache fails loud
    // instead of feeding half-parsed QoR into the surrogates.
    Config c(d);
    for (std::size_t i = 0; i < d; ++i) c[i] = table.numeric(r, i);
    space.validate(c);
    QoR q;
    q.area_um2 = table.numeric(r, d);
    q.power_mw = table.numeric(r, d + 1);
    q.delay_ns = table.numeric(r, d + 2);
    set.configs.push_back(std::move(c));
    set.qor.push_back(q);
  }
  return set;
}

BenchmarkSet build_or_load(
    const std::string& dir, const std::string& name,
    const ParameterSpace& space, std::size_t n,
    const std::function<std::unique_ptr<QorOracle>()>& make_oracle,
    std::uint64_t seed) {
  const std::string path = dir + "/" + name + ".csv";
  if (std::filesystem::exists(path)) {
    BenchmarkSet set = load_benchmark_csv(path, name, space);
    if (set.size() == n) {
      PPAT_INFO << "benchmark " << name << ": loaded " << n
                << " cached points from " << path;
      return set;
    }
    PPAT_WARN << "benchmark cache " << path << " has " << set.size()
              << " points, expected " << n << "; rebuilding";
  }
  std::filesystem::create_directories(dir);
  auto oracle = make_oracle();
  BenchmarkSet set = build_benchmark(name, space, n, *oracle, seed);
  save_benchmark_csv(path, set);
  PPAT_INFO << "benchmark " << name << ": built and cached to " << path;
  return set;
}

}  // namespace ppat::flow
