// The "physical design tool": the black box PPATuner tunes.
//
// PDTool stands in for Cadence Innovus in the paper's setup. One run()
// executes the full mini flow on a MAC design:
//
//   parameters -> global placement (density/congestion-aware)
//              -> DRV repair (buffering) + timing-driven sizing
//              -> parasitic extraction -> STA -> power estimation
//              -> QoR {area, power, delay}
//
// The mapping from the paper's Table 1 parameters to flow knobs:
//   freq               clock constraint (MHz); drives the sizer's target
//   place_rcfactor     wire RC extraction scale during optimization
//   place_uncertainty  clock uncertainty (ps) the sizer must cover
//   flowEffort         standard/high/extreme: iteration budgets everywhere
//   timing_effort      medium/high: sizing pass budget
//   clock_power_driven CTS power optimization (power down, margin cost)
//   uniform_density    spread cells to uniform fill
//   cong_effort        AUTO/HIGH congestion mitigation in placement
//   max_density        global-placement bin fill cap
//   max_Length         DRV: max net length (um)
//   max_Density        max area utilization (sets die size)
//   max_transition     DRV: max slew (ns)
//   max_capacitance    DRV: max net load (pF)
//   max_fanout         DRV: max sinks per net
//   max_AllowedDelay   tolerated timing violation (ns): early sizer stop
//
// Every run is deterministic in (design, seed, config) — the reproduction's
// "golden QoR" notion requires replayability.
#pragma once

#include <cstdint>
#include <memory>

#include "flow/parameter.hpp"
#include "netlist/mac_generator.hpp"

namespace ppat::flow {

/// Quality-of-results triple the paper optimizes. All three are minimized.
struct QoR {
  double area_um2 = 0.0;
  double power_mw = 0.0;
  double delay_ns = 0.0;

  /// Metric by objective index (0 = area, 1 = power, 2 = delay).
  double metric(std::size_t i) const;
  static constexpr std::size_t kNumMetrics = 3;
  static const char* metric_name(std::size_t i);
};

/// Abstract evaluator: a mapping from tool configurations to QoR. PPATuner
/// and the baselines only ever see this interface, so they can drive the
/// bundled pdsim flow, a user's real EDA tool wrapper, or a test stub.
class QorOracle {
 public:
  virtual ~QorOracle() = default;
  virtual QoR evaluate(const ParameterSpace& space, const Config& config) = 0;
  /// Number of evaluate() calls so far ("tool runs" in the paper's metric).
  virtual std::size_t run_count() const = 0;
};

/// Extra diagnostics from one flow run (beyond the QoR triple).
struct FlowDetails {
  double wns_ns = 0.0;
  double total_hpwl_um = 0.0;
  double congestion_overflow = 0.0;
  std::size_t buffers_inserted = 0;
  std::size_t cells_upsized = 0;
  std::size_t final_cell_count = 0;
};

/// The bundled mini physical-design flow on a generated MAC design.
class PDTool final : public QorOracle {
 public:
  /// Builds the design once; each run() re-places and re-optimizes a copy.
  PDTool(const netlist::CellLibrary* library, const netlist::MacConfig& design,
         std::uint64_t seed);
  ~PDTool() override;

  PDTool(const PDTool&) = delete;
  PDTool& operator=(const PDTool&) = delete;

  QoR evaluate(const ParameterSpace& space, const Config& config) override;
  std::size_t run_count() const override { return runs_; }

  /// Like evaluate() but also returns flow diagnostics.
  QoR evaluate_detailed(const ParameterSpace& space, const Config& config,
                        FlowDetails* details);

  /// The design this tool instance implements.
  const netlist::Netlist& base_netlist() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t runs_ = 0;
};

}  // namespace ppat::flow
