// Shared tool-license pool, leased fairly across concurrent tuning sessions.
//
// A single EvalService bounds ITS OWN concurrency by EvalServiceOptions::
// licenses, but a multi-tenant server hosts many services against one
// physical license pool (the paper's batch-selection motivation: B parallel
// Innovus licenses). The broker is that pool: every tool attempt leases one
// license for the duration of the oracle call, and the lease is RAII — it
// is released on success, tool failure, deadline timeout, and
// watchdog-cancel paths alike, so no outcome can leak a license.
//
// Fairness: when several sessions are waiting, a freed license goes to the
// waiting session with the FEWEST licenses currently outstanding (ties
// broken by least-recently-granted, then session id). A session running
// big batches therefore cannot starve a session running small ones — each
// converges to an equal share while demand exceeds supply — and the
// schedule is a deterministic function of the (session, outstanding,
// grant-order) state, not of thread wakeup order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>

namespace ppat::flow {

/// Fleet-wide license pool shared by any number of EvalServices. All
/// methods are thread-safe; the broker must outlive every lease and every
/// blocked acquire() (sessions normally hold it via shared_ptr).
class LicenseBroker {
 public:
  explicit LicenseBroker(std::size_t total_licenses);
  ~LicenseBroker();

  LicenseBroker(const LicenseBroker&) = delete;
  LicenseBroker& operator=(const LicenseBroker&) = delete;

  std::size_t total() const { return total_; }
  /// Licenses not currently leased. total() == available() when no work is
  /// in flight — the leak-detection invariant.
  std::size_t available() const;
  /// Leases currently held across all sessions.
  std::size_t outstanding() const;
  /// Leases currently held by one session (fairness observability).
  std::size_t outstanding_for(std::uint64_t session) const;
  /// Threads of one session currently blocked in acquire() (observability
  /// for try_acquire's waiter-priority rule).
  std::size_t waiting_for(std::uint64_t session) const;
  /// Total grants ever made to one session (fairness tests). Per-session
  /// accounting is reclaimed once a session goes fully idle, so this reads
  /// 0 again after the session's last lease is returned.
  std::size_t grants_for(std::uint64_t session) const;
  /// Lifetime grant count across all sessions (never reset — the "was the
  /// broker actually exercised" probe for leak tests).
  std::size_t total_grants() const;

  /// One leased license, move-only RAII. Default-constructed = empty.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool valid() const { return broker_ != nullptr; }
    /// Returns the license early (idempotent; the destructor calls it).
    void release();

   private:
    friend class LicenseBroker;
    Lease(LicenseBroker* broker, std::uint64_t session)
        : broker_(broker), session_(session) {}

    LicenseBroker* broker_ = nullptr;
    std::uint64_t session_ = 0;
  };

  /// Blocks until a license is granted to `session`, under the fairness
  /// rule above. Reentrant per session: a session may hold any number of
  /// leases at once (its per-batch concurrency is bounded by its own
  /// EvalService, not by the broker).
  Lease acquire(std::uint64_t session);

  /// Non-blocking acquire for callers that must not sleep — the distributed
  /// coordinator's dispatch loop frees its own leases by processing worker
  /// results, so blocking here would deadlock it. Returns an empty Lease
  /// (valid() == false) when no license is free OR any other session is
  /// blocked in acquire(): waiters always outrank a poller, so a polling
  /// session can never starve a blocking one.
  Lease try_acquire(std::uint64_t session);

 private:
  /// Per-session accounting. An entry exists while the session has
  /// outstanding leases or waiters; it is erased when both drop to zero so
  /// the map stays bounded by live sessions.
  struct SessionState {
    std::size_t outstanding = 0;
    std::size_t waiting = 0;
    std::size_t grants = 0;
    std::uint64_t last_grant_seq = 0;
  };

  void release_one(std::uint64_t session);
  /// True when `session` is the fairness-rule winner among waiting
  /// sessions. Caller holds mutex_.
  bool my_turn_locked(std::uint64_t session) const;
  void erase_if_idle_locked(std::uint64_t session);

  const std::size_t total_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t available_;
  std::uint64_t grant_seq_ = 0;
  std::map<std::uint64_t, SessionState> sessions_;
};

}  // namespace ppat::flow
