#include "flow/oracle_decorators.hpp"

#include <cstring>
#include <sstream>
#include <thread>

#include "common/rng.hpp"

namespace ppat::flow {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

/// Order-sensitive fingerprint of the canonical parameter values. Only used
/// to seed per-configuration fault streams, so a (vanishingly unlikely)
/// collision merely makes two configs share a fault pattern.
std::uint64_t config_fingerprint(const Config& config) {
  std::uint64_t h = 0x243F6A8885A308D3ull;
  for (const double d : config) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    h = mix(h, bits);
  }
  return h;
}

}  // namespace

FaultInjectingOracle::FaultInjectingOracle(QorOracle& inner,
                                           FaultInjectionOptions options)
    : inner_(inner), options_(options) {}

bool FaultInjectingOracle::is_permanently_failing(const Config& config) const {
  if (options_.permanent_failure_rate <= 0.0) return false;
  common::Rng rng(mix(options_.seed, config_fingerprint(config)));
  return rng.uniform01() < options_.permanent_failure_rate;
}

QoR FaultInjectingOracle::evaluate(const ParameterSpace& space,
                                   const Config& config) {
  ++calls_;
  std::size_t attempt;
  {
    std::lock_guard lock(mutex_);
    attempt = ++attempt_counts_[config];
  }
  if (is_permanently_failing(config)) {
    ++permanents_;
    std::ostringstream msg;
    msg << "injected permanent failure (attempt " << attempt << ")";
    throw ToolRunError(msg.str());
  }
  // Per-(config, attempt) stream: outcomes are pure functions of the seed,
  // the configuration, and how many times it has been attempted — never of
  // scheduling. Draw order (latency, then transient) is fixed.
  common::Rng rng(
      mix(mix(options_.seed, config_fingerprint(config)), attempt));
  if (options_.latency_rate > 0.0 &&
      options_.injected_latency.count() > 0 &&
      rng.uniform01() < options_.latency_rate) {
    ++latencies_;
    std::this_thread::sleep_for(options_.injected_latency);
  }
  if (options_.transient_failure_rate > 0.0 &&
      rng.uniform01() < options_.transient_failure_rate) {
    ++transients_;
    std::ostringstream msg;
    msg << "injected transient failure (attempt " << attempt << ")";
    throw ToolRunError(msg.str());
  }
  return inner_.evaluate(space, config);
}

QoR CachingOracle::evaluate(const ParameterSpace& space,
                            const Config& config) {
  std::shared_future<QoR> future;
  std::promise<QoR> promise;
  bool owner = false;
  {
    std::lock_guard lock(mutex_);
    auto it = cache_.find(config);
    if (it != cache_.end()) {
      future = it->second;
      ++hits_;
    } else {
      owner = true;
      future = promise.get_future().share();
      cache_.emplace(config, future);
      ++misses_;
    }
  }
  if (owner) {
    try {
      promise.set_value(inner_.evaluate(space, config));
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Failures are not memoized: a later retry must re-attempt the tool.
      std::lock_guard lock(mutex_);
      cache_.erase(config);
    }
  }
  return future.get();  // rethrows the owner's exception for all waiters
}

}  // namespace ppat::flow
