// Composable QorOracle decorators for the live evaluation path.
//
//   FaultInjectingOracle — wraps an oracle with seeded, deterministic
//     failure and latency injection. Which configurations fail permanently,
//     which attempts fail transiently, and which runs are slowed are all
//     pure functions of (seed, configuration, attempt number), so tests and
//     benches get reproducible fault patterns that do not depend on thread
//     scheduling or license count.
//
//   CachingOracle — config-keyed memo in front of an oracle, so retries of
//     a successful run and duplicate reveals never double-spend tool runs.
//     Concurrent requests for the same configuration are deduplicated
//     (waiters block on the in-flight run); failed runs are NOT cached, so
//     a retry genuinely re-attempts the tool.
//
// Typical live stack, outermost first:
//   EvalService -> CachingOracle -> FaultInjectingOracle -> PDTool
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>

#include "flow/eval_service.hpp"

namespace ppat::flow {

struct FaultInjectionOptions {
  /// Probability that any given attempt fails transiently (a retry may
  /// succeed).
  double transient_failure_rate = 0.0;
  /// Probability that a configuration fails on EVERY attempt (a crash the
  /// tool reproduces deterministically on that input).
  double permanent_failure_rate = 0.0;
  /// Probability that an attempt is slowed by `injected_latency`.
  double latency_rate = 0.0;
  std::chrono::milliseconds injected_latency{0};
  std::uint64_t seed = 0x5eedu;
};

/// Deterministic failure/latency injection around an inner oracle.
/// Thread-safe; safe under EvalService with any license count.
class FaultInjectingOracle final : public QorOracle {
 public:
  FaultInjectingOracle(QorOracle& inner, FaultInjectionOptions options);

  /// Throws ToolRunError on injected failures; otherwise forwards to the
  /// inner oracle (after any injected latency).
  QoR evaluate(const ParameterSpace& space, const Config& config) override;

  /// Attempts that reached this oracle (including ones that failed here).
  std::size_t run_count() const override { return calls_; }

  std::size_t injected_transient_failures() const { return transients_; }
  std::size_t injected_permanent_failures() const { return permanents_; }
  std::size_t injected_latencies() const { return latencies_; }

  /// True when `config` is destined to fail every attempt under this seed
  /// (test introspection: lets assertions know the ground truth).
  bool is_permanently_failing(const Config& config) const;

 private:
  QorOracle& inner_;
  FaultInjectionOptions options_;
  mutable std::mutex mutex_;
  /// Per-configuration attempt counter (deterministic regardless of the
  /// interleaving across licenses: attempts on one config are sequential).
  std::map<Config, std::size_t> attempt_counts_;
  std::atomic<std::size_t> calls_{0};
  std::atomic<std::size_t> transients_{0};
  std::atomic<std::size_t> permanents_{0};
  std::atomic<std::size_t> latencies_{0};
};

/// Config-keyed memoization of successful runs. Thread-safe.
class CachingOracle final : public QorOracle {
 public:
  explicit CachingOracle(QorOracle& inner) : inner_(inner) {}

  QoR evaluate(const ParameterSpace& space, const Config& config) override;

  /// Actual tool invocations (cache hits spend nothing).
  std::size_t run_count() const override { return inner_.run_count(); }

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  QorOracle& inner_;
  std::mutex mutex_;
  /// Completed or in-flight runs; a waiter shares the owner's future.
  /// Entries whose run failed are erased so retries re-attempt the tool.
  std::map<Config, std::shared_future<QoR>> cache_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace ppat::flow
