#include "flow/eval_service.hpp"

#include <algorithm>
#include <thread>

#include "common/log.hpp"
#include "common/parallel.hpp"

namespace ppat::flow {
namespace {

/// Rolling-median window; large enough to smooth flaky runs, small enough
/// to track a drifting tool version.
constexpr std::size_t kMedianWindow = 64;

}  // namespace

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kFailed:
      return "failed";
    case RunStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

EvalService::EvalService(QorOracle& oracle, ParameterSpace space,
                         EvalServiceOptions options)
    : oracle_(oracle), space_(std::move(space)), options_(options) {
  if (options_.licenses == 0) options_.licenses = 1;
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  if (options_.licenses > 1) {
    pool_ = std::make_unique<common::ThreadPool>(options_.licenses);
  }
  if (options_.watchdog_multiple > 0.0) {
    if (options_.watchdog_poll.count() <= 0) {
      options_.watchdog_poll = std::chrono::milliseconds(50);
    }
    cancellable_ = dynamic_cast<CancellableOracle*>(&oracle_);
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  }
}

EvalService::~EvalService() {
  if (watchdog_thread_.joinable()) {
    {
      std::lock_guard lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_thread_.join();
  }
}

void EvalService::record_success_duration(double ms) {
  std::lock_guard lock(watchdog_mutex_);
  if (recent_ok_ms_.size() < kMedianWindow) {
    recent_ok_ms_.push_back(ms);
  } else {
    recent_ok_ms_[recent_pos_] = ms;
    recent_pos_ = (recent_pos_ + 1) % kMedianWindow;
  }
}

void EvalService::watchdog_loop() {
  std::unique_lock lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, options_.watchdog_poll);
    if (watchdog_stop_) break;
    if (recent_ok_ms_.size() < options_.watchdog_min_samples) continue;
    std::vector<double> window = recent_ok_ms_;
    const std::size_t mid = window.size() / 2;
    std::nth_element(window.begin(), window.begin() + mid, window.end());
    const double median_ms = window[mid];
    const double threshold_ms =
        std::max(static_cast<double>(options_.watchdog_floor.count()),
                 options_.watchdog_multiple * median_ms);
    const auto now = clock::now();
    for (auto& [id, flight] : in_flight_) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(now - flight.start)
              .count();
      if (elapsed_ms > threshold_ms && !flight.token->cancelled()) {
        PPAT_WARN << "watchdog: cancelling hung run after " << elapsed_ms
                  << " ms (threshold " << threshold_ms << " ms = "
                  << options_.watchdog_multiple << " x median " << median_ms
                  << " ms)";
        flight.token->request_cancel();
      }
    }
  }
}

RunRecord EvalService::run_one(const Config& config,
                               clock::time_point batch_t0) {
  RunRecord rec;
  const bool has_deadline = options_.run_deadline.count() > 0;
  const auto run_t0 = clock::now();
  for (std::size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    // Deadline check BEFORE dispatching (including the first attempt): the
    // deadline runs from batch submission, so a configuration stuck in the
    // license queue past it is reported as kTimedOut with attempts == 0 —
    // distinguishable from a tool failure and never worth a retry.
    if (has_deadline && clock::now() - batch_t0 > options_.run_deadline) {
      rec.status = RunStatus::kTimedOut;
      rec.error = rec.attempts == 0 ? "deadline expired while queued"
                                    : "run exceeded deadline";
      break;
    }
    rec.attempts = attempt;
    if (attempt > 1 && options_.retry_backoff.count() > 0) {
      // Exponential backoff: base * 2^(retry-1).
      std::this_thread::sleep_for(options_.retry_backoff *
                                  (std::int64_t{1} << (attempt - 2)));
    }
    // Lease one shared license for this attempt. Scoped to the attempt, so
    // RAII releases it on every exit: normal classification, an oracle
    // exception, a deadline timeout, a watchdog cancellation, and the
    // backoff sleep before a retry all return the license first.
    LicenseBroker::Lease lease;
    if (options_.license_broker != nullptr) {
      lease = options_.license_broker->acquire(options_.session_tag);
      // The wait for a license counts toward the deadline, same as the
      // worker queue: a run that only got a license after its deadline is
      // as dead as one that hung.
      if (has_deadline && clock::now() - batch_t0 > options_.run_deadline) {
        rec.status = RunStatus::kTimedOut;
        rec.error = "deadline expired while waiting for a license";
        break;
      }
    }
    // Register this attempt with the watchdog (no-op when disabled).
    CancelToken token;
    std::uint64_t flight_id = 0;
    const bool watched = watchdog_thread_.joinable();
    const auto t0 = clock::now();
    if (watched) {
      std::lock_guard lock(watchdog_mutex_);
      flight_id = next_flight_id_++;
      in_flight_.emplace(flight_id, InFlight{t0, &token});
    }
    try {
      const QoR qor = cancellable_ != nullptr
                          ? cancellable_->evaluate_with_cancel(space_, config,
                                                               token)
                          : oracle_.evaluate(space_, config);
      rec.status = RunStatus::kOk;
      rec.qor = qor;
      rec.error.clear();
    } catch (const std::exception& e) {
      rec.status = RunStatus::kFailed;
      rec.error = e.what();
    }
    const auto t1 = clock::now();
    if (watched) {
      std::lock_guard lock(watchdog_mutex_);
      in_flight_.erase(flight_id);
    }
    // A watchdog cancellation is PERMANENT: the run is known-hung, its
    // result (if the oracle returned one anyway) is not trusted, and
    // retrying would hang again. Callers journal the kTimedOut record so a
    // resumed run never re-selects this configuration.
    if (token.cancelled()) {
      rec.status = RunStatus::kTimedOut;
      rec.error = "cancelled by watchdog (exceeded hard multiple of rolling "
                  "median run time)";
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.runs_watchdog_cancelled;
      }
      break;
    }
    if (rec.status == RunStatus::kOk) {
      // Post-hoc deadline classification (cooperative: the oracle already
      // returned). Past-deadline results are discarded, not retried — any
      // retry would finish even further past the deadline.
      if (has_deadline && t1 - batch_t0 > options_.run_deadline) {
        rec.status = RunStatus::kTimedOut;
        rec.error = "run exceeded deadline";
        break;
      }
      record_success_duration(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      break;
    }
  }
  rec.elapsed_ms =
      std::chrono::duration<double, std::milli>(clock::now() - run_t0)
          .count();
  return rec;
}

std::vector<RunRecord> EvalService::evaluate_batch(
    const std::vector<Config>& configs, const RunObserver& observer) {
  std::vector<RunRecord> records(configs.size());
  if (configs.empty()) return records;

  const auto batch_t0 = clock::now();
  auto finish_one = [&](std::size_t i) {
    records[i] = run_one(configs[i], batch_t0);
    if (observer) observer(i, records[i]);
  };
  const std::size_t workers =
      std::min(options_.licenses, configs.size());
  if (workers <= 1 || pool_ == nullptr) {
    for (std::size_t i = 0; i < configs.size(); ++i) finish_one(i);
  } else {
    // Work-stealing over a shared cursor: each license pulls the next
    // pending configuration, so a slow run never blocks the rest of the
    // batch behind it. Records land at their batch index — the result is
    // independent of completion order and therefore of the license count.
    std::atomic<std::size_t> next{0};
    auto drain = [&] {
      for (std::size_t i; (i = next.fetch_add(1)) < configs.size();) {
        finish_one(i);
      }
    };
    common::TaskGroup group(pool_.get());
    // licenses - 1 pool workers plus the calling thread.
    for (std::size_t t = 0; t + 1 < workers; ++t) group.run(drain);
    drain();
    group.wait();
  }
  fold_into_stats(records);
  return records;
}

RunRecord EvalService::evaluate(const Config& config) {
  return evaluate_batch({config}).front();
}

void EvalService::fold_into_stats(const std::vector<RunRecord>& records) {
  std::lock_guard lock(stats_mutex_);
  ++stats_.batches;
  for (const RunRecord& rec : records) {
    stats_.attempts += rec.attempts;
    stats_.retries += rec.retries();
    switch (rec.status) {
      case RunStatus::kOk:
        ++stats_.runs_ok;
        break;
      case RunStatus::kFailed:
        ++stats_.runs_failed;
        break;
      case RunStatus::kTimedOut:
        ++stats_.runs_timed_out;
        break;
    }
  }
}

EvalServiceStats EvalService::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace ppat::flow
