#include "flow/eval_service.hpp"

#include <atomic>
#include <thread>

#include "common/log.hpp"
#include "common/parallel.hpp"

namespace ppat::flow {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kFailed:
      return "failed";
    case RunStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

EvalService::EvalService(QorOracle& oracle, ParameterSpace space,
                         EvalServiceOptions options)
    : oracle_(oracle), space_(std::move(space)), options_(options) {
  if (options_.licenses == 0) options_.licenses = 1;
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  if (options_.licenses > 1) {
    pool_ = std::make_unique<common::ThreadPool>(options_.licenses);
  }
}

EvalService::~EvalService() = default;

RunRecord EvalService::run_one(const Config& config) {
  using clock = std::chrono::steady_clock;
  RunRecord rec;
  const auto batch_t0 = clock::now();
  for (std::size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    rec.attempts = attempt;
    if (attempt > 1 && options_.retry_backoff.count() > 0) {
      // Exponential backoff: base * 2^(retry-1).
      std::this_thread::sleep_for(options_.retry_backoff *
                                  (std::int64_t{1} << (attempt - 2)));
    }
    const auto t0 = clock::now();
    try {
      const QoR qor = oracle_.evaluate(space_, config);
      const auto elapsed = std::chrono::duration<double, std::milli>(
          clock::now() - t0);
      if (options_.run_deadline.count() > 0 &&
          elapsed > options_.run_deadline) {
        rec.status = RunStatus::kTimedOut;
        rec.error = "run exceeded deadline";
        continue;  // a hung run is retried like a crash
      }
      rec.status = RunStatus::kOk;
      rec.qor = qor;
      rec.error.clear();
      break;
    } catch (const std::exception& e) {
      rec.status = RunStatus::kFailed;
      rec.error = e.what();
    }
  }
  rec.elapsed_ms =
      std::chrono::duration<double, std::milli>(clock::now() - batch_t0)
          .count();
  return rec;
}

std::vector<RunRecord> EvalService::evaluate_batch(
    const std::vector<Config>& configs) {
  std::vector<RunRecord> records(configs.size());
  if (configs.empty()) return records;

  const std::size_t workers =
      std::min(options_.licenses, configs.size());
  if (workers <= 1 || pool_ == nullptr) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      records[i] = run_one(configs[i]);
    }
  } else {
    // Work-stealing over a shared cursor: each license pulls the next
    // pending configuration, so a slow run never blocks the rest of the
    // batch behind it. Records land at their batch index — the result is
    // independent of completion order and therefore of the license count.
    std::atomic<std::size_t> next{0};
    auto drain = [&] {
      for (std::size_t i; (i = next.fetch_add(1)) < configs.size();) {
        records[i] = run_one(configs[i]);
      }
    };
    common::TaskGroup group(pool_.get());
    // licenses - 1 pool workers plus the calling thread.
    for (std::size_t t = 0; t + 1 < workers; ++t) group.run(drain);
    drain();
    group.wait();
  }
  fold_into_stats(records);
  return records;
}

RunRecord EvalService::evaluate(const Config& config) {
  return evaluate_batch({config}).front();
}

void EvalService::fold_into_stats(const std::vector<RunRecord>& records) {
  std::lock_guard lock(stats_mutex_);
  ++stats_.batches;
  for (const RunRecord& rec : records) {
    stats_.attempts += rec.attempts;
    stats_.retries += rec.retries();
    switch (rec.status) {
      case RunStatus::kOk:
        ++stats_.runs_ok;
        break;
      case RunStatus::kFailed:
        ++stats_.runs_failed;
        break;
      case RunStatus::kTimedOut:
        ++stats_.runs_timed_out;
        break;
    }
  }
}

EvalServiceStats EvalService::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace ppat::flow
