#include "flow/parameter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/table.hpp"

namespace ppat::flow {

namespace {

bool nearly_equal(double a, double b) { return std::fabs(a - b) <= 1e-9; }

bool is_integral(double v) { return nearly_equal(v, std::round(v)); }

}  // namespace

ParamSpec ParamSpec::real(std::string name, double min_value,
                          double max_value) {
  if (!(min_value < max_value)) {
    throw std::invalid_argument("ParamSpec::real: empty range for " + name);
  }
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kFloat;
  s.min_value = min_value;
  s.max_value = max_value;
  return s;
}

ParamSpec ParamSpec::integer(std::string name, int min_value, int max_value) {
  if (min_value > max_value) {
    throw std::invalid_argument("ParamSpec::integer: empty range for " + name);
  }
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kInt;
  s.min_value = min_value;
  s.max_value = max_value;
  return s;
}

ParamSpec ParamSpec::integer_levels(std::string name,
                                    std::vector<long> values) {
  if (values.empty()) {
    throw std::invalid_argument("ParamSpec::integer_levels: empty domain for " +
                                name);
  }
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i - 1] >= values[i]) {
      throw std::invalid_argument(
          "ParamSpec::integer_levels: values must be strictly increasing "
          "for " +
          name);
    }
  }
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kInt;
  s.levels.reserve(values.size());
  for (long v : values) s.levels.push_back(static_cast<double>(v));
  s.min_value = s.levels.front();
  s.max_value = s.levels.back();
  return s;
}

ParamSpec ParamSpec::factors(std::string name, long n) {
  if (n < 1) {
    throw std::invalid_argument("ParamSpec::factors: need n >= 1 for " + name);
  }
  std::vector<long> divisors;
  for (long d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      divisors.push_back(d);
      if (d != n / d) divisors.push_back(n / d);
    }
  }
  std::sort(divisors.begin(), divisors.end());
  return integer_levels(std::move(name), std::move(divisors));
}

ParamSpec ParamSpec::enumeration(std::string name,
                                 std::vector<std::string> options) {
  if (options.empty()) {
    throw std::invalid_argument("ParamSpec::enumeration: need >= 1 option");
  }
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kEnum;
  s.min_value = 0.0;
  s.max_value = static_cast<double>(options.size() - 1);
  s.options = std::move(options);
  return s;
}

ParamSpec ParamSpec::boolean(std::string name) {
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kBool;
  s.min_value = 0.0;
  s.max_value = 1.0;
  return s;
}

ParamSpec& ParamSpec::divides(std::string parent) {
  divides_parent = std::move(parent);
  return *this;
}

ParamSpec& ParamSpec::active_when(std::string parent, double value) {
  active_parent = std::move(parent);
  active_value = value;
  return *this;
}

ParameterSpace::ParameterSpace(std::vector<ParamSpec> specs)
    : specs_(std::move(specs)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    for (std::size_t j = i + 1; j < specs_.size(); ++j) {
      if (specs_[i].name == specs_[j].name) {
        throw std::invalid_argument("ParameterSpace: duplicate parameter " +
                                    specs_[i].name);
      }
    }
  }

  // Per-spec well-formedness. This is what makes the degenerate cases safe:
  // a zero-width float range or an empty enum can no longer reach the
  // encode() divide — construction rejects them up front. (Single-option
  // enums and min==max integers are legal: their cardinality is 1 and the
  // discrete level-midpoint arithmetic handles them exactly.)
  divides_index_.assign(specs_.size(), npos);
  active_index_.assign(specs_.size(), npos);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    ParamSpec& s = specs_[i];
    if (s.name.empty()) {
      throw std::invalid_argument("ParameterSpace: unnamed parameter");
    }
    if (!std::isfinite(s.min_value) || !std::isfinite(s.max_value)) {
      throw std::invalid_argument("ParameterSpace: non-finite range for " +
                                  s.name);
    }
    switch (s.type) {
      case ParamType::kFloat:
        if (!(s.min_value < s.max_value)) {
          throw std::invalid_argument(
              "ParameterSpace: float parameter " + s.name +
              " needs min < max (zero-width ranges cannot be encoded)");
        }
        if (!s.levels.empty() || !s.divides_parent.empty()) {
          throw std::invalid_argument(
              "ParameterSpace: levels/divides only apply to integer "
              "parameter, not float " +
              s.name);
        }
        break;
      case ParamType::kInt:
        if (!s.levels.empty()) {
          for (std::size_t k = 0; k < s.levels.size(); ++k) {
            if (!is_integral(s.levels[k]) ||
                (k > 0 && s.levels[k - 1] >= s.levels[k])) {
              throw std::invalid_argument(
                  "ParameterSpace: levels of " + s.name +
                  " must be strictly increasing integers");
            }
          }
          s.min_value = s.levels.front();
          s.max_value = s.levels.back();
        } else if (s.min_value > s.max_value || !is_integral(s.min_value) ||
                   !is_integral(s.max_value)) {
          throw std::invalid_argument(
              "ParameterSpace: integer parameter " + s.name +
              " needs an integral min <= max range");
        }
        break;
      case ParamType::kEnum:
        if (s.options.empty()) {
          throw std::invalid_argument("ParameterSpace: enum parameter " +
                                      s.name + " needs >= 1 option");
        }
        s.min_value = 0.0;
        s.max_value = static_cast<double>(s.options.size() - 1);
        if (!s.levels.empty() || !s.divides_parent.empty()) {
          throw std::invalid_argument(
              "ParameterSpace: levels/divides only apply to integer "
              "parameter, not enum " +
              s.name);
        }
        break;
      case ParamType::kBool:
        s.min_value = 0.0;
        s.max_value = 1.0;
        if (!s.levels.empty() || !s.divides_parent.empty()) {
          throw std::invalid_argument(
              "ParameterSpace: levels/divides only apply to integer "
              "parameter, not bool " +
              s.name);
        }
        break;
    }

    // Cross-parameter structure. Parents must appear EARLIER in the spec
    // list — this both rejects cycles and gives every traversal below a
    // ready-made topological order.
    if (!s.divides_parent.empty()) {
      const std::size_t p = index_of(s.divides_parent);
      if (p == npos || p >= i) {
        throw std::invalid_argument(
            "ParameterSpace: divides parent of " + s.name +
            " must be an earlier parameter (got " + s.divides_parent + ")");
      }
      if (specs_[p].type != ParamType::kInt) {
        throw std::invalid_argument("ParameterSpace: divides parent " +
                                    s.divides_parent + " of " + s.name +
                                    " must be an integer parameter");
      }
      // The rejection-free sampling guarantee: 1 divides every parent
      // value, so the child's feasible set is never empty.
      const bool has_one = s.levels.empty()
                               ? (s.min_value <= 1.0 && 1.0 <= s.max_value)
                               : std::any_of(s.levels.begin(), s.levels.end(),
                                             [](double v) {
                                               return nearly_equal(v, 1.0);
                                             });
      if (!has_one) {
        throw std::invalid_argument(
            "ParameterSpace: domain of divisibility-constrained " + s.name +
            " must contain 1");
      }
      divides_index_[i] = p;
    }
    if (!s.active_parent.empty()) {
      const std::size_t p = index_of(s.active_parent);
      if (p == npos || p >= i) {
        throw std::invalid_argument(
            "ParameterSpace: activation parent of " + s.name +
            " must be an earlier parameter (got " + s.active_parent + ")");
      }
      if (specs_[p].type == ParamType::kFloat) {
        throw std::invalid_argument("ParameterSpace: activation parent " +
                                    s.active_parent + " of " + s.name +
                                    " must be discrete");
      }
      if (!is_integral(s.active_value)) {
        throw std::invalid_argument(
            "ParameterSpace: activation value of " + s.name +
            " must be integral (discrete parent)");
      }
      active_index_[i] = p;
    }
    if (s.constrained()) has_constraints_ = true;
  }
}

std::size_t ParameterSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return npos;
}

double ParameterSpace::value_or(const Config& config, const std::string& name,
                                double fallback) const {
  const std::size_t i = index_of(name);
  if (i == npos) return fallback;
  return config.at(i);
}

std::size_t ParameterSpace::cardinality(std::size_t i) const {
  const ParamSpec& s = specs_.at(i);
  switch (s.type) {
    case ParamType::kFloat:
      return 0;
    case ParamType::kInt:
      if (!s.levels.empty()) return s.levels.size();
      return static_cast<std::size_t>(s.max_value - s.min_value) + 1;
    case ParamType::kEnum:
      return s.options.size();
    case ParamType::kBool:
      return 2;
  }
  return 0;
}

double ParameterSpace::decode_dim(std::size_t i, double u) const {
  const ParamSpec& s = specs_[i];
  if (s.type == ParamType::kFloat) {
    return s.min_value + u * (s.max_value - s.min_value);
  }
  // Discrete: split [0,1] into `card` equal cells.
  const std::size_t card = cardinality(i);
  std::size_t level = static_cast<std::size_t>(u * static_cast<double>(card));
  level = std::min(level, card - 1);
  if (!s.levels.empty()) return s.levels[level];
  return s.min_value + static_cast<double>(level);
}

Config ParameterSpace::decode(const linalg::Vector& unit) const {
  if (unit.size() != specs_.size()) {
    throw std::invalid_argument("ParameterSpace::decode: dimension mismatch");
  }
  Config config(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    config[i] = decode_dim(i, std::clamp(unit[i], 0.0, 1.0));
  }
  return config;
}

linalg::Vector ParameterSpace::encode(const Config& config) const {
  if (config.size() != specs_.size()) {
    throw std::invalid_argument("ParameterSpace::encode: dimension mismatch");
  }
  linalg::Vector unit(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const ParamSpec& s = specs_[i];
    if (s.type == ParamType::kFloat) {
      unit[i] = (config[i] - s.min_value) / (s.max_value - s.min_value);
    } else {
      // Level midpoint, so encode(decode(u)) maps into the same cell.
      const std::size_t card = cardinality(i);
      double level;
      if (!s.levels.empty()) {
        // Nearest explicit level (exact membership is checked by validate).
        std::size_t best = 0;
        for (std::size_t k = 1; k < s.levels.size(); ++k) {
          if (std::fabs(config[i] - s.levels[k]) <
              std::fabs(config[i] - s.levels[best])) {
            best = k;
          }
        }
        level = static_cast<double>(best);
      } else {
        level = config[i] - s.min_value;
      }
      unit[i] = (level + 0.5) / static_cast<double>(card);
    }
    unit[i] = std::clamp(unit[i], 0.0, 1.0);
  }
  return unit;
}

void ParameterSpace::validate(const Config& config) const {
  if (config.size() != specs_.size()) {
    throw std::invalid_argument("ParameterSpace::validate: dim mismatch");
  }
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const ParamSpec& s = specs_[i];
    const double v = config[i];
    if (v < s.min_value - 1e-9 || v > s.max_value + 1e-9) {
      throw std::invalid_argument("parameter " + s.name + " out of range");
    }
    if (s.type != ParamType::kFloat &&
        std::fabs(v - std::round(v)) > 1e-9) {
      throw std::invalid_argument("parameter " + s.name +
                                  " must be integral");
    }
    if (!s.levels.empty() &&
        std::none_of(s.levels.begin(), s.levels.end(),
                     [v](double lv) { return nearly_equal(lv, v); })) {
      throw std::invalid_argument("parameter " + s.name +
                                  " not in its level set");
    }
  }
}

std::string ParameterSpace::format_value(std::size_t i,
                                         double canonical) const {
  const ParamSpec& s = specs_.at(i);
  switch (s.type) {
    case ParamType::kFloat:
      return common::fmt_fixed(canonical, 3);
    case ParamType::kInt:
      return std::to_string(static_cast<long long>(std::llround(canonical)));
    case ParamType::kEnum:
      return s.options.at(static_cast<std::size_t>(std::llround(canonical)));
    case ParamType::kBool:
      return std::llround(canonical) != 0 ? "TRUE" : "FALSE";
  }
  return "?";
}

bool ParameterSpace::dim_in_domain(std::size_t i, double v) const {
  const ParamSpec& s = specs_[i];
  if (v < s.min_value - 1e-9 || v > s.max_value + 1e-9) return false;
  if (s.type != ParamType::kFloat && !is_integral(v)) return false;
  if (!s.levels.empty() &&
      std::none_of(s.levels.begin(), s.levels.end(),
                   [v](double lv) { return nearly_equal(lv, v); })) {
    return false;
  }
  return true;
}

double ParameterSpace::canonical_value(std::size_t i) const {
  const ParamSpec& s = specs_.at(i);
  if (!s.levels.empty()) return s.levels.front();
  return s.min_value;
}

std::vector<std::uint8_t> ParameterSpace::active_mask(
    const Config& config) const {
  if (config.size() != specs_.size()) {
    throw std::invalid_argument("ParameterSpace::active_mask: dim mismatch");
  }
  std::vector<std::uint8_t> mask(specs_.size(), 1);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const std::size_t p = active_index_[i];
    if (p == npos) continue;
    // Parent precedes child, so mask[p] is already resolved: a child of an
    // inactive parent is inactive regardless of the parent's stored value.
    mask[i] = (mask[p] != 0 &&
               nearly_equal(config[p], specs_[i].active_value))
                  ? 1
                  : 0;
  }
  return mask;
}

Config ParameterSpace::canonicalize(const Config& config) const {
  if (config.size() != specs_.size()) {
    throw std::invalid_argument("ParameterSpace::canonicalize: dim mismatch");
  }
  Config out = config;
  std::vector<std::uint8_t> mask(specs_.size(), 1);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const std::size_t p = active_index_[i];
    if (p != npos) {
      // Activation is judged against the progressively-canonicalized
      // parents, so deactivations cascade down the chain.
      mask[i] = (mask[p] != 0 &&
                 nearly_equal(out[p], specs_[i].active_value))
                    ? 1
                    : 0;
    }
    if (mask[i] == 0) out[i] = canonical_value(i);
  }
  return out;
}

bool ParameterSpace::is_feasible(const Config& config) const {
  if (config.size() != specs_.size()) return false;
  std::vector<std::uint8_t> mask(specs_.size(), 1);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!dim_in_domain(i, config[i])) return false;
    const std::size_t gate = active_index_[i];
    if (gate != npos) {
      mask[i] = (mask[gate] != 0 &&
                 nearly_equal(config[gate], specs_[i].active_value))
                    ? 1
                    : 0;
    }
    if (mask[i] == 0) {
      // Canonical form: an inactive parameter must hold its imputed value,
      // so equal designs have equal canonical configs (and fingerprints).
      if (!nearly_equal(config[i], canonical_value(i))) return false;
      continue;
    }
    const std::size_t p = divides_index_[i];
    if (p != npos) {
      const long long child = std::llround(config[i]);
      const long long parent = std::llround(config[p]);
      if (child == 0 || parent % child != 0) return false;
    }
  }
  return true;
}

Config ParameterSpace::decode_feasible(const linalg::Vector& unit) const {
  if (unit.size() != specs_.size()) {
    throw std::invalid_argument(
        "ParameterSpace::decode_feasible: dimension mismatch");
  }
  Config config(specs_.size());
  std::vector<std::uint8_t> mask(specs_.size(), 1);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const double u = std::clamp(unit[i], 0.0, 1.0);
    const ParamSpec& s = specs_[i];
    const std::size_t gate = active_index_[i];
    if (gate != npos) {
      mask[i] = (mask[gate] != 0 &&
                 nearly_equal(config[gate], s.active_value))
                    ? 1
                    : 0;
    }
    if (mask[i] == 0) {
      config[i] = canonical_value(i);
      continue;
    }
    const std::size_t p = divides_index_[i];
    if (p == npos) {
      config[i] = decode_dim(i, u);
      continue;
    }
    // Divisibility-constrained child: stratify u over the divisors of the
    // (already decoded) parent value within the child's domain. The domain
    // contains 1 (checked at construction), so `feasible` is never empty —
    // sampling is rejection-free by construction.
    const long long parent = std::llround(config[p]);
    std::vector<double> feasible;
    if (!s.levels.empty()) {
      for (double lv : s.levels) {
        const long long v = std::llround(lv);
        if (v != 0 && parent % v == 0) feasible.push_back(lv);
      }
    } else {
      const long long lo = std::llround(s.min_value);
      const long long hi = std::llround(s.max_value);
      for (long long v = lo; v <= hi; ++v) {
        if (v != 0 && parent % v == 0) {
          feasible.push_back(static_cast<double>(v));
        }
      }
    }
    const std::size_t card = feasible.size();
    std::size_t level =
        static_cast<std::size_t>(u * static_cast<double>(card));
    level = std::min(level, card - 1);
    config[i] = feasible[level];
  }
  return config;
}

}  // namespace ppat::flow
