#include "flow/parameter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/table.hpp"

namespace ppat::flow {

ParamSpec ParamSpec::real(std::string name, double min_value,
                          double max_value) {
  if (!(min_value < max_value)) {
    throw std::invalid_argument("ParamSpec::real: empty range for " + name);
  }
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kFloat;
  s.min_value = min_value;
  s.max_value = max_value;
  return s;
}

ParamSpec ParamSpec::integer(std::string name, int min_value, int max_value) {
  if (min_value > max_value) {
    throw std::invalid_argument("ParamSpec::integer: empty range for " + name);
  }
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kInt;
  s.min_value = min_value;
  s.max_value = max_value;
  return s;
}

ParamSpec ParamSpec::enumeration(std::string name,
                                 std::vector<std::string> options) {
  if (options.size() < 2) {
    throw std::invalid_argument("ParamSpec::enumeration: need >= 2 options");
  }
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kEnum;
  s.min_value = 0.0;
  s.max_value = static_cast<double>(options.size() - 1);
  s.options = std::move(options);
  return s;
}

ParamSpec ParamSpec::boolean(std::string name) {
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kBool;
  s.min_value = 0.0;
  s.max_value = 1.0;
  return s;
}

ParameterSpace::ParameterSpace(std::vector<ParamSpec> specs)
    : specs_(std::move(specs)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    for (std::size_t j = i + 1; j < specs_.size(); ++j) {
      if (specs_[i].name == specs_[j].name) {
        throw std::invalid_argument("ParameterSpace: duplicate parameter " +
                                    specs_[i].name);
      }
    }
  }
}

std::size_t ParameterSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return npos;
}

double ParameterSpace::value_or(const Config& config, const std::string& name,
                                double fallback) const {
  const std::size_t i = index_of(name);
  if (i == npos) return fallback;
  return config.at(i);
}

std::size_t ParameterSpace::cardinality(std::size_t i) const {
  const ParamSpec& s = specs_.at(i);
  switch (s.type) {
    case ParamType::kFloat:
      return 0;
    case ParamType::kInt:
      return static_cast<std::size_t>(s.max_value - s.min_value) + 1;
    case ParamType::kEnum:
      return s.options.size();
    case ParamType::kBool:
      return 2;
  }
  return 0;
}

Config ParameterSpace::decode(const linalg::Vector& unit) const {
  if (unit.size() != specs_.size()) {
    throw std::invalid_argument("ParameterSpace::decode: dimension mismatch");
  }
  Config config(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const double u = std::clamp(unit[i], 0.0, 1.0);
    const ParamSpec& s = specs_[i];
    if (s.type == ParamType::kFloat) {
      config[i] = s.min_value + u * (s.max_value - s.min_value);
    } else {
      // Discrete: split [0,1] into `card` equal cells.
      const std::size_t card = cardinality(i);
      std::size_t level = static_cast<std::size_t>(u * static_cast<double>(card));
      level = std::min(level, card - 1);
      config[i] = s.min_value + static_cast<double>(level);
    }
  }
  return config;
}

linalg::Vector ParameterSpace::encode(const Config& config) const {
  if (config.size() != specs_.size()) {
    throw std::invalid_argument("ParameterSpace::encode: dimension mismatch");
  }
  linalg::Vector unit(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const ParamSpec& s = specs_[i];
    if (s.type == ParamType::kFloat) {
      unit[i] = (config[i] - s.min_value) / (s.max_value - s.min_value);
    } else {
      // Level midpoint, so encode(decode(u)) maps into the same cell.
      const std::size_t card = cardinality(i);
      const double level = config[i] - s.min_value;
      unit[i] = (level + 0.5) / static_cast<double>(card);
    }
    unit[i] = std::clamp(unit[i], 0.0, 1.0);
  }
  return unit;
}

void ParameterSpace::validate(const Config& config) const {
  if (config.size() != specs_.size()) {
    throw std::invalid_argument("ParameterSpace::validate: dim mismatch");
  }
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const ParamSpec& s = specs_[i];
    const double v = config[i];
    if (v < s.min_value - 1e-9 || v > s.max_value + 1e-9) {
      throw std::invalid_argument("parameter " + s.name + " out of range");
    }
    if (s.type != ParamType::kFloat &&
        std::fabs(v - std::round(v)) > 1e-9) {
      throw std::invalid_argument("parameter " + s.name +
                                  " must be integral");
    }
  }
}

std::string ParameterSpace::format_value(std::size_t i,
                                         double canonical) const {
  const ParamSpec& s = specs_.at(i);
  switch (s.type) {
    case ParamType::kFloat:
      return common::fmt_fixed(canonical, 3);
    case ParamType::kInt:
      return std::to_string(static_cast<long long>(std::llround(canonical)));
    case ParamType::kEnum:
      return s.options.at(static_cast<std::size_t>(std::llround(canonical)));
    case ParamType::kBool:
      return std::llround(canonical) != 0 ? "TRUE" : "FALSE";
  }
  return "?";
}

}  // namespace ppat::flow
