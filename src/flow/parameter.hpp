// Typed tool-parameter schema and configuration encoding.
//
// The PD tool exposes named parameters of four types (float, integer,
// enumeration, boolean), each with a per-benchmark range — exactly the
// structure of the paper's Table 1, where e.g. Source1 and Target1 tune the
// same parameter names over different [Min, Max] ranges.
//
// A configuration is stored canonically as a vector of doubles (floats
// verbatim; integers as rounded doubles; enums as option indices; bools as
// 0/1). Learning code works in the normalized unit cube via encode()/
// decode(), which also quantizes discrete parameters, so samplers and
// surrogate models never special-case types.
//
// Beyond the paper's flat spaces, a ParamSpec can carry MIXED/CONDITIONAL
// structure (the AutoSA-style HLS spaces of src/hls/):
//   * an explicit finite integer domain (`levels`, e.g. the divisors of a
//     loop bound via ParamSpec::factors) instead of a contiguous range;
//   * a divisibility constraint (`divides(parent)`): the value must divide
//     the parent parameter's value in every feasible configuration;
//   * conditional activation (`active_when(parent, value)`): the parameter
//     is meaningful only while the parent holds `value`; in canonical form
//     an inactive parameter is imputed at its canonical (lowest) value.
// Spaces without any of these report has_constraints() == false and take
// the exact legacy code paths — decode/encode arithmetic is unchanged for
// them, which keeps all pre-existing benchmarks bitwise-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace ppat::flow {

enum class ParamType { kFloat, kInt, kEnum, kBool };

struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kFloat;
  double min_value = 0.0;  ///< float/int lower bound (inclusive)
  double max_value = 1.0;  ///< float/int upper bound (inclusive)
  std::vector<std::string> options;  ///< enum labels (kEnum only)

  /// Explicit finite domain (kInt only), strictly increasing integers.
  /// Empty = the contiguous range [min_value, max_value].
  std::vector<double> levels;
  /// Name of an earlier kInt parameter this one must divide (kInt only).
  /// Empty = unconstrained. The domain must contain 1 so every parent value
  /// admits at least one feasible level (rejection-free sampling).
  std::string divides_parent;
  /// Name of an earlier discrete parameter gating this one. Empty = always
  /// active. The parameter is active iff the parent is active AND holds
  /// `active_value`.
  std::string active_parent;
  double active_value = 1.0;

  static ParamSpec real(std::string name, double min_value, double max_value);
  static ParamSpec integer(std::string name, int min_value, int max_value);
  /// Explicit finite integer domain (must be non-empty, strictly increasing).
  static ParamSpec integer_levels(std::string name, std::vector<long> values);
  /// Domain = all positive divisors of `n` (ascending; always contains 1).
  static ParamSpec factors(std::string name, long n);
  /// Enumerations may have a single option: a pinned parameter is legal (and
  /// useful to keep mixed spaces dimension-aligned across tasks).
  static ParamSpec enumeration(std::string name,
                               std::vector<std::string> options);
  static ParamSpec boolean(std::string name);

  /// Fluent constraint builders (return *this for chaining).
  ParamSpec& divides(std::string parent);
  ParamSpec& active_when(std::string parent, double value = 1.0);

  /// True when this spec carries any mixed/conditional structure.
  bool constrained() const {
    return !levels.empty() || !divides_parent.empty() ||
           !active_parent.empty();
  }
};

/// Canonical configuration: one double per parameter (see file comment).
using Config = std::vector<double>;

/// An ordered set of parameter specs with unit-cube encoding.
///
/// Construction validates every spec (well-formed ranges — including the
/// degenerate single-option enum and min==max integer cases — and, for
/// constrained specs, that parents exist EARLIER in the list and have a
/// type the constraint makes sense for), so encode/decode can never divide
/// by a zero-width range at use time.
class ParameterSpace {
 public:
  ParameterSpace() = default;
  explicit ParameterSpace(std::vector<ParamSpec> specs);

  std::size_t size() const { return specs_.size(); }
  const ParamSpec& spec(std::size_t i) const { return specs_.at(i); }
  const std::vector<ParamSpec>& specs() const { return specs_; }

  /// Index of the named parameter, or npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(const std::string& name) const;
  bool has(const std::string& name) const { return index_of(name) != npos; }

  /// Canonical value of the named parameter in `config`, or `fallback` if
  /// the space does not include it. This is how the PD tool reads optional
  /// parameters (different benchmarks tune different subsets).
  double value_or(const Config& config, const std::string& name,
                  double fallback) const;

  /// Maps a unit-cube point to a canonical config (quantizing discrete
  /// types). Unit coordinates are clamped to [0, 1]. Ignores divisibility
  /// and activation — use decode_feasible for constrained spaces.
  Config decode(const linalg::Vector& unit) const;

  /// Maps a canonical config to the unit cube (discrete types land on their
  /// level midpoints, so encode(decode(u)) is idempotent).
  linalg::Vector encode(const Config& config) const;

  /// Validates a canonical config (bounds, integrality, level membership);
  /// throws std::invalid_argument on the first violation. Does not check
  /// cross-parameter constraints — that is is_feasible()'s job.
  void validate(const Config& config) const;

  /// Human-readable value of parameter i ("HIGH", "TRUE", "0.85", "1050").
  std::string format_value(std::size_t i, double canonical) const;

  /// Number of representable values of parameter i (0 = continuous).
  std::size_t cardinality(std::size_t i) const;

  // ---- Mixed/conditional layer (no-ops on unconstrained legacy spaces) ----

  /// True when any spec carries levels / divides / active_when structure.
  /// Legacy continuous spaces return false and never enter the mixed-space
  /// code paths.
  bool has_constraints() const { return has_constraints_; }

  /// The canonical (imputation) value of parameter i: its lowest level.
  /// Inactive parameters hold this value in canonical form.
  double canonical_value(std::size_t i) const;

  /// Per-parameter activation given `config` (resolved top-down, so a child
  /// of an inactive parent is inactive). Unconstrained specs are always 1.
  std::vector<std::uint8_t> active_mask(const Config& config) const;

  /// Imputes every inactive parameter at its canonical value (top-down, so
  /// deactivations cascade). Identity on unconstrained spaces.
  Config canonicalize(const Config& config) const;

  /// True iff `config` is a realizable design point: in-domain per
  /// parameter, every active divisibility constraint holds, and every
  /// inactive parameter sits at its canonical value (i.e. the config is in
  /// canonical form). Never throws.
  bool is_feasible(const Config& config) const;

  /// Constraint-aware decode: maps a unit-cube point to a FEASIBLE config,
  /// rejection-free. Parents decode first (specs are parent-ordered by
  /// construction); a divisibility-constrained child maps its coordinate
  /// over the divisors of the decoded parent value intersected with its
  /// domain; inactive parameters are imputed at their canonical value.
  /// Unconstrained dimensions use arithmetic identical to decode().
  Config decode_feasible(const linalg::Vector& unit) const;

 private:
  double decode_dim(std::size_t i, double u) const;
  bool dim_in_domain(std::size_t i, double v) const;

  std::vector<ParamSpec> specs_;
  std::vector<std::size_t> divides_index_;  ///< per-spec parent index or npos
  std::vector<std::size_t> active_index_;   ///< per-spec gate index or npos
  bool has_constraints_ = false;
};

}  // namespace ppat::flow
