// Typed tool-parameter schema and configuration encoding.
//
// The PD tool exposes named parameters of four types (float, integer,
// enumeration, boolean), each with a per-benchmark range — exactly the
// structure of the paper's Table 1, where e.g. Source1 and Target1 tune the
// same parameter names over different [Min, Max] ranges.
//
// A configuration is stored canonically as a vector of doubles (floats
// verbatim; integers as rounded doubles; enums as option indices; bools as
// 0/1). Learning code works in the normalized unit cube via encode()/
// decode(), which also quantizes discrete parameters, so samplers and
// surrogate models never special-case types.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace ppat::flow {

enum class ParamType { kFloat, kInt, kEnum, kBool };

struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kFloat;
  double min_value = 0.0;  ///< float/int lower bound (inclusive)
  double max_value = 1.0;  ///< float/int upper bound (inclusive)
  std::vector<std::string> options;  ///< enum labels (kEnum only)

  static ParamSpec real(std::string name, double min_value, double max_value);
  static ParamSpec integer(std::string name, int min_value, int max_value);
  static ParamSpec enumeration(std::string name,
                               std::vector<std::string> options);
  static ParamSpec boolean(std::string name);
};

/// Canonical configuration: one double per parameter (see file comment).
using Config = std::vector<double>;

/// An ordered set of parameter specs with unit-cube encoding.
class ParameterSpace {
 public:
  ParameterSpace() = default;
  explicit ParameterSpace(std::vector<ParamSpec> specs);

  std::size_t size() const { return specs_.size(); }
  const ParamSpec& spec(std::size_t i) const { return specs_.at(i); }
  const std::vector<ParamSpec>& specs() const { return specs_; }

  /// Index of the named parameter, or npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(const std::string& name) const;
  bool has(const std::string& name) const { return index_of(name) != npos; }

  /// Canonical value of the named parameter in `config`, or `fallback` if
  /// the space does not include it. This is how the PD tool reads optional
  /// parameters (different benchmarks tune different subsets).
  double value_or(const Config& config, const std::string& name,
                  double fallback) const;

  /// Maps a unit-cube point to a canonical config (quantizing discrete
  /// types). Unit coordinates are clamped to [0, 1].
  Config decode(const linalg::Vector& unit) const;

  /// Maps a canonical config to the unit cube (discrete types land on their
  /// level midpoints, so encode(decode(u)) is idempotent).
  linalg::Vector encode(const Config& config) const;

  /// Validates a canonical config (bounds, integrality); throws
  /// std::invalid_argument on the first violation.
  void validate(const Config& config) const;

  /// Human-readable value of parameter i ("HIGH", "TRUE", "0.85", "1050").
  std::string format_value(std::size_t i, double canonical) const;

  /// Number of representable values of parameter i (0 = continuous).
  std::size_t cardinality(std::size_t i) const;

 private:
  std::vector<ParamSpec> specs_;
};

}  // namespace ppat::flow
