#include "flow/license_broker.hpp"

#include <cassert>
#include <tuple>
#include <utility>

namespace ppat::flow {

LicenseBroker::LicenseBroker(std::size_t total_licenses)
    : total_(total_licenses == 0 ? 1 : total_licenses),
      available_(total_) {}

LicenseBroker::~LicenseBroker() {
  // Every lease holds a raw pointer back to the broker and every waiter
  // blocks inside acquire(); destroying the broker under either is a
  // caller lifetime bug (hold it via shared_ptr from each session).
  assert(available_ == total_ && "LicenseBroker destroyed with live leases");
}

std::size_t LicenseBroker::available() const {
  std::lock_guard lock(mutex_);
  return available_;
}

std::size_t LicenseBroker::outstanding() const {
  std::lock_guard lock(mutex_);
  return total_ - available_;
}

std::size_t LicenseBroker::outstanding_for(std::uint64_t session) const {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.outstanding;
}

std::size_t LicenseBroker::waiting_for(std::uint64_t session) const {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.waiting;
}

std::size_t LicenseBroker::grants_for(std::uint64_t session) const {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.grants;
}

std::size_t LicenseBroker::total_grants() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(grant_seq_);
}

bool LicenseBroker::my_turn_locked(std::uint64_t session) const {
  const auto me = sessions_.find(session);
  assert(me != sessions_.end());
  for (const auto& [id, st] : sessions_) {
    if (id == session || st.waiting == 0) continue;
    // Fewest-outstanding first; ties to the least recently granted; final
    // tie (fresh sessions that never held a license) to the lower id.
    const auto mine = std::make_tuple(me->second.outstanding,
                                      me->second.last_grant_seq, session);
    const auto theirs = std::make_tuple(st.outstanding, st.last_grant_seq, id);
    if (theirs < mine) return false;
  }
  return true;
}

void LicenseBroker::erase_if_idle_locked(std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it != sessions_.end() && it->second.outstanding == 0 &&
      it->second.waiting == 0) {
    sessions_.erase(it);
  }
}

LicenseBroker::Lease LicenseBroker::acquire(std::uint64_t session) {
  std::unique_lock lock(mutex_);
  ++sessions_[session].waiting;
  cv_.wait(lock, [&] { return available_ > 0 && my_turn_locked(session); });
  SessionState& st = sessions_[session];
  --st.waiting;
  --available_;
  ++st.outstanding;
  ++st.grants;
  st.last_grant_seq = ++grant_seq_;
  return Lease(this, session);
}

LicenseBroker::Lease LicenseBroker::try_acquire(std::uint64_t session) {
  std::lock_guard lock(mutex_);
  if (available_ == 0) return Lease();
  // Conservatively yield whenever ANY other session is blocked in
  // acquire(): the poller will be back next loop iteration, the waiter
  // cannot make progress without this license.
  for (const auto& [id, st] : sessions_) {
    if (id != session && st.waiting > 0) return Lease();
  }
  SessionState& st = sessions_[session];
  --available_;
  ++st.outstanding;
  ++st.grants;
  st.last_grant_seq = ++grant_seq_;
  return Lease(this, session);
}

void LicenseBroker::release_one(std::uint64_t session) {
  {
    std::lock_guard lock(mutex_);
    ++available_;
    const auto it = sessions_.find(session);
    assert(it != sessions_.end() && it->second.outstanding > 0);
    if (it != sessions_.end() && it->second.outstanding > 0) {
      --it->second.outstanding;
    }
    erase_if_idle_locked(session);
  }
  // Every waiter re-evaluates the fairness predicate; notify_all keeps the
  // grant decision in my_turn_locked instead of in wakeup order.
  cv_.notify_all();
}

LicenseBroker::Lease::Lease(Lease&& other) noexcept
    : broker_(std::exchange(other.broker_, nullptr)),
      session_(other.session_) {}

LicenseBroker::Lease& LicenseBroker::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    broker_ = std::exchange(other.broker_, nullptr);
    session_ = other.session_;
  }
  return *this;
}

void LicenseBroker::Lease::release() {
  if (broker_ != nullptr) {
    broker_->release_one(session_);
    broker_ = nullptr;
  }
}

}  // namespace ppat::flow
