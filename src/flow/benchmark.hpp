// Offline benchmark construction, exactly following the paper's §4.1:
// choose configuration points with Latin hypercube sampling over the pruned
// parameter space, run every point through the PD flow for its golden QoR,
// and treat the resulting table as the ground truth a tuner explores
// ("the golden values ... is defined as the best that can be found in the
// benchmarks").
//
// The four benchmark spaces replicate Table 1 verbatim:
//   Source1/Target1: 12 parameters, 5000 points each, small MAC design;
//   Source2:          9 parameters, 1440 points, small MAC design;
//   Target2:          9 parameters,  727 points, large MAC design.
//
// Because golden-QoR generation means thousands of flow runs, built sets
// can be cached to CSV and reloaded (`build_or_load`).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flow/pd_tool.hpp"

namespace ppat::flow {

/// A fully evaluated benchmark: configurations plus their golden QoR.
struct BenchmarkSet {
  std::string name;
  ParameterSpace space;
  std::vector<Config> configs;
  std::vector<QoR> qor;

  std::size_t size() const { return configs.size(); }

  /// Unit-cube encodings of all configurations (for surrogate models).
  std::vector<linalg::Vector> encoded_configs() const;

  /// Golden values of one metric across the set (0=area, 1=power, 2=delay).
  std::vector<double> metric_column(std::size_t metric) const;
};

/// Table 1 parameter spaces.
ParameterSpace source1_space();
ParameterSpace target1_space();
ParameterSpace source2_space();
ParameterSpace target2_space();

/// Paper point counts.
inline constexpr std::size_t kSource1Points = 5000;
inline constexpr std::size_t kTarget1Points = 5000;
inline constexpr std::size_t kSource2Points = 1440;
inline constexpr std::size_t kTarget2Points = 727;

/// Builds a benchmark: `n` LHS points decoded into `space`, each evaluated
/// by `oracle`. Deterministic in `seed`.
BenchmarkSet build_benchmark(const std::string& name,
                             const ParameterSpace& space, std::size_t n,
                             QorOracle& oracle, std::uint64_t seed);

/// CSV persistence. Columns: one per parameter (canonical numeric values),
/// then area_um2, power_mw, delay_ns. load throws std::runtime_error if the
/// file's header does not match the space.
void save_benchmark_csv(const std::string& path, const BenchmarkSet& set);
BenchmarkSet load_benchmark_csv(const std::string& path,
                                const std::string& name,
                                const ParameterSpace& space);

/// Loads `<dir>/<name>.csv` when present, otherwise builds via
/// `build_benchmark` and saves the cache. `make_oracle` is only invoked on a
/// cache miss (constructing a PDTool means generating a full netlist).
BenchmarkSet build_or_load(const std::string& dir, const std::string& name,
                           const ParameterSpace& space, std::size_t n,
                           const std::function<std::unique_ptr<QorOracle>()>&
                               make_oracle,
                           std::uint64_t seed);

}  // namespace ppat::flow
