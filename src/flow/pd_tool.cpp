#include "flow/pd_tool.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "power/power.hpp"
#include "sta/optimizer.hpp"

namespace ppat::flow {

double QoR::metric(std::size_t i) const {
  switch (i) {
    case 0:
      return area_um2;
    case 1:
      return power_mw;
    case 2:
      return delay_ns;
    default:
      throw std::out_of_range("QoR::metric: index must be 0..2");
  }
}

const char* QoR::metric_name(std::size_t i) {
  switch (i) {
    case 0:
      return "area";
    case 1:
      return "power";
    case 2:
      return "delay";
    default:
      throw std::out_of_range("QoR::metric_name: index must be 0..2");
  }
}

struct PDTool::Impl {
  const netlist::CellLibrary* library;
  netlist::Netlist base;
  std::uint64_t seed;

  Impl(const netlist::CellLibrary* lib, const netlist::MacConfig& design,
       std::uint64_t seed_in)
      : library(lib),
        base(netlist::generate_mac(*lib, design)),
        seed(seed_in) {}
};

PDTool::PDTool(const netlist::CellLibrary* library,
               const netlist::MacConfig& design, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(library, design, seed)) {}

PDTool::~PDTool() = default;

const netlist::Netlist& PDTool::base_netlist() const { return impl_->base; }

QoR PDTool::evaluate(const ParameterSpace& space, const Config& config) {
  return evaluate_detailed(space, config, nullptr);
}

QoR PDTool::evaluate_detailed(const ParameterSpace& space,
                              const Config& config, FlowDetails* details) {
  ++runs_;
  space.validate(config);

  // ---- Parameter extraction (defaults cover parameters a benchmark's
  // space does not tune; see Table 1's "-" cells). ----
  const double freq_mhz = space.value_or(config, "freq", 1000.0);
  const double rc_factor = space.value_or(config, "place_rcfactor", 1.0);
  const double uncertainty_ps =
      space.value_or(config, "place_uncertainty", 50.0);
  const int flow_effort =
      static_cast<int>(space.value_or(config, "flowEffort", 0.0));  // 0..2
  const int timing_effort =
      static_cast<int>(space.value_or(config, "timing_effort", 0.0));  // 0..1
  const bool clock_power_driven =
      space.value_or(config, "clock_power_driven", 0.0) != 0.0;
  const bool uniform_density =
      space.value_or(config, "uniform_density", 0.0) != 0.0;
  const int cong_effort =
      static_cast<int>(space.value_or(config, "cong_effort", 0.0));  // 0..1
  const double max_density = space.value_or(config, "max_density", 0.85);
  const double max_length_um = space.value_or(config, "max_Length", 300.0);
  const double max_utilization = space.value_or(config, "max_Density", 0.75);
  const double max_transition_ns =
      space.value_or(config, "max_transition", 0.25);
  const double max_capacitance_pf =
      space.value_or(config, "max_capacitance", 0.10);
  const unsigned max_fanout =
      static_cast<unsigned>(space.value_or(config, "max_fanout", 32.0));
  const double max_allowed_delay_ns =
      space.value_or(config, "max_AllowedDelay", 0.0);

  // ---- Placement ----
  place::PlacerOptions popt;
  // The utilization cap sets the die: higher allowed utilization => smaller
  // die. Keep a floor so the placer always has room to legalize.
  popt.target_utilization = std::clamp(max_utilization * 0.92, 0.30, 0.92);
  popt.max_density = max_density;
  popt.uniform_density = uniform_density;
  popt.congestion_effort = cong_effort == 1
                               ? place::CongestionEffort::kHigh
                               : place::CongestionEffort::kAuto;
  popt.effort_iterations = 8 + 4 * flow_effort;  // 8 / 12 / 16
  // Real PD tools are chaotically sensitive to their inputs: any parameter
  // change reshuffles internal tie-breaks and the flow lands in a different
  // local optimum. Model that by deriving the placement seed from the
  // configuration (FNV-1a over the canonical values), mixed with the tool's
  // own seed. Still fully deterministic per (design, seed, config) — the
  // "golden QoR" property — but neighbouring configurations no longer share
  // one placement, which is what gives the benchmark fronts their realistic
  // thickness.
  std::uint64_t config_hash = 0xCBF29CE484222325ull ^ impl_->seed;
  for (double v : config) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    config_hash = (config_hash ^ bits) * 0x100000001B3ull;
  }
  popt.seed = config_hash;

  netlist::Netlist nl = impl_->base;  // fresh copy each run
  place::Placement placement = place::place(nl, popt);

  // ---- Timing setup ----
  sta::TimingOptions topt;
  topt.clock_period_ns = 1000.0 / freq_mhz;
  topt.clock_uncertainty_ns =
      uncertainty_ps * 1e-3 + (clock_power_driven ? 0.005 : 0.0);
  topt.rc_factor = rc_factor;

  // ---- Optimization (DRV repair + sizing) ----
  sta::OptimizerOptions oopt;
  oopt.limits.max_transition_ns = max_transition_ns;
  oopt.limits.max_capacitance_ff = max_capacitance_pf * 1000.0;
  oopt.limits.max_fanout = max_fanout;
  oopt.limits.max_length_um = max_length_um;
  oopt.max_repair_passes = 2 + flow_effort;             // 2 / 3 / 4
  oopt.sizing_passes = 2 + flow_effort + 2 * timing_effort;
  oopt.max_allowed_delay_ns = max_allowed_delay_ns;

  std::vector<double> x = placement.x, y = placement.y;
  // Optimize against congestion-aware routed lengths, not raw HPWL: this is
  // where high utilization (small die) starts costing delay and power.
  std::vector<double> hpwl = placement.routed_length_um();
  const sta::OptimizerResult oresult =
      sta::optimize(nl, x, y, hpwl, topt, oopt);

  // ---- Final analysis ----
  // Sign-off extraction uses nominal RC (rc_factor is an *optimization*
  // pessimism knob, like Innovus' extraction scaling during placement; the
  // final timing everyone reports is at nominal parasitics).
  const sta::WireParasitics signoff = sta::extract_parasitics(nl, hpwl, 1.0);
  sta::TimingOptions signoff_topt = topt;
  signoff_topt.rc_factor = 1.0;
  const sta::TimingReport timing = sta::run_sta(nl, signoff, signoff_topt);

  power::PowerOptions pwopt;
  pwopt.clock_freq_ghz = freq_mhz * 1e-3;
  pwopt.clock_power_driven = clock_power_driven;
  const power::PowerReport pw = power::estimate_power(
      nl, signoff, placement.die_width_um, pwopt);

  QoR qor;
  // Area QoR: the die area the final design needs at the configured
  // utilization cap — the post-layout "area" a physical designer sees. It
  // responds both to max_Density (die sizing) and to every optimization
  // that adds or grows cells (buffers, upsizing).
  qor.area_um2 = nl.total_cell_area() / popt.target_utilization;
  qor.power_mw = pw.total_mw;
  qor.delay_ns = timing.critical_delay_ns;

  if (details != nullptr) {
    details->wns_ns = timing.wns_ns;
    double total_hpwl = 0.0;
    for (double h : hpwl) total_hpwl += h;
    details->total_hpwl_um = total_hpwl;
    details->congestion_overflow = placement.congestion_overflow(1.0);
    details->buffers_inserted = oresult.buffers_inserted;
    details->cells_upsized = oresult.cells_upsized;
    details->final_cell_count = nl.num_instances();
  }
  return qor;
}

}  // namespace ppat::flow
