// Fault-tolerant dispatch of tool runs to a live QorOracle.
//
// The paper's selection step assumes every chosen configuration comes back
// with a golden QoR; a production flow does not cooperate. Real tool runs
// crash, hang, and are issued concurrently across a bounded number of tool
// licenses (the paper's own batch-selection motivation). EvalService is the
// layer that absorbs this: it takes a batch of configurations, fans them out
// over common::ThreadPool with at most `licenses` runs in flight, applies a
// per-run deadline and bounded retry with exponential backoff, and returns a
// per-run outcome record instead of throwing — run failure is a first-class
// outcome (as in FIST, ICCAD'20, and GC-Tuner'24, which discard or penalize
// failed configurations rather than aborting the search).
//
// Hung runs are handled by an optional heartbeat watchdog: a monitor thread
// tracks every in-flight run and, once enough successful runs establish a
// rolling median duration, cancels any run exceeding a hard multiple of that
// median (CancelToken; oracles implementing CancellableOracle can abort the
// underlying tool run cooperatively). A watchdog-cancelled run is a
// PERMANENT kTimedOut — it is never retried, and callers that journal
// outcomes (tuner::LiveCandidatePool) persist the cancellation so a resumed
// run never re-selects a known-hung configuration.
//
// Determinism: records are stored by batch index, so result order never
// depends on completion order. As long as the oracle's outcome for a
// configuration does not depend on scheduling (true for PDTool and for the
// seeded FaultInjectingOracle), the returned records are identical for every
// license count. The watchdog (disabled by default) is the one knob that
// trades this determinism for liveness: whether a run gets cancelled depends
// on wall-clock behavior.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "flow/license_broker.hpp"
#include "flow/pd_tool.hpp"

namespace ppat::common {
class ThreadPool;
}  // namespace ppat::common

namespace ppat::flow {

/// Thrown by oracles to signal that a tool run failed (crash, license loss,
/// injected fault). EvalService treats any exception from evaluate() as a
/// failed attempt; this type exists so wrappers can signal failures
/// explicitly.
class ToolRunError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cooperative cancellation flag for one in-flight tool run. The watchdog
/// sets it; the oracle (if cancellable) polls it and aborts.
class CancelToken {
 public:
  void request_cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Opt-in interface for oracles that can abort an in-flight run. EvalService
/// detects it via dynamic_cast and routes evaluations through
/// evaluate_with_cancel; oracles that ignore the token still work — the
/// run's RESULT is discarded once the token fires, the tool just isn't
/// reclaimed until it returns on its own.
class CancellableOracle {
 public:
  virtual ~CancellableOracle() = default;
  virtual QoR evaluate_with_cancel(const ParameterSpace& space,
                                   const Config& config,
                                   const CancelToken& cancel) = 0;
};

struct EvalServiceOptions {
  /// Maximum tool runs in flight at once (parallel tool licenses). With one
  /// license the batch runs inline on the calling thread. When > 1 the
  /// oracle must tolerate concurrent evaluate() calls.
  std::size_t licenses = 1;
  /// Total attempts per configuration (1 = no retry).
  std::size_t max_attempts = 3;
  /// Backoff before retry r (1-based): retry_backoff * 2^(r-1). Zero
  /// disables waiting (tests).
  std::chrono::milliseconds retry_backoff{0};
  /// Wall-clock deadline per configuration, measured from BATCH SUBMISSION
  /// (queueing time counts: a licensed-out run that never dispatched before
  /// its deadline is as dead as a hung one). A run past its deadline is
  /// recorded as kTimedOut and NOT retried — a retry that must finish inside
  /// an already-blown deadline is wasted license time. attempts == 0 marks a
  /// run whose deadline expired while still queued. Zero disables the
  /// deadline. Cooperative: an attempt already in flight is classified after
  /// the oracle returns — a real tool wrapper should also enforce a hard
  /// kill on its side (see CancellableOracle + the watchdog).
  std::chrono::milliseconds run_deadline{0};

  /// Hung-run watchdog: cancel any run whose wall-clock exceeds
  /// watchdog_multiple * (rolling median of successful run durations).
  /// 0 disables the watchdog (default: tool run times vary legitimately;
  /// enabling this is a per-deployment decision).
  double watchdog_multiple = 0.0;
  /// Never cancel before this much wall-clock, regardless of the median
  /// (guards the cold-start regime where the median is noisy).
  std::chrono::milliseconds watchdog_floor{1000};
  /// Successful runs required before the watchdog arms.
  std::size_t watchdog_min_samples = 5;
  /// Monitor thread poll interval.
  std::chrono::milliseconds watchdog_poll{50};

  /// Shared license pool for multi-session deployments. When set, every
  /// tool ATTEMPT leases one license from the broker around the oracle call
  /// (fair across sessions — see LicenseBroker), and `licenses` above only
  /// bounds this service's own in-flight workers; the broker bounds the
  /// fleet-wide total. The lease is RAII, so it is released on success,
  /// failure, retry, deadline-timeout, and watchdog-cancel paths alike —
  /// no outcome can leak a license. Null (default) keeps the single-tenant
  /// behavior: `licenses` is the only concurrency bound.
  std::shared_ptr<LicenseBroker> license_broker;
  /// This service's identity in the broker's fair scheduling (one tag per
  /// tuning session). Ignored when license_broker is null.
  std::uint64_t session_tag = 0;
};

enum class RunStatus : unsigned char { kOk, kFailed, kTimedOut };
const char* run_status_name(RunStatus status);

struct RunRecord;

/// Minimal batch-evaluation surface shared by the in-process EvalService and
/// out-of-process evaluators (dist::DistributedEvalService). Pool layers
/// (tuner::LiveCandidatePool) and the session manager program against this,
/// so where the tool runs actually execute — this process's threads or a
/// fleet of worker processes — is a deployment decision, not a code path.
class BatchEvaluator {
 public:
  virtual ~BatchEvaluator() = default;

  /// Called once per configuration as its record is finalized (must be
  /// thread-safe: EvalService invokes it from worker threads). Lets callers
  /// persist each outcome the moment it exists — a crash mid-batch then
  /// loses only runs still in flight, not the whole batch.
  using RunObserver =
      std::function<void(std::size_t index, const RunRecord& record)>;

  /// Evaluates a batch; record i corresponds to configs[i] regardless of
  /// completion order. Never throws for run failures — a failed run is a
  /// first-class RunRecord outcome.
  virtual std::vector<RunRecord> evaluate_batch(
      const std::vector<Config>& configs, const RunObserver& observer) = 0;
  std::vector<RunRecord> evaluate_batch(const std::vector<Config>& configs) {
    return evaluate_batch(configs, RunObserver{});
  }

  /// Parameter space the configurations live in.
  virtual const ParameterSpace& space() const = 0;
};

/// Outcome of one configuration's evaluation (all attempts folded in).
struct RunRecord {
  RunStatus status = RunStatus::kFailed;
  QoR qor{};               ///< valid iff status == kOk
  /// Total attempts made. 0 means the run was never dispatched (its
  /// deadline expired while queued); otherwise >= 1.
  std::size_t attempts = 0;
  std::string error;       ///< last failure reason iff status != kOk
  double elapsed_ms = 0.0;  ///< wall time across all attempts

  bool ok() const { return status == RunStatus::kOk; }
  std::size_t retries() const { return attempts > 0 ? attempts - 1 : 0; }
};

/// Aggregate counters across all batches (monitoring / bench output).
struct EvalServiceStats {
  std::size_t batches = 0;
  std::size_t runs_ok = 0;
  std::size_t runs_failed = 0;
  std::size_t runs_timed_out = 0;
  /// Subset of runs_timed_out that the watchdog cancelled as hung.
  std::size_t runs_watchdog_cancelled = 0;
  std::size_t attempts = 0;
  std::size_t retries = 0;
};

/// License-bounded, retrying, deadline-aware batch evaluator over a
/// QorOracle. The oracle and parameter space must outlive the service.
class EvalService final : public BatchEvaluator {
 public:
  EvalService(QorOracle& oracle, ParameterSpace space,
              EvalServiceOptions options = {});
  ~EvalService() override;

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Evaluates one configuration (all retries included). Never throws for
  /// run failures.
  RunRecord evaluate(const Config& config);

  /// Evaluates a batch with at most `licenses` runs in flight, invoking
  /// `observer` (if set) as each configuration completes. Record i
  /// corresponds to configs[i] regardless of completion order.
  std::vector<RunRecord> evaluate_batch(const std::vector<Config>& configs,
                                        const RunObserver& observer) override;
  using BatchEvaluator::evaluate_batch;

  const EvalServiceOptions& options() const { return options_; }
  const ParameterSpace& space() const override { return space_; }
  EvalServiceStats stats() const;

 private:
  using clock = std::chrono::steady_clock;

  RunRecord run_one(const Config& config, clock::time_point batch_t0);
  void fold_into_stats(const std::vector<RunRecord>& records);
  void watchdog_loop();
  void record_success_duration(double ms);

  QorOracle& oracle_;
  CancellableOracle* cancellable_ = nullptr;  ///< &oracle_ if it opts in
  ParameterSpace space_;
  EvalServiceOptions options_;
  /// Private pool sized to the license count (absent when licenses <= 1);
  /// kept across batches so workers are not re-spawned every round.
  std::unique_ptr<common::ThreadPool> pool_;
  mutable std::mutex stats_mutex_;
  EvalServiceStats stats_;

  // Watchdog state (all guarded by watchdog_mutex_).
  struct InFlight {
    clock::time_point start;
    CancelToken* token = nullptr;
  };
  mutable std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  std::unordered_map<std::uint64_t, InFlight> in_flight_;
  std::uint64_t next_flight_id_ = 0;
  /// Ring buffer of recent successful attempt durations (ms) for the
  /// rolling median.
  std::vector<double> recent_ok_ms_;
  std::size_t recent_pos_ = 0;
  bool watchdog_stop_ = false;
  std::thread watchdog_thread_;
};

}  // namespace ppat::flow
