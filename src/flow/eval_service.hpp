// Fault-tolerant dispatch of tool runs to a live QorOracle.
//
// The paper's selection step assumes every chosen configuration comes back
// with a golden QoR; a production flow does not cooperate. Real tool runs
// crash, hang, and are issued concurrently across a bounded number of tool
// licenses (the paper's own batch-selection motivation). EvalService is the
// layer that absorbs this: it takes a batch of configurations, fans them out
// over common::ThreadPool with at most `licenses` runs in flight, applies a
// per-run deadline and bounded retry with exponential backoff, and returns a
// per-run outcome record instead of throwing — run failure is a first-class
// outcome (as in FIST, ICCAD'20, and GC-Tuner'24, which discard or penalize
// failed configurations rather than aborting the search).
//
// Determinism: records are stored by batch index, so result order never
// depends on completion order. As long as the oracle's outcome for a
// configuration does not depend on scheduling (true for PDTool and for the
// seeded FaultInjectingOracle), the returned records are identical for every
// license count.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "flow/pd_tool.hpp"

namespace ppat::common {
class ThreadPool;
}  // namespace ppat::common

namespace ppat::flow {

/// Thrown by oracles to signal that a tool run failed (crash, license loss,
/// injected fault). EvalService treats any exception from evaluate() as a
/// failed attempt; this type exists so wrappers can signal failures
/// explicitly.
class ToolRunError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct EvalServiceOptions {
  /// Maximum tool runs in flight at once (parallel tool licenses). With one
  /// license the batch runs inline on the calling thread. When > 1 the
  /// oracle must tolerate concurrent evaluate() calls.
  std::size_t licenses = 1;
  /// Total attempts per configuration (1 = no retry).
  std::size_t max_attempts = 3;
  /// Backoff before retry r (1-based): retry_backoff * 2^(r-1). Zero
  /// disables waiting (tests).
  std::chrono::milliseconds retry_backoff{0};
  /// Wall-clock deadline per attempt; an attempt exceeding it is recorded as
  /// timed out (and retried like a failure). Zero disables the deadline.
  /// Cooperative: the attempt is classified after the oracle returns — a
  /// real tool wrapper should also enforce a hard kill on its side.
  std::chrono::milliseconds run_deadline{0};
};

enum class RunStatus : unsigned char { kOk, kFailed, kTimedOut };
const char* run_status_name(RunStatus status);

/// Outcome of one configuration's evaluation (all attempts folded in).
struct RunRecord {
  RunStatus status = RunStatus::kFailed;
  QoR qor{};               ///< valid iff status == kOk
  std::size_t attempts = 0;  ///< total attempts made (>= 1)
  std::string error;       ///< last failure reason iff status != kOk
  double elapsed_ms = 0.0;  ///< wall time across all attempts

  bool ok() const { return status == RunStatus::kOk; }
  std::size_t retries() const { return attempts > 0 ? attempts - 1 : 0; }
};

/// Aggregate counters across all batches (monitoring / bench output).
struct EvalServiceStats {
  std::size_t batches = 0;
  std::size_t runs_ok = 0;
  std::size_t runs_failed = 0;
  std::size_t runs_timed_out = 0;
  std::size_t attempts = 0;
  std::size_t retries = 0;
};

/// License-bounded, retrying, deadline-aware batch evaluator over a
/// QorOracle. The oracle and parameter space must outlive the service.
class EvalService {
 public:
  EvalService(QorOracle& oracle, ParameterSpace space,
              EvalServiceOptions options = {});
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Evaluates one configuration (all retries included). Never throws for
  /// run failures.
  RunRecord evaluate(const Config& config);

  /// Evaluates a batch with at most `licenses` runs in flight. Record i
  /// corresponds to configs[i] regardless of completion order.
  std::vector<RunRecord> evaluate_batch(const std::vector<Config>& configs);

  const EvalServiceOptions& options() const { return options_; }
  const ParameterSpace& space() const { return space_; }
  EvalServiceStats stats() const;

 private:
  RunRecord run_one(const Config& config);
  void fold_into_stats(const std::vector<RunRecord>& records);

  QorOracle& oracle_;
  ParameterSpace space_;
  EvalServiceOptions options_;
  /// Private pool sized to the license count (absent when licenses <= 1);
  /// kept across batches so workers are not re-spawned every round.
  std::unique_ptr<common::ThreadPool> pool_;
  mutable std::mutex stats_mutex_;
  EvalServiceStats stats_;
};

}  // namespace ppat::flow
