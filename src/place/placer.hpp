// Simplified global placement with density control and congestion
// estimation.
//
// This is the placement stage of the `pdsim` mini physical-design flow that
// substitutes for Cadence Innovus in the reproduction. It is deliberately a
// *mechanistic* model, not a curve fit: cells get coordinates from a
// quadratic-style wirelength relaxation (Gauss–Seidel over the star net
// model, anchored at I/O positions on the die boundary), then a bin-based
// diffusion step spreads overfilled bins until every bin respects the
// density target. Congestion is estimated with a RUDY-style map (routing
// demand from net bounding boxes). The tool parameters the paper tunes act
// exactly where they act in a real flow:
//   - max_density caps bin fill -> lower values spread cells (longer wires,
//     less congestion);
//   - uniform_density targets the average utilization everywhere;
//   - cong_effort=HIGH adds spreading passes weighted by congestion;
//   - placement effort scales the relaxation/spreading iteration budget.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netlist/netlist.hpp"

namespace ppat::place {

/// Congestion-mitigation effort, mirroring Innovus' AUTO/HIGH setting.
enum class CongestionEffort { kAuto, kHigh };

struct PlacerOptions {
  double target_utilization = 0.65;  ///< die area = cell area / this
  double max_density = 0.9;          ///< bin fill cap (the tuned parameter)
  bool uniform_density = false;      ///< spread to average utilization
  CongestionEffort congestion_effort = CongestionEffort::kAuto;
  int effort_iterations = 12;        ///< relaxation sweeps (effort knob)
  std::uint64_t seed = 1;            ///< initial-placement seed
};

/// Per-cell coordinates plus the derived maps a router/STA needs.
struct Placement {
  double die_width_um = 0.0;
  double die_height_um = 0.0;
  std::size_t grid_nx = 0, grid_ny = 0;  ///< bin grid dimensions
  double bin_size_um = 0.0;
  std::vector<double> x, y;              ///< per-instance coordinates
  std::vector<double> net_hpwl_um;       ///< per-net half-perimeter WL
  std::vector<double> bin_density;       ///< per-bin cell-area fill ratio
  std::vector<double> bin_congestion;    ///< per-bin routing demand (RUDY)
  std::vector<double> net_congestion;    ///< per-net mean demand over bbox

  /// Estimated routed length per net: HPWL inflated by the congestion
  /// detour a router would take through this net's region. This is what the
  /// flow extracts parasitics from.
  std::vector<double> routed_length_um() const;

  double total_hpwl_um() const;
  double max_bin_density() const;
  /// Fraction of bins whose routing demand exceeds `threshold`.
  double congestion_overflow(double threshold) const;
  /// Mean of the top 10% most congested bins ("hot" congestion score).
  double hot_congestion() const;
};

/// Runs global placement. The netlist is read-only; primary I/O pins are
/// assigned fixed positions around the die boundary (deterministic order).
Placement place(const netlist::Netlist& netlist, const PlacerOptions& options);

}  // namespace ppat::place
