#include "place/def_io.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ppat::place {
namespace {

constexpr double kDbuPerUm = 1000.0;

long long to_dbu(double um) { return std::llround(um * kDbuPerUm); }

}  // namespace

void write_def(const netlist::Netlist& nl, const Placement& p,
               const std::string& design_name, std::ostream& out) {
  if (p.x.size() != nl.num_instances()) {
    throw std::invalid_argument("write_def: placement/netlist size mismatch");
  }
  out << "VERSION 5.8 ;\n";
  out << "DESIGN " << design_name << " ;\n";
  out << "UNITS DISTANCE MICRONS " << static_cast<int>(kDbuPerUm) << " ;\n";
  out << "DIEAREA ( 0 0 ) ( " << to_dbu(p.die_width_um) << " "
      << to_dbu(p.die_height_um) << " ) ;\n";
  out << "COMPONENTS " << nl.num_instances() << " ;\n";
  for (netlist::InstanceId i = 0; i < nl.num_instances(); ++i) {
    out << "  - u" << i << " " << nl.library().cell(nl.instance(i).cell).name
        << " + PLACED ( " << to_dbu(p.x[i]) << " " << to_dbu(p.y[i])
        << " ) N ;\n";
  }
  out << "END COMPONENTS\n";
  out << "END DESIGN\n";
}

std::string to_def(const netlist::Netlist& nl, const Placement& p,
                   const std::string& design_name) {
  std::ostringstream out;
  write_def(nl, p, design_name, out);
  return out.str();
}

DefPlacement parse_def(const std::string& text) {
  DefPlacement result;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t declared_components = 0;
  bool in_components = false;

  auto fail = [&line_no](const std::string& what) -> void {
    throw std::runtime_error("DEF parse error at line " +
                             std::to_string(line_no) + ": " + what);
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok.empty()) continue;

    if (tok == "DIEAREA") {
      std::string junk;
      long long x0, y0, x1, y1;
      // DIEAREA ( x0 y0 ) ( x1 y1 ) ;
      if (!(ls >> junk >> x0 >> y0 >> junk >> junk >> x1 >> y1)) {
        fail("malformed DIEAREA");
      }
      result.die_width_um = static_cast<double>(x1 - x0) / kDbuPerUm;
      result.die_height_um = static_cast<double>(y1 - y0) / kDbuPerUm;
    } else if (tok == "COMPONENTS") {
      if (!(ls >> declared_components)) fail("malformed COMPONENTS");
      in_components = true;
      result.x.assign(declared_components, 0.0);
      result.y.assign(declared_components, 0.0);
    } else if (tok == "END") {
      std::string what;
      ls >> what;
      if (what == "COMPONENTS") in_components = false;
    } else if (tok == "-" && in_components) {
      // - u<i> CELL + PLACED ( x y ) N ;
      std::string name, cell, plus, placed, paren;
      long long x, y;
      if (!(ls >> name >> cell >> plus >> placed >> paren >> x >> y)) {
        fail("malformed component entry");
      }
      if (name.size() < 2 || name[0] != 'u') {
        fail("unexpected component name " + name);
      }
      const std::size_t index = std::stoul(name.substr(1));
      if (index >= declared_components) {
        fail("component index out of range: " + name);
      }
      result.x[index] = static_cast<double>(x) / kDbuPerUm;
      result.y[index] = static_cast<double>(y) / kDbuPerUm;
    }
  }
  if (in_components) {
    ++line_no;
    fail("missing END COMPONENTS");
  }
  return result;
}

}  // namespace ppat::place
