#include "place/placer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ppat::place {
namespace {

using netlist::InstanceId;
using netlist::kInvalidId;
using netlist::Netlist;
using netlist::NetId;

/// Fixed boundary coordinates for primary I/O: inputs on the left edge,
/// outputs on the right, evenly spaced in id order.
struct IoAnchors {
  // Per-net anchor (NaN when a net has no I/O endpoint).
  std::vector<double> x, y;
  std::vector<bool> has_anchor;
};

IoAnchors build_io_anchors(const Netlist& nl, double die_w, double die_h) {
  IoAnchors io;
  io.x.assign(nl.num_nets(), 0.0);
  io.y.assign(nl.num_nets(), 0.0);
  io.has_anchor.assign(nl.num_nets(), false);

  const auto& pis = nl.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const double frac =
        (static_cast<double>(i) + 0.5) / static_cast<double>(pis.size());
    io.x[pis[i]] = 0.0;
    io.y[pis[i]] = frac * die_h;
    io.has_anchor[pis[i]] = true;
  }
  const auto pos = nl.primary_outputs();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const double frac =
        (static_cast<double>(i) + 0.5) / static_cast<double>(pos.size());
    // An output net can also be a PI-driven net in degenerate designs; the
    // later anchor (output side) wins, which is harmless for the model.
    io.x[pos[i]] = die_w;
    io.y[pos[i]] = frac * die_h;
    io.has_anchor[pos[i]] = true;
  }
  return io;
}

struct BinGrid {
  std::size_t nx = 0, ny = 0;
  double bin = 0.0;  // bin edge length (um)
  std::vector<double> fill;  // cell-area fill ratio per bin

  std::size_t index_of(double x, double y, double die_w, double die_h) const {
    const double cx = std::clamp(x, 0.0, die_w - 1e-9);
    const double cy = std::clamp(y, 0.0, die_h - 1e-9);
    const std::size_t ix =
        std::min(nx - 1, static_cast<std::size_t>(cx / bin));
    const std::size_t iy =
        std::min(ny - 1, static_cast<std::size_t>(cy / bin));
    return iy * nx + ix;
  }
};

void accumulate_fill(const Netlist& nl, const Placement& p, BinGrid& grid) {
  std::fill(grid.fill.begin(), grid.fill.end(), 0.0);
  const double bin_area = grid.bin * grid.bin;
  for (InstanceId i = 0; i < nl.num_instances(); ++i) {
    const double area = nl.library().cell(nl.instance(i).cell).area_um2;
    grid.fill[grid.index_of(p.x[i], p.y[i], p.die_width_um,
                            p.die_height_um)] += area / bin_area;
  }
}

}  // namespace

double Placement::total_hpwl_um() const {
  double s = 0.0;
  for (double h : net_hpwl_um) s += h;
  return s;
}

std::vector<double> Placement::routed_length_um() const {
  // A router facing demand beyond ~75% of supply detours around hotspots;
  // the detour grows with the overload. The 0.5 slope is a typical
  // global-route scenic ratio at saturated supply.
  std::vector<double> routed = net_hpwl_um;
  for (std::size_t i = 0; i < routed.size(); ++i) {
    const double overload =
        net_congestion.empty() ? 0.0
                               : std::max(0.0, net_congestion[i] - 0.75);
    routed[i] *= 1.0 + 0.5 * std::min(1.5, overload);
  }
  return routed;
}

double Placement::max_bin_density() const {
  double m = 0.0;
  for (double d : bin_density) m = std::max(m, d);
  return m;
}

double Placement::congestion_overflow(double threshold) const {
  if (bin_congestion.empty()) return 0.0;
  std::size_t over = 0;
  for (double c : bin_congestion) {
    if (c > threshold) ++over;
  }
  return static_cast<double>(over) /
         static_cast<double>(bin_congestion.size());
}

double Placement::hot_congestion() const {
  if (bin_congestion.empty()) return 0.0;
  std::vector<double> sorted = bin_congestion;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t k = std::max<std::size_t>(1, sorted.size() / 10);
  double s = 0.0;
  for (std::size_t i = sorted.size() - k; i < sorted.size(); ++i) {
    s += sorted[i];
  }
  return s / static_cast<double>(k);
}

Placement place(const netlist::Netlist& nl, const PlacerOptions& opt) {
  Placement p;
  const std::size_t n = nl.num_instances();
  assert(n > 0);

  // Die sizing from target utilization; square die.
  const double cell_area = nl.total_cell_area();
  const double die_area = cell_area / std::max(0.05, opt.target_utilization);
  p.die_width_um = p.die_height_um = std::sqrt(die_area);

  // Bin grid aiming for ~64 cells per bin, at least 8x8.
  std::size_t g = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(n) / 64.0) + 0.5);
  g = std::clamp<std::size_t>(g, 8, 160);
  BinGrid grid;
  grid.nx = grid.ny = g;
  grid.bin = p.die_width_um / static_cast<double>(g);
  grid.fill.assign(g * g, 0.0);
  p.grid_nx = grid.nx;
  p.grid_ny = grid.ny;
  p.bin_size_um = grid.bin;

  // Initial placement: deterministic uniform random.
  common::Rng rng(opt.seed);
  p.x.resize(n);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] = rng.uniform(0.0, p.die_width_um);
    p.y[i] = rng.uniform(0.0, p.die_height_um);
  }

  const IoAnchors io = build_io_anchors(nl, p.die_width_um, p.die_height_um);

  // --- Wirelength relaxation (Jacobi sweeps on the star net model) ---
  // Each sweep: compute every net's star center (mean of its endpoints,
  // counting the I/O anchor when present), then move each cell toward the
  // mean of its incident nets' centers.
  const int sweeps = std::max(2, opt.effort_iterations);
  std::vector<double> net_cx(nl.num_nets()), net_cy(nl.num_nets());
  std::vector<double> new_x(n), new_y(n);
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (NetId nid = 0; nid < nl.num_nets(); ++nid) {
      const auto& net = nl.net(nid);
      double sx = 0.0, sy = 0.0;
      std::size_t cnt = 0;
      if (net.driver != kInvalidId) {
        sx += p.x[net.driver];
        sy += p.y[net.driver];
        ++cnt;
      }
      for (const auto& sink : net.sinks) {
        sx += p.x[sink.instance];
        sy += p.y[sink.instance];
        ++cnt;
      }
      if (io.has_anchor[nid]) {
        sx += io.x[nid];
        sy += io.y[nid];
        ++cnt;
      }
      if (cnt == 0) {
        net_cx[nid] = p.die_width_um * 0.5;
        net_cy[nid] = p.die_height_um * 0.5;
      } else {
        net_cx[nid] = sx / static_cast<double>(cnt);
        net_cy[nid] = sy / static_cast<double>(cnt);
      }
    }
    for (InstanceId i = 0; i < n; ++i) {
      const auto& inst = nl.instance(i);
      double sx = 0.0, sy = 0.0;
      std::size_t cnt = 0;
      for (NetId nid : inst.fanins) {
        sx += net_cx[nid];
        sy += net_cy[nid];
        ++cnt;
      }
      sx += net_cx[inst.fanout];
      sy += net_cy[inst.fanout];
      ++cnt;
      const double tx = sx / static_cast<double>(cnt);
      const double ty = sy / static_cast<double>(cnt);
      // Under-relaxation keeps the iteration stable and avoids total
      // collapse to the centroid before density spreading acts.
      constexpr double kMix = 0.7;
      new_x[i] = (1.0 - kMix) * p.x[i] + kMix * tx;
      new_y[i] = (1.0 - kMix) * p.y[i] + kMix * ty;
    }
    p.x.swap(new_x);
    p.y.swap(new_y);
  }

  // --- Density spreading ---
  // Target bin fill: the density cap, or (for uniform_density) just above
  // the average utilization so cells spread across the whole die.
  const double avg_fill = opt.target_utilization;
  const double target_fill = opt.uniform_density
                                 ? std::min(opt.max_density, avg_fill * 1.15)
                                 : opt.max_density;
  // Excess-transport spreading: each pass moves the cells beyond a bin's
  // capacity into its least-filled 4-neighbour (placed near that bin's
  // center, jittered deterministically), updating fills as it goes. This
  // converges in O(grid diameter) passes even from a fully collapsed
  // quadratic solution, unlike gradient-style nudging.
  const int spread_iters = std::min(
      36, 2 * static_cast<int>(grid.nx) +
              (opt.congestion_effort == CongestionEffort::kHigh
                   ? static_cast<int>(grid.nx) / 2
                   : 0));
  const double bin_area = grid.bin * grid.bin;
  std::vector<std::vector<InstanceId>> bin_cells(grid.nx * grid.ny);
  common::Rng spread_rng(opt.seed ^ 0x5BD1E995u);
  for (int iter = 0; iter < spread_iters; ++iter) {
    for (auto& cells : bin_cells) cells.clear();
    accumulate_fill(nl, p, grid);
    for (InstanceId i = 0; i < n; ++i) {
      bin_cells[grid.index_of(p.x[i], p.y[i], p.die_width_um,
                              p.die_height_um)]
          .push_back(i);
    }
    bool any_over = false;
    for (std::size_t b = 0; b < bin_cells.size(); ++b) {
      if (grid.fill[b] <= target_fill) continue;
      const std::size_t bx = b % grid.nx, by = b / grid.nx;
      // All in-bounds 4-neighbours, emptiest first; the bin spills into
      // each in turn until it meets the cap or every neighbour saturates.
      std::vector<std::size_t> neighbours;
      auto consider = [&](std::ptrdiff_t dx, std::ptrdiff_t dy) {
        const std::ptrdiff_t nx2 = static_cast<std::ptrdiff_t>(bx) + dx;
        const std::ptrdiff_t ny2 = static_cast<std::ptrdiff_t>(by) + dy;
        if (nx2 < 0 || ny2 < 0 ||
            nx2 >= static_cast<std::ptrdiff_t>(grid.nx) ||
            ny2 >= static_cast<std::ptrdiff_t>(grid.ny)) {
          return;
        }
        neighbours.push_back(static_cast<std::size_t>(ny2) * grid.nx +
                             static_cast<std::size_t>(nx2));
      };
      consider(-1, 0);
      consider(1, 0);
      consider(0, -1);
      consider(0, 1);
      std::sort(neighbours.begin(), neighbours.end(),
                [&grid](std::size_t a, std::size_t c) {
                  return grid.fill[a] < grid.fill[c];
                });
      auto& cells = bin_cells[b];
      for (std::size_t nb : neighbours) {
        if (grid.fill[b] <= target_fill) break;
        const double cx =
            (static_cast<double>(nb % grid.nx) + 0.5) * grid.bin;
        const double cy =
            (static_cast<double>(nb / grid.nx) + 0.5) * grid.bin;
        // A neighbour may absorb up to the source's current level (downhill
        // transport), capped at the density target when it has headroom.
        const double absorb_limit =
            std::max(target_fill,
                     0.5 * (grid.fill[b] + grid.fill[nb]));
        while (!cells.empty() && grid.fill[b] > target_fill &&
               grid.fill[nb] < absorb_limit) {
          const InstanceId moved = cells.back();
          cells.pop_back();
          const double area =
              nl.library().cell(nl.instance(moved).cell).area_um2;
          p.x[moved] = std::clamp(
              cx + spread_rng.uniform(-0.4, 0.4) * grid.bin, 0.0,
              p.die_width_um);
          p.y[moved] = std::clamp(
              cy + spread_rng.uniform(-0.4, 0.4) * grid.bin, 0.0,
              p.die_height_um);
          grid.fill[b] -= area / bin_area;
          grid.fill[nb] += area / bin_area;
          bin_cells[nb].push_back(moved);
          any_over = true;
        }
      }
    }
    if (!any_over) break;
  }
  accumulate_fill(nl, p, grid);
  p.bin_density = grid.fill;

  // --- HPWL ---
  p.net_hpwl_um.assign(nl.num_nets(), 0.0);
  std::vector<double> bb_lx(nl.num_nets()), bb_ly(nl.num_nets()),
      bb_hx(nl.num_nets()), bb_hy(nl.num_nets());
  for (NetId nid = 0; nid < nl.num_nets(); ++nid) {
    const auto& net = nl.net(nid);
    double lx = 1e30, ly = 1e30, hx = -1e30, hy = -1e30;
    auto extend = [&](double x, double y) {
      lx = std::min(lx, x);
      ly = std::min(ly, y);
      hx = std::max(hx, x);
      hy = std::max(hy, y);
    };
    if (net.driver != kInvalidId) extend(p.x[net.driver], p.y[net.driver]);
    for (const auto& sink : net.sinks) {
      extend(p.x[sink.instance], p.y[sink.instance]);
    }
    if (io.has_anchor[nid]) extend(io.x[nid], io.y[nid]);
    if (hx < lx) {  // floating net
      bb_lx[nid] = bb_hx[nid] = 0.0;
      bb_ly[nid] = bb_hy[nid] = 0.0;
      continue;
    }
    p.net_hpwl_um[nid] = (hx - lx) + (hy - ly);
    bb_lx[nid] = lx;
    bb_ly[nid] = ly;
    bb_hx[nid] = hx;
    bb_hy[nid] = hy;
  }

  // --- RUDY congestion map + per-net congestion exposure ---
  auto bin_range = [&grid](double lo, double hi, std::size_t n_bins) {
    const auto b0 = static_cast<std::size_t>(
        std::clamp(lo / grid.bin, 0.0, static_cast<double>(n_bins - 1)));
    const auto b1 = static_cast<std::size_t>(
        std::clamp(hi / grid.bin, 0.0, static_cast<double>(n_bins - 1)));
    return std::pair{b0, b1};
  };
  auto compute_congestion = [&] {
    p.bin_congestion.assign(grid.nx * grid.ny, 0.0);
    for (NetId nid = 0; nid < nl.num_nets(); ++nid) {
      const double w = bb_hx[nid] - bb_lx[nid];
      const double h = bb_hy[nid] - bb_ly[nid];
      if (p.net_hpwl_um[nid] <= 0.0) continue;
      // RUDY: uniform wire-density within the bbox, demand = hpwl / area.
      const double area = std::max(w * h, grid.bin * grid.bin * 0.25);
      const double demand = p.net_hpwl_um[nid] / area;
      const auto [ix0, ix1] = bin_range(bb_lx[nid], bb_hx[nid], grid.nx);
      const auto [iy0, iy1] = bin_range(bb_ly[nid], bb_hy[nid], grid.ny);
      for (std::size_t iy = iy0; iy <= iy1; ++iy) {
        for (std::size_t ix = ix0; ix <= ix1; ++ix) {
          p.bin_congestion[iy * grid.nx + ix] += demand;
        }
      }
    }
    // Normalize congestion to a routing-supply estimate so that ~1.0 means
    // "demand equals typical track supply".
    const double supply = 14.0;  // um of wire per um^2, a 7 nm-ish constant
    for (double& c : p.bin_congestion) c /= supply;

    // Per-net congestion: mean normalized demand across the bbox bins.
    p.net_congestion.assign(nl.num_nets(), 0.0);
    for (NetId nid = 0; nid < nl.num_nets(); ++nid) {
      if (p.net_hpwl_um[nid] <= 0.0) continue;
      const auto [ix0, ix1] = bin_range(bb_lx[nid], bb_hx[nid], grid.nx);
      const auto [iy0, iy1] = bin_range(bb_ly[nid], bb_hy[nid], grid.ny);
      double sum = 0.0;
      std::size_t count = 0;
      for (std::size_t iy = iy0; iy <= iy1; ++iy) {
        for (std::size_t ix = ix0; ix <= ix1; ++ix) {
          sum += p.bin_congestion[iy * grid.nx + ix];
          ++count;
        }
      }
      p.net_congestion[nid] = sum / static_cast<double>(count);
    }
  };
  compute_congestion();

  // Congestion-driven refinement under HIGH effort: one extra spreading
  // round weighted by congestion, trading wirelength for routability.
  if (opt.congestion_effort == CongestionEffort::kHigh) {
    for (InstanceId i = 0; i < n; ++i) {
      const std::size_t b =
          grid.index_of(p.x[i], p.y[i], p.die_width_um, p.die_height_um);
      const double c = p.bin_congestion[b];
      if (c <= 0.85) continue;
      // Push away from the die's congestion centroid (cheap proxy for a
      // congestion gradient).
      const double cx = p.die_width_um * 0.5, cy = p.die_height_um * 0.5;
      const double dx = p.x[i] - cx, dy = p.y[i] - cy;
      const double norm = std::hypot(dx, dy);
      if (norm < 1e-9) continue;
      const double push = grid.bin * 0.4 * std::min(1.0, c - 0.85);
      p.x[i] = std::clamp(p.x[i] + dx / norm * push, 0.0, p.die_width_um);
      p.y[i] = std::clamp(p.y[i] + dy / norm * push, 0.0, p.die_height_um);
    }
    // Refresh the maps after the extra move.
    accumulate_fill(nl, p, grid);
    p.bin_density = grid.fill;
    for (NetId nid = 0; nid < nl.num_nets(); ++nid) {
      const auto& net = nl.net(nid);
      double lx = 1e30, ly = 1e30, hx = -1e30, hy = -1e30;
      auto extend = [&](double x, double y) {
        lx = std::min(lx, x);
        ly = std::min(ly, y);
        hx = std::max(hx, x);
        hy = std::max(hy, y);
      };
      if (net.driver != kInvalidId) extend(p.x[net.driver], p.y[net.driver]);
      for (const auto& sink : net.sinks) {
        extend(p.x[sink.instance], p.y[sink.instance]);
      }
      if (io.has_anchor[nid]) extend(io.x[nid], io.y[nid]);
      if (hx >= lx) {
        p.net_hpwl_um[nid] = (hx - lx) + (hy - ly);
        bb_lx[nid] = lx;
        bb_ly[nid] = ly;
        bb_hx[nid] = hx;
        bb_hy[nid] = hy;
      }
    }
    compute_congestion();
  }

  return p;
}

}  // namespace ppat::place
