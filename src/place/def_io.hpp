// DEF-flavoured placement interchange.
//
// Emits/parses the subset of a DEF file a placement actually needs —
// DIEAREA and per-component PLACED locations — so pdsim placements can be
// eyeballed with standard layout viewers and round-tripped in tests.
// Coordinates use the customary DEF database units (1000 DBU per um).
//
//   VERSION 5.8 ;
//   DESIGN mac ;
//   UNITS DISTANCE MICRONS 1000 ;
//   DIEAREA ( 0 0 ) ( 257000 257000 ) ;
//   COMPONENTS 19360 ;
//     - u0 NAND2_X1 + PLACED ( 12345 54321 ) N ;
//     ...
//   END COMPONENTS
//   END DESIGN
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "place/placer.hpp"

namespace ppat::place {

/// Writes the placement of `netlist` in the DEF subset described above.
void write_def(const netlist::Netlist& netlist, const Placement& placement,
               const std::string& design_name, std::ostream& out);

std::string to_def(const netlist::Netlist& netlist,
                   const Placement& placement,
                   const std::string& design_name);

/// Parsed-back locations (um) plus the die box.
struct DefPlacement {
  double die_width_um = 0.0;
  double die_height_um = 0.0;
  std::vector<double> x, y;  ///< indexed by component number (u<i>)
};

/// Parses the subset produced by write_def. Throws std::runtime_error with
/// a line number on malformed input or component count mismatches.
DefPlacement parse_def(const std::string& text);

}  // namespace ppat::place
