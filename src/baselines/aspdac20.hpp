// ASPDAC'20 baseline [9]: FIST — "feature-importance sampling and tree-based
// method for automatic design flow parameter tuning".
//
// Faithful to the original's two-phase structure:
//   1. Feature importances are learned from the SOURCE task with a
//      gradient-boosted-tree regressor per objective (the original uses
//      XGBoost) and averaged.
//   2. Model-less exploration: target candidates are grouped by the joint
//      signature of their most-important features (each binarized at its
//      median) and representatives are sampled across groups — importance-
//      guided coverage of the space.
//   3. Model-based exploitation: boosted trees fitted on the revealed target
//      data predict all candidates; each round evaluates a batch from the
//      predicted Pareto front, to a fixed budget.
#pragma once

#include <cstdint>

#include "tuner/problem.hpp"

namespace ppat::baselines {

struct Aspdac20Options {
  std::size_t budget = 400;
  std::size_t batch_size = 5;
  double exploration_fraction = 0.30;  ///< share of budget spent model-less
  std::size_t important_features = 4;  ///< features forming the signature
  std::size_t trees = 80;
  int tree_depth = 4;
  std::uint64_t seed = 1;
};

/// `source` provides the feature-importance training data; may be null, in
/// which case exploration falls back to uniform sampling (no importance
/// guidance) — useful for ablation.
tuner::TuningResult run_aspdac20(tuner::CandidatePool& pool,
                                 const tuner::SourceData* source,
                                 const Aspdac20Options& options);

}  // namespace ppat::baselines
