#include "baselines/mlcad19.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "gp/gp.hpp"
#include "tuner/surrogate.hpp"

namespace ppat::baselines {

tuner::TuningResult run_mlcad19(tuner::CandidatePool& pool,
                                const Mlcad19Options& options) {
  const std::size_t n = pool.size();
  const std::size_t n_obj = pool.num_objectives();
  common::Rng rng(options.seed);

  // ---- Initial design ----
  const std::size_t init_count = std::min(
      {n, std::max(options.min_init,
                   static_cast<std::size_t>(options.init_fraction *
                                            static_cast<double>(n))),
       options.budget});
  std::vector<linalg::Vector> train_x;
  std::vector<linalg::Vector> train_y(n_obj);
  std::vector<bool> revealed(n, false);
  std::vector<std::size_t> revealed_list;

  auto reveal = [&](std::size_t i) {
    const pareto::Point y = pool.reveal(i);
    revealed[i] = true;
    revealed_list.push_back(i);
    train_x.push_back(pool.encoded()[i]);
    for (std::size_t k = 0; k < n_obj; ++k) train_y[k].push_back(y[k]);
    return y;
  };
  for (std::size_t i : rng.sample_without_replacement(n, init_count)) {
    reveal(i);
  }

  std::vector<tuner::PlainGpSurrogate> models(n_obj);
  for (std::size_t k = 0; k < n_obj; ++k) {
    models[k].fit(train_x, train_y[k]);
    models[k].refit_hyperparameters(rng);
  }

  // ---- BO loop ----
  std::vector<linalg::Vector> unrevealed_x;
  std::vector<std::size_t> unrevealed_idx;
  linalg::Vector means, vars;
  std::size_t round = 0;
  while (pool.runs() < options.budget) {
    ++round;
    unrevealed_x.clear();
    unrevealed_idx.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (!revealed[i]) {
        unrevealed_idx.push_back(i);
        unrevealed_x.push_back(pool.encoded()[i]);
      }
    }
    if (unrevealed_idx.empty()) break;

    // Per-objective normalized LCB scores.
    std::vector<linalg::Vector> lcb(n_obj,
                                    linalg::Vector(unrevealed_idx.size()));
    for (std::size_t k = 0; k < n_obj; ++k) {
      models[k].predict_batch(unrevealed_x, means, vars);
      double best = 1e300, worst = -1e300;
      for (std::size_t c = 0; c < means.size(); ++c) {
        const double v =
            means[c] - options.kappa * std::sqrt(std::max(0.0, vars[c]));
        lcb[k][c] = v;
        best = std::min(best, v);
        worst = std::max(worst, v);
      }
      const double span = std::max(1e-12, worst - best);
      for (double& v : lcb[k]) v = (v - best) / span;
    }

    // Batch of selections with independent random scalarizations.
    const std::size_t batch = std::min(
        {options.batch_size, unrevealed_idx.size(),
         options.budget - pool.runs()});
    std::vector<bool> taken(unrevealed_idx.size(), false);
    for (std::size_t b = 0; b < batch; ++b) {
      linalg::Vector w(n_obj, 1.0 / static_cast<double>(n_obj));
      if (options.scalarization == Scalarization::kRandomWeights) {
        // Uniform weights on the simplex (normalized exponentials).
        double sum = 0.0;
        for (double& x : w) {
          x = -std::log(std::max(1e-300, rng.uniform01()));
          sum += x;
        }
        for (double& x : w) x /= sum;
      }

      std::size_t best_c = 0;
      double best_score = 1e300;
      for (std::size_t c = 0; c < unrevealed_idx.size(); ++c) {
        if (taken[c]) continue;
        double score = 0.0;
        for (std::size_t k = 0; k < n_obj; ++k) score += w[k] * lcb[k][c];
        if (score < best_score) {
          best_score = score;
          best_c = c;
        }
      }
      taken[best_c] = true;
      const std::size_t i = unrevealed_idx[best_c];
      const pareto::Point y = reveal(i);
      for (std::size_t k = 0; k < n_obj; ++k) {
        models[k].add_observation(pool.encoded()[i], y[k]);
      }
    }

    if (round % options.refit_every == 0) {
      for (auto& m : models) m.refit_hyperparameters(rng);
    }
  }

  // ---- Answer: Pareto front of the evaluated set ----
  std::vector<pareto::Point> evaluated;
  evaluated.reserve(revealed_list.size());
  for (std::size_t i : revealed_list) evaluated.push_back(pool.reveal(i));
  tuner::TuningResult result;
  for (std::size_t f : pareto::pareto_front_indices(evaluated)) {
    result.pareto_indices.push_back(revealed_list[f]);
  }
  result.tool_runs = pool.runs();
  return result;
}

}  // namespace ppat::baselines
