// TCAD'19 baseline [12]: "Cross-layer optimization for high speed adders: a
// Pareto driven machine learning approach" — an active learning-based
// Pareto exploration framework.
//
// Reimplemented in the original's spirit: per-objective Gaussian-process
// regressors are refined actively by repeatedly (a) predicting every
// unevaluated configuration, (b) evaluating a batch drawn from the
// *predicted* Pareto front (exploitation), mixed with a small fraction of
// random exploration, until the budget is exhausted. Unlike PPATuner it has
// no historical-task transfer and no uncertainty-region convergence test,
// so it runs to its full budget and can miss front regions its models are
// confidently wrong about.
#pragma once

#include <cstdint>

#include "tuner/problem.hpp"

namespace ppat::baselines {

struct Tcad19Options {
  std::size_t max_runs = 520;
  double init_fraction = 0.02;
  std::size_t min_init = 10;
  std::size_t batch_size = 5;
  double explore_fraction = 0.1;  ///< share of selections taken at random
  std::size_t refit_every = 5;    ///< hyper-parameter refit cadence (rounds)
  std::uint64_t seed = 1;
};

tuner::TuningResult run_tcad19(tuner::CandidatePool& pool,
                               const Tcad19Options& options);

}  // namespace ppat::baselines
