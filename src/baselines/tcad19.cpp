#include "baselines/tcad19.hpp"

#include <algorithm>

#include "tuner/surrogate.hpp"

namespace ppat::baselines {

tuner::TuningResult run_tcad19(tuner::CandidatePool& pool,
                               const Tcad19Options& options) {
  const std::size_t n = pool.size();
  const std::size_t n_obj = pool.num_objectives();
  common::Rng rng(options.seed);

  std::vector<bool> revealed(n, false);
  std::vector<std::size_t> revealed_list;
  std::vector<linalg::Vector> train_x;
  std::vector<linalg::Vector> train_y(n_obj);
  auto reveal = [&](std::size_t i) {
    const pareto::Point y = pool.reveal(i);
    revealed[i] = true;
    revealed_list.push_back(i);
    train_x.push_back(pool.encoded()[i]);
    for (std::size_t k = 0; k < n_obj; ++k) train_y[k].push_back(y[k]);
    return y;
  };

  const std::size_t init_count = std::min(
      {n, std::max(options.min_init,
                   static_cast<std::size_t>(options.init_fraction *
                                            static_cast<double>(n))),
       options.max_runs});
  for (std::size_t i : rng.sample_without_replacement(n, init_count)) {
    reveal(i);
  }

  std::vector<tuner::PlainGpSurrogate> models(n_obj);
  for (std::size_t k = 0; k < n_obj; ++k) {
    models[k].fit(train_x, train_y[k]);
    models[k].refit_hyperparameters(rng);
  }

  // ---- Active exploitation loop ----
  linalg::Vector means, vars;
  std::size_t round = 0;
  while (pool.runs() < options.max_runs) {
    ++round;
    std::vector<std::size_t> unrevealed_idx;
    std::vector<linalg::Vector> unrevealed_x;
    for (std::size_t i = 0; i < n; ++i) {
      if (!revealed[i]) {
        unrevealed_idx.push_back(i);
        unrevealed_x.push_back(pool.encoded()[i]);
      }
    }
    if (unrevealed_idx.empty()) break;

    // Predicted objective vectors of every unevaluated configuration.
    std::vector<pareto::Point> predicted(unrevealed_idx.size(),
                                         pareto::Point(n_obj));
    for (std::size_t k = 0; k < n_obj; ++k) {
      models[k].predict_batch(unrevealed_x, means, vars);
      for (std::size_t c = 0; c < predicted.size(); ++c) {
        predicted[c][k] = means[c];
      }
    }
    std::vector<std::size_t> front = pareto::pareto_front_indices(predicted);
    rng.shuffle(front);

    const std::size_t batch = std::min(
        {options.batch_size, unrevealed_idx.size(),
         options.max_runs - pool.runs()});
    std::size_t front_cursor = 0;
    for (std::size_t b = 0; b < batch; ++b) {
      std::size_t pick;
      if (rng.uniform01() < options.explore_fraction ||
          front_cursor >= front.size()) {
        pick = static_cast<std::size_t>(
            rng.next_below(unrevealed_idx.size()));
      } else {
        pick = front[front_cursor++];
      }
      const std::size_t i = unrevealed_idx[pick];
      if (revealed[i]) continue;  // duplicate random pick within the batch
      const pareto::Point y = reveal(i);
      for (std::size_t k = 0; k < n_obj; ++k) {
        models[k].add_observation(pool.encoded()[i], y[k]);
      }
    }
    if (round % options.refit_every == 0) {
      for (auto& m : models) m.refit_hyperparameters(rng);
    }
  }

  // ---- Answer: Pareto front of the evaluated set ----
  std::vector<pareto::Point> evaluated;
  evaluated.reserve(revealed_list.size());
  for (std::size_t i : revealed_list) evaluated.push_back(pool.reveal(i));
  tuner::TuningResult result;
  for (std::size_t f : pareto::pareto_front_indices(evaluated)) {
    result.pareto_indices.push_back(revealed_list[f]);
  }
  result.tool_runs = pool.runs();
  return result;
}

}  // namespace ppat::baselines
