#include "baselines/dac19.hpp"

#include <algorithm>
#include <cmath>

#include "mf/matrix_factorization.hpp"

namespace ppat::baselines {
namespace {

/// Index of the pool candidate nearest (L2 in the unit cube) to `x`.
std::size_t nearest_candidate(const std::vector<linalg::Vector>& encoded,
                              const linalg::Vector& x) {
  std::size_t best = 0;
  double best_d = 1e300;
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    double d = 0.0;
    for (std::size_t k = 0; k < x.size(); ++k) {
      const double diff = encoded[i][k] - x[k];
      d += diff * diff;
    }
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace

tuner::TuningResult run_dac19(tuner::CandidatePool& pool,
                              const tuner::SourceData* source,
                              const Dac19Options& options) {
  const std::size_t n = pool.size();
  const std::size_t n_obj = pool.num_objectives();
  common::Rng rng(options.seed);

  // ---- Source row: map source observations onto target-pool columns ----
  // (averaging duplicates that land on the same column).
  std::vector<std::vector<mf::Observation>> observed(n_obj);
  if (source != nullptr && source->size() > 0) {
    std::vector<double> sums(n, 0.0);
    std::vector<std::size_t> counts(n, 0);
    std::vector<std::size_t> cols(source->size());
    for (std::size_t s = 0; s < source->size(); ++s) {
      cols[s] = nearest_candidate(pool.encoded(), source->xs[s]);
    }
    for (std::size_t k = 0; k < n_obj; ++k) {
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0);
      for (std::size_t s = 0; s < source->size(); ++s) {
        sums[cols[s]] += source->ys[k][s];
        ++counts[cols[s]];
      }
      for (std::size_t c = 0; c < n; ++c) {
        if (counts[c] > 0) {
          observed[k].push_back(
              {0, c, sums[c] / static_cast<double>(counts[c])});
        }
      }
    }
  }

  std::vector<bool> revealed(n, false);
  std::vector<std::size_t> revealed_list;
  auto reveal = [&](std::size_t i) {
    const pareto::Point y = pool.reveal(i);
    revealed[i] = true;
    revealed_list.push_back(i);
    for (std::size_t k = 0; k < n_obj; ++k) {
      observed[k].push_back({1, i, y[k]});
    }
    return y;
  };

  const std::size_t init_count = std::min(
      {n, std::max(options.min_init,
                   static_cast<std::size_t>(options.init_fraction *
                                            static_cast<double>(n))),
       options.budget});
  for (std::size_t i : rng.sample_without_replacement(n, init_count)) {
    reveal(i);
  }

  mf::MfOptions mf_opt;
  mf_opt.factors = options.factors;
  mf_opt.epochs = options.epochs;

  // ---- Recommend-evaluate-refine loop ----
  while (pool.runs() < options.budget) {
    mf_opt.seed = rng.next_u64();
    std::vector<mf::MatrixFactorization> models(n_obj);
    for (std::size_t k = 0; k < n_obj; ++k) {
      models[k].fit(2, n, observed[k], mf_opt);
    }

    // Predicted objective vectors of unrevealed candidates.
    std::vector<std::size_t> unrevealed_idx;
    std::vector<pareto::Point> predicted;
    for (std::size_t i = 0; i < n; ++i) {
      if (revealed[i]) continue;
      unrevealed_idx.push_back(i);
      pareto::Point p(n_obj);
      for (std::size_t k = 0; k < n_obj; ++k) p[k] = models[k].predict(1, i);
      predicted.push_back(std::move(p));
    }
    if (unrevealed_idx.empty()) break;

    // Recommend the predicted-Pareto candidates (random subset if the front
    // exceeds the batch), diversified with a share of random picks — the
    // original's recommendation lists are not purely greedy either.
    std::vector<std::size_t> front = pareto::pareto_front_indices(predicted);
    rng.shuffle(front);
    const std::size_t batch =
        std::min({options.batch_size, unrevealed_idx.size(),
                  options.budget - pool.runs()});
    if (batch == 0) break;
    std::size_t front_cursor = 0;
    for (std::size_t b = 0; b < batch; ++b) {
      std::size_t pick;
      if (rng.uniform01() < options.explore_fraction ||
          front_cursor >= front.size()) {
        pick = static_cast<std::size_t>(rng.next_below(unrevealed_idx.size()));
      } else {
        pick = front[front_cursor++];
      }
      const std::size_t candidate = unrevealed_idx[pick];
      if (revealed[candidate]) continue;  // duplicate random pick
      reveal(candidate);
    }
  }

  // ---- Answer: Pareto front of the evaluated set ----
  std::vector<pareto::Point> evaluated;
  evaluated.reserve(revealed_list.size());
  for (std::size_t i : revealed_list) evaluated.push_back(pool.reveal(i));
  tuner::TuningResult result;
  for (std::size_t f : pareto::pareto_front_indices(evaluated)) {
    result.pareto_indices.push_back(revealed_list[f]);
  }
  result.tool_runs = pool.runs();
  return result;
}

}  // namespace ppat::baselines
