// DAC'19 baseline [7]: "A learning-based recommender system for autotuning
// design flows of industrial high-performance processors".
//
// The original casts flow tuning as matrix/tensor completion: rows are
// design tasks, columns are parameter configurations, entries are QoR
// values; a new design's sparsely observed row is completed collaboratively
// from prior designs. This reimplementation uses the 2-D specialization
// (bias-aware latent-factor matrix completion, one model per QoR metric):
//   - row 0 = the source task; its observations enter at the target-pool
//     column whose encoded configuration is nearest to each source point;
//   - row 1 = the target task; entries appear as configurations are run.
// Each round completes the target row, recommends the predicted-Pareto
// configurations, evaluates a batch of them, and repeats to a fixed budget.
#pragma once

#include <cstdint>

#include "tuner/problem.hpp"

namespace ppat::baselines {

struct Dac19Options {
  std::size_t budget = 600;
  std::size_t batch_size = 10;
  std::size_t factors = 8;
  std::size_t epochs = 120;
  double init_fraction = 0.02;
  std::size_t min_init = 10;
  /// Share of each batch spent on random recommendations (list diversity).
  double explore_fraction = 0.2;
  std::uint64_t seed = 1;
};

/// `source` may be null (no prior task): the model then degenerates to
/// column-bias learning over the target row alone.
tuner::TuningResult run_dac19(tuner::CandidatePool& pool,
                              const tuner::SourceData* source,
                              const Dac19Options& options);

}  // namespace ppat::baselines
