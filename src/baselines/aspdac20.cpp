#include "baselines/aspdac20.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "tree/regression_tree.hpp"

namespace ppat::baselines {
namespace {

/// Average normalized feature importances across per-objective boosted-tree
/// fits on the source data.
std::vector<double> source_importances(const tuner::SourceData& source,
                                       const Aspdac20Options& options) {
  const std::size_t d = source.xs.front().size();
  std::vector<double> avg(d, 0.0);
  tree::BoostingOptions bo;
  bo.num_trees = options.trees;
  bo.tree.max_depth = options.tree_depth;
  bo.seed = options.seed;
  for (const auto& ys : source.ys) {
    tree::GradientBoosting model;
    model.fit(source.xs, ys, bo);
    const auto imp = model.feature_importances();
    for (std::size_t f = 0; f < d; ++f) avg[f] += imp[f];
  }
  const double norm = static_cast<double>(source.ys.size());
  for (double& v : avg) v /= norm;
  return avg;
}

}  // namespace

tuner::TuningResult run_aspdac20(tuner::CandidatePool& pool,
                                 const tuner::SourceData* source,
                                 const Aspdac20Options& options) {
  const std::size_t n = pool.size();
  const std::size_t n_obj = pool.num_objectives();
  const std::size_t d = pool.encoded().front().size();
  common::Rng rng(options.seed);

  std::vector<bool> revealed(n, false);
  std::vector<std::size_t> revealed_list;
  std::vector<linalg::Vector> train_x;
  std::vector<linalg::Vector> train_y(n_obj);
  auto reveal = [&](std::size_t i) {
    const pareto::Point y = pool.reveal(i);
    revealed[i] = true;
    revealed_list.push_back(i);
    train_x.push_back(pool.encoded()[i]);
    for (std::size_t k = 0; k < n_obj; ++k) train_y[k].push_back(y[k]);
    return y;
  };

  // ---- Phase 1-2: importance-guided model-less exploration ----
  const std::size_t explore_budget = std::max<std::size_t>(
      4, static_cast<std::size_t>(options.exploration_fraction *
                                  static_cast<double>(options.budget)));
  std::vector<std::size_t> ranked_features(d);
  for (std::size_t f = 0; f < d; ++f) ranked_features[f] = f;
  if (source != nullptr && source->size() > 0) {
    const auto importance = source_importances(*source, options);
    std::sort(ranked_features.begin(), ranked_features.end(),
              [&importance](std::size_t a, std::size_t b) {
                return importance[a] > importance[b];
              });
  } else {
    rng.shuffle(ranked_features);
  }
  const std::size_t sig_features = std::min(options.important_features, d);

  // Median split per signature feature (over the pool).
  std::vector<double> medians(sig_features);
  {
    std::vector<double> column(n);
    for (std::size_t s = 0; s < sig_features; ++s) {
      const std::size_t f = ranked_features[s];
      for (std::size_t i = 0; i < n; ++i) column[i] = pool.encoded()[i][f];
      std::nth_element(column.begin(),
                       column.begin() + static_cast<std::ptrdiff_t>(n / 2),
                       column.end());
      medians[s] = column[n / 2];
    }
  }
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t sig = 0;
    for (std::size_t s = 0; s < sig_features; ++s) {
      sig = (sig << 1) |
            (pool.encoded()[i][ranked_features[s]] > medians[s] ? 1u : 0u);
    }
    groups[sig].push_back(i);
  }
  // Round-robin one random representative per group until the exploration
  // budget is used.
  std::vector<std::vector<std::size_t>> group_list;
  group_list.reserve(groups.size());
  for (auto& [sig, members] : groups) {
    rng.shuffle(members);
    group_list.push_back(std::move(members));
  }
  std::size_t cursor = 0;
  while (pool.runs() < std::min(explore_budget, options.budget)) {
    bool progressed = false;
    for (auto& members : group_list) {
      if (cursor < members.size() && pool.runs() < explore_budget) {
        if (!revealed[members[cursor]]) {
          reveal(members[cursor]);
          progressed = true;
        }
      }
    }
    ++cursor;
    if (!progressed && cursor > n) break;
  }

  // ---- Phase 3: tree-model exploitation ----
  tree::BoostingOptions bo;
  bo.num_trees = options.trees;
  bo.tree.max_depth = options.tree_depth;
  while (pool.runs() < options.budget) {
    bo.seed = rng.next_u64();
    std::vector<tree::GradientBoosting> models(n_obj);
    for (std::size_t k = 0; k < n_obj; ++k) {
      models[k].fit(train_x, train_y[k], bo);
    }
    std::vector<std::size_t> unrevealed_idx;
    std::vector<pareto::Point> predicted;
    for (std::size_t i = 0; i < n; ++i) {
      if (revealed[i]) continue;
      unrevealed_idx.push_back(i);
      pareto::Point p(n_obj);
      for (std::size_t k = 0; k < n_obj; ++k) {
        p[k] = models[k].predict(pool.encoded()[i]);
      }
      predicted.push_back(std::move(p));
    }
    if (unrevealed_idx.empty()) break;

    std::vector<std::size_t> front = pareto::pareto_front_indices(predicted);
    rng.shuffle(front);
    const std::size_t batch = std::min(
        {options.batch_size, front.size(), options.budget - pool.runs()});
    if (batch == 0) break;
    for (std::size_t b = 0; b < batch; ++b) {
      reveal(unrevealed_idx[front[b]]);
    }
  }

  // ---- Answer: Pareto front of the evaluated set ----
  std::vector<pareto::Point> evaluated;
  evaluated.reserve(revealed_list.size());
  for (std::size_t i : revealed_list) evaluated.push_back(pool.reveal(i));
  tuner::TuningResult result;
  for (std::size_t f : pareto::pareto_front_indices(evaluated)) {
    result.pareto_indices.push_back(revealed_list[f]);
  }
  result.tool_runs = pool.runs();
  return result;
}

}  // namespace ppat::baselines
