// MLCAD'19 baseline [6]: "CAD tool design space exploration via Bayesian
// optimization" — classical BO with the lower confidence bound (LCB)
// acquisition function.
//
// The original is a single-objective BO flow; for multiple QoR metrics it
// minimizes a fixed equal-weight sum of the normalized per-objective LCB
// scores (mu - kappa * sigma) — the straightforward "classical BO" reading,
// and the faithful default here. A random-scalarization variant (a ParEGO-
// style strengthening that redraws simplex weights per selection and covers
// the front better) is provided for comparison. The method uses only
// target-task data (no transfer) and runs to a fixed evaluation budget; its
// answer is the Pareto front of everything it evaluated.
#pragma once

#include <cstdint>

#include "tuner/problem.hpp"

namespace ppat::baselines {

enum class Scalarization {
  kFixedWeights,   ///< faithful: one equal-weight LCB objective
  kRandomWeights,  ///< strengthened: fresh simplex weights per selection
};

struct Mlcad19Options {
  std::size_t budget = 400;     ///< total tool runs (the paper's fixed cost)
  std::size_t batch_size = 5;   ///< selections per model update
  double kappa = 2.0;           ///< LCB exploration weight
  double init_fraction = 0.01;
  std::size_t min_init = 8;
  std::size_t refit_every = 5;  ///< hyper-parameter refit cadence (rounds)
  Scalarization scalarization = Scalarization::kFixedWeights;
  std::uint64_t seed = 1;
};

tuner::TuningResult run_mlcad19(tuner::CandidatePool& pool,
                                const Mlcad19Options& options);

}  // namespace ppat::baselines
