// Worker side of the distributed oracle fleet.
//
// A worker process hosts ONE oracle instance and serves evaluation requests
// over the coordinator's Unix socket using the frames documented in
// server/wire.hpp: it announces itself with kWorkerHello (protocol version,
// session epoch, oracle name, space dimensionality), the coordinator either
// acks or rejects with kError, and from then on the worker answers each
// kEvalRequest with one kEvalResult. Workers are stateless between requests
// — all retry, deadline, watchdog, and exactly-once bookkeeping lives in
// the coordinator — so killing a worker mid-run costs the fleet exactly one
// retry of whatever it was evaluating, nothing more.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "flow/pd_tool.hpp"

namespace ppat::dist {

struct WorkerLoopOptions {
  /// Session epoch announced in the hello and every heartbeat. The
  /// coordinator rejects a mismatch at handshake and disconnects a stale
  /// heartbeat — a worker left over from a previous coordinator incarnation
  /// can never serve (or bill runs against) the new one.
  std::uint64_t session_epoch = 1;
  /// Oracle name announced in the hello (informational; the coordinator
  /// trusts the dimension check, not the label).
  std::string oracle_name = "synthetic";
  /// When > 0, send a kHeartbeat after this much idle time so the
  /// coordinator can tell a quiet worker from a dead one. 0 = no idle
  /// heartbeats (the worker blocks on the socket).
  std::chrono::milliseconds heartbeat_interval{0};
  /// Invoked before each evaluation (job id, attempt, config). Test and
  /// tooling hook: crash injection (--kill-after) and the exactly-once
  /// eval log both live here. A throwing hook is reported to the
  /// coordinator as a failed result, exactly like an oracle exception.
  std::function<void(std::uint64_t job_id, std::uint32_t attempt,
                     const flow::Config& config)>
      on_eval;
};

/// Connects to the coordinator's Unix socket, retrying while it comes up.
/// Returns the connected fd, or -1 when every attempt failed.
int connect_worker(const std::string& socket_path,
                   std::size_t max_attempts = 100,
                   std::chrono::milliseconds retry_delay =
                       std::chrono::milliseconds(50));

/// Runs the serve loop on a connected fd until the coordinator goes away.
/// Closes `fd` before returning. Return codes:
///   0  clean shutdown (coordinator closed the connection)
///   2  handshake rejected (epoch/protocol/dimension mismatch)
///   3  protocol violation (unexpected frame)
///   4  wire error (coordinator vanished mid-frame)
/// Oracle exceptions do NOT end the loop — they come back to the
/// coordinator as a failed kEvalResult, which is what drives its retry
/// path.
int run_worker_loop(int fd, flow::QorOracle& oracle,
                    const flow::ParameterSpace& space,
                    const WorkerLoopOptions& options = {});

}  // namespace ppat::dist
