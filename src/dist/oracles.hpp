// Named oracle registry shared by every distributed-fleet entry point.
//
// The worker binary (tools/ppatuner_worker), the scaling bench, and the
// distributed tests all need to instantiate the same oracle from a name —
// and the coordinator-side fingerprint-parity checks need the IN-PROCESS
// reference evaluation to produce bit-identical doubles to what a worker
// process computes. Centralizing construction in one translation unit makes
// that a property of the build instead of a hope: both sides call the same
// code, and QoR doubles cross the wire as raw bit patterns (wire::f64 is a
// bitcast), so parity is exact.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "flow/pd_tool.hpp"

namespace ppat::dist {

/// Deterministic analytic QoR surface on the unit cube of any
/// dimensionality, with an optional per-evaluation sleep. The sleep models a
/// license-bound tool farm — each run pins a license for a fixed wall-clock
/// slice — which is what makes worker-count scaling measurable even on a
/// single-core build machine.
class SyntheticOracle final : public flow::QorOracle {
 public:
  explicit SyntheticOracle(std::uint64_t seed,
                           std::chrono::milliseconds sleep = {});

  flow::QoR evaluate(const flow::ParameterSpace& space,
                     const flow::Config& config) override;
  std::size_t run_count() const override { return runs_; }

 private:
  double tilt_;
  std::chrono::milliseconds sleep_;
  std::size_t runs_ = 0;
};

/// Unit-cube space of `dim` real parameters (u0..u{dim-1} in [0, 1]).
flow::ParameterSpace unit_cube_space(std::size_t dim);

/// A named oracle plus the parameter space it evaluates over.
struct NamedOracle {
  flow::ParameterSpace space;
  std::unique_ptr<flow::QorOracle> oracle;
};

/// Instantiates an oracle by name:
///   synthetic    SyntheticOracle over unit_cube_space(dim); honors
///                `synthetic_sleep`
///   pdsim        the bundled PD flow on the small MAC design (Target2
///                space; `dim` must match or be 0)
///   hls_small    analytical systolic-array GEMM accelerator (64x64x128)
///   hls_large    the 256x256x512 sibling
/// Returns nullopt for an unknown name or a dimension mismatch.
std::optional<NamedOracle> make_named_oracle(
    const std::string& name, std::uint64_t seed, std::size_t dim,
    std::chrono::milliseconds synthetic_sleep = {});

/// Content digest of a canonical configuration — the exactly-once ledger
/// key. Depends only on the parameter values (bit patterns), so the same
/// candidate hashes identically across coordinator restarts.
std::uint64_t config_digest(const flow::Config& config);

}  // namespace ppat::dist
