// Coordinator side of the distributed oracle fleet.
//
// DistributedEvalService is flow::EvalService's out-of-process sibling: the
// same batch-evaluation contract (flow::BatchEvaluator — records land at
// their batch index, run failure is a first-class outcome, never throws for
// one), but the tool runs execute in WORKER PROCESSES connected over a Unix
// socket instead of in-process threads. Semantics deliberately mirror
// EvalService so the two are interchangeable under tuner::LiveCandidatePool:
//
//   * work-stealing dispatch: idle workers pull the next pending
//     configuration off a shared queue, so a slow run never blocks the
//     batch behind it;
//   * per-attempt license leasing through flow::LicenseBroker — via the
//     non-blocking try_acquire, because the coordinator frees its own
//     leases by processing worker results and must never sleep on the
//     broker;
//   * bounded retry with the same exponential backoff schedule, deadlines
//     measured from batch submission (attempts == 0 marks "expired while
//     queued"), and a rolling-median watchdog that marks hung runs as
//     PERMANENT kTimedOut;
//   * worker death is absorbed: the in-flight configuration is re-queued
//     (one retry), the dead connection is reaped, and the batch completes
//     on the surviving workers.
//
// On top of that, the coordinator adds the exactly-once reveal contract:
// every finalized outcome is appended to a journal::RevealLedger keyed by
// the candidate's content digest BEFORE the observer sees it. A SIGKILLed
// coordinator that resumes against the same ledger serves completed
// candidates from the recorded outcomes instead of re-dispatching them —
// a restart never double-spends a tool run; only work that was genuinely
// in flight (unrecorded) runs again.
//
// Threading: the coordinator is single-threaded by design — one poll loop
// owns the listening socket, every worker connection, dispatch, retry, the
// watchdog, and the ledger. Methods must be called from one thread; the
// RunObserver fires on that thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

#include "flow/eval_service.hpp"
#include "flow/license_broker.hpp"

namespace ppat::journal {
class RevealLedger;
}  // namespace ppat::journal

namespace ppat::dist {

struct DistributedOptions {
  /// Unix socket the coordinator binds and workers dial. Required.
  std::string socket_path;
  /// Total attempts per configuration (1 = no retry). Worker deaths and
  /// failed results both consume attempts.
  std::size_t max_attempts = 3;
  /// Backoff before retry r (1-based): retry_backoff * 2^(r-1). Zero
  /// disables waiting.
  std::chrono::milliseconds retry_backoff{0};
  /// Wall-clock deadline per configuration from BATCH SUBMISSION; zero
  /// disables. Same classification rules as EvalServiceOptions.
  std::chrono::milliseconds run_deadline{0};

  /// Hung-run watchdog (same rule as EvalService): disconnect any worker
  /// whose in-flight run exceeds watchdog_multiple * rolling median of
  /// successful run durations, recording a permanent kTimedOut. 0 disables.
  double watchdog_multiple = 0.0;
  std::chrono::milliseconds watchdog_floor{1000};
  std::size_t watchdog_min_samples = 5;

  /// Poll-loop tick: bounds dispatch/retry/watchdog latency.
  std::chrono::milliseconds poll_interval{20};

  /// Shared license pool; every dispatched attempt holds one lease until
  /// its result (or the worker's death) comes back. Null = worker count is
  /// the only concurrency bound.
  std::shared_ptr<flow::LicenseBroker> license_broker;
  /// This coordinator's identity in the broker's fair scheduling.
  std::uint64_t session_tag = 0;

  /// Epoch stamped into every handshake and heartbeat. Workers from a
  /// different incarnation are rejected at hello and disconnected on a
  /// stale heartbeat.
  std::uint64_t session_epoch = 1;

  /// Exactly-once reveal ledger path; empty disables the ledger (no
  /// crash-resume dedup, records are still correct for a single run).
  std::string ledger_path;

  /// How long evaluate_batch keeps queued work alive with ZERO connected
  /// workers before failing the remainder (covers the whole fleet dying,
  /// or a batch submitted before any worker dialed in).
  std::chrono::milliseconds no_worker_grace{10000};

  /// Per-connection receive timeout during the worker handshake.
  std::chrono::milliseconds handshake_timeout{5000};
};

struct DistributedStats {
  std::size_t batches = 0;
  std::size_t runs_ok = 0;
  std::size_t runs_failed = 0;
  std::size_t runs_timed_out = 0;
  std::size_t runs_watchdog_cancelled = 0;
  std::size_t attempts = 0;
  std::size_t retries = 0;
  /// Outcomes served straight from the reveal ledger (no dispatch).
  std::size_t reveals_replayed = 0;
  std::size_t workers_connected = 0;
  std::size_t workers_rejected = 0;
  /// Connections lost while a run was in flight or idle.
  std::size_t worker_deaths = 0;
  std::size_t heartbeats = 0;
};

/// Batch evaluator over a fleet of worker processes. Binds the socket in
/// the constructor; workers may dial in at any time (including mid-batch —
/// a late worker starts stealing work immediately).
class DistributedEvalService final : public flow::BatchEvaluator {
 public:
  DistributedEvalService(flow::ParameterSpace space,
                         DistributedOptions options);
  ~DistributedEvalService() override;

  DistributedEvalService(const DistributedEvalService&) = delete;
  DistributedEvalService& operator=(const DistributedEvalService&) = delete;

  std::vector<flow::RunRecord> evaluate_batch(
      const std::vector<flow::Config>& configs,
      const RunObserver& observer) override;
  using flow::BatchEvaluator::evaluate_batch;

  const flow::ParameterSpace& space() const override { return space_; }
  const DistributedOptions& options() const { return options_; }
  const std::string& socket_path() const { return options_.socket_path; }
  std::uint64_t session_epoch() const { return options_.session_epoch; }

  /// Currently connected (handshaken) workers.
  std::size_t worker_count() const { return workers_.size(); }
  /// Services handshakes until at least `n` workers are connected or the
  /// timeout elapses. Returns whether the target was reached.
  bool wait_for_workers(std::size_t n, std::chrono::milliseconds timeout);

  /// fork/execs a worker binary pointed at this coordinator's socket and
  /// epoch (plus `extra_args`, e.g. the oracle selection). The child is
  /// SIGTERMed and reaped in the destructor; deaths before then surface as
  /// ordinary worker deaths in the poll loop.
  void spawn_local_worker(const std::string& worker_binary,
                          std::vector<std::string> extra_args = {});
  /// Child pids spawned via spawn_local_worker (still registered; a pid
  /// stays listed even after the child exits until the destructor reaps).
  const std::vector<pid_t>& spawned_pids() const { return spawned_; }

  DistributedStats stats() const { return stats_; }

 private:
  using clock = std::chrono::steady_clock;

  struct Worker {
    int fd = -1;
    bool busy = false;
    std::size_t job_index = 0;       ///< valid iff busy
    clock::time_point dispatch_t0;   ///< valid iff busy
    flow::LicenseBroker::Lease lease;
  };

  struct BatchState;

  /// One poll-loop tick shared by evaluate_batch and wait_for_workers:
  /// accepts + handshakes new workers, processes worker frames (results
  /// route into `batch` when non-null), reaps dead connections.
  void poll_once(std::chrono::milliseconds timeout, BatchState* batch);
  void accept_pending(BatchState* batch);
  void handle_worker_frame(std::size_t widx, BatchState* batch);
  void drop_worker(std::size_t widx, BatchState* batch,
                   const char* why);
  void dispatch_ready(BatchState& batch);
  void watchdog_sweep(BatchState& batch);
  void finalize(BatchState& batch, std::size_t idx, flow::RunRecord record);
  void schedule_retry(BatchState& batch, std::size_t idx);
  void record_success_duration(double ms);
  double watchdog_threshold_ms() const;

  flow::ParameterSpace space_;
  DistributedOptions options_;
  int listen_fd_ = -1;
  std::vector<Worker> workers_;
  std::vector<pid_t> spawned_;
  std::unique_ptr<journal::RevealLedger> ledger_;
  clock::time_point last_worker_seen_;
  /// Rolling window of successful run durations (ms) for the watchdog.
  std::vector<double> recent_ok_ms_;
  std::size_t recent_pos_ = 0;
  DistributedStats stats_;
};

}  // namespace ppat::dist
