#include "dist/worker.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/log.hpp"
#include "server/wire.hpp"

namespace ppat::dist {

namespace wire = server::wire;

int connect_worker(const std::string& socket_path, std::size_t max_attempts,
                   std::chrono::milliseconds retry_delay) {
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return -1;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    // The coordinator may still be binding; back off and retry.
    if (attempt + 1 < max_attempts && retry_delay.count() > 0) {
      std::this_thread::sleep_for(retry_delay);
    }
  }
  return -1;
}

namespace {

void send_heartbeat(int fd, std::uint64_t epoch) {
  wire::Writer w;
  w.u64(epoch);
  wire::write_frame(fd, wire::MsgType::kHeartbeat, w.take());
}

void send_result(int fd, std::uint64_t job_id, std::uint32_t attempt,
                 const flow::QoR* qor, const std::string& error) {
  wire::Writer w;
  w.u64(job_id);
  w.u32(attempt);
  w.u8(qor != nullptr ? 1 : 0);
  if (qor != nullptr) {
    w.f64(qor->area_um2);
    w.f64(qor->power_mw);
    w.f64(qor->delay_ns);
  } else {
    w.str(error);
  }
  wire::write_frame(fd, wire::MsgType::kEvalResult, w.take());
}

}  // namespace

int run_worker_loop(int fd, flow::QorOracle& oracle,
                    const flow::ParameterSpace& space,
                    const WorkerLoopOptions& options) {
  int rc = 0;
  try {
    {
      wire::Writer hello;
      hello.u32(wire::kProtocolVersion);
      hello.u64(options.session_epoch);
      hello.str(options.oracle_name);
      hello.u64(space.size());
      wire::write_frame(fd, wire::MsgType::kWorkerHello, hello.take());
    }
    const auto ack = wire::read_frame(fd);
    if (!ack.has_value()) {
      ::close(fd);
      return 2;  // coordinator closed during handshake
    }
    if (ack->type == wire::MsgType::kError) {
      wire::Reader r(ack->payload);
      PPAT_WARN << "worker rejected by coordinator: " << r.str();
      ::close(fd);
      return 2;
    }
    if (ack->type != wire::MsgType::kWorkerHelloAck) {
      ::close(fd);
      return 3;
    }
    {
      wire::Reader r(ack->payload);
      if (r.u64() != options.session_epoch) {
        ::close(fd);
        return 2;
      }
    }

    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    for (;;) {
      if (options.heartbeat_interval.count() > 0) {
        pfd.revents = 0;
        const int pr = ::poll(
            &pfd, 1, static_cast<int>(options.heartbeat_interval.count()));
        if (pr == 0) {
          send_heartbeat(fd, options.session_epoch);
          continue;
        }
        if (pr < 0) {
          if (errno == EINTR) continue;
          rc = 4;
          break;
        }
      }
      const auto frame = wire::read_frame(fd);
      if (!frame.has_value()) break;  // clean shutdown
      switch (frame->type) {
        case wire::MsgType::kEvalRequest: {
          wire::Reader r(frame->payload);
          const std::uint64_t job_id = r.u64();
          const std::uint32_t attempt = r.u32();
          const std::uint64_t dim = r.u64();
          flow::Config config(dim);
          for (std::uint64_t i = 0; i < dim; ++i) config[i] = r.f64();
          try {
            if (options.on_eval) options.on_eval(job_id, attempt, config);
            const flow::QoR qor = oracle.evaluate(space, config);
            send_result(fd, job_id, attempt, &qor, {});
          } catch (const std::exception& e) {
            send_result(fd, job_id, attempt, nullptr, e.what());
          }
          break;
        }
        case wire::MsgType::kHeartbeat:
          break;  // coordinator-side liveness probe; nothing to do
        default:
          rc = 3;
      }
      if (rc != 0) break;
    }
  } catch (const wire::WireError&) {
    rc = 4;
  }
  ::close(fd);
  return rc;
}

}  // namespace ppat::dist
