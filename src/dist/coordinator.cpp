#include "dist/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"
#include "dist/oracles.hpp"
#include "journal/reveal_ledger.hpp"
#include "server/wire.hpp"

namespace ppat::dist {

namespace wire = server::wire;

namespace {

constexpr std::size_t kMedianWindow = 64;

journal::RevealStatus to_ledger_status(flow::RunStatus s) {
  switch (s) {
    case flow::RunStatus::kOk:
      return journal::RevealStatus::kOk;
    case flow::RunStatus::kTimedOut:
      return journal::RevealStatus::kTimedOut;
    case flow::RunStatus::kFailed:
      break;
  }
  return journal::RevealStatus::kFailed;
}

flow::RunStatus from_ledger_status(journal::RevealStatus s) {
  switch (s) {
    case journal::RevealStatus::kOk:
      return flow::RunStatus::kOk;
    case journal::RevealStatus::kTimedOut:
      return flow::RunStatus::kTimedOut;
    case journal::RevealStatus::kFailed:
      break;
  }
  return flow::RunStatus::kFailed;
}

void set_recv_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void send_error(int fd, const std::string& message) {
  try {
    wire::Writer w;
    w.str(message);
    wire::write_frame(fd, wire::MsgType::kError, w.take());
  } catch (const wire::WireError&) {
    // The peer is already gone; the close below is all that's left.
  }
}

}  // namespace

/// Per-batch bookkeeping, alive only inside evaluate_batch.
struct DistributedEvalService::BatchState {
  const std::vector<flow::Config>* configs = nullptr;
  const RunObserver* observer = nullptr;
  std::vector<flow::RunRecord> records;
  std::vector<std::uint64_t> digests;
  /// Attempts consumed per configuration so far.
  std::vector<std::size_t> attempts;
  /// First-dispatch time per configuration (elapsed_ms baseline).
  std::vector<clock::time_point> run_t0;
  std::vector<bool> dispatched_once;
  std::vector<bool> done;
  /// Indices awaiting dispatch, FIFO; retries requeue at the FRONT so a
  /// recovering configuration does not go to the back of the line.
  std::deque<std::size_t> pending;
  struct Delayed {
    clock::time_point ready;
    std::size_t index;
  };
  std::vector<Delayed> delayed;  ///< retries waiting out their backoff
  std::size_t remaining = 0;
  clock::time_point batch_t0;
};

DistributedEvalService::DistributedEvalService(flow::ParameterSpace space,
                                               DistributedOptions options)
    : space_(std::move(space)), options_(std::move(options)) {
  if (options_.socket_path.empty()) {
    throw std::invalid_argument(
        "DistributedEvalService: socket_path is required");
  }
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  if (options_.poll_interval.count() <= 0) {
    options_.poll_interval = std::chrono::milliseconds(20);
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("socket path too long: " +
                                options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options_.socket_path.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("coordinator socket failed: ") +
                             std::strerror(errno));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 32) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("coordinator cannot listen on " +
                             options_.socket_path + ": " + err);
  }
  // Non-blocking accept: the poll loop drains every queued connection
  // without ever parking on the listen socket.
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);

  if (!options_.ledger_path.empty()) {
    ledger_ = journal::RevealLedger::open(options_.ledger_path);
  }
  last_worker_seen_ = clock::now();
}

DistributedEvalService::~DistributedEvalService() {
  for (Worker& w : workers_) {
    if (w.fd >= 0) ::close(w.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(options_.socket_path.c_str());
  for (pid_t pid : spawned_) {
    ::kill(pid, SIGTERM);
  }
  for (pid_t pid : spawned_) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

void DistributedEvalService::spawn_local_worker(
    const std::string& worker_binary, std::vector<std::string> extra_args) {
  std::vector<std::string> args;
  args.push_back(worker_binary);
  args.push_back("--socket");
  args.push_back(options_.socket_path);
  args.push_back("--epoch");
  args.push_back(std::to_string(options_.session_epoch));
  for (std::string& a : extra_args) args.push_back(std::move(a));

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    // Exec failure: exit hard so the parent sees a dead worker, not a
    // second coordinator.
    std::fprintf(stderr, "execv %s failed: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  spawned_.push_back(pid);
}

bool DistributedEvalService::wait_for_workers(
    std::size_t n, std::chrono::milliseconds timeout) {
  const auto until = clock::now() + timeout;
  while (worker_count() < n) {
    const auto now = clock::now();
    if (now >= until) return false;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(until - now);
    poll_once(std::min(left, options_.poll_interval), nullptr);
  }
  return true;
}

void DistributedEvalService::accept_pending(BatchState* batch) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN via the poll gate; anything else also just waits
    }
    set_recv_timeout(fd, options_.handshake_timeout);
    try {
      const auto hello = wire::read_frame(fd);
      if (!hello.has_value() ||
          hello->type != wire::MsgType::kWorkerHello) {
        send_error(fd, "expected WorkerHello");
        ::close(fd);
        ++stats_.workers_rejected;
        continue;
      }
      wire::Reader r(hello->payload);
      const std::uint32_t proto = r.u32();
      const std::uint64_t epoch = r.u64();
      const std::string oracle_name = r.str();
      const std::uint64_t dim = r.u64();
      if (proto != wire::kProtocolVersion) {
        send_error(fd, "protocol version mismatch");
        ::close(fd);
        ++stats_.workers_rejected;
        continue;
      }
      if (epoch != options_.session_epoch) {
        send_error(fd, "stale session epoch");
        ::close(fd);
        ++stats_.workers_rejected;
        continue;
      }
      if (dim != space_.size()) {
        send_error(fd, "parameter space dimension mismatch");
        ::close(fd);
        ++stats_.workers_rejected;
        continue;
      }
      wire::Writer ack;
      ack.u64(options_.session_epoch);
      wire::write_frame(fd, wire::MsgType::kWorkerHelloAck, ack.take());
      PPAT_INFO << "coordinator: worker connected (oracle " << oracle_name
                << ", dim " << dim << ")";
    } catch (const wire::WireError& e) {
      PPAT_WARN << "coordinator: handshake failed: " << e.what();
      ::close(fd);
      ++stats_.workers_rejected;
      continue;
    }
    Worker w;
    w.fd = fd;
    workers_.push_back(std::move(w));
    ++stats_.workers_connected;
    last_worker_seen_ = clock::now();
    if (batch != nullptr) dispatch_ready(*batch);
  }
}

void DistributedEvalService::record_success_duration(double ms) {
  if (recent_ok_ms_.size() < kMedianWindow) {
    recent_ok_ms_.push_back(ms);
  } else {
    recent_ok_ms_[recent_pos_] = ms;
    recent_pos_ = (recent_pos_ + 1) % kMedianWindow;
  }
}

double DistributedEvalService::watchdog_threshold_ms() const {
  if (options_.watchdog_multiple <= 0.0 ||
      recent_ok_ms_.size() < options_.watchdog_min_samples) {
    return 0.0;
  }
  std::vector<double> window = recent_ok_ms_;
  const std::size_t mid = window.size() / 2;
  std::nth_element(window.begin(), window.begin() + mid, window.end());
  return std::max(static_cast<double>(options_.watchdog_floor.count()),
                  options_.watchdog_multiple * window[mid]);
}

void DistributedEvalService::finalize(BatchState& batch, std::size_t idx,
                                      flow::RunRecord record) {
  const auto base =
      batch.dispatched_once[idx] ? batch.run_t0[idx] : batch.batch_t0;
  record.elapsed_ms =
      std::chrono::duration<double, std::milli>(clock::now() - base).count();
  batch.records[idx] = std::move(record);
  batch.done[idx] = true;
  --batch.remaining;
  if (ledger_ != nullptr) {
    const flow::RunRecord& rec = batch.records[idx];
    journal::LedgerRecord lrec;
    lrec.digest = batch.digests[idx];
    lrec.attempt = static_cast<std::uint32_t>(rec.attempts);
    lrec.status = to_ledger_status(rec.status);
    lrec.attempts = static_cast<std::uint32_t>(rec.attempts);
    lrec.elapsed_ms = rec.elapsed_ms;
    if (rec.ok()) {
      lrec.values = {rec.qor.area_um2, rec.qor.power_mw, rec.qor.delay_ns};
    }
    lrec.error = rec.error;
    // Durability order matters: the ledger write precedes the observer, so
    // any outcome an observer (journal, tuner) ever saw is guaranteed to be
    // deduplicated on resume.
    ledger_->append(lrec);
  }
  if (batch.observer != nullptr && *batch.observer) {
    (*batch.observer)(idx, batch.records[idx]);
  }
}

void DistributedEvalService::schedule_retry(BatchState& batch,
                                            std::size_t idx) {
  ++stats_.retries;
  auto ready = clock::now();
  if (options_.retry_backoff.count() > 0) {
    // Same schedule as EvalService: backoff * 2^(retry-1), with the retry
    // number equal to the attempts already consumed.
    ready += options_.retry_backoff
             * (std::int64_t{1} << (batch.attempts[idx] - 1));
  }
  batch.delayed.push_back({ready, idx});
}

void DistributedEvalService::dispatch_ready(BatchState& batch) {
  const auto now = clock::now();
  // Promote retries whose backoff expired.
  for (std::size_t i = 0; i < batch.delayed.size();) {
    if (batch.delayed[i].ready <= now) {
      batch.pending.push_front(batch.delayed[i].index);
      batch.delayed[i] = batch.delayed.back();
      batch.delayed.pop_back();
    } else {
      ++i;
    }
  }

  // Deadline: measured from batch submission, queueing time included.
  const bool has_deadline = options_.run_deadline.count() > 0;
  if (has_deadline && now - batch.batch_t0 > options_.run_deadline) {
    auto expire = [&](std::size_t idx) {
      flow::RunRecord rec;
      rec.status = flow::RunStatus::kTimedOut;
      rec.attempts = batch.attempts[idx];
      rec.error = rec.attempts == 0 ? "deadline expired while queued"
                                    : "run exceeded deadline";
      ++stats_.runs_timed_out;
      finalize(batch, idx, std::move(rec));
    };
    while (!batch.pending.empty()) {
      const std::size_t idx = batch.pending.front();
      batch.pending.pop_front();
      expire(idx);
    }
    for (const auto& d : batch.delayed) expire(d.index);
    batch.delayed.clear();
    return;
  }

  while (!batch.pending.empty()) {
    Worker* idle = nullptr;
    for (Worker& w : workers_) {
      if (!w.busy) {
        idle = &w;
        break;
      }
    }
    if (idle == nullptr) break;

    flow::LicenseBroker::Lease lease;
    if (options_.license_broker != nullptr) {
      lease = options_.license_broker->try_acquire(options_.session_tag);
      if (!lease.valid()) break;  // re-poll; a waiter or exhaustion wins
    }

    const std::size_t idx = batch.pending.front();
    batch.pending.pop_front();
    ++batch.attempts[idx];
    ++stats_.attempts;
    if (!batch.dispatched_once[idx]) {
      batch.dispatched_once[idx] = true;
      batch.run_t0[idx] = clock::now();
    }
    const flow::Config& config = (*batch.configs)[idx];
    wire::Writer req;
    req.u64(idx);
    req.u32(static_cast<std::uint32_t>(batch.attempts[idx]));
    req.u64(config.size());
    for (double v : config) req.f64(v);
    try {
      wire::write_frame(idle->fd, wire::MsgType::kEvalRequest, req.take());
    } catch (const wire::WireError&) {
      // The worker vanished between polls; this dispatch never reached a
      // tool, so it does not count as an attempt.
      --batch.attempts[idx];
      --stats_.attempts;
      batch.pending.push_front(idx);
      const auto widx = static_cast<std::size_t>(idle - workers_.data());
      drop_worker(widx, &batch, "write failed");
      continue;
    }
    idle->busy = true;
    idle->job_index = idx;
    idle->dispatch_t0 = clock::now();
    idle->lease = std::move(lease);
  }
}

void DistributedEvalService::drop_worker(std::size_t widx, BatchState* batch,
                                         const char* why) {
  Worker dead = std::move(workers_[widx]);
  workers_.erase(workers_.begin() + static_cast<std::ptrdiff_t>(widx));
  if (dead.fd >= 0) ::close(dead.fd);
  dead.lease.release();
  ++stats_.worker_deaths;
  PPAT_WARN << "coordinator: worker lost (" << why << "), "
            << workers_.size() << " remaining";
  if (dead.busy && batch != nullptr && !batch->done[dead.job_index]) {
    const std::size_t idx = dead.job_index;
    if (batch->attempts[idx] < options_.max_attempts) {
      // The death consumed an attempt; re-queue at the front so the
      // recovering run is next in line (after any backoff).
      schedule_retry(*batch, idx);
    } else {
      flow::RunRecord rec;
      rec.status = flow::RunStatus::kFailed;
      rec.attempts = batch->attempts[idx];
      rec.error = "worker died during evaluation";
      ++stats_.runs_failed;
      finalize(*batch, idx, std::move(rec));
    }
  }
  // The fleet was alive until this very disconnect, so the no-worker grace
  // period (if this was the last worker) starts NOW, not at the previous
  // connection event.
  last_worker_seen_ = clock::now();
}

void DistributedEvalService::handle_worker_frame(std::size_t widx,
                                                 BatchState* batch) {
  Worker& w = workers_[widx];
  std::optional<wire::Frame> frame;
  try {
    frame = wire::read_frame(w.fd);
  } catch (const wire::WireError&) {
    drop_worker(widx, batch, "read failed");
    return;
  }
  if (!frame.has_value()) {
    drop_worker(widx, batch, "disconnected");
    return;
  }
  try {
    switch (frame->type) {
      case wire::MsgType::kHeartbeat: {
        wire::Reader r(frame->payload);
        const std::uint64_t epoch = r.u64();
        if (epoch != options_.session_epoch) {
          drop_worker(widx, batch, "stale heartbeat epoch");
          return;
        }
        ++stats_.heartbeats;
        return;
      }
      case wire::MsgType::kEvalResult:
        break;
      default:
        drop_worker(widx, batch, "unexpected frame");
        return;
    }
    wire::Reader r(frame->payload);
    const std::uint64_t job_id = r.u64();
    const std::uint32_t attempt = r.u32();
    const bool ok = r.u8() != 0;
    if (batch == nullptr || !w.busy || job_id != w.job_index ||
        attempt != batch->attempts[w.job_index]) {
      drop_worker(widx, batch, "result for a job it does not hold");
      return;
    }
    const std::size_t idx = w.job_index;
    const auto now = clock::now();
    const double run_ms =
        std::chrono::duration<double, std::milli>(now - w.dispatch_t0)
            .count();
    w.busy = false;
    w.lease.release();

    if (ok) {
      flow::QoR qor;
      qor.area_um2 = r.f64();
      qor.power_mw = r.f64();
      qor.delay_ns = r.f64();
      // Post-hoc deadline classification, as in EvalService: a result
      // arriving past the deadline is discarded, never retried.
      if (options_.run_deadline.count() > 0 &&
          now - batch->batch_t0 > options_.run_deadline) {
        flow::RunRecord rec;
        rec.status = flow::RunStatus::kTimedOut;
        rec.attempts = batch->attempts[idx];
        rec.error = "run exceeded deadline";
        ++stats_.runs_timed_out;
        finalize(*batch, idx, std::move(rec));
        return;
      }
      record_success_duration(run_ms);
      flow::RunRecord rec;
      rec.status = flow::RunStatus::kOk;
      rec.qor = qor;
      rec.attempts = batch->attempts[idx];
      ++stats_.runs_ok;
      finalize(*batch, idx, std::move(rec));
      return;
    }
    const std::string error = r.str();
    if (batch->attempts[idx] < options_.max_attempts) {
      schedule_retry(*batch, idx);
    } else {
      flow::RunRecord rec;
      rec.status = flow::RunStatus::kFailed;
      rec.attempts = batch->attempts[idx];
      rec.error = error;
      ++stats_.runs_failed;
      finalize(*batch, idx, std::move(rec));
    }
  } catch (const wire::WireError&) {
    drop_worker(widx, batch, "malformed frame");
  }
}

void DistributedEvalService::watchdog_sweep(BatchState& batch) {
  const double threshold_ms = watchdog_threshold_ms();
  if (threshold_ms <= 0.0) return;
  const auto now = clock::now();
  for (std::size_t i = 0; i < workers_.size();) {
    Worker& w = workers_[i];
    const double elapsed_ms =
        w.busy ? std::chrono::duration<double, std::milli>(now - w.dispatch_t0)
                     .count()
               : 0.0;
    if (!w.busy || elapsed_ms <= threshold_ms) {
      ++i;
      continue;
    }
    const std::size_t idx = w.job_index;
    PPAT_WARN << "coordinator watchdog: cancelling hung run after "
              << elapsed_ms << " ms (threshold " << threshold_ms << " ms)";
    // Mark terminal FIRST: watchdog cancellation is permanent (the run is
    // known-hung), so the disconnect below must not schedule a retry.
    flow::RunRecord rec;
    rec.status = flow::RunStatus::kTimedOut;
    rec.attempts = batch.attempts[idx];
    rec.error =
        "cancelled by watchdog (exceeded hard multiple of rolling median "
        "run time)";
    ++stats_.runs_timed_out;
    ++stats_.runs_watchdog_cancelled;
    finalize(batch, idx, std::move(rec));
    // Disconnecting is the distributed cancel: the worker notices the dead
    // socket when it tries to reply and exits on its own.
    drop_worker(i, &batch, "watchdog cancel");
  }
}

void DistributedEvalService::poll_once(std::chrono::milliseconds timeout,
                                       BatchState* batch) {
  std::vector<pollfd> fds;
  fds.reserve(1 + workers_.size());
  fds.push_back({listen_fd_, POLLIN, 0});
  for (const Worker& w : workers_) fds.push_back({w.fd, POLLIN, 0});

  const int pr =
      ::poll(fds.data(), fds.size(), static_cast<int>(timeout.count()));
  if (pr < 0) {
    if (errno == EINTR) return;
    throw std::runtime_error(std::string("coordinator poll failed: ") +
                             std::strerror(errno));
  }
  if (fds[0].revents & POLLIN) accept_pending(batch);
  // Walk worker fds by VALUE: handle_worker_frame may drop workers and
  // reshuffle workers_, so re-find each fd before servicing it.
  for (std::size_t i = 1; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    const int fd = fds[i].fd;
    const auto it =
        std::find_if(workers_.begin(), workers_.end(),
                     [fd](const Worker& w) { return w.fd == fd; });
    if (it == workers_.end()) continue;
    const auto widx = static_cast<std::size_t>(it - workers_.begin());
    if (fds[i].revents & POLLIN) {
      handle_worker_frame(widx, batch);
    } else {
      drop_worker(widx, batch, "hangup");
    }
  }
}

std::vector<flow::RunRecord> DistributedEvalService::evaluate_batch(
    const std::vector<flow::Config>& configs, const RunObserver& observer) {
  const std::size_t n = configs.size();
  BatchState batch;
  batch.configs = &configs;
  batch.observer = &observer;
  batch.records.resize(n);
  batch.digests.resize(n);
  batch.attempts.assign(n, 0);
  batch.run_t0.assign(n, clock::time_point{});
  batch.dispatched_once.assign(n, false);
  batch.done.assign(n, false);
  batch.batch_t0 = clock::now();
  batch.remaining = n;
  if (n == 0) return batch.records;

  // Exactly-once pre-pass: candidates whose outcome is already in the
  // ledger are served from it and never dispatched — a resumed coordinator
  // cannot double-spend a completed tool run.
  for (std::size_t i = 0; i < n; ++i) {
    batch.digests[i] = config_digest(configs[i]);
    const journal::LedgerRecord* lrec =
        ledger_ != nullptr ? ledger_->find(batch.digests[i]) : nullptr;
    if (lrec == nullptr) {
      batch.pending.push_back(i);
      continue;
    }
    flow::RunRecord rec;
    rec.status = from_ledger_status(lrec->status);
    rec.attempts = lrec->attempts;
    rec.elapsed_ms = lrec->elapsed_ms;
    if (rec.ok() && lrec->values.size() == 3) {
      rec.qor.area_um2 = lrec->values[0];
      rec.qor.power_mw = lrec->values[1];
      rec.qor.delay_ns = lrec->values[2];
    }
    rec.error = lrec->error;
    batch.records[i] = std::move(rec);
    batch.done[i] = true;
    --batch.remaining;
    ++stats_.reveals_replayed;
    if (observer) observer(i, batch.records[i]);
  }

  if (!workers_.empty()) last_worker_seen_ = clock::now();
  while (batch.remaining > 0) {
    dispatch_ready(batch);
    if (batch.remaining == 0) break;
    poll_once(options_.poll_interval, &batch);
    watchdog_sweep(batch);

    // Whole-fleet loss: keep queued work alive for the grace period (a
    // replacement worker may dial in), then fail the remainder rather than
    // spin forever. In-flight work cannot exist here — no workers.
    if (workers_.empty() &&
        clock::now() - last_worker_seen_ > options_.no_worker_grace) {
      auto fail_queued = [&](std::size_t idx) {
        flow::RunRecord rec;
        rec.status = flow::RunStatus::kFailed;
        rec.attempts = batch.attempts[idx];
        rec.error = "no workers available";
        ++stats_.runs_failed;
        finalize(batch, idx, std::move(rec));
      };
      while (!batch.pending.empty()) {
        const std::size_t idx = batch.pending.front();
        batch.pending.pop_front();
        fail_queued(idx);
      }
      for (const auto& d : batch.delayed) fail_queued(d.index);
      batch.delayed.clear();
    }
  }

  ++stats_.batches;
  if (ledger_ != nullptr) ledger_->sync();
  return std::move(batch.records);
}

}  // namespace ppat::dist
