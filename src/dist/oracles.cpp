#include "dist/oracles.hpp"

#include <cmath>
#include <thread>

#include "flow/benchmark.hpp"
#include "hls/systolic.hpp"
#include "journal/journal.hpp"
#include "netlist/mac_generator.hpp"

namespace ppat::dist {

SyntheticOracle::SyntheticOracle(std::uint64_t seed,
                                 std::chrono::milliseconds sleep)
    : tilt_(0.04 * static_cast<double>(seed % 11)), sleep_(sleep) {}

flow::QoR SyntheticOracle::evaluate(const flow::ParameterSpace& space,
                                    const flow::Config& config) {
  ++runs_;
  if (sleep_.count() > 0) std::this_thread::sleep_for(sleep_);
  const linalg::Vector u = space.encode(config);
  const double u0 = u.empty() ? 0.0 : u[0];
  const double u1 = u.size() > 1 ? u[1] : 0.0;
  const double u2 = u.size() > 2 ? u[2] : 0.0;
  flow::QoR q;
  q.area_um2 =
      120.0 * (1.2 - 0.7 * u0 + 0.25 * std::cos(2.0 * u1) + tilt_ * u2);
  q.power_mw =
      8.0 * (1.0 + 0.9 * u0 - 0.5 * u2 + tilt_ * std::sin(3.0 * u1));
  q.delay_ns = 0.8 + 1.1 * u1 + 0.2 * std::cos(5.0 * u0) + tilt_ * 0.2 * u2;
  return q;
}

flow::ParameterSpace unit_cube_space(std::size_t dim) {
  std::vector<flow::ParamSpec> specs;
  specs.reserve(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    specs.push_back(flow::ParamSpec::real("u" + std::to_string(i), 0.0, 1.0));
  }
  return flow::ParameterSpace(std::move(specs));
}

std::optional<NamedOracle> make_named_oracle(
    const std::string& name, std::uint64_t seed, std::size_t dim,
    std::chrono::milliseconds synthetic_sleep) {
  if (name == "synthetic") {
    NamedOracle out;
    out.space = unit_cube_space(dim == 0 ? 3 : dim);
    out.oracle = std::make_unique<SyntheticOracle>(seed, synthetic_sleep);
    return out;
  }
  if (name == "pdsim") {
    // Shared read-only design/library, one PDTool per caller (run state is
    // per-instance) — the same sharing scheme as ppatuner_serve.
    static const auto library = netlist::CellLibrary::make_default();
    static const auto design = netlist::small_mac_config();
    static const auto space = flow::target2_space();
    if (dim != 0 && dim != space.size()) return std::nullopt;
    NamedOracle out;
    out.space = space;
    out.oracle = std::make_unique<flow::PDTool>(&library, design, seed);
    return out;
  }
  if (name == "hls_small" || name == "hls_large") {
    static const auto small = hls::small_gemm();
    static const auto large = hls::large_gemm();
    static const auto small_space = hls::systolic_space(small);
    static const auto large_space = hls::systolic_space(large);
    const auto& workload = name == "hls_small" ? small : large;
    const auto& space = name == "hls_small" ? small_space : large_space;
    if (dim != 0 && dim != space.size()) return std::nullopt;
    NamedOracle out;
    out.space = space;
    out.oracle = std::make_unique<hls::SystolicOracle>(workload, seed);
    return out;
  }
  return std::nullopt;
}

std::uint64_t config_digest(const flow::Config& config) {
  // Domain-separated seed keeps these digests disjoint from the journal's
  // pool fingerprints even for identical double sequences.
  std::uint64_t h = 0x5050415464696774ull;  // "PPATdigt"
  h = journal::mix_hash(h, config.size());
  return journal::hash_doubles(h, config);
}

}  // namespace ppat::dist
