#include "pareto/pareto.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ppat::pareto {

bool dominates_with_slack(const Point& a, const Point& b,
                          std::span<const double> delta) {
  assert(a.size() == b.size() && delta.size() == a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i] + delta[i]) return false;
  }
  return true;
}

bool dominates(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> pareto_front_indices(
    const std::vector<Point>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j == i) continue;
      if (dominates(points[j], points[i])) dominated = true;
      // Tie-break exact duplicates: keep the earliest index only.
      if (j < i && points[j] == points[i]) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<Point> pareto_front(const std::vector<Point>& points) {
  std::vector<Point> front;
  for (std::size_t i : pareto_front_indices(points)) {
    front.push_back(points[i]);
  }
  return front;
}

Point reference_point(const std::vector<Point>& points, double margin) {
  if (points.empty()) {
    throw std::invalid_argument("reference_point: empty point set");
  }
  Point lo = points.front(), hi = points.front();
  for (const Point& p : points) {
    assert(p.size() == lo.size());
    for (std::size_t i = 0; i < lo.size(); ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  Point ref(hi);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    // Pad by a scale the dimension actually has: its magnitude or, when the
    // maximum sits at 0 (e.g. zero-WNS metrics), the set's spread. A fully
    // degenerate dimension (all points equal 0) falls back to unit scale so
    // the hypervolume never collapses along it.
    double scale = std::max(std::fabs(hi[i]), hi[i] - lo[i]);
    if (scale <= 0.0) scale = 1.0;
    ref[i] += (margin - 1.0) * scale;
  }
  return ref;
}

namespace {

double hv_recursive(std::vector<Point> points, const Point& ref);

/// 2-D sweep: sort by first objective ascending, accumulate the staircase.
double hv_2d(std::vector<Point>& points, const Point& ref) {
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a[0] < b[0]; });
  double hv = 0.0;
  double prev_y = ref[1];
  for (const Point& p : points) {
    if (p[0] >= ref[0] || p[1] >= prev_y) continue;
    hv += (ref[0] - p[0]) * (prev_y - p[1]);
    prev_y = p[1];
  }
  return hv;
}

/// >= 3-D: slice along the last objective and recurse on projections.
double hv_slicing(const std::vector<Point>& points, const Point& ref) {
  const std::size_t d = ref.size();
  // Distinct last-coordinate values below the reference, ascending.
  std::vector<double> zs;
  zs.reserve(points.size());
  for (const Point& p : points) {
    if (p[d - 1] < ref[d - 1]) zs.push_back(p[d - 1]);
  }
  if (zs.empty()) return 0.0;
  std::sort(zs.begin(), zs.end());
  zs.erase(std::unique(zs.begin(), zs.end()), zs.end());
  zs.push_back(ref[d - 1]);

  Point sub_ref(ref.begin(), ref.end() - 1);
  double hv = 0.0;
  for (std::size_t s = 0; s + 1 < zs.size(); ++s) {
    const double z0 = zs[s], z1 = zs[s + 1];
    std::vector<Point> slab;
    for (const Point& p : points) {
      if (p[d - 1] <= z0) {
        slab.emplace_back(p.begin(), p.end() - 1);
      }
    }
    if (slab.empty()) continue;
    hv += hv_recursive(std::move(slab), sub_ref) * (z1 - z0);
  }
  return hv;
}

double hv_recursive(std::vector<Point> points, const Point& ref) {
  const std::size_t d = ref.size();
  if (points.empty()) return 0.0;
  if (d == 1) {
    double best = ref[0];
    for (const Point& p : points) best = std::min(best, p[0]);
    return std::max(0.0, ref[0] - best);
  }
  if (d == 2) return hv_2d(points, ref);
  return hv_slicing(points, ref);
}

}  // namespace

double hypervolume(const std::vector<Point>& points, const Point& ref) {
  for (const Point& p : points) {
    if (p.size() != ref.size()) {
      throw std::invalid_argument("hypervolume: dimension mismatch");
    }
  }
  // Clip coordinates at the reference (points beyond it contribute nothing
  // in that direction); drop points entirely outside.
  std::vector<Point> clipped;
  clipped.reserve(points.size());
  for (const Point& p : points) {
    bool inside = true;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (p[i] >= ref[i]) {
        inside = false;
        break;
      }
    }
    if (inside) clipped.push_back(p);
  }
  return hv_recursive(std::move(clipped), ref);
}

double hypervolume_error(const std::vector<Point>& golden,
                         const std::vector<Point>& approx, const Point& ref) {
  const double h_golden = hypervolume(golden, ref);
  if (h_golden <= 0.0) {
    throw std::invalid_argument(
        "hypervolume_error: golden set has zero hypervolume");
  }
  const double h_approx = hypervolume(approx, ref);
  return (h_golden - h_approx) / h_golden;
}

double hypervolume_error(const std::vector<Point>& golden,
                         const std::vector<Point>& approx) {
  return hypervolume_error(golden, approx, reference_point(golden));
}

double adrs(const std::vector<Point>& golden,
            const std::vector<Point>& approx) {
  if (golden.empty() || approx.empty()) {
    throw std::invalid_argument("adrs: empty input set");
  }
  double total = 0.0;
  for (const Point& a : golden) {
    double best = 1e300;
    for (const Point& p : approx) {
      assert(p.size() == a.size());
      double worst = 0.0;
      for (std::size_t k = 0; k < a.size(); ++k) {
        const double denom = std::fabs(a[k]) > 1e-300 ? std::fabs(a[k]) : 1.0;
        // One-sided distance (paper Eq. (3)): only being WORSE than the
        // reference point costs; an approximation point that dominates a
        // golden point is at distance 0 from it, not penalized.
        worst = std::max(worst, (p[k] - a[k]) / denom);
      }
      best = std::min(best, worst);
    }
    total += best;
  }
  return total / static_cast<double>(golden.size());
}

}  // namespace ppat::pareto
