#include "pareto/pareto.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

namespace ppat::pareto {

bool dominates_with_slack(const Point& a, const Point& b,
                          std::span<const double> delta) {
  assert(a.size() == b.size() && delta.size() == a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i] + delta[i]) return false;
  }
  return true;
}

bool dominates(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

namespace {

/// Positions sorted lexicographically by coordinates; exact duplicates land
/// adjacent, so sweeps can process them as one group.
std::vector<std::size_t> lex_sorted_positions(const std::vector<Point>& pts) {
  std::vector<std::size_t> order(pts.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::lexicographical_compare(pts[a].begin(), pts[a].end(),
                                        pts[b].begin(), pts[b].end());
  });
  return order;
}

/// 2-D front sweep. Groups are visited in lexicographic order, so every
/// previously visited point q satisfies q[0] <= p[0]; q strictly dominates p
/// exactly when additionally q[1] <= p[1] (q != p holds across groups), so a
/// running minimum of the second coordinate answers the dominance test.
void front_sweep_2d(const std::vector<Point>& pts,
                    const std::vector<std::size_t>& order,
                    DuplicatePolicy policy, std::vector<char>& survives) {
  double best_y = std::numeric_limits<double>::infinity();
  std::size_t g = 0;
  while (g < order.size()) {
    std::size_t e = g + 1;
    while (e < order.size() && pts[order[e]] == pts[order[g]]) ++e;
    const Point& p = pts[order[g]];
    if (!(best_y <= p[1])) {
      if (policy == DuplicatePolicy::kKeepAll) {
        for (std::size_t t = g; t < e; ++t) survives[order[t]] = 1;
      } else {
        std::size_t first = order[g];
        for (std::size_t t = g + 1; t < e; ++t) first = std::min(first, order[t]);
        survives[first] = 1;
      }
    }
    best_y = std::min(best_y, p[1]);
    g = e;
  }
}

/// Minimal staircase over (y, z) pairs: keys ascend, values strictly
/// descend. Supports "does any stored pair satisfy y <= Y and z <= Z?" —
/// the stored minimum z over keys <= Y sits at the largest such key.
class Staircase {
 public:
  bool any_leq(double y, double z) const {
    auto it = steps_.upper_bound(y);
    return it != steps_.begin() && std::prev(it)->second <= z;
  }
  void insert(double y, double z) {
    auto it = steps_.upper_bound(y);
    if (it != steps_.begin() && std::prev(it)->second <= z) return;  // no gain
    if (it != steps_.begin() && std::prev(it)->first == y) --it;     // overwrite
    it = steps_.insert_or_assign(it, y, z);
    ++it;
    while (it != steps_.end() && it->second >= z) it = steps_.erase(it);
  }

 private:
  std::map<double, double> steps_;
};

/// 3-D front sweep: lexicographic order again guarantees q[0] <= p[0] for
/// visited q, reducing strict dominance to a 2-D staircase query on (y, z).
void front_sweep_3d(const std::vector<Point>& pts,
                    const std::vector<std::size_t>& order,
                    DuplicatePolicy policy, std::vector<char>& survives) {
  Staircase stairs;
  std::size_t g = 0;
  while (g < order.size()) {
    std::size_t e = g + 1;
    while (e < order.size() && pts[order[e]] == pts[order[g]]) ++e;
    const Point& p = pts[order[g]];
    if (!stairs.any_leq(p[1], p[2])) {
      if (policy == DuplicatePolicy::kKeepAll) {
        for (std::size_t t = g; t < e; ++t) survives[order[t]] = 1;
      } else {
        std::size_t first = order[g];
        for (std::size_t t = g + 1; t < e; ++t) first = std::min(first, order[t]);
        survives[first] = 1;
      }
    }
    stairs.insert(p[1], p[2]);
    g = e;
  }
}

}  // namespace

std::vector<std::size_t> nondominated_positions_reference(
    const std::vector<Point>& points, DuplicatePolicy policy) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j == i) continue;
      if (dominates(points[j], points[i])) dominated = true;
      if (policy == DuplicatePolicy::kFirstOnly && j < i &&
          points[j] == points[i]) {
        dominated = true;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<std::size_t> nondominated_positions(const std::vector<Point>& points,
                                                DuplicatePolicy policy) {
  if (points.empty()) return {};
  const std::size_t d = points.front().size();
  if (d != 2 && d != 3) return nondominated_positions_reference(points, policy);
  const auto order = lex_sorted_positions(points);
  std::vector<char> survives(points.size(), 0);
  if (d == 2) {
    front_sweep_2d(points, order, policy, survives);
  } else {
    front_sweep_3d(points, order, policy, survives);
  }
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (survives[i]) front.push_back(i);
  }
  return front;
}

std::vector<char> weakly_dominated_queries(const std::vector<Point>& set,
                                           const std::vector<Point>& queries) {
  std::vector<char> out(queries.size(), 0);
  if (set.empty() || queries.empty()) return out;
  const std::size_t d = queries.front().size();
  if (d != 2 && d != 3) {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      for (const Point& s : set) {
        bool leq = true;
        for (std::size_t k = 0; k < d && leq; ++k) leq = s[k] <= queries[q][k];
        if (leq) {
          out[q] = 1;
          break;
        }
      }
    }
    return out;
  }
  // Offline merge on the first coordinate: set points with s[0] <= q[0] are
  // folded into the running structure before q is answered, which reduces
  // weak dominance to the remaining coordinates.
  std::vector<std::size_t> sorder(set.size());
  std::iota(sorder.begin(), sorder.end(), 0);
  std::sort(sorder.begin(), sorder.end(),
            [&](std::size_t a, std::size_t b) { return set[a][0] < set[b][0]; });
  std::vector<std::size_t> qorder(queries.size());
  std::iota(qorder.begin(), qorder.end(), 0);
  std::sort(qorder.begin(), qorder.end(), [&](std::size_t a, std::size_t b) {
    return queries[a][0] < queries[b][0];
  });
  std::size_t si = 0;
  if (d == 2) {
    double best_y = std::numeric_limits<double>::infinity();
    for (std::size_t qi : qorder) {
      const Point& q = queries[qi];
      while (si < sorder.size() && set[sorder[si]][0] <= q[0]) {
        best_y = std::min(best_y, set[sorder[si]][1]);
        ++si;
      }
      out[qi] = best_y <= q[1] ? 1 : 0;
    }
  } else {
    Staircase stairs;
    for (std::size_t qi : qorder) {
      const Point& q = queries[qi];
      while (si < sorder.size() && set[sorder[si]][0] <= q[0]) {
        stairs.insert(set[sorder[si]][1], set[sorder[si]][2]);
        ++si;
      }
      out[qi] = stairs.any_leq(q[1], q[2]) ? 1 : 0;
    }
  }
  return out;
}

std::vector<std::size_t> pareto_front_indices_reference(
    const std::vector<Point>& points) {
  return nondominated_positions_reference(points, DuplicatePolicy::kFirstOnly);
}

std::vector<std::size_t> pareto_front_indices(
    const std::vector<Point>& points) {
  return nondominated_positions(points, DuplicatePolicy::kFirstOnly);
}

std::vector<Point> pareto_front(const std::vector<Point>& points) {
  std::vector<Point> front;
  for (std::size_t i : pareto_front_indices(points)) {
    front.push_back(points[i]);
  }
  return front;
}

Point reference_point(const std::vector<Point>& points, double margin) {
  if (points.empty()) {
    throw std::invalid_argument("reference_point: empty point set");
  }
  Point lo = points.front(), hi = points.front();
  for (const Point& p : points) {
    assert(p.size() == lo.size());
    for (std::size_t i = 0; i < lo.size(); ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  Point ref(hi);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    // Pad by a scale the dimension actually has: its magnitude or, when the
    // maximum sits at 0 (e.g. zero-WNS metrics), the set's spread. A fully
    // degenerate dimension (all points equal 0) falls back to unit scale so
    // the hypervolume never collapses along it.
    double scale = std::max(std::fabs(hi[i]), hi[i] - lo[i]);
    if (scale <= 0.0) scale = 1.0;
    ref[i] += (margin - 1.0) * scale;
  }
  return ref;
}

namespace {

double hv_recursive(std::vector<Point> points, const Point& ref);

/// 2-D sweep: sort by first objective ascending, accumulate the staircase.
double hv_2d(std::vector<Point>& points, const Point& ref) {
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a[0] < b[0]; });
  double hv = 0.0;
  double prev_y = ref[1];
  for (const Point& p : points) {
    if (p[0] >= ref[0] || p[1] >= prev_y) continue;
    hv += (ref[0] - p[0]) * (prev_y - p[1]);
    prev_y = p[1];
  }
  return hv;
}

/// 3-D sweep: process points by ascending third coordinate, maintaining the
/// 2-D staircase of their (x, y) projections and its covered area A w.r.t.
/// (ref[0], ref[1]). Between consecutive levels z0 < z1 the covered volume
/// grows by A * (z1 - z0); inserting a projection updates A by the area it
/// newly covers. O(n log n) vs the slicer's O(n^2 log n) front rebuilds.
double hv_3d(std::vector<Point>& points, const Point& ref) {
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a[2] < b[2]; });
  // Staircase of minimal (x, y) projections: x ascending, y strictly
  // descending; every entry strictly below the reference.
  std::map<double, double> stairs;
  double area = 0.0, hv = 0.0;
  double z_prev = points.front()[2];
  for (const Point& p : points) {
    hv += area * (p[2] - z_prev);
    z_prev = p[2];
    const double x = p[0], y = p[1];
    auto it = stairs.upper_bound(x);
    if (it != stairs.begin() && std::prev(it)->second <= y) continue;  // covered
    // Walk the entries this projection dominates, summing the area between
    // the old coverage height and y strip by strip.
    auto j = stairs.lower_bound(x);
    double cur_x = x;
    double cur_y = (j == stairs.begin()) ? ref[1] : std::prev(j)->second;
    double gain = 0.0;
    while (j != stairs.end() && j->second >= y) {
      gain += (j->first - cur_x) * (cur_y - y);
      cur_x = j->first;
      cur_y = j->second;
      j = stairs.erase(j);
    }
    const double right = (j == stairs.end()) ? ref[0] : j->first;
    gain += (right - cur_x) * (cur_y - y);
    area += gain;
    stairs[x] = y;
  }
  hv += area * (ref[2] - z_prev);
  return hv;
}

/// >= 3-D: slice along the last objective and recurse on projections.
double hv_slicing(const std::vector<Point>& points, const Point& ref) {
  const std::size_t d = ref.size();
  // Distinct last-coordinate values below the reference, ascending.
  std::vector<double> zs;
  zs.reserve(points.size());
  for (const Point& p : points) {
    if (p[d - 1] < ref[d - 1]) zs.push_back(p[d - 1]);
  }
  if (zs.empty()) return 0.0;
  std::sort(zs.begin(), zs.end());
  zs.erase(std::unique(zs.begin(), zs.end()), zs.end());
  zs.push_back(ref[d - 1]);

  Point sub_ref(ref.begin(), ref.end() - 1);
  double hv = 0.0;
  for (std::size_t s = 0; s + 1 < zs.size(); ++s) {
    const double z0 = zs[s], z1 = zs[s + 1];
    std::vector<Point> slab;
    for (const Point& p : points) {
      if (p[d - 1] <= z0) {
        slab.emplace_back(p.begin(), p.end() - 1);
      }
    }
    if (slab.empty()) continue;
    hv += hv_recursive(std::move(slab), sub_ref) * (z1 - z0);
  }
  return hv;
}

double hv_recursive(std::vector<Point> points, const Point& ref) {
  const std::size_t d = ref.size();
  if (points.empty()) return 0.0;
  if (d == 1) {
    double best = ref[0];
    for (const Point& p : points) best = std::min(best, p[0]);
    return std::max(0.0, ref[0] - best);
  }
  if (d == 2) return hv_2d(points, ref);
  return hv_slicing(points, ref);
}

/// Drops points with any coordinate at or beyond the reference (they
/// contribute nothing in that direction once clipped).
std::vector<Point> clip_to_reference(const std::vector<Point>& points,
                                     const Point& ref) {
  for (const Point& p : points) {
    if (p.size() != ref.size()) {
      throw std::invalid_argument("hypervolume: dimension mismatch");
    }
  }
  std::vector<Point> clipped;
  clipped.reserve(points.size());
  for (const Point& p : points) {
    bool inside = true;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (p[i] >= ref[i]) {
        inside = false;
        break;
      }
    }
    if (inside) clipped.push_back(p);
  }
  return clipped;
}

}  // namespace

double hypervolume(const std::vector<Point>& points, const Point& ref) {
  std::vector<Point> clipped = clip_to_reference(points, ref);
  if (clipped.empty()) return 0.0;
  if (ref.size() == 3) return hv_3d(clipped, ref);
  return hv_recursive(std::move(clipped), ref);
}

double hypervolume_reference(const std::vector<Point>& points,
                             const Point& ref) {
  return hv_recursive(clip_to_reference(points, ref), ref);
}

double hypervolume_error(const std::vector<Point>& golden,
                         const std::vector<Point>& approx, const Point& ref) {
  const double h_golden = hypervolume(golden, ref);
  if (h_golden <= 0.0) {
    throw std::invalid_argument(
        "hypervolume_error: golden set has zero hypervolume");
  }
  const double h_approx = hypervolume(approx, ref);
  return (h_golden - h_approx) / h_golden;
}

double hypervolume_error(const std::vector<Point>& golden,
                         const std::vector<Point>& approx) {
  return hypervolume_error(golden, approx, reference_point(golden));
}

double adrs(const std::vector<Point>& golden,
            const std::vector<Point>& approx) {
  if (golden.empty() || approx.empty()) {
    throw std::invalid_argument("adrs: empty input set");
  }
  double total = 0.0;
  for (const Point& a : golden) {
    double best = 1e300;
    for (const Point& p : approx) {
      assert(p.size() == a.size());
      double worst = 0.0;
      for (std::size_t k = 0; k < a.size(); ++k) {
        const double denom = std::fabs(a[k]) > 1e-300 ? std::fabs(a[k]) : 1.0;
        // One-sided distance (paper Eq. (3)): only being WORSE than the
        // reference point costs; an approximation point that dominates a
        // golden point is at distance 0 from it, not penalized.
        worst = std::max(worst, (p[k] - a[k]) / denom);
      }
      best = std::min(best, worst);
    }
    total += best;
  }
  return total / static_cast<double>(golden.size());
}

}  // namespace ppat::pareto
