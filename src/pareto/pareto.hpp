// Multi-objective utilities: Pareto dominance, front extraction, exact
// hypervolume, and the paper's two quality indicators — hypervolume error
// (Eq. (2)) and ADRS (Eq. (3)).
//
// Convention: ALL objectives are minimized (the paper's QoR metrics — area,
// power, delay — are all costs). A point is a vector of objective values.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace ppat::pareto {

using Point = linalg::Vector;

/// True if `a` weakly dominates `b` shifted by `delta`:
/// a_i <= b_i + delta_i for all i. With delta = 0 this is standard weak
/// dominance; the tuner's decision rules (paper Eqs. (11)-(12)) use
/// per-objective relaxations.
bool dominates_with_slack(const Point& a, const Point& b,
                          std::span<const double> delta);

/// Standard Pareto dominance for minimization: a <= b componentwise and
/// a < b in at least one component.
bool dominates(const Point& a, const Point& b);

/// Indices of the non-dominated points (first occurrence wins among exact
/// duplicates). O(n^2 d) — fronts in this library are small.
std::vector<std::size_t> pareto_front_indices(
    const std::vector<Point>& points);

/// The non-dominated subset itself.
std::vector<Point> pareto_front(const std::vector<Point>& points);

/// Reference point for hypervolume: componentwise maximum over `points`,
/// padded by (margin - 1) times a per-dimension scale (the coordinate's
/// magnitude, or the set's spread when the maximum sits at 0, so no
/// dimension ever collapses). Throws std::invalid_argument on empty input.
Point reference_point(const std::vector<Point>& points, double margin = 1.1);

/// Exact hypervolume of the region dominated by `points` and bounded by
/// `ref` (minimization). Points beyond the reference contribute only their
/// clipped part. Dimensions supported: 1 and up (2-D fast sweep; >= 3-D by
/// recursive slicing).
double hypervolume(const std::vector<Point>& points, const Point& ref);

/// Hypervolume error of an approximation vs the golden front (paper
/// Eq. (2)): (H(P) - H(P_hat)) / H(P), computed against a shared reference
/// point (derived from the golden front if not supplied). Positive when the
/// approximation is worse; 0 when it matches.
double hypervolume_error(const std::vector<Point>& golden,
                         const std::vector<Point>& approx);
double hypervolume_error(const std::vector<Point>& golden,
                         const std::vector<Point>& approx, const Point& ref);

/// Average Distance from Reference Set (paper Eq. (3)): for each golden
/// point, the minimum over approximation points of the worst relative
/// per-objective shortfall max(0, (p_k - a_k) / |a_k|), averaged over the
/// golden set. One-sided: approximation points that dominate a golden point
/// are at distance 0 from it.
double adrs(const std::vector<Point>& golden,
            const std::vector<Point>& approx);

}  // namespace ppat::pareto
