// Multi-objective utilities: Pareto dominance, front extraction, exact
// hypervolume, and the paper's two quality indicators — hypervolume error
// (Eq. (2)) and ADRS (Eq. (3)).
//
// Convention: ALL objectives are minimized (the paper's QoR metrics — area,
// power, delay — are all costs). A point is a vector of objective values.
//
// Front extraction and the batched dominance queries run as sort-based
// sweeps for 2 and 3 objectives (the paper's area/power/delay case):
// O(n log n) instead of the pairwise O(n^2), with results identical to the
// pairwise reference (which is retained for >= 4 objectives and as the test
// oracle). That is what lets the tuner's per-round decision passes scale to
// 10^5-candidate pools.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace ppat::pareto {

using Point = linalg::Vector;

/// True if `a` weakly dominates `b` shifted by `delta`:
/// a_i <= b_i + delta_i for all i. With delta = 0 this is standard weak
/// dominance; the tuner's decision rules (paper Eqs. (11)-(12)) use
/// per-objective relaxations.
bool dominates_with_slack(const Point& a, const Point& b,
                          std::span<const double> delta);

/// Standard Pareto dominance for minimization: a <= b componentwise and
/// a < b in at least one component.
bool dominates(const Point& a, const Point& b);

/// How exact duplicates are treated by nondominated_positions: the tuner's
/// corner fronts keep every copy of a non-dominated corner (any of them can
/// veto a drop), while pareto_front_indices reports each distinct optimum
/// once (earliest position wins).
enum class DuplicatePolicy { kKeepAll, kFirstOnly };

/// Positions of the points not strictly dominated by any other point
/// (minimization), in ascending position order. Sort-based sweep for 2 and 3
/// objectives; pairwise reference otherwise. Identical output to
/// nondominated_positions_reference for every input.
std::vector<std::size_t> nondominated_positions(const std::vector<Point>& points,
                                                DuplicatePolicy policy);

/// Pairwise O(n^2) oracle for nondominated_positions (any dimensionality).
std::vector<std::size_t> nondominated_positions_reference(
    const std::vector<Point>& points, DuplicatePolicy policy);

/// For each query point, whether some `set` point weakly dominates it
/// (componentwise <=, minimization). Offline merge sweep for 2 and 3
/// objectives — O((|set| + |queries|) log) — pairwise scan otherwise.
/// The tuner phrases both delta-dominance passes as these queries against
/// the corner fronts.
std::vector<char> weakly_dominated_queries(const std::vector<Point>& set,
                                           const std::vector<Point>& queries);

/// Indices of the non-dominated points (first occurrence wins among exact
/// duplicates). Sweep-based for 2/3 objectives, pairwise otherwise; always
/// identical to pareto_front_indices_reference.
std::vector<std::size_t> pareto_front_indices(
    const std::vector<Point>& points);

/// The original pairwise implementation, kept as the test oracle.
std::vector<std::size_t> pareto_front_indices_reference(
    const std::vector<Point>& points);

/// The non-dominated subset itself.
std::vector<Point> pareto_front(const std::vector<Point>& points);

/// Reference point for hypervolume: componentwise maximum over `points`,
/// padded by (margin - 1) times a per-dimension scale (the coordinate's
/// magnitude, or the set's spread when the maximum sits at 0, so no
/// dimension ever collapses). Throws std::invalid_argument on empty input.
Point reference_point(const std::vector<Point>& points, double margin = 1.1);

/// Exact hypervolume of the region dominated by `points` and bounded by
/// `ref` (minimization). Points beyond the reference contribute only their
/// clipped part. Dimensions supported: 1 and up. 2-D and 3-D run closed-form
/// sweeps (O(n log n)); >= 4-D falls back to recursive slicing. The 3-D
/// sweep accumulates in a different order than the slicer, so it agrees with
/// hypervolume_reference to rounding (~1e-12 relative), not bitwise.
double hypervolume(const std::vector<Point>& points, const Point& ref);

/// The recursive-slicing implementation for every dimensionality >= 3 (2-D
/// and 1-D are shared closed forms) — the pre-sweep code path, kept as the
/// test oracle.
double hypervolume_reference(const std::vector<Point>& points,
                             const Point& ref);

/// Hypervolume error of an approximation vs the golden front (paper
/// Eq. (2)): (H(P) - H(P_hat)) / H(P), computed against a shared reference
/// point (derived from the golden front if not supplied). Positive when the
/// approximation is worse; 0 when it matches.
double hypervolume_error(const std::vector<Point>& golden,
                         const std::vector<Point>& approx);
double hypervolume_error(const std::vector<Point>& golden,
                         const std::vector<Point>& approx, const Point& ref);

/// Average Distance from Reference Set (paper Eq. (3)): for each golden
/// point, the minimum over approximation points of the worst relative
/// per-objective shortfall max(0, (p_k - a_k) / |a_k|), averaged over the
/// golden set. One-sided: approximation points that dominate a golden point
/// are at distance 0 from it.
double adrs(const std::vector<Point>& golden,
            const std::vector<Point>& approx);

}  // namespace ppat::pareto
