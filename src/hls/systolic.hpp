// Analytical HLS systolic-array cost model — the second oracle family.
//
// Models an AutoSA-style GEMM accelerator (C[M,N] += A[M,K] * B[K,N]) mapped
// onto a 2D array of processing elements, with the classic HLS tuning knobs:
//
//   pe_rows/pe_cols   PE-array shape (space tiling of the output matrix);
//                     factor-of-M / factor-of-N domains.
//   array_part        enables second-level array partitioning (shorter
//                     broadcast wires, better clock, some mux overhead).
//   l2_rows/l2_cols   sub-array shape when partitioned; each must DIVIDE the
//                     first-level tile and is only ACTIVE when array_part=1.
//   lat_hide          latency-hiding tile along K: the accumulation
//                     dependence is hidden once the tile covers the adder
//                     latency (II -> 1); factor-of-K domain.
//   simd              per-PE vector width; must DIVIDE lat_hide.
//   data_pack         on-chip buffer strategy (categorical): "none",
//                     "ping_pong" (double buffering overlaps IO/compute),
//                     "wide" (ping-pong + packed words: fewer BRAMs, small
//                     clock penalty).
//
// This is exactly the mixed/conditional structure flow::ParameterSpace grew
// for: divisibility-constrained integer domains, a conditional sub-tree, and
// a categorical dim. The model is closed-form and deterministic in
// (workload, seed, config) — like pdsim it yields replayable golden QoR —
// and its three objectives ride the existing QoR triple:
//
//   area_um2 <- DSP count, power_mw <- BRAM-18K count, delay_ns <- latency (us).
//
// The unit labels are pdsim's; the tuner stack only ever treats QoR as three
// minimized scalars, so nothing downstream cares (documented in DESIGN.md).
//
// small_gemm() -> large_gemm() is the transfer pair mirroring the paper's
// Target1 -> Target2: same parameter names/types (equal encoded dimension),
// different domains, strongly correlated cost surfaces.
#pragma once

#include <cstdint>
#include <string>

#include "flow/benchmark.hpp"
#include "flow/parameter.hpp"
#include "flow/pd_tool.hpp"

namespace ppat::hls {

/// One GEMM accelerator instance to tune.
struct SystolicWorkload {
  std::string name = "gemm";
  long m = 64;   ///< output rows
  long n = 64;   ///< output cols
  long k = 128;  ///< reduction depth
  double clock_mhz = 250.0;  ///< nominal target clock
  double dsp_budget = 1024.0;
  double bram_budget = 512.0;
};

/// The small (source) and large (target) tasks of the transfer scenario.
SystolicWorkload small_gemm();
SystolicWorkload large_gemm();

/// The mixed/conditional tuning space of a workload (8 parameters,
/// parent-ordered; has_constraints() is true).
flow::ParameterSpace systolic_space(const SystolicWorkload& workload);

/// Raw objective triple before the QoR mapping.
struct SystolicCost {
  double latency_us = 0.0;
  double dsp = 0.0;
  double bram = 0.0;
};

/// Deterministic analytical oracle. evaluate() rejects infeasible configs
/// with std::invalid_argument — samplers upstream must only ever produce
/// feasible designs, and this is where that contract is enforced.
class SystolicOracle final : public flow::QorOracle {
 public:
  SystolicOracle(SystolicWorkload workload, std::uint64_t seed);

  flow::QoR evaluate(const flow::ParameterSpace& space,
                     const flow::Config& config) override;
  std::size_t run_count() const override { return runs_; }

  /// Pure cost model (no run counting, no feasibility gate).
  SystolicCost cost(const flow::ParameterSpace& space,
                    const flow::Config& config) const;

  const SystolicWorkload& workload() const { return workload_; }

 private:
  SystolicWorkload workload_;
  std::uint64_t seed_;
  std::size_t runs_ = 0;
};

/// Offline benchmark for the workload: `n` distinct feasible designs from
/// constraint-aware LHS, each evaluated for golden QoR. Deterministic in
/// `seed` (mirrors flow::build_benchmark for the pdsim family).
flow::BenchmarkSet build_systolic_benchmark(const std::string& name,
                                            const SystolicWorkload& workload,
                                            std::size_t n,
                                            std::uint64_t seed);

}  // namespace ppat::hls
