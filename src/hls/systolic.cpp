#include "hls/systolic.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/rng.hpp"
#include "sample/constrained.hpp"

namespace ppat::hls {

namespace {

// fp32 MAC on a DSP48-class block.
constexpr double kDspPerMac = 5.0;
// Usable 32-bit words per BRAM-18K block.
constexpr double kWordsPerBram = 512.0;
// Floating-point accumulation latency (cycles) the lat_hide tile must cover.
constexpr double kAccLatency = 8.0;

double ceil_div(double a, double b) { return std::ceil(a / b); }

// Deterministic per-(seed, config) jitter in [1 - amp, 1 + amp]: stands in
// for run-to-run tool variance while keeping golden QoR replayable.
double jitter(std::uint64_t seed, const flow::Config& config, double amp) {
  std::uint64_t h = seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  for (double v : config) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  // splitmix64 finalizer.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return 1.0 + amp * (2.0 * u - 1.0);
}

}  // namespace

SystolicWorkload small_gemm() {
  SystolicWorkload w;
  w.name = "gemm_small";
  w.m = 64;
  w.n = 64;
  w.k = 128;
  w.clock_mhz = 250.0;
  w.dsp_budget = 1024.0;
  w.bram_budget = 256.0;
  return w;
}

SystolicWorkload large_gemm() {
  SystolicWorkload w;
  w.name = "gemm_large";
  w.m = 256;
  w.n = 256;
  w.k = 512;
  w.clock_mhz = 250.0;
  w.dsp_budget = 4096.0;
  w.bram_budget = 1024.0;
  return w;
}

flow::ParameterSpace systolic_space(const SystolicWorkload& w) {
  using flow::ParamSpec;
  std::vector<ParamSpec> specs;
  specs.push_back(ParamSpec::factors("pe_rows", w.m));
  specs.push_back(ParamSpec::factors("pe_cols", w.n));
  specs.push_back(ParamSpec::boolean("array_part"));
  specs.push_back(ParamSpec::factors("l2_rows", w.m)
                      .divides("pe_rows")
                      .active_when("array_part", 1.0));
  specs.push_back(ParamSpec::factors("l2_cols", w.n)
                      .divides("pe_cols")
                      .active_when("array_part", 1.0));
  specs.push_back(ParamSpec::factors("lat_hide", w.k));
  specs.push_back(
      ParamSpec::integer_levels("simd", {1, 2, 4, 8}).divides("lat_hide"));
  specs.push_back(
      ParamSpec::enumeration("data_pack", {"none", "ping_pong", "wide"}));
  return flow::ParameterSpace(std::move(specs));
}

SystolicOracle::SystolicOracle(SystolicWorkload workload, std::uint64_t seed)
    : workload_(std::move(workload)), seed_(seed) {}

SystolicCost SystolicOracle::cost(const flow::ParameterSpace& space,
                                  const flow::Config& config) const {
  const SystolicWorkload& w = workload_;
  const double r = space.value_or(config, "pe_rows", 1.0);
  const double c = space.value_or(config, "pe_cols", 1.0);
  const bool array_part = space.value_or(config, "array_part", 0.0) != 0.0;
  const double l2r = space.value_or(config, "l2_rows", 1.0);
  const double l2c = space.value_or(config, "l2_cols", 1.0);
  const double t = space.value_or(config, "lat_hide", 1.0);
  const double simd = space.value_or(config, "simd", 1.0);
  const long pack = std::lround(space.value_or(config, "data_pack", 0.0));
  const bool ping_pong = pack >= 1;  // "ping_pong" or "wide"
  const bool wide = pack == 2;

  // --- Resources ------------------------------------------------------
  const double num_pe = r * c;
  const double dsp = kDspPerMac * num_pe * simd;

  // On-chip tiles (32-bit words): A is r x t, B is t x c, C is r x c.
  const double pack_factor = wide ? 2.0 : 1.0;  // packed words halve blocks
  const double buf_factor = ping_pong ? 2.0 : 1.0;  // double buffering
  double bram = buf_factor * (ceil_div(r * t, kWordsPerBram * pack_factor) +
                              ceil_div(t * c, kWordsPerBram * pack_factor)) +
                ceil_div(r * c, kWordsPerBram);
  // Second-level partitioning replicates the boundary buffers per sub-array
  // column/row (a mild resource tax for the clock win below).
  if (array_part) {
    bram += ceil_div(r / l2r, 1.0) + ceil_div(c / l2c, 1.0);
  }

  // --- Clock ----------------------------------------------------------
  // Broadcast wire length grows with the unpartitioned array diameter;
  // partitioning re-times at sub-array boundaries (diameter l2r + l2c) at
  // the cost of a mux stage. Wide packing stresses routing slightly.
  const double diameter = array_part ? (l2r + l2c) : (r + c);
  double wire_penalty = diameter / 96.0;
  if (array_part) wire_penalty += 0.03;
  if (wide) wire_penalty += 0.03;
  const double mhz = w.clock_mhz / (1.0 + wire_penalty);

  // --- Latency --------------------------------------------------------
  const double total_macs = static_cast<double>(w.m) *
                            static_cast<double>(w.n) *
                            static_cast<double>(w.k);
  // Initiation interval of the accumulation loop: the lat_hide tile
  // interleaves t independent partial sums, hiding the adder latency once
  // t >= kAccLatency.
  const double ii = std::max(1.0, std::ceil(kAccLatency / t));
  const double compute_cycles = total_macs / (num_pe * simd) * ii;
  // Off-chip traffic (words): every K-tile pass streams the A and B tiles
  // per output tile plus one C pass. Wide packing doubles effective
  // bandwidth; ping-pong overlaps transfer with compute.
  const double tiles =
      ceil_div(static_cast<double>(w.m), r) *
      ceil_div(static_cast<double>(w.n), c) *
      ceil_div(static_cast<double>(w.k), t);
  const double words = tiles * (r * t + t * c) +
                       static_cast<double>(w.m) * static_cast<double>(w.n);
  const double io_cycles = words / (2.0 * pack_factor);
  double cycles = ping_pong ? std::max(compute_cycles, io_cycles) +
                                  std::min(compute_cycles, io_cycles) * 0.05
                            : compute_cycles + io_cycles;
  // Pipeline fill/drain across the array.
  cycles += (r + c + t) * 4.0;

  double latency_us = cycles / mhz;

  // --- Budget pressure -------------------------------------------------
  // Over-budget designs stay finite but degrade sharply (the scheduler
  // spills): a smooth soft penalty keeps the surface GP-friendly.
  const double dsp_over = std::max(0.0, dsp / w.dsp_budget - 1.0);
  const double bram_over = std::max(0.0, bram / w.bram_budget - 1.0);
  latency_us *= 1.0 + 4.0 * dsp_over * dsp_over + 4.0 * bram_over * bram_over;

  SystolicCost out;
  out.latency_us = latency_us * jitter(seed_, config, 0.01);
  out.dsp = dsp;
  out.bram = bram;
  return out;
}

flow::QoR SystolicOracle::evaluate(const flow::ParameterSpace& space,
                                   const flow::Config& config) {
  if (!space.is_feasible(config)) {
    throw std::invalid_argument(
        "SystolicOracle: infeasible configuration for " + workload_.name +
        " (constraint-aware sampling must only produce feasible designs)");
  }
  ++runs_;
  const SystolicCost c = cost(space, config);
  flow::QoR qor;
  qor.area_um2 = c.dsp;
  qor.power_mw = c.bram;
  qor.delay_ns = c.latency_us;
  return qor;
}

flow::BenchmarkSet build_systolic_benchmark(const std::string& name,
                                            const SystolicWorkload& workload,
                                            std::size_t n,
                                            std::uint64_t seed) {
  flow::BenchmarkSet set;
  set.name = name;
  set.space = systolic_space(workload);
  common::Rng rng(seed);
  set.configs = sample::constrained_lhs(set.space, n, rng);
  SystolicOracle oracle(workload, seed);
  set.qor.reserve(set.configs.size());
  for (const auto& config : set.configs) {
    set.qor.push_back(oracle.evaluate(set.space, config));
  }
  return set;
}

}  // namespace ppat::hls
