// CART regression trees and least-squares gradient boosting.
//
// Substrate for the ASPDAC'20 (FIST) baseline, which uses an
// "ensemble boosting tree-based regressor" (XGBoost in the original) and
// feature importances learned from source-task data. This implementation is
// classic Friedman gradient boosting: depth-limited variance-reduction CART
// trees fitted to residuals with shrinkage and optional row subsampling.
// Feature importances are split-gain totals, normalized.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace ppat::tree {

struct TreeOptions {
  int max_depth = 4;
  std::size_t min_samples_leaf = 3;
  /// Number of candidate thresholds tried per feature (quantile grid).
  std::size_t candidate_splits = 16;
};

/// One CART regression tree (axis-aligned splits, mean-leaf predictions).
class RegressionTree {
 public:
  /// Fits on rows of `xs` (all the same dimension) against `ys`, optionally
  /// weighting samples. Throws std::invalid_argument on empty/ragged input.
  void fit(const std::vector<linalg::Vector>& xs, const linalg::Vector& ys,
           const TreeOptions& options = {});

  /// Fits on the subset of rows given by `rows`.
  void fit_rows(const std::vector<linalg::Vector>& xs,
                const linalg::Vector& ys,
                const std::vector<std::size_t>& rows,
                const TreeOptions& options = {});

  double predict(const linalg::Vector& x) const;

  /// Total split gain (variance reduction * samples) credited per feature.
  const std::vector<double>& feature_gains() const { return feature_gains_; }

  bool fitted() const { return !nodes_.empty(); }
  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Leaf when feature == -1.
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;          // leaf prediction
    std::int32_t left = -1;      // child indices
    std::int32_t right = -1;
  };
  std::int32_t build(const std::vector<linalg::Vector>& xs,
                     const linalg::Vector& ys, std::vector<std::size_t>& rows,
                     int depth, const TreeOptions& options);

  std::vector<Node> nodes_;
  std::vector<double> feature_gains_;
};

struct BoostingOptions {
  std::size_t num_trees = 120;
  double learning_rate = 0.08;
  double row_subsample = 0.8;  ///< fraction of rows per tree (stochastic GB)
  TreeOptions tree;
  std::uint64_t seed = 7;
};

/// Least-squares gradient-boosting ensemble.
class GradientBoosting {
 public:
  void fit(const std::vector<linalg::Vector>& xs, const linalg::Vector& ys,
           const BoostingOptions& options = {});

  double predict(const linalg::Vector& x) const;
  linalg::Vector predict_batch(const std::vector<linalg::Vector>& xs) const;

  /// Normalized (sums to 1) total split gain per feature.
  std::vector<double> feature_importances() const;

  bool fitted() const { return !trees_.empty() || base_set_; }
  std::size_t num_trees() const { return trees_.size(); }

 private:
  double base_prediction_ = 0.0;
  bool base_set_ = false;
  double learning_rate_ = 0.1;
  std::vector<RegressionTree> trees_;
  std::vector<double> feature_gains_;
};

}  // namespace ppat::tree
