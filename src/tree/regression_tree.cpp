#include "tree/regression_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ppat::tree {
namespace {

struct MeanVar {
  double sum = 0.0, sum_sq = 0.0;
  std::size_t n = 0;
  void add(double y) {
    sum += y;
    sum_sq += y * y;
    ++n;
  }
  double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
  /// Sum of squared deviations (n * variance).
  double sse() const {
    if (n == 0) return 0.0;
    return sum_sq - sum * sum / static_cast<double>(n);
  }
};

}  // namespace

void RegressionTree::fit(const std::vector<linalg::Vector>& xs,
                         const linalg::Vector& ys,
                         const TreeOptions& options) {
  std::vector<std::size_t> rows(xs.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  fit_rows(xs, ys, rows, options);
}

void RegressionTree::fit_rows(const std::vector<linalg::Vector>& xs,
                              const linalg::Vector& ys,
                              const std::vector<std::size_t>& rows,
                              const TreeOptions& options) {
  if (xs.empty() || xs.size() != ys.size() || rows.empty()) {
    throw std::invalid_argument("RegressionTree::fit: bad input");
  }
  nodes_.clear();
  feature_gains_.assign(xs.front().size(), 0.0);
  std::vector<std::size_t> mutable_rows = rows;
  build(xs, ys, mutable_rows, 0, options);
}

std::int32_t RegressionTree::build(const std::vector<linalg::Vector>& xs,
                                   const linalg::Vector& ys,
                                   std::vector<std::size_t>& rows, int depth,
                                   const TreeOptions& options) {
  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  MeanVar all;
  for (std::size_t r : rows) all.add(ys[r]);
  nodes_[node_id].value = all.mean();

  if (depth >= options.max_depth ||
      rows.size() < 2 * options.min_samples_leaf || all.sse() <= 1e-12) {
    return node_id;
  }

  const std::size_t d = xs.front().size();
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;

  std::vector<double> values;
  for (std::size_t f = 0; f < d; ++f) {
    // Candidate thresholds: quantiles of this feature over the node rows.
    values.clear();
    values.reserve(rows.size());
    for (std::size_t r : rows) values.push_back(xs[r][f]);
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) continue;

    for (std::size_t c = 1; c <= options.candidate_splits; ++c) {
      const std::size_t q =
          c * values.size() / (options.candidate_splits + 1);
      if (q == 0 || q >= values.size()) continue;
      const double threshold = 0.5 * (values[q - 1] + values[q]);
      MeanVar left, right;
      for (std::size_t r : rows) {
        (xs[r][f] <= threshold ? left : right).add(ys[r]);
      }
      if (left.n < options.min_samples_leaf ||
          right.n < options.min_samples_leaf) {
        continue;
      }
      const double gain = all.sse() - left.sse() - right.sse();
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }
  }
  if (best_feature < 0) return node_id;

  feature_gains_[static_cast<std::size_t>(best_feature)] += best_gain;

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    (xs[r][static_cast<std::size_t>(best_feature)] <= best_threshold
         ? left_rows
         : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();  // release before recursing

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const std::int32_t left = build(xs, ys, left_rows, depth + 1, options);
  nodes_[node_id].left = left;
  const std::int32_t right = build(xs, ys, right_rows, depth + 1, options);
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::predict(const linalg::Vector& x) const {
  if (nodes_.empty()) {
    throw std::runtime_error("RegressionTree::predict: not fitted");
  }
  std::int32_t node = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature < 0) return n.value;
    node = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                 : n.right;
  }
}

void GradientBoosting::fit(const std::vector<linalg::Vector>& xs,
                           const linalg::Vector& ys,
                           const BoostingOptions& options) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("GradientBoosting::fit: bad input");
  }
  trees_.clear();
  feature_gains_.assign(xs.front().size(), 0.0);
  learning_rate_ = options.learning_rate;

  double base = 0.0;
  for (double y : ys) base += y;
  base_prediction_ = base / static_cast<double>(ys.size());
  base_set_ = true;

  linalg::Vector residual(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    residual[i] = ys[i] - base_prediction_;
  }

  common::Rng rng(options.seed);
  const std::size_t subsample = std::max<std::size_t>(
      options.tree.min_samples_leaf * 2,
      static_cast<std::size_t>(options.row_subsample *
                               static_cast<double>(xs.size())));

  for (std::size_t t = 0; t < options.num_trees; ++t) {
    std::vector<std::size_t> rows =
        subsample < xs.size()
            ? rng.sample_without_replacement(xs.size(), subsample)
            : [&] {
                std::vector<std::size_t> all(xs.size());
                for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
                return all;
              }();
    RegressionTree tree;
    tree.fit_rows(xs, residual, rows, options.tree);
    for (std::size_t f = 0; f < feature_gains_.size(); ++f) {
      feature_gains_[f] += tree.feature_gains()[f];
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
      residual[i] -= learning_rate_ * tree.predict(xs[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoosting::predict(const linalg::Vector& x) const {
  if (!base_set_) {
    throw std::runtime_error("GradientBoosting::predict: not fitted");
  }
  double y = base_prediction_;
  for (const auto& tree : trees_) y += learning_rate_ * tree.predict(x);
  return y;
}

linalg::Vector GradientBoosting::predict_batch(
    const std::vector<linalg::Vector>& xs) const {
  linalg::Vector out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = predict(xs[i]);
  return out;
}

std::vector<double> GradientBoosting::feature_importances() const {
  double total = 0.0;
  for (double g : feature_gains_) total += g;
  std::vector<double> imp(feature_gains_.size(), 0.0);
  if (total <= 0.0) {
    // No informative splits: uniform importances.
    if (!imp.empty()) {
      std::fill(imp.begin(), imp.end(), 1.0 / static_cast<double>(imp.size()));
    }
    return imp;
  }
  for (std::size_t f = 0; f < imp.size(); ++f) {
    imp[f] = feature_gains_[f] / total;
  }
  return imp;
}

}  // namespace ppat::tree
