#include "netlist/mac_generator.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ppat::netlist {
namespace {

/// Builder for one MAC lane; holds the cell ids it needs.
class LaneBuilder {
 public:
  LaneBuilder(Netlist& netlist, const CellLibrary& library)
      : nl_(netlist),
        and2_(library.find(CellFunction::kAnd2, 0)),
        xor2_(library.find(CellFunction::kXor2, 0)),
        fas_(library.find(CellFunction::kFullAdderSum, 0)),
        fac_(library.find(CellFunction::kFullAdderCarry, 0)),
        dff_(library.find(CellFunction::kDff, 0)) {}

  /// Registers each net through a DFF; returns the Q nets.
  std::vector<NetId> register_bank(const std::vector<NetId>& nets) {
    std::vector<NetId> out;
    out.reserve(nets.size());
    for (NetId n : nets) {
      out.push_back(nl_.instance(nl_.add_instance(dff_, {n})).fanout);
    }
    return out;
  }

  /// Wallace-tree product of two bit vectors; result has a.size()+b.size()
  /// bits, LSB first.
  std::vector<NetId> multiply(const std::vector<NetId>& a,
                              const std::vector<NetId>& b) {
    const std::size_t n = a.size(), m = b.size();
    // columns[w] = partial-product bits of weight w.
    std::vector<std::vector<NetId>> columns(n + m);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const InstanceId pp = nl_.add_instance(and2_, {a[i], b[j]});
        columns[i + j].push_back(nl_.instance(pp).fanout);
      }
    }
    reduce_to_two_rows(columns);
    return ripple_add_columns(columns);
  }

  /// Ripple-carry sum of two equal-width vectors plus optional extra bits;
  /// returns sum with one extra carry-out bit.
  std::vector<NetId> add(const std::vector<NetId>& x,
                         const std::vector<NetId>& y) {
    if (x.size() != y.size()) {
      throw std::runtime_error("LaneBuilder::add: width mismatch");
    }
    std::vector<NetId> sum;
    sum.reserve(x.size() + 1);
    NetId carry = kInvalidId;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (carry == kInvalidId) {
        // Half adder: sum = x ^ y, carry = x & y.
        sum.push_back(out(nl_.add_instance(xor2_, {x[i], y[i]})));
        carry = out(nl_.add_instance(and2_, {x[i], y[i]}));
      } else {
        sum.push_back(out(nl_.add_instance(fas_, {x[i], y[i], carry})));
        carry = out(nl_.add_instance(fac_, {x[i], y[i], carry}));
      }
    }
    sum.push_back(carry);
    return sum;
  }

 private:
  NetId out(InstanceId inst) { return nl_.instance(inst).fanout; }

  /// 3:2 / 2:2 compression until every column holds at most 2 bits.
  void reduce_to_two_rows(std::vector<std::vector<NetId>>& columns) {
    bool any_tall = true;
    while (any_tall) {
      any_tall = false;
      std::vector<std::vector<NetId>> next(columns.size() + 1);
      for (std::size_t w = 0; w < columns.size(); ++w) {
        auto& col = columns[w];
        std::size_t i = 0;
        // Full adders on triples.
        while (col.size() - i >= 3) {
          const NetId s =
              out(nl_.add_instance(fas_, {col[i], col[i + 1], col[i + 2]}));
          const NetId c =
              out(nl_.add_instance(fac_, {col[i], col[i + 1], col[i + 2]}));
          next[w].push_back(s);
          next[w + 1].push_back(c);
          i += 3;
        }
        // Half adder on a leftover pair only if the column was tall
        // (standard Wallace: compress aggressively when height > 2).
        if (col.size() > 3 && col.size() - i == 2) {
          const NetId s = out(nl_.add_instance(xor2_, {col[i], col[i + 1]}));
          const NetId c = out(nl_.add_instance(and2_, {col[i], col[i + 1]}));
          next[w].push_back(s);
          next[w + 1].push_back(c);
          i += 2;
        }
        // Pass through the rest.
        for (; i < col.size(); ++i) next[w].push_back(col[i]);
      }
      // Structural carries can spill one weight past the logical product MSB
      // even though they are logically zero; keep the column if occupied.
      if (next.back().empty()) next.pop_back();
      for (const auto& col : next) {
        if (col.size() > 2) {
          any_tall = true;
          break;
        }
      }
      columns = std::move(next);
    }
  }

  /// Final carry-propagate add over columns holding <= 2 bits each.
  std::vector<NetId> ripple_add_columns(
      const std::vector<std::vector<NetId>>& columns) {
    std::vector<NetId> result;
    result.reserve(columns.size());
    NetId carry = kInvalidId;
    for (const auto& col : columns) {
      std::vector<NetId> bits = col;
      if (carry != kInvalidId) bits.push_back(carry);
      carry = kInvalidId;
      switch (bits.size()) {
        case 0:
          // Empty column (can only be the top): contributes a constant 0.
          // Represent it by reusing the previous carry absence; columns
          // above the product MSB never appear by construction.
          throw std::runtime_error("ripple_add_columns: empty column");
        case 1:
          result.push_back(bits[0]);
          break;
        case 2:
          result.push_back(out(nl_.add_instance(xor2_, {bits[0], bits[1]})));
          carry = out(nl_.add_instance(and2_, {bits[0], bits[1]}));
          break;
        case 3:
          result.push_back(
              out(nl_.add_instance(fas_, {bits[0], bits[1], bits[2]})));
          carry = out(nl_.add_instance(fac_, {bits[0], bits[1], bits[2]}));
          break;
        default:
          throw std::runtime_error("ripple_add_columns: column too tall");
      }
    }
    if (carry != kInvalidId) result.push_back(carry);
    return result;
  }

  Netlist& nl_;
  CellId and2_, xor2_, fas_, fac_, dff_;
};

}  // namespace

Netlist generate_mac(const CellLibrary& library, const MacConfig& config) {
  if (config.operand_bits < 2) {
    throw std::invalid_argument("generate_mac: operand_bits must be >= 2");
  }
  if (config.lanes < 1) {
    throw std::invalid_argument("generate_mac: lanes must be >= 1");
  }
  Netlist nl(&library);
  LaneBuilder lane(nl, library);

  const unsigned product_bits = 2 * config.operand_bits;
  const unsigned acc_bits = product_bits + config.accumulator_guard_bits;

  // The B operand (the "coefficient" of the dot product) is registered once
  // and broadcast to every lane — the realistic structure for a multi-lane
  // MAC, and the source of the design's high-fanout nets (fanout = lanes x
  // operand width on each coefficient bit), which is what the max_fanout
  // DRV parameter acts on.
  std::vector<NetId> b_in(config.operand_bits);
  for (auto& n : b_in) n = nl.add_primary_input();
  const std::vector<NetId> b = lane.register_bank(b_in);

  for (unsigned l = 0; l < config.lanes; ++l) {
    // Per-lane A operand input registers fed from primary inputs.
    std::vector<NetId> a_in(config.operand_bits);
    for (auto& n : a_in) n = nl.add_primary_input();
    std::vector<NetId> a = lane.register_bank(a_in);

    // Multiplier.
    std::vector<NetId> product = lane.multiply(a, b);
    product.resize(product_bits, product.back());

    // Optional pipeline banks between multiplier and accumulator.
    for (unsigned s = 0; s < config.pipeline_stages; ++s) {
      product = lane.register_bank(product);
    }

    // Accumulator: acc_next = acc + product, with carries rippling into the
    // guard bits. The FF bank must exist before the adder (the adder reads
    // Q), but each FF's D is the adder output — a feedback loop. Break it by
    // creating the FFs on floating placeholder D nets, then reconnecting.
    std::vector<NetId> acc_q(acc_bits);
    std::vector<InstanceId> acc_ff(acc_bits);
    std::vector<NetId> dummy(acc_bits);
    for (unsigned i = 0; i < acc_bits; ++i) {
      dummy[i] = nl.add_floating_net();  // placeholder, reconnected below
    }
    const CellId dff = library.find(CellFunction::kDff, 0);
    for (unsigned i = 0; i < acc_bits; ++i) {
      acc_ff[i] = nl.add_instance(dff, {dummy[i]});
      acc_q[i] = nl.instance(acc_ff[i]).fanout;
    }

    // Adder: low bits add product, upper (guard) bits propagate carry only.
    std::vector<NetId> acc_low(acc_q.begin(),
                               acc_q.begin() + product_bits);
    std::vector<NetId> sum_low = lane.add(acc_low, product);
    // sum_low has product_bits + 1 entries; the final entry is carry into
    // the guard region. Propagate through guard bits with half adders.
    std::vector<NetId> next_acc(acc_bits);
    for (unsigned i = 0; i < product_bits; ++i) next_acc[i] = sum_low[i];
    NetId carry = sum_low[product_bits];
    const CellId xor2 = library.find(CellFunction::kXor2, 0);
    const CellId and2 = library.find(CellFunction::kAnd2, 0);
    for (unsigned i = product_bits; i < acc_bits; ++i) {
      const NetId q = acc_q[i];
      next_acc[i] = nl.instance(nl.add_instance(xor2, {q, carry})).fanout;
      carry = nl.instance(nl.add_instance(and2, {q, carry})).fanout;
    }

    // Close the accumulator loop.
    for (unsigned i = 0; i < acc_bits; ++i) {
      nl.reconnect_input(acc_ff[i], 0, next_acc[i]);
    }

    // Lane outputs.
    for (unsigned i = 0; i < acc_bits; ++i) nl.mark_primary_output(acc_q[i]);
  }
  return nl;
}

MacConfig small_mac_config() {
  // ~20k placed cells: 16x16 lanes, ~1k cells per lane, 20 lanes.
  MacConfig cfg;
  cfg.operand_bits = 16;
  cfg.lanes = 20;
  cfg.pipeline_stages = 1;
  cfg.accumulator_guard_bits = 8;
  return cfg;
}

MacConfig large_mac_config() {
  // ~67k placed cells: 32x32 lanes, ~3.4k cells per lane, 20 lanes.
  MacConfig cfg;
  cfg.operand_bits = 32;
  cfg.lanes = 20;
  cfg.pipeline_stages = 2;
  cfg.accumulator_guard_bits = 8;
  return cfg;
}

}  // namespace ppat::netlist
