#include "netlist/cell_library.hpp"

#include <cmath>
#include <stdexcept>

namespace ppat::netlist {
namespace {

struct BaseCell {
  CellFunction function;
  std::uint8_t num_inputs;
  bool sequential;
  double area_um2;       // at X1
  double input_cap_ff;   // at X1
  double intrinsic_ns;   // at X1
  double drive_kohm;     // at X1
  double leakage_nw;     // at X1
  double energy_fj;      // at X1
};

// 7 nm-class base (X1) characteristics. Relative magnitudes follow standard
// library structure: INV smallest/fastest; XOR slower and larger than NAND;
// full-adder cells largest combinational; DFF dominated by clocked internals.
// Areas use a deliberately coarse site (x10 a minimal 7 nm cell) so that the
// generated MAC designs produce die spans of a few hundred um — the regime
// where the paper's DRV parameter ranges (max_Length 160-350 um,
// max_capacitance 0.05-0.20 pF, max_transition 0.10-0.35 ns) actually bind,
// as they do on the industrial designs the paper tuned.
// Leakage is sized at roughly 15-25% of total power for these designs (the
// realistic 7 nm share) — this is what prices gate upsizing in power and
// creates the delay-vs-power trade-off the tuner navigates.
constexpr BaseCell kBaseCells[] = {
    {CellFunction::kInv, 1, false, 0.65, 0.60, 0.004, 2.8, 100, 0.30},
    {CellFunction::kBuf, 1, false, 0.98, 0.55, 0.007, 2.4, 130, 0.45},
    {CellFunction::kNand2, 2, false, 0.98, 0.70, 0.006, 3.1, 150, 0.50},
    {CellFunction::kNor2, 2, false, 0.98, 0.72, 0.007, 3.6, 150, 0.52},
    {CellFunction::kAnd2, 2, false, 1.30, 0.68, 0.009, 3.0, 190, 0.62},
    {CellFunction::kOr2, 2, false, 1.30, 0.70, 0.010, 3.2, 190, 0.64},
    {CellFunction::kXor2, 2, false, 1.95, 0.95, 0.013, 3.8, 260, 0.95},
    {CellFunction::kXnor2, 2, false, 1.95, 0.95, 0.013, 3.8, 260, 0.95},
    {CellFunction::kAoi21, 3, false, 1.63, 0.75, 0.009, 3.4, 210, 0.70},
    {CellFunction::kMux2, 3, false, 2.28, 0.85, 0.012, 3.5, 280, 0.90},
    {CellFunction::kHalfAdder, 2, false, 2.60, 0.90, 0.014, 3.7, 320, 1.10},
    {CellFunction::kFullAdderSum, 3, false, 2.93, 1.00, 0.016, 3.9, 360, 1.25},
    {CellFunction::kFullAdderCarry, 3, false, 2.60, 1.00, 0.013, 3.5, 340, 1.15},
    {CellFunction::kDff, 1, true, 3.90, 0.80, 0.022, 3.0, 550, 2.40},
};

Cell scale_to_drive(const BaseCell& base, int level, const char* suffix) {
  // Doubling drive halves resistance but costs ~55% more area, ~80% more
  // input cap, and ~2.1x the leakage per step — the canonical library
  // trade-off (strong cells are fast but leaky).
  const double k = std::pow(2.0, level);          // 1, 2, 4
  const double area_k = std::pow(1.55, level);
  const double cap_k = std::pow(1.8, level);
  const double leak_k = std::pow(2.1, level);
  Cell c;
  c.name = to_string(base.function) + std::string("_") + suffix;
  c.function = base.function;
  c.num_inputs = base.num_inputs;
  c.sequential = base.sequential;
  c.area_um2 = base.area_um2 * area_k;
  c.input_cap_ff = base.input_cap_ff * cap_k;
  c.intrinsic_delay_ns = base.intrinsic_ns;  // intrinsic barely changes
  c.drive_res_kohm = base.drive_kohm / k;
  c.max_output_cap_ff = 18.0 * k;  // stronger cells may drive more load
  c.leakage_nw = base.leakage_nw * leak_k;
  c.switch_energy_fj = base.energy_fj * std::pow(1.9, level);
  return c;
}

}  // namespace

CellLibrary CellLibrary::make_default() {
  CellLibrary lib;
  lib.index_.resize(sizeof(kBaseCells) / sizeof(kBaseCells[0]));
  static const char* kSuffix[] = {"X1", "X2", "X4"};
  for (const BaseCell& base : kBaseCells) {
    const int levels = base.sequential ? 2 : 3;
    for (int level = 0; level < levels; ++level) {
      const CellId id = static_cast<CellId>(lib.cells_.size());
      lib.cells_.push_back(scale_to_drive(base, level, kSuffix[level]));
      lib.index_[static_cast<std::size_t>(base.function)].push_back(id);
    }
  }
  return lib;
}

CellId CellLibrary::find(CellFunction function, int drive_level) const {
  const auto& ids = index_.at(static_cast<std::size_t>(function));
  if (drive_level < 0 || static_cast<std::size_t>(drive_level) >= ids.size()) {
    throw std::out_of_range("CellLibrary::find: no such drive level for " +
                            to_string(function));
  }
  return ids[static_cast<std::size_t>(drive_level)];
}

int CellLibrary::drive_levels(CellFunction function) const {
  return static_cast<int>(index_.at(static_cast<std::size_t>(function)).size());
}

int CellLibrary::drive_level_of(CellId id) const {
  const CellFunction f = cell(id).function;
  const auto& ids = index_.at(static_cast<std::size_t>(f));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == id) return static_cast<int>(i);
  }
  throw std::out_of_range("CellLibrary::drive_level_of: unknown id");
}

std::optional<CellId> CellLibrary::find_by_name(
    const std::string& name) const {
  for (CellId id = 0; id < cells_.size(); ++id) {
    if (cells_[id].name == name) return id;
  }
  return std::nullopt;
}

std::string to_string(CellFunction function) {
  switch (function) {
    case CellFunction::kInv: return "INV";
    case CellFunction::kBuf: return "BUF";
    case CellFunction::kNand2: return "NAND2";
    case CellFunction::kNor2: return "NOR2";
    case CellFunction::kAnd2: return "AND2";
    case CellFunction::kOr2: return "OR2";
    case CellFunction::kXor2: return "XOR2";
    case CellFunction::kXnor2: return "XNOR2";
    case CellFunction::kAoi21: return "AOI21";
    case CellFunction::kMux2: return "MUX2";
    case CellFunction::kHalfAdder: return "HA";
    case CellFunction::kFullAdderSum: return "FAS";
    case CellFunction::kFullAdderCarry: return "FAC";
    case CellFunction::kDff: return "DFF";
  }
  return "UNKNOWN";
}

}  // namespace ppat::netlist
