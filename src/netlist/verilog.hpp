// Structural Verilog interchange for netlists.
//
// Real physical-design tools consume and emit gate-level Verilog; pdsim
// does too so its artifacts can be inspected with standard EDA tooling and
// designs can be round-tripped. The dialect is deliberately narrow — one
// module, library-cell instantiations with named port connections, scalar
// wires — which is exactly what a synthesized netlist looks like.
//
//   module mac (a0, a1, ..., y0, ...);
//     input a0, a1;
//     output y0;
//     wire n42;
//     NAND2_X1 u7 (.A(a0), .B(n42), .Y(n17));
//     DFF_X1 u9 (.D(n17), .CK(clk), .Q(n18));
//   endmodule
//
// Port naming: data inputs are A, B, C (in pin order), the output is Y;
// flip-flops use D/CK/Q. The clock net `clk` is implicit (pdsim models the
// clock domain outside the netlist graph) and is emitted for realism but
// ignored on parse.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace ppat::netlist {

/// Writes `netlist` as structural Verilog. Net n gets the name "n<id>",
/// primary inputs "pi<k>", and instance u<id>.
void write_verilog(const Netlist& netlist, const std::string& module_name,
                   std::ostream& out);

/// Convenience: to a string.
std::string to_verilog(const Netlist& netlist,
                       const std::string& module_name);

/// Parses the dialect produced by write_verilog back into a netlist over
/// `library` (cells are resolved by name). Throws std::runtime_error with a
/// line number on any syntax or semantic problem (unknown cell, undeclared
/// wire, multiply driven net, pin count mismatch).
Netlist parse_verilog(const CellLibrary& library, const std::string& text);

}  // namespace ppat::netlist
