#include "netlist/verilog.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ppat::netlist {
namespace {

/// Input pin names by position (data pins; the DFF data pin is "D").
const char* input_pin_name(const Cell& cell, std::size_t pin) {
  if (cell.sequential) return "D";
  static const char* kNames[] = {"A", "B", "C"};
  if (pin < 3) return kNames[pin];
  throw std::logic_error("input_pin_name: cells have at most 3 data pins");
}

const char* output_pin_name(const Cell& cell) {
  return cell.sequential ? "Q" : "Y";
}

std::string net_name(const Netlist& nl, NetId id,
                     const std::map<NetId, std::size_t>& pi_index) {
  if (auto it = pi_index.find(id); it != pi_index.end()) {
    return "pi" + std::to_string(it->second);
  }
  return "n" + std::to_string(id);
}

}  // namespace

void write_verilog(const Netlist& nl, const std::string& module_name,
                   std::ostream& out) {
  std::map<NetId, std::size_t> pi_index;
  for (std::size_t k = 0; k < nl.primary_inputs().size(); ++k) {
    pi_index[nl.primary_inputs()[k]] = k;
  }
  const auto pos = nl.primary_outputs();

  // Header with the port list: clk, inputs, outputs.
  out << "module " << module_name << " (clk";
  for (std::size_t k = 0; k < pi_index.size(); ++k) out << ", pi" << k;
  for (NetId po : pos) out << ", " << net_name(nl, po, pi_index);
  out << ");\n";
  out << "  input clk;\n";
  for (std::size_t k = 0; k < pi_index.size(); ++k) {
    out << "  input pi" << k << ";\n";
  }
  for (NetId po : pos) {
    if (pi_index.count(po) != 0) {
      throw std::runtime_error(
          "write_verilog: net is both primary input and output");
    }
    out << "  output " << net_name(nl, po, pi_index) << ";\n";
  }
  // Wire declarations: every connected, non-port net.
  for (NetId id = 0; id < nl.num_nets(); ++id) {
    const Net& net = nl.net(id);
    if (pi_index.count(id) != 0 || net.is_primary_output) continue;
    if (net.driver == kInvalidId && net.sinks.empty()) continue;  // floating
    out << "  wire " << net_name(nl, id, pi_index) << ";\n";
  }

  // Instances in id order.
  for (InstanceId i = 0; i < nl.num_instances(); ++i) {
    const Instance& inst = nl.instance(i);
    const Cell& cell = nl.library().cell(inst.cell);
    out << "  " << cell.name << " u" << i << " (";
    for (std::size_t pin = 0; pin < inst.fanins.size(); ++pin) {
      out << "." << input_pin_name(cell, pin) << "("
          << net_name(nl, inst.fanins[pin], pi_index) << "), ";
    }
    if (cell.sequential) out << ".CK(clk), ";
    out << "." << output_pin_name(cell) << "("
        << net_name(nl, inst.fanout, pi_index) << "));\n";
  }
  out << "endmodule\n";
}

std::string to_verilog(const Netlist& nl, const std::string& module_name) {
  std::ostringstream out;
  write_verilog(nl, module_name, out);
  return out.str();
}

namespace {

/// Minimal tokenizer for the emitted dialect.
struct Parser {
  const CellLibrary& library;
  std::istringstream in;
  std::size_t line_no = 0;
  std::string line;

  explicit Parser(const CellLibrary& lib, const std::string& text)
      : library(lib), in(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("verilog parse error at line " +
                             std::to_string(line_no) + ": " + what);
  }
};

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_names(const std::string& list,
                                     Parser& parser) {
  std::vector<std::string> names;
  std::string cur;
  for (char c : list) {
    if (c == ',') {
      const std::string name = strip(cur);
      if (name.empty()) parser.fail("empty name in list");
      names.push_back(name);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  const std::string name = strip(cur);
  if (!name.empty()) names.push_back(name);
  return names;
}

}  // namespace

Netlist parse_verilog(const CellLibrary& library, const std::string& text) {
  Parser parser(library, text);
  Netlist nl(&library);
  std::map<std::string, NetId> nets;
  std::vector<std::string> output_names;
  bool in_module = false;

  // Resolves a net name, creating a floating placeholder for forward
  // references. "clk" is the implicit clock and resolves to no net.
  auto net_for = [&](const std::string& name) -> NetId {
    auto it = nets.find(name);
    if (it != nets.end()) return it->second;
    const NetId id = nl.add_floating_net();
    nets.emplace(name, id);
    return id;
  };

  while (std::getline(parser.in, parser.line)) {
    ++parser.line_no;
    std::string s = strip(parser.line);
    if (s.empty() || s.rfind("//", 0) == 0) continue;
    if (s.rfind("module", 0) == 0) {
      in_module = true;
      continue;  // the port list repeats the declarations below
    }
    if (s == "endmodule") {
      in_module = false;
      continue;
    }
    if (!in_module) parser.fail("statement outside module");
    if (s.back() != ';') parser.fail("missing ';'");
    s.pop_back();

    auto handle_decl = [&](const std::string& keyword,
                           auto&& per_name) -> bool {
      if (s.rfind(keyword, 0) != 0) return false;
      for (const auto& name :
           split_names(s.substr(keyword.size()), parser)) {
        per_name(name);
      }
      return true;
    };

    if (handle_decl("input ", [&](const std::string& name) {
          if (name == "clk") return;
          if (nets.count(name) != 0) parser.fail("duplicate input " + name);
          nets.emplace(name, nl.add_primary_input());
        })) {
      continue;
    }
    if (handle_decl("output ", [&](const std::string& name) {
          output_names.push_back(name);
          net_for(name);
        })) {
      continue;
    }
    if (handle_decl("wire ", [&](const std::string& name) {
          net_for(name);
        })) {
      continue;
    }

    // Instance statement: CELL inst ( .PIN(net), ... )
    const std::size_t paren = s.find('(');
    if (paren == std::string::npos) parser.fail("expected instance");
    std::istringstream head(s.substr(0, paren));
    std::string cell_name, inst_name;
    head >> cell_name >> inst_name;
    if (cell_name.empty() || inst_name.empty()) {
      parser.fail("malformed instance header");
    }
    const auto cell_id = library.find_by_name(cell_name);
    if (!cell_id) parser.fail("unknown cell " + cell_name);
    const Cell& cell = library.cell(*cell_id);

    const std::size_t close = s.rfind(')');
    if (close == std::string::npos || close < paren) {
      parser.fail("missing ')'");
    }
    // Parse ".PIN(net)" pairs.
    std::map<std::string, std::string> conns;
    const std::string body = s.substr(paren + 1, close - paren - 1);
    std::size_t pos_c = 0;
    while ((pos_c = body.find('.', pos_c)) != std::string::npos) {
      const std::size_t open = body.find('(', pos_c);
      const std::size_t end = body.find(')', pos_c);
      if (open == std::string::npos || end == std::string::npos || end < open) {
        parser.fail("malformed connection in " + inst_name);
      }
      const std::string pin = strip(body.substr(pos_c + 1, open - pos_c - 1));
      const std::string net = strip(body.substr(open + 1, end - open - 1));
      if (!conns.emplace(pin, net).second) {
        parser.fail("duplicate pin " + pin + " on " + inst_name);
      }
      pos_c = end + 1;
    }

    // Assemble fanins in pin order.
    std::vector<NetId> fanins;
    for (std::size_t pin = 0; pin < cell.num_inputs; ++pin) {
      const std::string pin_name = input_pin_name(cell, pin);
      auto it = conns.find(pin_name);
      if (it == conns.end()) {
        parser.fail("instance " + inst_name + " missing pin " + pin_name);
      }
      fanins.push_back(net_for(it->second));
    }
    const std::string out_pin = output_pin_name(cell);
    auto out_it = conns.find(out_pin);
    if (out_it == conns.end()) {
      parser.fail("instance " + inst_name + " missing pin " + out_pin);
    }

    const InstanceId inst = nl.add_instance(*cell_id, fanins);
    const NetId actual_out = nl.instance(inst).fanout;
    // If the output name was forward-referenced (or declared), splice the
    // placeholder's connections onto the real fanout net.
    auto net_it = nets.find(out_it->second);
    if (net_it != nets.end()) {
      const NetId placeholder = net_it->second;
      if (nl.net(placeholder).driver != kInvalidId) {
        parser.fail("net " + out_it->second + " multiply driven");
      }
      const std::vector<SinkPin> sinks = nl.net(placeholder).sinks;
      for (const SinkPin& sink : sinks) {
        nl.reconnect_input(sink.instance, sink.pin, actual_out);
      }
      net_it->second = actual_out;
    } else {
      nets.emplace(out_it->second, actual_out);
    }
  }

  for (const auto& name : output_names) {
    auto it = nets.find(name);
    if (it == nets.end()) parser.fail("undeclared output " + name);
    nl.mark_primary_output(it->second);
  }
  nl.validate();
  return nl;
}

}  // namespace ppat::netlist
