#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppat::netlist {

NetId Netlist::add_primary_input() {
  const NetId id = static_cast<NetId>(nets_.size());
  nets_.push_back(Net{});
  primary_inputs_.push_back(id);
  return id;
}

NetId Netlist::add_floating_net() {
  const NetId id = static_cast<NetId>(nets_.size());
  nets_.push_back(Net{});
  return id;
}

void Netlist::mark_primary_output(NetId net) {
  nets_.at(net).is_primary_output = true;
}

InstanceId Netlist::add_instance(CellId cell,
                                 const std::vector<NetId>& fanins) {
  const Cell& c = library_->cell(cell);
  if (fanins.size() != c.num_inputs) {
    throw std::runtime_error("add_instance: pin count mismatch for " + c.name);
  }
  const InstanceId inst_id = static_cast<InstanceId>(instances_.size());
  const NetId out_id = static_cast<NetId>(nets_.size());
  Net out;
  out.driver = inst_id;
  nets_.push_back(std::move(out));

  Instance inst;
  inst.cell = cell;
  inst.fanins = fanins;
  inst.fanout = out_id;
  for (std::uint8_t pin = 0; pin < fanins.size(); ++pin) {
    nets_.at(fanins[pin]).sinks.push_back(SinkPin{inst_id, pin});
  }
  instances_.push_back(std::move(inst));
  return inst_id;
}

void Netlist::reconnect_input(InstanceId instance, std::uint8_t pin,
                              NetId net) {
  Instance& inst = instances_.at(instance);
  const NetId old_net = inst.fanins.at(pin);
  auto& old_sinks = nets_.at(old_net).sinks;
  const SinkPin key{instance, pin};
  old_sinks.erase(std::remove(old_sinks.begin(), old_sinks.end(), key),
                  old_sinks.end());
  inst.fanins[pin] = net;
  nets_.at(net).sinks.push_back(key);
}

void Netlist::resize_instance(InstanceId instance, CellId new_cell) {
  Instance& inst = instances_.at(instance);
  const Cell& old_c = library_->cell(inst.cell);
  const Cell& new_c = library_->cell(new_cell);
  if (old_c.num_inputs != new_c.num_inputs ||
      old_c.sequential != new_c.sequential) {
    throw std::runtime_error("resize_instance: incompatible cells " +
                             old_c.name + " -> " + new_c.name);
  }
  inst.cell = new_cell;
}

std::vector<NetId> Netlist::primary_outputs() const {
  std::vector<NetId> pos;
  for (NetId i = 0; i < nets_.size(); ++i) {
    if (nets_[i].is_primary_output) pos.push_back(i);
  }
  return pos;
}

std::vector<InstanceId> Netlist::topological_order() const {
  // Kahn's algorithm over combinational instances only. An instance's
  // combinational predecessors are the drivers of its fanin nets that are
  // themselves combinational.
  std::vector<std::uint32_t> pending(instances_.size(), 0);
  std::vector<InstanceId> ready;
  for (InstanceId i = 0; i < instances_.size(); ++i) {
    if (is_sequential(i)) continue;  // sequential cells are path boundaries
    std::uint32_t deps = 0;
    for (NetId n : instances_[i].fanins) {
      const InstanceId drv = nets_[n].driver;
      if (drv != kInvalidId && !is_sequential(drv)) ++deps;
    }
    pending[i] = deps;
    if (deps == 0) ready.push_back(i);
  }
  std::vector<InstanceId> order;
  order.reserve(instances_.size());
  std::size_t cursor = 0;
  std::size_t comb_total = num_combinational();
  while (cursor < ready.size()) {
    const InstanceId i = ready[cursor++];
    order.push_back(i);
    for (const SinkPin& sink : nets_[instances_[i].fanout].sinks) {
      if (is_sequential(sink.instance)) continue;
      if (--pending[sink.instance] == 0) ready.push_back(sink.instance);
    }
  }
  if (order.size() != comb_total) {
    throw std::runtime_error("topological_order: combinational cycle");
  }
  return order;
}

void Netlist::validate() const {
  for (InstanceId i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    const Cell& c = library_->cell(inst.cell);
    if (inst.fanins.size() != c.num_inputs) {
      throw std::runtime_error("validate: pin count mismatch at instance " +
                               std::to_string(i));
    }
    if (inst.fanout >= nets_.size() || nets_[inst.fanout].driver != i) {
      throw std::runtime_error("validate: fanout back-reference broken at " +
                               std::to_string(i));
    }
    for (std::uint8_t pin = 0; pin < inst.fanins.size(); ++pin) {
      const NetId n = inst.fanins[pin];
      if (n >= nets_.size()) {
        throw std::runtime_error("validate: dangling fanin at instance " +
                                 std::to_string(i));
      }
      const auto& sinks = nets_[n].sinks;
      if (std::find(sinks.begin(), sinks.end(), SinkPin{i, pin}) ==
          sinks.end()) {
        throw std::runtime_error("validate: sink list missing pin at " +
                                 std::to_string(i));
      }
    }
  }
  for (NetId n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    if (net.driver != kInvalidId) {
      if (net.driver >= instances_.size() ||
          instances_[net.driver].fanout != n) {
        throw std::runtime_error("validate: driver back-reference broken at " +
                                 std::to_string(n));
      }
    }
    for (const SinkPin& sink : net.sinks) {
      if (sink.instance >= instances_.size() ||
          instances_[sink.instance].fanins.size() <= sink.pin ||
          instances_[sink.instance].fanins[sink.pin] != n) {
        throw std::runtime_error("validate: sink back-reference broken at " +
                                 std::to_string(n));
      }
    }
  }
  (void)topological_order();  // throws on combinational cycles
}

double Netlist::total_cell_area() const {
  double area = 0.0;
  for (const Instance& inst : instances_) {
    area += library_->cell(inst.cell).area_um2;
  }
  return area;
}

std::size_t Netlist::num_sequential() const {
  std::size_t count = 0;
  for (InstanceId i = 0; i < instances_.size(); ++i) {
    if (is_sequential(i)) ++count;
  }
  return count;
}

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats stats;
  stats.instances = netlist.num_instances();
  stats.nets = netlist.num_nets();
  stats.sequential = netlist.num_sequential();
  stats.primary_inputs = netlist.primary_inputs().size();
  stats.primary_outputs = netlist.primary_outputs().size();
  stats.total_area_um2 = netlist.total_cell_area();

  std::size_t total_sinks = 0;
  for (const Net& n : netlist.nets()) {
    total_sinks += n.sinks.size();
    stats.max_fanout = std::max(stats.max_fanout, n.sinks.size());
  }
  stats.avg_fanout =
      stats.nets ? static_cast<double>(total_sinks) /
                       static_cast<double>(stats.nets)
                 : 0.0;

  // Longest combinational path in gate counts.
  std::vector<std::size_t> depth(netlist.num_instances(), 0);
  for (InstanceId i : netlist.topological_order()) {
    std::size_t d = 1;
    for (NetId n : netlist.instance(i).fanins) {
      const InstanceId drv = netlist.net(n).driver;
      if (drv != kInvalidId && !netlist.is_sequential(drv)) {
        d = std::max(d, depth[drv] + 1);
      }
    }
    depth[i] = d;
    stats.max_logic_depth = std::max(stats.max_logic_depth, d);
  }
  return stats;
}

}  // namespace ppat::netlist
