// Gate-level netlist data model: instances of library cells connected by
// nets, with explicit primary inputs/outputs and a dedicated clock domain.
//
// Conventions (chosen to keep downstream algorithms simple and cache-friendly):
//   - Every cell has exactly one output pin; multi-output functions (e.g. a
//     full adder) are represented as two cells sharing inputs, which mirrors
//     how such macros decompose in simple standard-cell libraries.
//   - Nets are single-driver. A net's driver is either an instance or a
//     primary input.
//   - The clock is not modeled as a net in the graph; sequential instances
//     are flagged and clock effects (CTS buffers, clock power, skew) are
//     modeled by the flow's CTS stage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cell_library.hpp"

namespace ppat::netlist {

using InstanceId = std::uint32_t;
using NetId = std::uint32_t;
inline constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

/// A sink connection: input pin `pin` of instance `instance`.
struct SinkPin {
  InstanceId instance = kInvalidId;
  std::uint8_t pin = 0;
  friend bool operator==(const SinkPin&, const SinkPin&) = default;
};

/// Single-driver net.
struct Net {
  /// Driving instance, or kInvalidId when driven by a primary input.
  InstanceId driver = kInvalidId;
  std::vector<SinkPin> sinks;
  bool is_primary_output = false;
};

/// A placed cell instance.
struct Instance {
  CellId cell = 0;
  /// Input nets by pin index; size == library cell's num_inputs.
  std::vector<NetId> fanins;
  /// The single output net.
  NetId fanout = kInvalidId;
};

/// Mutable gate-level netlist. Invariants (checked by validate()):
///   - pin counts match the library;
///   - every net has a consistent driver back-reference;
///   - no combinational cycles.
class Netlist {
 public:
  explicit Netlist(const CellLibrary* library) : library_(library) {}

  const CellLibrary& library() const { return *library_; }

  /// Creates a net driven by a primary input. Returns its id.
  NetId add_primary_input();

  /// Creates a driverless internal net. Used as a placeholder when building
  /// sequential feedback loops (create FFs on a floating D, then reconnect);
  /// the net is expected to end up with no connections.
  NetId add_floating_net();

  /// Marks a net as observed at a primary output.
  void mark_primary_output(NetId net);

  /// Creates an instance of `cell` reading `fanins`; allocates and returns
  /// the instance. Its fanout net is created automatically.
  InstanceId add_instance(CellId cell, const std::vector<NetId>& fanins);

  /// Re-points input pin `pin` of `instance` from its current net to `net`,
  /// updating both nets' sink lists. Used by buffering/DRV repair.
  void reconnect_input(InstanceId instance, std::uint8_t pin, NetId net);

  /// Replaces the cell of an instance with another cell of the same function
  /// arity (used by gate sizing).
  void resize_instance(InstanceId instance, CellId new_cell);

  std::size_t num_instances() const { return instances_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  const Instance& instance(InstanceId id) const { return instances_.at(id); }
  const Net& net(NetId id) const { return nets_.at(id); }
  const std::vector<Instance>& instances() const { return instances_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<NetId>& primary_inputs() const { return primary_inputs_; }
  std::vector<NetId> primary_outputs() const;

  /// True if the instance is sequential (flip-flop).
  bool is_sequential(InstanceId id) const {
    return library_->cell(instances_[id].cell).sequential;
  }

  /// Topological order over combinational logic: sequential outputs and
  /// primary inputs are sources; sequential inputs and primary outputs are
  /// sinks. Returns instance ids such that every combinational instance
  /// appears after all its combinational fanin drivers.
  /// Throws std::runtime_error if a combinational cycle exists.
  std::vector<InstanceId> topological_order() const;

  /// Checks all structural invariants; throws std::runtime_error with a
  /// description on the first violation.
  void validate() const;

  /// Total cell area in um^2.
  double total_cell_area() const;

  /// Counts of sequential / combinational instances.
  std::size_t num_sequential() const;
  std::size_t num_combinational() const {
    return num_instances() - num_sequential();
  }

 private:
  const CellLibrary* library_;
  std::vector<Instance> instances_;
  std::vector<Net> nets_;
  std::vector<NetId> primary_inputs_;
};

/// Summary statistics used in reports and tests.
struct NetlistStats {
  std::size_t instances = 0;
  std::size_t nets = 0;
  std::size_t sequential = 0;
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  double total_area_um2 = 0.0;
  double avg_fanout = 0.0;
  std::size_t max_fanout = 0;
  std::size_t max_logic_depth = 0;  ///< longest combinational path (gates)
};

NetlistStats compute_stats(const Netlist& netlist);

}  // namespace ppat::netlist
