// Standard-cell library model.
//
// Substitutes for the proprietary 7 nm PDK the paper's benchmarks used. The
// library is synthetic but dimensionally honest: areas in um^2, caps in fF,
// delays in ns, leakage in nW, with values patterned on published 7 nm-class
// data and with the relationships that drive real PPA trade-offs preserved:
//   - higher drive strength => lower drive resistance, but more area,
//     more input capacitance, and more leakage;
//   - sequential cells are larger and leakier than combinational ones;
//   - complex gates (FA) trade area for logic depth.
// Timing uses a scalable linear-delay (slew- and load-dependent) model, a
// simplification of NLDM lookup tables that keeps the same qualitative
// behaviour: delay grows with load and input slew, strong cells degrade less.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ppat::netlist {

/// Logic function family of a cell (drive strengths are separate cells).
enum class CellFunction : std::uint8_t {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kAoi21,   // !(a*b + c)
  kMux2,
  kHalfAdder,  // 2-in, outputs: sum (pin 0 cell), carry handled as two cells
  kFullAdderSum,
  kFullAdderCarry,
  kDff,     // D flip-flop: inputs {D}, clocked
};

/// One library cell (a function at a drive strength).
struct Cell {
  std::string name;          ///< e.g. "NAND2_X2"
  CellFunction function;
  std::uint8_t num_inputs;   ///< data inputs (clock pin excluded)
  bool sequential;           ///< true for flip-flops
  double area_um2;           ///< placement footprint
  double input_cap_ff;       ///< capacitance per data input pin
  double intrinsic_delay_ns; ///< unloaded delay
  double drive_res_kohm;     ///< effective drive resistance (delay = R*C)
  double max_output_cap_ff;  ///< DRV limit used by max_capacitance repair
  double leakage_nw;         ///< static leakage power
  double switch_energy_fj;   ///< internal energy per output toggle
};

using CellId = std::uint32_t;

/// Immutable collection of cells with lookup by function and drive level.
class CellLibrary {
 public:
  /// Builds the default synthetic 7 nm-class library: every combinational
  /// function at drive strengths X1, X2, X4 plus DFF at X1, X2.
  static CellLibrary make_default();

  const Cell& cell(CellId id) const { return cells_.at(id); }
  std::size_t size() const { return cells_.size(); }

  /// Cell id for a function at a drive level (0 = X1, 1 = X2, 2 = X4).
  /// Throws std::out_of_range if the combination does not exist.
  CellId find(CellFunction function, int drive_level) const;

  /// Number of drive levels available for the function.
  int drive_levels(CellFunction function) const;

  /// Drive level of a given cell id (0-based).
  int drive_level_of(CellId id) const;

  /// Cell id by exact name ("NAND2_X1"), or nullopt when absent.
  std::optional<CellId> find_by_name(const std::string& name) const;

  /// All cells, in id order.
  const std::vector<Cell>& cells() const { return cells_; }

 private:
  std::vector<Cell> cells_;
  // index_[function] -> cell ids by drive level.
  std::vector<std::vector<CellId>> index_;
};

/// Human-readable function name ("NAND2", "DFF", ...).
std::string to_string(CellFunction function);

}  // namespace ppat::netlist
