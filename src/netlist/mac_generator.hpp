// Generator for multiply-accumulate (MAC) designs.
//
// The paper's four benchmarks derive from two industrial MAC designs
// (~20k placed cells and ~67k placed cells, §4.1). This generator produces
// structurally faithful stand-ins: a multi-lane dot-product MAC unit —
// per lane, an unsigned Wallace-tree multiplier (AND-gate partial products,
// 3:2/2:2 compression with full/half adders, ripple carry-propagate final
// adder), optional pipeline register banks, and an accumulator register
// loop. Lane count and operand width scale the cell count to the paper's
// design sizes.
#pragma once

#include "netlist/netlist.hpp"

namespace ppat::netlist {

struct MacConfig {
  unsigned operand_bits = 16;   ///< multiplier operand width (>= 2)
  unsigned lanes = 4;           ///< parallel MAC lanes
  unsigned pipeline_stages = 1; ///< register banks between multiplier and
                                ///< accumulator (0 = none)
  unsigned accumulator_guard_bits = 8;  ///< accumulator headroom bits
};

/// Builds a MAC netlist; the result passes Netlist::validate().
Netlist generate_mac(const CellLibrary& library, const MacConfig& config);

/// Preset matching the paper's small MAC (~20k cells after placement).
MacConfig small_mac_config();

/// Preset matching the paper's large MAC (~67k cells after placement).
MacConfig large_mac_config();

}  // namespace ppat::netlist
