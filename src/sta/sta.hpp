// Static timing analysis over a placed netlist.
//
// Substitutes for Innovus' timer in the pdsim flow. The delay model is a
// deliberately small but mechanistically honest subset of an NLDM flow:
//   - wire parasitics are lumped per net from placement HPWL
//     (R = r_per_um * L * rc_factor, C = c_per_um * L * rc_factor), where
//     rc_factor is the paper's `place_rcfactor` tool parameter;
//   - gate delay = intrinsic + drive_resistance * load + slew pushout;
//   - output slew grows with drive resistance * load;
//   - wire delay to a sink uses the Elmore-style 0.5*R_net*C_net + R_net*C_pin;
//   - paths start at primary inputs / FF clock-to-Q and end at primary
//     outputs / FF D pins; setup, clock uncertainty, and I/O delays are
//     constants of the model.
// Units: ns, kOhm, fF (1 kOhm * 1 fF = 1e-3 ns).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "place/placer.hpp"

namespace ppat::sta {

struct TimingOptions {
  double clock_period_ns = 1.0;
  double clock_uncertainty_ns = 0.05;
  double rc_factor = 1.0;          ///< wire RC scaling (place_rcfactor)
  double input_delay_ns = 0.05;    ///< arrival at primary inputs
  double output_margin_ns = 0.05;  ///< required-time margin at outputs
  double setup_ns = 0.030;         ///< FF setup time
  double clk_to_q_ns = 0.040;      ///< FF clock-to-Q delay
  double min_slew_ns = 0.008;      ///< floor on propagated slew
};

/// Lumped per-net parasitics.
struct WireParasitics {
  std::vector<double> res_kohm;  ///< per-net wire resistance
  std::vector<double> cap_ff;    ///< per-net wire capacitance
};

/// Per-um wire constants (before rc_factor scaling), matched to the die
/// scale produced by the cell library (see cell_library.cpp).
inline constexpr double kWireResKohmPerUm = 0.0040;
inline constexpr double kWireCapFfPerUm = 0.35;

/// Extracts parasitics from placement HPWL. `rc_factor` scales both R and C.
WireParasitics extract_parasitics(const netlist::Netlist& netlist,
                                  const std::vector<double>& net_hpwl_um,
                                  double rc_factor);

/// Results of one timing run.
struct TimingReport {
  double wns_ns = 0.0;             ///< worst negative slack (<= 0 when failing)
  double tns_ns = 0.0;             ///< total negative slack (sum of violations)
  double critical_delay_ns = 0.0;  ///< worst endpoint data-path delay
  std::size_t violating_endpoints = 0;
  std::size_t endpoints = 0;

  // Per-net signal state (indexed by NetId).
  std::vector<double> arrival_ns;  ///< latest arrival at the net
  std::vector<double> slew_ns;     ///< slew at the net (driver output)
  std::vector<double> load_ff;     ///< total load seen by the net's driver
};

/// Runs one STA pass. `net_hpwl_um` and `parasitics` must be sized to the
/// netlist's current net count.
TimingReport run_sta(const netlist::Netlist& netlist,
                     const WireParasitics& parasitics,
                     const TimingOptions& options);

/// Total load (wire cap + sink pin caps) seen by the driver of `net`.
double net_load_ff(const netlist::Netlist& netlist,
                   const WireParasitics& parasitics, netlist::NetId net);

/// One timing path: the endpoint and the chain of nets from a launch point
/// (primary input or FF output) to it, worst-arrival first.
struct TimingPath {
  double arrival_ns = 0.0;  ///< endpoint data arrival
  double slack_ns = 0.0;
  /// Nets along the path, launch first, endpoint's input net last.
  std::vector<netlist::NetId> nets;
  /// True when the endpoint is a flip-flop D pin (else a primary output).
  bool ends_at_flop = false;
};

/// Extracts the `k` worst paths (by endpoint slack) from a finished timing
/// run by walking worst-arrival fanins backwards — the standard
/// report_timing operation. `report` must come from run_sta on the same
/// netlist/parasitics.
std::vector<TimingPath> worst_paths(const netlist::Netlist& netlist,
                                    const WireParasitics& parasitics,
                                    const TimingOptions& options,
                                    const TimingReport& report,
                                    std::size_t k);

}  // namespace ppat::sta
