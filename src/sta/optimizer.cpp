#include "sta/optimizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ppat::sta {
namespace {

using netlist::CellFunction;
using netlist::InstanceId;
using netlist::kInvalidId;
using netlist::Netlist;
using netlist::NetId;
using netlist::SinkPin;

/// Bounding-box HPWL over instance endpoints (I/O anchors are ignored here;
/// repair targets internal high-fanout nets, where the approximation is
/// exact).
double recompute_hpwl(const Netlist& nl, const std::vector<double>& x,
                      const std::vector<double>& y, NetId net) {
  double lx = 1e30, ly = 1e30, hx = -1e30, hy = -1e30;
  auto extend = [&](InstanceId i) {
    lx = std::min(lx, x[i]);
    ly = std::min(ly, y[i]);
    hx = std::max(hx, x[i]);
    hy = std::max(hy, y[i]);
  };
  const auto& n = nl.net(net);
  if (n.driver != kInvalidId) extend(n.driver);
  for (const auto& sink : n.sinks) extend(sink.instance);
  if (hx < lx) return 0.0;
  return (hx - lx) + (hy - ly);
}

struct RepairContext {
  Netlist& nl;
  std::vector<double>& x;
  std::vector<double>& y;
  std::vector<double>& hpwl;
  netlist::CellId buf_cell;

  /// Moves `group` (a subset of `net`'s sinks) behind a new buffer placed at
  /// the group's centroid. Returns the buffer instance. Takes the group by
  /// value: callers often pass (a subset of) the net's own sink list, which
  /// this function mutates.
  InstanceId insert_buffer(NetId net, const std::vector<SinkPin> group) {
    assert(!group.empty());
    double cx = 0.0, cy = 0.0;
    for (const auto& s : group) {
      cx += x[s.instance];
      cy += y[s.instance];
    }
    cx /= static_cast<double>(group.size());
    cy /= static_cast<double>(group.size());

    const InstanceId buf = nl.add_instance(buf_cell, {net});
    x.push_back(cx);
    y.push_back(cy);
    const NetId buf_out = nl.instance(buf).fanout;
    for (const auto& s : group) {
      nl.reconnect_input(s.instance, s.pin, buf_out);
    }
    hpwl.push_back(0.0);
    hpwl[buf_out] = recompute_hpwl(nl, x, y, buf_out);
    hpwl[net] = recompute_hpwl(nl, x, y, net);
    return buf;
  }
};

}  // namespace

OptimizerResult optimize(Netlist& nl, std::vector<double>& x,
                         std::vector<double>& y,
                         std::vector<double>& net_hpwl_um,
                         const TimingOptions& topt,
                         const OptimizerOptions& opt) {
  assert(x.size() == nl.num_instances());
  assert(net_hpwl_um.size() == nl.num_nets());

  OptimizerResult result;
  const auto& lib = nl.library();
  RepairContext ctx{nl, x, y, net_hpwl_um,
                    lib.find(CellFunction::kBuf, 1)};

  // ---- DRV repair passes ----
  for (int pass = 0; pass < opt.max_repair_passes; ++pass) {
    WireParasitics par = extract_parasitics(nl, net_hpwl_um, topt.rc_factor);
    TimingReport timing = run_sta(nl, par, topt);
    std::size_t violations = 0;

    const std::size_t nets_at_start = nl.num_nets();
    for (NetId net = 0; net < nets_at_start; ++net) {
      const auto& n = nl.net(net);
      if (n.driver == kInvalidId && n.sinks.empty()) continue;

      const std::size_t fanout = n.sinks.size();
      const double load = timing.load_ff[net];
      const double slew = timing.slew_ns[net];
      const double length = net_hpwl_um[net];

      const bool v_fanout = fanout > opt.limits.max_fanout;
      const bool v_cap = load > opt.limits.max_capacitance_ff;
      const bool v_slew = slew > opt.limits.max_transition_ns;
      const bool v_len = length > opt.limits.max_length_um;
      if (!(v_fanout || v_cap || v_slew || v_len)) continue;
      ++violations;
      if (pass == 0) ++result.initial_drv_violations;

      if (v_fanout) {
        // Split sinks into ceil(fanout / max_fanout) groups behind buffers,
        // keeping one group directly on the net.
        const std::size_t groups =
            (fanout + opt.limits.max_fanout - 1) / opt.limits.max_fanout;
        if (groups >= 2) {
          const std::vector<SinkPin> sinks = n.sinks;  // copy: we mutate
          const std::size_t per = (sinks.size() + groups - 1) / groups;
          for (std::size_t g = 1; g < groups; ++g) {
            const std::size_t begin = g * per;
            if (begin >= sinks.size()) break;
            const std::size_t end = std::min(sinks.size(), begin + per);
            std::vector<SinkPin> group(sinks.begin() + begin,
                                       sinks.begin() + end);
            ctx.insert_buffer(net, group);
            ++result.buffers_inserted;
          }
          continue;  // re-examine derived nets next pass
        }
      }

      if (v_cap && n.sinks.size() >= 2) {
        // Overloaded net: move half the sinks behind a buffer. (Upsizing the
        // driver would not reduce the load.)
        const std::vector<SinkPin> sinks = n.sinks;
        std::vector<SinkPin> half(sinks.begin() + sinks.size() / 2,
                                  sinks.end());
        ctx.insert_buffer(net, half);
        ++result.buffers_inserted;
        continue;
      }

      if (v_cap || v_slew) {
        // Slew violation (or a single-sink overloaded net): upsize the
        // driver; fall back to splitting the load.
        const InstanceId drv = n.driver;
        bool upsized = false;
        if (drv != kInvalidId) {
          const CellFunction f = lib.cell(nl.instance(drv).cell).function;
          const int level = lib.drive_level_of(nl.instance(drv).cell);
          if (level + 1 < lib.drive_levels(f)) {
            nl.resize_instance(drv, lib.find(f, level + 1));
            ++result.cells_upsized;
            upsized = true;
          }
        }
        if (!upsized && n.sinks.size() >= 2) {
          const std::vector<SinkPin> sinks = n.sinks;
          std::vector<SinkPin> half(sinks.begin() + sinks.size() / 2,
                                    sinks.end());
          ctx.insert_buffer(net, half);
          ++result.buffers_inserted;
        }
        continue;
      }

      if (v_len && !n.sinks.empty()) {
        // Long net: buffer all sinks from a repeater at their centroid,
        // splitting the RC in two.
        ctx.insert_buffer(net, n.sinks);
        ++result.buffers_inserted;
      }
    }

    if (violations == 0) {
      result.remaining_drv_violations = 0;
      break;
    }
    result.remaining_drv_violations = violations;
  }

  // ---- Timing-driven sizing ----
  // Upsize drivers of near-critical nets until the worst slack satisfies the
  // allowance or the pass budget is exhausted.
  WireParasitics par = extract_parasitics(nl, net_hpwl_um, topt.rc_factor);
  TimingReport timing = run_sta(nl, par, topt);
  for (int pass = 0; pass < opt.sizing_passes; ++pass) {
    if (timing.wns_ns >= -opt.max_allowed_delay_ns) break;
    // The near-critical window widens with timing pressure (violation as a
    // multiple of the clock period): a tighter frequency target makes the
    // sizer touch more of the design, exactly like raising the effort of a
    // real flow's optimizer. max_AllowedDelay relieves the pressure.
    const double violation =
        std::max(0.0, -(timing.wns_ns + opt.max_allowed_delay_ns));
    const double pressure = violation / std::max(1e-9, topt.clock_period_ns);
    const double window = std::clamp(0.03 + 0.025 * pressure, 0.03, 0.30);
    const double threshold = timing.critical_delay_ns * (1.0 - window);
    std::size_t upsized = 0;
    for (InstanceId i = 0; i < nl.num_instances(); ++i) {
      const NetId out = nl.instance(i).fanout;
      if (timing.arrival_ns[out] < threshold) continue;
      const CellFunction f = lib.cell(nl.instance(i).cell).function;
      const int level = lib.drive_level_of(nl.instance(i).cell);
      if (level + 1 >= lib.drive_levels(f)) continue;
      nl.resize_instance(i, lib.find(f, level + 1));
      ++upsized;
    }
    result.cells_upsized += upsized;
    if (upsized == 0) break;
    par = extract_parasitics(nl, net_hpwl_um, topt.rc_factor);
    timing = run_sta(nl, par, topt);
  }
  result.final_timing = std::move(timing);
  return result;
}

}  // namespace ppat::sta
