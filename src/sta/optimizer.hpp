// Post-placement netlist optimization: DRV repair and timing-driven sizing.
//
// This is where most of the paper's tuned parameters bite in a real flow:
//   - max_fanout / max_capacitance / max_transition / max_Length are DRV
//     limits; violations are repaired by buffer insertion and driver
//     upsizing, which costs area and power but improves (or protects) delay;
//   - tighter limits => more buffers => more area/power, shorter local wires;
//   - flowEffort / timing_effort control the repair and sizing iteration
//     budgets;
//   - max_AllowedDelay relaxes the timing target the sizer chases: a nonzero
//     allowance stops optimization early, saving area/power at a delay cost.
//
// The optimizer mutates the netlist (adds buffers, resizes cells) and the
// placement coordinate arrays in lock-step, and keeps the per-net HPWL
// vector consistent for nets it touches.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace ppat::sta {

/// Design-rule limits (units: ns, fF, count, um).
struct DrvLimits {
  double max_transition_ns = 0.25;
  double max_capacitance_ff = 120.0;
  unsigned max_fanout = 32;
  double max_length_um = 250.0;
};

struct OptimizerOptions {
  DrvLimits limits;
  int max_repair_passes = 3;     ///< DRV repair sweeps
  int sizing_passes = 3;         ///< timing-driven sizing rounds
  double max_allowed_delay_ns = 0.0;  ///< tolerated WNS violation
};

struct OptimizerResult {
  std::size_t buffers_inserted = 0;
  std::size_t cells_upsized = 0;
  std::size_t initial_drv_violations = 0;
  std::size_t remaining_drv_violations = 0;
  TimingReport final_timing;  ///< STA after the last optimization pass
};

/// Optimizes in place. `x`, `y` are per-instance coordinates (grown when
/// buffers are added); `net_hpwl_um` is per-net wirelength (grown/updated).
/// All three must be sized to the netlist on entry.
OptimizerResult optimize(netlist::Netlist& netlist, std::vector<double>& x,
                         std::vector<double>& y,
                         std::vector<double>& net_hpwl_um,
                         const TimingOptions& timing_options,
                         const OptimizerOptions& options);

}  // namespace ppat::sta
