#include "sta/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ppat::sta {

using netlist::InstanceId;
using netlist::kInvalidId;
using netlist::Netlist;
using netlist::NetId;

WireParasitics extract_parasitics(const Netlist& nl,
                                  const std::vector<double>& net_hpwl_um,
                                  double rc_factor) {
  assert(net_hpwl_um.size() == nl.num_nets());
  WireParasitics p;
  p.res_kohm.resize(nl.num_nets());
  p.cap_ff.resize(nl.num_nets());
  for (NetId i = 0; i < nl.num_nets(); ++i) {
    const double len = net_hpwl_um[i];
    p.res_kohm[i] = kWireResKohmPerUm * len * rc_factor;
    p.cap_ff[i] = kWireCapFfPerUm * len * rc_factor;
  }
  return p;
}

double net_load_ff(const Netlist& nl, const WireParasitics& parasitics,
                   NetId net) {
  double load = parasitics.cap_ff[net];
  for (const auto& sink : nl.net(net).sinks) {
    load += nl.library().cell(nl.instance(sink.instance).cell).input_cap_ff;
  }
  return load;
}

TimingReport run_sta(const Netlist& nl, const WireParasitics& parasitics,
                     const TimingOptions& opt) {
  TimingReport r;
  const std::size_t nets = nl.num_nets();
  r.arrival_ns.assign(nets, 0.0);
  r.slew_ns.assign(nets, opt.min_slew_ns);
  r.load_ff.assign(nets, 0.0);
  for (NetId i = 0; i < nets; ++i) {
    r.load_ff[i] = net_load_ff(nl, parasitics, i);
  }

  // Launch points: primary inputs and FF outputs.
  for (NetId pi : nl.primary_inputs()) {
    r.arrival_ns[pi] = opt.input_delay_ns;
    r.slew_ns[pi] = opt.min_slew_ns * 2.0;
  }
  for (InstanceId i = 0; i < nl.num_instances(); ++i) {
    if (!nl.is_sequential(i)) continue;
    const NetId q = nl.instance(i).fanout;
    const auto& cell = nl.library().cell(nl.instance(i).cell);
    // Clock-to-Q pushed out by the FF's own drive on its load.
    const double delay =
        opt.clk_to_q_ns + cell.drive_res_kohm * r.load_ff[q] * 1e-3;
    r.arrival_ns[q] = delay;
    r.slew_ns[q] = std::max(
        opt.min_slew_ns, 2.0 * cell.drive_res_kohm * r.load_ff[q] * 1e-3);
  }

  // Forward propagation in topological order over combinational cells.
  // Arrival on a net = arrival at driver's worst input + gate delay + the
  // lumped wire delay (applied once per net: 0.5 * R_net * C_net plus the
  // driver-resistance term is already in gate delay; per-sink pin RC adds
  // R_net * C_pin, approximated by using the full net R with the average pin
  // cap — adequate at this model's fidelity).
  for (InstanceId i : nl.topological_order()) {
    const auto& inst = nl.instance(i);
    const auto& cell = nl.library().cell(inst.cell);
    double worst_in = 0.0;
    double worst_slew = opt.min_slew_ns;
    for (NetId fanin : inst.fanins) {
      // Wire delay from the fanin net's driver to this pin.
      const double wire_delay =
          (0.5 * parasitics.res_kohm[fanin] * parasitics.cap_ff[fanin] +
           parasitics.res_kohm[fanin] * cell.input_cap_ff) *
          1e-3;
      const double arr = r.arrival_ns[fanin] + wire_delay;
      if (arr > worst_in) worst_in = arr;
      worst_slew = std::max(worst_slew, r.slew_ns[fanin]);
    }
    const NetId out = inst.fanout;
    const double load = r.load_ff[out];
    // Gate delay: intrinsic + RC + slew pushout (input slew degrades delay).
    const double gate_delay = cell.intrinsic_delay_ns +
                              cell.drive_res_kohm * load * 1e-3 +
                              0.35 * worst_slew;
    r.arrival_ns[out] = worst_in + gate_delay;
    // Output slew: driven by this cell's strength on its load, with partial
    // propagation of the input slew through the gate.
    r.slew_ns[out] =
        std::max(opt.min_slew_ns,
                 2.0 * cell.drive_res_kohm * load * 1e-3 + 0.25 * worst_slew);
  }

  // Endpoint checks.
  const double required_ff =
      opt.clock_period_ns - opt.setup_ns - opt.clock_uncertainty_ns;
  const double required_po = opt.clock_period_ns - opt.output_margin_ns;
  double wns = 1e30;
  auto check_endpoint = [&](double arrival, double required) {
    ++r.endpoints;
    r.critical_delay_ns = std::max(r.critical_delay_ns, arrival);
    const double slack = required - arrival;
    wns = std::min(wns, slack);
    if (slack < 0.0) {
      ++r.violating_endpoints;
      r.tns_ns += slack;
    }
  };
  for (InstanceId i = 0; i < nl.num_instances(); ++i) {
    if (!nl.is_sequential(i)) continue;
    const auto& inst = nl.instance(i);
    const auto& cell = nl.library().cell(inst.cell);
    for (NetId fanin : inst.fanins) {
      const double wire_delay =
          (0.5 * parasitics.res_kohm[fanin] * parasitics.cap_ff[fanin] +
           parasitics.res_kohm[fanin] * cell.input_cap_ff) *
          1e-3;
      check_endpoint(r.arrival_ns[fanin] + wire_delay, required_ff);
    }
  }
  for (NetId po : nl.primary_outputs()) {
    check_endpoint(r.arrival_ns[po], required_po);
  }
  r.wns_ns = (r.endpoints == 0) ? 0.0 : wns;
  return r;
}

std::vector<TimingPath> worst_paths(const Netlist& nl,
                                    const WireParasitics& parasitics,
                                    const TimingOptions& opt,
                                    const TimingReport& report,
                                    std::size_t k) {
  // Gather endpoints: (arrival-at-endpoint, required, last net, is-flop).
  struct Endpoint {
    double arrival;
    double required;
    NetId net;
    bool flop;
  };
  std::vector<Endpoint> endpoints;
  const double required_ff =
      opt.clock_period_ns - opt.setup_ns - opt.clock_uncertainty_ns;
  const double required_po = opt.clock_period_ns - opt.output_margin_ns;
  for (InstanceId i = 0; i < nl.num_instances(); ++i) {
    if (!nl.is_sequential(i)) continue;
    const auto& cell = nl.library().cell(nl.instance(i).cell);
    for (NetId fanin : nl.instance(i).fanins) {
      const double wire_delay =
          (0.5 * parasitics.res_kohm[fanin] * parasitics.cap_ff[fanin] +
           parasitics.res_kohm[fanin] * cell.input_cap_ff) *
          1e-3;
      endpoints.push_back(
          {report.arrival_ns[fanin] + wire_delay, required_ff, fanin, true});
    }
  }
  for (NetId po : nl.primary_outputs()) {
    endpoints.push_back({report.arrival_ns[po], required_po, po, false});
  }
  std::sort(endpoints.begin(), endpoints.end(),
            [](const Endpoint& a, const Endpoint& b) {
              return (a.required - a.arrival) < (b.required - b.arrival);
            });
  if (endpoints.size() > k) endpoints.resize(k);

  // Backtrack each endpoint along worst-arrival fanins to a launch point.
  std::vector<TimingPath> paths;
  for (const Endpoint& ep : endpoints) {
    TimingPath path;
    path.arrival_ns = ep.arrival;
    path.slack_ns = ep.required - ep.arrival;
    path.ends_at_flop = ep.flop;
    NetId net = ep.net;
    for (;;) {
      path.nets.push_back(net);
      const InstanceId drv = nl.net(net).driver;
      if (drv == kInvalidId || nl.is_sequential(drv)) break;  // launch point
      // Worst fanin by arrival (ties: first).
      const auto& fanins = nl.instance(drv).fanins;
      NetId worst = fanins.front();
      for (NetId f : fanins) {
        if (report.arrival_ns[f] > report.arrival_ns[worst]) worst = f;
      }
      net = worst;
    }
    std::reverse(path.nets.begin(), path.nets.end());
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace ppat::sta
