// Dense row-major matrix/vector types sized for Gaussian-process work
// (hundreds to a few thousand rows). No external BLAS: the reproduction must
// build offline, and GP fitting cost is dominated by O(n^3) Cholesky on
// n <= ~1500, well within scalar-code budgets.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace ppat::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  Matrix transposed() const;

  /// this * other; inner dimensions must agree.
  Matrix operator*(const Matrix& other) const;

  /// Matrix-vector product; v.size() must equal cols().
  Vector operator*(const Vector& v) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;

  /// Adds `value` to every diagonal entry (square matrices only).
  void add_to_diagonal(double value);

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- Vector helpers (free functions on linalg::Vector) ----

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);  ///< Euclidean norm.
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector operator*(double s, const Vector& a);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace ppat::linalg
