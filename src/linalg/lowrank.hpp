// Woodbury-factored low-rank-plus-diagonal SPD systems — the numerical core
// of the scalable (Nyström/DTC) surrogate tier.
//
// The exact GP works with the n x n system K + D (D diagonal noise), whose
// factorization is O(n^3). The approximate tier replaces K by the Nyström
// form Q = U^T Kmm^{-1} U built from m << n inducing rows U = K(Z, X), and
// every quantity the surrogate needs — log-determinant, quadratic form,
// posterior weights, predictive-variance solves — follows from two m x m
// Cholesky factorizations via the Woodbury identity and the matrix
// determinant lemma:
//
//     A               = Kmm + U D^{-1} U^T
//     (Q + D)^{-1}    = D^{-1} - D^{-1} U^T A^{-1} U D^{-1}
//     logdet(Q + D)   = logdet(A) - logdet(Kmm) + sum_i log d_i
//
// Construction costs O(n m^2) (dominated by the A build) plus O(m^3) for the
// factorizations; appending one observation is O(m^2) accumulation plus an
// O(m^3) refactorization. Every parallel loop assigns each output element to
// exactly one task and computes it with a partition-independent left fold, so
// results are bit-identical for any thread count (the determinism contract
// the journal's bit-identical resume relies on).
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace ppat::linalg {

/// Factorization of M = U^T Kmm^{-1} U + diag(d) (n x n, never formed),
/// where U is m x n with rows indexed by inducing points. Carries the
/// right-hand side y through the factorization so the quadratic form and the
/// posterior weight vector stay O(1) to read and O(m^2)/O(m^3) to maintain
/// under appends.
class WoodburyFactor {
 public:
  /// Factors the system. `kmm` is m x m (only the upper triangle including
  /// the diagonal is read); `u` is m x n with row j holding k(z_j, x_i);
  /// `diag` holds the n per-point noise variances (all > 0); `y` is the
  /// n-vector of (standardized) targets. Both inner factorizations escalate
  /// diagonal jitter; returns nullopt only when even the maximum jitter
  /// fails (the caller treats that as an infeasible hyper-parameter point).
  static std::optional<WoodburyFactor> compute(const Matrix& kmm,
                                               const Matrix& u,
                                               const Vector& diag,
                                               const Vector& y);

  std::size_t rank() const { return b_.size(); }
  std::size_t points() const { return n_; }
  /// Jitter added to Kmm to make its factorization succeed.
  double jitter_used() const { return kmm_chol_.jitter_used(); }

  /// logdet(M) via the determinant lemma.
  double log_det() const {
    return a_chol_.log_det() - kmm_log_det_ + sum_log_d_;
  }

  /// y^T M^{-1} y for the y the factor was built with (kept exact across
  /// append() calls). Equals y^T D^{-1} y - b^T A^{-1} b with b = U D^{-1} y.
  double quad() const;

  /// Posterior mean weights w = A^{-1} U D^{-1} y: the DTC posterior mean at
  /// a query x is k(Z, x) . w (standardized units).
  const Vector& weights() const { return w_; }

  /// For a query column q = k(Z, x), the amount the DTC posterior shrinks
  /// the prior variance: ||Lmm^{-1} q||^2 - ||La^{-1} q||^2, so the
  /// predictive variance is k(x, x) - variance_reduction(q).
  double variance_reduction(const Vector& q) const;

  /// Extends the system with one observation: column u_col = k(Z, x_new),
  /// noise d_new, target y_new. O(m^2) rank-1 accumulation into A plus an
  /// O(m^3) refactorization — independent of n, which is what keeps
  /// surrogate appends cheap at 10^4..10^6-point histories. Returns false
  /// (leaving the factor unchanged) if the updated A loses positive
  /// definiteness even with jitter.
  bool append(std::span<const double> u_col, double d_new, double y_new);

 private:
  WoodburyFactor() = default;

  Matrix a_;                   // Kmm + jitter*I + U D^{-1} U^T (upper triangle)
  CholeskyFactor kmm_chol_{CholeskyFactor::compute(Matrix::identity(1)).value()};
  CholeskyFactor a_chol_{CholeskyFactor::compute(Matrix::identity(1)).value()};
  Vector b_;                   // U D^{-1} y
  Vector w_;                   // A^{-1} b
  double kmm_log_det_ = 0.0;
  double sum_log_d_ = 0.0;
  double y_dinv_y_ = 0.0;      // y^T D^{-1} y
  std::size_t n_ = 0;
};

}  // namespace ppat::linalg
