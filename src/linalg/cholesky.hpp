// Cholesky factorization and SPD solves — the numerical core of GP inference.
//
// GP kernel matrices are symmetric positive definite in exact arithmetic but
// frequently lose definiteness to rounding when points nearly coincide, so
// the public entry point `CholeskyFactor::compute_with_jitter` retries with
// an escalating diagonal jitter (standard GP practice) and reports the jitter
// it needed. Failures are reported via a status flag rather than exceptions:
// hyper-parameter search probes many ill-conditioned candidates and must skip
// them cheaply.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace ppat::linalg {

/// Lower-triangular Cholesky factor L with A = L * L^T, plus solve helpers.
class CholeskyFactor {
 public:
  /// Factors `a` (must be square, symmetric). Returns nullopt if `a` is not
  /// positive definite to working precision.
  static std::optional<CholeskyFactor> compute(const Matrix& a);

  /// Factors `a + jitter*I`, escalating jitter by 10x up to `max_jitter`
  /// starting at `initial_jitter` (0 means: first try no jitter). Returns
  /// nullopt only if even the maximum jitter fails.
  static std::optional<CholeskyFactor> compute_with_jitter(
      const Matrix& a, double initial_jitter = 0.0,
      double max_jitter = 1e-2);

  std::size_t size() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }
  /// Diagonal jitter that was added to make the factorization succeed.
  double jitter_used() const { return jitter_; }

  /// Solves L y = b (forward substitution).
  Vector solve_lower(const Vector& b) const;
  /// Solves L^T x = b (backward substitution).
  Vector solve_upper(const Vector& b) const;
  /// Solves A x = b via the factor.
  Vector solve(const Vector& b) const;
  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// Solves L V = B for many right-hand sides at once (B is n x m). The
  /// inner loop runs contiguously over columns, which is what makes batched
  /// GP variance prediction affordable.
  Matrix solve_lower_multi(const Matrix& b) const;

  /// log(det(A)) = 2 * sum(log(L_ii)).
  double log_det() const;

  /// Inverse of A (used only in tests / diagnostics; prefer solve()).
  Matrix inverse() const;

 private:
  CholeskyFactor(Matrix l, double jitter) : l_(std::move(l)), jitter_(jitter) {}
  Matrix l_;
  double jitter_ = 0.0;
};

/// Solves the general square system A x = b by partially pivoted LU.
/// Returns nullopt if A is singular to working precision. Used by
/// non-SPD paths (e.g. the matrix-factorization baseline's normal equations
/// are SPD, but tests cross-check against this).
std::optional<Vector> solve_lu(Matrix a, Vector b);

}  // namespace ppat::linalg
