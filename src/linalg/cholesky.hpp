// Cholesky factorization and SPD solves — the numerical core of GP inference.
//
// GP kernel matrices are symmetric positive definite in exact arithmetic but
// frequently lose definiteness to rounding when points nearly coincide, so
// the public entry point `CholeskyFactor::compute_with_jitter` retries with
// an escalating diagonal jitter (standard GP practice) and reports the jitter
// it needed. Failures are reported via a status flag rather than exceptions:
// hyper-parameter search probes many ill-conditioned candidates and must skip
// them cheaply.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace ppat::linalg {

/// Lower-triangular Cholesky factor L with A = L * L^T, plus solve helpers.
class CholeskyFactor {
 public:
  /// Factors `a` (must be square and symmetric). Only the upper triangle
  /// (including the diagonal) is read, so callers that build symmetric
  /// matrices may skip populating the strictly-lower part. Returns nullopt if
  /// `a` is not positive definite to working precision.
  ///
  /// The elimination works column-major on panels of eight columns: each
  /// already-factored column is streamed once per panel (instead of once per
  /// column) through vectorizable elementwise sweeps, with AVX-512 and AVX2
  /// clones dispatched at runtime where available. Every element still performs
  /// exactly the reference sequence s -= l(i,k) * l(j,k) with k ascending and
  /// no FMA contraction, so the factor is bit-for-bit identical to
  /// compute_reference() (asserted by tests).
  static std::optional<CholeskyFactor> compute(const Matrix& a);

  /// Textbook scalar elimination — the pre-optimization implementation,
  /// retained as the bit-exactness oracle for tests and as the timing
  /// baseline for bench_surrogate_scaling's legacy ablation.
  static std::optional<CholeskyFactor> compute_reference(const Matrix& a);

  /// Factors `a + jitter*I`, escalating jitter by 10x up to `max_jitter`
  /// starting at `initial_jitter` (0 means: first try no jitter). Returns
  /// nullopt only if even the maximum jitter fails. `use_reference` selects
  /// compute_reference() (legacy-ablation timing; identical values).
  static std::optional<CholeskyFactor> compute_with_jitter(
      const Matrix& a, double initial_jitter = 0.0,
      double max_jitter = 1e-2, bool use_reference = false);

  /// compute_with_jitter with a scale-aware escalation ceiling:
  /// max(`abs_cap`, `rel_cap` * max|diag|). Long tuning runs reveal
  /// near-duplicate points whose Gram matrices can need a nugget well above
  /// the fixed 1e-2 cap on large-magnitude kernels; aborting a multi-day run
  /// on that is unacceptable, so the FINAL surrogate fit uses this entry
  /// point (hyper-parameter search probes keep the cheap fixed cap — an
  /// ill-conditioned probe is simply skipped). When factorization succeeds
  /// with no jitter the call is bit-identical to compute(); when jitter was
  /// needed, the final value is logged at warning level so drifting
  /// conditioning is visible in run logs.
  static std::optional<CholeskyFactor> compute_with_adaptive_jitter(
      const Matrix& a, bool use_reference = false, double rel_cap = 1e-4,
      double abs_cap = 1e-2);

  std::size_t size() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }
  /// Diagonal jitter that was added to make the factorization succeed.
  double jitter_used() const { return jitter_; }

  /// Solves L y = b (forward substitution).
  Vector solve_lower(const Vector& b) const;
  /// Solves L^T x = b (backward substitution).
  Vector solve_upper(const Vector& b) const;
  /// Solves A x = b via the factor.
  Vector solve(const Vector& b) const;
  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// Solves L V = B for many right-hand sides at once (B is n x m). The
  /// inner loop runs contiguously over columns, which is what makes batched
  /// GP variance prediction affordable. Column blocks run on the global
  /// thread pool above a size threshold; each column's arithmetic is
  /// independent of the partition, so results are bit-identical for any
  /// thread count.
  Matrix solve_lower_multi(const Matrix& b) const;

  /// Extends a forward-substitution solution of L y = b in place: `y`
  /// already holds the first y.size() rows of the solution; `b_tail` holds
  /// the next entries of b, and the call appends the matching solution rows.
  /// Each new row replicates solve_lower_multi's per-column operation
  /// sequence exactly (ascending-k accumulation, zero-coefficient skip,
  /// multiply by the reciprocal diagonal), so growing a solution row by row
  /// across append_row calls is bit-identical to re-solving the final
  /// system in one shot. With `y` empty this IS a full forward solve in
  /// solve_lower_multi's bits (solve_lower divides by the diagonal instead
  /// of multiplying by its reciprocal, which rounds differently). The
  /// gp::PosteriorCache rank-1 prediction update is built on this.
  void extend_solve_lower(Vector& y, std::span<const double> b_tail) const;

  /// Extends the factor of A (n x n) to the factor of the bordered matrix
  /// [[A, k_new], [k_new^T, k_self]] in O(n^2): the existing n x n block of
  /// L is unchanged (Cholesky is leading-minor local) and the new row is one
  /// forward substitution plus a square root. Performs the identical
  /// floating-point operations a full re-factorization would, so the
  /// resulting factor is bit-for-bit the same.
  ///
  /// Any diagonal regularization (observation noise, jitter) must already be
  /// folded into `k_new`/`k_self` by the caller; callers that factored with
  /// jitter > 0 should re-factorize from scratch instead, because a fresh
  /// factorization would restart the jitter escalation from zero.
  ///
  /// Returns false and leaves the factor unchanged when the new diagonal
  /// pivot is not positive to working precision (the bordered matrix is not
  /// positive definite); the caller must fall back to a full
  /// re-factorization with jitter.
  bool append_row(std::span<const double> k_new, double k_self);

  /// log(det(A)) = 2 * sum(log(L_ii)).
  double log_det() const;

  /// Inverse of A (used only in tests / diagnostics; prefer solve()).
  Matrix inverse() const;

 private:
  CholeskyFactor(Matrix l, double jitter) : l_(std::move(l)), jitter_(jitter) {}
  Matrix l_;
  double jitter_ = 0.0;
};

/// Solves the general square system A x = b by partially pivoted LU.
/// Returns nullopt if A is singular to working precision. Used by
/// non-SPD paths (e.g. the matrix-factorization baseline's normal equations
/// are SPD, but tests cross-check against this).
std::optional<Vector> solve_lu(Matrix a, Vector b);

}  // namespace ppat::linalg
