#include "linalg/lowrank.hpp"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"

namespace ppat::linalg {

namespace {

/// Lane-accumulated dot product. linalg::dot keeps one serial accumulator
/// chain (bit-frozen by the exact tier's twins), which caps it at one
/// mul-add per FP latency; the Woodbury A-build is O(n m^2) of exactly such
/// dots and dominates every low-rank NLL evaluation. Eight independent lane
/// chains vectorize to full-width FMA on any -march the clones cover. The
/// summation order differs from linalg::dot — fine here: the low-rank tier
/// has no legacy twin to match, and the order is fixed, so results stay
/// bit-identical for any thread count / partition.
#if __has_attribute(target_clones)
__attribute__((target_clones("avx512f", "avx2", "default")))
#endif
double dot_lanes(const double* a, const double* b, std::size_t n) {
  constexpr std::size_t kLanes = 8;
  double lane[kLanes] = {0.0};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) lane[l] += a[i + l] * b[i + l];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7])) + tail;
}

double dot_lanes(std::span<const double> a, std::span<const double> b) {
  return dot_lanes(a.data(), b.data(), a.size());
}

}  // namespace

std::optional<WoodburyFactor> WoodburyFactor::compute(const Matrix& kmm,
                                                      const Matrix& u,
                                                      const Vector& diag,
                                                      const Vector& y) {
  const std::size_t m = kmm.rows();
  const std::size_t n = u.cols();
  if (kmm.cols() != m || u.rows() != m) {
    throw std::invalid_argument("WoodburyFactor: shape mismatch");
  }
  if (diag.size() != n || y.size() != n) {
    throw std::invalid_argument("WoodburyFactor: rhs size mismatch");
  }

  auto kmm_chol = CholeskyFactor::compute_with_jitter(kmm);
  if (!kmm_chol) return std::nullopt;

  // V = D^{-1} U^T stored transposed (m x n) so the A build streams
  // contiguous rows.
  Matrix v(m, n);
  common::parallel_for_blocks(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          const auto u_row = u.row(j);
          auto v_row = v.row(j);
          for (std::size_t i = 0; i < n; ++i) v_row[i] = u_row[i] / diag[i];
        }
      },
      16);

  WoodburyFactor f;
  // A = Kmm + jitter*I + U D^{-1} U^T, upper triangle. Each entry is one
  // full-length dot in ascending index order, so the parallel row partition
  // cannot change any bit of the result.
  f.a_ = Matrix(m, m);
  const double jitter = kmm_chol->jitter_used();
  common::parallel_for_blocks(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          for (std::size_t k = j; k < m; ++k) {
            f.a_(j, k) = kmm(j, k) + dot_lanes(v.row(j), u.row(k));
          }
          f.a_(j, j) += jitter;
        }
      },
      1);

  auto a_chol = CholeskyFactor::compute_with_jitter(f.a_);
  if (!a_chol) return std::nullopt;

  f.b_.assign(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) f.b_[j] = dot_lanes(v.row(j), y);

  double sum_log_d = 0.0;
  double y_dinv_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(diag[i] > 0.0)) return std::nullopt;
    sum_log_d += std::log(diag[i]);
    y_dinv_y += y[i] * y[i] / diag[i];
  }

  f.kmm_chol_ = std::move(*kmm_chol);
  f.a_chol_ = std::move(*a_chol);
  f.kmm_log_det_ = f.kmm_chol_.log_det();
  f.sum_log_d_ = sum_log_d;
  f.y_dinv_y_ = y_dinv_y;
  f.n_ = n;
  f.w_ = f.a_chol_.solve(f.b_);
  return f;
}

double WoodburyFactor::quad() const {
  return y_dinv_y_ - dot(b_, w_);
}

double WoodburyFactor::variance_reduction(const Vector& q) const {
  const Vector v1 = kmm_chol_.solve_lower(q);
  const Vector v2 = a_chol_.solve_lower(q);
  return dot(v1, v1) - dot(v2, v2);
}

bool WoodburyFactor::append(std::span<const double> u_col, double d_new,
                            double y_new) {
  const std::size_t m = b_.size();
  if (u_col.size() != m) {
    throw std::invalid_argument("WoodburyFactor::append: column size mismatch");
  }
  if (!(d_new > 0.0)) {
    throw std::invalid_argument("WoodburyFactor::append: noise must be > 0");
  }
  // Trial update of A; committed only if it refactors.
  Matrix a_next = a_;
  const double inv_d = 1.0 / d_new;
  for (std::size_t j = 0; j < m; ++j) {
    const double uj = u_col[j] * inv_d;
    for (std::size_t k = j; k < m; ++k) a_next(j, k) += uj * u_col[k];
  }
  auto a_chol = CholeskyFactor::compute_with_jitter(a_next);
  if (!a_chol) return false;

  a_ = std::move(a_next);
  a_chol_ = std::move(*a_chol);
  for (std::size_t j = 0; j < m; ++j) b_[j] += u_col[j] * (y_new / d_new);
  sum_log_d_ += std::log(d_new);
  y_dinv_y_ += y_new * y_new / d_new;
  ++n_;
  w_ = a_chol_.solve(b_);
  return true;
}

}  // namespace ppat::linalg
