#include "linalg/cholesky.hpp"

#include <cassert>
#include <cmath>

namespace ppat::linalg {

std::optional<CholeskyFactor> CholeskyFactor::compute(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      // Inner product over the already-computed columns; rows are contiguous.
      const auto li = l.row(i);
      const auto lj = l.row(j);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l(i, j) = s * inv;
    }
  }
  return CholeskyFactor(std::move(l), 0.0);
}

std::optional<CholeskyFactor> CholeskyFactor::compute_with_jitter(
    const Matrix& a, double initial_jitter, double max_jitter) {
  assert(a.rows() == a.cols());
  double jitter = initial_jitter;
  for (;;) {
    Matrix aj = a;
    if (jitter > 0.0) aj.add_to_diagonal(jitter);
    if (auto f = compute(aj)) {
      f->jitter_ = jitter;
      return f;
    }
    if (jitter >= max_jitter) return std::nullopt;
    // Scale the first jitter to the matrix magnitude so tiny-kernel problems
    // do not need many escalation rounds.
    if (jitter == 0.0) {
      double max_diag = 0.0;
      for (std::size_t i = 0; i < a.rows(); ++i) {
        max_diag = std::max(max_diag, std::fabs(a(i, i)));
      }
      jitter = std::max(1e-10, 1e-10 * max_diag);
    } else {
      jitter *= 10.0;
    }
    if (jitter > max_jitter) jitter = max_jitter;
  }
}

Vector CholeskyFactor::solve_lower(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

Vector CholeskyFactor::solve_upper(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector CholeskyFactor::solve(const Vector& b) const {
  return solve_upper(solve_lower(b));
}

Matrix CholeskyFactor::solve(const Matrix& b) const {
  assert(b.rows() == size());
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    Vector sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

Matrix CholeskyFactor::solve_lower_multi(const Matrix& b) const {
  const std::size_t n = size();
  assert(b.rows() == n);
  const std::size_t m = b.cols();
  Matrix v = b;
  for (std::size_t i = 0; i < n; ++i) {
    double* vi = v.row(i).data();
    const auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = li[k];
      if (lik == 0.0) continue;
      const double* vk = v.row(k).data();
      for (std::size_t j = 0; j < m; ++j) vi[j] -= lik * vk[j];
    }
    const double inv = 1.0 / li[i];
    for (std::size_t j = 0; j < m; ++j) vi[j] *= inv;
  }
  return v;
}

double CholeskyFactor::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix CholeskyFactor::inverse() const {
  return solve(Matrix::identity(size()));
}

std::optional<Vector> solve_lu(Matrix a, Vector b) {
  assert(a.rows() == a.cols() && b.size() == a.rows());
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x[c];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

}  // namespace ppat::linalg
