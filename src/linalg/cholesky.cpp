#include "linalg/cholesky.hpp"

#include <cassert>
#include <cmath>
#include <memory>

#include "common/log.hpp"
#include "common/parallel.hpp"

namespace ppat::linalg {
namespace {

/// Column-major elimination core of CholeskyFactor::compute(). Returns false
/// when `a` is not positive definite to working precision. `ct` is an
/// uninitialized n*n row-major buffer; row k holds column k of L on exit
/// (entries below the diagonal of L, i.e. ct[k*n + i] with i >= k, are
/// written; the rest is never touched).
///
/// target_clones: the sweeps are plain elementwise mul/sub loops, so the
/// compiler may emit them at any vector width without changing a single
/// rounding — the AVX2/AVX-512 clones (runtime-dispatched) just process more
/// lanes per instruction. AVX-512F carries EVEX fused multiply-add, so this
/// file is compiled with -ffp-contract=off (see CMakeLists.txt): contraction
/// would fuse the mul/sub chains and change roundings.
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
__attribute__((target_clones("avx512f", "avx2", "default")))
#endif
#endif
bool eliminate_columns(const Matrix& a, double* const ct) {
  const std::size_t n = a.rows();
  constexpr std::size_t P = 8;  // panel width
  Vector sbuf(P * n);           // tail accumulators, one stripe per column
  double w[P][P];               // panel diagonal-block accumulators
  for (std::size_t j0 = 0; j0 < n; j0 += P) {
    const std::size_t j1 = std::min(j0 + P, n);
    const std::size_t p = j1 - j0;
    const std::size_t m = n - j1;
    // Seed accumulators from rows of `a` (symmetric, so row j IS column j —
    // contiguous loads instead of a strided column gather).
    for (std::size_t q = 0; q < p; ++q) {
      const double* aj = a.row(j0 + q).data();
      for (std::size_t r = q; r < p; ++r) w[q][r] = aj[j0 + r];
      double* __restrict sq = sbuf.data() + q * m;
      for (std::size_t i = 0; i < m; ++i) sq[i] = aj[j1 + i];
    }
    // Phase A: contributions of columns k < j0. Each ct row is streamed once
    // per PANEL (serving all p columns) rather than once per column, and its
    // p coefficients ct[k*n + j0..j1) share a cache line — that is the whole
    // win over the column-at-a-time sweep. Four k-steps are fused per pass so
    // the accumulators are loaded/stored once per four multiply-subtracts.
    // Every element still subtracts its l(i,k) * l(j,k) terms with k strictly
    // ascending, exactly the compute_reference() chain.
    std::size_t k = 0;
    for (; k + 4 <= j0; k += 4) {
      const double* __restrict k0 = ct + k * n;
      const double* __restrict k1 = ct + (k + 1) * n;
      const double* __restrict k2 = ct + (k + 2) * n;
      const double* __restrict k3 = ct + (k + 3) * n;
      for (std::size_t q = 0; q < p; ++q) {
        const double c0 = k0[j0 + q], c1 = k1[j0 + q];
        const double c2 = k2[j0 + q], c3 = k3[j0 + q];
        for (std::size_t r = q; r < p; ++r) {
          w[q][r] = (((w[q][r] - c0 * k0[j0 + r]) - c1 * k1[j0 + r]) -
                     c2 * k2[j0 + r]) -
                    c3 * k3[j0 + r];
        }
      }
      const double* __restrict t0 = k0 + j1;
      const double* __restrict t1 = k1 + j1;
      const double* __restrict t2 = k2 + j1;
      const double* __restrict t3 = k3 + j1;
      // Two panel columns per pass: the four row loads are shared between the
      // two accumulator streams (each element's own chain is untouched).
      std::size_t q = 0;
      for (; q + 2 <= p; q += 2) {
        const double c00 = k0[j0 + q], c01 = k1[j0 + q];
        const double c02 = k2[j0 + q], c03 = k3[j0 + q];
        const double c10 = k0[j0 + q + 1], c11 = k1[j0 + q + 1];
        const double c12 = k2[j0 + q + 1], c13 = k3[j0 + q + 1];
        double* __restrict s0 = sbuf.data() + q * m;
        double* __restrict s1 = sbuf.data() + (q + 1) * m;
        for (std::size_t i = 0; i < m; ++i) {
          const double a0 = t0[i], a1 = t1[i], a2 = t2[i], a3 = t3[i];
          s0[i] = (((s0[i] - a0 * c00) - a1 * c01) - a2 * c02) - a3 * c03;
          s1[i] = (((s1[i] - a0 * c10) - a1 * c11) - a2 * c12) - a3 * c13;
        }
      }
      for (; q < p; ++q) {
        const double c0 = k0[j0 + q], c1 = k1[j0 + q];
        const double c2 = k2[j0 + q], c3 = k3[j0 + q];
        double* __restrict sq = sbuf.data() + q * m;
        for (std::size_t i = 0; i < m; ++i) {
          sq[i] =
              (((sq[i] - t0[i] * c0) - t1[i] * c1) - t2[i] * c2) - t3[i] * c3;
        }
      }
    }
    for (; k < j0; ++k) {
      const double* __restrict ck = ct + k * n;
      for (std::size_t q = 0; q < p; ++q) {
        const double c = ck[j0 + q];
        for (std::size_t r = q; r < p; ++r) w[q][r] -= c * ck[j0 + r];
        double* __restrict sq = sbuf.data() + q * m;
        const double* __restrict tk = ck + j1;
        for (std::size_t i = 0; i < m; ++i) sq[i] -= tk[i] * c;
      }
    }
    // Phase B: factorize the panel itself. After column j0+q is finalized its
    // contribution is immediately subtracted from the later panel columns
    // (right-looking within the panel), which preserves the ascending-k order
    // of every remaining element's chain.
    for (std::size_t q = 0; q < p; ++q) {
      const std::size_t j = j0 + q;
      const double diag = w[q][q];
      if (!(diag > 0.0) || !std::isfinite(diag)) return false;
      const double ljj = std::sqrt(diag);
      const double inv = 1.0 / ljj;
      double* __restrict cj = ct + j * n;
      cj[j] = ljj;
      for (std::size_t r = q + 1; r < p; ++r) cj[j0 + r] = w[q][r] * inv;
      double* __restrict sq = sbuf.data() + q * m;
      for (std::size_t i = 0; i < m; ++i) cj[j1 + i] = sq[i] * inv;
      for (std::size_t q2 = q + 1; q2 < p; ++q2) {
        const double c = cj[j0 + q2];
        for (std::size_t r = q2; r < p; ++r) w[q2][r] -= cj[j0 + r] * c;
        double* __restrict s2 = sbuf.data() + q2 * m;
        const double* __restrict tj = cj + j1;
        for (std::size_t i = 0; i < m; ++i) s2[i] -= tj[i] * c;
      }
    }
  }
  return true;
}

}  // namespace

std::optional<CholeskyFactor> CholeskyFactor::compute(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  // Work in a column-major factor: row k of the ct buffer holds column k of
  // L. The reference elimination is latency-bound — each element's accumulator is a
  // serial dependence chain that cannot be reassociated without changing the
  // rounding. Reordering the loops into panel-wide elementwise streaming
  // sweeps (see eliminate_columns) keeps every element's chain in ascending-k
  // order — exactly the compute_reference() sequence — while letting the
  // compiler vectorize across elements. Bit-identical factors, several times
  // the throughput.
  const auto ct = std::make_unique_for_overwrite<double[]>(n * n);
  if (!eliminate_columns(a, ct.get())) return std::nullopt;
  // Transpose back to the row-major lower factor the solves expect
  // (blocked: both sides of a block stay cache-resident).
  Matrix l(n, n);
  constexpr std::size_t kBlock = 32;
  for (std::size_t ib = 0; ib < n; ib += kBlock) {
    const std::size_t imax = std::min(n, ib + kBlock);
    for (std::size_t jb = 0; jb <= ib; jb += kBlock) {
      for (std::size_t i = ib; i < imax; ++i) {
        double* li = l.row(i).data();
        const std::size_t jmax = std::min(i + 1, jb + kBlock);
        for (std::size_t j = jb; j < jmax; ++j) li[j] = ct[j * n + i];
      }
    }
  }
  return CholeskyFactor(std::move(l), 0.0);
}

std::optional<CholeskyFactor> CholeskyFactor::compute_reference(
    const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      // Inner product over the already-computed columns; rows are contiguous.
      const auto li = l.row(i);
      const auto lj = l.row(j);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l(i, j) = s * inv;
    }
  }
  return CholeskyFactor(std::move(l), 0.0);
}

std::optional<CholeskyFactor> CholeskyFactor::compute_with_jitter(
    const Matrix& a, double initial_jitter, double max_jitter,
    bool use_reference) {
  assert(a.rows() == a.cols());
  double jitter = initial_jitter;
  for (;;) {
    std::optional<CholeskyFactor> f;
    if (jitter == 0.0 && !use_reference) {
      // The common case needs no diagonal shift; factor `a` directly and
      // skip the O(n^2) copy. (The reference path keeps the pre-PR copy so
      // the legacy ablation times the pre-PR code faithfully.)
      f = compute(a);
    } else {
      Matrix aj = a;
      if (jitter > 0.0) aj.add_to_diagonal(jitter);
      f = use_reference ? compute_reference(aj) : compute(aj);
    }
    if (f) {
      f->jitter_ = jitter;
      return f;
    }
    if (jitter >= max_jitter) return std::nullopt;
    // Scale the first jitter to the matrix magnitude so tiny-kernel problems
    // do not need many escalation rounds.
    if (jitter == 0.0) {
      double max_diag = 0.0;
      for (std::size_t i = 0; i < a.rows(); ++i) {
        max_diag = std::max(max_diag, std::fabs(a(i, i)));
      }
      jitter = std::max(1e-10, 1e-10 * max_diag);
    } else {
      jitter *= 10.0;
    }
    if (jitter > max_jitter) jitter = max_jitter;
  }
}

std::optional<CholeskyFactor> CholeskyFactor::compute_with_adaptive_jitter(
    const Matrix& a, bool use_reference, double rel_cap, double abs_cap) {
  assert(a.rows() == a.cols());
  double max_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    max_diag = std::max(max_diag, std::fabs(a(i, i)));
  }
  const double max_jitter = std::max(abs_cap, rel_cap * max_diag);
  auto f = compute_with_jitter(a, 0.0, max_jitter, use_reference);
  if (f && f->jitter_used() > 0.0) {
    PPAT_WARN << "Cholesky factorization of " << a.rows() << "x" << a.cols()
              << " matrix needed diagonal jitter " << f->jitter_used()
              << " (max|diag| = " << max_diag
              << "); revealed points may be nearly duplicate";
  }
  return f;
}

Vector CholeskyFactor::solve_lower(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

Vector CholeskyFactor::solve_upper(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector CholeskyFactor::solve(const Vector& b) const {
  return solve_upper(solve_lower(b));
}

Matrix CholeskyFactor::solve(const Matrix& b) const {
  assert(b.rows() == size());
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    Vector sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

Matrix CholeskyFactor::solve_lower_multi(const Matrix& b) const {
  const std::size_t n = size();
  assert(b.rows() == n);
  const std::size_t m = b.cols();
  Matrix v = b;
  // Columns are independent forward substitutions, so they partition into
  // contiguous blocks with no cross-block data flow: each element's update
  // sequence is identical for any partition (bit-identical results).
  auto solve_columns = [&](std::size_t j0, std::size_t j1) {
    for (std::size_t i = 0; i < n; ++i) {
      double* vi = v.row(i).data();
      const auto li = l_.row(i);
      for (std::size_t k = 0; k < i; ++k) {
        const double lik = li[k];
        if (lik == 0.0) continue;
        const double* vk = v.row(k).data();
        for (std::size_t j = j0; j < j1; ++j) vi[j] -= lik * vk[j];
      }
      const double inv = 1.0 / li[i];
      for (std::size_t j = j0; j < j1; ++j) vi[j] *= inv;
    }
  };
  // Threshold: a block must amortize the fork/join; 32 columns of an O(n^2)
  // substitution is comfortably past that for the n >= 64 systems GP
  // prediction produces.
  if (n * m >= 16384 && m >= 64) {
    common::parallel_for_blocks(0, m, solve_columns, 32);
  } else {
    solve_columns(0, m);
  }
  return v;
}

void CholeskyFactor::extend_solve_lower(Vector& y,
                                        std::span<const double> b_tail) const {
  const std::size_t old = y.size();
  const std::size_t rows = old + b_tail.size();
  assert(rows <= size());
  y.reserve(rows);
  for (std::size_t i = old; i < rows; ++i) {
    const auto li = l_.row(i);
    double acc = b_tail[i - old];
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = li[k];
      if (lik == 0.0) continue;
      acc -= lik * y[k];
    }
    const double inv = 1.0 / li[i];
    y.push_back(acc * inv);
  }
}

bool CholeskyFactor::append_row(std::span<const double> k_new, double k_self) {
  const std::size_t n = size();
  assert(k_new.size() == n);
  // New row of L: forward substitution L row = k_new, replicated with the
  // exact operation order of compute() so the result is bit-identical to a
  // full re-factorization of the bordered matrix.
  Vector row(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = k_new[j];
    const auto lj = l_.row(j);
    for (std::size_t k = 0; k < j; ++k) s -= row[k] * lj[k];
    const double inv = 1.0 / lj[j];
    row[j] = s * inv;
  }
  double diag = k_self;
  for (std::size_t k = 0; k < n; ++k) diag -= row[k] * row[k];
  if (!(diag > 0.0) || !std::isfinite(diag)) return false;

  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = l_.row(i);
    double* dst = grown.row(i).data();
    for (std::size_t j = 0; j <= i; ++j) dst[j] = src[j];
  }
  double* last = grown.row(n).data();
  for (std::size_t j = 0; j < n; ++j) last[j] = row[j];
  last[n] = std::sqrt(diag);
  l_ = std::move(grown);
  return true;
}

double CholeskyFactor::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix CholeskyFactor::inverse() const {
  return solve(Matrix::identity(size()));
}

std::optional<Vector> solve_lu(Matrix a, Vector b) {
  assert(a.rows() == a.cols() && b.size() == a.rows());
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x[c];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

}  // namespace ppat::linalg
