#include "linalg/neldermead.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ppat::linalg {
namespace {

// Standard coefficients (reflection, expansion, contraction, shrink).
constexpr double kAlpha = 1.0;
constexpr double kGamma = 2.0;
constexpr double kRho = 0.5;
constexpr double kSigma = 0.5;

}  // namespace

NelderMeadResult nelder_mead(const std::function<double(const Vector&)>& f,
                             const Vector& x0,
                             const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  assert(n > 0);

  NelderMeadResult result;
  std::size_t evals = 0;
  auto eval = [&](const Vector& x) {
    ++evals;
    const double v = f(x);
    return std::isnan(v) ? std::numeric_limits<double>::infinity() : v;
  };

  // Initial simplex: x0 plus a step along each axis.
  std::vector<Vector> xs(n + 1, x0);
  std::vector<double> fs(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i + 1][i] += (x0[i] != 0.0 ? options.initial_step * std::fabs(x0[i])
                                  : options.initial_step);
  }
  for (std::size_t i = 0; i <= n; ++i) fs[i] = eval(xs[i]);

  std::vector<std::size_t> order(n + 1);
  while (evals < options.max_evals) {
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&fs](std::size_t a, std::size_t b) { return fs[a] < fs[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    // Convergence tests.
    const double f_spread = fs[worst] - fs[best];
    double diameter = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
      double d = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        d = std::max(d, std::fabs(xs[order[i]][j] - xs[best][j]));
      }
      diameter = std::max(diameter, d);
    }
    if ((std::isfinite(f_spread) && f_spread < options.f_tolerance) ||
        diameter < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    Vector centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += xs[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double t) {
      Vector x(n);
      for (std::size_t j = 0; j < n; ++j) {
        x[j] = centroid[j] + t * (centroid[j] - xs[worst][j]);
      }
      return x;
    };

    const Vector reflected = blend(kAlpha);
    const double f_reflected = eval(reflected);

    if (f_reflected < fs[best]) {
      const Vector expanded = blend(kGamma);
      const double f_expanded = eval(expanded);
      if (f_expanded < f_reflected) {
        xs[worst] = expanded;
        fs[worst] = f_expanded;
      } else {
        xs[worst] = reflected;
        fs[worst] = f_reflected;
      }
    } else if (f_reflected < fs[second_worst]) {
      xs[worst] = reflected;
      fs[worst] = f_reflected;
    } else {
      const bool outside = f_reflected < fs[worst];
      const Vector contracted = blend(outside ? kRho : -kRho);
      const double f_contracted = eval(contracted);
      const double bar = outside ? f_reflected : fs[worst];
      if (f_contracted < bar) {
        xs[worst] = contracted;
        fs[worst] = f_contracted;
      } else {
        // Shrink towards the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t j = 0; j < n; ++j) {
            xs[i][j] = xs[best][j] + kSigma * (xs[i][j] - xs[best][j]);
          }
          fs[i] = eval(xs[i]);
          if (evals >= options.max_evals) break;
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (fs[i] < fs[best]) best = i;
  }
  result.x = xs[best];
  result.f = fs[best];
  result.evals = evals;
  return result;
}

}  // namespace ppat::linalg
