// Derivative-free simplex minimizer (Nelder–Mead) used to maximize GP
// marginal likelihood over kernel hyper-parameters.
//
// Why Nelder–Mead: the search spaces here are tiny (2–16 dimensions), the
// objective (negative log marginal likelihood) is cheap relative to tool
// runs, and exact analytic gradients through the transfer kernel's Gamma
// integral would complicate the code for no experimental gain. Multi-start
// restarts (driven by the caller) handle multi-modality.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"

namespace ppat::linalg {

struct NelderMeadOptions {
  std::size_t max_evals = 500;
  double initial_step = 0.5;   ///< Simplex edge length per coordinate.
  double f_tolerance = 1e-8;   ///< Stop when simplex f-spread is below this.
  double x_tolerance = 1e-8;   ///< Stop when simplex diameter is below this.
};

struct NelderMeadResult {
  Vector x;                 ///< Best point found.
  double f = 0.0;           ///< Objective value at x.
  std::size_t evals = 0;    ///< Number of objective evaluations consumed.
  bool converged = false;   ///< True if a tolerance (not the budget) stopped.
};

/// Minimizes `f` starting from `x0`. `f` must be finite-valued or +inf
/// (+inf is treated as "infeasible": the simplex moves away from it).
NelderMeadResult nelder_mead(const std::function<double(const Vector&)>& f,
                             const Vector& x0,
                             const NelderMeadOptions& options = {});

}  // namespace ppat::linalg
