#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace ppat::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both inputs.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  assert(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    out[i] = dot(row(i), v);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

void Matrix::add_to_diagonal(double value) {
  assert(rows_ == cols_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

Vector operator+(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector operator*(double s, const Vector& a) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = s * a[i];
  return out;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace ppat::linalg
