// Length-prefixed wire protocol for the tuning server's Unix socket.
//
// Frame layout (all integers little-endian):
//
//   u32 payload_len | u8 type | payload[payload_len]
//
// Messages (client -> server unless noted):
//
//   kHello         u32 protocol_version
//   kHelloAck  (s) u32 protocol_version, u32 abi_version
//   kOpenSession   str oracle_name, u64 oracle_seed,
//                  u64 tuner_seed, f64 tau, f64 delta_rel,
//                  u64 batch_size, u64 max_runs, u64 max_rounds,
//                  vec<u64> objectives,
//                  u64 n, u64 dim, n*dim f64 (unit-cube candidate rows)
//   kSessionOpened (s) u64 session_id
//   kRoundUpdate   (s) u64 session_id, u64 round, u64 runs, vec<u64> front
//   kDone          (s) u64 session_id, u8 state (SessionState),
//                      u64 runs, vec<u64> front
//   kError         (s) str message (the connection closes after)
//   kStopSession   u64 session_id (graceful; a kDone still follows)
//
// Distributed-evaluation frames (worker <-> coordinator; see src/dist/):
//
//   kWorkerHello    (w) u32 protocol_version, u64 session_epoch,
//                       str oracle_name, u64 space_dim
//   kWorkerHelloAck (c) u64 session_epoch
//   kEvalRequest    (c) u64 job_id, u32 attempt, u64 dim, dim*f64
//                       (canonical parameter values, not unit-cube points)
//   kEvalResult     (w) u64 job_id, u32 attempt, u8 ok,
//                       ok: f64 area_um2, f64 power_mw, f64 delay_ns
//                       !ok: str error
//   kHeartbeat          u64 session_epoch (worker liveness while idle; the
//                       coordinator echoes nothing, a stale epoch
//                       disconnects the worker)
//
// A zero tuner option means "server default" (mirrors the C ABI). One
// connection drives one session: open, stream updates, done. Dropping the
// connection mid-run requests a graceful stop of its session.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ppat::server::wire {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// Frames above this are rejected (a corrupt length prefix would otherwise
/// ask the reader to allocate gigabytes).
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kOpenSession = 3,
  kSessionOpened = 4,
  kRoundUpdate = 5,
  kDone = 6,
  kError = 7,
  kStopSession = 8,
  // Distributed oracle fleet (coordinator/worker; src/dist/).
  kWorkerHello = 9,
  kWorkerHelloAck = 10,
  kEvalRequest = 11,
  kEvalResult = 12,
  kHeartbeat = 13,
};
const char* msg_type_name(MsgType type);

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Little-endian payload writer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);           ///< u32 length + bytes
  void u64_vec(const std::vector<std::uint64_t>& v);

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload reader. Throws WireError on truncation.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<std::uint64_t> u64_vec();

  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) const;
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// Malformed frame or payload (protocol violation, truncated field).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Blocking full-frame I/O on a connected socket. read_frame returns
/// nullopt on orderly EOF at a frame boundary and throws WireError on a
/// short read, oversized frame, or socket error. write_frame throws
/// WireError when the peer is gone.
std::optional<Frame> read_frame(int fd);
void write_frame(int fd, MsgType type, const std::vector<std::uint8_t>& payload);

}  // namespace ppat::server::wire
