#include "server/wire.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace ppat::server::wire {

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "Hello";
    case MsgType::kHelloAck:
      return "HelloAck";
    case MsgType::kOpenSession:
      return "OpenSession";
    case MsgType::kSessionOpened:
      return "SessionOpened";
    case MsgType::kRoundUpdate:
      return "RoundUpdate";
    case MsgType::kDone:
      return "Done";
    case MsgType::kError:
      return "Error";
    case MsgType::kStopSession:
      return "StopSession";
    case MsgType::kWorkerHello:
      return "WorkerHello";
    case MsgType::kWorkerHelloAck:
      return "WorkerHelloAck";
    case MsgType::kEvalRequest:
      return "EvalRequest";
    case MsgType::kEvalResult:
      return "EvalResult";
    case MsgType::kHeartbeat:
      return "Heartbeat";
  }
  return "<unknown>";
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::u64_vec(const std::vector<std::uint64_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (std::uint64_t x : v) u64(x);
}

void Reader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n) {
    throw WireError("truncated payload: need " + std::to_string(n) +
                    " bytes, have " + std::to_string(buf_.size() - pos_));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

std::vector<std::uint64_t> Reader::u64_vec() {
  const std::uint32_t n = u32();
  need(static_cast<std::size_t>(n) * 8);
  std::vector<std::uint64_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = u64();
  return v;
}

namespace {

/// Reads exactly n bytes. Returns false on clean EOF before the first
/// byte; throws on EOF mid-buffer or socket error.
bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r == 0) {
      if (got == 0) return false;
      throw WireError("connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("socket read failed: ") +
                      std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_exact(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE here instead of
    // killing the server process with SIGPIPE.
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("socket write failed: ") +
                      std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

}  // namespace

std::optional<Frame> read_frame(int fd) {
  std::uint8_t header[5];
  if (!read_exact(fd, header, 4)) return std::nullopt;  // EOF at boundary
  if (!read_exact(fd, header + 4, 1)) {
    throw WireError("connection closed mid-frame");
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxPayload) {
    throw WireError("frame payload of " + std::to_string(len) +
                    " bytes exceeds the " + std::to_string(kMaxPayload) +
                    "-byte limit");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(header[4]);
  frame.payload.resize(len);
  if (len > 0 && !read_exact(fd, frame.payload.data(), len)) {
    throw WireError("connection closed mid-frame");
  }
  return frame;
}

void write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload) {
    throw WireError("refusing to write an oversized frame");
  }
  std::vector<std::uint8_t> buf;
  buf.reserve(5 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) buf.push_back((len >> (8 * i)) & 0xff);
  buf.push_back(static_cast<std::uint8_t>(type));
  buf.insert(buf.end(), payload.begin(), payload.end());
  write_exact(fd, buf.data(), buf.size());
}

}  // namespace ppat::server::wire
