#include "server/session_manager.hpp"

#include <filesystem>
#include <utility>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "journal/journal.hpp"
#include "tuner/live_pool.hpp"

namespace ppat::server {
namespace fs = std::filesystem;

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kRunning:
      return "running";
    case SessionState::kCompleted:
      return "completed";
    case SessionState::kStopped:
      return "stopped";
    case SessionState::kFailed:
      return "failed";
  }
  return "unknown";
}

/// One hosted session. The manager holds it via shared_ptr so status
/// queries stay valid while (and after) the session thread runs.
struct SessionManager::Session {
  std::uint64_t id = 0;
  SessionConfig config;

  /// Per-session stop fan-in: a process signal (via the dispatcher), a
  /// request_stop, or a dropped client all land in the same flag the
  /// tuner's should_stop polls.
  std::unique_ptr<journal::ScopedSignalStop> signal_stop;
  std::atomic<bool> manual_stop{false};

  std::thread thread;
  std::once_flag join_once;

  std::atomic<SessionState> state{SessionState::kRunning};
  mutable std::mutex mutex;  ///< guards the mutable progress/result fields
  std::size_t rounds = 0;
  std::size_t runs = 0;
  std::vector<std::size_t> front;
  bool resumed = false;
  tuner::TuningResult result;
  std::string error;

  bool stop_requested() const {
    return manual_stop.load(std::memory_order_relaxed) ||
           (signal_stop != nullptr && signal_stop->stop_requested());
  }
  void request_stop() {
    manual_stop.store(true, std::memory_order_relaxed);
    if (signal_stop != nullptr) signal_stop->request_stop();
  }
};

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(options),
      broker_(std::make_shared<flow::LicenseBroker>(
          options.total_licenses == 0 ? 1 : options.total_licenses)) {
  if (options_.max_sessions == 0) options_.max_sessions = 1;
}

SessionManager::~SessionManager() {
  request_stop_all();
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard lock(mutex_);
    for (auto& [id, s] : sessions_) all.push_back(s);
  }
  for (auto& s : all) {
    std::call_once(s->join_once, [&] {
      if (s->thread.joinable()) s->thread.join();
    });
  }
}

std::uint64_t SessionManager::open(SessionConfig config) {
  if (!config.make_oracle) {
    throw std::invalid_argument("SessionConfig::make_oracle is required");
  }
  if (config.candidates.empty()) {
    throw std::invalid_argument("SessionConfig::candidates is empty");
  }
  if (config.objectives.empty()) {
    throw std::invalid_argument("SessionConfig::objectives is empty");
  }

  auto session = std::make_shared<Session>();
  session->config = std::move(config);
  {
    std::lock_guard lock(mutex_);
    std::size_t running = 0;
    for (const auto& [id, s] : sessions_) {
      if (s->state.load() == SessionState::kRunning) ++running;
    }
    if (running >= options_.max_sessions) {
      throw AdmissionError("session limit reached (" +
                           std::to_string(options_.max_sessions) +
                           " running); retry after one finishes");
    }
    session->id = next_id_++;
    if (options_.handle_signals) {
      session->signal_stop = std::make_unique<journal::ScopedSignalStop>();
    }
    sessions_.emplace(session->id, session);
  }

  session->thread = std::thread([this, session] { run_session(*session); });
  return session->id;
}

void SessionManager::run_session(Session& session) {
  SessionConfig& cfg = session.config;
  try {
    // The session's whole stack lives on this thread: oracle, eval
    // service (leasing from the shared broker under this session's tag),
    // live pool, journal, and a private worker pool installed for the
    // duration of the run.
    std::unique_ptr<flow::QorOracle> oracle = cfg.make_oracle();
    if (oracle == nullptr) {
      throw std::invalid_argument("make_oracle returned null");
    }
    flow::EvalServiceOptions eval_opts = cfg.eval;
    eval_opts.license_broker = broker_;
    eval_opts.session_tag = session.id;
    std::unique_ptr<flow::BatchEvaluator> service =
        cfg.make_evaluator
            ? cfg.make_evaluator(session.id, *oracle, cfg.space, eval_opts)
            : std::make_unique<flow::EvalService>(*oracle, cfg.space,
                                                  eval_opts);
    if (service == nullptr) {
      throw std::invalid_argument("make_evaluator returned null");
    }
    tuner::LiveCandidatePool pool(cfg.candidates, cfg.objectives, *service);

    std::unique_ptr<journal::RunJournal> jnl;
    if (!cfg.journal_dir.empty()) {
      bool has_journal = false;
      if (fs::exists(cfg.journal_dir)) {
        for (const auto& e : fs::directory_iterator(cfg.journal_dir)) {
          const auto ext = e.path().extension();
          if (ext == ".seg" || ext == ".open") has_journal = true;
        }
      }
      jnl = has_journal ? journal::RunJournal::open_resume(cfg.journal_dir)
                        : journal::RunJournal::create(cfg.journal_dir);
      pool.set_journal(jnl.get());
    }

    common::ThreadPool workers(
        cfg.worker_threads == 0 ? 1 : cfg.worker_threads);

    tuner::PPATunerOptions topt = cfg.tuner;
    topt.journal = jnl.get();
    topt.thread_pool = &workers;
    topt.report_front_ids = static_cast<bool>(cfg.on_update);
    const auto user_should_stop = cfg.tuner.should_stop;
    topt.should_stop = [&session, user_should_stop] {
      return session.stop_requested() ||
             (user_should_stop && user_should_stop());
    };
    const auto user_on_round = cfg.tuner.on_round;
    topt.on_round = [this, &session,
                     user_on_round](const tuner::PPATunerProgress& p) {
      {
        std::lock_guard lock(session.mutex);
        session.rounds = p.round;
        session.runs = p.runs;
        session.front = p.pareto_ids;
      }
      if (session.config.on_update) {
        SessionUpdate update;
        update.session_id = session.id;
        update.round = p.round;
        update.runs = p.runs;
        update.front = p.pareto_ids;
        session.config.on_update(update);
      }
      if (user_on_round) user_on_round(p);
    };

    // Space-aware default: legacy spaces get exactly make_plain_gp_factory()
    // (construction-identical surrogates — session fingerprints unchanged);
    // constrained spaces get the mixed-space kernel.
    const tuner::SurrogateFactory factory =
        cfg.surrogates ? cfg.surrogates
                       : tuner::default_gp_factory_for(cfg.space);

    tuner::PPATunerDiagnostics diag;
    const tuner::TuningResult result =
        tuner::run_ppatuner(pool, factory, topt, &diag);

    {
      std::lock_guard lock(session.mutex);
      session.result = result;
      session.rounds = diag.rounds;
      session.runs = result.tool_runs;
      session.front = result.pareto_indices;
      session.resumed = diag.replayed_reveals > 0;
    }
    session.state.store(diag.stopped_early ? SessionState::kStopped
                                           : SessionState::kCompleted);
    if (session.config.on_update) {
      SessionUpdate update;
      update.session_id = session.id;
      update.round = diag.rounds;
      update.runs = result.tool_runs;
      update.front = result.pareto_indices;
      update.final = true;
      session.config.on_update(update);
    }
  } catch (const std::exception& e) {
    {
      std::lock_guard lock(session.mutex);
      session.error = e.what();
    }
    session.state.store(SessionState::kFailed);
    PPAT_WARN << "session " << session.id << " (" << cfg.name
              << ") failed: " << e.what();
    if (session.config.on_update) {
      SessionUpdate update;
      update.session_id = session.id;
      update.final = true;
      session.config.on_update(update);
    }
  }
}

SessionStatus SessionManager::status(std::uint64_t id) const {
  std::shared_ptr<Session> s;
  {
    std::lock_guard lock(mutex_);
    s = sessions_.at(id);
  }
  SessionStatus out;
  out.id = id;
  out.state = s->state.load();
  out.name = s->config.name;
  std::lock_guard lock(s->mutex);
  out.rounds = s->rounds;
  out.runs = s->runs;
  out.front_size = s->front.size();
  out.resumed = s->resumed;
  out.error = s->error;
  return out;
}

std::vector<std::size_t> SessionManager::front(std::uint64_t id) const {
  std::shared_ptr<Session> s;
  {
    std::lock_guard lock(mutex_);
    s = sessions_.at(id);
  }
  std::lock_guard lock(s->mutex);
  return s->front;
}

tuner::TuningResult SessionManager::wait(std::uint64_t id) {
  std::shared_ptr<Session> s;
  {
    std::lock_guard lock(mutex_);
    s = sessions_.at(id);
  }
  std::call_once(s->join_once, [&] {
    if (s->thread.joinable()) s->thread.join();
  });
  if (s->state.load() == SessionState::kFailed) {
    std::lock_guard lock(s->mutex);
    throw std::runtime_error("session " + std::to_string(id) +
                             " failed: " + s->error);
  }
  std::lock_guard lock(s->mutex);
  return s->result;
}

void SessionManager::request_stop(std::uint64_t id) {
  std::shared_ptr<Session> s;
  {
    std::lock_guard lock(mutex_);
    s = sessions_.at(id);
  }
  s->request_stop();
}

void SessionManager::request_stop_all() {
  std::lock_guard lock(mutex_);
  for (auto& [id, s] : sessions_) s->request_stop();
}

std::size_t SessionManager::active() const {
  std::lock_guard lock(mutex_);
  std::size_t running = 0;
  for (const auto& [id, s] : sessions_) {
    if (s->state.load() == SessionState::kRunning) ++running;
  }
  return running;
}

}  // namespace ppat::server
