// Implementation of the versioned C ABI (ppatuner_abi.h).
//
// The ABI inverts control — the embedder drives evaluations — while
// run_ppatuner expects a pool it can ask for reveals. The adapter between
// them is BridgePool: the tuner loop runs on an internal thread, and each
// reveal_batch publishes its candidate indices to a queue served by
// ppat_get_candidates, then blocks until ppat_set_result has answered all
// of them (or the session is shut down, which fails the pending reveals so
// the loop can unwind). Repeat reveals are served from the outcome cache,
// preserving the CandidatePool run-accounting contract.
#include "server/ppatuner_abi.h"

#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "tuner/ppatuner.hpp"
#include "tuner/problem.hpp"
#include "tuner/surrogate.hpp"

namespace {

using ppat::tuner::CandidatePool;

/// CandidatePool whose reveals are answered by an external caller through
/// the C ABI. All members are guarded by `mutex`.
class BridgePool final : public CandidatePool {
 public:
  BridgePool(std::vector<ppat::linalg::Vector> encoded,
             std::size_t num_objectives)
      : encoded_(std::move(encoded)),
        objectives_(num_objectives),
        status_(encoded_.size(), Status::kIdle),
        cache_(encoded_.size()) {
    std::iota(objectives_.begin(), objectives_.end(), std::size_t{0});
  }

  std::size_t size() const override { return encoded_.size(); }
  std::size_t num_objectives() const override { return objectives_.size(); }
  const std::vector<ppat::linalg::Vector>& encoded() const override {
    return encoded_;
  }
  const std::vector<std::size_t>& objectives() const override {
    return objectives_;
  }

  ppat::pareto::Point reveal(std::size_t i) override {
    auto outcomes = reveal_batch({i});
    if (!outcomes[0].ok) {
      throw ppat::tuner::PoolEvaluationError(outcomes[0].error);
    }
    return outcomes[0].value;
  }

  // Tuner side: publish unanswered indices, block until the embedder has
  // answered every one of them (ppat_set_result) or the session stops.
  std::vector<RevealOutcome> reveal_batch(
      const std::vector<std::size_t>& indices) override {
    std::unique_lock lock(mutex_);
    std::size_t unresolved = 0;
    for (std::size_t i : indices) {
      if (status_[i] == Status::kIdle) {
        status_[i] = Status::kQueued;
        queue_.push_back(i);
        ++unresolved;
      } else if (status_[i] != Status::kResolved) {
        ++unresolved;  // already in flight from an earlier (repeat) request
      }
    }
    if (unresolved > 0) client_cv_.notify_all();
    tuner_cv_.wait(lock, [&] {
      if (stopped_) return true;
      for (std::size_t i : indices) {
        if (status_[i] != Status::kResolved) return false;
      }
      return true;
    });

    std::vector<RevealOutcome> out(indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const std::size_t i = indices[k];
      if (status_[i] == Status::kResolved) {
        out[k] = cache_[i];
      } else {
        out[k].ok = false;
        out[k].error = "session shut down before the result arrived";
        out[k].attempts = 0;
        // Leave the candidate resolved-failed so a repeat reveal during
        // loop unwinding does not block again.
        status_[i] = Status::kResolved;
        cache_[i] = out[k];
      }
    }
    return out;
  }

  bool is_revealed(std::size_t i) const override {
    std::lock_guard lock(mutex_);
    return status_[i] == Status::kResolved && cache_[i].ok;
  }
  std::size_t runs() const override {
    std::lock_guard lock(mutex_);
    return runs_;
  }
  std::size_t failed_evaluations() const override {
    std::lock_guard lock(mutex_);
    return failed_;
  }

  // Embedder side.

  /// Blocks until work is queued, the tuner finished, or the session
  /// stopped. Returns false for "no more work ever" (done/stopped).
  bool fetch(std::uint64_t* indices, std::uint64_t capacity,
             std::uint64_t* out_count) {
    std::unique_lock lock(mutex_);
    client_cv_.wait(lock, [&] { return !queue_.empty() || done_ || stopped_; });
    std::uint64_t n = 0;
    while (n < capacity && !queue_.empty()) {
      const std::size_t i = queue_.front();
      queue_.pop_front();
      status_[i] = Status::kHandedOut;
      indices[n++] = static_cast<std::uint64_t>(i);
    }
    *out_count = n;
    return n > 0;
  }

  /// Stores one answer. Returns false when `index` has no pending request.
  bool resolve(std::size_t index, const double* objectives_in, bool ok) {
    std::lock_guard lock(mutex_);
    if (index >= status_.size()) return false;
    if (status_[index] != Status::kQueued &&
        status_[index] != Status::kHandedOut) {
      return false;
    }
    if (status_[index] == Status::kQueued) {
      // Answered before being fetched (embedder knew the value already);
      // drop it from the hand-out queue.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == index) {
          queue_.erase(it);
          break;
        }
      }
    }
    RevealOutcome& outcome = cache_[index];
    outcome.ok = ok;
    if (ok) {
      outcome.value.assign(objectives_in, objectives_in + objectives_.size());
      ++runs_;
    } else {
      outcome.error = "tool run reported failed by the embedder";
      ++failed_;
    }
    status_[index] = Status::kResolved;
    tuner_cv_.notify_all();
    return true;
  }

  /// Tuner loop finished: wake any blocked ppat_get_candidates with DONE.
  void mark_done() {
    std::lock_guard lock(mutex_);
    done_ = true;
    client_cv_.notify_all();
  }

  /// Session shutdown: fail pending reveals and wake everyone.
  void stop() {
    std::lock_guard lock(mutex_);
    stopped_ = true;
    tuner_cv_.notify_all();
    client_cv_.notify_all();
  }

  bool stopped() const {
    std::lock_guard lock(mutex_);
    return stopped_;
  }

 private:
  enum class Status : unsigned char {
    kIdle = 0,       ///< never requested
    kQueued,         ///< requested by the tuner, not yet fetched
    kHandedOut,      ///< fetched by the embedder, awaiting its result
    kResolved,       ///< outcome cached (success or permanent failure)
  };

  const std::vector<ppat::linalg::Vector> encoded_;
  std::vector<std::size_t> objectives_;

  mutable std::mutex mutex_;
  std::condition_variable tuner_cv_;   ///< reveal_batch waits here
  std::condition_variable client_cv_;  ///< ppat_get_candidates waits here
  std::vector<Status> status_;
  std::vector<RevealOutcome> cache_;
  std::deque<std::size_t> queue_;
  std::size_t runs_ = 0;
  std::size_t failed_ = 0;
  bool done_ = false;
  bool stopped_ = false;
};

}  // namespace

// The opaque handle: the bridge pool plus the tuner thread driving it.
struct ppat_session {
  std::unique_ptr<BridgePool> pool;
  std::thread tuner_thread;

  std::mutex mutex;
  bool finished = false;  ///< tuner thread ran to completion (any outcome)
  bool failed = false;
  std::string error;
  std::vector<std::size_t> front;  ///< live per-round, then final
};

namespace {

void run_tuner_loop(ppat_session* s, ppat::tuner::PPATunerOptions topt,
                    std::size_t num_threads,
                    ppat::tuner::SurrogateFactory factory) {
  try {
    ppat::common::ThreadPool workers(num_threads);
    topt.thread_pool = &workers;
    topt.report_front_ids = true;
    topt.should_stop = [s] { return s->pool->stopped(); };
    topt.on_round = [s](const ppat::tuner::PPATunerProgress& p) {
      std::lock_guard lock(s->mutex);
      s->front = p.pareto_ids;
    };
    const ppat::tuner::TuningResult result =
        ppat::tuner::run_ppatuner(*s->pool, factory, topt);
    std::lock_guard lock(s->mutex);
    s->front = result.pareto_indices;
    s->finished = true;
  } catch (const std::exception& e) {
    std::lock_guard lock(s->mutex);
    s->failed = true;
    s->error = e.what();
    s->finished = true;
  }
  s->pool->mark_done();
}

}  // namespace

extern "C" {

uint32_t ppat_abi_version(void) {
  return (PPAT_ABI_VERSION_MAJOR << 16) | PPAT_ABI_VERSION_MINOR;
}

const char* ppat_status_name(ppat_status status) {
  switch (status) {
    case PPAT_OK:
      return "PPAT_OK";
    case PPAT_DONE:
      return "PPAT_DONE";
    case PPAT_ERROR_INVALID:
      return "PPAT_ERROR_INVALID";
    case PPAT_ERROR_VERSION:
      return "PPAT_ERROR_VERSION";
    case PPAT_ERROR_CAPACITY:
      return "PPAT_ERROR_CAPACITY";
    case PPAT_ERROR_INTERNAL:
      return "PPAT_ERROR_INTERNAL";
  }
  return "PPAT_<unknown>";
}

ppat_status ppat_init(const ppat_options_v1* options, const double* candidates,
                      uint64_t num_candidates, uint64_t dim,
                      uint64_t num_objectives, ppat_session** out_session) {
  if (options == nullptr || candidates == nullptr || out_session == nullptr) {
    return PPAT_ERROR_INVALID;
  }
  *out_session = nullptr;
  // Forward-compat contract: the caller's struct must start with the two
  // version fields and be at least the 1.0 prefix we know how to read.
  // categorical_mask was APPENDED in minor 1.1, so 1.0 embedders report a
  // struct_size that stops right before it — still accepted, field = 0.
  constexpr uint64_t kOptionsV10Size =
      offsetof(ppat_options_v1, categorical_mask);
  if (options->struct_size < kOptionsV10Size ||
      options->abi_version != PPAT_ABI_VERSION_MAJOR) {
    return PPAT_ERROR_VERSION;
  }
  if (num_candidates == 0 || dim == 0 || num_objectives == 0 ||
      num_objectives > PPAT_MAX_OBJECTIVES) {
    return PPAT_ERROR_INVALID;
  }
  for (uint64_t i = 0; i < num_candidates * dim; ++i) {
    if (!std::isfinite(candidates[i])) return PPAT_ERROR_INVALID;
  }

  std::vector<ppat::linalg::Vector> encoded(num_candidates);
  for (uint64_t i = 0; i < num_candidates; ++i) {
    encoded[i].assign(candidates + i * dim, candidates + (i + 1) * dim);
  }

  ppat::tuner::PPATunerOptions topt;
  if (options->seed != 0) topt.seed = options->seed;
  if (options->tau > 0.0) topt.tau = options->tau;
  if (options->delta_rel > 0.0) topt.delta_rel = options->delta_rel;
  if (options->batch_size != 0) {
    topt.batch_size = static_cast<std::size_t>(options->batch_size);
  }
  if (options->max_runs != 0) {
    topt.max_runs = static_cast<std::size_t>(options->max_runs);
  }
  if (options->max_rounds != 0) {
    topt.max_rounds = static_cast<std::size_t>(options->max_rounds);
  }
  const std::size_t num_threads =
      options->num_threads == 0 ? 1
                                : static_cast<std::size_t>(options->num_threads);

  // Minor-1.1 tail field (0 for every 1.0 caller): nonzero selects the
  // mixed-space kernel over the marked categorical dimensions.
  uint64_t categorical_mask = 0;
  if (options->struct_size >= kOptionsV10Size + sizeof(uint64_t)) {
    categorical_mask = options->categorical_mask;
  }
  ppat::tuner::SurrogateFactory factory;
  if (categorical_mask == 0) {
    factory = ppat::tuner::make_plain_gp_factory();
  } else {
    if (dim > 64 || (dim < 64 && (categorical_mask >> dim) != 0)) {
      return PPAT_ERROR_INVALID;
    }
    std::vector<std::uint8_t> categorical(static_cast<std::size_t>(dim), 0);
    for (uint64_t d = 0; d < dim; ++d) {
      categorical[d] = (categorical_mask >> d) & 1u;
    }
    auto proto = std::make_shared<ppat::gp::MixedSpaceKernel>(
        std::move(categorical));
    factory = [proto](std::size_t) -> std::unique_ptr<ppat::tuner::Surrogate> {
      return std::make_unique<ppat::tuner::PlainGpSurrogate>(proto->clone());
    };
  }

  auto session = std::make_unique<ppat_session>();
  session->pool = std::make_unique<BridgePool>(
      std::move(encoded), static_cast<std::size_t>(num_objectives));
  ppat_session* raw = session.release();
  raw->tuner_thread = std::thread([raw, topt, num_threads, factory] {
    run_tuner_loop(raw, topt, num_threads, factory);
  });
  *out_session = raw;
  return PPAT_OK;
}

ppat_status ppat_get_candidates(ppat_session* session, uint64_t* indices,
                                uint64_t capacity, uint64_t* out_count) {
  if (session == nullptr || indices == nullptr || out_count == nullptr ||
      capacity == 0) {
    return PPAT_ERROR_INVALID;
  }
  *out_count = 0;
  if (session->pool->fetch(indices, capacity, out_count)) return PPAT_OK;
  std::lock_guard lock(session->mutex);
  return session->failed ? PPAT_ERROR_INTERNAL : PPAT_DONE;
}

ppat_status ppat_set_result(ppat_session* session, uint64_t index,
                            const double* objectives, int ok) {
  if (session == nullptr) return PPAT_ERROR_INVALID;
  if (ok != 0) {
    if (objectives == nullptr) return PPAT_ERROR_INVALID;
    for (std::size_t k = 0; k < session->pool->num_objectives(); ++k) {
      if (!std::isfinite(objectives[k])) return PPAT_ERROR_INVALID;
    }
  }
  if (!session->pool->resolve(static_cast<std::size_t>(index), objectives,
                              ok != 0)) {
    return PPAT_ERROR_INVALID;
  }
  return PPAT_OK;
}

ppat_status ppat_front(ppat_session* session, uint64_t* indices,
                       uint64_t capacity, uint64_t* out_count) {
  if (session == nullptr || indices == nullptr || out_count == nullptr) {
    return PPAT_ERROR_INVALID;
  }
  std::lock_guard lock(session->mutex);
  *out_count = static_cast<uint64_t>(session->front.size());
  if (session->front.size() > capacity) return PPAT_ERROR_CAPACITY;
  for (std::size_t k = 0; k < session->front.size(); ++k) {
    indices[k] = static_cast<uint64_t>(session->front[k]);
  }
  return PPAT_OK;
}

ppat_status ppat_runs(ppat_session* session, uint64_t* out_runs) {
  if (session == nullptr || out_runs == nullptr) return PPAT_ERROR_INVALID;
  *out_runs = static_cast<uint64_t>(session->pool->runs());
  return PPAT_OK;
}

const char* ppat_last_error(ppat_session* session) {
  if (session == nullptr) return "";
  std::lock_guard lock(session->mutex);
  return session->error.c_str();
}

ppat_status ppat_shutdown(ppat_session* session) {
  if (session == nullptr) return PPAT_ERROR_INVALID;
  session->pool->stop();
  if (session->tuner_thread.joinable()) session->tuner_thread.join();
  delete session;
  return PPAT_OK;
}

}  // extern "C"
