// Unix-domain-socket front end for the SessionManager.
//
// One listening socket; each accepted connection drives exactly one tuning
// session: Hello/HelloAck, OpenSession (oracle name + options + candidate
// matrix), streamed RoundUpdate frames, and a final Done. The server hosts
// the oracles — clients never link the flow; they only speak the wire
// protocol (wire.hpp) — so a Python script or a C tool can be a tenant.
//
// Shutdown paths all converge on graceful session stops:
//   * client drops the connection  -> that session is stop-requested;
//   * client sends StopSession     -> same, but it still receives Done;
//   * SIGINT/SIGTERM or stop()     -> the accept loop exits and the
//     SessionManager drains every session (signal fan-out dispatcher).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/session_manager.hpp"

namespace ppat::server {

/// A server-side oracle offering: the parameter space candidates are
/// decoded into, and a factory for fresh oracle instances (one per
/// session, invoked on the session thread).
struct OracleSpec {
  flow::ParameterSpace space;
  std::function<std::unique_ptr<flow::QorOracle>()> make;
};

/// Resolves an OpenSession request to an oracle. `dim` is the client's
/// encoded candidate dimensionality; return nullopt to reject (unknown
/// name, wrong dimensionality).
using OracleResolver = std::function<std::optional<OracleSpec>(
    const std::string& name, std::uint64_t seed, std::size_t dim)>;

/// Optional per-session evaluator factory (see SessionConfig::
/// make_evaluator). Receives the client's oracle selection so the factory
/// can provision matching worker processes; return null to fall back to the
/// in-process EvalService for this session.
using SessionEvaluatorFactory =
    std::function<std::unique_ptr<flow::BatchEvaluator>(
        const std::string& oracle_name, std::uint64_t oracle_seed,
        std::uint64_t session_id, const flow::ParameterSpace& space,
        const flow::EvalServiceOptions& eval)>;

struct SocketServerOptions {
  std::string socket_path;
  OracleResolver resolve_oracle;
  SessionManagerOptions sessions;
  /// Root directory for per-session journals ("<root>/session-<id>/");
  /// empty disables journaling.
  std::string journal_root;
  /// Empty = every session evaluates in-process (EvalService). Set by
  /// `ppatuner_serve --workers` to back sessions with a distributed
  /// coordinator + worker fleet.
  SessionEvaluatorFactory make_evaluator;
};

/// Owns the listening socket, the SessionManager, and one thread per live
/// connection.
class SocketServer {
 public:
  explicit SocketServer(SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens. Throws std::runtime_error on bind/listen failure
  /// (stale socket files are removed first).
  void bind();

  /// Accept loop; returns once stop() is called or a registered signal
  /// fires. Call bind() first.
  void serve();

  /// Async stop: wakes the accept loop, stops all sessions, joins
  /// connection threads. Safe from any thread.
  void stop();

  const std::string& socket_path() const { return options_.socket_path; }
  SessionManager& sessions() { return *manager_; }

 private:
  void handle_connection(int fd);

  SocketServerOptions options_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<journal::ScopedSignalStop> signal_stop_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  /// Journal-directory naming is by open order, so restarting the server
  /// and replaying the same OpenSession sequence resumes the same dirs.
  std::atomic<std::uint64_t> session_counter_{0};

  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace ppat::server
