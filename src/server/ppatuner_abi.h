/* PPATuner versioned C ABI: embed the Pareto-driven tuning loop (DAC'22
 * Alg. 1) in any tool that can call C, with no C++ ABI coupling.
 *
 * The surface follows the inverted-control style of collective-tuner
 * vtables (init / get candidates / set result): the EMBEDDING TOOL owns the
 * evaluation loop and the tuner is a passive oracle-for-what-to-run-next.
 *
 *   ppat_options_v1 opt = PPAT_OPTIONS_V1_INIT;
 *   opt.max_runs = 60;
 *   ppat_session *s = NULL;
 *   ppat_init(&opt, encoded, n, dim, n_obj, &s);
 *   uint64_t want[16], got;
 *   while (ppat_get_candidates(s, want, 16, &got) == PPAT_OK) {
 *     for (uint64_t i = 0; i < got; ++i) {
 *       double y[PPAT_MAX_OBJECTIVES];
 *       int ok = run_my_tool(want[i], y);       // hours of EDA tool time
 *       ppat_set_result(s, want[i], y, ok);     // ok=0 quarantines it
 *     }
 *   }                                            // PPAT_DONE ends the loop
 *   uint64_t front[256], fn;
 *   ppat_front(s, front, 256, &fn);              // predicted Pareto set
 *   ppat_shutdown(s);
 *
 * Versioning rules (see DESIGN.md section 13):
 *   - PPAT_ABI_VERSION_MAJOR changes break the contract; ppat_init rejects
 *     a mismatched ppat_options_v1::abi_version with PPAT_ERROR_VERSION.
 *   - Minor revisions only APPEND fields to the options struct; the
 *     struct_size field tells the library how much of the struct the
 *     caller was compiled against, so old binaries keep working against
 *     new libraries (unknown tail fields keep their defaults).
 *   - All functions are thread-safe per session; one session's calls may
 *     come from different threads (a license farm's completion callbacks).
 *
 * Determinism: a session's decisions depend only on (options, candidate
 * matrix, reported results) — never on call timing — so replaying the same
 * tool results reproduces the same candidate requests bit-for-bit.
 */
#ifndef PPATUNER_ABI_H_
#define PPATUNER_ABI_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define PPAT_ABI_VERSION_MAJOR 1u
#define PPAT_ABI_VERSION_MINOR 1u

/* Objective vectors passed to ppat_set_result are at most this wide. */
#define PPAT_MAX_OBJECTIVES 8u

typedef enum ppat_status {
  PPAT_OK = 0,
  /* The run is complete; ppat_get_candidates will hand out no more work.
   * Fetch the final front with ppat_front, then ppat_shutdown. */
  PPAT_DONE = 1,
  /* A NULL pointer, zero capacity, out-of-range index, or non-finite
   * value. The call had no effect. */
  PPAT_ERROR_INVALID = 2,
  /* ppat_options_v1::abi_version or struct_size is incompatible with this
   * library build. */
  PPAT_ERROR_VERSION = 3,
  /* The output buffer is too small; *out_count holds the required size. */
  PPAT_ERROR_CAPACITY = 4,
  /* The tuning loop failed internally; ppat_last_error has the reason. */
  PPAT_ERROR_INTERNAL = 5
} ppat_status;

/* Opaque session handle. Created by ppat_init, freed by ppat_shutdown. */
typedef struct ppat_session ppat_session;

/* Tuning options, ABI version 1. Zero-initialize via PPAT_OPTIONS_V1_INIT
 * (which also stamps struct_size/abi_version), then override fields. A
 * zero value means "library default" for every numeric field. */
typedef struct ppat_options_v1 {
  /* sizeof(ppat_options_v1) as seen by the CALLER; lets future minor
   * revisions append fields without breaking old embedders. */
  uint64_t struct_size;
  /* Must be PPAT_ABI_VERSION_MAJOR. */
  uint32_t abi_version;
  uint32_t reserved_;

  uint64_t seed;         /* RNG stream seed (default 1) */
  double tau;            /* uncertainty-region scaling, paper Eq. (9) */
  double delta_rel;      /* relative dominance slack, paper Eq. (11) */
  uint64_t batch_size;   /* candidates handed out per round */
  uint64_t max_runs;     /* tool-run budget */
  uint64_t max_rounds;   /* T_max */
  uint64_t num_threads;  /* session worker threads (default 1) */

  /* --- Appended in minor revision 1.1 (mixed-type parameter spaces). ---
   * Bitmask marking encoded dimensions as CATEGORICAL: bit i set means
   * dimension i of the candidate matrix is an unordered (enum/bool) level
   * midpoint, and the session models it with the mixed-space kernel
   * (Hamming over marked dims, squared-exponential over the rest). Zero —
   * including every caller compiled against 1.0, whose shorter struct_size
   * simply omits the field — keeps the original isotropic SE surrogate,
   * bit-for-bit. Requires dim <= 64 when nonzero; bits at or above `dim`
   * are rejected with PPAT_ERROR_INVALID. */
  uint64_t categorical_mask;
} ppat_options_v1;

#define PPAT_OPTIONS_V1_INIT \
  { sizeof(ppat_options_v1), PPAT_ABI_VERSION_MAJOR, 0u, 0u, 0.0, 0.0, 0u, 0u, 0u, 0u, 0u }

/* Runtime library ABI version: (major << 16) | minor. An embedder dlopen'ing
 * the library checks (ppat_abi_version() >> 16) == PPAT_ABI_VERSION_MAJOR. */
uint32_t ppat_abi_version(void);

/* Human-readable status name (static storage, never NULL). */
const char *ppat_status_name(ppat_status status);

/* Starts a tuning session over a finite candidate pool.
 *   options        tuning options (see above)
 *   candidates     row-major num_candidates x dim matrix of unit-cube
 *                  encoded configurations (each coordinate in [0, 1])
 *   num_candidates pool size (>= 1)
 *   dim            encoded dimensionality (>= 1)
 *   num_objectives objective-vector width reported via ppat_set_result
 *                  (1..PPAT_MAX_OBJECTIVES; all objectives minimized)
 *   out_session    receives the session handle on PPAT_OK
 * The candidate matrix is copied; the caller may free it immediately. */
ppat_status ppat_init(const ppat_options_v1 *options, const double *candidates,
                      uint64_t num_candidates, uint64_t dim,
                      uint64_t num_objectives, ppat_session **out_session);

/* Blocks until the tuner wants tool runs, then hands out up to `capacity`
 * candidate indices (writes them to `indices`, count to *out_count).
 * Returns PPAT_OK with *out_count >= 1 while work remains; PPAT_DONE with
 * *out_count == 0 once the loop has finished. Indices not yet answered via
 * ppat_set_result stay owned by the caller — the tuner never re-issues an
 * index it is still waiting on, and a partial fetch leaves the rest of the
 * batch for the next call. */
ppat_status ppat_get_candidates(ppat_session *session, uint64_t *indices,
                                uint64_t capacity, uint64_t *out_count);

/* Reports one evaluated candidate. `objectives` points to num_objectives
 * doubles (ignored when ok == 0). ok == 0 marks the tool run as permanently
 * failed: the tuner quarantines the candidate and never re-requests it. */
ppat_status ppat_set_result(ppat_session *session, uint64_t index,
                            const double *objectives, int ok);

/* Copies the current predicted-Pareto candidate indices into `indices`
 * (capacity permitting). Mid-run this is the candidates classified Pareto
 * so far (paper Eq. (12)); after PPAT_DONE it is the final predicted set.
 * On PPAT_ERROR_CAPACITY, *out_count holds the required capacity. */
ppat_status ppat_front(ppat_session *session, uint64_t *indices,
                       uint64_t capacity, uint64_t *out_count);

/* Successful tool runs consumed so far (the paper's cost metric). */
ppat_status ppat_runs(ppat_session *session, uint64_t *out_runs);

/* Last internal error message for this session ("" when none; static
 * lifetime until the next failing call or ppat_shutdown). */
const char *ppat_last_error(ppat_session *session);

/* Stops the session (unanswered candidate requests are abandoned), joins
 * its worker thread, and frees the handle. The pointer is invalid after
 * this call. Safe to call at any point, including mid-run. */
ppat_status ppat_shutdown(ppat_session *session);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* PPATUNER_ABI_H_ */
