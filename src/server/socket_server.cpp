#include "server/socket_server.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hpp"
#include "journal/journal.hpp"
#include "server/ppatuner_abi.h"
#include "server/wire.hpp"

namespace ppat::server {
namespace {

/// Per-connection write side: RoundUpdate frames come from the session
/// thread while Done/Error come from the connection thread.
struct ConnWriter {
  int fd;
  std::mutex mutex;
  bool broken = false;  ///< first write failure wins; later writes are no-ops

  bool write(wire::MsgType type, const std::vector<std::uint8_t>& payload) {
    std::lock_guard lock(mutex);
    if (broken) return false;
    try {
      wire::write_frame(fd, type, payload);
      return true;
    } catch (const wire::WireError&) {
      broken = true;
      return false;
    }
  }
};

void send_error(ConnWriter& conn, const std::string& message) {
  wire::Writer w;
  w.str(message);
  conn.write(wire::MsgType::kError, w.take());
}

}  // namespace

SocketServer::SocketServer(SocketServerOptions options)
    : options_(std::move(options)),
      manager_(std::make_unique<SessionManager>(options_.sessions)) {
  if (options_.socket_path.empty()) {
    throw std::invalid_argument("SocketServerOptions::socket_path is empty");
  }
  if (!options_.resolve_oracle) {
    throw std::invalid_argument(
        "SocketServerOptions::resolve_oracle is required");
  }
  if (options_.sessions.handle_signals) {
    // The accept loop's own stop slot, alongside the per-session ones the
    // manager registers: one SIGINT/SIGTERM both closes the listener and
    // drains every session.
    signal_stop_ = std::make_unique<journal::ScopedSignalStop>();
  }
}

SocketServer::~SocketServer() {
  stop();
  {
    std::lock_guard lock(threads_mutex_);
    for (auto& t : connection_threads_) {
      if (t.joinable()) t.join();
    }
    connection_threads_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

void SocketServer::bind() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale file from a dead server
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw std::runtime_error("bind(" + options_.socket_path +
                             ") failed: " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    throw std::runtime_error(std::string("listen() failed: ") +
                             std::strerror(errno));
  }
}

void SocketServer::serve() {
  if (listen_fd_ < 0) {
    throw std::logic_error("SocketServer::serve called before bind");
  }
  while (!stop_.load(std::memory_order_relaxed) &&
         !(signal_stop_ != nullptr && signal_stop_->stop_requested())) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      PPAT_WARN << "server poll failed: " << std::strerror(errno);
      break;
    }
    if (pr == 0) continue;  // timeout: re-check the stop conditions
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      PPAT_WARN << "accept failed: " << std::strerror(errno);
      continue;
    }
    std::lock_guard lock(threads_mutex_);
    connection_threads_.emplace_back(
        [this, fd] { handle_connection(fd); });
  }
  // Drain: stop every session, then join connections (each ends once its
  // session finishes and Done is written).
  manager_->request_stop_all();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(threads_mutex_);
    threads.swap(connection_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  manager_->request_stop_all();
}

void SocketServer::handle_connection(int fd) {
  // Shared with the session's on_update callback, which can outlive this
  // function on error paths (the session keeps running after we bail).
  auto conn_ptr = std::make_shared<ConnWriter>();
  conn_ptr->fd = fd;
  ConnWriter& conn = *conn_ptr;
  std::uint64_t session_id = 0;
  bool session_open = false;
  std::thread reader;
  try {
    // -- Handshake. --
    auto hello = wire::read_frame(fd);
    if (!hello || hello->type != wire::MsgType::kHello) {
      throw wire::WireError("expected Hello");
    }
    {
      wire::Reader r(hello->payload);
      const std::uint32_t version = r.u32();
      if (version != wire::kProtocolVersion) {
        send_error(conn, "unsupported protocol version " +
                             std::to_string(version));
        ::close(fd);
        return;
      }
    }
    {
      wire::Writer w;
      w.u32(wire::kProtocolVersion);
      w.u32(ppat_abi_version());
      conn.write(wire::MsgType::kHelloAck, w.take());
    }

    // -- Session open. --
    auto open_frame = wire::read_frame(fd);
    if (!open_frame || open_frame->type != wire::MsgType::kOpenSession) {
      throw wire::WireError("expected OpenSession");
    }
    wire::Reader r(open_frame->payload);
    const std::string oracle_name = r.str();
    const std::uint64_t oracle_seed = r.u64();
    tuner::PPATunerOptions topt;
    if (const std::uint64_t v = r.u64(); v != 0) topt.seed = v;
    if (const double v = r.f64(); v > 0.0) topt.tau = v;
    if (const double v = r.f64(); v > 0.0) topt.delta_rel = v;
    if (const std::uint64_t v = r.u64(); v != 0) topt.batch_size = v;
    if (const std::uint64_t v = r.u64(); v != 0) topt.max_runs = v;
    if (const std::uint64_t v = r.u64(); v != 0) topt.max_rounds = v;
    const auto objectives64 = r.u64_vec();
    const std::uint64_t n = r.u64();
    const std::uint64_t dim = r.u64();
    if (n == 0 || dim == 0 || objectives64.empty()) {
      send_error(conn, "OpenSession: empty pool or objective set");
      ::close(fd);
      return;
    }

    const auto spec = options_.resolve_oracle(
        oracle_name, oracle_seed, static_cast<std::size_t>(dim));
    if (!spec) {
      send_error(conn, "unknown oracle '" + oracle_name + "' (dim " +
                           std::to_string(dim) + ")");
      ::close(fd);
      return;
    }

    SessionConfig cfg;
    cfg.name = oracle_name;
    cfg.space = spec->space;
    cfg.make_oracle = spec->make;
    if (options_.make_evaluator) {
      cfg.make_evaluator = [factory = options_.make_evaluator, oracle_name,
                            oracle_seed](
                               std::uint64_t id, flow::QorOracle& oracle,
                               const flow::ParameterSpace& space,
                               const flow::EvalServiceOptions& eval)
          -> std::unique_ptr<flow::BatchEvaluator> {
        auto evaluator = factory(oracle_name, oracle_seed, id, space, eval);
        if (evaluator != nullptr) return evaluator;
        // Factory declined (e.g. an oracle the worker fleet cannot host):
        // in-process evaluation is always a valid fallback.
        return std::make_unique<flow::EvalService>(oracle, space, eval);
      };
    }
    cfg.tuner = topt;
    cfg.objectives.assign(objectives64.begin(), objectives64.end());
    cfg.candidates.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      linalg::Vector u(dim);
      for (std::uint64_t d = 0; d < dim; ++d) u[d] = r.f64();
      // Constrained (mixed/conditional) oracle spaces decode each client
      // point onto the feasible manifold; legacy spaces keep the verbatim
      // unit-cube decode (bitwise-identical candidates to older servers).
      cfg.candidates.push_back(cfg.space.has_constraints()
                                   ? cfg.space.decode_feasible(u)
                                   : cfg.space.decode(u));
    }
    if (!options_.journal_root.empty()) {
      const std::uint64_t k = session_counter_.fetch_add(1);
      cfg.journal_dir =
          options_.journal_root + "/session-" + std::to_string(k);
      std::filesystem::create_directories(cfg.journal_dir);
    }
    cfg.on_update = [conn_ptr](const SessionUpdate& update) {
      ConnWriter& conn = *conn_ptr;
      if (update.final) return;  // Done is sent by the connection thread
      wire::Writer w;
      w.u64(update.session_id);
      w.u64(update.round);
      w.u64(update.runs);
      std::vector<std::uint64_t> front(update.front.begin(),
                                       update.front.end());
      w.u64_vec(front);
      conn.write(wire::MsgType::kRoundUpdate, w.take());
    };

    try {
      session_id = manager_->open(std::move(cfg));
      session_open = true;
    } catch (const std::exception& e) {
      send_error(conn, e.what());
      ::close(fd);
      return;
    }
    {
      wire::Writer w;
      w.u64(session_id);
      conn.write(wire::MsgType::kSessionOpened, w.take());
    }

    // -- Reader side: StopSession requests; EOF = client gone, so stop the
    // session instead of burning tool licenses for nobody. --
    reader = std::thread([this, fd, session_id] {
      try {
        while (auto frame = wire::read_frame(fd)) {
          if (frame->type == wire::MsgType::kStopSession) {
            manager_->request_stop(session_id);
          }
        }
      } catch (const wire::WireError&) {
      }
      manager_->request_stop(session_id);
    });

    // -- Wait for the session, then report. --
    SessionState state = SessionState::kCompleted;
    try {
      manager_->wait(session_id);
    } catch (const std::exception&) {
      // status() below carries the failure detail.
    }
    const SessionStatus status = manager_->status(session_id);
    state = status.state;
    wire::Writer w;
    w.u64(session_id);
    w.u8(static_cast<std::uint8_t>(state));
    w.u64(status.runs);
    const auto front_sz = manager_->front(session_id);
    std::vector<std::uint64_t> front(front_sz.begin(), front_sz.end());
    w.u64_vec(front);
    conn.write(wire::MsgType::kDone, w.take());
  } catch (const std::exception& e) {
    PPAT_WARN << "connection failed: " << e.what();
    if (session_open) manager_->request_stop(session_id);
    send_error(conn, e.what());
  }
  // Unblock and join the reader before closing the descriptor.
  ::shutdown(fd, SHUT_RDWR);
  if (reader.joinable()) reader.join();
  ::close(fd);
}

}  // namespace ppat::server
