// Multi-tenant tuning server core: N concurrent tuning sessions in one
// process, each owning its full stack — a tuner::PPATuner loop over a
// LiveCandidatePool, a flow::EvalService on the session's oracle, an
// optional per-session journal::RunJournal (crash-safe resume per session),
// and a private common::ThreadPool for surrogate maintenance.
//
// What makes concurrent sessions SAFE here (and was process-global before):
//   * thread pools — each session's run installs its own pool via
//     PPATunerOptions::thread_pool / common::ScopedPool; the global
//     singleton is never sized or touched by a managed session;
//   * signals — every session registers a journal::ScopedSignalStop with
//     the process-level dispatcher, so one SIGINT/SIGTERM gracefully drains
//     ALL sessions (each finishes its in-flight batch, commits its journal,
//     and returns), instead of the last-installed handler winning;
//   * licenses — all sessions lease tool licenses from one shared
//     flow::LicenseBroker under fair scheduling, instead of each service
//     assuming it owns the whole pool.
//
// And what keeps them REPRODUCIBLE: per-session RNG streams (the tuner
// seeds its own common::Rng from the session's options), order-insensitive
// EvalService records, and bit-stable parallel partitions mean a session's
// result is bitwise-identical whether it ran alone or next to seven
// neighbors — the property test_server_sessions pins down.
//
// Admission control: at most max_sessions run concurrently (open() throws
// AdmissionError beyond that) and at most total_licenses tool runs are in
// flight process-wide.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "flow/eval_service.hpp"
#include "flow/license_broker.hpp"
#include "tuner/ppatuner.hpp"

namespace ppat::journal {
class ScopedSignalStop;
}  // namespace ppat::journal

namespace ppat::server {

/// open() refused because the server is at its concurrent-session limit.
class AdmissionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class SessionState : unsigned char {
  kRunning = 0,
  kCompleted = 1,  ///< loop ran to its budget / classification end
  kStopped = 2,    ///< graceful stop (signal, request_stop, client drop)
  kFailed = 3,     ///< the run threw; see SessionStatus::error
};
const char* session_state_name(SessionState state);

/// One streamed progress update (per round, plus a final one).
struct SessionUpdate {
  std::uint64_t session_id = 0;
  std::size_t round = 0;
  std::size_t runs = 0;
  /// Candidates currently classified Pareto (paper Eq. (12)); on the final
  /// update this is the run's full predicted Pareto set.
  std::vector<std::size_t> front;
  bool final = false;
};

/// Everything a session needs to run. The manager owns a copy.
struct SessionConfig {
  std::string name;  ///< diagnostics only
  /// Parameter space the candidates (and the oracle) live in.
  flow::ParameterSpace space;
  /// The candidate pool this session tunes over.
  std::vector<flow::Config> candidates;
  /// QoR metric indices forming the objective vector.
  std::vector<std::size_t> objectives;
  /// Builds the session's oracle (invoked on the session thread; the
  /// returned oracle is owned by the session). Required.
  std::function<std::unique_ptr<flow::QorOracle>()> make_oracle;
  /// Surrogate factory; empty = plain (non-transfer) GPs.
  tuner::SurrogateFactory surrogates;
  /// Tuner options. journal / thread_pool / should_stop / report_front_ids
  /// are managed per session; on_round (if set) still fires after the
  /// manager's own bookkeeping.
  tuner::PPATunerOptions tuner;
  /// Evaluation options. license_broker / session_tag are overridden with
  /// the manager's shared broker and this session's id; `licenses` remains
  /// the session's own in-flight cap.
  flow::EvalServiceOptions eval;
  /// Optional evaluator factory (invoked on the session thread). When set,
  /// the session's pool runs over the returned flow::BatchEvaluator instead
  /// of an in-process EvalService — this is how `ppatuner_serve --workers`
  /// swaps in a dist::DistributedEvalService without the server library
  /// depending on ppat_dist. `eval` arrives with the shared broker and this
  /// session's tag already filled in. The returned evaluator must evaluate
  /// `oracle`'s semantics over `space` (worker processes host their own
  /// oracle instances; `oracle` itself may go unused). Empty = EvalService.
  std::function<std::unique_ptr<flow::BatchEvaluator>(
      std::uint64_t session_id, flow::QorOracle& oracle,
      const flow::ParameterSpace& space,
      const flow::EvalServiceOptions& eval)>
      make_evaluator;
  /// Journal directory: empty = no journal; existing journal = resume,
  /// fresh directory = record. Per session, so each session crash-resumes
  /// independently.
  std::string journal_dir;
  /// Per-session surrogate/linear-algebra threads (>=1).
  std::size_t worker_threads = 1;
  /// Streamed per-round + final updates, invoked from the session thread.
  std::function<void(const SessionUpdate&)> on_update;
};

struct SessionStatus {
  std::uint64_t id = 0;
  SessionState state = SessionState::kRunning;
  std::string name;
  std::size_t rounds = 0;
  std::size_t runs = 0;
  std::size_t front_size = 0;
  bool resumed = false;     ///< journal replay served at least one reveal
  std::string error;        ///< non-empty iff state == kFailed
};

struct SessionManagerOptions {
  /// Concurrent-session admission limit.
  std::size_t max_sessions = 8;
  /// Capacity of the shared LicenseBroker (process-wide in-flight evals).
  std::size_t total_licenses = 4;
  /// Register each session with the process signal dispatcher so
  /// SIGINT/SIGTERM drains every session gracefully. Off for embeddings
  /// that must not have signal handlers installed (sessions then stop only
  /// via request_stop / request_stop_all).
  bool handle_signals = true;
};

/// Hosts tuning sessions on dedicated threads. All methods thread-safe.
class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});
  /// Requests a stop on every live session and joins them.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admits and starts a session; returns its id. Throws AdmissionError at
  /// the max_sessions limit and std::invalid_argument for an unusable
  /// config (no oracle factory, empty pool).
  std::uint64_t open(SessionConfig config);

  /// Snapshot of one session's progress. Throws std::out_of_range for an
  /// unknown id.
  SessionStatus status(std::uint64_t id) const;
  /// Current classified-Pareto front (final result once finished).
  std::vector<std::size_t> front(std::uint64_t id) const;

  /// Blocks until the session finishes and returns its result. A failed
  /// session rethrows its error as std::runtime_error.
  tuner::TuningResult wait(std::uint64_t id);

  /// Graceful per-session stop: the loop finishes its in-flight batch,
  /// commits its journal, and finalizes (same path as a signal).
  void request_stop(std::uint64_t id);
  void request_stop_all();

  /// Sessions currently running (admission-relevant count).
  std::size_t active() const;
  const SessionManagerOptions& options() const { return options_; }
  const std::shared_ptr<flow::LicenseBroker>& broker() const {
    return broker_;
  }

 private:
  struct Session;

  void run_session(Session& session);

  SessionManagerOptions options_;
  std::shared_ptr<flow::LicenseBroker> broker_;
  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace ppat::server
